// Micro-batch window solver (ROADMAP item 3a): each virtual-time window's
// pending requests form a small bipartite assignment problem over the idle
// workers, solved by a pluggable algorithm. The matcher is stateful so the
// incremental-KM backend can warm-start each window's column potentials
// from the duals a worker earned in the previous window — workers that stay
// idle keep their price, which is what makes consecutive near-identical
// windows cheap.
//
// SimEngine's batch mode and the legacy sim/batch_simulator both route
// their window solves through this class; src/exp sweeps the
// window-size × algorithm grid (exp/batch_grid.h).

#ifndef COMX_MATCHING_BATCH_MATCHER_H_
#define COMX_MATCHING_BATCH_MATCHER_H_

#include <string_view>
#include <unordered_map>
#include <vector>

#include "matching/auction.h"
#include "matching/bipartite_graph.h"
#include "matching/incremental_km.h"
#include "model/ids.h"
#include "util/result.h"

namespace comx {

/// Window assignment backend.
enum class BatchAlgo : int32_t {
  /// Size-routed: dense Hungarian for small windows, greedy beyond
  /// auto_dense_cell_limit cells (the legacy batch-simulator policy).
  kAuto = 0,
  kGreedy = 1,
  kHungarian = 2,
  kAuction = 3,
  /// Warm-started incremental Kuhn–Munkres with per-worker dual carryover.
  kIncrementalKm = 4,
};

/// "auto", "greedy", "hungarian", "auction", "incremental_km".
const char* BatchAlgoName(BatchAlgo algo);

/// Inverse of BatchAlgoName; errors with InvalidArgument on unknown names.
Result<BatchAlgo> ParseBatchAlgo(std::string_view name);

/// Tuning for BatchMatcher.
struct BatchMatchConfig {
  BatchAlgo algo = BatchAlgo::kAuto;
  /// kAuto switches from Hungarian to greedy above this many L×R cells.
  int64_t auto_dense_cell_limit = 250'000;
  /// Carry per-worker duals across windows (kIncrementalKm only).
  bool warm_start = true;
  /// Passed through when algo == kAuction.
  AuctionConfig auction;
  /// Relaxation budget per window when algo == kIncrementalKm.
  IncrementalKuhnMunkres::Config km;
};

/// Solves one window at a time, carrying warm-start state between calls.
class BatchMatcher {
 public:
  explicit BatchMatcher(BatchMatchConfig config = {});

  /// Solves one window: left vertices are the window's pending requests,
  /// right vertices the idle workers, `worker_of_column[j]` the WorkerId
  /// behind column j (used to key the warm-start duals; must have
  /// graph.right_count() entries). Errors propagate from the backend
  /// solver; InvalidArgument on a worker_of_column size mismatch.
  Result<BipartiteMatching> SolveWindow(
      const BipartiteGraph& graph,
      const std::vector<WorkerId>& worker_of_column);

  /// Backend that solved the last window ("hungarian", "greedy", ...).
  const char* last_solver() const { return last_solver_; }

  /// Dual-feasibility gap of the last incremental-KM window (0 when the
  /// last window used another backend). Any positive value is a bug; the
  /// property suite asserts 0 after every warm-started window.
  double last_dual_gap() const { return last_dual_gap_; }

  /// Drops the carried duals (e.g. at a day boundary).
  void ResetWarmState() { worker_potential_.clear(); }

  const BatchMatchConfig& config() const { return config_; }

 private:
  BatchMatchConfig config_;
  const char* last_solver_ = "none";
  double last_dual_gap_ = 0.0;
  std::unordered_map<WorkerId, double> worker_potential_;
};

}  // namespace comx

#endif  // COMX_MATCHING_BATCH_MATCHER_H_
