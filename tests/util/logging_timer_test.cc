#include <thread>

#include <gtest/gtest.h>

#include "util/logging.h"
#include "util/timer.h"

namespace comx {
namespace {

TEST(LoggingTest, LevelFilterRoundTrip) {
  const LogLevel original = GetLogLevel();
  SetLogLevel(LogLevel::kError);
  EXPECT_EQ(GetLogLevel(), LogLevel::kError);
  SetLogLevel(LogLevel::kDebug);
  EXPECT_EQ(GetLogLevel(), LogLevel::kDebug);
  SetLogLevel(original);
}

TEST(LoggingTest, StreamMacroDoesNotCrashAtAnyLevel) {
  const LogLevel original = GetLogLevel();
  SetLogLevel(LogLevel::kError);  // suppress output during the test
  COMX_LOG(Debug) << "debug " << 1;
  COMX_LOG(Info) << "info " << 2.5;
  COMX_LOG(Warning) << "warn " << "three";
  SetLogLevel(original);
  SUCCEED();
}

TEST(StopwatchTest, MeasuresElapsedTime) {
  Stopwatch sw;
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  const double ms = sw.ElapsedMillis();
  EXPECT_GE(ms, 15.0);
  EXPECT_LT(ms, 2000.0);  // generous upper bound for loaded CI machines
}

TEST(StopwatchTest, UnitsAreConsistent) {
  Stopwatch sw;
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  const int64_t nanos = sw.ElapsedNanos();
  const double micros = sw.ElapsedMicros();
  const double millis = sw.ElapsedMillis();
  EXPECT_NEAR(micros, static_cast<double>(nanos) / 1e3, micros * 0.5 + 100);
  EXPECT_NEAR(millis, micros / 1e3, millis * 0.5 + 1);
}

TEST(StopwatchTest, ResetRestarts) {
  Stopwatch sw;
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  sw.Reset();
  EXPECT_LT(sw.ElapsedMillis(), 10.0);
}

TEST(StopwatchTest, MonotonicallyNonDecreasing) {
  Stopwatch sw;
  int64_t prev = 0;
  for (int i = 0; i < 100; ++i) {
    const int64_t now = sw.ElapsedNanos();
    EXPECT_GE(now, prev);
    prev = now;
  }
}

}  // namespace
}  // namespace comx
