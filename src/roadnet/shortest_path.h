// Shortest-path queries over a RoadGraph: point-to-point Dijkstra / A* and
// the bounded "Dijkstra ball" that powers road-network range constraints
// (all nodes reachable within d km — the paper's "irregular shapes").

#ifndef COMX_ROADNET_SHORTEST_PATH_H_
#define COMX_ROADNET_SHORTEST_PATH_H_

#include <limits>
#include <vector>

#include "roadnet/road_graph.h"

namespace comx {

/// Sentinel distance for unreachable nodes.
inline constexpr double kUnreachable =
    std::numeric_limits<double>::infinity();

/// Shortest network distance from `source` to `target` in km; kUnreachable
/// when disconnected. Plain Dijkstra with early exit at the target.
double ShortestPathKm(const RoadGraph& graph, NodeId source, NodeId target);

/// A* with the Euclidean heuristic (admissible because every edge is at
/// least as long as its Euclidean span). Identical results to Dijkstra,
/// fewer settled nodes on spread-out targets.
double AStarKm(const RoadGraph& graph, NodeId source, NodeId target);

/// Distances from `source` to every node (full Dijkstra).
std::vector<double> SingleSourceKm(const RoadGraph& graph, NodeId source);

/// One reached node of a bounded Dijkstra.
struct ReachedNode {
  NodeId node = 0;
  double distance_km = 0.0;
};

/// All nodes within `radius_km` network distance of `source`, in
/// non-decreasing distance order (the "Dijkstra ball").
std::vector<ReachedNode> NodesWithinKm(const RoadGraph& graph, NodeId source,
                                       double radius_km);

/// Shortest path as a node sequence (source first, target last); empty
/// when unreachable.
std::vector<NodeId> ShortestPathNodes(const RoadGraph& graph, NodeId source,
                                      NodeId target);

}  // namespace comx

#endif  // COMX_ROADNET_SHORTEST_PATH_H_
