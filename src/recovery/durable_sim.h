// Durable simulation driver: runs the resumable engine (sim/sim_engine.h)
// under a write-ahead log plus periodic checkpoints, and recovers a killed
// run to a state bit-exact with the uninterrupted one.
//
// Durability protocol, in order, for every step:
//   1. the engine executes the step;
//   2. the step's WAL records (arrival, or breaker transitions + two-phase
//      reserve/conflict/confirm + decision-with-digest) are appended and
//      group-committed;
//   3. on the checkpoint cadence, the WAL is committed FIRST and only then
//      the engine snapshot is staged + renamed into place — so a
//      checkpoint's next_lsn never points past durable records.
//
// Recovery leans on the simulation being deterministic: rather than
// applying logged effects, it restores the newest valid checkpoint (falling
// back across corrupt generations) and RE-EXECUTES the remaining steps,
// byte-comparing every regenerated WAL record against the durable one at
// the same position. Any divergence is a DataLoss error — the
// `recovery-bit-exact` oracle. A torn tail is truncated back to the last
// step-boundary record; successful reserves in the discarded fragment are
// the in-flight two-phase commits, re-resolved by re-execution so Eq. 1
// revenue is never double-paid (the `no-double-commit-after-crash` oracle
// checks the final WAL).

#ifndef COMX_RECOVERY_DURABLE_SIM_H_
#define COMX_RECOVERY_DURABLE_SIM_H_

#include <cstdint>
#include <string>
#include <vector>

#include "recovery/checkpoint.h"
#include "recovery/crash_injector.h"
#include "recovery/wal.h"
#include "sim/simulator.h"
#include "util/result.h"

namespace comx {
namespace recovery {

struct DurableOptions {
  /// Directory holding wal.log and checkpoint-*.ckpt. Must exist.
  std::string dir;
  /// Snapshot cadence in steps; <= 0 disables checkpoints (WAL only).
  int64_t checkpoint_every_steps = 512;
  /// Checkpoint generations retained (>= 1).
  int keep_checkpoints = 2;
  WalWriterOptions wal;
  /// Optional deterministic crash injection; borrowed, may be null.
  CrashInjector* crash = nullptr;
};

std::string WalPath(const std::string& dir);

/// CRC32C digest over every worker, request, and event of the instance —
/// binds WAL + checkpoints to their exact input data.
uint64_t InstanceDigest(const Instance& instance);

/// Digest over the scalar simulation knobs (pointer members contribute
/// only their presence — a metric or fault plan cannot be hashed by value).
uint64_t SimConfigDigest(const SimConfig& config);

struct DurableRunStats {
  int64_t wal_records = 0;
  int64_t wal_commits = 0;
  int64_t wal_bytes = 0;
  /// Durable byte offset after each group commit, in order — the
  /// boundaries tools/crash_matrix targets for its "killed between batch
  /// fill and fsync" scenario.
  std::vector<int64_t> wal_commit_offsets;
  int64_t checkpoints = 0;
  /// (generation, file bytes) per checkpoint written — the CrashProfile
  /// input for tools/crash_matrix.
  std::vector<CrashProfile::CheckpointSpan> checkpoint_spans;

  // Recovery-side accounting (zero for plain durable runs):
  int64_t recovered_generation = -1;  // -1 = recovered from WAL alone
  int64_t replayed_records = 0;       // durable records verified by replay
  int64_t discarded_bytes = 0;        // torn / mid-step tail truncated
  int64_t inflight_reserves_resolved = 0;
  int64_t checkpoint_fallbacks = 0;
  bool torn_tail = false;
};

struct DurableOutcome {
  /// Valid only when !crashed.
  SimResult result;
  /// True when the injected crash fired before the run completed; the
  /// run's files are left exactly as the "crash" left them.
  bool crashed = false;
  DurableRunStats stats;
};

/// Runs the full simulation durably in `options.dir`. With an armed crash
/// injector the run may come back `crashed` instead of completing.
Result<DurableOutcome> RunDurableSimulation(
    const Instance& instance, const std::vector<OnlineMatcher*>& matchers,
    const SimConfig& config, uint64_t seed, const DurableOptions& options);

/// Recovers a crashed (or completed) durable run from `options.dir` and
/// resumes it to completion: restore newest valid checkpoint, re-execute
/// with per-record byte verification against the durable WAL tail, truncate
/// the torn fragment, journal a recovery mark, then continue live. The
/// returned result is bit-exact with the uninterrupted run's. DataLoss on
/// verification divergence or unusable files.
Result<DurableOutcome> RecoverAndResume(const Instance& instance,
                                        const std::vector<OnlineMatcher*>& matchers,
                                        const SimConfig& config, uint64_t seed,
                                        const DurableOptions& options);

/// Reconstructs the run's decision trace (obs/trace.h JSONL, one decision
/// line per kDecision record plus the summary) from the WAL alone. Two WALs
/// of equivalent runs rebuild byte-identical trace files; a live-traced
/// plain run differs only in per-event latency_ns (the rebuild writes -1,
/// and durable runs never measure response time anyway).
Status RebuildTraceFromWal(const std::string& wal_path,
                           const std::string& trace_path);

}  // namespace recovery
}  // namespace comx

#endif  // COMX_RECOVERY_DURABLE_SIM_H_
