file(REMOVE_RECURSE
  "CMakeFiles/comx_sim_test.dir/sim/batch_simulator_test.cc.o"
  "CMakeFiles/comx_sim_test.dir/sim/batch_simulator_test.cc.o.d"
  "CMakeFiles/comx_sim_test.dir/sim/competitive_ratio_test.cc.o"
  "CMakeFiles/comx_sim_test.dir/sim/competitive_ratio_test.cc.o.d"
  "CMakeFiles/comx_sim_test.dir/sim/metrics_test.cc.o"
  "CMakeFiles/comx_sim_test.dir/sim/metrics_test.cc.o.d"
  "CMakeFiles/comx_sim_test.dir/sim/multi_day_test.cc.o"
  "CMakeFiles/comx_sim_test.dir/sim/multi_day_test.cc.o.d"
  "CMakeFiles/comx_sim_test.dir/sim/offline_schedule_test.cc.o"
  "CMakeFiles/comx_sim_test.dir/sim/offline_schedule_test.cc.o.d"
  "CMakeFiles/comx_sim_test.dir/sim/reservation_mode_test.cc.o"
  "CMakeFiles/comx_sim_test.dir/sim/reservation_mode_test.cc.o.d"
  "CMakeFiles/comx_sim_test.dir/sim/result_io_test.cc.o"
  "CMakeFiles/comx_sim_test.dir/sim/result_io_test.cc.o.d"
  "CMakeFiles/comx_sim_test.dir/sim/simulator_test.cc.o"
  "CMakeFiles/comx_sim_test.dir/sim/simulator_test.cc.o.d"
  "CMakeFiles/comx_sim_test.dir/sim/worker_pool_test.cc.o"
  "CMakeFiles/comx_sim_test.dir/sim/worker_pool_test.cc.o.d"
  "comx_sim_test"
  "comx_sim_test.pdb"
  "comx_sim_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/comx_sim_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
