#include "fault/circuit_breaker.h"

#include <gtest/gtest.h>

namespace comx {
namespace fault {
namespace {

CircuitBreakerConfig SmallConfig() {
  CircuitBreakerConfig config;
  config.failure_threshold = 3;
  config.open_seconds = 60.0;
  config.half_open_successes = 2;
  return config;
}

TEST(CircuitBreakerTest, StartsClosedAndAllows) {
  CircuitBreaker breaker(SmallConfig());
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::kClosed);
  EXPECT_TRUE(breaker.AllowRequest(0.0));
  EXPECT_EQ(breaker.transitions(), 0);
}

TEST(CircuitBreakerTest, OpensAfterConsecutiveFailures) {
  CircuitBreaker breaker(SmallConfig());
  breaker.RecordFailure(1.0);
  breaker.RecordFailure(2.0);
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::kClosed);
  breaker.RecordFailure(3.0);
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::kOpen);
  EXPECT_FALSE(breaker.AllowRequest(3.0));
  EXPECT_EQ(breaker.transitions(), 1);
}

TEST(CircuitBreakerTest, SuccessResetsConsecutiveCount) {
  CircuitBreaker breaker(SmallConfig());
  breaker.RecordFailure(1.0);
  breaker.RecordFailure(2.0);
  breaker.RecordSuccess(3.0);  // streak broken
  breaker.RecordFailure(4.0);
  breaker.RecordFailure(5.0);
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::kClosed);
}

TEST(CircuitBreakerTest, FullCycleClosedOpenHalfOpenClosed) {
  CircuitBreaker breaker(SmallConfig());
  for (int i = 0; i < 3; ++i) breaker.RecordFailure(10.0);
  ASSERT_EQ(breaker.state(), CircuitBreaker::State::kOpen);
  // Still inside the cooldown: rejected without probing.
  EXPECT_FALSE(breaker.AllowRequest(69.9));
  // Cooldown elapsed: the next allowed call is a half-open probe.
  EXPECT_TRUE(breaker.AllowRequest(70.0));
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::kHalfOpen);
  breaker.RecordSuccess(70.0);
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::kHalfOpen);
  EXPECT_TRUE(breaker.AllowRequest(71.0));
  breaker.RecordSuccess(71.0);  // second probe success closes it
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::kClosed);
  // closed -> open -> half-open -> closed.
  EXPECT_EQ(breaker.transitions(), 3);
}

TEST(CircuitBreakerTest, ProbeFailureReopensAndRestartsCooldown) {
  CircuitBreaker breaker(SmallConfig());
  for (int i = 0; i < 3; ++i) breaker.RecordFailure(10.0);
  ASSERT_TRUE(breaker.AllowRequest(70.0));  // half-open probe
  breaker.RecordFailure(70.0);
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::kOpen);
  // The cooldown restarted at t=70: what would have been past the original
  // window is still inside the new one.
  EXPECT_FALSE(breaker.AllowRequest(100.0));
  EXPECT_TRUE(breaker.AllowRequest(130.0));
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::kHalfOpen);
}

TEST(CircuitBreakerTest, StateNamesAreStable) {
  EXPECT_STREQ(CircuitBreakerStateName(CircuitBreaker::State::kClosed),
               "closed");
  EXPECT_STREQ(CircuitBreakerStateName(CircuitBreaker::State::kOpen), "open");
  EXPECT_STREQ(CircuitBreakerStateName(CircuitBreaker::State::kHalfOpen),
               "half_open");
}

}  // namespace
}  // namespace fault
}  // namespace comx
