// Reproduces Table V: effectiveness/efficiency on the RDC10 + RYC10 clone
// (Chengdu, Oct 2016).

#include "table_main.h"

int main(int argc, char** argv) {
  return comx::bench::TableMain(
      argc, argv, comx::Rdc10Ryc10(), "Table V (RDC10 + RYC10)",
      "  OFF    Rev 1.752M/1.743M  resp 0.34ms  CpR 91,321/90,589\n"
      "  TOTA   Rev 1.343M/1.348M  resp 0.43ms  CpR 68,689/68,453\n"
      "  DemCOM Rev 1.369M/1.372M  resp 0.43ms  CpR 71,931/71,721  "
      "CoR 7,077   AcpRt 0.16  v'/v 0.72\n"
      "  RamCOM Rev 1.436M/1.437M  resp 0.56ms  CpR 69,186/68,560  "
      "CoR 72,417  AcpRt 0.66  v'/v 0.81");
}
