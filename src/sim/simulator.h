// Event-driven co-simulation of every platform over one Instance.
//
// The interleaved arrival stream (workers + requests of all platforms) is
// replayed chronologically. Each platform runs its own OnlineMatcher; the
// shared WorkerPool realizes the 1-by-1 and invariable constraints (a
// matched worker leaves every waiting list at once and assignments are
// final). When `workers_recycle` is on, a worker finishing a service
// re-enters the pool at the request's location after a travel + service
// delay — this is how the paper's day-scale datasets complete far more
// requests than they have workers.

#ifndef COMX_SIM_SIMULATOR_H_
#define COMX_SIM_SIMULATOR_H_

#include <vector>

#include "core/online_matcher.h"
#include "fault/fault_session.h"
#include "geo/distance_metric.h"
#include "matching/batch_matcher.h"
#include "model/assignment.h"
#include "model/instance.h"
#include "sim/metrics.h"
#include "util/result.h"

namespace comx {

namespace obs {
class TraceSink;
}  // namespace obs

class AcceptanceModel;

/// Physical model + run knobs for the simulation.
struct SimConfig {
  /// Whether workers re-enter the waiting lists after completing a request.
  /// Off = strict 1-by-1 of Definition 2.6 (the theory / CR setting);
  /// on = the day-scale evaluation setting of Section V.
  bool workers_recycle = true;
  /// Travel speed towards the pickup, km/h.
  double speed_kmh = 30.0;
  /// Fixed part of the service duration, seconds.
  double base_service_seconds = 300.0;
  /// Value-proportional part of the service duration, seconds per value
  /// unit (ride fares correlate with ride durations).
  double service_seconds_per_value = 30.0;
  /// Measure per-request matcher latency (adds two clock reads/request).
  bool measure_response_time = true;
  /// How real offers are accepted: the paper's per-offer Bernoulli, or the
  /// fixed-reservation ground truth shared with the offline solver (used by
  /// the competitive-ratio harness; see pricing/acceptance_model.h).
  AcceptanceMode acceptance_mode = AcceptanceMode::kBernoulli;
  /// Reservation draw seed (kReservation mode only); must match the
  /// OfflineConfig seed for online <= OPT to hold exactly.
  uint64_t reservation_seed = 42;
  /// Travel metric realizing the range constraint and pickup distances;
  /// nullptr = Euclidean. Use roadnet::RoadNetworkMetric for the paper's
  /// road-network variant. Must outlive the simulation.
  const DistanceMetric* metric = nullptr;
  /// Optional decision trace: every request decision (candidate counts,
  /// pricing effort, acceptance outcome, final assignment) is recorded
  /// here, plus a run-totals summary at the end. Tracing never consumes
  /// RNG draws, so results are bit-identical with or without it. Must
  /// outlive the simulation. See obs/trace.h.
  obs::TraceSink* trace = nullptr;
  /// Optional partner fault injection (fault/fault_plan.h). nullptr (the
  /// default) or a plan whose specs are all trivial leaves every matcher's
  /// result bit-identical to a plain run: the injector draws from its own
  /// RNG, and a trivial partner costs one predicted branch per outer
  /// query. Must outlive the simulation.
  const fault::FaultPlan* fault_plan = nullptr;
  /// Micro-batch dispatch: requests are held until their virtual-time
  /// window closes and each window is solved as one small assignment
  /// problem (matching/batch_matcher.h) instead of request-by-request
  /// online decisions. The per-platform OnlineMatchers passed to the run
  /// are Reset() but never consulted. Incompatible with fault injection
  /// and with SaveState checkpoints.
  bool batch_mode = false;
  /// Window length in virtual seconds. 0 flushes every request in its own
  /// window immediately — provably bit-identical to the WindowGreedy
  /// online matcher (see core/window_greedy.h).
  double batch_window_seconds = 30.0;
  /// Window solver tuning (algorithm, warm start, budgets).
  BatchMatchConfig batch;
  /// Optional prebuilt acceptance model. The model is a pure function of
  /// (instance, acceptance_mode, reservation_seed), so a seed grid over one
  /// instance can build it once and share it across runs (it is immutable
  /// after construction and safe for concurrent reads) instead of
  /// re-sorting every worker history per run. nullptr = build internally.
  /// Must match this config's instance/mode/seed and outlive the run.
  const AcceptanceModel* acceptance = nullptr;
};

/// Outcome of one simulation run.
struct SimResult {
  SimMetrics metrics;
  /// Every assignment made, across all platforms.
  Matching matching;
  /// Whole-run fault accounting (all zero unless SimConfig::fault_plan was
  /// set): attempts, retries, breaker activity, reserve conflicts, and
  /// degraded-request counts. Deterministic for a fixed (seed, plan).
  fault::FaultSessionStats fault_stats;
};

/// Travel time to the pickup plus the service itself, in seconds — the
/// physics shared by the simulator, the audit, and the exact offline
/// scheduler (core/offline_schedule.h).
double ServiceDurationSeconds(const SimConfig& config, double pickup_km,
                              double value);

/// Runs all matchers over the instance. `matchers[p]` handles the requests
/// of platform p; its size must equal instance.PlatformCount(). Matchers
/// are Reset() with `seed + p` before the run.
Result<SimResult> RunSimulation(const Instance& instance,
                                const std::vector<OnlineMatcher*>& matchers,
                                const SimConfig& config, uint64_t seed);

/// Convenience: clones of a single matcher semantics — every platform uses
/// the same policy object sequence. Provided as a factory callback so each
/// platform gets an independent instance.
using MatcherFactory = OnlineMatcher* (*)();

/// Post-hoc audit used by tests: verifies that `result` is feasible for
/// `instance` under `config` — every assignment respects the time, range,
/// 1-by-1 (per availability episode) and revenue-accounting rules.
Status AuditSimResult(const Instance& instance, const SimConfig& config,
                      const SimResult& result);

}  // namespace comx

#endif  // COMX_SIM_SIMULATOR_H_
