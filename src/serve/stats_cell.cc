#include "serve/stats_cell.h"

#include <algorithm>

namespace comx {
namespace serve {

ShardSnapshot MergeSnapshots(const std::vector<ShardSnapshot>& shards) {
  ShardSnapshot total;
  for (const ShardSnapshot& s : shards) {
    total.submitted += s.submitted;
    total.steps += s.steps;
    total.arrivals += s.arrivals;
    total.decisions += s.decisions;
    total.inner += s.inner;
    total.outer += s.outer;
    total.rejects += s.rejects;
    total.queue_depth += s.queue_depth;
    total.revenue += s.revenue;
    if (total.platforms.size() < s.platforms.size()) {
      total.platforms.resize(s.platforms.size());
    }
    for (size_t p = 0; p < s.platforms.size(); ++p) {
      total.platforms[p].requests += s.platforms[p].requests;
      total.platforms[p].inner += s.platforms[p].inner;
      total.platforms[p].outer += s.platforms[p].outer;
      total.platforms[p].rejects += s.platforms[p].rejects;
      total.platforms[p].revenue += s.platforms[p].revenue;
    }
  }
  return total;
}

}  // namespace serve
}  // namespace comx
