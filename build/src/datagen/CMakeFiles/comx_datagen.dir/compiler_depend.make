# Empty compiler generated dependencies file for comx_datagen.
# This may be replaced when dependencies are built.
