#include "roadnet/shortest_path.h"

#include <algorithm>
#include <queue>

#include "geo/distance.h"

namespace comx {
namespace {

using QItem = std::pair<double, NodeId>;  // (priority, node)
using MinQueue =
    std::priority_queue<QItem, std::vector<QItem>, std::greater<>>;

}  // namespace

double ShortestPathKm(const RoadGraph& graph, NodeId source, NodeId target) {
  if (source == target) return 0.0;
  std::vector<double> dist(static_cast<size_t>(graph.node_count()),
                           kUnreachable);
  dist[static_cast<size_t>(source)] = 0.0;
  MinQueue queue;
  queue.emplace(0.0, source);
  while (!queue.empty()) {
    const auto [d, u] = queue.top();
    queue.pop();
    if (u == target) return d;
    if (d > dist[static_cast<size_t>(u)]) continue;
    for (const RoadArc& arc : graph.ArcsFrom(u)) {
      const double nd = d + arc.length_km;
      if (nd < dist[static_cast<size_t>(arc.to)]) {
        dist[static_cast<size_t>(arc.to)] = nd;
        queue.emplace(nd, arc.to);
      }
    }
  }
  return kUnreachable;
}

double AStarKm(const RoadGraph& graph, NodeId source, NodeId target) {
  if (source == target) return 0.0;
  const Point goal = graph.NodeLocation(target);
  std::vector<double> g(static_cast<size_t>(graph.node_count()),
                        kUnreachable);
  g[static_cast<size_t>(source)] = 0.0;
  MinQueue open;
  open.emplace(EuclideanDistance(graph.NodeLocation(source), goal), source);
  while (!open.empty()) {
    const auto [f, u] = open.top();
    open.pop();
    if (u == target) return g[static_cast<size_t>(u)];
    // Stale-entry skip: recompute f from current g.
    const double fu = g[static_cast<size_t>(u)] +
                      EuclideanDistance(graph.NodeLocation(u), goal);
    if (f > fu + 1e-12) continue;
    for (const RoadArc& arc : graph.ArcsFrom(u)) {
      const double ng = g[static_cast<size_t>(u)] + arc.length_km;
      if (ng < g[static_cast<size_t>(arc.to)]) {
        g[static_cast<size_t>(arc.to)] = ng;
        open.emplace(ng + EuclideanDistance(graph.NodeLocation(arc.to), goal),
                     arc.to);
      }
    }
  }
  return kUnreachable;
}

std::vector<double> SingleSourceKm(const RoadGraph& graph, NodeId source) {
  std::vector<double> dist(static_cast<size_t>(graph.node_count()),
                           kUnreachable);
  dist[static_cast<size_t>(source)] = 0.0;
  MinQueue queue;
  queue.emplace(0.0, source);
  while (!queue.empty()) {
    const auto [d, u] = queue.top();
    queue.pop();
    if (d > dist[static_cast<size_t>(u)]) continue;
    for (const RoadArc& arc : graph.ArcsFrom(u)) {
      const double nd = d + arc.length_km;
      if (nd < dist[static_cast<size_t>(arc.to)]) {
        dist[static_cast<size_t>(arc.to)] = nd;
        queue.emplace(nd, arc.to);
      }
    }
  }
  return dist;
}

std::vector<ReachedNode> NodesWithinKm(const RoadGraph& graph, NodeId source,
                                       double radius_km) {
  std::vector<ReachedNode> reached;
  if (radius_km < 0.0) return reached;
  std::vector<double> dist(static_cast<size_t>(graph.node_count()),
                           kUnreachable);
  dist[static_cast<size_t>(source)] = 0.0;
  MinQueue queue;
  queue.emplace(0.0, source);
  while (!queue.empty()) {
    const auto [d, u] = queue.top();
    queue.pop();
    if (d > dist[static_cast<size_t>(u)]) continue;
    reached.push_back(ReachedNode{u, d});
    for (const RoadArc& arc : graph.ArcsFrom(u)) {
      const double nd = d + arc.length_km;
      if (nd <= radius_km && nd < dist[static_cast<size_t>(arc.to)]) {
        dist[static_cast<size_t>(arc.to)] = nd;
        queue.emplace(nd, arc.to);
      }
    }
  }
  return reached;
}

std::vector<NodeId> ShortestPathNodes(const RoadGraph& graph, NodeId source,
                                      NodeId target) {
  std::vector<double> dist(static_cast<size_t>(graph.node_count()),
                           kUnreachable);
  std::vector<NodeId> parent(static_cast<size_t>(graph.node_count()), -1);
  dist[static_cast<size_t>(source)] = 0.0;
  MinQueue queue;
  queue.emplace(0.0, source);
  while (!queue.empty()) {
    const auto [d, u] = queue.top();
    queue.pop();
    if (u == target) break;
    if (d > dist[static_cast<size_t>(u)]) continue;
    for (const RoadArc& arc : graph.ArcsFrom(u)) {
      const double nd = d + arc.length_km;
      if (nd < dist[static_cast<size_t>(arc.to)]) {
        dist[static_cast<size_t>(arc.to)] = nd;
        parent[static_cast<size_t>(arc.to)] = u;
        queue.emplace(nd, arc.to);
      }
    }
  }
  if (dist[static_cast<size_t>(target)] == kUnreachable && source != target) {
    return {};
  }
  std::vector<NodeId> path;
  for (NodeId v = target; v != -1; v = parent[static_cast<size_t>(v)]) {
    path.push_back(v);
    if (v == source) break;
  }
  std::reverse(path.begin(), path.end());
  if (path.front() != source) return {};
  return path;
}

}  // namespace comx
