// Assignment records and the Matching result type shared by all algorithms.

#ifndef COMX_MODEL_ASSIGNMENT_H_
#define COMX_MODEL_ASSIGNMENT_H_

#include <vector>

#include "model/ids.h"

namespace comx {

/// One matched (request, worker) pair and its revenue accounting.
struct Assignment {
  RequestId request = kInvalidId;
  WorkerId worker = kInvalidId;
  /// True when the worker was borrowed from another platform.
  bool is_outer = false;
  /// Outer payment v'_r handed to the borrowed worker; 0 for inner matches.
  double outer_payment = 0.0;
  /// Revenue credited to the target platform: v_r for inner matches,
  /// v_r - outer_payment for outer ones (Definition 2.5).
  double revenue = 0.0;

  bool operator==(const Assignment& o) const {
    return request == o.request && worker == o.worker &&
           is_outer == o.is_outer && outer_payment == o.outer_payment &&
           revenue == o.revenue;
  }
};

/// A full matching result M with its total revenue.
struct Matching {
  std::vector<Assignment> assignments;
  /// Sum of assignment revenues (kept incrementally; Verify in tests).
  double total_revenue = 0.0;

  /// Appends an assignment and accumulates its revenue.
  void Add(const Assignment& a) {
    assignments.push_back(a);
    total_revenue += a.revenue;
  }

  /// Number of matched requests.
  size_t size() const { return assignments.size(); }
};

}  // namespace comx

#endif  // COMX_MODEL_ASSIGNMENT_H_
