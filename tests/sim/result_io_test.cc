#include "sim/result_io.h"

#include <cstdio>
#include <fstream>

#include <gtest/gtest.h>

#include "core/dem_com.h"
#include "sim/simulator.h"
#include "testing/builders.h"

namespace comx {
namespace {

using testing_fixtures::PaperExample;

std::string TempPath(const std::string& name) {
  return testing::TempDir() + "/" + name;
}

Matching RunDem(const Instance& ins) {
  SimConfig sim;
  sim.workers_recycle = false;
  sim.measure_response_time = false;
  DemCom m0, m1;
  auto r = RunSimulation(ins, {&m0, &m1}, sim, 7);
  EXPECT_TRUE(r.ok());
  return r->matching;
}

TEST(ResultIoTest, RoundTrip) {
  const Instance ins = PaperExample();
  const Matching original = RunDem(ins);
  const std::string path = TempPath("matching_roundtrip.csv");
  ASSERT_TRUE(SaveMatchingCsv(ins, original, path).ok());
  auto loaded = LoadMatchingCsv(ins, path);
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  ASSERT_EQ(loaded->assignments.size(), original.assignments.size());
  for (size_t i = 0; i < original.assignments.size(); ++i) {
    EXPECT_EQ(loaded->assignments[i], original.assignments[i]) << i;
  }
  EXPECT_NEAR(loaded->total_revenue, original.total_revenue, 1e-9);
  std::remove(path.c_str());
}

TEST(ResultIoTest, EmptyMatchingRoundTrips) {
  const Instance ins = PaperExample();
  const std::string path = TempPath("matching_empty.csv");
  ASSERT_TRUE(SaveMatchingCsv(ins, Matching{}, path).ok());
  auto loaded = LoadMatchingCsv(ins, path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_TRUE(loaded->assignments.empty());
  std::remove(path.c_str());
}

TEST(ResultIoTest, SaveRejectsDanglingIds) {
  const Instance ins = PaperExample();
  Matching bad;
  Assignment a;
  a.request = 99;
  a.worker = 0;
  a.revenue = 1.0;
  bad.Add(a);
  EXPECT_FALSE(SaveMatchingCsv(ins, bad, TempPath("matching_bad.csv")).ok());
}

TEST(ResultIoTest, LoadRejectsBadHeader) {
  const Instance ins = PaperExample();
  const std::string path = TempPath("matching_badheader.csv");
  {
    std::ofstream out(path);
    out << "nope\n";
  }
  EXPECT_FALSE(LoadMatchingCsv(ins, path).ok());
  std::remove(path.c_str());
}

TEST(ResultIoTest, LoadRejectsInconsistentRevenue) {
  const Instance ins = PaperExample();
  const std::string path = TempPath("matching_badrev.csv");
  {
    std::ofstream out(path);
    out << "request,worker,request_platform,worker_platform,is_outer,"
           "outer_payment,revenue,value,time\n";
    out << "0,0,0,0,0,0,999,4,3\n";  // revenue 999 != value 4
  }
  auto loaded = LoadMatchingCsv(ins, path);
  EXPECT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kFailedPrecondition);
  std::remove(path.c_str());
}

TEST(ResultIoTest, LoadRejectsUnknownEntities) {
  const Instance ins = PaperExample();
  const std::string path = TempPath("matching_unknown.csv");
  {
    std::ofstream out(path);
    out << "request,worker,request_platform,worker_platform,is_outer,"
           "outer_payment,revenue,value,time\n";
    out << "42,0,0,0,0,0,4,4,3\n";
  }
  EXPECT_FALSE(LoadMatchingCsv(ins, path).ok());
  std::remove(path.c_str());
}

}  // namespace
}  // namespace comx
