#include "util/thread_pool.h"

#include <algorithm>

namespace comx {

ThreadPool::ThreadPool(size_t threads) {
  if (threads == 0) {
    threads = std::max<size_t>(1, std::thread::hardware_concurrency());
  }
  workers_.reserve(threads);
  for (size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::unique_lock<std::mutex> lock(mutex_);
    shutdown_ = true;
  }
  task_ready_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

void ThreadPool::Submit(std::function<void()> task) {
  {
    std::unique_lock<std::mutex> lock(mutex_);
    tasks_.push(std::move(task));
    ++in_flight_;
  }
  task_ready_.notify_one();
}

void ThreadPool::Wait() {
  std::unique_lock<std::mutex> lock(mutex_);
  all_done_.wait(lock, [this] { return in_flight_ == 0; });
}

void ThreadPool::WorkerLoop() {
  while (true) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      task_ready_.wait(lock, [this] { return shutdown_ || !tasks_.empty(); });
      if (tasks_.empty()) {
        if (shutdown_) return;
        continue;
      }
      task = std::move(tasks_.front());
      tasks_.pop();
    }
    task();
    {
      std::unique_lock<std::mutex> lock(mutex_);
      if (--in_flight_ == 0) all_done_.notify_all();
    }
  }
}

void ParallelFor(size_t count, size_t threads,
                 const std::function<void(size_t)>& fn) {
  if (count == 0) return;
  if (threads <= 1 || count == 1) {
    for (size_t i = 0; i < count; ++i) fn(i);
    return;
  }
  ThreadPool pool(std::min(threads, count));
  for (size_t i = 0; i < count; ++i) {
    pool.Submit([&fn, i] { fn(i); });
  }
  pool.Wait();
}

}  // namespace comx
