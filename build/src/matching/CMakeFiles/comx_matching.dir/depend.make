# Empty dependencies file for comx_matching.
# This may be replaced when dependencies are built.
