file(REMOVE_RECURSE
  "CMakeFiles/bench_fig5_rad.dir/bench_fig5_rad.cc.o"
  "CMakeFiles/bench_fig5_rad.dir/bench_fig5_rad.cc.o.d"
  "bench_fig5_rad"
  "bench_fig5_rad.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig5_rad.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
