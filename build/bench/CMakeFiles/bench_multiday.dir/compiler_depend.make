# Empty compiler generated dependencies file for bench_multiday.
# This may be replaced when dependencies are built.
