file(REMOVE_RECURSE
  "libcomx_datagen.a"
)
