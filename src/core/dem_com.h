// DemCOM (Algorithm 1 of the paper): deterministic cross online matching.
//
// Inner workers get absolute priority: an incoming request is served by the
// nearest feasible inner worker when one exists. Otherwise the minimum
// outer payment v'_r is estimated by Monte-Carlo bisection (Algorithm 2 /
// pricing/min_payment_estimator.h); if v'_r <= v_r, every feasible outer
// worker draws a Bernoulli(pr(v'_r, w)) acceptance (Definition 3.1) and the
// request goes to the nearest accepting worker at payment v'_r, yielding
// revenue v_r - v'_r. Rejected otherwise.

#ifndef COMX_CORE_DEM_COM_H_
#define COMX_CORE_DEM_COM_H_

#include "core/online_matcher.h"
#include "pricing/min_payment_estimator.h"
#include "util/rng.h"

namespace comx {

/// Deterministic cross online matcher.
class DemCom : public OnlineMatcher {
 public:
  /// `config` tunes Algorithm 2's Monte-Carlo accuracy (Lemma 1).
  /// `max_outer_candidates` > 0 caps the cooperative candidate set to the
  /// nearest K workers before pricing — a production latency knob (the
  /// estimator's cost is linear in the candidate count); 0 = unlimited.
  explicit DemCom(MinPaymentConfig config = {}, int max_outer_candidates = 0)
      : config_(config), max_outer_candidates_(max_outer_candidates) {}

  void Reset(const Instance& instance, PlatformId platform,
             uint64_t seed) override;
  Decision OnRequest(const Request& r, const PlatformView& view) override;
  std::string name() const override { return "DemCOM"; }
  Status SaveState(ByteWriter* out) const override;
  Status RestoreState(ByteReader* in) override;

  /// Diagnostics accumulated since the last Reset.
  struct Diagnostics {
    /// Requests offered to outer workers.
    int64_t outer_offers = 0;
    /// Offers some outer worker accepted.
    int64_t outer_accepts = 0;
    /// Sum and count of quoted minimum payments, for mean payment rate.
    double payment_sum = 0.0;
    double payment_rate_sum = 0.0;  // sum of v'_r / v_r
  };
  const Diagnostics& diagnostics() const { return diag_; }

 private:
  MinPaymentConfig config_;
  int max_outer_candidates_ = 0;
  Rng rng_{0};
  Diagnostics diag_;
};

}  // namespace comx

#endif  // COMX_CORE_DEM_COM_H_
