file(REMOVE_RECURSE
  "CMakeFiles/comx_roadnet_test.dir/roadnet/road_generator_test.cc.o"
  "CMakeFiles/comx_roadnet_test.dir/roadnet/road_generator_test.cc.o.d"
  "CMakeFiles/comx_roadnet_test.dir/roadnet/road_graph_test.cc.o"
  "CMakeFiles/comx_roadnet_test.dir/roadnet/road_graph_test.cc.o.d"
  "CMakeFiles/comx_roadnet_test.dir/roadnet/road_metric_test.cc.o"
  "CMakeFiles/comx_roadnet_test.dir/roadnet/road_metric_test.cc.o.d"
  "CMakeFiles/comx_roadnet_test.dir/roadnet/shortest_path_test.cc.o"
  "CMakeFiles/comx_roadnet_test.dir/roadnet/shortest_path_test.cc.o.d"
  "comx_roadnet_test"
  "comx_roadnet_test.pdb"
  "comx_roadnet_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/comx_roadnet_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
