#include "roadnet/road_generator.h"

#include <gtest/gtest.h>

namespace comx {
namespace {

TEST(RoadGridConfigTest, ValidatesRanges) {
  RoadGridConfig c;
  EXPECT_TRUE(c.Validate().ok());
  c.rows = 1;
  EXPECT_FALSE(c.Validate().ok());
  c = RoadGridConfig{};
  c.spacing_km = 0.0;
  EXPECT_FALSE(c.Validate().ok());
  c = RoadGridConfig{};
  c.jitter_km = c.spacing_km;  // > 0.4 * spacing
  EXPECT_FALSE(c.Validate().ok());
  c = RoadGridConfig{};
  c.closure_fraction = 0.6;
  EXPECT_FALSE(c.Validate().ok());
  c = RoadGridConfig{};
  c.detour_factor = 0.9;
  EXPECT_FALSE(c.Validate().ok());
}

TEST(RoadGeneratorTest, NodeCountMatchesGrid) {
  RoadGridConfig c;
  c.rows = 5;
  c.cols = 7;
  auto g = GenerateGridCity(c);
  ASSERT_TRUE(g.ok());
  EXPECT_EQ(g->node_count(), 35);
}

TEST(RoadGeneratorTest, AlwaysConnected) {
  for (uint64_t seed = 0; seed < 10; ++seed) {
    RoadGridConfig c;
    c.rows = 10;
    c.cols = 10;
    c.closure_fraction = 0.5;  // max closures
    c.seed = seed;
    auto g = GenerateGridCity(c);
    ASSERT_TRUE(g.ok()) << "seed " << seed;
    EXPECT_TRUE(g->IsConnected()) << "seed " << seed;
  }
}

TEST(RoadGeneratorTest, CenteredGridStraddlesOrigin) {
  RoadGridConfig c;
  c.rows = 11;
  c.cols = 11;
  c.jitter_km = 0.0;
  auto g = GenerateGridCity(c);
  ASSERT_TRUE(g.ok());
  // Middle node of an 11x11 unit grid sits at the origin.
  const Point mid = g->NodeLocation(5 * 11 + 5);
  EXPECT_NEAR(mid.x, 0.0, 1e-9);
  EXPECT_NEAR(mid.y, 0.0, 1e-9);
}

TEST(RoadGeneratorTest, ClosuresReduceEdgeCount) {
  RoadGridConfig open;
  open.closure_fraction = 0.0;
  open.diagonal_fraction = 0.0;
  RoadGridConfig closed = open;
  closed.closure_fraction = 0.4;
  auto g_open = GenerateGridCity(open);
  auto g_closed = GenerateGridCity(closed);
  ASSERT_TRUE(g_open.ok());
  ASSERT_TRUE(g_closed.ok());
  EXPECT_LT(g_closed->edge_count(), g_open->edge_count());
  // Full grid edge count: rows*(cols-1) + cols*(rows-1).
  EXPECT_EQ(g_open->edge_count(),
            open.rows * (open.cols - 1) + open.cols * (open.rows - 1));
}

TEST(RoadGeneratorTest, DiagonalsAddEdges) {
  RoadGridConfig base;
  base.closure_fraction = 0.0;
  base.diagonal_fraction = 0.0;
  RoadGridConfig diag = base;
  diag.diagonal_fraction = 1.0;
  auto g_base = GenerateGridCity(base);
  auto g_diag = GenerateGridCity(diag);
  ASSERT_TRUE(g_base.ok());
  ASSERT_TRUE(g_diag.ok());
  EXPECT_GT(g_diag->edge_count(), g_base->edge_count());
}

TEST(RoadGeneratorTest, DetourInflatesLengths) {
  RoadGridConfig c;
  c.jitter_km = 0.0;
  c.closure_fraction = 0.0;
  c.diagonal_fraction = 0.0;
  c.detour_factor = 1.5;
  c.rows = 3;
  c.cols = 3;
  auto g = GenerateGridCity(c);
  ASSERT_TRUE(g.ok());
  for (NodeId n = 0; n < g->node_count(); ++n) {
    for (const RoadArc& arc : g->ArcsFrom(n)) {
      EXPECT_NEAR(arc.length_km, 1.5, 1e-9);  // unit spacing * detour
    }
  }
}

TEST(RoadGeneratorTest, DeterministicPerSeed) {
  RoadGridConfig c;
  c.seed = 77;
  auto a = GenerateGridCity(c);
  auto b = GenerateGridCity(c);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a->node_count(), b->node_count());
  EXPECT_EQ(a->edge_count(), b->edge_count());
  for (NodeId n = 0; n < a->node_count(); ++n) {
    EXPECT_EQ(a->NodeLocation(n), b->NodeLocation(n));
  }
}

}  // namespace
}  // namespace comx
