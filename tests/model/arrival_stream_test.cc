#include "model/arrival_stream.h"

#include <algorithm>
#include <set>

#include <gtest/gtest.h>

#include "testing/builders.h"

namespace comx {
namespace {

using testing_fixtures::PaperExample;

TEST(EventsForPlatformTest, KeepsAllWorkersAndOwnRequests) {
  const Instance ins = PaperExample();
  const auto events = EventsForPlatform(ins, 0);
  // Platform 0 owns all 5 requests; all 5 worker arrivals stay visible.
  EXPECT_EQ(events.size(), 10u);
  const auto events1 = EventsForPlatform(ins, 1);
  // Platform 1 has no requests: only the 5 worker arrivals.
  EXPECT_EQ(events1.size(), 5u);
  for (const Event& e : events1) {
    EXPECT_EQ(e.kind, EventKind::kWorkerArrival);
  }
}

TEST(RandomOrderCopyTest, PreservesEntities) {
  const Instance ins = PaperExample();
  Rng rng(5);
  const Instance shuffled = RandomOrderCopy(ins, &rng);
  EXPECT_EQ(shuffled.workers().size(), ins.workers().size());
  EXPECT_EQ(shuffled.requests().size(), ins.requests().size());
  // Values/locations/platforms unchanged.
  for (size_t i = 0; i < ins.requests().size(); ++i) {
    EXPECT_EQ(shuffled.requests()[i].value, ins.requests()[i].value);
    EXPECT_EQ(shuffled.requests()[i].location, ins.requests()[i].location);
    EXPECT_EQ(shuffled.requests()[i].platform, ins.requests()[i].platform);
  }
}

TEST(RandomOrderCopyTest, ProducesValidInstance) {
  const Instance ins = PaperExample();
  for (uint64_t seed = 0; seed < 20; ++seed) {
    Rng rng(seed);
    const Instance shuffled = RandomOrderCopy(ins, &rng);
    EXPECT_TRUE(shuffled.Validate().ok()) << "seed " << seed;
  }
}

TEST(RandomOrderCopyTest, TimesAreMonotoneDense) {
  const Instance ins = PaperExample();
  Rng rng(11);
  const Instance shuffled = RandomOrderCopy(ins, &rng);
  for (size_t i = 0; i < shuffled.events().size(); ++i) {
    EXPECT_EQ(shuffled.events()[i].time, static_cast<double>(i));
  }
}

TEST(RandomOrderCopyTest, DifferentSeedsGiveDifferentOrders) {
  const Instance ins = PaperExample();
  std::set<std::string> orders;
  for (uint64_t seed = 0; seed < 10; ++seed) {
    Rng rng(seed);
    orders.insert(ArrivalOrderString(RandomOrderCopy(ins, &rng)));
  }
  EXPECT_GT(orders.size(), 5u);
}

TEST(ArrivalOrderStringTest, MatchesTableTwoForPaperExample) {
  // Table II: w1 w2 r1 w3 r2 r3 w4 r4 w5 r5.
  EXPECT_EQ(ArrivalOrderString(PaperExample()),
            "w1, w2, r1, w3, r2, r3, w4, r4, w5, r5");
}

}  // namespace
}  // namespace comx
