# Empty dependencies file for food_delivery_surge.
# This may be replaced when dependencies are built.
