#include "obs/span.h"

#include <gtest/gtest.h>

#include "obs/metrics_registry.h"

namespace comx {
namespace obs {
namespace {

Histogram* PhaseHistogram(const char* phase) {
  return MetricsRegistry::Global().GetHistogram(
      MetricName("comx_span_seconds", "phase", phase),
      DefaultLatencyBoundsSeconds());
}

TEST(SpanTest, RecordsOneObservationPerScope) {
  SetCollectionEnabled(true);
  Histogram* h = PhaseHistogram("span_test_phase");
  const int64_t before = h->Count();
  for (int i = 0; i < 3; ++i) {
    COMX_SPAN("span_test_phase");
  }
  SetCollectionEnabled(false);
  EXPECT_EQ(h->Count(), before + 3);
  EXPECT_GE(h->Sum(), 0.0);
}

TEST(SpanTest, DisabledCollectionRecordsNothing) {
  SetCollectionEnabled(false);
  Histogram* h = PhaseHistogram("span_test_disabled");
  const int64_t before = h->Count();
  {
    COMX_SPAN("span_test_disabled");
  }
  EXPECT_EQ(h->Count(), before);
}

TEST(SpanTest, EnableStateIsSampledAtScopeEntry) {
  // A span opened while disabled must not record even if collection is
  // turned on before the scope closes (it never started its clock).
  SetCollectionEnabled(false);
  Histogram* h = PhaseHistogram("span_test_toggle");
  const int64_t before = h->Count();
  {
    COMX_SPAN("span_test_toggle");
    SetCollectionEnabled(true);
  }
  SetCollectionEnabled(false);
  EXPECT_EQ(h->Count(), before);
}

TEST(SpanTest, TwoSitesSamePhaseShareOneHistogram) {
  SetCollectionEnabled(true);
  Histogram* h = PhaseHistogram("span_test_shared");
  const int64_t before = h->Count();
  {
    COMX_SPAN("span_test_shared");
  }
  {
    COMX_SPAN("span_test_shared");
  }
  SetCollectionEnabled(false);
  EXPECT_EQ(h->Count(), before + 2);
}

}  // namespace
}  // namespace obs
}  // namespace comx
