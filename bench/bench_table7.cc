// Reproduces Table VII: effectiveness/efficiency on the RDX11 + RYX11 clone
// (Xi'an, Nov 2016 — the supply-starved 25:1 city).

#include "table_main.h"

int main(int argc, char** argv) {
  return comx::bench::TableMain(
      argc, argv, comx::Rdx11Ryx11(), "Table VII (RDX11 + RYX11)",
      "  OFF    Rev 1.103M/1.102M  resp 0.52ms  CpR 57,611/57,638\n"
      "  TOTA   Rev 0.512M/0.509M  resp 0.50ms  CpR 24,695/24,907\n"
      "  DemCOM Rev 0.525M/0.523M  resp 0.53ms  CpR 26,818/26,736  "
      "CoR 6,531   AcpRt 0.09  v'/v 0.77\n"
      "  RamCOM Rev 0.555M/0.549M  resp 0.55ms  CpR 26,730/26,666  "
      "CoR 16,487  AcpRt 0.25  v'/v 0.82");
}
