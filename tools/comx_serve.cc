// Always-on sharded matching service over a day-scale instance.
//
// Serves a line-oriented TCP protocol on 127.0.0.1 (one client at a time,
// pipelining allowed):
//   HELLO            -> "COMX-SERVE v1 events=N shards=K platforms=P"
//   S <i>            -> async "D <i> <shard> A <latency_ns>"            (arrival)
//                         or "D <i> <shard> D <outcome> <rev> <latency_ns>"
//                         or "E <i> <message>" on a submission error
//   STATS            -> one JSON line (seqlock snapshot; never blocks decisions)
//   METRICS          -> Prometheus text exposition, terminated by a "." line
//   DRAIN            -> graceful drain-to-completion; "T revenue=<r> assignments=<a>
//                         inner=<i> outer=<o> rejected=<j>"
//   QUIT             -> "BYE", exit 0
//
// --replay skips TCP entirely: the batch simulator reduced to a thin client
// that submits every event in order and drains. With --verify it re-runs
// RunSimulation() on the same instance and requires bit-identical revenue —
// the `--shards 1` equivalence gate.
//
// SIGINT/SIGTERM: the async-signal-safe guard (util/signal_guard.h) only
// sets a flag and pokes the wake pipe; the poll loop notices, quiesces the
// shards, fsyncs every WAL tail, and exits 128+signo.

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "core/cost_aware.h"
#include "core/dem_com.h"
#include "core/greedy_rt.h"
#include "core/ram_com.h"
#include "core/ranking.h"
#include "core/tota_greedy.h"
#include "core/window_greedy.h"
#include "datagen/dataset.h"
#include "datagen/synthetic.h"
#include "matching/batch_matcher.h"
#include "obs/exporters.h"
#include "obs/metrics_registry.h"
#include "obs/profiler.h"
#include "serve/match_service.h"
#include "sim/simulator.h"
#include "util/signal_guard.h"
#include "util/string_util.h"

namespace comx {
namespace {

const char* FlagValue(int argc, char** argv, const char* flag) {
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::strcmp(argv[i], flag) == 0) return argv[i + 1];
  }
  return nullptr;
}

bool HasFlag(int argc, char** argv, const char* flag) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], flag) == 0) return true;
  }
  return false;
}

int64_t IntFlag(int argc, char** argv, const char* flag, int64_t fallback) {
  const char* v = FlagValue(argc, argv, flag);
  return v != nullptr ? std::atoll(v) : fallback;
}

double DoubleFlag(int argc, char** argv, const char* flag, double fallback) {
  const char* v = FlagValue(argc, argv, flag);
  return v != nullptr ? std::atof(v) : fallback;
}

int Fail(const Status& status) {
  std::fprintf(stderr, "comx_serve: %s\n", status.ToString().c_str());
  return 1;
}

std::unique_ptr<OnlineMatcher> MakeMatcher(const std::string& algo) {
  if (algo == "tota") return std::make_unique<TotaGreedy>();
  if (algo == "ranking") return std::make_unique<Ranking>();
  if (algo == "greedyrt") return std::make_unique<GreedyRt>();
  if (algo == "demcom") return std::make_unique<DemCom>();
  if (algo == "ramcom") return std::make_unique<RamCom>();
  if (algo == "costdem") return std::make_unique<CostAwareDemCom>();
  // Micro-batch dispatch: the engine never consults these matchers, but
  // still Reset()s one per platform (WindowGreedy is the window=0 twin).
  if (algo == "batch") return std::make_unique<WindowGreedy>();
  return nullptr;
}

Result<Instance> BuildInstance(int argc, char** argv) {
  if (const char* prefix = FlagValue(argc, argv, "--load"); prefix != nullptr) {
    return LoadInstance(prefix);
  }
  SyntheticConfig config;
  config.platforms = static_cast<int32_t>(IntFlag(argc, argv, "--platforms", 2));
  config.requests_per_platform = {IntFlag(argc, argv, "--requests", 1250)};
  config.workers_per_platform = {IntFlag(argc, argv, "--workers", 250)};
  config.radius_km = DoubleFlag(argc, argv, "--radius", 1.0);
  config.imbalance = DoubleFlag(argc, argv, "--imbalance", 0.7);
  config.seed = static_cast<uint64_t>(IntFlag(argc, argv, "--gen-seed", 2020));
  if (const char* arrival = FlagValue(argc, argv, "--arrival");
      arrival != nullptr) {
    if (std::strcmp(arrival, "poisson") == 0) {
      config.arrival_process = ArrivalProcess::kPoisson;
    } else if (std::strcmp(arrival, "day") != 0) {
      return Status::InvalidArgument("--arrival must be day or poisson");
    }
  }
  return GenerateSynthetic(config);
}

/// Guards interleaved reply writes from shard drainer threads and the main
/// protocol loop. Full lines only, so a reader never sees a torn reply.
class LineWriter {
 public:
  explicit LineWriter(int fd) : fd_(fd) {}

  void WriteLine(const std::string& line) {
    std::lock_guard<std::mutex> lock(mu_);
    std::string buf = line;
    buf.push_back('\n');
    size_t off = 0;
    while (off < buf.size()) {
      const ssize_t n = ::write(fd_, buf.data() + off, buf.size() - off);
      if (n <= 0) return;  // client went away; drop the reply
      off += static_cast<size_t>(n);
    }
  }

 private:
  int fd_;
  std::mutex mu_;
};

std::string StatsJson(const serve::MatchService& service) {
  const serve::ShardSnapshot total = service.TotalStats();
  const obs::LatencySnapshot lat = service.DecisionLatency();
  std::string out = StrFormat(
      "{\"events\":%lld,\"shards\":%d,\"submitted\":%lld,\"steps\":%lld,"
      "\"decisions\":%lld,\"inner\":%lld,\"outer\":%lld,\"rejects\":%lld,"
      "\"queue_depth\":%lld,\"revenue\":%.17g,"
      "\"latency_p50_us\":%.3f,\"latency_p99_us\":%.3f,\"latency_p999_us\":%.3f,"
      "\"per_shard\":[",
      static_cast<long long>(service.event_count()), service.shard_count(),
      static_cast<long long>(total.submitted),
      static_cast<long long>(total.steps),
      static_cast<long long>(total.decisions),
      static_cast<long long>(total.inner), static_cast<long long>(total.outer),
      static_cast<long long>(total.rejects),
      static_cast<long long>(total.queue_depth), total.revenue,
      lat.QuantileMicros(0.50), lat.QuantileMicros(0.99),
      lat.QuantileMicros(0.999));
  const std::vector<serve::ShardSnapshot> shards = service.ShardStats();
  for (size_t k = 0; k < shards.size(); ++k) {
    out += StrFormat(
        "%s{\"decisions\":%lld,\"revenue\":%.17g,\"queue_depth\":%lld}",
        k == 0 ? "" : ",", static_cast<long long>(shards[k].decisions),
        shards[k].revenue, static_cast<long long>(shards[k].queue_depth));
  }
  out += "]}";
  return out;
}

std::string DecisionReply(const serve::ShardDecision& d) {
  if (d.record.kind == StepRecord::Kind::kArrival) {
    return StrFormat("D %lld %d A %lld", static_cast<long long>(d.global_index),
                     d.shard, static_cast<long long>(d.latency_nanos));
  }
  // Batch mode: a submitted request only joins its window ("Q"); when the
  // step that consumed it also closed a window the flush totals ride along
  // ("F <requests> <revenue>").
  if (d.record.kind == StepRecord::Kind::kBatchEnqueue) {
    return StrFormat("D %lld %d Q %lld", static_cast<long long>(d.global_index),
                     d.shard, static_cast<long long>(d.latency_nanos));
  }
  if (d.record.kind == StepRecord::Kind::kBatchFlush) {
    int64_t requests = 0;
    double revenue = 0.0;
    for (const StepRecord::BatchPlatformDelta& delta : d.record.batch_deltas) {
      requests += delta.requests;
      revenue += delta.revenue;
    }
    return StrFormat("D %lld %d F %lld %.17g %lld",
                     static_cast<long long>(d.global_index), d.shard,
                     static_cast<long long>(requests), revenue,
                     static_cast<long long>(d.latency_nanos));
  }
  return StrFormat("D %lld %d D %d %.17g %lld",
                   static_cast<long long>(d.global_index), d.shard,
                   static_cast<int>(d.record.outcome), d.record.revenue,
                   static_cast<long long>(d.latency_nanos));
}

std::string TotalsLine(const serve::ServiceTotals& totals) {
  return StrFormat(
      "T revenue=%.17g assignments=%lld inner=%lld outer=%lld rejected=%lld",
      totals.total_revenue, static_cast<long long>(totals.assignments),
      static_cast<long long>(totals.completed_inner),
      static_cast<long long>(totals.completed_outer),
      static_cast<long long>(totals.rejected));
}

void MaybeWritePerf(int argc, char** argv) {
  if (const char* path = FlagValue(argc, argv, "--perf-out"); path != nullptr) {
    if (Status st = obs::SpanProfiler::Global().WriteProfile(path); !st.ok()) {
      std::fprintf(stderr, "comx_serve: perf-out: %s\n",
                   st.ToString().c_str());
    }
  }
}

int RunReplay(serve::MatchService* service, const Instance& instance,
              const std::string& algo, const SimConfig& sim, uint64_t seed,
              bool verify, int argc, char** argv) {
  if (Status st = service->SubmitAll(); !st.ok()) return Fail(st);
  auto totals = service->Drain();
  if (!totals.ok()) return Fail(totals.status());
  std::printf("%s\n", TotalsLine(*totals).c_str());
  MaybeWritePerf(argc, argv);
  if (!verify) return 0;

  // Equivalence gate: an uninterrupted batch run of the same instance.
  std::vector<std::unique_ptr<OnlineMatcher>> owned;
  std::vector<OnlineMatcher*> matchers;
  for (int32_t p = 0; p < instance.PlatformCount(); ++p) {
    owned.push_back(MakeMatcher(algo));
    matchers.push_back(owned.back().get());
  }
  SimConfig batch = sim;
  batch.trace = nullptr;
  batch.measure_response_time = false;
  auto batch_result = RunSimulation(instance, matchers, batch, seed);
  if (!batch_result.ok()) return Fail(batch_result.status());
  const double batch_revenue = batch_result->metrics.TotalRevenue();
  const int64_t batch_assignments =
      static_cast<int64_t>(batch_result->matching.assignments.size());
  const bool revenue_equal =
      service->shard_count() == 1
          ? batch_revenue == totals->total_revenue
          : std::abs(batch_revenue - totals->total_revenue) <=
                1e-9 * std::max(1.0, std::abs(batch_revenue));
  if (!revenue_equal || batch_assignments != totals->assignments) {
    std::fprintf(stderr,
                 "comx_serve: verify FAILED: serve revenue=%.17g "
                 "assignments=%lld vs batch revenue=%.17g assignments=%lld\n",
                 totals->total_revenue,
                 static_cast<long long>(totals->assignments), batch_revenue,
                 static_cast<long long>(batch_assignments));
    return 1;
  }
  std::printf("verify OK (batch revenue=%.17g assignments=%lld)\n",
              batch_revenue, static_cast<long long>(batch_assignments));
  return 0;
}

int ServeLoop(serve::MatchService* service, int argc, char** argv) {
  const int port = static_cast<int>(IntFlag(argc, argv, "--port", 7533));

  ::signal(SIGPIPE, SIG_IGN);
  InstallShutdownGuard();

  const int listen_fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd < 0) return Fail(Status::IoError("socket() failed"));
  const int one = 1;
  ::setsockopt(listen_fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<uint16_t>(port));
  if (::bind(listen_fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    return Fail(Status::IoError(StrFormat("bind(%d): %s", port,
                                          std::strerror(errno))));
  }
  if (::listen(listen_fd, 1) != 0) {
    return Fail(Status::IoError("listen() failed"));
  }
  socklen_t len = sizeof(addr);
  ::getsockname(listen_fd, reinterpret_cast<sockaddr*>(&addr), &len);
  std::printf("comx_serve listening on port %d events=%lld shards=%d platforms=%d\n",
              ntohs(addr.sin_port),
              static_cast<long long>(service->event_count()),
              service->shard_count(), service->platform_count());
  std::fflush(stdout);

  int conn_fd = -1;
  std::unique_ptr<LineWriter> writer;
  std::string inbuf;
  bool drained = false;

  auto shutdown_exit = [&]() -> int {
    if (Status st = service->FlushJournals(); !st.ok()) {
      std::fprintf(stderr, "comx_serve: wal flush on shutdown: %s\n",
                   st.ToString().c_str());
    }
    if (conn_fd >= 0) ::close(conn_fd);
    ::close(listen_fd);
    MaybeWritePerf(argc, argv);
    return DrainShutdown();
  };

  for (;;) {
    pollfd fds[3];
    nfds_t nfds = 0;
    fds[nfds++] = pollfd{ShutdownWakeFd(), POLLIN, 0};
    fds[nfds++] = pollfd{listen_fd, static_cast<short>(conn_fd < 0 ? POLLIN : 0), 0};
    if (conn_fd >= 0) fds[nfds++] = pollfd{conn_fd, POLLIN, 0};
    const int rc = ::poll(fds, nfds, -1);
    if (ShutdownRequested()) return shutdown_exit();
    if (rc < 0) {
      if (errno == EINTR) continue;
      return Fail(Status::IoError("poll() failed"));
    }
    if (conn_fd < 0 && (fds[1].revents & POLLIN) != 0) {
      conn_fd = ::accept(listen_fd, nullptr, nullptr);
      if (conn_fd >= 0) writer = std::make_unique<LineWriter>(conn_fd);
      inbuf.clear();
      continue;
    }
    if (conn_fd < 0 || (fds[2].revents & (POLLIN | POLLHUP)) == 0) continue;

    char chunk[1 << 16];
    const ssize_t n = ::read(conn_fd, chunk, sizeof(chunk));
    if (n <= 0) {  // disconnect: drop the client, keep serving
      ::close(conn_fd);
      conn_fd = -1;
      writer.reset();
      continue;
    }
    inbuf.append(chunk, static_cast<size_t>(n));
    size_t start = 0;
    for (size_t nl; (nl = inbuf.find('\n', start)) != std::string::npos;
         start = nl + 1) {
      std::string line = inbuf.substr(start, nl - start);
      if (!line.empty() && line.back() == '\r') line.pop_back();
      if (line.empty()) continue;
      if (line == "QUIT") {
        writer->WriteLine("BYE");
        ::close(conn_fd);
        ::close(listen_fd);
        MaybeWritePerf(argc, argv);
        return 0;
      }
      if (line == "HELLO") {
        writer->WriteLine(StrFormat(
            "COMX-SERVE v1 events=%lld shards=%d platforms=%d",
            static_cast<long long>(service->event_count()),
            service->shard_count(), service->platform_count()));
      } else if (line == "STATS") {
        writer->WriteLine(StatsJson(*service));
      } else if (line == "METRICS") {
        const std::string text =
            obs::ToPrometheusText(obs::MetricsRegistry::Global().Snapshot());
        size_t pos = 0;
        while (pos < text.size()) {
          size_t end = text.find('\n', pos);
          if (end == std::string::npos) end = text.size();
          writer->WriteLine(text.substr(pos, end - pos));
          pos = end + 1;
        }
        writer->WriteLine(".");
      } else if (line == "DRAIN") {
        if (drained) {
          writer->WriteLine("E -1 already drained");
          continue;
        }
        auto totals = service->Drain();
        drained = true;
        if (!totals.ok()) {
          writer->WriteLine(
              StrFormat("E -1 %s", totals.status().ToString().c_str()));
        } else {
          writer->WriteLine(TotalsLine(*totals));
        }
      } else if (line.size() > 2 && line[0] == 'S' && line[1] == ' ') {
        const int64_t index = std::atoll(line.c_str() + 2);
        LineWriter* w = writer.get();
        const Status st = service->SubmitEvent(
            index, [w](const Status& status, const serve::ShardDecision& d) {
              if (!status.ok()) {
                w->WriteLine(StrFormat("E %lld %s",
                                       static_cast<long long>(d.global_index),
                                       status.ToString().c_str()));
                return;
              }
              w->WriteLine(DecisionReply(d));
            });
        if (!st.ok()) {
          writer->WriteLine(StrFormat("E %lld %s",
                                      static_cast<long long>(index),
                                      st.ToString().c_str()));
        }
      } else {
        writer->WriteLine(StrFormat("E -1 unknown command: %s", line.c_str()));
      }
    }
    inbuf.erase(0, start);
  }
}

int Main(int argc, char** argv) {
  const std::string algo = FlagValue(argc, argv, "--algo") != nullptr
                               ? FlagValue(argc, argv, "--algo")
                               : "ramcom";
  if (MakeMatcher(algo) == nullptr) {
    std::fprintf(stderr, "comx_serve: unknown --algo %s\n", algo.c_str());
    return 2;
  }
  auto instance = BuildInstance(argc, argv);
  if (!instance.ok()) return Fail(instance.status());

  obs::SetCollectionEnabled(true);

  serve::ServiceOptions options;
  options.shards = static_cast<int32_t>(IntFlag(argc, argv, "--shards", 4));
  options.seed = static_cast<uint64_t>(IntFlag(argc, argv, "--seed", 1));
  options.threads = static_cast<size_t>(IntFlag(argc, argv, "--threads", 0));
  if (const char* dir = FlagValue(argc, argv, "--wal-dir"); dir != nullptr) {
    options.wal_dir = dir;
  }
  // --algo batch serves micro-batch dispatch: requests queue inside their
  // virtual-time window and each shard solves windows as assignment
  // problems. Incompatible with --wal-dir (shards refuse the combination).
  if (algo == "batch") {
    options.sim.batch_mode = true;
    options.sim.batch_window_seconds = DoubleFlag(
        argc, argv, "--batch-window", options.sim.batch_window_seconds);
    if (const char* name = FlagValue(argc, argv, "--batch-algo");
        name != nullptr) {
      auto parsed = ParseBatchAlgo(name);
      if (!parsed.ok()) return Fail(parsed.status());
      options.sim.batch.algo = *parsed;
    }
  }
  auto service = serve::MatchService::Create(
      *instance, [&algo] { return MakeMatcher(algo); }, options);
  if (!service.ok()) return Fail(service.status());

  if (HasFlag(argc, argv, "--replay")) {
    return RunReplay(service->get(), *instance, algo, options.sim,
                     options.seed, HasFlag(argc, argv, "--verify"), argc,
                     argv);
  }
  return ServeLoop(service->get(), argc, argv);
}

}  // namespace
}  // namespace comx

int main(int argc, char** argv) {
  const int rc = comx::Main(argc, argv);
  if (comx::ShutdownRequested()) return comx::DrainShutdown();
  return rc;
}
