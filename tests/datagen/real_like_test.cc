#include "datagen/real_like.h"

#include <gtest/gtest.h>

namespace comx {
namespace {

TEST(RealLikeTest, SpecsMatchTableThree) {
  const auto rdc10 = Rdc10Ryc10();
  EXPECT_EQ(rdc10.didi_requests, 91'321);
  EXPECT_EQ(rdc10.didi_workers, 9'145);
  EXPECT_EQ(rdc10.yueche_requests, 90'589);
  EXPECT_EQ(rdc10.yueche_workers, 7'038);
  EXPECT_DOUBLE_EQ(rdc10.radius_km, 1.0);
  EXPECT_FALSE(rdc10.xian);

  const auto rdc11 = Rdc11Ryc11();
  EXPECT_EQ(rdc11.didi_requests, 100'973);
  EXPECT_EQ(rdc11.didi_workers, 11'199);

  const auto rdx11 = Rdx11Ryx11();
  EXPECT_EQ(rdx11.didi_requests, 57'611);
  EXPECT_EQ(rdx11.didi_workers, 2'441);
  EXPECT_TRUE(rdx11.xian);
}

TEST(RealLikeTest, AllSpecsInTableOrder) {
  const auto specs = AllRealSpecs();
  ASSERT_EQ(specs.size(), 3u);
  EXPECT_EQ(specs[0].name, "RDC10+RYC10");
  EXPECT_EQ(specs[1].name, "RDC11+RYC11");
  EXPECT_EQ(specs[2].name, "RDX11+RYX11");
}

TEST(RealLikeTest, ScaledGenerationMatchesCounts) {
  auto ins = GenerateRealLike(Rdc10Ryc10(), 0.01, 7);
  ASSERT_TRUE(ins.ok());
  EXPECT_EQ(ins->RequestCountOf(0), 913);
  EXPECT_EQ(ins->RequestCountOf(1), 906);
  EXPECT_EQ(ins->WorkerCountOf(0), 91);  // llround(91.45)
  EXPECT_EQ(ins->WorkerCountOf(1), 70);
  EXPECT_TRUE(ins->Validate().ok());
}

TEST(RealLikeTest, RejectsBadScale) {
  EXPECT_FALSE(GenerateRealLike(Rdc10Ryc10(), 0.0).ok());
  EXPECT_FALSE(GenerateRealLike(Rdc10Ryc10(), 1.5).ok());
  EXPECT_FALSE(GenerateRealLike(Rdc10Ryc10(), -0.3).ok());
}

TEST(RealLikeTest, XianImbalanceIsSteeper) {
  // Xi'an: ~25 requests per worker; Chengdu: ~10. The generated instances
  // preserve these supply ratios.
  auto chengdu = GenerateRealLike(Rdc10Ryc10(), 0.01, 7);
  auto xian = GenerateRealLike(Rdx11Ryx11(), 0.01, 7);
  ASSERT_TRUE(chengdu.ok());
  ASSERT_TRUE(xian.ok());
  const double chengdu_ratio =
      static_cast<double>(chengdu->requests().size()) /
      static_cast<double>(chengdu->workers().size());
  const double xian_ratio = static_cast<double>(xian->requests().size()) /
                            static_cast<double>(xian->workers().size());
  EXPECT_GT(xian_ratio, 1.8 * chengdu_ratio);
}

TEST(RealLikeTest, TinyScaleStillProducesAtLeastOneEach) {
  auto ins = GenerateRealLike(Rdx11Ryx11(), 1e-6, 7);
  ASSERT_TRUE(ins.ok());
  EXPECT_GE(ins->RequestCountOf(0), 1);
  EXPECT_GE(ins->WorkerCountOf(0), 1);
}

TEST(RealLikeTest, DeterministicGivenSeed) {
  auto a = GenerateRealLike(Rdc10Ryc10(), 0.005, 3);
  auto b = GenerateRealLike(Rdc10Ryc10(), 0.005, 3);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a->workers()[0].location, b->workers()[0].location);
  EXPECT_EQ(a->requests()[5].value, b->requests()[5].value);
}

}  // namespace
}  // namespace comx
