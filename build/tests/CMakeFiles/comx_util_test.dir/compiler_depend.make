# Empty compiler generated dependencies file for comx_util_test.
# This may be replaced when dependencies are built.
