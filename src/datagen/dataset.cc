#include "datagen/dataset.h"

#include <cmath>
#include <fstream>
#include <limits>

#include "util/csv.h"
#include "util/string_util.h"

namespace comx {
namespace {

constexpr char kWorkerHeader[] = "id,platform,time,x,y,radius,history";
constexpr char kRequestHeader[] = "id,platform,time,x,y,value";

std::string JoinHistory(const std::vector<double>& history) {
  std::vector<std::string> parts;
  parts.reserve(history.size());
  for (double h : history) parts.push_back(StrFormat("%.17g", h));
  return Join(parts, ";");
}

Result<std::vector<double>> ParseHistory(const std::string& field) {
  std::vector<double> out;
  if (field.empty()) return out;
  for (const std::string& part : Split(field, ';')) {
    COMX_ASSIGN_OR_RETURN(double v, ParseDouble(part));
    if (!std::isfinite(v) || v <= 0.0) {
      return Status::InvalidArgument(
          StrFormat("history value %g is not a positive finite fare", v));
    }
    out.push_back(v);
  }
  return out;
}

// Datasets are city-scale: any coordinate beyond this is a corrupted or
// mis-scaled file, not a real location (the Earth is ~2e4 km around).
constexpr double kMaxCoordinateKm = 1e6;

// Platform ids travel through the file as int64 but live as PlatformId
// (int32): reject anything the cast would silently wrap instead.
Status CheckPlatformRange(const char* kind, size_t row, int64_t platform) {
  if (platform < 0 ||
      platform > std::numeric_limits<PlatformId>::max()) {
    return Status::InvalidArgument(
        StrFormat("%s row %zu: platform id %lld out of range", kind, row,
                  static_cast<long long>(platform)));
  }
  return Status::OK();
}

// Semantic checks shared by worker and request rows, with the failing row
// identified by kind + 1-based CSV line. The model's own Validate() would
// catch most of these too, but only after the whole file was ingested and
// without pointing at the offending line.
Status CheckRowSemantics(const char* kind, size_t row, Timestamp time,
                         const Point& location) {
  if (!std::isfinite(time) || time < 0.0) {
    return Status::InvalidArgument(
        StrFormat("%s row %zu: arrival time %g is negative or not finite",
                  kind, row, time));
  }
  if (!std::isfinite(location.x) || !std::isfinite(location.y) ||
      std::abs(location.x) > kMaxCoordinateKm ||
      std::abs(location.y) > kMaxCoordinateKm) {
    return Status::InvalidArgument(StrFormat(
        "%s row %zu: location (%g, %g) outside +/-%g km or not finite",
        kind, row, location.x, location.y, kMaxCoordinateKm));
  }
  return Status::OK();
}

}  // namespace

Status SaveInstance(const Instance& instance, const std::string& prefix) {
  {
    std::ofstream out(prefix + ".workers.csv", std::ios::trunc);
    if (!out) return Status::IoError("cannot write " + prefix + ".workers.csv");
    out << kWorkerHeader << '\n';
    CsvWriter writer(&out);
    for (const Worker& w : instance.workers()) {
      writer.WriteRow({StrFormat("%lld", static_cast<long long>(w.id)),
                       StrFormat("%d", w.platform),
                       StrFormat("%.17g", w.time),
                       StrFormat("%.17g", w.location.x),
                       StrFormat("%.17g", w.location.y),
                       StrFormat("%.17g", w.radius), JoinHistory(w.history)});
    }
    if (!out) return Status::IoError("write failed: " + prefix);
  }
  {
    std::ofstream out(prefix + ".requests.csv", std::ios::trunc);
    if (!out) {
      return Status::IoError("cannot write " + prefix + ".requests.csv");
    }
    out << kRequestHeader << '\n';
    CsvWriter writer(&out);
    for (const Request& r : instance.requests()) {
      writer.WriteRow({StrFormat("%lld", static_cast<long long>(r.id)),
                       StrFormat("%d", r.platform),
                       StrFormat("%.17g", r.time),
                       StrFormat("%.17g", r.location.x),
                       StrFormat("%.17g", r.location.y),
                       StrFormat("%.17g", r.value)});
    }
    if (!out) return Status::IoError("write failed: " + prefix);
  }
  return Status::OK();
}

Result<Instance> LoadInstance(const std::string& prefix) {
  Instance instance;
  {
    COMX_ASSIGN_OR_RETURN(auto rows, ReadCsvFile(prefix + ".workers.csv"));
    if (rows.empty() || Join(rows[0], ",") != kWorkerHeader) {
      return Status::InvalidArgument("bad worker CSV header in " + prefix);
    }
    for (size_t i = 1; i < rows.size(); ++i) {
      const auto& row = rows[i];
      if (row.size() != 7) {
        return Status::InvalidArgument(
            StrFormat("worker row %zu has %zu fields, want 7", i, row.size()));
      }
      Worker w;
      COMX_ASSIGN_OR_RETURN(int64_t id, ParseInt64(row[0]));
      COMX_ASSIGN_OR_RETURN(int64_t platform, ParseInt64(row[1]));
      COMX_ASSIGN_OR_RETURN(w.time, ParseDouble(row[2]));
      COMX_ASSIGN_OR_RETURN(w.location.x, ParseDouble(row[3]));
      COMX_ASSIGN_OR_RETURN(w.location.y, ParseDouble(row[4]));
      COMX_ASSIGN_OR_RETURN(w.radius, ParseDouble(row[5]));
      auto history = ParseHistory(row[6]);
      if (!history.ok()) {
        return Status::InvalidArgument(StrFormat(
            "worker row %zu: %s", i, history.status().message().c_str()));
      }
      w.history = *std::move(history);
      COMX_RETURN_IF_ERROR(CheckPlatformRange("worker", i, platform));
      COMX_RETURN_IF_ERROR(
          CheckRowSemantics("worker", i, w.time, w.location));
      if (!std::isfinite(w.radius) || w.radius <= 0.0) {
        return Status::InvalidArgument(StrFormat(
            "worker row %zu: radius %g is not a positive finite range", i,
            w.radius));
      }
      w.platform = static_cast<PlatformId>(platform);
      const WorkerId assigned = instance.AddWorker(std::move(w));
      if (assigned != id) {
        return Status::InvalidArgument(
            StrFormat("worker ids not dense at row %zu", i));
      }
    }
  }
  {
    COMX_ASSIGN_OR_RETURN(auto rows, ReadCsvFile(prefix + ".requests.csv"));
    if (rows.empty() || Join(rows[0], ",") != kRequestHeader) {
      return Status::InvalidArgument("bad request CSV header in " + prefix);
    }
    for (size_t i = 1; i < rows.size(); ++i) {
      const auto& row = rows[i];
      if (row.size() != 6) {
        return Status::InvalidArgument(
            StrFormat("request row %zu has %zu fields, want 6", i,
                      row.size()));
      }
      Request r;
      COMX_ASSIGN_OR_RETURN(int64_t id, ParseInt64(row[0]));
      COMX_ASSIGN_OR_RETURN(int64_t platform, ParseInt64(row[1]));
      COMX_ASSIGN_OR_RETURN(r.time, ParseDouble(row[2]));
      COMX_ASSIGN_OR_RETURN(r.location.x, ParseDouble(row[3]));
      COMX_ASSIGN_OR_RETURN(r.location.y, ParseDouble(row[4]));
      COMX_ASSIGN_OR_RETURN(r.value, ParseDouble(row[5]));
      COMX_RETURN_IF_ERROR(CheckPlatformRange("request", i, platform));
      COMX_RETURN_IF_ERROR(
          CheckRowSemantics("request", i, r.time, r.location));
      if (!std::isfinite(r.value) || r.value <= 0.0) {
        return Status::InvalidArgument(StrFormat(
            "request row %zu: value %g is not a positive finite fare", i,
            r.value));
      }
      r.platform = static_cast<PlatformId>(platform);
      const RequestId assigned = instance.AddRequest(std::move(r));
      if (assigned != id) {
        return Status::InvalidArgument(
            StrFormat("request ids not dense at row %zu", i));
      }
    }
  }
  instance.BuildEvents();
  COMX_RETURN_IF_ERROR(instance.Validate());
  return instance;
}

}  // namespace comx
