#include "pricing/min_payment_estimator.h"

#include <cmath>

#include "obs/metrics_registry.h"
#include "obs/span.h"
#include "util/timer.h"

namespace comx {
namespace {

// Books one finished estimate into the registry. Resolved lazily; no-ops
// while collection is disabled.
void RecordEstimate(const MinPaymentEstimate& estimate) {
  if (!obs::CollectionEnabled()) return;
  auto& registry = obs::MetricsRegistry::Global();
  static obs::Counter* const estimates = registry.GetCounter(
      "comx_pricing_estimates_total", "Algorithm 2 payment estimates run");
  static obs::Counter* const iterations = registry.GetCounter(
      "comx_pricing_bisect_iterations_total",
      "Bisection iterations burned by Algorithm 2");
  static obs::Counter* const samples = registry.GetCounter(
      "comx_pricing_mc_samples_total",
      "Monte-Carlo sampling instances run by Algorithm 2");
  static obs::Histogram* const per_estimate = registry.GetHistogram(
      "comx_pricing_bisect_iterations_per_estimate",
      {0.0, 8.0, 16.0, 32.0, 64.0, 128.0, 256.0, 512.0, 1024.0},
      "Distribution of bisection iterations per estimate");
  static obs::Counter* const exhausted = registry.GetCounter(
      "comx_pricing_budget_exhausted_total",
      "Estimates cut short by the iteration or wall-clock budget");
  estimates->Inc();
  iterations->Inc(estimate.bisect_iterations);
  samples->Inc(estimate.samples);
  per_estimate->Observe(static_cast<double>(estimate.bisect_iterations));
  if (estimate.budget_exhausted) exhausted->Inc();
}

// One Bernoulli sweep over pre-evaluated acceptance probabilities: does any
// candidate accept? The probabilities come from one EcdfIndex batch pass
// (bit-identical to AcceptProbability), and the draw loop replicates
// Rng::Bernoulli exactly — p <= 0 is false and p >= 1 is true, neither
// consuming a draw — so the RNG stream matches the historical per-worker
// DrawAcceptance loop bit for bit.
bool AnyoneAccepts(const double* probs, size_t n, Rng* rng) {
  bool any = false;
  // Every candidate is drawn (not short-circuited) so the RNG stream
  // consumption is independent of the outcome order, keeping runs
  // reproducible under candidate reordering.
  for (size_t i = 0; i < n; ++i) {
    const double p = probs[i];
    if (p <= 0.0) continue;
    if (p >= 1.0) {
      any = true;
      continue;
    }
    any = (rng->NextDouble() < p) || any;
  }
  return any;
}

}  // namespace

int MinPaymentConfig::SampleCount() const {
  return static_cast<int>(std::ceil(4.0 * std::log(2.0 / xi) / (eta * eta)));
}

MinPaymentEstimate EstimateMinOuterPayment(
    const AcceptanceModel& model, const std::vector<WorkerId>& candidates,
    double request_value, const MinPaymentConfig& config, Rng* rng) {
  COMX_SPAN("pricing_estimate");
  MinPaymentEstimate out;
  const int n_s = config.SampleCount();
  if (candidates.empty()) {
    out.payment = request_value + config.epsilon;
    out.reject_fraction = 1.0;
    RecordEstimate(out);
    return out;
  }

  // Vectorized Algorithm-2 path: the acceptance probabilities at the full
  // request value are the same for every Monte-Carlo instance, so evaluate
  // them once up front (one flat ECDF batch pass instead of n_s * |C|
  // binary searches); each bisection midpoint gets its own batch pass,
  // shared by the whole candidate sweep of that step.
  const size_t n_c = candidates.size();
  const kernels::EcdfIndex& ecdf = model.ecdf();
  thread_local std::vector<double> probs_value;
  thread_local std::vector<double> probs_mid;
  probs_value.resize(n_c);
  probs_mid.resize(n_c);
  ecdf.BatchEvaluate(candidates.data(), n_c, request_value,
                     probs_value.data());

  double sum = 0.0;
  int rejects = 0;
  Stopwatch budget_clock;  // consulted only when max_seconds > 0
  for (int s = 0; s < n_s; ++s) {
    // Wall-clock budget: always complete at least one instance so the
    // estimate is meaningful, then stop the moment the budget is spent.
    if (config.max_seconds > 0.0 && s > 0 &&
        budget_clock.ElapsedNanos() * 1e-9 > config.max_seconds) {
      out.budget_exhausted = true;
      break;
    }
    ++out.samples;
    // Paper Algorithm 2 lines 4-6: if nobody accepts the full value, this
    // instance contributes v_r + epsilon.
    if (!AnyoneAccepts(probs_value.data(), n_c, rng)) {
      sum += request_value + config.epsilon;
      ++rejects;
      continue;
    }
    // Bisection (lines 7-15): v_h is the lowest payment seen to be accepted
    // in this instance, v_l the highest seen rejected.
    double v_l = 0.0;
    double v_h = request_value;
    double v_m = 0.5 * v_h;
    while (v_m - v_l > config.xi * request_value) {
      // Iteration budget: the estimate-wide cap keeps a pathological
      // tolerance from spinning; the current midpoint is good enough.
      if (config.max_bisect_iterations > 0 &&
          out.bisect_iterations >= config.max_bisect_iterations) {
        out.budget_exhausted = true;
        break;
      }
      ++out.bisect_iterations;
      ecdf.BatchEvaluate(candidates.data(), n_c, v_m, probs_mid.data());
      if (AnyoneAccepts(probs_mid.data(), n_c, rng)) {
        v_h = v_m;
      } else {
        v_l = v_m;
      }
      v_m = 0.5 * (v_h - v_l) + v_l;
    }
    sum += v_m;
    if (out.budget_exhausted) break;
  }
  out.payment = sum / static_cast<double>(out.samples);
  out.reject_fraction = static_cast<double>(rejects) /
                        static_cast<double>(out.samples);
  RecordEstimate(out);
  return out;
}

}  // namespace comx
