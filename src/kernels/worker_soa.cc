#include "kernels/worker_soa.h"

namespace comx {
namespace kernels {

void WorkerSoA::Reset(size_t n) {
  x_.assign(n, 0.0);
  y_.assign(n, 0.0);
  radius2_.assign(n, 0.0);
  platform_.assign(n, 0);
  available_since_.assign(n, 0.0);
  available_.assign(n, 0);
}

}  // namespace kernels
}  // namespace comx
