#include "core/dem_com.h"

namespace comx {

void DemCom::Reset(const Instance& /*instance*/, PlatformId /*platform*/,
                   uint64_t seed) {
  rng_ = Rng(seed);
  diag_ = Diagnostics{};
}

Decision DemCom::OnRequest(const Request& r, const PlatformView& view) {
  // Lines 3-6: inner workers take absolute priority; nearest one serves.
  const std::vector<WorkerId> inner = view.FeasibleInnerWorkers(r);
  if (const WorkerId w = NearestWorker(inner, r, view); w != kInvalidId) {
    return Decision::Inner(w);
  }

  // Lines 8-10: candidate outer workers; reject when none. An optional
  // nearest-K cap bounds the pricing cost (see constructor).
  std::vector<WorkerId> outer = view.FeasibleOuterWorkers(r);
  if (outer.empty()) return Decision::Reject();
  KeepNearest(&outer, r, view, max_outer_candidates_);

  // Line 12: estimate the minimum outer payment (Algorithm 2).
  const MinPaymentEstimate estimate = EstimateMinOuterPayment(
      view.acceptance(), outer, r.value, config_, &rng_);
  const double payment = estimate.payment;

  // Lines 13-14: serving would lose money; reject.
  if (payment > r.value) return Decision::Reject();

  // Lines 15-20: each candidate draws its acceptance at the quoted payment.
  ++diag_.outer_offers;
  diag_.payment_sum += payment;
  diag_.payment_rate_sum += payment / r.value;
  std::vector<WorkerId> accepting;
  accepting.reserve(outer.size());
  for (WorkerId w : outer) {
    if (view.acceptance().Accepts(w, payment, &rng_)) {
      accepting.push_back(w);
    }
  }

  // Lines 21-26: nearest accepting worker serves at payment v'_r.
  if (accepting.empty()) {
    Decision d = Decision::Reject();
    d.attempted_outer = true;
    return d;
  }
  ++diag_.outer_accepts;
  const WorkerId w = NearestWorker(accepting, r, view);
  return Decision::Outer(w, payment);
}

}  // namespace comx
