// Fixed-memory reservoir sampler (Vitter's Algorithm R) for streaming
// quantile estimates — used to report p50/p95/p99 response times without
// storing every observation.

#ifndef COMX_UTIL_RESERVOIR_H_
#define COMX_UTIL_RESERVOIR_H_

#include <cstdint>
#include <vector>

#include "util/rng.h"
#include "util/stats.h"

namespace comx {

/// Uniform sample of up to `capacity` observations from a stream.
class ReservoirSampler {
 public:
  /// `capacity` > 0; `seed` drives the replacement draws.
  explicit ReservoirSampler(size_t capacity = 1024, uint64_t seed = 99);

  /// Offers one observation to the reservoir.
  void Add(double x);

  /// Estimated q-th quantile over the stream (exact while the stream fits
  /// in the reservoir). Returns 0 for an empty stream.
  double Quantile(double q) const;

  /// Observations seen so far (not the reservoir size).
  int64_t count() const { return count_; }

  /// Current reservoir contents (unordered).
  const std::vector<double>& samples() const { return samples_; }

  /// Resets to empty (keeps capacity and RNG state).
  void Reset();

 private:
  size_t capacity_;
  Rng rng_;
  std::vector<double> samples_;
  int64_t count_ = 0;
};

}  // namespace comx

#endif  // COMX_UTIL_RESERVOIR_H_
