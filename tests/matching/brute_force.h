// Exponential-time reference solvers used to verify the real matchers on
// small random graphs. The random instance builders they are usually paired
// with live in testing/scenario_fixtures.h (re-exported here so existing
// includes keep working).

#ifndef COMX_TESTS_MATCHING_BRUTE_FORCE_H_
#define COMX_TESTS_MATCHING_BRUTE_FORCE_H_

#include <algorithm>
#include <functional>
#include <vector>

#include "matching/bipartite_graph.h"
#include "testing/scenario_fixtures.h"
#include "util/rng.h"

namespace comx {
namespace testing_fixtures {

// Max-weight matching by recursion over left vertices (each may stay
// unmatched). Exact for any weights. O((R+1)^L).
inline double BruteForceMaxWeight(const BipartiteGraph& g) {
  const auto& adj = g.LeftAdjacency();
  std::vector<char> right_used(static_cast<size_t>(g.right_count()), 0);
  double best = 0.0;
  std::function<void(int32_t, double)> rec = [&](int32_t l, double acc) {
    if (l == g.left_count()) {
      best = std::max(best, acc);
      return;
    }
    rec(l + 1, acc);  // leave l unmatched
    for (int32_t ei : adj[static_cast<size_t>(l)]) {
      const BipartiteEdge& e = g.edges()[static_cast<size_t>(ei)];
      if (right_used[static_cast<size_t>(e.right)]) continue;
      right_used[static_cast<size_t>(e.right)] = 1;
      rec(l + 1, acc + e.weight);
      right_used[static_cast<size_t>(e.right)] = 0;
    }
  };
  rec(0, 0.0);
  return best;
}

// Max-cardinality matching by the same recursion.
inline int32_t BruteForceMaxCardinality(const BipartiteGraph& g) {
  const auto& adj = g.LeftAdjacency();
  std::vector<char> right_used(static_cast<size_t>(g.right_count()), 0);
  int32_t best = 0;
  std::function<void(int32_t, int32_t)> rec = [&](int32_t l, int32_t acc) {
    if (l == g.left_count()) {
      best = std::max(best, acc);
      return;
    }
    rec(l + 1, acc);
    for (int32_t ei : adj[static_cast<size_t>(l)]) {
      const BipartiteEdge& e = g.edges()[static_cast<size_t>(ei)];
      if (right_used[static_cast<size_t>(e.right)]) continue;
      right_used[static_cast<size_t>(e.right)] = 1;
      rec(l + 1, acc + 1);
      right_used[static_cast<size_t>(e.right)] = 0;
    }
  };
  rec(0, 0);
  return best;
}

}  // namespace testing_fixtures
}  // namespace comx

#endif  // COMX_TESTS_MATCHING_BRUTE_FORCE_H_
