#include "core/dem_com.h"

#include <gtest/gtest.h>

#include "testing/builders.h"
#include "testing/fake_view.h"

namespace comx {
namespace {

using testing_fixtures::FakeView;
using testing_fixtures::MakeRequest;
using testing_fixtures::MakeWorker;

TEST(DemComTest, InnerWorkerHasAbsolutePriority) {
  Instance ins;
  ins.AddWorker(MakeWorker(0, 1, 0.3, 0, 2.0));               // inner
  ins.AddWorker(MakeWorker(1, 1, 0.0, 0, 2.0, {0.01}));       // eager outer
  ins.BuildEvents();
  FakeView view(ins, 0);
  DemCom dem;
  dem.Reset(ins, 0, 1);
  const Decision d = dem.OnRequest(MakeRequest(0, 2, 0, 0, 10.0), view);
  EXPECT_EQ(d.kind, Decision::Kind::kInner);
  EXPECT_EQ(d.worker, 0);
  EXPECT_FALSE(d.attempted_outer);
}

TEST(DemComTest, NearestInnerWins) {
  Instance ins;
  ins.AddWorker(MakeWorker(0, 1, 1.0, 0, 2.0));
  ins.AddWorker(MakeWorker(0, 1, 0.2, 0, 2.0));
  ins.BuildEvents();
  FakeView view(ins, 0);
  DemCom dem;
  dem.Reset(ins, 0, 1);
  const Decision d = dem.OnRequest(MakeRequest(0, 2, 0, 0, 10.0), view);
  EXPECT_EQ(d.worker, 1);
}

TEST(DemComTest, RejectsWhenNoWorkerAtAll) {
  Instance ins;
  ins.AddWorker(MakeWorker(0, 1, 50, 50, 1.0));  // out of range
  ins.BuildEvents();
  FakeView view(ins, 0);
  DemCom dem;
  dem.Reset(ins, 0, 1);
  const Decision d = dem.OnRequest(MakeRequest(0, 2, 0, 0, 10.0), view);
  EXPECT_EQ(d.kind, Decision::Kind::kReject);
  EXPECT_FALSE(d.attempted_outer);
}

TEST(DemComTest, BorrowsEagerOuterWorker) {
  Instance ins;
  // Only an outer worker, which historically accepted ~0 payments: the
  // Algorithm 2 quote is tiny and acceptance is (almost) sure.
  ins.AddWorker(MakeWorker(1, 1, 0.0, 0, 2.0, {0.01}));
  ins.BuildEvents();
  FakeView view(ins, 0);
  DemCom dem;
  dem.Reset(ins, 0, 7);
  const Decision d = dem.OnRequest(MakeRequest(0, 2, 0, 0, 10.0), view);
  ASSERT_EQ(d.kind, Decision::Kind::kOuter);
  EXPECT_EQ(d.worker, 0);
  EXPECT_TRUE(d.attempted_outer);
  EXPECT_GT(d.outer_payment, 0.0);
  EXPECT_LE(d.outer_payment, 10.0);
  EXPECT_EQ(dem.diagnostics().outer_offers, 1);
  EXPECT_EQ(dem.diagnostics().outer_accepts, 1);
}

TEST(DemComTest, RejectsWhenOuterWorkersDemandMoreThanValue) {
  Instance ins;
  ins.AddWorker(MakeWorker(1, 1, 0.0, 0, 2.0, {50.0}));  // wants >= 50
  ins.BuildEvents();
  FakeView view(ins, 0);
  DemCom dem;
  dem.Reset(ins, 0, 7);
  const Decision d = dem.OnRequest(MakeRequest(0, 2, 0, 0, 10.0), view);
  EXPECT_EQ(d.kind, Decision::Kind::kReject);
  // Quote exceeded v_r, so no offer was even made (Alg. 1 lines 13-14).
  EXPECT_FALSE(d.attempted_outer);
  EXPECT_EQ(dem.diagnostics().outer_offers, 0);
}

TEST(DemComTest, OfferCanBeDeclinedByBernoulliDraws) {
  // Worker with a wide history: the quoted min payment sits near the low
  // end, so single-draw acceptance often fails. Across many seeds we must
  // observe both accepted and declined offers.
  Instance ins;
  ins.AddWorker(MakeWorker(1, 1, 0.0, 0, 2.0,
                           {1.0, 2.0, 4.0, 6.0, 8.0, 9.0, 9.5}));
  ins.BuildEvents();
  int accepted = 0, declined = 0;
  for (uint64_t seed = 0; seed < 60; ++seed) {
    FakeView view(ins, 0);
    DemCom dem;
    dem.Reset(ins, 0, seed);
    const Decision d = dem.OnRequest(MakeRequest(0, 2, 0, 0, 10.0), view);
    if (d.kind == Decision::Kind::kOuter) {
      ++accepted;
    } else {
      EXPECT_TRUE(d.attempted_outer);
      ++declined;
    }
  }
  EXPECT_GT(accepted, 0);
  EXPECT_GT(declined, 0);
}

TEST(DemComTest, PaymentRateDiagnosticsAccumulate) {
  Instance ins;
  ins.AddWorker(MakeWorker(1, 1, 0.0, 0, 2.0, {0.01}));
  ins.AddWorker(MakeWorker(1, 1, 0.1, 0, 2.0, {0.01}));
  ins.BuildEvents();
  FakeView view(ins, 0);
  DemCom dem;
  dem.Reset(ins, 0, 5);
  (void)dem.OnRequest(MakeRequest(0, 2, 0, 0, 10.0), view);
  (void)dem.OnRequest(MakeRequest(0, 3, 0, 0, 20.0), view);
  EXPECT_EQ(dem.diagnostics().outer_offers, 2);
  EXPECT_GT(dem.diagnostics().payment_sum, 0.0);
  EXPECT_GT(dem.diagnostics().payment_rate_sum, 0.0);
  EXPECT_LE(dem.diagnostics().payment_rate_sum, 2.0);
}

TEST(DemComTest, ResetClearsDiagnostics) {
  Instance ins;
  ins.AddWorker(MakeWorker(1, 1, 0.0, 0, 2.0, {0.01}));
  ins.BuildEvents();
  FakeView view(ins, 0);
  DemCom dem;
  dem.Reset(ins, 0, 5);
  (void)dem.OnRequest(MakeRequest(0, 2, 0, 0, 10.0), view);
  dem.Reset(ins, 0, 5);
  EXPECT_EQ(dem.diagnostics().outer_offers, 0);
  EXPECT_EQ(dem.diagnostics().payment_sum, 0.0);
}

TEST(DemComTest, DeterministicGivenSeed) {
  Instance ins;
  ins.AddWorker(MakeWorker(1, 1, 0.0, 0, 2.0, {1.0, 5.0, 9.0}));
  ins.BuildEvents();
  auto run = [&](uint64_t seed) {
    FakeView view(ins, 0);
    DemCom dem;
    dem.Reset(ins, 0, seed);
    return dem.OnRequest(MakeRequest(0, 2, 0, 0, 10.0), view);
  };
  const Decision a = run(11);
  const Decision b = run(11);
  EXPECT_EQ(a.kind, b.kind);
  EXPECT_EQ(a.worker, b.worker);
  EXPECT_EQ(a.outer_payment, b.outer_payment);
}

TEST(DemComTest, NearestAcceptingOuterWins) {
  Instance ins;
  // Both always accept; the nearer one (id 1) must be chosen.
  ins.AddWorker(MakeWorker(1, 1, 1.0, 0, 2.0, {0.01}));
  ins.AddWorker(MakeWorker(1, 1, 0.2, 0, 2.0, {0.01}));
  ins.BuildEvents();
  FakeView view(ins, 0);
  DemCom dem;
  dem.Reset(ins, 0, 3);
  const Decision d = dem.OnRequest(MakeRequest(0, 2, 0, 0, 10.0), view);
  ASSERT_EQ(d.kind, Decision::Kind::kOuter);
  EXPECT_EQ(d.worker, 1);
}

TEST(DemComTest, NameIsStable) { EXPECT_EQ(DemCom().name(), "DemCOM"); }

}  // namespace
}  // namespace comx
