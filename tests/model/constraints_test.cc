#include "model/constraints.h"

#include <gtest/gtest.h>

#include "testing/builders.h"

namespace comx {
namespace {

using testing_fixtures::MakeRequest;
using testing_fixtures::MakeWorker;

TEST(ConstraintsTest, FeasibleWhenInTimeAndRange) {
  const Worker w = MakeWorker(0, 1.0, 0, 0, 2.0);
  const Request r = MakeRequest(0, 5.0, 1.0, 1.0, 10.0);
  EXPECT_EQ(CheckFeasibility(w, r), Feasibility::kFeasible);
  EXPECT_TRUE(CanServe(w, r));
}

TEST(ConstraintsTest, WorkerArrivingAfterRequestIsInfeasible) {
  const Worker w = MakeWorker(0, 6.0, 0, 0, 2.0);
  const Request r = MakeRequest(0, 5.0, 0.0, 0.0, 10.0);
  EXPECT_EQ(CheckFeasibility(w, r), Feasibility::kViolatesTime);
  EXPECT_FALSE(CanServe(w, r));
}

TEST(ConstraintsTest, SimultaneousArrivalIsFeasible) {
  // "arriving after them" — the waiting-list semantics let a worker whose
  // arrival timestamp equals the request's serve it (the worker event is
  // processed first; see Instance::BuildEvents tie-break).
  const Worker w = MakeWorker(0, 5.0, 0, 0, 2.0);
  const Request r = MakeRequest(0, 5.0, 0.0, 0.0, 10.0);
  EXPECT_TRUE(CanServe(w, r));
}

TEST(ConstraintsTest, OutOfRangeIsInfeasible) {
  const Worker w = MakeWorker(0, 1.0, 0, 0, 1.0);
  const Request r = MakeRequest(0, 5.0, 2.0, 0.0, 10.0);
  EXPECT_EQ(CheckFeasibility(w, r), Feasibility::kViolatesRange);
}

TEST(ConstraintsTest, RangeBoundaryInclusive) {
  const Worker w = MakeWorker(0, 1.0, 0, 0, 1.0);
  const Request r = MakeRequest(0, 5.0, 1.0, 0.0, 10.0);  // exactly 1 km
  EXPECT_TRUE(CanServe(w, r));
}

TEST(ConstraintsTest, TimeCheckedBeforeRange) {
  // Both violated: the time violation is reported (documents precedence).
  const Worker w = MakeWorker(0, 9.0, 0, 0, 1.0);
  const Request r = MakeRequest(0, 5.0, 5.0, 0.0, 10.0);
  EXPECT_EQ(CheckFeasibility(w, r), Feasibility::kViolatesTime);
}

TEST(ConstraintsTest, CrossPlatformDoesNotAffectFeasibility) {
  // Platform membership is a matching-side concern, not a feasibility one.
  const Worker w = MakeWorker(3, 1.0, 0, 0, 2.0);
  const Request r = MakeRequest(0, 5.0, 0.5, 0.0, 10.0);
  EXPECT_TRUE(CanServe(w, r));
}

}  // namespace
}  // namespace comx
