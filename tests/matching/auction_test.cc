#include "matching/auction.h"

#include <gtest/gtest.h>

#include "matching/brute_force.h"
#include "matching/hungarian.h"
#include "util/rng.h"

namespace comx {
namespace {

using testing_fixtures::BruteForceMaxWeight;
using testing_fixtures::RandomGraph;

TEST(AuctionTest, EmptyGraph) {
  BipartiteGraph g(0, 0);
  auto m = AuctionMaxWeight(g);
  ASSERT_TRUE(m.ok());
  EXPECT_EQ(m->size, 0);
}

TEST(AuctionTest, NoEdges) {
  BipartiteGraph g(3, 3);
  auto m = AuctionMaxWeight(g);
  ASSERT_TRUE(m.ok());
  EXPECT_EQ(m->size, 0);
}

TEST(AuctionTest, SingleEdge) {
  BipartiteGraph g(1, 1);
  ASSERT_TRUE(g.AddEdge(0, 0, 5.0).ok());
  auto m = AuctionMaxWeight(g);
  ASSERT_TRUE(m.ok());
  EXPECT_EQ(m->size, 1);
  EXPECT_DOUBLE_EQ(m->total_weight, 5.0);
}

TEST(AuctionTest, GreedyTrapSolvedNearOptimally) {
  BipartiteGraph g(2, 2);
  ASSERT_TRUE(g.AddEdge(0, 0, 10.0).ok());
  ASSERT_TRUE(g.AddEdge(0, 1, 9.0).ok());
  ASSERT_TRUE(g.AddEdge(1, 0, 9.0).ok());
  auto m = AuctionMaxWeight(g);
  ASSERT_TRUE(m.ok());
  EXPECT_NEAR(m->total_weight, 18.0, 1e-9);  // gap >> n*eps, so exact
}

TEST(AuctionTest, RejectsNegativeWeights) {
  BipartiteGraph g(1, 1);
  ASSERT_TRUE(g.AddEdge(0, 0, -1.0).ok());
  EXPECT_FALSE(AuctionMaxWeight(g).ok());
}

TEST(AuctionTest, CompetitionRaisesPricesNotDeadlocks) {
  // Many persons, one object: exactly one wins, others settle for null.
  BipartiteGraph g(6, 1);
  for (int32_t l = 0; l < 6; ++l) {
    ASSERT_TRUE(g.AddEdge(l, 0, 1.0 + l).ok());
  }
  auto m = AuctionMaxWeight(g);
  ASSERT_TRUE(m.ok());
  EXPECT_EQ(m->size, 1);
  EXPECT_NEAR(m->total_weight, 6.0, 1e-9);  // value gaps >> n*eps
  EXPECT_EQ(m->match_of_left[5], 0);  // highest value wins
}

TEST(AuctionTest, MatchingIsStructurallyValid) {
  Rng rng(2024);
  const BipartiteGraph g = RandomGraph(20, 15, 0.3, &rng);
  auto m = AuctionMaxWeight(g);
  ASSERT_TRUE(m.ok());
  double validated = 0.0;
  ASSERT_TRUE(g.ValidateMatching(m->match_of_left, &validated).ok());
  EXPECT_NEAR(validated, m->total_weight, 1e-9);
}

class AuctionRandomTest : public testing::TestWithParam<int> {};

TEST_P(AuctionRandomTest, WithinToleranceOfBruteForce) {
  Rng rng(static_cast<uint64_t>(GetParam()) * 15485863 + 11);
  for (int iter = 0; iter < 15; ++iter) {
    const int32_t left = static_cast<int32_t>(rng.UniformInt(1, 6));
    const int32_t right = static_cast<int32_t>(rng.UniformInt(1, 6));
    const BipartiteGraph g = RandomGraph(left, right, 0.5, &rng);
    auto m = AuctionMaxWeight(g);
    ASSERT_TRUE(m.ok());
    const double brute = BruteForceMaxWeight(g);
    double max_w = 0.0;
    for (const auto& e : g.edges()) max_w = std::max(max_w, e.weight);
    const double tol = static_cast<double>(left) * max_w * 1e-4 + 1e-9;
    EXPECT_GE(m->total_weight, brute - tol) << g.Summary();
    EXPECT_LE(m->total_weight, brute + 1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, AuctionRandomTest, testing::Range(0, 8));

TEST(AuctionTest, AgreesWithHungarianOnLargerSparseGraph) {
  Rng rng(4096);
  const BipartiteGraph g = RandomGraph(80, 70, 0.08, &rng);
  auto auction = AuctionMaxWeight(g);
  auto hungarian = HungarianMaxWeight(g);
  ASSERT_TRUE(auction.ok());
  ASSERT_TRUE(hungarian.ok());
  EXPECT_NEAR(auction->total_weight, hungarian->total_weight,
              80 * 10.0 * 1e-4 + 1e-9);
}

TEST(AuctionTest, BidCapSurfacesAsError) {
  BipartiteGraph g(3, 2);
  for (int32_t l = 0; l < 3; ++l) {
    ASSERT_TRUE(g.AddEdge(l, 0, 5.0).ok());
    ASSERT_TRUE(g.AddEdge(l, 1, 5.0).ok());
  }
  AuctionConfig config;
  config.max_bids = 2;  // absurdly low
  auto m = AuctionMaxWeight(g, config);
  EXPECT_FALSE(m.ok());
  EXPECT_EQ(m.status().code(), StatusCode::kInternal);
}

TEST(AuctionTest, DeterministicResults) {
  Rng rng(5);
  const BipartiteGraph g = RandomGraph(12, 12, 0.4, &rng);
  auto a = AuctionMaxWeight(g);
  auto b = AuctionMaxWeight(g);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a->match_of_left, b->match_of_left);
}

}  // namespace
}  // namespace comx
