#include "sim/offline_schedule.h"

#include <algorithm>
#include <limits>
#include <vector>

#include "pricing/acceptance_model.h"
#include "util/string_util.h"

namespace comx {
namespace {

struct WorkerState {
  Timestamp available_at = 0.0;
  Point location;
};

struct SearchContext {
  const Instance* instance;
  const ScheduleConfig* config;
  const DistanceMetric* metric;
  PlatformId target;
  std::vector<RequestId> requests;     // target requests, arrival order
  std::vector<double> suffix_value;    // upper bound on remaining revenue
  std::vector<double> reservations;    // rho_w per worker
  int64_t nodes = 0;
  double best = 0.0;
  std::vector<int64_t> best_choice;    // worker id or -1 per request
  std::vector<int64_t> choice;
  bool node_budget_exceeded = false;

  void Dfs(size_t idx, double revenue, std::vector<WorkerState>* workers) {
    if (node_budget_exceeded) return;
    if (++nodes > config->max_nodes) {
      node_budget_exceeded = true;
      return;
    }
    if (idx == requests.size()) {
      if (revenue > best) {
        best = revenue;
        best_choice = choice;
      }
      return;
    }
    // Bound: even collecting every remaining value can't beat the best.
    if (revenue + suffix_value[idx] <= best) return;

    const Request& r = instance->request(requests[idx]);
    // Try every feasible worker, most valuable first for better pruning.
    struct Option {
      WorkerId worker;
      double gain;
    };
    std::vector<Option> options;
    for (const Worker& w : instance->workers()) {
      WorkerState& state = (*workers)[static_cast<size_t>(w.id)];
      if (state.available_at > r.time) continue;
      if (!metric->WithinRange(state.location, r.location, w.radius)) {
        continue;
      }
      double gain;
      if (w.platform == target) {
        gain = r.value;
      } else {
        const double rho = reservations[static_cast<size_t>(w.id)];
        gain = r.value - rho;
        if (!(gain > 0.0)) continue;
      }
      options.push_back(Option{w.id, gain});
    }
    std::sort(options.begin(), options.end(),
              [](const Option& a, const Option& b) {
                return a.gain > b.gain;
              });

    for (const Option& option : options) {
      const Worker& w = instance->worker(option.worker);
      WorkerState saved = (*workers)[static_cast<size_t>(w.id)];
      const double pickup = metric->Distance(saved.location, r.location);
      WorkerState& state = (*workers)[static_cast<size_t>(w.id)];
      state.location = r.location;
      state.available_at =
          config->sim.workers_recycle
              ? r.time + ServiceDurationSeconds(config->sim, pickup, r.value)
              : std::numeric_limits<double>::infinity();
      choice[idx] = w.id;
      Dfs(idx + 1, revenue + option.gain, workers);
      (*workers)[static_cast<size_t>(w.id)] = saved;
    }
    // Reject branch.
    choice[idx] = -1;
    Dfs(idx + 1, revenue, workers);
  }
};

}  // namespace

Result<ScheduleSolution> SolveOfflineSchedule(const Instance& instance,
                                              PlatformId target,
                                              const ScheduleConfig& config) {
  SearchContext ctx;
  ctx.instance = &instance;
  ctx.config = &config;
  ctx.metric = config.sim.metric != nullptr ? config.sim.metric
                                            : &DefaultMetric();
  ctx.target = target;
  for (const Request& r : instance.requests()) {
    if (r.platform == target) ctx.requests.push_back(r.id);
  }
  std::sort(ctx.requests.begin(), ctx.requests.end(),
            [&](RequestId a, RequestId b) {
              return instance.request(a).time < instance.request(b).time;
            });
  if (static_cast<int32_t>(ctx.requests.size()) > config.max_requests) {
    return Status::OutOfRange(
        StrFormat("%zu requests exceed the exact scheduler's limit of %d",
                  ctx.requests.size(), config.max_requests));
  }

  ctx.suffix_value.assign(ctx.requests.size() + 1, 0.0);
  for (size_t i = ctx.requests.size(); i-- > 0;) {
    ctx.suffix_value[i] =
        ctx.suffix_value[i + 1] + instance.request(ctx.requests[i]).value;
  }
  ctx.reservations = DrawWorkerReservations(instance, config.reservation_seed);
  ctx.choice.assign(ctx.requests.size(), -1);
  ctx.best_choice = ctx.choice;

  std::vector<WorkerState> workers;
  workers.reserve(instance.workers().size());
  for (const Worker& w : instance.workers()) {
    workers.push_back(WorkerState{w.time, w.location});
  }
  ctx.Dfs(0, 0.0, &workers);
  if (ctx.node_budget_exceeded) {
    return Status::OutOfRange(
        StrFormat("exact schedule search exceeded %lld nodes",
                  static_cast<long long>(config.max_nodes)));
  }

  ScheduleSolution solution;
  solution.revenue = ctx.best;
  solution.nodes = ctx.nodes;
  for (size_t i = 0; i < ctx.requests.size(); ++i) {
    const int64_t wid = ctx.best_choice[i];
    if (wid < 0) continue;
    const Request& r = instance.request(ctx.requests[i]);
    const Worker& w = instance.worker(wid);
    Assignment a;
    a.request = r.id;
    a.worker = w.id;
    a.is_outer = w.platform != target;
    a.outer_payment =
        a.is_outer ? ctx.reservations[static_cast<size_t>(wid)] : 0.0;
    a.revenue = r.value - a.outer_payment;
    solution.matching.Add(a);
  }
  return solution;
}

}  // namespace comx
