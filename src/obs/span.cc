#include "obs/span.h"

#include <algorithm>
#include <cstdlib>

namespace comx {
namespace obs {

namespace internal {
namespace {

bool SpansDisabledFromEnv() {
  const char* value = std::getenv("COMX_OBS_DISABLE_SPANS");
  return value != nullptr && value[0] == '1' && value[1] == '\0';
}

}  // namespace

std::atomic<bool> g_spans_disabled{SpansDisabledFromEnv()};

}  // namespace internal

void SetSpansDisabled(bool disabled) {
  internal::g_spans_disabled.store(disabled, std::memory_order_relaxed);
}

SpanSite::SpanSite(const char* phase)
    : histogram_(MetricsRegistry::Global().GetLatencyHistogram(
          MetricName("comx_span_seconds", "phase", phase),
          "Wall time of one instrumented phase (nanosecond log-linear "
          "buckets, exported as a seconds summary)")),
      site_(SpanProfiler::Global().RegisterSite(phase)) {}

void ScopedSpan::Begin(const SpanSite& site) {
  histogram_ = site.histogram();
  prev_node_ = internal::CurrentThreadNode();
  node_ = SpanProfiler::Global().EnterChild(prev_node_, site.site());
  internal::SetCurrentThreadNode(node_);
  int64_t** slot = internal::ThreadChildNanosSlot();
  parent_child_acc_ = *slot;
  *slot = &child_nanos_;
  watch_.Reset();
}

void ScopedSpan::Stop() {
  if (histogram_ == nullptr) return;  // inactive or already stopped
  const int64_t total = watch_.ElapsedNanos();
  histogram_->ObserveNanos(total);
  if (node_ != kProfilerInvalidNode) {
    SpanProfiler::Global().RecordSpan(
        node_, total, std::max<int64_t>(total - child_nanos_, 0));
  }
  if (parent_child_acc_ != nullptr) *parent_child_acc_ += total;
  *internal::ThreadChildNanosSlot() = parent_child_acc_;
  internal::SetCurrentThreadNode(prev_node_);
  histogram_ = nullptr;
}

}  // namespace obs
}  // namespace comx
