#include "matching/batch_matcher.h"

#include <algorithm>

#include "matching/greedy_offline.h"
#include "matching/hungarian.h"
#include "util/string_util.h"

namespace comx {

const char* BatchAlgoName(BatchAlgo algo) {
  switch (algo) {
    case BatchAlgo::kAuto:
      return "auto";
    case BatchAlgo::kGreedy:
      return "greedy";
    case BatchAlgo::kHungarian:
      return "hungarian";
    case BatchAlgo::kAuction:
      return "auction";
    case BatchAlgo::kIncrementalKm:
      return "incremental_km";
  }
  return "unknown";
}

Result<BatchAlgo> ParseBatchAlgo(std::string_view name) {
  if (name == "auto") return BatchAlgo::kAuto;
  if (name == "greedy") return BatchAlgo::kGreedy;
  if (name == "hungarian") return BatchAlgo::kHungarian;
  if (name == "auction") return BatchAlgo::kAuction;
  if (name == "incremental_km") return BatchAlgo::kIncrementalKm;
  return Status::InvalidArgument(
      StrFormat("unknown batch algo '%.*s'",
                static_cast<int>(name.size()), name.data()));
}

BatchMatcher::BatchMatcher(BatchMatchConfig config)
    : config_(config) {}

Result<BipartiteMatching> BatchMatcher::SolveWindow(
    const BipartiteGraph& graph,
    const std::vector<WorkerId>& worker_of_column) {
  if (worker_of_column.size() !=
      static_cast<size_t>(graph.right_count())) {
    return Status::InvalidArgument(StrFormat(
        "worker_of_column has %zu entries for %d columns",
        worker_of_column.size(), graph.right_count()));
  }
  last_dual_gap_ = 0.0;

  BatchAlgo algo = config_.algo;
  if (algo == BatchAlgo::kAuto) {
    const int64_t cells = static_cast<int64_t>(graph.left_count()) *
                          static_cast<int64_t>(graph.right_count());
    algo = cells <= config_.auto_dense_cell_limit ? BatchAlgo::kHungarian
                                                  : BatchAlgo::kGreedy;
  }

  switch (algo) {
    case BatchAlgo::kGreedy:
      last_solver_ = "greedy";
      return GreedyMaxWeight(graph);
    case BatchAlgo::kHungarian:
      last_solver_ = "hungarian";
      return HungarianMaxWeight(graph);
    case BatchAlgo::kAuction:
      last_solver_ = "auction";
      return AuctionMaxWeight(graph, config_.auction);
    case BatchAlgo::kIncrementalKm: {
      last_solver_ = "incremental_km";
      IncrementalKuhnMunkres km(graph.right_count(), config_.km);
      if (config_.warm_start && !worker_potential_.empty()) {
        std::vector<double> seed(worker_of_column.size(), 0.0);
        for (size_t j = 0; j < worker_of_column.size(); ++j) {
          const auto it = worker_potential_.find(worker_of_column[j]);
          if (it != worker_potential_.end()) seed[j] = it->second;
        }
        COMX_RETURN_IF_ERROR(km.WarmStart(seed));
      }
      const auto& adj = graph.LeftAdjacency();
      std::vector<IncrementalKuhnMunkres::RowEdge> row_edges;
      for (int32_t l = 0; l < graph.left_count(); ++l) {
        row_edges.clear();
        for (const int32_t ei : adj[static_cast<size_t>(l)]) {
          const BipartiteEdge& e = graph.edges()[static_cast<size_t>(ei)];
          if (e.weight < 0.0) {
            return Status::InvalidArgument(
                StrFormat("negative edge weight %g", e.weight));
          }
          row_edges.push_back({e.right, e.weight});
        }
        COMX_ASSIGN_OR_RETURN(const int32_t row, km.AddRow(row_edges));
        (void)row;
      }
      last_dual_gap_ = km.DualFeasibilityGap();
      if (config_.warm_start) {
        const std::vector<double>& v = km.column_potentials();
        for (size_t j = 0; j < worker_of_column.size(); ++j) {
          worker_potential_[worker_of_column[j]] = v[j];
        }
      }
      return km.Extract();
    }
    case BatchAlgo::kAuto:
      break;  // resolved above
  }
  return Status::Internal("unreachable batch algo");
}

}  // namespace comx
