// Unit tests for the crash-safety oracles (check/recovery_oracles.h) on
// synthetic WAL histories: each corrupt-protocol shape must fire the
// no-double-commit oracle, and clean histories must not.

#include "check/recovery_oracles.h"

#include <cmath>
#include <string>
#include <vector>

#include "gtest/gtest.h"
#include "recovery/wal.h"

namespace comx {
namespace check {
namespace {

using recovery::WalRecord;
using recovery::WalRecordType;

WalRecord Begin(int32_t platforms, bool fault_plan) {
  WalRecord rec;
  rec.type = WalRecordType::kRunBegin;
  rec.platform_count = platforms;
  rec.has_fault_plan = fault_plan;
  return rec;
}

WalRecord Reserve(int64_t step, RequestId request, WorkerId worker) {
  WalRecord rec;
  rec.type = WalRecordType::kOuterReserve;
  rec.step = step;
  rec.request = request;
  rec.worker = worker;
  return rec;
}

WalRecord Confirm(int64_t step, RequestId request, WorkerId worker) {
  WalRecord rec;
  rec.type = WalRecordType::kOuterConfirm;
  rec.step = step;
  rec.request = request;
  rec.worker = worker;
  return rec;
}

WalRecord Decision(int64_t step, RequestId request, PlatformId platform,
                   WorkerId worker, int8_t outcome, double value,
                   double payment, double revenue) {
  WalRecord rec;
  rec.type = WalRecordType::kDecision;
  rec.step = step;
  rec.step_record.step = step;
  rec.step_record.kind = StepRecord::Kind::kDecision;
  rec.step_record.request = request;
  rec.step_record.platform = platform;
  rec.step_record.worker = worker;
  rec.step_record.outcome = outcome;
  rec.step_record.value = value;
  rec.step_record.payment = payment;
  rec.step_record.revenue = revenue;
  return rec;
}

WalRecord Arrival(int64_t step, WorkerId worker) {
  WalRecord rec;
  rec.type = WalRecordType::kArrival;
  rec.step = step;
  rec.step_record.step = step;
  rec.step_record.kind = StepRecord::Kind::kArrival;
  rec.step_record.worker = worker;
  return rec;
}

WalRecord End(double total_revenue, int64_t assignments) {
  WalRecord rec;
  rec.type = WalRecordType::kRunEnd;
  rec.total_revenue = total_revenue;
  rec.assignments = assignments;
  return rec;
}

// One violation whose detail contains `needle`, or a test failure.
void ExpectSingleViolation(const std::vector<OracleViolation>& violations,
                           const std::string& needle) {
  ASSERT_EQ(violations.size(), 1u);
  EXPECT_EQ(violations[0].oracle, kNoDoubleCommitOracle);
  EXPECT_NE(violations[0].detail.find(needle), std::string::npos)
      << violations[0].detail;
}

TEST(WalCommitProtocolTest, CleanTwoPhaseHistoryPasses) {
  const std::vector<WalRecord> wal = {
      Begin(2, /*fault_plan=*/true),
      Arrival(0, /*worker=*/3),
      Reserve(1, /*request=*/7, /*worker=*/3),
      Confirm(1, 7, 3),
      Decision(1, 7, /*platform=*/0, 3, /*outcome=*/2, 10.0, 4.0, 6.0),
      Decision(2, 8, 0, kInvalidId, /*outcome=*/0, 5.0, 0.0, 0.0),
      Decision(3, 9, 1, 4, /*outcome=*/1, 3.0, 0.0, 3.0),
      End(/*total_revenue=*/9.0, /*assignments=*/2),
  };
  EXPECT_TRUE(CheckWalCommitProtocol(wal).empty());
}

TEST(WalCommitProtocolTest, DoubleDecisionIsDoubleCommit) {
  const std::vector<WalRecord> wal = {
      Begin(1, false),
      Decision(0, 7, 0, 3, 1, 10.0, 0.0, 10.0),
      Decision(1, 7, 0, 4, 1, 10.0, 0.0, 10.0),
      End(20.0, 2),
  };
  ExpectSingleViolation(CheckWalCommitProtocol(wal),
                        "decided more than once");
}

TEST(WalCommitProtocolTest, DanglingReserveInFinalWalFires) {
  const std::vector<WalRecord> wal = {
      Begin(2, true),
      Reserve(1, 7, 3),
      // The next boundary record arrives without the covering decision.
      Arrival(2, 5),
  };
  ExpectSingleViolation(CheckWalCommitProtocol(wal),
                        "dangling successful reserve");
}

TEST(WalCommitProtocolTest, OuterDecisionWithoutConfirmFires) {
  const std::vector<WalRecord> wal = {
      Begin(2, /*fault_plan=*/true),
      Reserve(1, 7, 3),
      Decision(1, 7, 0, 3, 2, 10.0, 4.0, 6.0),
  };
  ExpectSingleViolation(CheckWalCommitProtocol(wal),
                        "lacks a matching confirm");
}

TEST(WalCommitProtocolTest, ReservedWorkerMismatchFires) {
  const std::vector<WalRecord> wal = {
      Begin(2, true),
      Reserve(1, 7, 3),
      Confirm(1, 7, 9),
      Decision(1, 7, 0, 9, 2, 10.0, 4.0, 6.0),
  };
  ExpectSingleViolation(CheckWalCommitProtocol(wal), "but the step reserved");
}

TEST(WalCommitProtocolTest, ReserveFollowedByNonOuterDecisionFires) {
  const std::vector<WalRecord> wal = {
      Begin(2, /*fault_plan=*/false),
      Reserve(1, 7, 3),
      Decision(1, 7, 0, 4, /*outcome=*/1, 10.0, 0.0, 10.0),
  };
  ExpectSingleViolation(CheckWalCommitProtocol(wal), "decided non-outer");
}

TEST(WalCommitProtocolTest, OuterRevenueMustSatisfyEq1Bitwise) {
  std::vector<WalRecord> wal = {
      Begin(2, false),
      Decision(1, 7, 0, 3, 2, 10.0, 4.0, 6.0),
  };
  EXPECT_TRUE(CheckWalCommitProtocol(wal).empty());
  // Off by one ULP is still a violation.
  wal[1].step_record.revenue =
      std::nextafter(6.0, 7.0);
  ExpectSingleViolation(CheckWalCommitProtocol(wal), "Eq. 1");
}

TEST(WalCommitProtocolTest, InnerWithPaymentAndPaidRejectFire) {
  const std::vector<WalRecord> inner_paid = {
      Begin(1, false),
      Decision(0, 7, 0, 3, 1, 10.0, 2.0, 10.0),
  };
  ExpectSingleViolation(CheckWalCommitProtocol(inner_paid),
                        "inner revenue accounting");
  const std::vector<WalRecord> paid_reject = {
      Begin(1, false),
      Decision(0, 7, 0, kInvalidId, 0, 10.0, 0.0, 1.0),
  };
  ExpectSingleViolation(CheckWalCommitProtocol(paid_reject),
                        "carries revenue");
}

TEST(WalCommitProtocolTest, RunEndTotalsAreCheckedBitwise) {
  const std::vector<WalRecord> wal = {
      Begin(1, false),
      Decision(0, 7, 0, 3, 1, 10.0, 0.0, 10.0),
      End(/*total_revenue=*/10.5, /*assignments=*/1),
  };
  ExpectSingleViolation(CheckWalCommitProtocol(wal), "total revenue");

  const std::vector<WalRecord> wrong_count = {
      Begin(1, false),
      Decision(0, 7, 0, 3, 1, 10.0, 0.0, 10.0),
      End(10.0, /*assignments=*/2),
  };
  ExpectSingleViolation(CheckWalCommitProtocol(wrong_count), "assignments");
}

TEST(RecoveryEquivalenceTest, DetectsRevenueAndAssignmentDrift) {
  SimResult a;
  a.metrics.per_platform.resize(2);
  a.metrics.per_platform[0].revenue = 10.0;
  a.metrics.per_platform[0].completed = 3;
  Assignment assign;
  assign.request = 7;
  assign.worker = 3;
  assign.is_outer = true;
  assign.outer_payment = 4.0;
  assign.revenue = 6.0;
  a.matching.assignments.push_back(assign);
  a.matching.total_revenue = 10.0;

  SimResult b = a;
  EXPECT_TRUE(CheckRecoveryEquivalence(a, b).empty());

  // One ULP of revenue drift on platform 0.
  b.metrics.per_platform[0].revenue = std::nextafter(10.0, 11.0);
  auto violations = CheckRecoveryEquivalence(a, b);
  ASSERT_FALSE(violations.empty());
  EXPECT_EQ(violations[0].oracle, kRecoveryBitExactOracle);

  // A flipped assignment field.
  b = a;
  b.matching.assignments[0].worker = 4;
  violations = CheckRecoveryEquivalence(a, b);
  ASSERT_FALSE(violations.empty());
  EXPECT_NE(violations[0].detail.find("assignment"), std::string::npos);
}

}  // namespace
}  // namespace check
}  // namespace comx
