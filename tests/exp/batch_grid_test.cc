#include "exp/batch_grid.h"

#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "datagen/synthetic.h"
#include "matching/batch_matcher.h"
#include "sim/simulator.h"

namespace comx {
namespace exp {
namespace {

Instance SmallInstance() {
  SyntheticConfig config;
  config.requests_per_platform = {120};
  config.workers_per_platform = {30};
  config.seed = 7;
  auto instance = GenerateSynthetic(config);
  EXPECT_TRUE(instance.ok()) << instance.status();
  return std::move(*instance);
}

BatchGridConfig SmallConfig(int jobs) {
  BatchGridConfig config;
  config.seeds = 3;
  config.jobs = jobs;
  config.windows = {0.0, 30.0, 120.0};
  config.algos = {BatchAlgo::kAuto, BatchAlgo::kIncrementalKm};
  config.sim.workers_recycle = true;
  return config;
}

TEST(BatchGridTest, WindowZeroRowsHaveExactlyZeroGap) {
  // The window-0 cell of any solver is the engine's online path
  // bit-for-bit, and the grid accumulates revenue in the same seed order
  // as the baseline cell — so the gap is 0.0 exactly, not just small.
  const Instance instance = SmallInstance();
  auto rows = RunBatchGrid(instance, SmallConfig(1));
  ASSERT_TRUE(rows.ok()) << rows.status();
  ASSERT_EQ(rows->size(), 6u);  // 3 windows x 2 algos
  int zero_rows = 0;
  for (const BatchGridRow& row : *rows) {
    if (row.window_seconds != 0.0) continue;
    ++zero_rows;
    EXPECT_EQ(row.gap, 0.0) << BatchAlgoName(row.algo);
    EXPECT_EQ(row.revenue, row.online_revenue) << BatchAlgoName(row.algo);
  }
  EXPECT_EQ(zero_rows, 2);
}

TEST(BatchGridTest, BatchRevenueAtLeastOnlineOnSweptGrid) {
  // The acceptance criterion of the batch experiment: a window solve sees
  // strictly more options than per-request dispatch, so on the swept grid
  // the best batch row must not lose revenue against the online baseline.
  const Instance instance = SmallInstance();
  auto rows = RunBatchGrid(instance, SmallConfig(1));
  ASSERT_TRUE(rows.ok()) << rows.status();
  double best_gap = -1e300;
  for (const BatchGridRow& row : *rows) {
    best_gap = best_gap > row.gap ? best_gap : row.gap;
  }
  EXPECT_GE(best_gap, 0.0);
  // Positive windows actually wait: the mean wait must exceed the online
  // row's (which records in-window waits of 0 for window = 0).
  for (const BatchGridRow& row : *rows) {
    if (row.window_seconds > 0.0) EXPECT_GT(row.mean_wait_seconds, 0.0);
  }
}

TEST(BatchGridTest, ParallelRowsAreBitIdenticalToSerial) {
  const Instance instance = SmallInstance();
  auto serial = RunBatchGrid(instance, SmallConfig(1));
  auto parallel = RunBatchGrid(instance, SmallConfig(8));
  ASSERT_TRUE(serial.ok()) << serial.status();
  ASSERT_TRUE(parallel.ok()) << parallel.status();
  ASSERT_EQ(serial->size(), parallel->size());
  for (size_t i = 0; i < serial->size(); ++i) {
    const BatchGridRow& a = (*serial)[i];
    const BatchGridRow& b = (*parallel)[i];
    EXPECT_EQ(a.window_seconds, b.window_seconds);
    EXPECT_EQ(a.algo, b.algo);
    EXPECT_EQ(a.revenue, b.revenue);  // exact doubles
    EXPECT_EQ(a.online_revenue, b.online_revenue);
    EXPECT_EQ(a.gap, b.gap);
    EXPECT_EQ(a.mean_wait_seconds, b.mean_wait_seconds);
    EXPECT_EQ(a.completed, b.completed);
  }
  EXPECT_EQ(RenderBatchGridTable("T", *serial),
            RenderBatchGridTable("T", *parallel));
  EXPECT_EQ(RenderBatchGridCsvRows("tag", *serial),
            RenderBatchGridCsvRows("tag", *parallel));
}

TEST(BatchGridTest, RendersTableAndCsv) {
  std::vector<BatchGridRow> rows(1);
  rows[0].window_seconds = 30.0;
  rows[0].algo = BatchAlgo::kIncrementalKm;
  rows[0].revenue = 12.5;
  rows[0].online_revenue = 10.0;
  rows[0].gap = 2.5;
  const std::string table = RenderBatchGridTable("batch", rows);
  EXPECT_NE(table.find("incremental_km"), std::string::npos) << table;
  const std::string csv =
      BatchGridCsvHeader() + RenderBatchGridCsvRows("t", rows);
  EXPECT_NE(csv.find("t,30.000,incremental_km,12.50,10.00,2.50"),
            std::string::npos)
      << csv;
}

TEST(BatchGridTest, RejectsBadConfigs) {
  const Instance instance = SmallInstance();
  BatchGridConfig config = SmallConfig(1);
  config.seeds = 0;
  EXPECT_EQ(RunBatchGrid(instance, config).status().code(),
            StatusCode::kInvalidArgument);
  config = SmallConfig(1);
  config.windows = {-1.0};
  EXPECT_EQ(RunBatchGrid(instance, config).status().code(),
            StatusCode::kInvalidArgument);
  config = SmallConfig(1);
  config.algos.clear();
  EXPECT_EQ(RunBatchGrid(instance, config).status().code(),
            StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace exp
}  // namespace comx
