#include "util/logging.h"

#include <atomic>
#include <cstdio>
#include <mutex>
#include <string>

namespace comx {
namespace {

std::atomic<int> g_min_level{static_cast<int>(LogLevel::kInfo)};

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarning:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
  }
  return "?";
}

}  // namespace

void SetLogLevel(LogLevel level) {
  g_min_level.store(static_cast<int>(level), std::memory_order_relaxed);
}

LogLevel GetLogLevel() {
  return static_cast<LogLevel>(g_min_level.load(std::memory_order_relaxed));
}

void LogMessage(LogLevel level, const std::string& message) {
  if (static_cast<int>(level) <
      g_min_level.load(std::memory_order_relaxed)) {
    return;
  }
  // Assemble the whole line first and emit it with one guarded fwrite so
  // concurrent loggers (ThreadPool workers, traced simulations) never
  // interleave fragments of their lines.
  std::string line;
  const char* name = LevelName(level);
  line.reserve(message.size() + 16);
  line += '[';
  line += name;
  line += "] ";
  line += message;
  line += '\n';
  static std::mutex* mu = new std::mutex;  // leaked: usable during shutdown
  std::lock_guard<std::mutex> lock(*mu);
  std::fwrite(line.data(), 1, line.size(), stderr);
}

}  // namespace comx
