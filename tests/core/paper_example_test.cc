// End-to-end checks of the paper's running example (Example 1, Fig. 3,
// Tables I-II) across TOTA, DemCOM, RamCOM and OFF via the full simulator.

#include <gtest/gtest.h>

#include "core/dem_com.h"
#include "core/offline_opt.h"
#include "core/ram_com.h"
#include "core/tota_greedy.h"
#include "sim/simulator.h"
#include "testing/builders.h"

namespace comx {
namespace {

using testing_fixtures::PaperExample;

SimConfig TheoryConfig() {
  SimConfig c;
  c.workers_recycle = false;
  c.measure_response_time = false;
  return c;
}

TEST(PaperExampleTest, TotaOnlineEarnsSixteen) {
  const Instance ins = PaperExample();
  TotaGreedy t0, t1;
  auto result = RunSimulation(ins, {&t0, &t1}, TheoryConfig(), 1);
  ASSERT_TRUE(result.ok());
  // Online greedy: r1<-w1 (4), r2<-w2 (9), r3 rejected, r4<-w4 (3),
  // r5 rejected.
  EXPECT_DOUBLE_EQ(result->metrics.per_platform[0].revenue, 16.0);
  EXPECT_EQ(result->metrics.per_platform[0].completed, 3);
  EXPECT_EQ(result->metrics.per_platform[0].rejected, 2);
  EXPECT_EQ(result->metrics.per_platform[0].completed_outer, 0);
}

TEST(PaperExampleTest, OfflineTotaOptimumIsEighteen) {
  OfflineConfig config;
  config.allow_outer = false;
  auto sol = SolveOffline(PaperExample(), 0, config);
  ASSERT_TRUE(sol.ok());
  EXPECT_DOUBLE_EQ(sol->matching.total_revenue, 18.0);
}

TEST(PaperExampleTest, OfflineComOptimumIsTwentyOne) {
  auto sol = SolveOffline(PaperExample(), 0, {});
  ASSERT_TRUE(sol.ok());
  EXPECT_DOUBLE_EQ(sol->matching.total_revenue, 21.0);
}

TEST(PaperExampleTest, DemComNeverWorseThanTotaHere) {
  // On this instance DemCOM's inner decisions coincide with TOTA and outer
  // borrowing can only add revenue, whatever the acceptance draws do.
  const Instance ins = PaperExample();
  for (uint64_t seed = 0; seed < 20; ++seed) {
    DemCom d0, d1;
    auto dem = RunSimulation(ins, {&d0, &d1}, TheoryConfig(), seed);
    ASSERT_TRUE(dem.ok());
    EXPECT_GE(dem->metrics.per_platform[0].revenue, 16.0) << "seed " << seed;
    EXPECT_LE(dem->metrics.per_platform[0].revenue, 21.0 + 1e-9);
  }
}

TEST(PaperExampleTest, DemComBorrowingAddsRevenueForSomeSeed) {
  // The pristine fixture gives w3/w5 single-valued (step) histories, under
  // which Algorithm 2's bisection provably quotes *below* the step and the
  // acceptance draw always fails — the degenerate extreme of the paper's
  // own Section III-D observation that DemCOM's minimum payments are often
  // rejected. With a richer history (values both below and above the
  // step), borrowing succeeds for some seeds.
  Instance ins = PaperExample();
  ins.mutable_worker(2)->history = {1.0, 2.0, 3.0, 4.0};
  ins.mutable_worker(4)->history = {0.5, 1.0, 2.0, 3.0};
  bool borrowed = false;
  for (uint64_t seed = 0; seed < 50 && !borrowed; ++seed) {
    DemCom d0, d1;
    auto dem = RunSimulation(ins, {&d0, &d1}, TheoryConfig(), seed);
    ASSERT_TRUE(dem.ok());
    borrowed = dem->metrics.per_platform[0].completed_outer > 0;
  }
  EXPECT_TRUE(borrowed)
      << "DemCOM never borrowed an outer worker across 50 seeds";
}

TEST(PaperExampleTest, RamComBoundedByOffline) {
  const Instance ins = PaperExample();
  for (uint64_t seed = 0; seed < 20; ++seed) {
    RamCom r0, r1;
    auto ram = RunSimulation(ins, {&r0, &r1}, TheoryConfig(), seed);
    ASSERT_TRUE(ram.ok());
    EXPECT_LE(ram->metrics.per_platform[0].revenue, 21.0 + 1e-9);
    EXPECT_TRUE(AuditSimResult(ins, TheoryConfig(), *ram).ok());
  }
}

TEST(PaperExampleTest, AllAlgorithmsPassTheAudit) {
  const Instance ins = PaperExample();
  {
    TotaGreedy a, b;
    auto r = RunSimulation(ins, {&a, &b}, TheoryConfig(), 2);
    ASSERT_TRUE(r.ok());
    EXPECT_TRUE(AuditSimResult(ins, TheoryConfig(), *r).ok());
  }
  {
    DemCom a, b;
    auto r = RunSimulation(ins, {&a, &b}, TheoryConfig(), 2);
    ASSERT_TRUE(r.ok());
    EXPECT_TRUE(AuditSimResult(ins, TheoryConfig(), *r).ok());
  }
  {
    RamCom a, b;
    auto r = RunSimulation(ins, {&a, &b}, TheoryConfig(), 2);
    ASSERT_TRUE(r.ok());
    EXPECT_TRUE(AuditSimResult(ins, TheoryConfig(), *r).ok());
  }
}

TEST(PaperExampleTest, CooperationNeverServesForeignRequestsHere) {
  // All requests belong to platform 0; platform 1's metrics must be empty.
  const Instance ins = PaperExample();
  DemCom a, b;
  auto r = RunSimulation(ins, {&a, &b}, TheoryConfig(), 3);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->metrics.per_platform[1].completed, 0);
  EXPECT_EQ(r->metrics.per_platform[1].rejected, 0);
  EXPECT_EQ(r->metrics.per_platform[1].revenue, 0.0);
}

}  // namespace
}  // namespace comx
