#include "obs/latency_histogram.h"

#include <algorithm>
#include <cmath>

#include "obs/metrics_registry.h"

namespace comx {
namespace obs {

void LatencySnapshot::Observe(int64_t nanos) {
  if (counts.empty()) counts.assign(kLatencyBucketCount, 0);
  const int64_t clamped =
      std::clamp<int64_t>(nanos, 0, kLatencyMaxTrackableNanos);
  counts[static_cast<size_t>(LatencyBucketIndex(clamped))] += 1;
  count += 1;
  sum_nanos += clamped;
  max_nanos = std::max(max_nanos, clamped);
}

void LatencySnapshot::Merge(const LatencySnapshot& other) {
  if (other.empty()) return;
  if (counts.empty()) counts.assign(kLatencyBucketCount, 0);
  for (size_t i = 0; i < other.counts.size(); ++i) {
    counts[i] += other.counts[i];
  }
  count += other.count;
  sum_nanos += other.sum_nanos;
  max_nanos = std::max(max_nanos, other.max_nanos);
}

int64_t LatencySnapshot::ValueAtQuantileNanos(double q) const {
  if (count <= 0 || counts.empty()) return 0;
  q = std::clamp(q, 0.0, 1.0);
  int64_t rank = static_cast<int64_t>(
      std::ceil(q * static_cast<double>(count)));
  rank = std::clamp<int64_t>(rank, 1, count);
  int64_t cumulative = 0;
  for (size_t i = 0; i < counts.size(); ++i) {
    cumulative += counts[i];
    if (cumulative >= rank) {
      return std::min(LatencyBucketUpperNanos(static_cast<int>(i)),
                      max_nanos);
    }
  }
  return max_nanos;
}

std::vector<std::pair<int32_t, int64_t>> LatencySnapshot::NonZeroBuckets()
    const {
  std::vector<std::pair<int32_t, int64_t>> out;
  for (size_t i = 0; i < counts.size(); ++i) {
    if (counts[i] != 0) {
      out.emplace_back(static_cast<int32_t>(i), counts[i]);
    }
  }
  return out;
}

LatencySnapshot LatencySnapshotFromSparse(
    const std::vector<std::pair<int32_t, int64_t>>& buckets, int64_t count,
    int64_t sum_nanos, int64_t max_nanos) {
  LatencySnapshot snap;
  snap.count = count;
  snap.sum_nanos = sum_nanos;
  snap.max_nanos = max_nanos;
  if (count > 0 || !buckets.empty()) {
    snap.counts.assign(kLatencyBucketCount, 0);
  }
  for (const auto& [index, bucket_count] : buckets) {
    if (index < 0 || index >= kLatencyBucketCount || bucket_count < 0) {
      snap = LatencySnapshot();
      snap.count = -1;
      return snap;
    }
    snap.counts[static_cast<size_t>(index)] = bucket_count;
  }
  return snap;
}

LatencyHistogram::~LatencyHistogram() {
  for (Shard& shard : shards_) {
    delete[] shard.counts.load(std::memory_order_acquire);
  }
}

std::atomic<int64_t>* LatencyHistogram::ShardCounts(Shard& shard) {
  std::atomic<int64_t>* counts =
      shard.counts.load(std::memory_order_acquire);
  if (counts != nullptr) return counts;
  auto* fresh = new std::atomic<int64_t>[kLatencyBucketCount];
  for (int i = 0; i < kLatencyBucketCount; ++i) {
    fresh[i].store(0, std::memory_order_relaxed);
  }
  // Threads hashing to the same shard may race the first allocation; the
  // CAS loser frees its copy and adopts the winner's array.
  if (shard.counts.compare_exchange_strong(counts, fresh,
                                           std::memory_order_acq_rel,
                                           std::memory_order_acquire)) {
    return fresh;
  }
  delete[] fresh;
  return counts;
}

void LatencyHistogram::ObserveNanos(int64_t nanos) {
  const int64_t clamped =
      std::clamp<int64_t>(nanos, 0, kLatencyMaxTrackableNanos);
  Shard& shard = shards_[internal::ThisThreadShard()];
  std::atomic<int64_t>* counts = ShardCounts(shard);
  counts[LatencyBucketIndex(clamped)].fetch_add(1,
                                                std::memory_order_relaxed);
  shard.count.fetch_add(1, std::memory_order_relaxed);
  shard.sum.fetch_add(clamped, std::memory_order_relaxed);
  int64_t seen = shard.max.load(std::memory_order_relaxed);
  while (clamped > seen &&
         !shard.max.compare_exchange_weak(seen, clamped,
                                          std::memory_order_relaxed)) {
  }
}

LatencySnapshot LatencyHistogram::Snapshot() const {
  LatencySnapshot snap;
  for (const Shard& shard : shards_) {
    const int64_t shard_count = shard.count.load(std::memory_order_relaxed);
    if (shard_count == 0) continue;
    if (snap.counts.empty()) snap.counts.assign(kLatencyBucketCount, 0);
    snap.count += shard_count;
    snap.sum_nanos += shard.sum.load(std::memory_order_relaxed);
    snap.max_nanos = std::max(snap.max_nanos,
                              shard.max.load(std::memory_order_relaxed));
    const std::atomic<int64_t>* counts =
        shard.counts.load(std::memory_order_acquire);
    if (counts == nullptr) continue;
    for (int i = 0; i < kLatencyBucketCount; ++i) {
      snap.counts[static_cast<size_t>(i)] +=
          counts[i].load(std::memory_order_relaxed);
    }
  }
  return snap;
}

int64_t LatencyHistogram::Count() const {
  int64_t total = 0;
  for (const Shard& shard : shards_) {
    total += shard.count.load(std::memory_order_relaxed);
  }
  return total;
}

void LatencyHistogram::Reset() {
  for (Shard& shard : shards_) {
    std::atomic<int64_t>* counts =
        shard.counts.load(std::memory_order_acquire);
    if (counts != nullptr) {
      for (int i = 0; i < kLatencyBucketCount; ++i) {
        counts[i].store(0, std::memory_order_relaxed);
      }
    }
    shard.count.store(0, std::memory_order_relaxed);
    shard.sum.store(0, std::memory_order_relaxed);
    shard.max.store(0, std::memory_order_relaxed);
  }
}

}  // namespace obs
}  // namespace comx
