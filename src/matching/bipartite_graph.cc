#include "matching/bipartite_graph.h"

#include <cmath>

#include "util/string_util.h"

namespace comx {

BipartiteGraph::BipartiteGraph(int32_t left_count, int32_t right_count)
    : left_count_(left_count), right_count_(right_count) {}

Status BipartiteGraph::AddEdge(int32_t left, int32_t right, double weight) {
  if (left < 0 || left >= left_count_) {
    return Status::OutOfRange(StrFormat("left vertex %d of %d", left,
                                        left_count_));
  }
  if (right < 0 || right >= right_count_) {
    return Status::OutOfRange(StrFormat("right vertex %d of %d", right,
                                        right_count_));
  }
  if (!std::isfinite(weight)) {
    return Status::InvalidArgument("edge weight not finite");
  }
  edges_.push_back(BipartiteEdge{left, right, weight});
  adj_dirty_ = true;
  return Status::OK();
}

const std::vector<std::vector<int32_t>>& BipartiteGraph::LeftAdjacency()
    const {
  if (adj_dirty_) {
    left_adj_.assign(static_cast<size_t>(left_count_), {});
    for (int32_t i = 0; i < static_cast<int32_t>(edges_.size()); ++i) {
      left_adj_[static_cast<size_t>(edges_[i].left)].push_back(i);
    }
    adj_dirty_ = false;
  }
  return left_adj_;
}

Status BipartiteGraph::ValidateMatching(
    const std::vector<int32_t>& match_of_left, double* total_weight) const {
  if (static_cast<int32_t>(match_of_left.size()) != left_count_) {
    return Status::InvalidArgument("matching size != left vertex count");
  }
  std::vector<bool> right_used(static_cast<size_t>(right_count_), false);
  double total = 0.0;
  const auto& adj = LeftAdjacency();
  for (int32_t l = 0; l < left_count_; ++l) {
    const int32_t r = match_of_left[static_cast<size_t>(l)];
    if (r < 0) continue;
    if (r >= right_count_) {
      return Status::OutOfRange("matched right vertex out of range");
    }
    if (right_used[static_cast<size_t>(r)]) {
      return Status::FailedPrecondition(
          StrFormat("right vertex %d matched twice", r));
    }
    right_used[static_cast<size_t>(r)] = true;
    // Find the edge weight; matching must use an existing edge. When
    // parallel edges exist, use the maximum weight (a matcher would).
    bool found = false;
    double best = 0.0;
    for (int32_t ei : adj[static_cast<size_t>(l)]) {
      if (edges_[static_cast<size_t>(ei)].right == r) {
        best = found ? std::max(best, edges_[static_cast<size_t>(ei)].weight)
                     : edges_[static_cast<size_t>(ei)].weight;
        found = true;
      }
    }
    if (!found) {
      return Status::FailedPrecondition(
          StrFormat("pair (%d, %d) is not an edge", l, r));
    }
    total += best;
  }
  if (total_weight != nullptr) *total_weight = total;
  return Status::OK();
}

std::string BipartiteGraph::Summary() const {
  return StrFormat("BipartiteGraph{L=%d, R=%d, E=%zu}", left_count_,
                   right_count_, edges_.size());
}

}  // namespace comx
