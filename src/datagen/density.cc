#include "datagen/density.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <fstream>

#include "util/string_util.h"

namespace comx {

DensityGrid::DensityGrid(const Instance& instance, const BBox& bounds,
                         int32_t cols, int32_t rows)
    : cols_(cols), rows_(rows), platforms_(instance.PlatformCount()) {
  assert(cols >= 1 && rows >= 1);
  assert(!bounds.empty());
  const size_t cells = static_cast<size_t>(cols) * static_cast<size_t>(rows);
  worker_counts_.assign(static_cast<size_t>(std::max(platforms_, 1)),
                        std::vector<int64_t>(cells, 0));
  request_counts_ = worker_counts_;

  auto cell_of = [&](const Point& p) {
    const double fx = (p.x - bounds.min_corner().x) /
                      std::max(1e-12, bounds.width());
    const double fy = (p.y - bounds.min_corner().y) /
                      std::max(1e-12, bounds.height());
    const int32_t col = std::clamp(
        static_cast<int32_t>(fx * static_cast<double>(cols_)), 0, cols_ - 1);
    const int32_t row = std::clamp(
        static_cast<int32_t>(fy * static_cast<double>(rows_)), 0, rows_ - 1);
    return CellIndex(col, row);
  };
  for (const Worker& w : instance.workers()) {
    ++worker_counts_[static_cast<size_t>(w.platform)][cell_of(w.location)];
  }
  for (const Request& r : instance.requests()) {
    ++request_counts_[static_cast<size_t>(r.platform)][cell_of(r.location)];
  }
}

int64_t DensityGrid::WorkerCount(PlatformId platform, int32_t col,
                                 int32_t row) const {
  return worker_counts_[static_cast<size_t>(platform)][CellIndex(col, row)];
}

int64_t DensityGrid::RequestCount(PlatformId platform, int32_t col,
                                  int32_t row) const {
  return request_counts_[static_cast<size_t>(platform)][CellIndex(col, row)];
}

double DensityGrid::ImbalanceScore() const {
  if (platforms_ < 1) return 0.0;
  int64_t total_workers = 0, total_requests = 0;
  for (int64_t c : worker_counts_[0]) total_workers += c;
  for (int64_t c : request_counts_[0]) total_requests += c;
  if (total_workers == 0 || total_requests == 0) return 0.0;
  // Total-variation distance between platform 0's worker and request
  // spatial distributions.
  double tv = 0.0;
  for (size_t i = 0; i < worker_counts_[0].size(); ++i) {
    const double ws = static_cast<double>(worker_counts_[0][i]) /
                      static_cast<double>(total_workers);
    const double rs = static_cast<double>(request_counts_[0][i]) /
                      static_cast<double>(total_requests);
    tv += std::abs(ws - rs);
  }
  return 0.5 * tv;
}

std::string DensityGrid::AsciiHeatmap(PlatformId platform,
                                      bool workers) const {
  static const char kRamp[] = " .:+*#";
  const auto& counts =
      workers ? worker_counts_[static_cast<size_t>(platform)]
              : request_counts_[static_cast<size_t>(platform)];
  int64_t max_count = 1;
  for (int64_t c : counts) max_count = std::max(max_count, c);
  std::string out;
  // Row 0 is the bottom (min y); print top-down.
  for (int32_t row = rows_ - 1; row >= 0; --row) {
    for (int32_t col = 0; col < cols_; ++col) {
      const int64_t c = counts[CellIndex(col, row)];
      const size_t level =
          c == 0 ? 0
                 : 1 + static_cast<size_t>(
                           (c * 4) / std::max<int64_t>(1, max_count));
      out.push_back(kRamp[std::min<size_t>(level, 5)]);
    }
    out.push_back('\n');
  }
  return out;
}

Status DensityGrid::WriteCsv(const std::string& path) const {
  std::ofstream out(path, std::ios::trunc);
  if (!out) return Status::IoError("cannot write " + path);
  out << "platform,role,col,row,count\n";
  for (int32_t p = 0; p < platforms_; ++p) {
    for (int32_t row = 0; row < rows_; ++row) {
      for (int32_t col = 0; col < cols_; ++col) {
        out << p << ",worker," << col << ',' << row << ','
            << WorkerCount(p, col, row) << '\n';
        out << p << ",request," << col << ',' << row << ','
            << RequestCount(p, col, row) << '\n';
      }
    }
  }
  if (!out) return Status::IoError("write failed: " + path);
  return Status::OK();
}

}  // namespace comx
