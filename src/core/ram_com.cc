#include "core/ram_com.h"

#include <cmath>

#include "obs/span.h"

namespace comx {

void RamCom::Reset(const Instance& instance, PlatformId /*platform*/,
                   uint64_t seed) {
  rng_ = Rng(seed);
  diag_ = Diagnostics{};
  // Lines 1-2: theta = ceil(ln(max v + 1)) thresholds, drawn uniformly.
  // We draw the exponent from {0, ..., theta-1} (the Greedy-RT convention
  // of [9]) rather than the literal {1, ..., theta} of Algorithm 3: with
  // e^theta >= max v + 1 by construction, the k = theta arm would divert
  // *every* request away from inner workers, which contradicts the paper's
  // own Table V-VII results (RamCOM's completed-request counts track
  // TOTA's). Example 3 (k = 1, threshold e) is unaffected.
  const int64_t theta = ThetaFor(instance.MaxRequestValue());
  const int64_t k = fixed_exponent_ >= 0 ? fixed_exponent_
                                         : rng_.UniformInt(0, theta - 1);
  threshold_ = std::exp(static_cast<double>(k));
}

int64_t RamCom::ThetaFor(double max_value) {
  return std::max<int64_t>(
      1, static_cast<int64_t>(std::ceil(std::log(max_value + 1.0))));
}

Decision RamCom::OnRequest(const Request& r, const PlatformView& view) {
  DecisionStats stats;
  // Lines 4-7: high-value requests go to a *random* feasible inner worker,
  // keeping the inner fleet available for big-ticket arrivals.
  if (r.value > threshold_) {
    std::vector<WorkerId> inner;
    {
      COMX_SPAN("candidate_lookup");
      inner = view.FeasibleInnerWorkers(r);
    }
    stats.inner_candidates = static_cast<int32_t>(inner.size());
    if (!inner.empty()) {
      const WorkerId w = inner[rng_.PickIndex(inner.size())];
      Decision d = Decision::Inner(w);
      d.stats = stats;
      return d;
    }
    // Example 3: a high-value request with no free inner worker falls
    // through to the cooperative path rather than being rejected.
  }

  // Lines 9-11: price with the maximum-expected-revenue rule, then run
  // DemCOM's acceptance step (Algorithm 1 lines 13-26) at payment v_re.
  std::vector<WorkerId> outer;
  {
    COMX_SPAN("candidate_lookup");
    outer = view.FeasibleOuterWorkers(r);
  }
  stats.outer_candidates = static_cast<int32_t>(outer.size());
  if (outer.empty()) {
    Decision d = Decision::Reject();
    d.stats = stats;
    return d;
  }
  KeepNearest(&outer, r, view, max_outer_candidates_);
  stats.priced_candidates = static_cast<int32_t>(outer.size());

  MerQuote quote;
  {
    COMX_SPAN("pricing_estimate");
    quote = ComputeMerQuote(view.acceptance(), outer, r.value, config_);
  }
  const double payment = quote.payment;
  stats.estimated_payment = payment;
  if (payment > r.value) {
    Decision d = Decision::Reject();
    d.stats = stats;
    return d;
  }

  ++diag_.outer_offers;
  diag_.payment_sum += payment;
  diag_.payment_rate_sum += payment / r.value;
  diag_.expected_revenue_sum += quote.expected_revenue;

  std::vector<WorkerId> accepting;
  accepting.reserve(outer.size());
  {
    COMX_SPAN("acceptance_draw");
    for (WorkerId w : outer) {
      if (view.acceptance().Accepts(w, payment, &rng_)) {
        accepting.push_back(w);
      }
    }
  }
  stats.accepting = static_cast<int32_t>(accepting.size());
  if (accepting.empty()) {
    Decision d = Decision::Reject();
    d.attempted_outer = true;
    d.stats = stats;
    return d;
  }
  ++diag_.outer_accepts;
  const std::vector<WorkerId> ranked =
      RankByDistance(std::move(accepting), r, view);
  Decision d = Decision::Outer(ranked.front(), payment);
  d.fallback_workers.assign(ranked.begin() + 1, ranked.end());
  d.stats = stats;
  return d;
}

Status RamCom::SaveState(ByteWriter* out) const {
  out->F64(threshold_);
  WriteRng(rng_, out);
  out->I64(diag_.outer_offers);
  out->I64(diag_.outer_accepts);
  out->F64(diag_.payment_sum);
  out->F64(diag_.payment_rate_sum);
  out->F64(diag_.expected_revenue_sum);
  return Status::OK();
}

Status RamCom::RestoreState(ByteReader* in) {
  COMX_RETURN_IF_ERROR(in->F64(&threshold_));
  COMX_RETURN_IF_ERROR(ReadRng(in, &rng_));
  COMX_RETURN_IF_ERROR(in->I64(&diag_.outer_offers));
  COMX_RETURN_IF_ERROR(in->I64(&diag_.outer_accepts));
  COMX_RETURN_IF_ERROR(in->F64(&diag_.payment_sum));
  COMX_RETURN_IF_ERROR(in->F64(&diag_.payment_rate_sum));
  COMX_RETURN_IF_ERROR(in->F64(&diag_.expected_revenue_sum));
  return Status::OK();
}

}  // namespace comx
