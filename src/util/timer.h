// Wall-clock timing helpers for the response-time metrics.

#ifndef COMX_UTIL_TIMER_H_
#define COMX_UTIL_TIMER_H_

#include <chrono>
#include <cstdint>

namespace comx {

/// Monotonic stopwatch with nanosecond resolution.
class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()) {}

  /// Restarts from zero.
  void Reset() { start_ = Clock::now(); }

  /// Nanoseconds since construction or the last Reset().
  int64_t ElapsedNanos() const {
    return std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() -
                                                                start_)
        .count();
  }

  /// Microseconds since construction or the last Reset().
  double ElapsedMicros() const {
    return static_cast<double>(ElapsedNanos()) / 1e3;
  }

  /// Milliseconds since construction or the last Reset().
  double ElapsedMillis() const {
    return static_cast<double>(ElapsedNanos()) / 1e6;
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace comx

#endif  // COMX_UTIL_TIMER_H_
