// perf_report — renders the flat-JSONL span-profiler dump written by
// `bench_sweep --perf-out` (or obs::SpanProfiler::WriteProfile) as a nested
// per-phase latency table: one row per call-tree node, indented by depth,
// with count, p50/p99/p999 in microseconds, self% and cum% relative to the
// total time under the root.
//
// Usage:
//   perf_report PROFILE.jsonl                   render the table
//   perf_report PROFILE.jsonl --collapsed-out C also write flamegraph-style
//                                               collapsed stacks ("a;b N")
//   perf_report --check PROFILE.jsonl [--collapsed C]
//                                               validate schema only: header,
//                                               required fields, tree
//                                               invariants, quantile
//                                               monotonicity, and (optionally)
//                                               the collapsed-stack format.
//
// A profile (or collapsed file) whose final line was torn by a crashed
// writer is read leniently by default: the unterminated fragment is
// dropped with a warning. --strict restores fail-on-any-malformed-line.
//
// Exit 0 on success, 1 on parse/validation failure, 2 on usage error.

#include <cctype>
#include <cinttypes>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "obs/profiler.h"
#include "util/json.h"
#include "util/status.h"
#include "util/string_util.h"

namespace comx {
namespace {

// One parsed profile line. Field names mirror the JSONL schema.
struct ProfileRow {
  int64_t node = -1;
  int64_t parent = -1;
  int64_t depth = 0;
  std::string phase;
  std::string path;
  int64_t count = 0;
  int64_t total_ns = 0;
  int64_t self_ns = 0;
  int64_t p50_ns = 0;
  int64_t p90_ns = 0;
  int64_t p99_ns = 0;
  int64_t p999_ns = 0;
  int64_t max_ns = 0;
};

struct Profile {
  int64_t declared_nodes = 0;  // header "nodes" field (total tree size)
  std::vector<ProfileRow> rows;
};

Result<int64_t> RequiredInt(const std::map<std::string, JsonScalar>& obj,
                            const char* key, int line_no) {
  auto it = obj.find(key);
  if (it == obj.end() || it->second.kind != JsonScalar::Kind::kNumber) {
    return Status::InvalidArgument(StrFormat(
        "line %d: missing or non-numeric field \"%s\"", line_no, key));
  }
  return static_cast<int64_t>(it->second.number_value);
}

Result<std::string> RequiredString(
    const std::map<std::string, JsonScalar>& obj, const char* key,
    int line_no) {
  auto it = obj.find(key);
  if (it == obj.end() || it->second.kind != JsonScalar::Kind::kString) {
    return Status::InvalidArgument(StrFormat(
        "line %d: missing or non-string field \"%s\"", line_no, key));
  }
  return it->second.string_value;
}

Result<Profile> LoadProfile(const char* path, bool strict,
                            std::string* warning) {
  std::ifstream in(path);
  if (!in) {
    return Status::IoError(StrFormat("cannot open %s", path));
  }
  Profile profile;
  std::string line;
  int line_no = 0;
  bool saw_header = false;
  while (std::getline(in, line)) {
    ++line_no;
    if (line.empty()) continue;
    auto obj = ParseJsonFlatObject(line);
    if (!obj.ok()) {
      // getline leaves eofbit set exactly when the line had no trailing
      // newline — a torn final write from a crashed run. Drop it with a
      // warning unless --strict.
      if (!strict && in.eof()) {
        *warning = StrFormat(
            "%s:%d: dropped unterminated final line (%zu bytes)", path,
            line_no, line.size());
        break;
      }
      return Status::InvalidArgument(
          StrFormat("line %d: %s", line_no, obj.status().ToString().c_str()));
    }
    if (!saw_header) {
      auto schema = RequiredString(*obj, "schema", line_no);
      if (!schema.ok()) return schema.status();
      if (*schema != obs::kProfileSchema) {
        return Status::InvalidArgument(StrFormat(
            "line %d: schema \"%s\", want \"%s\"", line_no, schema->c_str(),
            obs::kProfileSchema));
      }
      auto nodes = RequiredInt(*obj, "nodes", line_no);
      if (!nodes.ok()) return nodes.status();
      profile.declared_nodes = *nodes;
      saw_header = true;
      continue;
    }
    ProfileRow row;
    auto phase = RequiredString(*obj, "phase", line_no);
    if (!phase.ok()) return phase.status();
    row.phase = *phase;
    auto p = RequiredString(*obj, "path", line_no);
    if (!p.ok()) return p.status();
    row.path = *p;
    struct Field {
      const char* key;
      int64_t* dst;
    };
    const Field fields[] = {
        {"node", &row.node},       {"parent", &row.parent},
        {"depth", &row.depth},     {"count", &row.count},
        {"total_ns", &row.total_ns}, {"self_ns", &row.self_ns},
        {"p50_ns", &row.p50_ns},   {"p90_ns", &row.p90_ns},
        {"p99_ns", &row.p99_ns},   {"p999_ns", &row.p999_ns},
        {"max_ns", &row.max_ns},
    };
    for (const Field& f : fields) {
      auto v = RequiredInt(*obj, f.key, line_no);
      if (!v.ok()) return v.status();
      *f.dst = *v;
    }
    profile.rows.push_back(std::move(row));
  }
  if (!saw_header) {
    return Status::InvalidArgument(
        StrFormat("%s: empty profile (no header line)", path));
  }
  return profile;
}

// Tree-invariant and field-sanity checks shared by --check and (implicitly)
// the renderer. The dump omits the root and zero-count nodes, so a row's
// parent may be absent; when it is present we check the exact path
// composition, otherwise only the suffix.
Status ValidateProfile(const Profile& profile) {
  std::map<int64_t, const ProfileRow*> by_node;
  for (const ProfileRow& row : profile.rows) {
    if (row.node <= obs::kProfilerRootNode) {
      return Status::FailedPrecondition(StrFormat(
          "node %lld: id must be > root (%d)",
          static_cast<long long>(row.node), obs::kProfilerRootNode));
    }
    if (!by_node.emplace(row.node, &row).second) {
      return Status::FailedPrecondition(
          StrFormat("node %lld: duplicate id", static_cast<long long>(row.node)));
    }
  }
  if (static_cast<int64_t>(profile.rows.size()) + 1 > profile.declared_nodes) {
    return Status::FailedPrecondition(StrFormat(
        "header declares %lld nodes but file has %zu rows (plus root)",
        static_cast<long long>(profile.declared_nodes), profile.rows.size()));
  }
  for (const ProfileRow& row : profile.rows) {
    const long long id = static_cast<long long>(row.node);
    if (row.parent >= row.node) {
      return Status::FailedPrecondition(StrFormat(
          "node %lld: parent %lld not < node (creation-order invariant)", id,
          static_cast<long long>(row.parent)));
    }
    if (row.depth < 1) {
      return Status::FailedPrecondition(
          StrFormat("node %lld: depth %lld < 1", id,
                    static_cast<long long>(row.depth)));
    }
    if (row.count <= 0) {
      return Status::FailedPrecondition(StrFormat(
          "node %lld: count %lld (zero-count nodes must be omitted)", id,
          static_cast<long long>(row.count)));
    }
    if (row.self_ns < 0 || row.total_ns < 0 || row.self_ns > row.total_ns) {
      return Status::FailedPrecondition(StrFormat(
          "node %lld: self_ns %lld outside [0, total_ns %lld]", id,
          static_cast<long long>(row.self_ns),
          static_cast<long long>(row.total_ns)));
    }
    if (!(row.p50_ns <= row.p90_ns && row.p90_ns <= row.p99_ns &&
          row.p99_ns <= row.p999_ns && row.p999_ns <= row.max_ns)) {
      return Status::FailedPrecondition(StrFormat(
          "node %lld: quantiles not monotone "
          "(p50 %lld, p90 %lld, p99 %lld, p999 %lld, max %lld)",
          id, static_cast<long long>(row.p50_ns),
          static_cast<long long>(row.p90_ns),
          static_cast<long long>(row.p99_ns),
          static_cast<long long>(row.p999_ns),
          static_cast<long long>(row.max_ns)));
    }
    if (row.phase.empty() || row.path.empty()) {
      return Status::FailedPrecondition(
          StrFormat("node %lld: empty phase or path", id));
    }
    if (row.parent == obs::kProfilerRootNode) {
      if (row.depth != 1 || row.path != row.phase) {
        return Status::FailedPrecondition(StrFormat(
            "node %lld: top-level path \"%s\" != phase \"%s\"", id,
            row.path.c_str(), row.phase.c_str()));
      }
      continue;
    }
    auto parent_it = by_node.find(row.parent);
    if (parent_it != by_node.end()) {
      const ProfileRow& par = *parent_it->second;
      if (row.depth != par.depth + 1 ||
          row.path != par.path + ";" + row.phase) {
        return Status::FailedPrecondition(StrFormat(
            "node %lld: path \"%s\" != parent path \"%s\" + \";%s\"", id,
            row.path.c_str(), par.path.c_str(), row.phase.c_str()));
      }
    } else {
      // Parent had zero recorded spans (e.g. dump taken mid-span); the path
      // must still end in this node's phase.
      const std::string suffix = ";" + row.phase;
      if (row.path.size() <= suffix.size() ||
          row.path.compare(row.path.size() - suffix.size(), suffix.size(),
                           suffix) != 0) {
        return Status::FailedPrecondition(StrFormat(
            "node %lld: path \"%s\" does not end in \";%s\"", id,
            row.path.c_str(), row.phase.c_str()));
      }
    }
  }
  return Status::OK();
}

// Collapsed-stack lines derived from the profile rows: "a;b;c <self_ns>".
std::string CollapsedFromProfile(const Profile& profile) {
  std::string out;
  for (const ProfileRow& row : profile.rows) {
    out += row.path;
    out += ' ';
    out += StrFormat("%lld", static_cast<long long>(row.self_ns));
    out += '\n';
  }
  return out;
}

// Validates "path self_ns" collapsed-stack format: a non-empty frame list
// (no spaces) then a single space and a non-negative integer.
Status ValidateCollapsed(const char* path, bool strict,
                         std::string* warning) {
  std::ifstream in(path);
  if (!in) {
    return Status::IoError(StrFormat("cannot open %s", path));
  }
  std::string line;
  int line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    if (line.empty()) continue;
    if (!strict && in.eof()) {
      // An unterminated final line is a torn write; validate it only in
      // strict mode, warn otherwise.
      const size_t sp = line.find(' ');
      const bool well_formed =
          sp != std::string::npos && sp > 0 && sp + 1 < line.size() &&
          line.find(' ', sp + 1) == std::string::npos &&
          line.find_first_not_of("0123456789", sp + 1) == std::string::npos;
      if (!well_formed) {
        *warning = StrFormat(
            "%s:%d: dropped unterminated final line (%zu bytes)", path,
            line_no, line.size());
        break;
      }
    }
    const size_t space = line.find(' ');
    if (space == std::string::npos || space == 0 ||
        space + 1 >= line.size()) {
      return Status::FailedPrecondition(StrFormat(
          "%s:%d: want \"frames <self_ns>\", got \"%s\"", path, line_no,
          line.c_str()));
    }
    for (size_t i = space + 1; i < line.size(); ++i) {
      if (!std::isdigit(static_cast<unsigned char>(line[i]))) {
        return Status::FailedPrecondition(StrFormat(
            "%s:%d: non-integer self_ns in \"%s\"", path, line_no,
            line.c_str()));
      }
    }
    if (line.find(' ', space + 1) != std::string::npos) {
      return Status::FailedPrecondition(StrFormat(
          "%s:%d: more than one space in \"%s\"", path, line_no,
          line.c_str()));
    }
  }
  return Status::OK();
}

void RenderTable(const Profile& profile) {
  // Children in node-id (creation) order, grouped under each parent so the
  // printed table reads as a tree.
  std::map<int64_t, std::vector<const ProfileRow*>> children;
  for (const ProfileRow& row : profile.rows) {
    children[row.parent].push_back(&row);
  }
  int64_t root_total = 0;
  for (const ProfileRow* row : children[obs::kProfilerRootNode]) {
    root_total += row->total_ns;
  }
  const double denom = root_total > 0 ? static_cast<double>(root_total) : 1.0;

  std::printf("%-40s %10s %12s %12s %12s %7s %7s\n", "phase", "count",
              "p50_us", "p99_us", "p999_us", "self%", "cum%");
  std::vector<const ProfileRow*> stack(
      children[obs::kProfilerRootNode].rbegin(),
      children[obs::kProfilerRootNode].rend());
  while (!stack.empty()) {
    const ProfileRow* row = stack.back();
    stack.pop_back();
    std::string label(static_cast<size_t>(2 * (row->depth - 1)), ' ');
    label += row->phase;
    if (label.size() > 40) label.resize(40);
    std::printf("%-40s %10lld %12.1f %12.1f %12.1f %6.1f%% %6.1f%%\n",
                label.c_str(), static_cast<long long>(row->count),
                static_cast<double>(row->p50_ns) / 1e3,
                static_cast<double>(row->p99_ns) / 1e3,
                static_cast<double>(row->p999_ns) / 1e3,
                100.0 * static_cast<double>(row->self_ns) / denom,
                100.0 * static_cast<double>(row->total_ns) / denom);
    auto it = children.find(row->node);
    if (it != children.end()) {
      for (auto rit = it->second.rbegin(); rit != it->second.rend(); ++rit) {
        stack.push_back(*rit);
      }
    }
  }
  std::printf("root total: %.3f ms over %zu phase nodes\n",
              static_cast<double>(root_total) / 1e6, profile.rows.size());
}

int Usage() {
  std::fprintf(stderr,
               "usage: perf_report PROFILE.jsonl [--collapsed-out PATH]\n"
               "       perf_report --check PROFILE.jsonl [--collapsed PATH]\n"
               "       (add --strict to fail on a torn final line)\n");
  return 2;
}

int Main(int argc, char** argv) {
  const char* profile_path = nullptr;
  const char* collapsed_out = nullptr;
  const char* collapsed_in = nullptr;
  bool check = false;
  bool strict = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--check") == 0) {
      check = true;
    } else if (std::strcmp(argv[i], "--strict") == 0) {
      strict = true;
    } else if (std::strcmp(argv[i], "--collapsed-out") == 0 && i + 1 < argc) {
      collapsed_out = argv[++i];
    } else if (std::strcmp(argv[i], "--collapsed") == 0 && i + 1 < argc) {
      collapsed_in = argv[++i];
    } else if (argv[i][0] == '-') {
      return Usage();
    } else if (profile_path == nullptr) {
      profile_path = argv[i];
    } else {
      return Usage();
    }
  }
  if (profile_path == nullptr) return Usage();

  std::string warning;
  auto profile = LoadProfile(profile_path, strict, &warning);
  if (!warning.empty()) {
    std::fprintf(stderr, "warning: %s\n", warning.c_str());
    warning.clear();
  }
  if (!profile.ok()) {
    std::fprintf(stderr, "error: %s\n",
                 profile.status().ToString().c_str());
    return 1;
  }
  if (Status st = ValidateProfile(*profile); !st.ok()) {
    std::fprintf(stderr, "profile check FAILED: %s\n", st.ToString().c_str());
    return 1;
  }

  if (check) {
    if (collapsed_in != nullptr) {
      Status st = ValidateCollapsed(collapsed_in, strict, &warning);
      if (!warning.empty()) {
        std::fprintf(stderr, "warning: %s\n", warning.c_str());
      }
      if (!st.ok()) {
        std::fprintf(stderr, "collapsed check FAILED: %s\n",
                     st.ToString().c_str());
        return 1;
      }
    }
    std::printf("perf_report check OK: %zu nodes%s\n", profile->rows.size(),
                collapsed_in != nullptr ? ", collapsed stacks valid" : "");
    return 0;
  }

  if (collapsed_out != nullptr) {
    std::ofstream out(collapsed_out, std::ios::trunc);
    if (!out) {
      std::fprintf(stderr, "error: cannot open %s for write\n",
                   collapsed_out);
      return 1;
    }
    out << CollapsedFromProfile(*profile);
    if (!out.flush()) {
      std::fprintf(stderr, "error: write to %s failed\n", collapsed_out);
      return 1;
    }
  }

  RenderTable(*profile);
  return 0;
}

}  // namespace
}  // namespace comx

int main(int argc, char** argv) { return comx::Main(argc, argv); }
