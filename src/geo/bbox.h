// Axis-aligned bounding box used by the grid index and the city models.

#ifndef COMX_GEO_BBOX_H_
#define COMX_GEO_BBOX_H_

#include <limits>

#include "geo/point.h"

namespace comx {

/// Axis-aligned rectangle [min_x, max_x] x [min_y, max_y].
///
/// A default-constructed box is empty (inverted bounds); Extend() grows it
/// to cover points.
class BBox {
 public:
  /// Empty (inverted) box.
  BBox();

  /// Box with explicit corners. Requires min <= max on both axes.
  BBox(Point min_corner, Point max_corner);

  /// True when no point was ever added and no corners set.
  bool empty() const;

  /// Grows the box to include `p`.
  void Extend(const Point& p);

  /// Grows the box by `margin` km on all sides. No-op on an empty box.
  void Inflate(double margin);

  /// True when `p` lies inside or on the boundary.
  bool Contains(const Point& p) const;

  /// True when the two boxes overlap (boundary counts).
  bool Intersects(const BBox& other) const;

  /// True when any part of the circle (center, radius) overlaps this box.
  bool IntersectsCircle(const Point& center, double radius) const;

  Point min_corner() const { return min_; }
  Point max_corner() const { return max_; }
  double width() const { return max_.x - min_.x; }
  double height() const { return max_.y - min_.y; }

 private:
  Point min_;
  Point max_;
};

}  // namespace comx

#endif  // COMX_GEO_BBOX_H_
