// Incentive-feedback trajectory (extension; see sim/multi_day.h): the same
// worker population matched day after day, with every completed payment
// appended to the serving worker's history. Shows where each algorithm's
// pricing drives the market: DemCOM's minimum payments depress the price
// level workers appear to accept; RamCOM's MER payments hold it near the
// revenue-optimal point; TOTA (full-value services only) inflates it.

#include <cstdio>
#include <memory>

#include "common.h"
#include "core/dem_com.h"
#include "core/ram_com.h"
#include "core/tota_greedy.h"
#include "sim/multi_day.h"

namespace {

using namespace comx;  // NOLINT — leaf benchmark binary

void Trajectory(const char* name, const DayMatcherFactory& factory,
                int days) {
  MultiDayConfig config;
  config.days = days;
  config.day_template.requests_per_platform = {1250};
  config.day_template.workers_per_platform = {250};
  config.sim.measure_response_time = false;
  auto result = RunMultiDay(config, factory, 2020);
  if (!result.ok()) {
    std::fprintf(stderr, "%s: %s\n", name,
                 result.status().ToString().c_str());
    std::exit(1);
  }
  std::printf("%s\n", name);
  std::printf("  day  revenue   served  coop  acpRt  payRate  "
              "meanHistory\n");
  for (size_t d = 0; d < result->days.size(); ++d) {
    const DayOutcome& day = result->days[d];
    std::printf("  %3zu %9.1f %7lld %5lld  %5.2f  %6.2f  %10.2f\n", d,
                day.revenue, static_cast<long long>(day.completed),
                static_cast<long long>(day.cooperative), day.acceptance,
                day.payment_rate, day.mean_history_value);
  }
  std::printf("\n");
}

}  // namespace

int main(int argc, char** argv) {
  const int days = static_cast<int>(bench::ArgInt(argc, argv, "--days", 8));
  std::printf("incentive-feedback trajectories (%d days, fixed worker "
              "population, fresh requests daily)\n\n",
              days);
  Trajectory("TOTA (no borrowing; services append full values)",
             [] { return std::unique_ptr<OnlineMatcher>(new TotaGreedy()); },
             days);
  Trajectory("DemCOM (minimum payments)",
             [] { return std::unique_ptr<OnlineMatcher>(new DemCom()); },
             days);
  Trajectory("RamCOM (MER payments)",
             [] { return std::unique_ptr<OnlineMatcher>(new RamCom()); },
             days);
  std::printf("expected shape: TOTA's mean history climbs towards the value "
              "scale; DemCOM's climbs more slowly (cheap cooperative "
              "payments dilute it) and its acceptance ratio drifts upward "
              "as workers look cheaper; RamCOM holds payment rates steady "
              "while sustaining the highest cooperative volume.\n");
  return 0;
}
