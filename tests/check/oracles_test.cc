#include "check/oracles.h"

#include <gtest/gtest.h>

#include "check/fuzz_driver.h"

namespace comx {
namespace check {
namespace {

bool HasOracle(const std::vector<OracleViolation>& violations,
               const std::string& slug) {
  for (const OracleViolation& v : violations) {
    if (v.oracle == slug) return true;
  }
  return false;
}

std::string Dump(const std::vector<OracleViolation>& violations) {
  std::string out;
  for (const OracleViolation& v : violations) {
    out += "[" + v.oracle + "] " + v.detail + "\n";
  }
  return out;
}

MatcherRunRecord MakeRecord(MatcherKind kind, const Scenario& scenario,
                            const Instance& instance,
                            const MatcherRunOutput& run) {
  MatcherRunRecord record;
  record.kind = kind;
  record.instance = &instance;
  record.scenario = &scenario;
  record.result = &run.result;
  record.trace = &run.trace;
  record.trace_summary = run.has_summary ? &run.trace_summary : nullptr;
  record.ram_thresholds = run.ram_thresholds;
  return record;
}

TEST(OraclesTest, CleanRunsPassEveryOracle) {
  DifferentialCounts counted;
  for (uint64_t i = 0; i < 30; ++i) {
    const Scenario s = DrawScenario(101, i);
    auto instance = BuildScenarioInstance(s);
    ASSERT_TRUE(instance.ok());
    for (MatcherKind kind : kAllMatcherKinds) {
      const auto violations =
          CheckMatcherRun(kind, s, *instance, OracleOptions{}, &counted);
      EXPECT_TRUE(violations.empty())
          << MatcherKindName(kind) << " on " << s.Describe() << "\n"
          << Dump(violations);
    }
  }
  // The stream must actually exercise the differential oracles, or this
  // test proves nothing about them.
  EXPECT_GT(counted.off_bounds, 0);
  EXPECT_GT(counted.brute_force, 0);
}

// Finds a (scenario, run) pair with at least `min_assignments` assignments
// for tamper-detection tests.
struct TamperFixture {
  Scenario scenario;
  Instance instance;
  MatcherRunOutput run;
};

TamperFixture FindRunWithAssignments(MatcherKind kind, bool want_outer) {
  for (uint64_t i = 0; i < 400; ++i) {
    Scenario s = DrawScenario(202, i);
    auto instance = BuildScenarioInstance(s);
    if (!instance.ok()) continue;
    auto run = RunMatcherOnInstance(kind, s, *instance);
    if (!run.ok()) continue;
    bool has_outer = false;
    for (const Assignment& a : run->result.matching.assignments) {
      has_outer |= a.is_outer;
    }
    if (run->result.matching.assignments.empty()) continue;
    if (want_outer && !has_outer) continue;
    return TamperFixture{s, *std::move(instance), *std::move(run)};
  }
  ADD_FAILURE() << "no suitable run found in 400 scenarios";
  return {};
}

TEST(OraclesTest, TamperedRevenueIsCaughtBitExactly) {
  TamperFixture fx = FindRunWithAssignments(MatcherKind::kDemCom, false);
  ASSERT_FALSE(fx.run.result.matching.assignments.empty());
  // One ulp-scale nudge: the Eq. 1 oracle compares exactly, not with a
  // tolerance, so even this must fire.
  fx.run.result.matching.assignments[0].revenue +=
      1e-9 * (1.0 + fx.run.result.matching.assignments[0].revenue);
  const auto violations = CheckConstraintOracles(
      MakeRecord(MatcherKind::kDemCom, fx.scenario, fx.instance, fx.run),
      OracleOptions{});
  EXPECT_TRUE(HasOracle(violations, "revenue-eq1")) << Dump(violations);
}

TEST(OraclesTest, TamperedOuterPaymentIsCaught) {
  TamperFixture fx = FindRunWithAssignments(MatcherKind::kDemCom, true);
  for (Assignment& a : fx.run.result.matching.assignments) {
    if (!a.is_outer) continue;
    const Request& r = fx.instance.request(a.request);
    a.outer_payment = r.value * 2.0;  // outside (0, v_r]
    break;
  }
  const auto violations = CheckConstraintOracles(
      MakeRecord(MatcherKind::kDemCom, fx.scenario, fx.instance, fx.run),
      OracleOptions{});
  EXPECT_TRUE(HasOracle(violations, "outer-payment-range"))
      << Dump(violations);
}

TEST(OraclesTest, DuplicateServiceIsCaught) {
  TamperFixture fx = FindRunWithAssignments(MatcherKind::kTota, false);
  ASSERT_FALSE(fx.run.result.matching.assignments.empty());
  // Serve the last request a second time: the invariable constraint
  // (assignments are final) must fire.
  fx.run.result.matching.assignments.push_back(
      fx.run.result.matching.assignments.back());
  const auto violations = CheckConstraintOracles(
      MakeRecord(MatcherKind::kTota, fx.scenario, fx.instance, fx.run),
      OracleOptions{});
  EXPECT_TRUE(HasOracle(violations, "invariable-constraint"))
      << Dump(violations);
}

TEST(OraclesTest, ForgedTotaOuterAssignmentIsCaught) {
  TamperFixture fx = FindRunWithAssignments(MatcherKind::kTota, false);
  ASSERT_FALSE(fx.run.trace.empty());
  // Flip a trace outcome to "outer": TOTA never borrows, so the policy
  // oracle must fire.
  for (obs::TraceEvent& ev : fx.run.trace) {
    if (ev.outcome == "reject") {
      ev.outcome = "outer";
      break;
    }
  }
  const auto violations = CheckConstraintOracles(
      MakeRecord(MatcherKind::kTota, fx.scenario, fx.instance, fx.run),
      OracleOptions{});
  EXPECT_TRUE(HasOracle(violations, "tota-no-outer")) << Dump(violations);
}

TEST(OraclesTest, ForgedRamThresholdIsCaught) {
  TamperFixture fx = FindRunWithAssignments(MatcherKind::kRamCom, false);
  ASSERT_FALSE(fx.run.ram_thresholds.empty());
  // A threshold that is not e^k for any valid arm.
  fx.run.ram_thresholds[0] = 1.5;
  const auto violations = CheckConstraintOracles(
      MakeRecord(MatcherKind::kRamCom, fx.scenario, fx.instance, fx.run),
      OracleOptions{});
  EXPECT_TRUE(HasOracle(violations, "ram-threshold-set"))
      << Dump(violations);
}

}  // namespace
}  // namespace check
}  // namespace comx
