#include "util/memory_meter.h"

#include <vector>

#include <gtest/gtest.h>

namespace comx {
namespace {

TEST(MemoryMeterTest, TracksLiveAndPeak) {
  MemoryMeter m;
  EXPECT_EQ(m.live_bytes(), 0);
  EXPECT_EQ(m.peak_bytes(), 0);
  m.Allocate(100);
  m.Allocate(50);
  EXPECT_EQ(m.live_bytes(), 150);
  EXPECT_EQ(m.peak_bytes(), 150);
  m.Release(120);
  EXPECT_EQ(m.live_bytes(), 30);
  EXPECT_EQ(m.peak_bytes(), 150);  // peak sticks
  m.Allocate(10);
  EXPECT_EQ(m.peak_bytes(), 150);
}

TEST(MemoryMeterTest, ResetClearsBoth) {
  MemoryMeter m;
  m.Allocate(7);
  m.Reset();
  EXPECT_EQ(m.live_bytes(), 0);
  EXPECT_EQ(m.peak_bytes(), 0);
}

TEST(CurrentRssTest, ReportsPositiveOnLinux) {
  // The build/test environment is Linux with /proc mounted.
  EXPECT_GT(CurrentRssBytes(), 0);
}

TEST(CurrentRssTest, GrowsAfterLargeAllocation) {
  const int64_t before = CurrentRssBytes();
  // Touch 64 MB so the kernel actually maps it.
  std::vector<char> big(64 << 20, 1);
  const int64_t after = CurrentRssBytes();
  EXPECT_GT(after, before);
  EXPECT_GT(big[12345], 0);  // keep `big` alive
}

}  // namespace
}  // namespace comx
