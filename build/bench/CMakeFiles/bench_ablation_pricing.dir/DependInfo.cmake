
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_ablation_pricing.cc" "bench/CMakeFiles/bench_ablation_pricing.dir/bench_ablation_pricing.cc.o" "gcc" "bench/CMakeFiles/bench_ablation_pricing.dir/bench_ablation_pricing.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/bench/CMakeFiles/comx_bench_common.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/comx_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/comx_core.dir/DependInfo.cmake"
  "/root/repo/build/src/matching/CMakeFiles/comx_matching.dir/DependInfo.cmake"
  "/root/repo/build/src/pricing/CMakeFiles/comx_pricing.dir/DependInfo.cmake"
  "/root/repo/build/src/datagen/CMakeFiles/comx_datagen.dir/DependInfo.cmake"
  "/root/repo/build/src/model/CMakeFiles/comx_model.dir/DependInfo.cmake"
  "/root/repo/build/src/roadnet/CMakeFiles/comx_roadnet.dir/DependInfo.cmake"
  "/root/repo/build/src/geo/CMakeFiles/comx_geo.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/comx_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
