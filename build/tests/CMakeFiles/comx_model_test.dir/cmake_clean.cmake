file(REMOVE_RECURSE
  "CMakeFiles/comx_model_test.dir/model/arrival_stream_test.cc.o"
  "CMakeFiles/comx_model_test.dir/model/arrival_stream_test.cc.o.d"
  "CMakeFiles/comx_model_test.dir/model/constraints_test.cc.o"
  "CMakeFiles/comx_model_test.dir/model/constraints_test.cc.o.d"
  "CMakeFiles/comx_model_test.dir/model/entities_test.cc.o"
  "CMakeFiles/comx_model_test.dir/model/entities_test.cc.o.d"
  "CMakeFiles/comx_model_test.dir/model/instance_test.cc.o"
  "CMakeFiles/comx_model_test.dir/model/instance_test.cc.o.d"
  "comx_model_test"
  "comx_model_test.pdb"
  "comx_model_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/comx_model_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
