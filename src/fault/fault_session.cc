#include "fault/fault_session.h"

#include <string>

#include "obs/metrics_registry.h"
#include "util/string_util.h"

namespace comx {
namespace fault {

void FaultSessionStats::Merge(const FaultSessionStats& other) {
  attempts += other.attempts;
  attempt_timeouts += other.attempt_timeouts;
  attempt_unavailable += other.attempt_unavailable;
  attempt_outages += other.attempt_outages;
  retries += other.retries;
  partner_unreachable += other.partner_unreachable;
  breaker_open_skips += other.breaker_open_skips;
  breaker_transitions += other.breaker_transitions;
  reserve_conflicts += other.reserve_conflicts;
  degraded_requests += other.degraded_requests;
  backoff_ms_total += other.backoff_ms_total;
  injected_latency_ms_total += other.injected_latency_ms_total;
}

FaultSession::FaultSession(const FaultPlan& plan, uint64_t run_seed)
    : injector_(plan, run_seed) {}

CircuitBreaker& FaultSession::BreakerFor(PlatformId observer,
                                         PlatformId partner) {
  const auto key = std::make_pair(observer, partner);
  auto it = breakers_.find(key);
  if (it == breakers_.end()) {
    it = breakers_.emplace(key, CircuitBreaker(plan().breaker)).first;
  }
  return it->second;
}

bool FaultSession::PartnerVisible(PlatformId observer, PlatformId partner,
                                  Timestamp now) {
  if (!PartnerFaulty(partner)) return true;
  CircuitBreaker& breaker = BreakerFor(observer, partner);
  if (!breaker.AllowRequest(now)) {
    ++stats_.breaker_open_skips;
    ++request_info_.failed_partners;
    return false;
  }
  const RetryPolicy& retry = plan().retry;
  for (int attempt = 1; attempt <= retry.max_attempts; ++attempt) {
    const AttemptResult result = injector_.QueryAttempt(partner, now);
    ++stats_.attempts;
    stats_.injected_latency_ms_total += result.latency_ms;
    if (result.ok()) {
      breaker.RecordSuccess(now);
      return true;
    }
    switch (result.outcome) {
      case AttemptOutcome::kTimeout:
        ++stats_.attempt_timeouts;
        break;
      case AttemptOutcome::kUnavailable:
        ++stats_.attempt_unavailable;
        break;
      case AttemptOutcome::kOutage:
        ++stats_.attempt_outages;
        break;
      case AttemptOutcome::kOk:
        break;
    }
    if (attempt < retry.max_attempts &&
        result.outcome != AttemptOutcome::kOutage) {
      // Retrying inside a scheduled outage is pointless: the window is a
      // function of `now`, which does not advance during backoff.
      ++stats_.retries;
      ++request_info_.retries;
      const double backoff = retry.BackoffMs(attempt, injector_.JitterUnit());
      stats_.backoff_ms_total += backoff;
      if (obs::CollectionEnabled()) {
        obs::MetricsRegistry::Global()
            .GetHistogram("comx_fault_retry_backoff_ms",
                          {1.0, 5.0, 25.0, 100.0, 500.0, 2000.0},
                          "Virtual backoff per retry, ms")
            ->Observe(backoff);
      }
      continue;
    }
    break;
  }
  breaker.RecordFailure(now);
  ++stats_.partner_unreachable;
  ++request_info_.failed_partners;
  return false;
}

bool FaultSession::TryReserve(PlatformId observer, PlatformId partner,
                              Timestamp now) {
  (void)observer;
  (void)now;
  if (!PartnerFaulty(partner)) return true;
  if (injector_.ReserveConflict(partner)) {
    ++stats_.reserve_conflicts;
    ++request_info_.reserve_conflicts;
    return false;
  }
  return true;
}

void FaultSession::NoteDegraded() {
  if (!request_info_.degraded) {
    request_info_.degraded = true;
    ++stats_.degraded_requests;
  }
}

RequestFaultInfo FaultSession::TakeRequestInfo() {
  RequestFaultInfo info = request_info_;
  request_info_ = RequestFaultInfo();
  return info;
}

FaultSessionStats FaultSession::stats() const {
  FaultSessionStats out = stats_;
  for (const auto& [key, breaker] : breakers_) {
    out.breaker_transitions += breaker.transitions();
  }
  return out;
}

void FaultSession::SaveState(ByteWriter* out) const {
  const Rng::State rng_state = injector_.SaveRngState();
  for (uint64_t word : rng_state.s) out->U64(word);
  out->Bool(rng_state.has_cached_normal);
  out->F64(rng_state.cached_normal);
  out->U64(static_cast<uint64_t>(breakers_.size()));
  for (const auto& [key, breaker] : breakers_) {
    out->I32(key.first);
    out->I32(key.second);
    const CircuitBreaker::Snapshot snap = breaker.Save();
    out->U8(static_cast<uint8_t>(snap.state));
    out->I32(snap.consecutive_failures);
    out->I32(snap.half_open_successes);
    out->F64(snap.opened_at);
    out->I64(snap.transitions);
    out->Bool(snap.probe_in_flight);
  }
  out->I64(stats_.attempts);
  out->I64(stats_.attempt_timeouts);
  out->I64(stats_.attempt_unavailable);
  out->I64(stats_.attempt_outages);
  out->I64(stats_.retries);
  out->I64(stats_.partner_unreachable);
  out->I64(stats_.breaker_open_skips);
  out->I64(stats_.breaker_transitions);
  out->I64(stats_.reserve_conflicts);
  out->I64(stats_.degraded_requests);
  out->F64(stats_.backoff_ms_total);
  out->F64(stats_.injected_latency_ms_total);
  out->I32(request_info_.retries);
  out->I32(request_info_.failed_partners);
  out->I32(request_info_.reserve_conflicts);
  out->Bool(request_info_.degraded);
}

Status FaultSession::RestoreState(ByteReader* in) {
  Rng::State rng_state;
  for (uint64_t& word : rng_state.s) COMX_RETURN_IF_ERROR(in->U64(&word));
  COMX_RETURN_IF_ERROR(in->Bool(&rng_state.has_cached_normal));
  COMX_RETURN_IF_ERROR(in->F64(&rng_state.cached_normal));
  injector_.RestoreRngState(rng_state);
  uint64_t breaker_count;
  COMX_RETURN_IF_ERROR(in->U64(&breaker_count));
  breakers_.clear();
  for (uint64_t i = 0; i < breaker_count; ++i) {
    PlatformId observer, partner;
    COMX_RETURN_IF_ERROR(in->I32(&observer));
    COMX_RETURN_IF_ERROR(in->I32(&partner));
    CircuitBreaker::Snapshot snap;
    uint8_t state;
    COMX_RETURN_IF_ERROR(in->U8(&state));
    snap.state = static_cast<int8_t>(state);
    COMX_RETURN_IF_ERROR(in->I32(&snap.consecutive_failures));
    COMX_RETURN_IF_ERROR(in->I32(&snap.half_open_successes));
    COMX_RETURN_IF_ERROR(in->F64(&snap.opened_at));
    COMX_RETURN_IF_ERROR(in->I64(&snap.transitions));
    COMX_RETURN_IF_ERROR(in->Bool(&snap.probe_in_flight));
    BreakerFor(observer, partner).Restore(snap);
  }
  COMX_RETURN_IF_ERROR(in->I64(&stats_.attempts));
  COMX_RETURN_IF_ERROR(in->I64(&stats_.attempt_timeouts));
  COMX_RETURN_IF_ERROR(in->I64(&stats_.attempt_unavailable));
  COMX_RETURN_IF_ERROR(in->I64(&stats_.attempt_outages));
  COMX_RETURN_IF_ERROR(in->I64(&stats_.retries));
  COMX_RETURN_IF_ERROR(in->I64(&stats_.partner_unreachable));
  COMX_RETURN_IF_ERROR(in->I64(&stats_.breaker_open_skips));
  COMX_RETURN_IF_ERROR(in->I64(&stats_.breaker_transitions));
  COMX_RETURN_IF_ERROR(in->I64(&stats_.reserve_conflicts));
  COMX_RETURN_IF_ERROR(in->I64(&stats_.degraded_requests));
  COMX_RETURN_IF_ERROR(in->F64(&stats_.backoff_ms_total));
  COMX_RETURN_IF_ERROR(in->F64(&stats_.injected_latency_ms_total));
  COMX_RETURN_IF_ERROR(in->I32(&request_info_.retries));
  COMX_RETURN_IF_ERROR(in->I32(&request_info_.failed_partners));
  COMX_RETURN_IF_ERROR(in->I32(&request_info_.reserve_conflicts));
  COMX_RETURN_IF_ERROR(in->Bool(&request_info_.degraded));
  return Status::OK();
}

void FaultSession::PublishMetrics() const {
  if (!obs::CollectionEnabled()) return;
  auto& registry = obs::MetricsRegistry::Global();
  const FaultSessionStats s = stats();
  const struct {
    const char* name;
    const char* help;
    int64_t value;
  } counters[] = {
      {"comx_fault_attempts_total", "Injected RPC attempts drawn",
       s.attempts},
      {"comx_fault_attempt_failures_total{outcome=\"timeout\"}",
       "Attempts failed by injected latency over budget", s.attempt_timeouts},
      {"comx_fault_attempt_failures_total{outcome=\"unavailable\"}",
       "Attempts failed by the availability draw", s.attempt_unavailable},
      {"comx_fault_attempt_failures_total{outcome=\"outage\"}",
       "Attempts inside a scheduled outage window", s.attempt_outages},
      {"comx_fault_retries_total", "Attempts beyond the first", s.retries},
      {"comx_fault_partner_unreachable_total",
       "Logical partner calls failed after all retries",
       s.partner_unreachable},
      {"comx_fault_breaker_open_skips_total",
       "Partner calls rejected by an open circuit breaker",
       s.breaker_open_skips},
      {"comx_fault_breaker_transitions_total",
       "Circuit-breaker state changes", s.breaker_transitions},
      {"comx_fault_reserve_conflicts_total",
       "Stale-view conflicts on the reserve step", s.reserve_conflicts},
      {"comx_fault_degraded_requests_total",
       "Requests decided with degraded (inner-only) visibility",
       s.degraded_requests},
  };
  for (const auto& c : counters) {
    registry.GetCounter(c.name, c.help)->Inc(c.value);
  }
  for (const auto& [key, breaker] : breakers_) {
    const std::string name = StrFormat(
        "comx_fault_breaker_state{platform=\"%d\",partner=\"%d\"}",
        static_cast<int>(key.first), static_cast<int>(key.second));
    registry
        .GetGauge(name, "Breaker state: 0 closed, 1 open, 2 half-open")
        ->Set(static_cast<double>(static_cast<int>(breaker.state())));
  }
}

}  // namespace fault
}  // namespace comx
