// Micro-benchmarks (google-benchmark) for the performance-critical
// substrates: grid-index operations, offline matchers, the Algorithm 2
// estimator, the MER pricer, and end-to-end simulator throughput.

#include <benchmark/benchmark.h>

#include "core/dem_com.h"
#include "core/ram_com.h"
#include "core/tota_greedy.h"
#include "datagen/synthetic.h"
#include "geo/grid_index.h"
#include "geo/kd_tree.h"
#include "matching/auction.h"
#include "matching/greedy_offline.h"
#include "matching/hungarian.h"
#include "matching/min_cost_flow.h"
#include "model/constraints.h"
#include "pricing/mer_pricer.h"
#include "pricing/min_payment_estimator.h"
#include "sim/simulator.h"
#include "util/rng.h"

namespace comx {
namespace {

void BM_GridIndexInsertRemove(benchmark::State& state) {
  const int64_t n = state.range(0);
  Rng rng(1);
  std::vector<Point> points;
  for (int64_t i = 0; i < n; ++i) {
    points.emplace_back(rng.Uniform(-15, 15), rng.Uniform(-15, 15));
  }
  for (auto _ : state) {
    GridIndex index(1.0);
    for (int64_t i = 0; i < n; ++i) {
      benchmark::DoNotOptimize(index.Insert(i, points[static_cast<size_t>(i)]));
    }
    for (int64_t i = 0; i < n; ++i) {
      benchmark::DoNotOptimize(index.Remove(i));
    }
  }
  state.SetItemsProcessed(state.iterations() * n * 2);
}
BENCHMARK(BM_GridIndexInsertRemove)->Arg(1'000)->Arg(10'000)->Arg(100'000);

void BM_GridIndexRadiusQuery(benchmark::State& state) {
  const int64_t n = state.range(0);
  Rng rng(2);
  GridIndex index(1.0);
  for (int64_t i = 0; i < n; ++i) {
    (void)index.Insert(i, Point(rng.Uniform(-15, 15), rng.Uniform(-15, 15)));
  }
  size_t hits = 0;
  for (auto _ : state) {
    const Point c(rng.Uniform(-15, 15), rng.Uniform(-15, 15));
    hits += index.ForEachInRadius(c, 1.0, [](int64_t, double) {});
  }
  benchmark::DoNotOptimize(hits);
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_GridIndexRadiusQuery)->Arg(10'000)->Arg(100'000);

void BM_KdTreeBuild(benchmark::State& state) {
  const int64_t n = state.range(0);
  Rng rng(3);
  std::vector<KdTree::Item> items;
  for (int64_t i = 0; i < n; ++i) {
    items.push_back({i, Point(rng.Uniform(-15, 15), rng.Uniform(-15, 15))});
  }
  for (auto _ : state) {
    KdTree tree(items);
    benchmark::DoNotOptimize(tree.size());
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_KdTreeBuild)->Arg(10'000)->Arg(100'000);

void BM_KdTreeRadiusQuery(benchmark::State& state) {
  const int64_t n = state.range(0);
  Rng rng(3);
  std::vector<KdTree::Item> items;
  for (int64_t i = 0; i < n; ++i) {
    items.push_back({i, Point(rng.Uniform(-15, 15), rng.Uniform(-15, 15))});
  }
  const KdTree tree(std::move(items));
  size_t hits = 0;
  for (auto _ : state) {
    const Point c(rng.Uniform(-15, 15), rng.Uniform(-15, 15));
    hits += tree.ForEachInRadius(c, 1.0, [](const KdTree::Item&, double) {});
  }
  benchmark::DoNotOptimize(hits);
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_KdTreeRadiusQuery)->Arg(10'000)->Arg(100'000);

BipartiteGraph RandomGraph(int32_t left, int32_t right, double density,
                           uint64_t seed) {
  Rng rng(seed);
  BipartiteGraph g(left, right);
  for (int32_t l = 0; l < left; ++l) {
    for (int32_t r = 0; r < right; ++r) {
      if (rng.Bernoulli(density)) {
        (void)g.AddEdge(l, r, rng.Uniform(0.1, 30.0));
      }
    }
  }
  return g;
}

void BM_Hungarian(benchmark::State& state) {
  const int32_t n = static_cast<int32_t>(state.range(0));
  const BipartiteGraph g = RandomGraph(n, n, 0.2, 3);
  for (auto _ : state) {
    auto m = HungarianMaxWeight(g);
    benchmark::DoNotOptimize(m);
  }
}
BENCHMARK(BM_Hungarian)->Arg(50)->Arg(100)->Arg(200);

void BM_MinCostFlow(benchmark::State& state) {
  const int32_t n = static_cast<int32_t>(state.range(0));
  const BipartiteGraph g = RandomGraph(n, n, 0.05, 4);
  for (auto _ : state) {
    auto m = MinCostFlowMaxWeight(g);
    benchmark::DoNotOptimize(m);
  }
}
BENCHMARK(BM_MinCostFlow)->Arg(100)->Arg(400)->Arg(1000);

void BM_GreedyOffline(benchmark::State& state) {
  const int32_t n = static_cast<int32_t>(state.range(0));
  const BipartiteGraph g = RandomGraph(n, n, 0.05, 5);
  for (auto _ : state) {
    auto m = GreedyMaxWeight(g);
    benchmark::DoNotOptimize(m);
  }
}
BENCHMARK(BM_GreedyOffline)->Arg(400)->Arg(1000)->Arg(4000);

void BM_Auction(benchmark::State& state) {
  const int32_t n = static_cast<int32_t>(state.range(0));
  const BipartiteGraph g = RandomGraph(n, n, 0.05, 9);
  for (auto _ : state) {
    auto m = AuctionMaxWeight(g);
    benchmark::DoNotOptimize(m);
  }
}
BENCHMARK(BM_Auction)->Arg(100)->Arg(400)->Arg(1000);

struct PricingFixture {
  Instance instance;
  std::vector<WorkerId> candidates;
  AcceptanceModel* model;

  explicit PricingFixture(int n_candidates) {
    SyntheticConfig config;
    config.requests_per_platform = {1};
    config.workers_per_platform = {n_candidates};
    config.seed = 6;
    instance = std::move(GenerateSynthetic(config)).value();
    for (const Worker& w : instance.workers()) {
      if (w.platform == 1) candidates.push_back(w.id);
    }
    model = new AcceptanceModel(instance);
  }
};

void BM_MinPaymentEstimator(benchmark::State& state) {
  PricingFixture fix(static_cast<int>(state.range(0)));
  Rng rng(7);
  for (auto _ : state) {
    auto est =
        EstimateMinOuterPayment(*fix.model, fix.candidates, 20.0, {}, &rng);
    benchmark::DoNotOptimize(est);
  }
}
BENCHMARK(BM_MinPaymentEstimator)->Arg(2)->Arg(8)->Arg(32)->Arg(128);

void BM_MerPricer(benchmark::State& state) {
  PricingFixture fix(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    auto quote = ComputeMerQuote(*fix.model, fix.candidates, 20.0);
    benchmark::DoNotOptimize(quote);
  }
}
BENCHMARK(BM_MerPricer)->Arg(2)->Arg(8)->Arg(32)->Arg(128);

template <typename Matcher>
void BM_Simulator(benchmark::State& state) {
  SyntheticConfig config;
  config.requests_per_platform = {state.range(0) / 2};
  config.workers_per_platform = {state.range(0) / 10};
  config.seed = 8;
  const Instance instance = std::move(GenerateSynthetic(config)).value();
  SimConfig sim;
  sim.measure_response_time = false;
  for (auto _ : state) {
    Matcher m0, m1;
    auto r = RunSimulation(instance, {&m0, &m1}, sim, 1);
    benchmark::DoNotOptimize(r);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK_TEMPLATE(BM_Simulator, TotaGreedy)->Arg(2'000)->Arg(10'000);
BENCHMARK_TEMPLATE(BM_Simulator, DemCom)->Arg(2'000)->Arg(10'000);
BENCHMARK_TEMPLATE(BM_Simulator, RamCom)->Arg(2'000)->Arg(10'000);

}  // namespace
}  // namespace comx

BENCHMARK_MAIN();
