// Minimal leveled logging to stderr. The library itself logs nothing at
// Info level on hot paths; benchmarks and examples use Info for progress.

#ifndef COMX_UTIL_LOGGING_H_
#define COMX_UTIL_LOGGING_H_

#include <sstream>
#include <string>

namespace comx {

/// Severity levels, in increasing order.
enum class LogLevel : int { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3 };

/// Sets the minimum level that is actually emitted (default: kInfo).
void SetLogLevel(LogLevel level);

/// Current minimum level.
LogLevel GetLogLevel();

/// Emits one line to stderr: "[LEVEL] message".
void LogMessage(LogLevel level, const std::string& message);

namespace internal {

/// Stream-style collector that emits on destruction.
class LogLine {
 public:
  explicit LogLine(LogLevel level) : level_(level) {}
  ~LogLine() { LogMessage(level_, stream_.str()); }
  template <typename T>
  LogLine& operator<<(const T& v) {
    stream_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

}  // namespace internal
}  // namespace comx

#define COMX_LOG(level) \
  ::comx::internal::LogLine(::comx::LogLevel::k##level)

#endif  // COMX_UTIL_LOGGING_H_
