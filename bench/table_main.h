// Shared main() body for the three Table V/VI/VII binaries: each reproduces
// one row-pair of Table III as a synthetic clone and prints the paper's
// effectiveness/efficiency columns, with the paper's own numbers echoed for
// comparison.

#ifndef COMX_BENCH_TABLE_MAIN_H_
#define COMX_BENCH_TABLE_MAIN_H_

#include <cstdio>

#include "common.h"
#include "datagen/real_like.h"

namespace comx {
namespace bench {

/// Paper-reported reference values for one table (target platform order:
/// platform 0 = DiDi-like, platform 1 = Yueche-like).
struct PaperReference {
  const char* rows;
};

inline int TableMain(int argc, char** argv, const RealDatasetSpec& spec,
                     const char* table_name, const char* paper_rows) {
  // Defaults keep the default `for b in build/bench/*` sweep fast; pass
  // --scale 1.0 for the full Table III sizes. --jobs N parallelizes the
  // (algo x seed) grid; results are bit-identical to --jobs 1 except the
  // wall-clock Resp(ms) column, which CPU contention inflates.
  const double scale = ArgDouble(argc, argv, "--scale", 0.05);
  const int seeds = static_cast<int>(ArgInt(argc, argv, "--seeds", 5));
  const int jobs = static_cast<int>(ArgInt(argc, argv, "--jobs", 1));

  auto instance = GenerateRealLike(spec, scale, /*seed=*/2016);
  if (!instance.ok()) {
    std::fprintf(stderr, "generate: %s\n",
                 instance.status().ToString().c_str());
    return 1;
  }
  std::printf("%s — synthetic clone of %s at scale %.3g\n", table_name,
              spec.name.c_str(), scale);
  std::printf("workload: %s\n", instance->Summary().c_str());

  TableRunConfig config;
  config.seeds = seeds;
  config.jobs = jobs;
  config.sim.workers_recycle = true;
  const std::vector<Row> rows = RunTable(*instance, config);
  PrintTable(table_name, rows, instance->PlatformCount());

  std::printf("\npaper reference (full scale, real data):\n%s\n", paper_rows);
  std::printf("expected shape: OFF > RamCOM > DemCOM > TOTA in revenue; "
              "RamCOM CoR/AcpRt far above DemCOM; payment rates ~0.6-0.8.\n");

  AppendCsv("bench_tables.csv", spec.name, rows);
  return 0;
}

}  // namespace bench
}  // namespace comx

#endif  // COMX_BENCH_TABLE_MAIN_H_
