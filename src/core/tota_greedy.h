// TOTA baseline: traditional online task assignment on a single platform
// (the greedy algorithm of Tong et al. ICDE'16 [9], the comparison point of
// the paper's Section V). Each incoming request is served by the nearest
// feasible inner worker, or rejected; outer workers are never used.

#ifndef COMX_CORE_TOTA_GREEDY_H_
#define COMX_CORE_TOTA_GREEDY_H_

#include "core/online_matcher.h"
#include "util/rng.h"

namespace comx {

/// Greedy single-platform online matcher (special case of COM with
/// W_out = empty).
class TotaGreedy : public OnlineMatcher {
 public:
  /// `random_choice` swaps the nearest-worker rule for a uniformly random
  /// feasible worker — the selection policy RamCOM uses for its inner
  /// assignments (Algorithm 3 line 7). Exposed for the design ablation
  /// isolating selection policy from cooperation.
  explicit TotaGreedy(bool random_choice = false)
      : random_choice_(random_choice) {}

  void Reset(const Instance& instance, PlatformId platform,
             uint64_t seed) override;
  Decision OnRequest(const Request& r, const PlatformView& view) override;
  std::string name() const override {
    return random_choice_ ? "TOTA-rand" : "TOTA";
  }
  Status SaveState(ByteWriter* out) const override;
  Status RestoreState(ByteReader* in) override;

 private:
  bool random_choice_;
  Rng rng_{0};
};

}  // namespace comx

#endif  // COMX_CORE_TOTA_GREEDY_H_
