file(REMOVE_RECURSE
  "CMakeFiles/comx_core.dir/cost_aware.cc.o"
  "CMakeFiles/comx_core.dir/cost_aware.cc.o.d"
  "CMakeFiles/comx_core.dir/dem_com.cc.o"
  "CMakeFiles/comx_core.dir/dem_com.cc.o.d"
  "CMakeFiles/comx_core.dir/greedy_rt.cc.o"
  "CMakeFiles/comx_core.dir/greedy_rt.cc.o.d"
  "CMakeFiles/comx_core.dir/offline_opt.cc.o"
  "CMakeFiles/comx_core.dir/offline_opt.cc.o.d"
  "CMakeFiles/comx_core.dir/online_matcher.cc.o"
  "CMakeFiles/comx_core.dir/online_matcher.cc.o.d"
  "CMakeFiles/comx_core.dir/ram_com.cc.o"
  "CMakeFiles/comx_core.dir/ram_com.cc.o.d"
  "CMakeFiles/comx_core.dir/ranking.cc.o"
  "CMakeFiles/comx_core.dir/ranking.cc.o.d"
  "CMakeFiles/comx_core.dir/tota_greedy.cc.o"
  "CMakeFiles/comx_core.dir/tota_greedy.cc.o.d"
  "libcomx_core.a"
  "libcomx_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/comx_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
