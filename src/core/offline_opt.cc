#include "core/offline_opt.h"

#include <algorithm>
#include <cmath>
#include <functional>
#include <unordered_map>

#include "geo/grid_index.h"
#include "matching/greedy_offline.h"
#include "matching/hungarian.h"
#include "matching/incremental_km.h"
#include "matching/min_cost_flow.h"
#include "model/constraints.h"
#include "pricing/acceptance_model.h"

namespace comx {

Result<BipartiteGraph> BuildOfflineGraph(const Instance& instance,
                                         PlatformId target,
                                         const OfflineConfig& config,
                                         std::vector<RequestId>* request_ids,
                                         std::vector<double>* edge_payments) {
  request_ids->clear();
  edge_payments->clear();
  for (const Request& r : instance.requests()) {
    if (r.platform == target) request_ids->push_back(r.id);
  }

  // Spatial index over worker locations; the query radius is the largest
  // service radius, individual workers re-checked against their own.
  double max_radius = 0.0;
  GridIndex index(/*cell_size_km=*/1.0);
  for (const Worker& w : instance.workers()) {
    max_radius = std::max(max_radius, w.radius);
    COMX_RETURN_IF_ERROR(index.Insert(w.id, w.location));
  }

  const std::vector<double> rho =
      DrawWorkerReservations(instance, config.seed);
  const DistanceMetric& metric =
      config.metric != nullptr ? *config.metric : DefaultMetric();

  BipartiteGraph graph(static_cast<int32_t>(request_ids->size()),
                       static_cast<int32_t>(instance.workers().size()));
  for (size_t li = 0; li < request_ids->size(); ++li) {
    const Request& r = instance.request((*request_ids)[li]);
    // Grid lookup is a sound Euclidean pre-filter for any metric.
    for (WorkerId wid : index.QueryRadius(r.location, max_radius)) {
      const Worker& w = instance.worker(wid);
      if (w.time > r.time) continue;  // time constraint
      if (!metric.WithinRange(w.location, r.location, w.radius)) continue;
      if (w.platform == target) {
        COMX_RETURN_IF_ERROR(graph.AddEdge(static_cast<int32_t>(li),
                                           static_cast<int32_t>(wid),
                                           r.value));
        edge_payments->push_back(0.0);
      } else if (config.allow_outer) {
        const double payment = rho[static_cast<size_t>(wid)];
        const double weight = r.value - payment;
        if (weight <= 0.0) continue;  // borrowing would lose money
        COMX_RETURN_IF_ERROR(graph.AddEdge(static_cast<int32_t>(li),
                                           static_cast<int32_t>(wid),
                                           weight));
        edge_payments->push_back(payment);
      }
    }
  }
  return graph;
}

namespace {

// Day-scale relaxed bound (see OfflineConfig::relax_range_when_recycling):
// range constraints dropped; inner service = unit slots released K-at-a-
// time by worker arrivals, chosen by the exact matroid greedy (requests by
// descending value, each taking the latest free slot released before its
// arrival — the classic deadline-scheduling union-find); leftover requests
// are paired with the cheapest outer reservations (time-unconstrained,
// which only raises the bound).
OfflineSolution SolveRelaxed(const Instance& instance, PlatformId target,
                             const OfflineConfig& config) {
  OfflineSolution solution;
  solution.solver = "relaxed";

  const std::vector<double> rho =
      DrawWorkerReservations(instance, config.seed);

  // Inner slots: (time, worker) sorted by time, K per worker.
  struct Slot {
    Timestamp time;
    WorkerId worker;
  };
  std::vector<Slot> slots;
  std::vector<std::pair<double, WorkerId>> outer_res;  // (rho, worker)
  for (const Worker& w : instance.workers()) {
    if (w.platform == target) {
      for (int32_t k = 0; k < config.worker_capacity; ++k) {
        slots.push_back(Slot{w.time, w.id});
      }
    } else if (config.allow_outer &&
               std::isfinite(rho[static_cast<size_t>(w.id)])) {
      for (int32_t k = 0; k < config.worker_capacity; ++k) {
        outer_res.emplace_back(rho[static_cast<size_t>(w.id)], w.id);
      }
    }
  }
  std::sort(slots.begin(), slots.end(),
            [](const Slot& a, const Slot& b) { return a.time < b.time; });
  std::sort(outer_res.begin(), outer_res.end());

  // Requests by descending value.
  std::vector<RequestId> by_value;
  for (const Request& r : instance.requests()) {
    if (r.platform == target) by_value.push_back(r.id);
  }
  std::sort(by_value.begin(), by_value.end(), [&](RequestId a, RequestId b) {
    return instance.request(a).value > instance.request(b).value;
  });

  // Union-find over slot indices: Find(i) = largest free slot index <= i.
  std::vector<int64_t> parent(slots.size() + 1);
  for (size_t i = 0; i < parent.size(); ++i) {
    parent[i] = static_cast<int64_t>(i);
  }
  std::function<int64_t(int64_t)> find = [&](int64_t x) {
    while (parent[static_cast<size_t>(x)] != x) {
      parent[static_cast<size_t>(x)] =
          parent[static_cast<size_t>(parent[static_cast<size_t>(x)])];
      x = parent[static_cast<size_t>(x)];
    }
    return x;
  };

  std::vector<RequestId> leftovers;
  for (RequestId rid : by_value) {
    const Request& r = instance.request(rid);
    // Largest slot index with slot.time <= r.time.
    const auto it = std::upper_bound(
        slots.begin(), slots.end(), r.time,
        [](Timestamp t, const Slot& s) { return t < s.time; });
    const int64_t bound = static_cast<int64_t>(it - slots.begin());
    const int64_t slot = find(bound) - 1;  // 1-based free pointer
    if (slot < 0) {
      leftovers.push_back(rid);
      continue;
    }
    parent[static_cast<size_t>(slot + 1)] = slot;  // consume
    Assignment a;
    a.request = rid;
    a.worker = slots[static_cast<size_t>(slot)].worker;
    a.is_outer = false;
    a.revenue = r.value;
    solution.matching.Add(a);
  }

  // Leftovers (already in descending value) against ascending reservations.
  std::sort(leftovers.begin(), leftovers.end(),
            [&](RequestId a, RequestId b) {
              return instance.request(a).value > instance.request(b).value;
            });
  size_t res_idx = 0;
  for (RequestId rid : leftovers) {
    if (res_idx >= outer_res.size()) break;
    const Request& r = instance.request(rid);
    const auto& [payment, worker] = outer_res[res_idx];
    if (r.value - payment <= 0.0) continue;  // later requests are cheaper
    ++res_idx;
    Assignment a;
    a.request = rid;
    a.worker = worker;
    a.is_outer = true;
    a.outer_payment = payment;
    a.revenue = r.value - payment;
    solution.matching.Add(a);
  }
  return solution;
}

}  // namespace

Result<OfflineSolution> SolveOffline(const Instance& instance,
                                     PlatformId target,
                                     const OfflineConfig& config) {
  if (config.worker_capacity > 1 && config.relax_range_when_recycling) {
    return SolveRelaxed(instance, target, config);
  }
  std::vector<RequestId> request_ids;
  std::vector<double> edge_payments;
  COMX_ASSIGN_OR_RETURN(
      BipartiteGraph graph,
      BuildOfflineGraph(instance, target, config, &request_ids,
                        &edge_payments));

  OfflineSolution solution;
  solution.edge_count = static_cast<int64_t>(graph.edges().size());

  BipartiteMatching matched;
  const int64_t cells = static_cast<int64_t>(graph.left_count()) *
                        static_cast<int64_t>(graph.right_count());
  if (config.worker_capacity == 1 && cells <= config.dense_cell_limit) {
    COMX_ASSIGN_OR_RETURN(matched, HungarianMaxWeight(graph));
    solution.solver = "hungarian";
  } else if (config.worker_capacity == 1) {
    // Exact at any scale: the incremental KM touches only the grid-pruned
    // candidate edges, so the 100k-request OFF rows (and hence the
    // empirical CR curves) no longer fall back to approximate solvers.
    COMX_ASSIGN_OR_RETURN(matched, IncrementalKmMaxWeight(graph));
    solution.solver = "incremental_km";
  } else if (static_cast<int64_t>(graph.edges().size()) <=
                 config.flow_edge_limit &&
             static_cast<int64_t>(graph.left_count()) <=
                 config.flow_left_limit) {
    std::vector<int32_t> capacity(
        static_cast<size_t>(graph.right_count()), config.worker_capacity);
    COMX_ASSIGN_OR_RETURN(matched, MinCostFlowMaxWeight(graph, capacity));
    solution.solver = "min_cost_flow";
  } else {
    std::vector<int32_t> capacity(
        static_cast<size_t>(graph.right_count()), config.worker_capacity);
    matched = GreedyMaxWeight(graph, capacity);
    solution.solver = "greedy";
  }

  // Recover per-pair payment/weight: keep the best-weight edge per pair,
  // matching what every solver credits.
  std::unordered_map<int64_t, std::pair<double, double>> best;  // w, payment
  best.reserve(graph.edges().size());
  for (size_t ei = 0; ei < graph.edges().size(); ++ei) {
    const BipartiteEdge& e = graph.edges()[ei];
    const int64_t key = (static_cast<int64_t>(e.left) << 32) | e.right;
    auto [it, inserted] =
        best.try_emplace(key, e.weight, edge_payments[ei]);
    if (!inserted && e.weight > it->second.first) {
      it->second = {e.weight, edge_payments[ei]};
    }
  }

  for (int32_t l = 0; l < graph.left_count(); ++l) {
    const int32_t w = matched.match_of_left[static_cast<size_t>(l)];
    if (w < 0) continue;
    const int64_t key = (static_cast<int64_t>(l) << 32) | w;
    const auto& [weight, payment] = best.at(key);
    Assignment a;
    a.request = request_ids[static_cast<size_t>(l)];
    a.worker = static_cast<WorkerId>(w);
    a.is_outer = instance.worker(a.worker).platform != target;
    a.outer_payment = payment;
    a.revenue = weight;
    solution.matching.Add(a);
  }
  return solution;
}

}  // namespace comx
