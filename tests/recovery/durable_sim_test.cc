// End-to-end durability: a durable run equals a plain run bit for bit, a
// run killed at an arbitrary WAL byte recovers to the same bits, corrupt
// checkpoints fall back to WAL-only replay, and a tampered-but-CRC-valid
// record is caught by replay verification (the recovery-bit-exact oracle).

#include "recovery/durable_sim.h"

#include <sys/stat.h>
#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "check/recovery_oracles.h"
#include "check/scenario_gen.h"
#include "gtest/gtest.h"
#include "recovery/checkpoint.h"
#include "recovery/crash_injector.h"
#include "recovery/wal.h"
#include "sim/sim_engine.h"
#include "util/binio.h"
#include "util/crc32c.h"

namespace comx {
namespace recovery {
namespace {

std::string MakeTempDir() {
  char tmpl[] = "/tmp/comx_durable_test.XXXXXX";
  const char* dir = ::mkdtemp(tmpl);
  EXPECT_NE(dir, nullptr);
  return dir == nullptr ? std::string("/tmp") : std::string(dir);
}

std::string MakeSubDir(const std::string& parent, const std::string& name) {
  const std::string dir = parent + "/" + name;
  EXPECT_EQ(::mkdir(dir.c_str(), 0755), 0) << dir;
  return dir;
}

struct ScenarioFixture {
  check::Scenario scenario;
  Instance instance;
};

// First scenario of the fixed stream matching the fault-plan requirement
// (fault plans exercise the two-phase reserve/confirm WAL records).
ScenarioFixture MakeScenario(bool want_fault_plan) {
  for (uint64_t i = 0;; ++i) {
    check::Scenario s = check::DrawScenario(0x5EED2020ull, i);
    if (s.with_fault_plan != want_fault_plan) continue;
    auto instance = check::BuildScenarioInstance(s);
    if (!instance.ok()) continue;
    return {std::move(s), std::move(instance).value()};
  }
}

std::vector<OnlineMatcher*> Matchers(
    check::MatcherKind kind, int32_t platforms,
    std::vector<std::unique_ptr<OnlineMatcher>>* owned) {
  owned->clear();
  std::vector<OnlineMatcher*> raw;
  for (int32_t p = 0; p < platforms; ++p) {
    owned->push_back(check::MakeMatcher(kind));
    raw.push_back(owned->back().get());
  }
  return raw;
}

void ExpectEquivalent(const SimResult& baseline, const SimResult& other) {
  for (const check::OracleViolation& v :
       check::CheckRecoveryEquivalence(baseline, other)) {
    ADD_FAILURE() << v.oracle << ": " << v.detail;
  }
}

Result<std::string> ReadFileBytes(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return Status::IoError("open " + path);
  std::string bytes;
  char chunk[4096];
  size_t n;
  while ((n = std::fread(chunk, 1, sizeof(chunk), f)) > 0) {
    bytes.append(chunk, n);
  }
  std::fclose(f);
  return bytes;
}

void WriteFileBytes(const std::string& path, const std::string& bytes) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  ASSERT_NE(f, nullptr);
  ASSERT_EQ(std::fwrite(bytes.data(), 1, bytes.size(), f), bytes.size());
  ASSERT_EQ(std::fclose(f), 0);
}

TEST(DurableSimTest, DurableRunMatchesPlainRunBitExactly) {
  const ScenarioFixture fx = MakeScenario(/*want_fault_plan=*/true);
  const SimConfig sim = fx.scenario.MakeSimConfig(nullptr);
  const int32_t platforms = fx.instance.PlatformCount();
  std::vector<std::unique_ptr<OnlineMatcher>> owned;

  auto plain = RunSimulation(
      fx.instance, Matchers(check::MatcherKind::kDemCom, platforms, &owned),
      sim, fx.scenario.sim_seed);
  ASSERT_TRUE(plain.ok()) << plain.status().ToString();

  DurableOptions opts;
  opts.dir = MakeTempDir();
  opts.checkpoint_every_steps = 16;
  auto durable = RunDurableSimulation(
      fx.instance, Matchers(check::MatcherKind::kDemCom, platforms, &owned),
      sim, fx.scenario.sim_seed, opts);
  ASSERT_TRUE(durable.ok()) << durable.status().ToString();
  ASSERT_FALSE(durable->crashed);
  ExpectEquivalent(*plain, durable->result);
  EXPECT_GT(durable->stats.wal_records, 0);
  EXPECT_GT(durable->stats.wal_bytes, kWalHeaderBytes);
  EXPECT_GT(durable->stats.checkpoints, 0);

  // The completed WAL witnesses a clean two-phase history.
  auto scan = ScanWal(WalPath(opts.dir));
  ASSERT_TRUE(scan.ok());
  EXPECT_FALSE(scan->torn_tail);
  for (const check::OracleViolation& v :
       check::CheckWalCommitProtocol(scan->records)) {
    ADD_FAILURE() << v.oracle << ": " << v.detail;
  }
}

TEST(DurableSimTest, CrashAtFixedWalOffsetsRecoversBitExactly) {
  const ScenarioFixture fx = MakeScenario(/*want_fault_plan=*/true);
  const SimConfig sim = fx.scenario.MakeSimConfig(nullptr);
  const int32_t platforms = fx.instance.PlatformCount();
  std::vector<std::unique_ptr<OnlineMatcher>> owned;
  const std::string root = MakeTempDir();

  DurableOptions opts;
  opts.dir = MakeSubDir(root, "baseline");
  opts.checkpoint_every_steps = 16;
  auto baseline = RunDurableSimulation(
      fx.instance, Matchers(check::MatcherKind::kRamCom, platforms, &owned),
      sim, fx.scenario.sim_seed, opts);
  ASSERT_TRUE(baseline.ok()) << baseline.status().ToString();
  const int64_t wal_bytes = baseline->stats.wal_bytes;
  ASSERT_GT(wal_bytes, kWalHeaderBytes + 4);

  // Kill inside the header, early, mid-run, and one byte short of done.
  const int64_t cuts[] = {kWalHeaderBytes - 3, kWalHeaderBytes + 5,
                          wal_bytes / 2, wal_bytes - 1};
  int case_index = 0;
  for (const int64_t cut : cuts) {
    const std::string dir =
        MakeSubDir(root, "crash_" + std::to_string(case_index++));
    CrashPoint point;
    point.kind = CrashPoint::Kind::kWalOffset;
    point.wal_offset = cut;
    CrashInjector injector(point);
    opts.dir = dir;
    opts.crash = &injector;
    auto crashed = RunDurableSimulation(
        fx.instance, Matchers(check::MatcherKind::kRamCom, platforms, &owned),
        sim, fx.scenario.sim_seed, opts);
    ASSERT_TRUE(crashed.ok()) << crashed.status().ToString();
    ASSERT_TRUE(crashed->crashed) << "cut=" << cut;

    opts.crash = nullptr;
    auto recovered = RecoverAndResume(
        fx.instance, Matchers(check::MatcherKind::kRamCom, platforms, &owned),
        sim, fx.scenario.sim_seed, opts);
    ASSERT_TRUE(recovered.ok())
        << "cut=" << cut << ": " << recovered.status().ToString();
    EXPECT_FALSE(recovered->crashed);
    ExpectEquivalent(baseline->result, recovered->result);
    EXPECT_EQ(recovered->stats.wal_bytes > 0, true);

    // After recovery the WAL reads back untorn and protocol-clean.
    auto scan = ScanWal(WalPath(dir));
    ASSERT_TRUE(scan.ok());
    EXPECT_FALSE(scan->torn_tail) << "cut=" << cut;
    for (const check::OracleViolation& v :
         check::CheckWalCommitProtocol(scan->records)) {
      ADD_FAILURE() << "cut=" << cut << " " << v.oracle << ": " << v.detail;
    }
  }
}

TEST(DurableSimTest, CorruptCheckpointsFallBackToWalOnlyReplay) {
  const ScenarioFixture fx = MakeScenario(/*want_fault_plan=*/false);
  const SimConfig sim = fx.scenario.MakeSimConfig(nullptr);
  const int32_t platforms = fx.instance.PlatformCount();
  std::vector<std::unique_ptr<OnlineMatcher>> owned;
  const std::string root = MakeTempDir();

  DurableOptions opts;
  opts.dir = MakeSubDir(root, "baseline");
  opts.checkpoint_every_steps = 8;
  opts.keep_checkpoints = 8;  // retain every generation for this test
  auto baseline = RunDurableSimulation(
      fx.instance, Matchers(check::MatcherKind::kTota, platforms, &owned),
      sim, fx.scenario.sim_seed, opts);
  ASSERT_TRUE(baseline.ok()) << baseline.status().ToString();

  // Crash late, so the crashed run has written checkpoints to corrupt.
  const std::string dir = MakeSubDir(root, "crashed");
  CrashPoint point;
  point.kind = CrashPoint::Kind::kWalOffset;
  point.wal_offset = baseline->stats.wal_bytes - 2;
  CrashInjector injector(point);
  opts.dir = dir;
  opts.crash = &injector;
  auto crashed = RunDurableSimulation(
      fx.instance, Matchers(check::MatcherKind::kTota, platforms, &owned),
      sim, fx.scenario.sim_seed, opts);
  ASSERT_TRUE(crashed.ok());
  ASSERT_TRUE(crashed->crashed);
  ASSERT_GT(crashed->stats.checkpoints, 0);

  // Flip a bit in every checkpoint generation the crashed run left.
  int corrupted = 0;
  for (;;) {
    auto pick = FindLatestValidCheckpoint(dir);
    ASSERT_TRUE(pick.ok());
    if (!pick->best.has_value()) break;
    const std::string path =
        CheckpointPath(dir, pick->best->meta.generation);
    auto bytes = ReadFileBytes(path);
    ASSERT_TRUE(bytes.ok());
    std::string mutated = *bytes;
    mutated[mutated.size() / 2] ^= 0x01;
    WriteFileBytes(path, mutated);
    ++corrupted;
  }
  ASSERT_GT(corrupted, 0);

  // Recovery must reject every generation, replay the whole WAL, and
  // still land on the baseline bits.
  opts.crash = nullptr;
  auto recovered = RecoverAndResume(
      fx.instance, Matchers(check::MatcherKind::kTota, platforms, &owned),
      sim, fx.scenario.sim_seed, opts);
  ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();
  EXPECT_EQ(recovered->stats.recovered_generation, -1);
  EXPECT_EQ(recovered->stats.checkpoint_fallbacks, corrupted);
  ExpectEquivalent(baseline->result, recovered->result);
}

TEST(DurableSimTest, TamperedRecordWithValidCrcIsCaughtByReplay) {
  const ScenarioFixture fx = MakeScenario(/*want_fault_plan=*/false);
  const SimConfig sim = fx.scenario.MakeSimConfig(nullptr);
  const int32_t platforms = fx.instance.PlatformCount();
  std::vector<std::unique_ptr<OnlineMatcher>> owned;

  DurableOptions opts;
  opts.dir = MakeTempDir();
  opts.checkpoint_every_steps = 0;  // WAL-only: every record is replayed
  auto baseline = RunDurableSimulation(
      fx.instance, Matchers(check::MatcherKind::kTota, platforms, &owned),
      sim, fx.scenario.sim_seed, opts);
  ASSERT_TRUE(baseline.ok());

  // Walk the frames and tamper the LAST byte of the first kDecision
  // payload (past the lsn field, so the for_compare encoding sees it),
  // then re-seal the frame with a freshly computed masked CRC. The scan
  // cannot notice; only replay verification can.
  const std::string wal = WalPath(opts.dir);
  auto bytes = ReadFileBytes(wal);
  ASSERT_TRUE(bytes.ok());
  std::string mutated = *bytes;
  size_t at = static_cast<size_t>(kWalHeaderBytes);
  bool tampered = false;
  while (at + static_cast<size_t>(kWalFrameOverhead) <= mutated.size()) {
    uint32_t len = 0;
    std::memcpy(&len, mutated.data() + at, sizeof(len));
    const size_t payload_at = at + static_cast<size_t>(kWalFrameOverhead);
    ASSERT_LE(payload_at + len, mutated.size());
    if (static_cast<uint8_t>(mutated[payload_at]) ==
        static_cast<uint8_t>(WalRecordType::kDecision)) {
      mutated[payload_at + len - 1] ^= 0x01;
      const uint32_t crc =
          Crc32cMask(Crc32c(mutated.data() + payload_at, len));
      std::memcpy(mutated.data() + at + sizeof(len), &crc, sizeof(crc));
      tampered = true;
      break;
    }
    at = payload_at + len;
  }
  ASSERT_TRUE(tampered) << "no kDecision record found to tamper";
  WriteFileBytes(wal, mutated);

  // The scan itself accepts the forged frame...
  auto scan = ScanWal(wal);
  ASSERT_TRUE(scan.ok());
  EXPECT_FALSE(scan->torn_tail);

  // ...but recovery's byte-for-byte replay verification refuses it.
  auto recovered = RecoverAndResume(
      fx.instance, Matchers(check::MatcherKind::kTota, platforms, &owned),
      sim, fx.scenario.sim_seed, opts);
  ASSERT_FALSE(recovered.ok());
  EXPECT_EQ(recovered.status().code(), StatusCode::kDataLoss)
      << recovered.status().ToString();
}

TEST(DurableSimTest, CrashRecoveryCheckPassesAcrossSeedsAndKinds) {
  const ScenarioFixture fx = MakeScenario(/*want_fault_plan=*/true);
  const std::string root = MakeTempDir();
  for (uint64_t j = 0; j < 4; ++j) {
    const check::MatcherKind kind = check::kAllMatcherKinds[j % 3];
    auto outcome = check::RunCrashRecoveryCheck(
        kind, fx.scenario, fx.instance, root + "/p" + std::to_string(j),
        /*crash_seed=*/0x9E3779B9ull + j, /*checkpoint_every_steps=*/16);
    ASSERT_TRUE(outcome.ok()) << outcome.status().ToString();
    for (const check::OracleViolation& v : outcome->violations) {
      ADD_FAILURE() << "seed " << j << " " << v.oracle << ": " << v.detail
                    << " at " << outcome->point.ToString();
    }
  }
}

TEST(SimEngineStateTest, SaveRestoreMidRunContinuesBitExactly) {
  const ScenarioFixture fx = MakeScenario(/*want_fault_plan=*/true);
  const SimConfig sim = fx.scenario.MakeSimConfig(nullptr);
  const int32_t platforms = fx.instance.PlatformCount();
  std::vector<std::unique_ptr<OnlineMatcher>> owned_a;
  std::vector<std::unique_ptr<OnlineMatcher>> owned_b;

  // One throwaway run to learn the step count, so the snapshot lands
  // mid-run whatever size the drawn scenario is.
  int64_t total_steps = 0;
  {
    std::vector<std::unique_ptr<OnlineMatcher>> owned;
    SimEngine probe;
    ASSERT_TRUE(probe
                    .Init(fx.instance,
                          Matchers(check::MatcherKind::kDemCom, platforms,
                                   &owned),
                          sim, fx.scenario.sim_seed)
                    .ok());
    while (!probe.Done()) {
      ASSERT_TRUE(probe.Step(nullptr).ok());
      ++total_steps;
    }
    probe.Finish();
  }
  ASSERT_GT(total_steps, 2) << "fixture too small to snapshot mid-run";
  const int64_t snapshot_step = total_steps / 2;

  // Engine A: run halfway, snapshot, then run to completion.
  SimEngine a;
  ASSERT_TRUE(a.Init(fx.instance,
                     Matchers(check::MatcherKind::kDemCom, platforms,
                              &owned_a),
                     sim, fx.scenario.sim_seed)
                  .ok());
  int64_t steps = 0;
  std::string snapshot;
  uint64_t digest_at_snapshot = 0;
  while (!a.Done()) {
    if (steps == snapshot_step) {
      ByteWriter w;
      ASSERT_TRUE(a.SaveState(&w).ok());
      snapshot = w.Take();
      digest_at_snapshot = a.StateDigest();
    }
    ASSERT_TRUE(a.Step(nullptr).ok());
    ++steps;
  }
  const SimResult result_a = a.Finish();

  // Engine B: identical Init, restore the snapshot, finish the run.
  SimEngine b;
  ASSERT_TRUE(b.Init(fx.instance,
                     Matchers(check::MatcherKind::kDemCom, platforms,
                              &owned_b),
                     sim, fx.scenario.sim_seed)
                  .ok());
  ByteReader r(snapshot);
  ASSERT_TRUE(b.RestoreState(&r).ok());
  EXPECT_EQ(b.step_index(), snapshot_step);
  EXPECT_EQ(b.StateDigest(), digest_at_snapshot);
  while (!b.Done()) ASSERT_TRUE(b.Step(nullptr).ok());
  const SimResult result_b = b.Finish();

  ExpectEquivalent(result_a, result_b);
}

}  // namespace
}  // namespace recovery
}  // namespace comx
