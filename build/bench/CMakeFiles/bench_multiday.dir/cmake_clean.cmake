file(REMOVE_RECURSE
  "CMakeFiles/bench_multiday.dir/bench_multiday.cc.o"
  "CMakeFiles/bench_multiday.dir/bench_multiday.cc.o.d"
  "bench_multiday"
  "bench_multiday.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_multiday.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
