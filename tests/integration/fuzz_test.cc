// Randomized-configuration fuzzing: draw workload configs, algorithms, and
// simulation modes at random (deterministically seeded) and assert the
// whole-system invariants on every combination. Complements the curated
// InvariantSweep with breadth.

#include <memory>

#include <gtest/gtest.h>

#include "core/cost_aware.h"
#include "core/dem_com.h"
#include "core/greedy_rt.h"
#include "core/ram_com.h"
#include "core/ranking.h"
#include "core/tota_greedy.h"
#include "datagen/synthetic.h"
#include "sim/batch_simulator.h"
#include "sim/simulator.h"
#include "util/rng.h"

namespace comx {
namespace {

std::unique_ptr<OnlineMatcher> RandomMatcher(Rng* rng) {
  switch (rng->UniformInt(0, 5)) {
    case 0:
      return std::make_unique<TotaGreedy>(rng->Bernoulli(0.5));
    case 1:
      return std::make_unique<Ranking>();
    case 2:
      return std::make_unique<GreedyRt>();
    case 3:
      return std::make_unique<DemCom>();
    case 4:
      return std::make_unique<CostAwareDemCom>();
    default:
      return std::make_unique<RamCom>();
  }
}

SyntheticConfig RandomConfig(Rng* rng) {
  SyntheticConfig config;
  config.platforms = static_cast<int32_t>(rng->UniformInt(1, 4));
  config.requests_per_platform = {rng->UniformInt(0, 150)};
  config.workers_per_platform = {rng->UniformInt(0, 60)};
  config.radius_km = rng->Uniform(0.3, 3.0);
  config.imbalance = rng->Uniform(0.0, 1.0);
  config.min_history = static_cast<int32_t>(rng->UniformInt(1, 5));
  config.max_history =
      config.min_history + static_cast<int32_t>(rng->UniformInt(0, 20));
  config.value.distribution = rng->Bernoulli(0.5)
                                  ? ValueDistribution::kRealLike
                                  : ValueDistribution::kNormal;
  config.seed = rng->NextUint64();
  return config;
}

SimConfig RandomSimConfig(Rng* rng) {
  SimConfig sim;
  sim.workers_recycle = rng->Bernoulli(0.5);
  sim.measure_response_time = rng->Bernoulli(0.3);
  sim.acceptance_mode = rng->Bernoulli(0.3) ? AcceptanceMode::kReservation
                                            : AcceptanceMode::kBernoulli;
  sim.reservation_seed = rng->NextUint64();
  sim.speed_kmh = rng->Uniform(10.0, 60.0);
  sim.base_service_seconds = rng->Uniform(0.0, 900.0);
  sim.service_seconds_per_value = rng->Uniform(0.0, 120.0);
  return sim;
}

class FuzzTest : public testing::TestWithParam<int> {};

TEST_P(FuzzTest, RandomConfigsKeepAllInvariants) {
  Rng rng(static_cast<uint64_t>(GetParam()) * 2654435761u + 17);
  for (int round = 0; round < 6; ++round) {
    const SyntheticConfig config = RandomConfig(&rng);
    auto instance = GenerateSynthetic(config);
    ASSERT_TRUE(instance.ok()) << instance.status();
    ASSERT_TRUE(instance->Validate().ok());

    const SimConfig sim = RandomSimConfig(&rng);
    std::vector<std::unique_ptr<OnlineMatcher>> owned;
    std::vector<OnlineMatcher*> matchers;
    for (int32_t p = 0; p < config.platforms; ++p) {
      owned.push_back(RandomMatcher(&rng));
      matchers.push_back(owned.back().get());
    }
    auto result = RunSimulation(*instance, matchers, sim, rng.NextUint64());
    ASSERT_TRUE(result.ok()) << result.status();
    ASSERT_TRUE(AuditSimResult(*instance, sim, *result).ok())
        << "round " << round;

    const PlatformMetrics agg = result->metrics.Aggregate();
    EXPECT_EQ(agg.completed + agg.rejected,
              static_cast<int64_t>(instance->requests().size()));
    EXPECT_EQ(agg.completed, agg.completed_inner + agg.completed_outer);
    EXPECT_LE(agg.completed_outer, agg.outer_offers);
    EXPECT_GE(agg.revenue, 0.0);
    EXPECT_GE(agg.total_pickup_km, 0.0);
    // Pickups are bounded by the configured radius per completion.
    EXPECT_LE(agg.total_pickup_km,
              static_cast<double>(agg.completed) * config.radius_km + 1e-6);
    EXPECT_EQ(result->matching.assignments.size(),
              static_cast<size_t>(agg.completed));

    // Every other round also pushes the workload through the batch runner
    // with a random window, checking the same identities.
    if (round % 2 == 0) {
      BatchConfig batch;
      batch.window_seconds = rng.Uniform(5.0, 900.0);
      batch.max_wait_windows = static_cast<int32_t>(rng.UniformInt(1, 6));
      batch.sim = sim;
      auto batched = RunBatchSimulation(*instance, batch, rng.NextUint64());
      ASSERT_TRUE(batched.ok()) << batched.status();
      const PlatformMetrics bagg = batched->metrics.Aggregate();
      EXPECT_EQ(bagg.completed + bagg.rejected,
                static_cast<int64_t>(instance->requests().size()));
      EXPECT_EQ(bagg.completed, bagg.completed_inner + bagg.completed_outer);
      EXPECT_GE(bagg.revenue, 0.0);
      EXPECT_EQ(batched->matching.assignments.size(),
                static_cast<size_t>(bagg.completed));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Rounds, FuzzTest, testing::Range(0, 10));

}  // namespace
}  // namespace comx
