// Per-platform effectiveness and efficiency metrics — exactly the columns of
// the paper's Tables V-VII and the series of Fig. 5.

#ifndef COMX_SIM_METRICS_H_
#define COMX_SIM_METRICS_H_

#include <cstdint>
#include <string>
#include <vector>

#include "obs/latency_histogram.h"
#include "util/stats.h"

namespace comx {

/// Everything the evaluation section reports for one platform.
struct PlatformMetrics {
  /// Total revenue Rev (Equation 1).
  double revenue = 0.0;
  /// |CpR|: completed requests (inner + cooperative).
  int64_t completed = 0;
  /// Completed by own (inner) workers.
  int64_t completed_inner = 0;
  /// |CoR| contribution: completed by borrowed (outer) workers.
  int64_t completed_outer = 0;
  /// Requests rejected.
  int64_t rejected = 0;
  /// Requests offered to outer workers at some payment (accepted or not);
  /// the denominator of |AcpRt|.
  int64_t outer_offers = 0;
  /// Sum of v'_r over completed cooperative requests.
  double outer_payment_sum = 0.0;
  /// Sum of v'_r / v_r over completed cooperative requests; the numerator
  /// of the paper's mean outer-payment-rate column.
  double payment_rate_sum = 0.0;
  /// Total pickup travel of the serving workers in km (the travel the
  /// paper's future-work extension minimizes; see core/cost_aware.h).
  double total_pickup_km = 0.0;
  /// Per-request matcher latency in microseconds.
  RunningStats response_time_us;

  /// |AcpRt| = completed_outer / outer_offers (0 when never offered).
  double AcceptanceRatio() const;

  /// Mean v'_r / v_r over completed cooperative requests (0 when none).
  double MeanPaymentRate() const;

  /// Mean matcher latency in milliseconds (the paper's "Response Time").
  double MeanResponseTimeMs() const;

  /// Revenue net of pickup travel at `cost_per_km` (extension metric).
  double NetRevenue(double cost_per_km) const {
    return revenue - cost_per_km * total_pickup_km;
  }

  /// Merges another metrics block (for aggregating platforms).
  void Merge(const PlatformMetrics& other);

  /// One-line summary for logs.
  std::string ToString() const;

  /// JSON object with every raw field plus the derived ratios. Doubles are
  /// serialized with round-trip precision (util/json.h).
  std::string ToJson() const;
};

/// Whole-run result: per-platform metrics plus global resource usage.
struct SimMetrics {
  std::vector<PlatformMetrics> per_platform;
  /// Logical bytes of live state (instance + pool), deterministic.
  int64_t logical_bytes = 0;
  /// Process RSS sampled at the end of the run (platform-dependent).
  int64_t rss_bytes = 0;
  /// Wall-clock seconds of the whole simulation.
  double wall_seconds = 0.0;
  /// Decision-latency histogram of the run (one observation per matcher
  /// decision, log-linear nanosecond buckets). Empty unless
  /// SimConfig::measure_response_time was set — determinism suites leave
  /// it off. Mergeable across seeds/jobs via LatencySnapshot::Merge.
  obs::LatencySnapshot decision_latency;

  /// Sum of revenues over all platforms.
  double TotalRevenue() const;
  /// Sum of |CoR| over all platforms.
  int64_t TotalCooperative() const;
  /// Aggregate of every per-platform block.
  PlatformMetrics Aggregate() const;

  /// Whole-run JSON: {"platforms": [...], "total_revenue": ..., ...}.
  std::string ToJson() const;
};

}  // namespace comx

#endif  // COMX_SIM_METRICS_H_
