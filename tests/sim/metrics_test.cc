#include "sim/metrics.h"

#include <gtest/gtest.h>

#include "util/json.h"

namespace comx {
namespace {

TEST(PlatformMetricsTest, AcceptanceRatio) {
  PlatformMetrics m;
  EXPECT_EQ(m.AcceptanceRatio(), 0.0);
  m.outer_offers = 10;
  m.completed_outer = 3;
  EXPECT_DOUBLE_EQ(m.AcceptanceRatio(), 0.3);
}

TEST(PlatformMetricsTest, MeanPaymentRate) {
  PlatformMetrics m;
  EXPECT_EQ(m.MeanPaymentRate(), 0.0);
  m.completed_outer = 4;
  m.payment_rate_sum = 2.8;
  EXPECT_DOUBLE_EQ(m.MeanPaymentRate(), 0.7);
}

TEST(PlatformMetricsTest, MeanResponseTimeMs) {
  PlatformMetrics m;
  m.response_time_us.Add(1000.0);
  m.response_time_us.Add(3000.0);
  EXPECT_DOUBLE_EQ(m.MeanResponseTimeMs(), 2.0);
}

TEST(PlatformMetricsTest, MergeAddsEverything) {
  PlatformMetrics a, b;
  a.revenue = 10;
  a.completed = 2;
  a.completed_inner = 1;
  a.completed_outer = 1;
  a.rejected = 1;
  a.outer_offers = 3;
  a.payment_rate_sum = 0.7;
  b.revenue = 5;
  b.completed = 1;
  b.completed_inner = 1;
  b.rejected = 2;
  b.outer_offers = 1;
  a.Merge(b);
  EXPECT_DOUBLE_EQ(a.revenue, 15.0);
  EXPECT_EQ(a.completed, 3);
  EXPECT_EQ(a.completed_inner, 2);
  EXPECT_EQ(a.completed_outer, 1);
  EXPECT_EQ(a.rejected, 3);
  EXPECT_EQ(a.outer_offers, 4);
}

TEST(PlatformMetricsTest, ToStringHasKeyFields) {
  PlatformMetrics m;
  m.revenue = 12.5;
  const std::string s = m.ToString();
  EXPECT_NE(s.find("rev=12.50"), std::string::npos);
  EXPECT_NE(s.find("acpRt"), std::string::npos);
}

TEST(SimMetricsTest, TotalsAcrossPlatforms) {
  SimMetrics sm;
  sm.per_platform.resize(2);
  sm.per_platform[0].revenue = 7.0;
  sm.per_platform[0].completed_outer = 2;
  sm.per_platform[1].revenue = 3.0;
  sm.per_platform[1].completed_outer = 1;
  EXPECT_DOUBLE_EQ(sm.TotalRevenue(), 10.0);
  EXPECT_EQ(sm.TotalCooperative(), 3);
  const PlatformMetrics agg = sm.Aggregate();
  EXPECT_DOUBLE_EQ(agg.revenue, 10.0);
  EXPECT_EQ(agg.completed_outer, 3);
}

TEST(SimMetricsTest, EmptyTotals) {
  SimMetrics sm;
  EXPECT_EQ(sm.TotalRevenue(), 0.0);
  EXPECT_EQ(sm.TotalCooperative(), 0);
}

TEST(PlatformMetricsTest, ToJsonIsFlatAndRoundTrips) {
  PlatformMetrics m;
  m.revenue = 123.456;
  m.completed = 10;
  m.completed_inner = 6;
  m.completed_outer = 4;
  m.rejected = 3;
  m.outer_offers = 8;
  m.outer_payment_sum = 20.5;
  m.payment_rate_sum = 2.4;
  m.total_pickup_km = 31.25;
  m.response_time_us.Add(1000.0);
  // Platform blocks are flat scalar objects, so the strict flat parser can
  // read them back — the same guarantee the trace lines rely on.
  auto parsed = ParseJsonFlatObject(m.ToJson());
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ((*parsed)["revenue"].number_value, 123.456);
  EXPECT_EQ((*parsed)["completed"].number_value, 10.0);
  EXPECT_EQ((*parsed)["completed_outer"].number_value, 4.0);
  EXPECT_EQ((*parsed)["acceptance_ratio"].number_value, 0.5);
  EXPECT_EQ((*parsed)["mean_payment_rate"].number_value, 0.6);
  EXPECT_EQ((*parsed)["mean_response_time_ms"].number_value, 1.0);
  EXPECT_EQ((*parsed)["response_time_samples"].number_value, 1.0);
}

TEST(SimMetricsTest, ToJsonEmbedsEveryPlatform) {
  SimMetrics sm;
  sm.per_platform.resize(2);
  sm.per_platform[0].revenue = 7.0;
  sm.per_platform[1].revenue = 3.5;
  sm.logical_bytes = 4096;
  sm.wall_seconds = 0.25;
  const std::string json = sm.ToJson();
  EXPECT_NE(json.find("\"platforms\":["), std::string::npos);
  EXPECT_NE(json.find("\"revenue\":7"), std::string::npos);
  EXPECT_NE(json.find("\"revenue\":3.5"), std::string::npos);
  EXPECT_NE(json.find("\"total_revenue\":10.5"), std::string::npos);
  EXPECT_NE(json.find("\"logical_bytes\":4096"), std::string::npos);
  EXPECT_NE(json.find("\"wall_seconds\":0.25"), std::string::npos);
}

}  // namespace
}  // namespace comx
