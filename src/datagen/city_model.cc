#include "datagen/city_model.h"

#include <algorithm>
#include <cassert>

namespace comx {

CityModel::CityModel(Params params) : params_(std::move(params)) {}

Point CityModel::SamplePoint(const std::vector<double>& hotspot_weights,
                             Rng* rng) const {
  const double e = params_.extent_km;
  const bool background =
      params_.hotspots.empty() || rng->Bernoulli(params_.background_weight);
  if (background) {
    return Point(rng->Uniform(-e, e), rng->Uniform(-e, e));
  }
  // Pick a hotspot by weight (uniform when no weights given).
  size_t idx = 0;
  if (hotspot_weights.empty()) {
    idx = rng->PickIndex(params_.hotspots.size());
  } else {
    assert(hotspot_weights.size() == params_.hotspots.size());
    double total = 0.0;
    for (double w : hotspot_weights) total += w;
    double x = rng->Uniform(0.0, total);
    for (size_t i = 0; i < hotspot_weights.size(); ++i) {
      x -= hotspot_weights[i];
      if (x <= 0.0) {
        idx = i;
        break;
      }
      idx = i;  // fall back to the last one on numeric edge
    }
  }
  const Hotspot& h = params_.hotspots[idx];
  const double x = std::clamp(rng->Normal(h.center.x, h.sigma), -e, e);
  const double y = std::clamp(rng->Normal(h.center.y, h.sigma), -e, e);
  return Point(x, y);
}

double CityModel::SampleTime(Rng* rng) const {
  if (rng->Bernoulli(params_.peak_weight)) {
    const double peak = rng->Bernoulli(0.5) ? params_.morning_peak
                                            : params_.evening_peak;
    const double t = rng->Normal(peak, params_.peak_sigma);
    return std::clamp(t, 0.0, params_.horizon_seconds - 1.0);
  }
  return rng->Uniform(0.0, params_.horizon_seconds);
}

CityModel::Params CityModel::ChengduLike() {
  Params p;
  p.extent_km = 15.0;
  p.hotspots = {
      {Point(0.0, 0.0), 2.5},    // downtown core
      {Point(7.0, 4.0), 2.0},    // business district
      {Point(-6.0, 6.0), 2.0},   // university area
      {Point(-4.0, -8.0), 2.5},  // residential south
  };
  return p;
}

CityModel::Params CityModel::XianLike() {
  Params p;
  p.extent_km = 12.0;
  p.hotspots = {
      {Point(0.0, 0.0), 1.8},   // walled city core
      {Point(6.0, -3.0), 1.6},  // hi-tech zone
      {Point(-5.0, 5.0), 2.0},  // north suburbs
  };
  p.background_weight = 0.10;
  return p;
}

BBox CityModel::Bounds() const {
  const double e = params_.extent_km;
  return BBox(Point(-e, -e), Point(e, e));
}

}  // namespace comx
