#include "util/reservoir.h"

#include <gtest/gtest.h>

namespace comx {
namespace {

TEST(ReservoirTest, ExactWhileUnderCapacity) {
  ReservoirSampler r(100);
  for (int i = 1; i <= 9; ++i) r.Add(i);
  EXPECT_EQ(r.count(), 9);
  EXPECT_EQ(r.samples().size(), 9u);
  EXPECT_DOUBLE_EQ(r.Quantile(0.5), 5.0);
  EXPECT_DOUBLE_EQ(r.Quantile(0.0), 1.0);
  EXPECT_DOUBLE_EQ(r.Quantile(1.0), 9.0);
}

TEST(ReservoirTest, EmptyQuantileIsZero) {
  ReservoirSampler r(10);
  EXPECT_EQ(r.Quantile(0.5), 0.0);
}

TEST(ReservoirTest, CapacityBoundsMemory) {
  ReservoirSampler r(50);
  for (int i = 0; i < 10'000; ++i) r.Add(i);
  EXPECT_EQ(r.count(), 10'000);
  EXPECT_EQ(r.samples().size(), 50u);
}

TEST(ReservoirTest, SampleIsApproximatelyUniform) {
  // Stream 0..9999; the reservoir's mean should approximate the stream's.
  ReservoirSampler r(512, 7);
  for (int i = 0; i < 10'000; ++i) r.Add(i);
  double sum = 0.0;
  for (double x : r.samples()) sum += x;
  EXPECT_NEAR(sum / 512.0, 4999.5, 400.0);
  // Median estimate within 10%.
  EXPECT_NEAR(r.Quantile(0.5), 5000.0, 500.0);
}

TEST(ReservoirTest, QuantileEstimatesTail) {
  ReservoirSampler r(2048, 11);
  for (int i = 0; i < 100'000; ++i) r.Add(i % 1000);  // uniform 0..999
  EXPECT_NEAR(r.Quantile(0.95), 950.0, 30.0);
  EXPECT_NEAR(r.Quantile(0.99), 990.0, 15.0);
}

TEST(ReservoirTest, ResetClears) {
  ReservoirSampler r(10);
  r.Add(5);
  r.Reset();
  EXPECT_EQ(r.count(), 0);
  EXPECT_TRUE(r.samples().empty());
}

TEST(ReservoirTest, DeterministicGivenSeed) {
  ReservoirSampler a(32, 3), b(32, 3);
  for (int i = 0; i < 5000; ++i) {
    a.Add(i);
    b.Add(i);
  }
  EXPECT_EQ(a.samples(), b.samples());
}

}  // namespace
}  // namespace comx
