
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/model/arrival_stream.cc" "src/model/CMakeFiles/comx_model.dir/arrival_stream.cc.o" "gcc" "src/model/CMakeFiles/comx_model.dir/arrival_stream.cc.o.d"
  "/root/repo/src/model/constraints.cc" "src/model/CMakeFiles/comx_model.dir/constraints.cc.o" "gcc" "src/model/CMakeFiles/comx_model.dir/constraints.cc.o.d"
  "/root/repo/src/model/event.cc" "src/model/CMakeFiles/comx_model.dir/event.cc.o" "gcc" "src/model/CMakeFiles/comx_model.dir/event.cc.o.d"
  "/root/repo/src/model/instance.cc" "src/model/CMakeFiles/comx_model.dir/instance.cc.o" "gcc" "src/model/CMakeFiles/comx_model.dir/instance.cc.o.d"
  "/root/repo/src/model/request.cc" "src/model/CMakeFiles/comx_model.dir/request.cc.o" "gcc" "src/model/CMakeFiles/comx_model.dir/request.cc.o.d"
  "/root/repo/src/model/worker.cc" "src/model/CMakeFiles/comx_model.dir/worker.cc.o" "gcc" "src/model/CMakeFiles/comx_model.dir/worker.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/comx_util.dir/DependInfo.cmake"
  "/root/repo/build/src/geo/CMakeFiles/comx_geo.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
