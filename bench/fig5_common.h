// Shared sweep driver for the Fig. 5 panels: each binary sweeps one factor
// of Table IV (|R|, |W|, or rad) and prints the four panel series (total
// revenue, average response time, memory, acceptance ratio) for TOTA,
// DemCOM and RamCOM.

#ifndef COMX_BENCH_FIG5_COMMON_H_
#define COMX_BENCH_FIG5_COMMON_H_

#include <cstdio>
#include <string>
#include <vector>

#include "common.h"
#include "datagen/synthetic.h"
#include "util/thread_pool.h"

namespace comx {
namespace bench {

/// One sweep point: totals across both platforms, as in Table IV.
struct SweepPoint {
  std::string label;
  int64_t total_requests = 2500;
  int64_t total_workers = 500;
  double radius_km = 1.0;
};

/// Sweeps the given points. `jobs` > 1 runs each point's (algo x seed)
/// grid on one shared pool (constructed once, reused across points);
/// everything except the wall-clock ms columns is bit-identical to
/// jobs == 1.
inline void RunSweep(const char* figure, const char* factor,
                     const std::vector<SweepPoint>& points, int seeds,
                     const std::string& csv_path, int jobs = 1) {
  ThreadPool shared_pool(jobs > 1 ? static_cast<size_t>(jobs) : 1);
  std::printf("%s — sweep over %s (Table IV defaults elsewhere: |R|=2500, "
              "|W|=500, rad=1, 2 platforms)\n",
              figure, factor);
  std::printf("%-10s %-9s | %12s %12s %12s | %9s %9s %9s | %8s %8s %8s | "
              "%7s %7s\n",
              factor, "", "rev(TOTA)", "rev(Dem)", "rev(Ram)", "ms(TOTA)",
              "ms(Dem)", "ms(Ram)", "MB(TOTA)", "MB(Dem)", "MB(Ram)",
              "acp(Dem)", "acp(Ram)");
  for (const SweepPoint& point : points) {
    SyntheticConfig config;
    config.requests_per_platform = {point.total_requests / 2};
    config.workers_per_platform = {point.total_workers / 2};
    config.radius_km = point.radius_km;
    config.seed = 2020;
    auto instance = GenerateSynthetic(config);
    if (!instance.ok()) {
      std::fprintf(stderr, "generate: %s\n",
                   instance.status().ToString().c_str());
      std::exit(1);
    }
    TableRunConfig run;
    run.seeds = seeds;
    if (jobs > 1) run.pool = &shared_pool;
    run.sim.workers_recycle = true;
    run.algos = {Algo::kTota, Algo::kDemCom, Algo::kRamCom};
    const std::vector<Row> rows = RunTable(*instance, run);
    const Row& tota = rows[0];
    const Row& dem = rows[1];
    const Row& ram = rows[2];
    auto total = [](const Row& r) {
      double sum = 0.0;
      for (double x : r.revenue) sum += x;
      return sum;
    };
    std::printf("%-10s %-9s | %12.1f %12.1f %12.1f | %9.4f %9.4f %9.4f | "
                "%8.2f %8.2f %8.2f | %7.3f %7.3f\n",
                point.label.c_str(), "", total(tota), total(dem), total(ram),
                tota.response_ms, dem.response_ms, ram.response_ms,
                tota.memory_mb, dem.memory_mb, ram.memory_mb, dem.acceptance,
                ram.acceptance);
    AppendCsv(csv_path, point.label, rows);
  }
}

}  // namespace bench
}  // namespace comx

#endif  // COMX_BENCH_FIG5_COMMON_H_
