#include "check/recovery_oracles.h"

#include <sys/stat.h>

#include <bit>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <functional>
#include <map>
#include <memory>
#include <utility>

#include "util/string_util.h"

namespace comx {
namespace check {
namespace {

/// Bitwise double equality — the recovery contract is exact replay, so
/// even a ULP of drift (or a -0.0 vs +0.0 flip) is a violation.
bool BitEq(double a, double b) {
  return std::bit_cast<uint64_t>(a) == std::bit_cast<uint64_t>(b);
}

Status EnsureDir(const std::string& path) {
  if (::mkdir(path.c_str(), 0755) != 0 && errno != EEXIST) {
    return Status::IoError(StrFormat("cannot create %s: %s", path.c_str(),
                                     std::strerror(errno)));
  }
  return Status::OK();
}

Result<std::string> ReadWholeFile(const std::string& path) {
  FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    return Status::IoError(StrFormat("cannot read %s: %s", path.c_str(),
                                     std::strerror(errno)));
  }
  std::string bytes;
  char chunk[1 << 16];
  size_t n;
  while ((n = std::fread(chunk, 1, sizeof(chunk), f)) > 0) {
    bytes.append(chunk, n);
  }
  const bool bad = std::ferror(f) != 0;
  std::fclose(f);
  if (bad) return Status::IoError("read failed: " + path);
  return bytes;
}

std::vector<OnlineMatcher*> BuildMatchers(
    MatcherKind kind, int32_t platforms,
    std::vector<std::unique_ptr<OnlineMatcher>>* owned) {
  owned->clear();
  std::vector<OnlineMatcher*> raw;
  for (int32_t p = 0; p < platforms; ++p) {
    owned->push_back(MakeMatcher(kind));
    raw.push_back(owned->back().get());
  }
  return raw;
}

}  // namespace

std::vector<OracleViolation> CheckWalCommitProtocol(
    const std::vector<recovery::WalRecord>& records) {
  using recovery::WalRecordType;
  std::vector<OracleViolation> out;
  const auto add = [&out](std::string detail) {
    out.push_back({kNoDoubleCommitOracle, std::move(detail)});
  };

  bool has_fault_plan = false;
  std::map<RequestId, int64_t> decided;
  /// Decision-order revenue accumulation per platform — the engine's own
  /// summation order, so the kRunEnd comparison is legitimately bitwise.
  std::vector<double> platform_revenue;
  int64_t assignments = 0;
  const recovery::WalRecord* run_end = nullptr;

  // Two-phase context of the step currently being read. Interior records
  // (reserve/conflict/confirm/breaker) belong to the next terminal record;
  // a successful reserve that reaches a step boundary unconsumed is a
  // dangling two-phase commit in the *final* WAL — exactly what recovery
  // exists to prevent.
  int64_t ctx_step = -1;
  bool have_reserve = false;
  RequestId reserve_request = kInvalidId;
  WorkerId reserve_worker = kInvalidId;
  bool have_confirm = false;
  RequestId confirm_request = kInvalidId;
  WorkerId confirm_worker = kInvalidId;

  const auto flush_step = [&] {
    if (have_reserve) {
      add(StrFormat("dangling successful reserve in final WAL: step %lld "
                    "request %lld worker %lld has no covering decision",
                    static_cast<long long>(ctx_step),
                    static_cast<long long>(reserve_request),
                    static_cast<long long>(reserve_worker)));
    }
    have_reserve = false;
    have_confirm = false;
    ctx_step = -1;
  };
  const auto enter_step = [&](int64_t step) {
    if (ctx_step != -1 && step != ctx_step) flush_step();
    ctx_step = step;
  };

  for (const recovery::WalRecord& rec : records) {
    switch (rec.type) {
      case WalRecordType::kRunBegin:
        has_fault_plan = rec.has_fault_plan;
        platform_revenue.assign(
            static_cast<size_t>(rec.platform_count > 0 ? rec.platform_count
                                                       : 0),
            0.0);
        break;
      case WalRecordType::kOuterReserve:
        enter_step(rec.step);
        have_reserve = true;
        reserve_request = rec.request;
        reserve_worker = rec.worker;
        break;
      case WalRecordType::kOuterConflict:
      case WalRecordType::kBreakerState:
        enter_step(rec.step);
        break;
      case WalRecordType::kOuterConfirm:
        enter_step(rec.step);
        have_confirm = true;
        confirm_request = rec.request;
        confirm_worker = rec.worker;
        break;
      case WalRecordType::kDecision: {
        enter_step(rec.step);
        const StepRecord& s = rec.step_record;
        if (++decided[s.request] == 2) {
          add(StrFormat("request %lld decided more than once (revenue "
                        "double-commit) at step %lld",
                        static_cast<long long>(s.request),
                        static_cast<long long>(rec.step)));
        }
        if (s.outcome != 0) ++assignments;
        if (s.outcome == 2) {  // outer
          if (has_fault_plan &&
              (!have_confirm || confirm_request != s.request ||
               confirm_worker != s.worker)) {
            add(StrFormat("outer decision for request %lld worker %lld at "
                          "step %lld lacks a matching confirm",
                          static_cast<long long>(s.request),
                          static_cast<long long>(s.worker),
                          static_cast<long long>(rec.step)));
          }
          if (have_reserve && (reserve_request != s.request ||
                               reserve_worker != s.worker)) {
            add(StrFormat("decision at step %lld books request %lld worker "
                          "%lld but the step reserved request %lld worker "
                          "%lld",
                          static_cast<long long>(rec.step),
                          static_cast<long long>(s.request),
                          static_cast<long long>(s.worker),
                          static_cast<long long>(reserve_request),
                          static_cast<long long>(reserve_worker)));
          }
          if (!BitEq(s.revenue, s.value - s.payment)) {
            add(StrFormat("outer revenue violates Eq. 1 at step %lld: "
                          "%.17g != %.17g - %.17g",
                          static_cast<long long>(rec.step), s.revenue,
                          s.value, s.payment));
          }
        } else {
          if (have_reserve) {
            add(StrFormat("step %lld reserved request %lld worker %lld but "
                          "decided non-outer (outcome %d)",
                          static_cast<long long>(rec.step),
                          static_cast<long long>(reserve_request),
                          static_cast<long long>(reserve_worker),
                          static_cast<int>(s.outcome)));
          }
          if (s.outcome == 1 &&
              (!BitEq(s.revenue, s.value) || s.payment != 0.0)) {
            add(StrFormat("inner revenue accounting broken at step %lld: "
                          "revenue %.17g value %.17g payment %.17g",
                          static_cast<long long>(rec.step), s.revenue,
                          s.value, s.payment));
          }
          if (s.outcome == 0 && s.revenue != 0.0) {
            add(StrFormat("rejected request %lld carries revenue %.17g",
                          static_cast<long long>(s.request), s.revenue));
          }
        }
        if (s.platform >= 0 &&
            static_cast<size_t>(s.platform) < platform_revenue.size()) {
          platform_revenue[static_cast<size_t>(s.platform)] += s.revenue;
        }
        have_reserve = false;
        have_confirm = false;
        ctx_step = -1;
        break;
      }
      case WalRecordType::kArrival:
      case WalRecordType::kCheckpointMark:
      case WalRecordType::kRecoveryMark:
        flush_step();
        break;
      case WalRecordType::kRunEnd:
        flush_step();
        run_end = &rec;
        break;
    }
  }
  flush_step();

  if (run_end != nullptr) {
    double total = 0.0;
    for (double r : platform_revenue) total += r;
    if (!BitEq(total, run_end->total_revenue)) {
      add(StrFormat("kRunEnd total revenue %.17g != platform-ordered "
                    "decision sum %.17g",
                    run_end->total_revenue, total));
    }
    if (assignments != run_end->assignments) {
      add(StrFormat("kRunEnd says %lld assignments, WAL decisions say %lld",
                    static_cast<long long>(run_end->assignments),
                    static_cast<long long>(assignments)));
    }
  }
  return out;
}

std::vector<OracleViolation> CheckRecoveryEquivalence(
    const SimResult& baseline, const SimResult& recovered) {
  std::vector<OracleViolation> out;
  const auto add = [&out](std::string detail) {
    out.push_back({kRecoveryBitExactOracle, std::move(detail)});
  };

  const SimMetrics& bm = baseline.metrics;
  const SimMetrics& rm = recovered.metrics;
  if (bm.per_platform.size() != rm.per_platform.size()) {
    add(StrFormat("platform count differs: %zu vs %zu",
                  bm.per_platform.size(), rm.per_platform.size()));
    return out;
  }
  for (size_t p = 0; p < bm.per_platform.size(); ++p) {
    const PlatformMetrics& b = bm.per_platform[p];
    const PlatformMetrics& r = rm.per_platform[p];
    if (!BitEq(b.revenue, r.revenue)) {
      add(StrFormat("platform %zu revenue %.17g != recovered %.17g", p,
                    b.revenue, r.revenue));
    }
    if (b.completed != r.completed ||
        b.completed_inner != r.completed_inner ||
        b.completed_outer != r.completed_outer ||
        b.rejected != r.rejected || b.outer_offers != r.outer_offers) {
      add(StrFormat(
          "platform %zu counters differ: completed %lld/%lld/%lld rej %lld "
          "offers %lld vs %lld/%lld/%lld rej %lld offers %lld",
          p, static_cast<long long>(b.completed),
          static_cast<long long>(b.completed_inner),
          static_cast<long long>(b.completed_outer),
          static_cast<long long>(b.rejected),
          static_cast<long long>(b.outer_offers),
          static_cast<long long>(r.completed),
          static_cast<long long>(r.completed_inner),
          static_cast<long long>(r.completed_outer),
          static_cast<long long>(r.rejected),
          static_cast<long long>(r.outer_offers)));
    }
    if (!BitEq(b.outer_payment_sum, r.outer_payment_sum) ||
        !BitEq(b.payment_rate_sum, r.payment_rate_sum) ||
        !BitEq(b.total_pickup_km, r.total_pickup_km)) {
      add(StrFormat("platform %zu payment/pickup sums differ", p));
    }
  }
  if (bm.logical_bytes != rm.logical_bytes) {
    add(StrFormat("logical bytes differ: %lld vs %lld",
                  static_cast<long long>(bm.logical_bytes),
                  static_cast<long long>(rm.logical_bytes)));
  }

  const auto& ba = baseline.matching.assignments;
  const auto& ra = recovered.matching.assignments;
  if (ba.size() != ra.size()) {
    add(StrFormat("assignment log length differs: %zu vs %zu", ba.size(),
                  ra.size()));
  } else {
    for (size_t i = 0; i < ba.size(); ++i) {
      if (ba[i].request != ra[i].request || ba[i].worker != ra[i].worker ||
          ba[i].is_outer != ra[i].is_outer ||
          !BitEq(ba[i].outer_payment, ra[i].outer_payment) ||
          !BitEq(ba[i].revenue, ra[i].revenue)) {
        add(StrFormat(
            "assignment %zu differs: (req %lld w %lld outer %d pay %.17g "
            "rev %.17g) vs (req %lld w %lld outer %d pay %.17g rev %.17g)",
            i, static_cast<long long>(ba[i].request),
            static_cast<long long>(ba[i].worker),
            static_cast<int>(ba[i].is_outer), ba[i].outer_payment,
            ba[i].revenue, static_cast<long long>(ra[i].request),
            static_cast<long long>(ra[i].worker),
            static_cast<int>(ra[i].is_outer), ra[i].outer_payment,
            ra[i].revenue));
        break;
      }
    }
  }
  if (!BitEq(baseline.matching.total_revenue,
             recovered.matching.total_revenue)) {
    add(StrFormat("total revenue %.17g != recovered %.17g",
                  baseline.matching.total_revenue,
                  recovered.matching.total_revenue));
  }
  if (!(baseline.fault_stats == recovered.fault_stats)) {
    add("fault session stats differ between baseline and recovered run");
  }
  return out;
}

namespace {

/// Shared crash-experiment driver: `choose` turns the completed baseline's
/// stats into the crash point (random byte for the classic matrix, an
/// exact group-commit boundary for the batch-loss scenario).
Result<CrashCheckOutcome> RunCrashRecoveryCheckImpl(
    MatcherKind kind, const Scenario& scenario, const Instance& instance,
    const std::string& work_dir,
    const std::function<Result<recovery::CrashPoint>(
        const recovery::DurableRunStats&)>& choose,
    int64_t checkpoint_every_steps) {
  COMX_RETURN_IF_ERROR(EnsureDir(work_dir));
  const std::string base_dir = work_dir + "/baseline";
  const std::string crash_dir = work_dir + "/crashed";
  COMX_RETURN_IF_ERROR(EnsureDir(base_dir));
  COMX_RETURN_IF_ERROR(EnsureDir(crash_dir));

  const SimConfig sim = scenario.MakeSimConfig(nullptr);
  const int32_t platforms = instance.PlatformCount();
  recovery::DurableOptions opts;
  opts.checkpoint_every_steps = checkpoint_every_steps;

  CrashCheckOutcome outcome;

  // Uninterrupted durable baseline: the reference result and the crash
  // profile (WAL length + checkpoint spans) in one run.
  std::vector<std::unique_ptr<OnlineMatcher>> owned;
  opts.dir = base_dir;
  COMX_ASSIGN_OR_RETURN(
      recovery::DurableOutcome baseline,
      recovery::RunDurableSimulation(instance,
                                     BuildMatchers(kind, platforms, &owned),
                                     sim, scenario.sim_seed, opts));
  if (baseline.crashed) {
    return Status::Internal("baseline durable run reported a crash");
  }
  outcome.baseline_stats = baseline.stats;

  // Identical run, killed at the chosen point of the durable write stream.
  COMX_ASSIGN_OR_RETURN(outcome.point, choose(baseline.stats));
  recovery::CrashInjector injector(outcome.point);
  opts.dir = crash_dir;
  opts.crash = &injector;
  COMX_ASSIGN_OR_RETURN(
      recovery::DurableOutcome crashed,
      recovery::RunDurableSimulation(instance,
                                     BuildMatchers(kind, platforms, &owned),
                                     sim, scenario.sim_seed, opts));
  if (!crashed.crashed) {
    return Status::Internal("crash point never fired: " +
                            outcome.point.ToString());
  }

  // Recover. A DataLoss here is replay verification refusing a divergent
  // record — the bit-exact oracle firing, not a harness failure.
  opts.crash = nullptr;
  Result<recovery::DurableOutcome> recovered = recovery::RecoverAndResume(
      instance, BuildMatchers(kind, platforms, &owned), sim,
      scenario.sim_seed, opts);
  if (!recovered.ok()) {
    if (recovered.status().code() == StatusCode::kDataLoss) {
      outcome.violations.push_back(
          {kRecoveryBitExactOracle,
           StrFormat("recovery refused at %s: %s",
                     outcome.point.ToString().c_str(),
                     recovered.status().ToString().c_str())});
      return outcome;
    }
    return recovered.status();
  }
  outcome.recovery_stats = recovered->stats;
  for (OracleViolation& v :
       CheckRecoveryEquivalence(baseline.result, recovered->result)) {
    v.detail += " [" + outcome.point.ToString() + "]";
    outcome.violations.push_back(std::move(v));
  }

  // The recovered WAL must read back clean and witness a safe two-phase
  // history end to end.
  COMX_ASSIGN_OR_RETURN(const recovery::WalScan scan,
                        recovery::ScanWal(recovery::WalPath(crash_dir)));
  if (scan.torn_tail || scan.torn_header) {
    outcome.violations.push_back(
        {kNoDoubleCommitOracle,
         "recovered WAL still torn: " + scan.tail_warning});
  }
  for (OracleViolation& v : CheckWalCommitProtocol(scan.records)) {
    outcome.violations.push_back(std::move(v));
  }

  // Both WALs must rebuild byte-identical decision traces.
  COMX_RETURN_IF_ERROR(recovery::RebuildTraceFromWal(
      recovery::WalPath(base_dir), base_dir + "/trace.jsonl"));
  COMX_RETURN_IF_ERROR(recovery::RebuildTraceFromWal(
      recovery::WalPath(crash_dir), crash_dir + "/trace.jsonl"));
  COMX_ASSIGN_OR_RETURN(const std::string base_trace,
                        ReadWholeFile(base_dir + "/trace.jsonl"));
  COMX_ASSIGN_OR_RETURN(const std::string crash_trace,
                        ReadWholeFile(crash_dir + "/trace.jsonl"));
  if (base_trace != crash_trace) {
    outcome.violations.push_back(
        {kRecoveryBitExactOracle,
         StrFormat("rebuilt traces differ (%zu vs %zu bytes) [%s]",
                   base_trace.size(), crash_trace.size(),
                   outcome.point.ToString().c_str())});
  }
  return outcome;
}

}  // namespace

Result<CrashCheckOutcome> RunCrashRecoveryCheck(
    MatcherKind kind, const Scenario& scenario, const Instance& instance,
    const std::string& work_dir, uint64_t crash_seed,
    int64_t checkpoint_every_steps) {
  return RunCrashRecoveryCheckImpl(
      kind, scenario, instance, work_dir,
      [crash_seed](const recovery::DurableRunStats& stats)
          -> Result<recovery::CrashPoint> {
        recovery::CrashProfile profile;
        profile.wal_bytes = stats.wal_bytes;
        profile.checkpoints = stats.checkpoint_spans;
        Rng rng(crash_seed);
        return recovery::DrawCrashPoint(profile, &rng);
      },
      checkpoint_every_steps);
}

Result<CrashCheckOutcome> RunBoundaryCrashRecoveryCheck(
    MatcherKind kind, const Scenario& scenario, const Instance& instance,
    const std::string& work_dir, uint64_t boundary_index,
    int64_t checkpoint_every_steps) {
  return RunCrashRecoveryCheckImpl(
      kind, scenario, instance, work_dir,
      [boundary_index](const recovery::DurableRunStats& stats)
          -> Result<recovery::CrashPoint> {
        // The final commit offset equals the run's total WAL bytes; a crash
        // "at" it would never fire (nothing is written afterwards), so only
        // the interior boundaries model the fill-to-fsync window.
        if (stats.wal_commit_offsets.size() < 2) {
          return Status::Internal(
              "baseline produced fewer than two group commits; no interior "
              "boundary to crash at");
        }
        const size_t usable = stats.wal_commit_offsets.size() - 1;
        recovery::CrashPoint point;
        point.kind = recovery::CrashPoint::Kind::kWalOffset;
        point.wal_offset =
            stats.wal_commit_offsets[static_cast<size_t>(boundary_index) %
                                     usable];
        return point;
      },
      checkpoint_every_steps);
}

}  // namespace check
}  // namespace comx
