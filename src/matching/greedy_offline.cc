#include "matching/greedy_offline.h"

#include <algorithm>
#include <numeric>

namespace comx {

BipartiteMatching GreedyMaxWeight(const BipartiteGraph& graph,
                                  const std::vector<int32_t>& right_capacity) {
  std::vector<int32_t> capacity = right_capacity;
  if (capacity.empty()) {
    capacity.assign(static_cast<size_t>(graph.right_count()), 1);
  }

  std::vector<int32_t> order(graph.edges().size());
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(), [&](int32_t a, int32_t b) {
    return graph.edges()[static_cast<size_t>(a)].weight >
           graph.edges()[static_cast<size_t>(b)].weight;
  });

  BipartiteMatching result;
  result.match_of_left.assign(static_cast<size_t>(graph.left_count()), -1);
  for (int32_t ei : order) {
    const BipartiteEdge& e = graph.edges()[static_cast<size_t>(ei)];
    if (e.weight <= 0.0) break;  // remaining edges cannot help
    if (result.match_of_left[static_cast<size_t>(e.left)] != -1) continue;
    if (capacity[static_cast<size_t>(e.right)] <= 0) continue;
    result.match_of_left[static_cast<size_t>(e.left)] = e.right;
    --capacity[static_cast<size_t>(e.right)];
    result.total_weight += e.weight;
    ++result.size;
  }
  return result;
}

}  // namespace comx
