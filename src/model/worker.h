// Worker entity (Definitions 2.2/2.3): arrival time, location, service radius,
// owning platform, and the completed-request value history that drives the
// acceptance-probability model of Definition 3.1.

#ifndef COMX_MODEL_WORKER_H_
#define COMX_MODEL_WORKER_H_

#include <string>
#include <vector>

#include "geo/point.h"
#include "model/ids.h"
#include "util/status.h"

namespace comx {

/// A crowd worker w = <t, l_w, rad_w>.
///
/// Whether a worker is "inner" or "outer" is relative to the platform doing
/// the matching: a worker is inner for its own platform and outer for every
/// other one; see Instance / Platform.
struct Worker {
  /// Dense id within the owning Instance.
  WorkerId id = kInvalidId;
  /// Platform the worker is registered with.
  PlatformId platform = 0;
  /// Arrival time, seconds since the instance epoch.
  Timestamp time = 0.0;
  /// Location in the planar km frame.
  Point location;
  /// Service radius in km (range constraint, Definition 2.6).
  double radius = 1.0;
  /// Values of the worker's completed history requests, ascending order not
  /// required. Drives pr(v', w) = |{h in history : h <= v'}| / |history|
  /// (Definition 3.1). Empty history means the worker accepts any payment
  /// with probability 0 under the estimator, so generators always provide
  /// at least one entry.
  std::vector<double> history;

  /// Validates invariants (id set, radius > 0, positive history values).
  Status Validate() const;

  /// Compact debug representation.
  std::string ToString() const;
};

}  // namespace comx

#endif  // COMX_MODEL_WORKER_H_
