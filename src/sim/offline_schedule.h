// Exact offline optimum WITH worker recycling, by branch-and-bound over
// assignment decisions in arrival order. Exponential — usable only for
// tiny instances — but it is the ground truth that validates the
// capacitated b-matching relaxation of offline_opt.h (relaxation >= exact
// schedule >= strict 1-by-1 matching) and upper-bounds every online run
// under reservation acceptance.

#ifndef COMX_SIM_OFFLINE_SCHEDULE_H_
#define COMX_SIM_OFFLINE_SCHEDULE_H_

#include "geo/distance_metric.h"
#include "model/assignment.h"
#include "model/instance.h"
#include "sim/simulator.h"
#include "util/result.h"

namespace comx {

/// Tuning/limits for the exact scheduler.
struct ScheduleConfig {
  /// Physics must match the simulator's for apples-to-apples bounds.
  SimConfig sim;
  /// Reservation seed: outer payments are the realized rho_w draws, as in
  /// offline_opt.h / AcceptanceMode::kReservation.
  uint64_t reservation_seed = 42;
  /// Hard cap on explored search nodes; exceeding it errors (OutOfRange).
  int64_t max_nodes = 20'000'000;
  /// Refuse instances with more requests than this (search is O((W+1)^R)).
  int32_t max_requests = 12;
};

/// Result of the exact search.
struct ScheduleSolution {
  /// Optimal total revenue for the target platform.
  double revenue = 0.0;
  /// One optimal assignment sequence (in request arrival order).
  Matching matching;
  /// Search nodes explored.
  int64_t nodes = 0;
};

/// Exact recycling-aware offline optimum for `target`'s requests. Workers
/// of other platforms are borrowable at their reservation payment.
Result<ScheduleSolution> SolveOfflineSchedule(const Instance& instance,
                                              PlatformId target,
                                              const ScheduleConfig& config);

}  // namespace comx

#endif  // COMX_SIM_OFFLINE_SCHEDULE_H_
