#include "core/window_greedy.h"

#include "obs/span.h"
#include "pricing/mer_pricer.h"

namespace comx {

Decision DecideWindowGreedy(const Request& r, const PlatformView& view,
                            Rng* rng) {
  std::vector<WorkerId> inner, outer;
  {
    COMX_SPAN("candidate_lookup");
    inner = view.FeasibleInnerWorkers(r);
    outer = view.FeasibleOuterWorkers(r);
  }
  DecisionStats stats;
  stats.inner_candidates = static_cast<int32_t>(inner.size());
  stats.outer_candidates = static_cast<int32_t>(outer.size());

  // Argmax over the request's candidate edges: inner workers are worth the
  // full value, outer workers their expected revenue under the per-worker
  // MER price. Strict improvement only, so the earliest candidate in
  // enumeration order wins ties — the same rule the batch window solver's
  // single-request path applies, edge for edge.
  double best_weight = 0.0;
  WorkerId best_worker = kInvalidId;
  bool best_is_outer = false;
  double best_payment = 0.0;
  for (const WorkerId w : inner) {
    if (r.value > best_weight) {
      best_weight = r.value;
      best_worker = w;
    }
  }
  int32_t priced = 0;
  for (const WorkerId w : outer) {
    const MerQuote quote = ComputeMerQuote(view.acceptance(), {w}, r.value);
    ++priced;
    if (!(r.value - quote.payment > 0.0)) continue;
    if (quote.expected_revenue > best_weight) {
      best_weight = quote.expected_revenue;
      best_worker = w;
      best_is_outer = true;
      best_payment = quote.payment;
    }
  }
  stats.priced_candidates = priced;

  if (best_worker == kInvalidId) {
    Decision d = Decision::Reject();
    d.stats = stats;
    return d;
  }
  if (!best_is_outer) {
    Decision d = Decision::Inner(best_worker);
    d.stats = stats;
    return d;
  }
  stats.estimated_payment = best_payment;
  if (!view.acceptance().Accepts(best_worker, best_payment, rng)) {
    stats.accepting = 0;
    Decision d = Decision::Reject();
    d.attempted_outer = true;
    d.stats = stats;
    return d;
  }
  stats.accepting = 1;
  Decision d = Decision::Outer(best_worker, best_payment);
  d.stats = stats;
  return d;
}

void WindowGreedy::Reset(const Instance& /*instance*/,
                         PlatformId /*platform*/, uint64_t seed) {
  rng_ = Rng(seed);
}

Decision WindowGreedy::OnRequest(const Request& r, const PlatformView& view) {
  return DecideWindowGreedy(r, view, &rng_);
}

Status WindowGreedy::SaveState(ByteWriter* out) const {
  WriteRng(rng_, out);
  return Status::OK();
}

Status WindowGreedy::RestoreState(ByteReader* in) {
  return ReadRng(in, &rng_);
}

}  // namespace comx
