file(REMOVE_RECURSE
  "libcomx_bench_common.a"
)
