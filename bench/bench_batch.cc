// Batched vs online dispatch: sweep the batch window length and compare
// revenue / completions / user-visible waiting against the per-request
// online algorithms on the identical workload. Quantifies the classic
// latency-for-quality trade the spatial-crowdsourcing literature discusses
// — and shows the cross-platform borrowing edge persists in both regimes.

#include <cstdio>

#include "common.h"
#include "core/dem_com.h"
#include "core/ram_com.h"
#include "core/tota_greedy.h"
#include "datagen/synthetic.h"
#include "sim/batch_simulator.h"

namespace {

using namespace comx;  // NOLINT — leaf benchmark binary

template <typename Matcher>
void OnlineRow(const char* name, const Instance& instance, int seeds) {
  SimConfig sim;
  sim.workers_recycle = true;
  sim.measure_response_time = false;
  double revenue = 0.0;
  int64_t completed = 0, coop = 0;
  for (int s = 1; s <= seeds; ++s) {
    Matcher m0, m1;
    auto r = RunSimulation(instance, {&m0, &m1}, sim,
                           static_cast<uint64_t>(s));
    if (!r.ok()) std::exit(1);
    revenue += r->metrics.TotalRevenue();
    completed += r->metrics.Aggregate().completed;
    coop += r->metrics.Aggregate().completed_outer;
  }
  std::printf("%-16s %12.1f %9lld %7lld %13s\n", name, revenue / seeds,
              static_cast<long long>(completed / seeds),
              static_cast<long long>(coop / seeds), "instant");
}

}  // namespace

int main(int argc, char** argv) {
  const int seeds = static_cast<int>(bench::ArgInt(argc, argv, "--seeds", 4));
  SyntheticConfig config;
  config.requests_per_platform = {1250};
  config.workers_per_platform = {250};
  config.seed = 2020;
  auto instance = GenerateSynthetic(config);
  if (!instance.ok()) return 1;
  std::printf("batched vs online dispatch on %s, %d seeds\n\n",
              instance->Summary().c_str(), seeds);
  std::printf("%-16s %12s %9s %7s %13s\n", "dispatch", "revenue", "served",
              "coop", "mean wait");
  OnlineRow<TotaGreedy>("online TOTA", *instance, seeds);
  OnlineRow<DemCom>("online DemCOM", *instance, seeds);
  OnlineRow<RamCom>("online RamCOM", *instance, seeds);

  for (double window : {15.0, 60.0, 300.0, 900.0}) {
    BatchConfig batch;
    batch.window_seconds = window;
    batch.sim.workers_recycle = true;
    double revenue = 0.0, wait = 0.0;
    int64_t completed = 0, coop = 0;
    for (int s = 1; s <= seeds; ++s) {
      auto r = RunBatchSimulation(*instance, batch,
                                  static_cast<uint64_t>(s));
      if (!r.ok()) {
        std::fprintf(stderr, "batch: %s\n", r.status().ToString().c_str());
        return 1;
      }
      const auto agg = r->metrics.Aggregate();
      revenue += agg.revenue;
      completed += agg.completed;
      coop += agg.completed_outer;
      wait += agg.response_time_us.mean() / 1e6;  // simulated seconds
    }
    std::printf("%-16s %12.1f %9lld %7lld %12.1fs\n",
                ("batch " + std::to_string(static_cast<int>(window)) + "s")
                    .c_str(),
                revenue / seeds, static_cast<long long>(completed / seeds),
                static_cast<long long>(coop / seeds), wait / seeds);
  }
  std::printf("\nexpected shape: longer windows buy revenue/completions "
              "(better per-window matchings, retry on freed supply) at the "
              "cost of user waiting that grows with the window; online COM "
              "stays competitive at zero wait.\n");
  return 0;
}
