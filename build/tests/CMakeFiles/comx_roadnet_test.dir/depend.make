# Empty dependencies file for comx_roadnet_test.
# This may be replaced when dependencies are built.
