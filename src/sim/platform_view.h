// PlatformView implementation backed by the shared WorkerPool: what one
// platform's matcher is allowed to see at a request arrival.

#ifndef COMX_SIM_PLATFORM_VIEW_H_
#define COMX_SIM_PLATFORM_VIEW_H_

#include <vector>

#include "core/online_matcher.h"
#include "sim/worker_pool.h"

namespace comx {

/// Read-only adapter from WorkerPool to the matcher-facing PlatformView.
class PoolPlatformView : public PlatformView {
 public:
  PoolPlatformView(const Instance& instance, const AcceptanceModel& model,
                   const WorkerPool& pool, PlatformId platform)
      : instance_(&instance),
        model_(&model),
        pool_(&pool),
        platform_(platform) {}

  std::vector<WorkerId> FeasibleInnerWorkers(const Request& r) const override {
    return pool_->FeasibleWorkers(r, platform_, /*inner=*/true);
  }

  std::vector<WorkerId> FeasibleOuterWorkers(const Request& r) const override {
    return pool_->FeasibleWorkers(r, platform_, /*inner=*/false);
  }

  double DistanceTo(WorkerId w, const Request& r) const override;

  void BatchDistanceTo(const std::vector<WorkerId>& ids, const Request& r,
                       std::vector<double>* out) const override {
    pool_->BatchDistances(ids, r.location, out);
  }

  const Instance& instance() const override { return *instance_; }
  const AcceptanceModel& acceptance() const override { return *model_; }

  /// The platform this view belongs to.
  PlatformId platform() const { return platform_; }

 private:
  const Instance* instance_;
  const AcceptanceModel* model_;
  const WorkerPool* pool_;
  PlatformId platform_;
};

}  // namespace comx

#endif  // COMX_SIM_PLATFORM_VIEW_H_
