// Torn-artifact tolerance outside the WAL: the lenient trace reader
// (obs/trace.h) must drop exactly one unterminated final line with a
// warning — and only in lenient mode — while mid-file corruption stays a
// hard error. Plus the shutdown-guard exit-code contract the CLI tools
// rely on (util/signal_guard.h).

#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <string>

#include "gtest/gtest.h"
#include "obs/trace.h"
#include "util/signal_guard.h"

namespace comx {
namespace obs {
namespace {

std::string MakeTempDir() {
  char tmpl[] = "/tmp/comx_torn_test.XXXXXX";
  const char* dir = ::mkdtemp(tmpl);
  EXPECT_NE(dir, nullptr);
  return dir == nullptr ? std::string("/tmp") : std::string(dir);
}

void WriteFileBytes(const std::string& path, const std::string& bytes) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  ASSERT_NE(f, nullptr);
  ASSERT_EQ(std::fwrite(bytes.data(), 1, bytes.size(), f), bytes.size());
  ASSERT_EQ(std::fclose(f), 0);
}

TraceEvent MakeEvent(int64_t seq, double revenue) {
  TraceEvent e;
  e.seq = seq;
  e.time = 1.0 + static_cast<double>(seq);
  e.platform = 0;
  e.request = seq;
  e.value = revenue;
  e.outcome = "inner";
  e.worker = 100 + seq;
  e.revenue = revenue;
  return e;
}

// Two decisions plus a consistent summary, each line terminated.
std::string CleanTrace() {
  std::string out;
  out += TraceEventToJson(MakeEvent(0, 4.0)) + "\n";
  out += TraceEventToJson(MakeEvent(1, 9.0)) + "\n";
  TraceSummary summary;
  summary.events_written = 2;
  summary.assignments = 2;
  summary.platform_revenue = {13.0};
  summary.total_revenue = 13.0;
  out += TraceSummaryToJson(summary) + "\n";
  return out;
}

TEST(TornTraceTest, CleanFileReplaysWithoutWarnings) {
  const std::string path = MakeTempDir() + "/trace.jsonl";
  WriteFileBytes(path, CleanTrace());
  auto replay = ReplayTraceFile(path);
  ASSERT_TRUE(replay.ok()) << replay.status().ToString();
  EXPECT_EQ(replay->decision_events, 2);
  EXPECT_TRUE(replay->has_summary);
  EXPECT_FALSE(replay->truncated_tail);
  EXPECT_TRUE(replay->tail_warning.empty());
  EXPECT_TRUE(CheckTraceReplay(*replay).ok());
}

TEST(TornTraceTest, UnterminatedGarbageTailIsDroppedWithWarning) {
  const std::string path = MakeTempDir() + "/trace.jsonl";
  // A writer killed mid-event: valid prefix, then a torn fragment with no
  // trailing newline.
  std::string torn = TraceEventToJson(MakeEvent(0, 4.0)) + "\n";
  torn += TraceEventToJson(MakeEvent(1, 9.0)).substr(0, 25);
  WriteFileBytes(path, torn);

  auto replay = ReplayTraceFile(path);
  ASSERT_TRUE(replay.ok()) << replay.status().ToString();
  EXPECT_EQ(replay->decision_events, 1);
  EXPECT_TRUE(replay->truncated_tail);
  EXPECT_NE(replay->tail_warning.find("unterminated final line"),
            std::string::npos)
      << replay->tail_warning;

  // --strict restores the old hard-failure behavior.
  TraceReplayOptions strict;
  strict.strict = true;
  EXPECT_FALSE(ReplayTraceFile(path, strict).ok());
}

TEST(TornTraceTest, TornSummaryLineLeavesReplayWithoutSummary) {
  const std::string path = MakeTempDir() + "/trace.jsonl";
  const std::string clean = CleanTrace();
  // Cut inside the final (summary) line, dropping its newline.
  WriteFileBytes(path, clean.substr(0, clean.size() - 10));

  auto replay = ReplayTraceFile(path);
  ASSERT_TRUE(replay.ok()) << replay.status().ToString();
  EXPECT_EQ(replay->decision_events, 2);
  EXPECT_FALSE(replay->has_summary);
  EXPECT_TRUE(replay->truncated_tail);

  TraceReplayOptions strict;
  strict.strict = true;
  EXPECT_FALSE(ReplayTraceFile(path, strict).ok());
}

TEST(TornTraceTest, GarbageAfterSummaryIsToleratedOnlyUnterminated) {
  const std::string base = MakeTempDir();
  // Unterminated junk after the summary: a torn post-summary write.
  const std::string torn_path = base + "/torn.jsonl";
  WriteFileBytes(torn_path, CleanTrace() + "{\"type\":\"dec");
  auto replay = ReplayTraceFile(torn_path);
  ASSERT_TRUE(replay.ok()) << replay.status().ToString();
  EXPECT_TRUE(replay->has_summary);
  EXPECT_TRUE(replay->truncated_tail);

  // The same junk WITH a newline is not a torn write — hard error in
  // both modes.
  const std::string bad_path = base + "/bad.jsonl";
  WriteFileBytes(bad_path, CleanTrace() + "{\"type\":\"dec\n");
  EXPECT_FALSE(ReplayTraceFile(bad_path).ok());
}

TEST(TornTraceTest, MidFileCorruptionStaysAHardError) {
  const std::string path = MakeTempDir() + "/trace.jsonl";
  // Garbage line followed by more content: not a torn tail, an error in
  // lenient mode too.
  std::string bytes = "not json at all\n";
  bytes += TraceEventToJson(MakeEvent(0, 4.0)) + "\n";
  WriteFileBytes(path, bytes);
  EXPECT_FALSE(ReplayTraceFile(path).ok());
}

TEST(ShutdownGuardTest, ExitCodesAndRegistrationContract) {
  EXPECT_EQ(ShutdownExitCode(SIGINT), 130);
  EXPECT_EQ(ShutdownExitCode(SIGTERM), 143);
  EXPECT_FALSE(ShutdownRequested());
  // Registration is bounded and idempotent-safe; over-registering must
  // not crash or overflow the slot table.
  for (int i = 0; i < kMaxShutdownFiles + 4; ++i) {
    RegisterShutdownFlushFile(stderr);
  }
  for (int i = 0; i < kMaxShutdownFiles + 4; ++i) {
    UnregisterShutdownFlushFile(stderr);
  }
}

}  // namespace
}  // namespace obs
}  // namespace comx
