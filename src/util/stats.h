// Streaming and batch descriptive statistics used by the metrics collectors
// and the benchmark harness.

#ifndef COMX_UTIL_STATS_H_
#define COMX_UTIL_STATS_H_

#include <cstddef>
#include <cstdint>
#include <limits>
#include <string>
#include <vector>

namespace comx {

/// Welford-style streaming accumulator: count, mean, variance, min, max.
class RunningStats {
 public:
  /// Adds one observation.
  void Add(double x);

  /// Merges another accumulator into this one (parallel-combinable).
  void Merge(const RunningStats& other);

  /// Number of observations added.
  int64_t count() const { return count_; }
  /// Mean of the observations (0 when empty).
  double mean() const { return mean_; }
  /// Unbiased sample variance (0 when count < 2).
  double variance() const;
  /// Sample standard deviation.
  double stddev() const;
  /// Smallest observation (+inf when empty).
  double min() const { return min_; }
  /// Largest observation (-inf when empty).
  double max() const { return max_; }
  /// Sum of all observations.
  double sum() const { return mean_ * static_cast<double>(count_); }

  /// Raw Welford accumulator (sum of squared deviations) — together with
  /// count/mean/min/max this is the full internal state, exposed so
  /// checkpoints (src/recovery/) can serialize and restore it bit-exactly.
  double m2() const { return m2_; }

  /// Rebuilds an accumulator from previously captured raw state.
  static RunningStats FromRaw(int64_t count, double mean, double m2,
                              double min, double max);

  /// Resets to the empty state.
  void Reset();

  /// "n=..., mean=..., sd=..., min=..., max=..." for logging.
  std::string ToString() const;

 private:
  int64_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

/// Returns the q-th quantile (q in [0,1]) of `values` using linear
/// interpolation between order statistics. Copies and sorts internally.
/// Returns 0 for an empty vector.
double Quantile(std::vector<double> values, double q);

/// Equal-width histogram over [lo, hi] with `bins` buckets; values outside
/// the range are clamped into the first/last bucket.
class Histogram {
 public:
  /// Creates a histogram. Requires bins >= 1 and lo < hi.
  Histogram(double lo, double hi, size_t bins);

  /// Adds one observation.
  void Add(double x);

  /// Count in bucket `i`.
  int64_t BucketCount(size_t i) const { return counts_[i]; }
  /// Inclusive lower edge of bucket `i`.
  double BucketLow(size_t i) const;
  /// Number of buckets.
  size_t bins() const { return counts_.size(); }
  /// Total observations.
  int64_t total() const { return total_; }

 private:
  double lo_, hi_;
  std::vector<int64_t> counts_;
  int64_t total_ = 0;
};

}  // namespace comx

#endif  // COMX_UTIL_STATS_H_
