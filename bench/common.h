// Shared harness for the table/figure benchmark binaries. The heavy
// lifting (algorithm grid, table/CSV rendering, parallel seed execution)
// lives in the library at exp/algo_grid.h so tests can verify it; this
// header re-exports it under the historical bench:: names and keeps the
// leaf-program conveniences (die on error, argv parsing).

#ifndef COMX_BENCH_COMMON_H_
#define COMX_BENCH_COMMON_H_

#include <string>
#include <vector>

#include "exp/algo_grid.h"
#include "model/instance.h"

namespace comx {
namespace bench {

using exp::Algo;
using exp::AlgoName;
using exp::Row;

/// Run configuration for one table (exp::AlgoGridConfig: sim, seeds,
/// off_capacity, algos, jobs, pool).
using TableRunConfig = exp::AlgoGridConfig;

/// Runs every configured algorithm over `instance`; returns one row each.
/// Dies (exit 1) on internal errors — bench binaries are leaf programs.
std::vector<Row> RunTable(const Instance& instance,
                          const TableRunConfig& config);

/// Prints rows in the Tables V-VII layout.
void PrintTable(const std::string& title, const std::vector<Row>& rows,
                int32_t platform_count);

/// Appends rows to a CSV file (creating it with a header when absent).
/// `tag` labels the sweep point (e.g. "R=2500").
void AppendCsv(const std::string& path, const std::string& tag,
               const std::vector<Row>& rows);

/// Parses "--flag value"-style argv pairs; returns the value of `flag` or
/// `fallback`.
double ArgDouble(int argc, char** argv, const std::string& flag,
                 double fallback);
int64_t ArgInt(int argc, char** argv, const std::string& flag,
               int64_t fallback);

}  // namespace bench
}  // namespace comx

#endif  // COMX_BENCH_COMMON_H_
