#include "roadnet/road_graph.h"

#include <gtest/gtest.h>

namespace comx {
namespace {

RoadGraph Square() {
  // 0 -(1)- 1
  // |       |
  // 2 -(1)- 3   with unit spacing.
  RoadGraph g;
  g.AddNode(Point(0, 1));
  g.AddNode(Point(1, 1));
  g.AddNode(Point(0, 0));
  g.AddNode(Point(1, 0));
  EXPECT_TRUE(g.AddEdge(0, 1).ok());
  EXPECT_TRUE(g.AddEdge(0, 2).ok());
  EXPECT_TRUE(g.AddEdge(1, 3).ok());
  EXPECT_TRUE(g.AddEdge(2, 3).ok());
  return g;
}

TEST(RoadGraphTest, AddNodeAssignsDenseIds) {
  RoadGraph g;
  EXPECT_EQ(g.AddNode(Point(0, 0)), 0);
  EXPECT_EQ(g.AddNode(Point(1, 0)), 1);
  EXPECT_EQ(g.node_count(), 2);
  EXPECT_EQ(g.NodeLocation(1), Point(1, 0));
}

TEST(RoadGraphTest, DefaultEdgeLengthIsEuclidean) {
  RoadGraph g;
  g.AddNode(Point(0, 0));
  g.AddNode(Point(3, 4));
  ASSERT_TRUE(g.AddEdge(0, 1).ok());
  EXPECT_DOUBLE_EQ(g.ArcsFrom(0)[0].length_km, 5.0);
  EXPECT_DOUBLE_EQ(g.ArcsFrom(1)[0].length_km, 5.0);  // undirected
}

TEST(RoadGraphTest, RejectsSubEuclideanLength) {
  RoadGraph g;
  g.AddNode(Point(0, 0));
  g.AddNode(Point(3, 4));
  EXPECT_FALSE(g.AddEdge(0, 1, 4.0).ok());
  EXPECT_TRUE(g.AddEdge(0, 1, 6.0).ok());
}

TEST(RoadGraphTest, RejectsSelfLoopAndBadIds) {
  RoadGraph g;
  g.AddNode(Point(0, 0));
  EXPECT_EQ(g.AddEdge(0, 0).code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(g.AddEdge(0, 1).code(), StatusCode::kOutOfRange);
  EXPECT_EQ(g.AddEdge(-1, 0).code(), StatusCode::kOutOfRange);
}

TEST(RoadGraphTest, NearestNodeSnapsCorrectly) {
  const RoadGraph g = Square();
  auto n = g.NearestNode(Point(0.1, 0.9));
  ASSERT_TRUE(n.ok());
  EXPECT_EQ(*n, 0);
  n = g.NearestNode(Point(10, -10));
  ASSERT_TRUE(n.ok());
  EXPECT_EQ(*n, 3);
}

TEST(RoadGraphTest, NearestNodeOnEmptyGraphFails) {
  RoadGraph g;
  EXPECT_FALSE(g.NearestNode(Point(0, 0)).ok());
}

TEST(RoadGraphTest, NearestNodeSeesLateAdditions) {
  RoadGraph g;
  g.AddNode(Point(0, 0));
  ASSERT_TRUE(g.NearestNode(Point(5, 5)).ok());  // builds snap index
  g.AddNode(Point(5, 5));                        // must invalidate it
  auto n = g.NearestNode(Point(5.1, 5.0));
  ASSERT_TRUE(n.ok());
  EXPECT_EQ(*n, 1);
}

TEST(RoadGraphTest, ConnectivityDetection) {
  RoadGraph g = Square();
  EXPECT_TRUE(g.IsConnected());
  g.AddNode(Point(50, 50));  // isolated
  EXPECT_FALSE(g.IsConnected());
  EXPECT_TRUE(RoadGraph().IsConnected());  // vacuous
}

TEST(RoadGraphTest, TotalRoadKmSumsOnce) {
  const RoadGraph g = Square();
  EXPECT_DOUBLE_EQ(g.TotalRoadKm(), 4.0);
}

TEST(RoadGraphTest, SummaryFormat) {
  const RoadGraph g = Square();
  EXPECT_EQ(g.Summary(), "RoadGraph{nodes=4, edges=4, road_km=4.0}");
}

}  // namespace
}  // namespace comx
