// comx_fuzz — property-based correctness fuzzer for the COM matchers.
//
// Draws seeded random scenarios (src/check/scenario_gen.h), runs TOTA,
// DemCOM, and RamCOM over each, and checks every oracle in
// src/check/oracles.h: the paper's four hard constraints, bit-exact Eq. 1
// revenue accounting, per-policy contracts, and the OFF / brute-force
// differentials. On a violation the instance is shrunk to a minimal repro
// and written as a CSV dataset next to the exact comx_cli replay command.
//
// Usage:
//   comx_fuzz [--runs N] [--seed S] [--time-budget SECONDS]
//             [--repro-dir DIR] [--smoke] [--quiet] [--batch]
//             [--crash-check-every N] [--crash-check-dir DIR]
//
// --batch: additionally run the micro-batch dispatch mode (SimConfig::
// batch_mode with the scenario's drawn window/algo) on every fault-free
// scenario — covering the batch-window-never-violates-deadline oracle and
// the batch OFF upper bound. Off by default so budgets are unchanged.
//
// --crash-check-every N: every Nth scenario additionally runs a durable
// baseline + seeded crash + recovery and checks the recovery oracles
// (recovery-bit-exact, no-double-commit-after-crash); artifacts land under
// --crash-check-dir (a mkdtemp directory when unset). --smoke enables it
// at N=16.
//
//   --smoke: the CI configuration — fixed seed, 200 scenarios, ~5 s.
//            Exit 0 iff no oracle fired. Stage 4 of tools/check.sh.
//
// Exit codes: 0 = clean, 1 = violations found, 2 = usage/harness error.

#include <cstdio>
#include <cstdlib>
#include <cstring>

#include <string>

#include "check/fuzz_driver.h"
#include "util/signal_guard.h"

namespace comx {
namespace {

const char* FlagValue(int argc, char** argv, const char* flag) {
  const size_t flag_len = std::strlen(flag);
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], flag) == 0) {
      return i + 1 < argc ? argv[i + 1] : nullptr;
    }
    if (std::strncmp(argv[i], flag, flag_len) == 0 &&
        argv[i][flag_len] == '=') {
      return argv[i] + flag_len + 1;
    }
  }
  return nullptr;
}

bool HasFlag(int argc, char** argv, const char* flag) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], flag) == 0) return true;
  }
  return false;
}

int Main(int argc, char** argv) {
  check::FuzzOptions options;
  options.log = HasFlag(argc, argv, "--quiet") ? nullptr : stderr;
  if (HasFlag(argc, argv, "--smoke")) {
    // The CI contract: fixed seeds, 200 scenarios across every matcher,
    // roughly five seconds. Deliberately no time budget — a smoke run must
    // either finish its scenarios or fail loudly.
    options.base_seed = 2020;
    options.runs = 200;
    options.time_budget_seconds = 0.0;
    // Crash-recovery coverage rides along: 13 of the 200 scenarios also
    // run the durable crash + recover + oracles experiment.
    options.crash_check_every = 16;
  }
  if (HasFlag(argc, argv, "--batch")) {
    options.include_batch = true;
  }
  if (const char* v = FlagValue(argc, argv, "--runs"); v != nullptr) {
    options.runs = std::atoll(v);
  }
  if (const char* v = FlagValue(argc, argv, "--seed"); v != nullptr) {
    options.base_seed = static_cast<uint64_t>(std::atoll(v));
  }
  if (const char* v = FlagValue(argc, argv, "--time-budget"); v != nullptr) {
    options.time_budget_seconds = std::atof(v);
  }
  if (const char* v = FlagValue(argc, argv, "--repro-dir"); v != nullptr) {
    options.repro_dir = v;
  }
  if (const char* v = FlagValue(argc, argv, "--crash-check-every");
      v != nullptr) {
    options.crash_check_every = std::atoll(v);
  }
  if (const char* v = FlagValue(argc, argv, "--crash-check-dir");
      v != nullptr) {
    options.crash_check_dir = v;
  }
  if (options.crash_check_every > 0 && options.crash_check_dir.empty()) {
    char tmpl[] = "/tmp/comx_fuzz_crash.XXXXXX";
    if (::mkdtemp(tmpl) == nullptr) {
      std::fprintf(stderr, "comx_fuzz: mkdtemp failed\n");
      return 2;
    }
    options.crash_check_dir = tmpl;
  }
  if (options.runs <= 0) {
    std::fprintf(stderr, "comx_fuzz: --runs must be >= 1\n");
    return 2;
  }

  auto report = check::RunFuzz(options);
  if (!report.ok()) {
    std::fprintf(stderr, "comx_fuzz: harness error: %s\n",
                 report.status().ToString().c_str());
    return 2;
  }

  std::printf(
      "comx_fuzz: %lld scenarios, %lld matcher runs, %lld OFF upper-bound "
      "checks, %lld brute-force differentials, %lld crash-recovery checks, "
      "%zu violation(s)%s\n",
      static_cast<long long>(report->scenarios_run),
      static_cast<long long>(report->matcher_runs),
      static_cast<long long>(report->differential.off_bounds),
      static_cast<long long>(report->differential.brute_force),
      static_cast<long long>(report->crash_checks),
      report->failures.size(),
      report->time_budget_exhausted ? " [time budget hit]" : "");
  for (const check::FuzzFailure& f : report->failures) {
    std::printf("violation: scenario %llu, matcher %s, shrunk %lld -> %lld "
                "entities\n",
                static_cast<unsigned long long>(f.scenario_index),
                check::MatcherKindName(f.kind),
                static_cast<long long>(f.entities_before),
                static_cast<long long>(f.entities_after));
    for (const check::OracleViolation& v : f.violations) {
      std::printf("  [%s] %s\n", v.oracle.c_str(), v.detail.c_str());
    }
    std::printf("  replay: %s\n", f.replay_command.c_str());
  }
  return report->failures.empty() ? 0 : 1;
}

}  // namespace
}  // namespace comx

int main(int argc, char** argv) {
  // SIGINT/SIGTERM flush progress logs and repro files in flight, then
  // exit 128+signo — distinct from the 0/1/2 contract above.
  comx::InstallShutdownGuard();
  comx::RegisterShutdownFlushFile(stderr);
  comx::RegisterShutdownFlushFile(stdout);
  const int rc = comx::Main(argc, argv);
  // The fuzz loop polls the shutdown flag between scenarios and returns a
  // partial report; the 128+signo exit code still wins over 0/1/2.
  if (comx::ShutdownRequested()) return comx::DrainShutdown();
  return rc;
}
