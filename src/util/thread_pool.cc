#include "util/thread_pool.h"

#include <algorithm>
#include <stdexcept>

namespace comx {
namespace {

/// Decrements `pool->in_flight_` when the enclosing scope exits — on the
/// normal path and when the task throws — so Wait() can never deadlock on
/// a lost decrement.
class InFlightGuard {
 public:
  InFlightGuard(std::mutex* mutex, size_t* in_flight,
                std::condition_variable* all_done)
      : mutex_(mutex), in_flight_(in_flight), all_done_(all_done) {}

  ~InFlightGuard() {
    std::unique_lock<std::mutex> lock(*mutex_);
    if (--*in_flight_ == 0) all_done_->notify_all();
  }

  InFlightGuard(const InFlightGuard&) = delete;
  InFlightGuard& operator=(const InFlightGuard&) = delete;

 private:
  std::mutex* mutex_;
  size_t* in_flight_;
  std::condition_variable* all_done_;
};

}  // namespace

ThreadPool::ThreadPool(size_t threads) {
  if (threads == 0) {
    threads = std::max<size_t>(1, std::thread::hardware_concurrency());
  }
  workers_.reserve(threads);
  for (size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() { Shutdown(); }

void ThreadPool::Shutdown() {
  {
    std::unique_lock<std::mutex> lock(mutex_);
    if (shutdown_) return;
    shutdown_ = true;
  }
  task_ready_.notify_all();
  for (std::thread& worker : workers_) worker.join();
  workers_.clear();
}

void ThreadPool::Submit(std::function<void()> task) {
  {
    std::unique_lock<std::mutex> lock(mutex_);
    if (shutdown_) {
      // A task racing the drain would be silently stranded in the queue
      // (workers exit once it is empty) or run on a half-joined pool —
      // either way a bug at the call site, so it fails loudly here.
      throw std::logic_error(
          "ThreadPool::Submit called during/after Shutdown");
    }
    tasks_.push(std::move(task));
    ++in_flight_;
  }
  task_ready_.notify_one();
}

void ThreadPool::Wait() {
  std::unique_lock<std::mutex> lock(mutex_);
  all_done_.wait(lock, [this] { return in_flight_ == 0; });
  if (first_exception_ != nullptr) {
    std::exception_ptr e = nullptr;
    std::swap(e, first_exception_);
    lock.unlock();
    std::rethrow_exception(e);
  }
}

void ThreadPool::WorkerLoop() {
  while (true) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      task_ready_.wait(lock, [this] { return shutdown_ || !tasks_.empty(); });
      if (tasks_.empty()) {
        if (shutdown_) return;
        continue;
      }
      task = std::move(tasks_.front());
      tasks_.pop();
    }
    {
      InFlightGuard guard(&mutex_, &in_flight_, &all_done_);
      try {
        task();
      } catch (...) {
        std::unique_lock<std::mutex> lock(mutex_);
        if (first_exception_ == nullptr) {
          first_exception_ = std::current_exception();
        }
      }
    }
  }
}

void ParallelFor(ThreadPool& pool, size_t count,
                 const std::function<void(size_t)>& fn) {
  for (size_t i = 0; i < count; ++i) {
    pool.Submit([&fn, i] { fn(i); });
  }
  pool.Wait();
}

void ParallelFor(size_t count, size_t threads,
                 const std::function<void(size_t)>& fn) {
  if (count == 0) return;
  if (threads <= 1 || count == 1) {
    for (size_t i = 0; i < count; ++i) fn(i);
    return;
  }
  ThreadPool pool(std::min(threads, count));
  ParallelFor(pool, count, fn);
}

}  // namespace comx
