#include "core/ram_com.h"

#include <cmath>
#include <iterator>
#include <set>

#include <gtest/gtest.h>

#include "testing/builders.h"
#include "testing/fake_view.h"

namespace comx {
namespace {

using testing_fixtures::FakeView;
using testing_fixtures::MakeRequest;
using testing_fixtures::MakeWorker;
using testing_fixtures::PaperExample;

TEST(RamComTest, ThresholdIsPowerOfEBelowTheta) {
  // Max value 9 -> theta = ceil(ln 10) = 3; exponents drawn from {0, 1, 2}
  // (Greedy-RT convention; see ram_com.cc for why not the literal
  // {1..theta}).
  const Instance ins = PaperExample();
  std::set<double> seen;
  for (uint64_t seed = 0; seed < 60; ++seed) {
    RamCom ram;
    ram.Reset(ins, 0, seed);
    const double k = std::log(ram.threshold());
    EXPECT_NEAR(k, std::round(k), 1e-9);
    EXPECT_GE(std::lround(k), 0);
    EXPECT_LE(std::lround(k), 2);
    seen.insert(ram.threshold());
  }
  EXPECT_EQ(seen.size(), 3u);
}

TEST(RamComTest, ThetaForEdgeCases) {
  // theta = max(1, ceil(ln(max_value + 1))), so degenerate value
  // distributions still get a valid one-arm lottery.
  EXPECT_EQ(RamCom::ThetaFor(0.0), 1);
  EXPECT_EQ(RamCom::ThetaFor(1.0), 1);  // ceil(ln 2) = 1
  EXPECT_EQ(RamCom::ThetaFor(100.0), 5);  // ceil(ln 101) = 5
}

TEST(RamComTest, ZeroValueInstancePinsThresholdToOne) {
  // All request values 0 -> theta = 1 -> the only arm is k = 0, so the
  // threshold is e^0 = 1 for every seed.
  Instance ins;
  ins.AddWorker(MakeWorker(0, 1, 0.0, 0, 2.0));
  ins.AddRequest(MakeRequest(0, 2, 0, 0, 0.0));
  ins.AddRequest(MakeRequest(0, 3, 0, 0, 0.0));
  ins.BuildEvents();
  for (uint64_t seed = 0; seed < 32; ++seed) {
    RamCom ram;
    ram.Reset(ins, 0, seed);
    EXPECT_DOUBLE_EQ(ram.threshold(), 1.0) << "seed " << seed;
  }
}

TEST(RamComTest, AllEqualValuesDrawBothArms) {
  // Uniform value 5 -> theta = ceil(ln 6) = 2: the lottery has exactly the
  // arms {e^0, e^1} and a fair sample of seeds must hit both.
  Instance ins;
  ins.AddWorker(MakeWorker(0, 1, 0.0, 0, 2.0));
  for (int i = 0; i < 4; ++i) {
    ins.AddRequest(MakeRequest(0, 2.0 + i, 0, 0, 5.0));
  }
  ins.BuildEvents();
  std::set<double> seen;
  for (uint64_t seed = 0; seed < 64; ++seed) {
    RamCom ram;
    ram.Reset(ins, 0, seed);
    seen.insert(ram.threshold());
  }
  ASSERT_EQ(seen.size(), 2u);
  EXPECT_DOUBLE_EQ(*seen.begin(), 1.0);
  EXPECT_DOUBLE_EQ(*std::next(seen.begin()), std::exp(1.0));
}

TEST(RamComTest, HighValueRequestGoesToInnerWorker) {
  Instance ins;
  ins.AddWorker(MakeWorker(0, 1, 0.0, 0, 2.0));
  ins.AddWorker(MakeWorker(1, 1, 0.0, 0, 2.0, {0.01}));
  ins.AddRequest(MakeRequest(0, 2, 0, 0, 100.0));  // pins theta
  ins.BuildEvents();
  FakeView view(ins, 0);
  RamCom ram;
  ram.Reset(ins, 0, 1);
  // Any threshold e^k with k <= theta=5 is < 100: value 100 goes inner.
  const Decision d = ram.OnRequest(MakeRequest(0, 2, 0, 0, 100.0), view);
  EXPECT_EQ(d.kind, Decision::Kind::kInner);
  EXPECT_EQ(d.worker, 0);
}

TEST(RamComTest, LowValueRequestPrefersOuterEvenWithInnerFree) {
  Instance ins;
  ins.AddWorker(MakeWorker(0, 1, 0.0, 0, 2.0));             // free inner
  ins.AddWorker(MakeWorker(1, 1, 0.0, 0, 2.0, {0.01}));     // eager outer
  ins.AddRequest(MakeRequest(0, 2, 0, 0, 1000.0));          // theta = 7
  ins.BuildEvents();
  FakeView view(ins, 0);
  RamCom ram;
  // Pick a seed with threshold > 2 so a value-2 request is "low".
  for (uint64_t seed = 0;; ++seed) {
    ram.Reset(ins, 0, seed);
    if (ram.threshold() > 2.0) break;
    ASSERT_LT(seed, 1000u);
  }
  const Decision d = ram.OnRequest(MakeRequest(0, 2, 0, 0, 2.0), view);
  // The low-value request is offered to outer workers, never the inner one.
  EXPECT_TRUE(d.attempted_outer || d.kind == Decision::Kind::kReject);
  EXPECT_NE(d.kind, Decision::Kind::kInner);
}

TEST(RamComTest, HighValueFallsThroughToOuterWhenNoInnerFree) {
  // Example 3 semantics: v > threshold but no inner worker -> cooperative.
  Instance ins;
  ins.AddWorker(MakeWorker(1, 1, 0.0, 0, 2.0, {0.01}));
  ins.AddRequest(MakeRequest(0, 2, 0, 0, 50.0));
  ins.BuildEvents();
  FakeView view(ins, 0);
  RamCom ram;
  ram.Reset(ins, 0, 2);
  const Decision d = ram.OnRequest(MakeRequest(0, 2, 0, 0, 50.0), view);
  ASSERT_EQ(d.kind, Decision::Kind::kOuter);
  EXPECT_GT(d.outer_payment, 0.0);
}

TEST(RamComTest, RandomInnerChoiceCoversAllCandidates) {
  Instance ins;
  ins.AddWorker(MakeWorker(0, 1, 0.1, 0, 2.0));
  ins.AddWorker(MakeWorker(0, 1, 0.2, 0, 2.0));
  ins.AddWorker(MakeWorker(0, 1, 0.3, 0, 2.0));
  ins.AddRequest(MakeRequest(0, 2, 0, 0, 100.0));
  ins.BuildEvents();
  std::set<WorkerId> chosen;
  for (uint64_t seed = 0; seed < 60; ++seed) {
    FakeView view(ins, 0);
    RamCom ram;
    ram.Reset(ins, 0, seed);
    const Decision d = ram.OnRequest(MakeRequest(0, 2, 0, 0, 100.0), view);
    ASSERT_EQ(d.kind, Decision::Kind::kInner);
    chosen.insert(d.worker);
  }
  EXPECT_EQ(chosen.size(), 3u);  // all three inner workers get picked
}

TEST(RamComTest, UsesMerPaymentNotMinimum) {
  // Outer worker accepts >= 4 surely. MER quotes exactly 4 (prob 1), so a
  // successful borrow pays 4 and earns v - 4. A high-value dummy request
  // pushes theta up so thresholds above 10 exist.
  Instance ins;
  ins.AddWorker(MakeWorker(1, 1, 0.0, 0, 2.0, {4.0}));
  ins.AddRequest(MakeRequest(0, 2, 0, 0, 10.0));
  ins.AddRequest(MakeRequest(0, 3, 50, 50, 1000.0));
  ins.BuildEvents();
  FakeView view(ins, 0);
  RamCom ram;
  for (uint64_t seed = 0;; ++seed) {
    ram.Reset(ins, 0, seed);
    if (ram.threshold() > 10.0) break;  // force the outer path
    ASSERT_LT(seed, 1000u);
  }
  const Decision d = ram.OnRequest(MakeRequest(0, 2, 0, 0, 10.0), view);
  ASSERT_EQ(d.kind, Decision::Kind::kOuter);
  EXPECT_DOUBLE_EQ(d.outer_payment, 4.0);
  EXPECT_EQ(ram.diagnostics().outer_accepts, 1);
}

TEST(RamComTest, RejectsWhenNoOuterCandidates) {
  Instance ins;
  ins.AddWorker(MakeWorker(0, 10, 0.0, 0, 2.0));  // inner, arrives too late
  ins.AddRequest(MakeRequest(0, 2, 0, 0, 1.0));
  ins.BuildEvents();
  FakeView view(ins, 0);
  RamCom ram;
  ram.Reset(ins, 0, 1);
  const Decision d = ram.OnRequest(MakeRequest(0, 2, 0, 0, 1.0), view);
  EXPECT_EQ(d.kind, Decision::Kind::kReject);
  EXPECT_FALSE(d.attempted_outer);
}

TEST(RamComTest, DeterministicGivenSeed) {
  const Instance ins = PaperExample();
  auto run = [&](uint64_t seed) {
    FakeView view(ins, 0);
    RamCom ram;
    ram.Reset(ins, 0, seed);
    std::vector<Decision::Kind> kinds;
    for (const Request& r : ins.requests()) {
      const Decision d = ram.OnRequest(r, view);
      kinds.push_back(d.kind);
      if (d.kind != Decision::Kind::kReject) view.MarkOccupied(d.worker);
    }
    return kinds;
  };
  EXPECT_EQ(run(4), run(4));
}

TEST(RamComTest, NameIsStable) { EXPECT_EQ(RamCom().name(), "RamCOM"); }

}  // namespace
}  // namespace comx
