#include "exp/bench_record.h"

#include <cstdio>
#include <string>
#include <vector>

#include <gtest/gtest.h>

namespace comx {
namespace exp {
namespace {

std::string TempPath(const char* name) {
  return testing::TempDir() + "/" + name;
}

BenchRecord MakeRecord(const std::string& name, double revenue) {
  BenchRecord record;
  record.name = name;
  record.numbers["revenue"] = revenue;
  record.numbers["completed"] = 42.0;
  record.numbers["wall_seconds"] = 1.25;
  record.strings["dataset"] = "synthetic";
  return record;
}

TEST(BenchRecordTest, SerializeIsFlatAndTagged) {
  const std::string line = SerializeBenchRecord(MakeRecord("a", 10.5));
  EXPECT_NE(line.find("\"schema\":\"comx-bench-sweep-v1\""),
            std::string::npos);
  EXPECT_NE(line.find("\"name\":\"a\""), std::string::npos);
  EXPECT_NE(line.find("\"revenue\":10.5"), std::string::npos);
  EXPECT_EQ(line.find('\n'), std::string::npos);
}

TEST(BenchRecordTest, WriteReadRoundTrip) {
  const std::string path = TempPath("bench_record_roundtrip.json");
  const std::vector<BenchRecord> records = {MakeRecord("a", 10.5),
                                            MakeRecord("b", -3.25)};
  ASSERT_TRUE(WriteBenchRecords(path, records).ok());
  auto loaded = ReadBenchRecords(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  ASSERT_EQ(loaded->size(), 2u);
  EXPECT_EQ((*loaded)[0].name, "a");
  EXPECT_EQ((*loaded)[0].numbers.at("revenue"), 10.5);
  EXPECT_EQ((*loaded)[0].strings.at("dataset"), "synthetic");
  EXPECT_EQ((*loaded)[1].numbers.at("revenue"), -3.25);
  std::remove(path.c_str());
}

TEST(BenchRecordTest, ReadRejectsDuplicateNamesAndBadSchema) {
  const std::string path = TempPath("bench_record_bad.json");
  {
    std::FILE* f = std::fopen(path.c_str(), "w");
    ASSERT_NE(f, nullptr);
    std::fputs(
        "{\"schema\":\"comx-bench-sweep-v1\",\"name\":\"a\",\"x\":1}\n"
        "{\"schema\":\"comx-bench-sweep-v1\",\"name\":\"a\",\"x\":2}\n",
        f);
    std::fclose(f);
  }
  EXPECT_FALSE(ReadBenchRecords(path).ok());
  {
    std::FILE* f = std::fopen(path.c_str(), "w");
    ASSERT_NE(f, nullptr);
    std::fputs("{\"schema\":\"other-v9\",\"name\":\"a\",\"x\":1}\n", f);
    std::fclose(f);
  }
  EXPECT_FALSE(ReadBenchRecords(path).ok());
  {
    std::FILE* f = std::fopen(path.c_str(), "w");
    ASSERT_NE(f, nullptr);
    std::fputs("{\"name\":\"a\",\"x\":1}\n", f);
    std::fclose(f);
  }
  EXPECT_FALSE(ReadBenchRecords(path).ok());
  std::remove(path.c_str());
}

TEST(BenchRecordTest, CompareAcceptsIdenticalAndTinyDrift) {
  const std::vector<BenchRecord> baseline = {MakeRecord("a", 100.0)};
  std::vector<BenchRecord> current = {MakeRecord("a", 100.0)};
  EXPECT_TRUE(CompareBenchRecords(baseline, current).ok());
  current[0].numbers["revenue"] = 100.0 * (1.0 + 1e-12);
  EXPECT_TRUE(CompareBenchRecords(baseline, current).ok());
}

TEST(BenchRecordTest, CompareFlagsRealDrift) {
  const std::vector<BenchRecord> baseline = {MakeRecord("a", 100.0)};
  std::vector<BenchRecord> current = {MakeRecord("a", 100.1)};
  const BenchCompareResult result =
      CompareBenchRecords(baseline, current);
  ASSERT_FALSE(result.ok());
  EXPECT_NE(result.mismatches[0].find("a.revenue"), std::string::npos);
}

TEST(BenchRecordTest, TimingFieldsAreInformationalOnly) {
  const std::vector<BenchRecord> baseline = {MakeRecord("a", 100.0)};
  std::vector<BenchRecord> current = {MakeRecord("a", 100.0)};
  current[0].numbers["wall_seconds"] = 99.0;  // wildly different timing
  const BenchCompareResult result =
      CompareBenchRecords(baseline, current);
  EXPECT_TRUE(result.ok());
  bool noted = false;
  for (const std::string& note : result.notes) {
    if (note.find("wall_seconds") != std::string::npos) noted = true;
  }
  EXPECT_TRUE(noted);
}

TEST(BenchRecordTest, CompareFlagsMissingRecordsAndNotesNewOnes) {
  const std::vector<BenchRecord> baseline = {MakeRecord("a", 1.0),
                                             MakeRecord("b", 2.0)};
  const std::vector<BenchRecord> current = {MakeRecord("a", 1.0),
                                            MakeRecord("c", 3.0)};
  const BenchCompareResult result =
      CompareBenchRecords(baseline, current);
  ASSERT_EQ(result.mismatches.size(), 1u);
  EXPECT_NE(result.mismatches[0].find("'b'"), std::string::npos);
  bool new_noted = false;
  for (const std::string& note : result.notes) {
    if (note.find("'c'") != std::string::npos) new_noted = true;
  }
  EXPECT_TRUE(new_noted);
}

}  // namespace
}  // namespace exp
}  // namespace comx
