#include "recovery/wal.h"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>

#include "obs/metrics_registry.h"
#include "obs/span.h"
#include "util/crc32c.h"
#include "util/string_util.h"

namespace comx {
namespace recovery {
namespace {

Status IoError(const std::string& what, const std::string& path) {
  return Status::IoError(
      StrFormat("wal: %s %s: %s", what.c_str(), path.c_str(),
                std::strerror(errno)));
}

void EncodeStepRecord(const StepRecord& r, ByteWriter* w) {
  w->I64(r.step);
  w->U8(static_cast<uint8_t>(r.kind));
  w->I64(r.worker);
  w->F64(r.x);
  w->F64(r.y);
  w->F64(r.time);
  w->Bool(r.rearrival);
  w->I64(r.request);
  w->I32(r.platform);
  w->U8(static_cast<uint8_t>(r.outcome));
  w->F64(r.value);
  w->F64(r.payment);
  w->F64(r.revenue);
  w->F64(r.pickup_km);
  w->I32(r.stats.inner_candidates);
  w->I32(r.stats.outer_candidates);
  w->I32(r.stats.priced_candidates);
  w->I32(r.stats.accepting);
  w->I64(r.stats.bisect_iterations);
  w->I32(r.stats.estimator_samples);
  w->F64(r.stats.estimated_payment);
  w->I32(r.fault.retries);
  w->I32(r.fault.failed_partners);
  w->I32(r.fault.reserve_conflicts);
  w->Bool(r.fault.degraded);
}

Status DecodeStepRecord(ByteReader* in, StepRecord* r) {
  COMX_RETURN_IF_ERROR(in->I64(&r->step));
  uint8_t kind;
  COMX_RETURN_IF_ERROR(in->U8(&kind));
  r->kind = static_cast<StepRecord::Kind>(kind);
  COMX_RETURN_IF_ERROR(in->I64(&r->worker));
  COMX_RETURN_IF_ERROR(in->F64(&r->x));
  COMX_RETURN_IF_ERROR(in->F64(&r->y));
  COMX_RETURN_IF_ERROR(in->F64(&r->time));
  COMX_RETURN_IF_ERROR(in->Bool(&r->rearrival));
  COMX_RETURN_IF_ERROR(in->I64(&r->request));
  COMX_RETURN_IF_ERROR(in->I32(&r->platform));
  uint8_t outcome;
  COMX_RETURN_IF_ERROR(in->U8(&outcome));
  r->outcome = static_cast<int8_t>(outcome);
  COMX_RETURN_IF_ERROR(in->F64(&r->value));
  COMX_RETURN_IF_ERROR(in->F64(&r->payment));
  COMX_RETURN_IF_ERROR(in->F64(&r->revenue));
  COMX_RETURN_IF_ERROR(in->F64(&r->pickup_km));
  COMX_RETURN_IF_ERROR(in->I32(&r->stats.inner_candidates));
  COMX_RETURN_IF_ERROR(in->I32(&r->stats.outer_candidates));
  COMX_RETURN_IF_ERROR(in->I32(&r->stats.priced_candidates));
  COMX_RETURN_IF_ERROR(in->I32(&r->stats.accepting));
  COMX_RETURN_IF_ERROR(in->I64(&r->stats.bisect_iterations));
  COMX_RETURN_IF_ERROR(in->I32(&r->stats.estimator_samples));
  COMX_RETURN_IF_ERROR(in->F64(&r->stats.estimated_payment));
  COMX_RETURN_IF_ERROR(in->I32(&r->fault.retries));
  COMX_RETURN_IF_ERROR(in->I32(&r->fault.failed_partners));
  COMX_RETURN_IF_ERROR(in->I32(&r->fault.reserve_conflicts));
  COMX_RETURN_IF_ERROR(in->Bool(&r->fault.degraded));
  return Status::OK();
}

void CountMetric(const char* name, const char* help, int64_t n) {
  if (!obs::CollectionEnabled() || n == 0) return;
  obs::MetricsRegistry::Global().GetCounter(name, help)->Inc(n);
}

}  // namespace

const char* WalRecordTypeName(WalRecordType type) {
  switch (type) {
    case WalRecordType::kRunBegin: return "run_begin";
    case WalRecordType::kArrival: return "arrival";
    case WalRecordType::kOuterReserve: return "outer_reserve";
    case WalRecordType::kOuterConflict: return "outer_conflict";
    case WalRecordType::kOuterConfirm: return "outer_confirm";
    case WalRecordType::kBreakerState: return "breaker_state";
    case WalRecordType::kDecision: return "decision";
    case WalRecordType::kCheckpointMark: return "checkpoint_mark";
    case WalRecordType::kRecoveryMark: return "recovery_mark";
    case WalRecordType::kRunEnd: return "run_end";
  }
  return "unknown";
}

bool IsStepBoundary(WalRecordType type) {
  switch (type) {
    case WalRecordType::kRunBegin:
    case WalRecordType::kArrival:
    case WalRecordType::kDecision:
    case WalRecordType::kCheckpointMark:
    case WalRecordType::kRecoveryMark:
    case WalRecordType::kRunEnd:
      return true;
    case WalRecordType::kOuterReserve:
    case WalRecordType::kOuterConflict:
    case WalRecordType::kOuterConfirm:
    case WalRecordType::kBreakerState:
      return false;
  }
  return false;
}

std::string EncodeWalPayload(const WalRecord& rec, bool for_compare) {
  ByteWriter w;
  w.U8(static_cast<uint8_t>(rec.type));
  w.U64(for_compare ? 0 : rec.lsn);
  switch (rec.type) {
    case WalRecordType::kRunBegin:
      w.U64(rec.seed);
      w.I32(rec.platform_count);
      w.Bool(rec.has_fault_plan);
      w.U64(rec.instance_digest);
      w.U64(rec.config_digest);
      break;
    case WalRecordType::kArrival:
      EncodeStepRecord(rec.step_record, &w);
      break;
    case WalRecordType::kOuterReserve:
    case WalRecordType::kOuterConflict:
    case WalRecordType::kOuterConfirm:
      w.I64(rec.step);
      w.I64(rec.request);
      w.I32(rec.observer);
      w.I32(rec.partner);
      w.I64(rec.worker);
      break;
    case WalRecordType::kBreakerState:
      w.I64(rec.step);
      w.I32(rec.observer);
      w.I32(rec.partner);
      w.U8(rec.breaker_state);
      w.I64(rec.transitions);
      break;
    case WalRecordType::kDecision:
      EncodeStepRecord(rec.step_record, &w);
      w.U64(rec.state_digest);
      break;
    case WalRecordType::kCheckpointMark:
      w.I64(rec.step);
      w.I64(rec.generation);
      break;
    case WalRecordType::kRecoveryMark:
      w.I64(rec.resumed_step);
      w.I64(rec.inflight_reserves);
      break;
    case WalRecordType::kRunEnd:
      w.I64(rec.step);
      w.F64(rec.total_revenue);
      w.I64(rec.assignments);
      break;
  }
  return w.Take();
}

namespace {

Status DecodeWalPayloadImpl(std::string_view payload, WalRecord* rec) {
  *rec = WalRecord();
  ByteReader in(payload);
  uint8_t type;
  COMX_RETURN_IF_ERROR(in.U8(&type));
  if (type < static_cast<uint8_t>(WalRecordType::kRunBegin) ||
      type > static_cast<uint8_t>(WalRecordType::kRunEnd)) {
    return Status::DataLoss(
        StrFormat("wal: unknown record type %d", static_cast<int>(type)));
  }
  rec->type = static_cast<WalRecordType>(type);
  COMX_RETURN_IF_ERROR(in.U64(&rec->lsn));
  switch (rec->type) {
    case WalRecordType::kRunBegin:
      COMX_RETURN_IF_ERROR(in.U64(&rec->seed));
      COMX_RETURN_IF_ERROR(in.I32(&rec->platform_count));
      COMX_RETURN_IF_ERROR(in.Bool(&rec->has_fault_plan));
      COMX_RETURN_IF_ERROR(in.U64(&rec->instance_digest));
      COMX_RETURN_IF_ERROR(in.U64(&rec->config_digest));
      break;
    case WalRecordType::kArrival:
      COMX_RETURN_IF_ERROR(DecodeStepRecord(&in, &rec->step_record));
      rec->step = rec->step_record.step;
      break;
    case WalRecordType::kOuterReserve:
    case WalRecordType::kOuterConflict:
    case WalRecordType::kOuterConfirm:
      COMX_RETURN_IF_ERROR(in.I64(&rec->step));
      COMX_RETURN_IF_ERROR(in.I64(&rec->request));
      COMX_RETURN_IF_ERROR(in.I32(&rec->observer));
      COMX_RETURN_IF_ERROR(in.I32(&rec->partner));
      COMX_RETURN_IF_ERROR(in.I64(&rec->worker));
      break;
    case WalRecordType::kBreakerState:
      COMX_RETURN_IF_ERROR(in.I64(&rec->step));
      COMX_RETURN_IF_ERROR(in.I32(&rec->observer));
      COMX_RETURN_IF_ERROR(in.I32(&rec->partner));
      COMX_RETURN_IF_ERROR(in.U8(&rec->breaker_state));
      COMX_RETURN_IF_ERROR(in.I64(&rec->transitions));
      break;
    case WalRecordType::kDecision:
      COMX_RETURN_IF_ERROR(DecodeStepRecord(&in, &rec->step_record));
      COMX_RETURN_IF_ERROR(in.U64(&rec->state_digest));
      rec->step = rec->step_record.step;
      break;
    case WalRecordType::kCheckpointMark:
      COMX_RETURN_IF_ERROR(in.I64(&rec->step));
      COMX_RETURN_IF_ERROR(in.I64(&rec->generation));
      break;
    case WalRecordType::kRecoveryMark:
      COMX_RETURN_IF_ERROR(in.I64(&rec->resumed_step));
      COMX_RETURN_IF_ERROR(in.I64(&rec->inflight_reserves));
      break;
    case WalRecordType::kRunEnd:
      COMX_RETURN_IF_ERROR(in.I64(&rec->step));
      COMX_RETURN_IF_ERROR(in.F64(&rec->total_revenue));
      COMX_RETURN_IF_ERROR(in.I64(&rec->assignments));
      break;
  }
  if (!in.AtEnd()) {
    return Status::DataLoss(
        StrFormat("wal: %zu trailing bytes in %s payload", in.Remaining(),
                  WalRecordTypeName(rec->type)));
  }
  return Status::OK();
}

}  // namespace

Status DecodeWalPayload(std::string_view payload, WalRecord* rec) {
  Status status = DecodeWalPayloadImpl(payload, rec);
  if (!status.ok() && status.code() != StatusCode::kDataLoss) {
    // ByteReader reports truncation as OutOfRange; a short payload inside
    // a CRC-valid frame is corruption, and callers dispatch on DataLoss.
    return Status::DataLoss("wal: truncated record body: " +
                            status.message());
  }
  return status;
}

WalWriter::WalWriter(int fd, const WalWriterOptions& options,
                     int64_t durable_bytes, uint64_t next_lsn,
                     CrashInjector* crash)
    : fd_(fd),
      options_(options),
      crash_(crash),
      durable_bytes_(durable_bytes),
      next_lsn_(next_lsn) {}

WalWriter::~WalWriter() {
  if (fd_ >= 0) ::close(fd_);
}

Result<std::unique_ptr<WalWriter>> WalWriter::Create(
    const std::string& path, const WalWriterOptions& options,
    CrashInjector* crash) {
  const int fd =
      ::open(path.c_str(), O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC, 0644);
  if (fd < 0) return IoError("cannot create", path);
  auto writer = std::unique_ptr<WalWriter>(
      new WalWriter(fd, options, 0, 0, crash));
  // The header rides the first commit's buffer so a crash with offset
  // inside [0, 16) leaves a torn header, exactly like a real kill.
  ByteWriter header;
  for (char c : kWalMagic) header.U8(static_cast<uint8_t>(c));
  header.U32(kWalVersion);
  header.U32(0);  // reserved
  writer->buffer_ = header.Take();
  return writer;
}

Result<std::unique_ptr<WalWriter>> WalWriter::OpenForAppend(
    const std::string& path, const WalWriterOptions& options,
    int64_t durable_bytes, uint64_t next_lsn, CrashInjector* crash) {
  const int fd = ::open(path.c_str(), O_WRONLY | O_CLOEXEC);
  if (fd < 0) return IoError("cannot open", path);
  if (::ftruncate(fd, static_cast<off_t>(durable_bytes)) != 0) {
    ::close(fd);
    return IoError("cannot truncate", path);
  }
  if (::lseek(fd, 0, SEEK_END) < 0) {
    ::close(fd);
    return IoError("cannot seek", path);
  }
  if (::fsync(fd) != 0) {
    ::close(fd);
    return IoError("cannot fsync", path);
  }
  return std::unique_ptr<WalWriter>(
      new WalWriter(fd, options, durable_bytes, next_lsn, crash));
}

Status WalWriter::Append(WalRecord* rec) {
  if (fd_ < 0) return Status::FailedPrecondition("wal: writer is closed");
  if (dead_) return Status::DataLoss("injected crash: wal writer is dead");
  rec->lsn = next_lsn_++;
  const std::string payload = EncodeWalPayload(*rec);
  ByteWriter frame;
  frame.U32(static_cast<uint32_t>(payload.size()));
  frame.U32(Crc32cMask(Crc32c(payload.data(), payload.size())));
  buffer_ += frame.str();
  buffer_ += payload;
  ++buffered_records_;
  ++records_appended_;
  CountMetric("comx_recovery_wal_records_total", "WAL records appended", 1);
  if (buffered_records_ >= options_.group_commit_records ||
      static_cast<int64_t>(buffer_.size()) >= options_.group_commit_bytes) {
    return Commit();
  }
  return Status::OK();
}

Status WalWriter::Commit() {
  if (fd_ < 0) return Status::FailedPrecondition("wal: writer is closed");
  if (dead_) return Status::DataLoss("injected crash: wal writer is dead");
  if (buffer_.empty()) return Status::OK();
  COMX_SPAN("wal_commit");
  const int64_t want = static_cast<int64_t>(buffer_.size());
  const int64_t allowed = crash_ ? crash_->AllowWalBytes(want) : want;
  int64_t written = 0;
  while (written < allowed) {
    const ssize_t n = ::write(fd_, buffer_.data() + written,
                              static_cast<size_t>(allowed - written));
    if (n < 0) {
      if (errno == EINTR) continue;
      return IoError("write failed", "wal");
    }
    written += n;
  }
  if (::fsync(fd_) != 0) return IoError("fsync failed", "wal");
  durable_bytes_ += written;
  CountMetric("comx_recovery_wal_bytes_total", "WAL bytes made durable",
              written);
  if (allowed < want) {
    dead_ = true;
    return Status::DataLoss(StrFormat(
        "injected crash: wal torn after %lld durable bytes",
        static_cast<long long>(durable_bytes_)));
  }
  buffer_.clear();
  buffered_records_ = 0;
  ++commits_;
  commit_offsets_.push_back(durable_bytes_);
  CountMetric("comx_recovery_wal_commits_total",
              "WAL group commits (fsync batches)", 1);
  return Status::OK();
}

Status WalWriter::Close() {
  if (fd_ < 0) return Status::OK();
  const Status commit = dead_ ? Status::OK() : Commit();
  const int rc = ::close(fd_);
  fd_ = -1;
  COMX_RETURN_IF_ERROR(commit);
  if (rc != 0) return IoError("close failed", "wal");
  return Status::OK();
}

Result<WalScan> ScanWal(const std::string& path) {
  std::string bytes;
  {
    FILE* f = std::fopen(path.c_str(), "rb");
    if (f == nullptr) return IoError("cannot read", path);
    char chunk[1 << 16];
    size_t n;
    while ((n = std::fread(chunk, 1, sizeof(chunk), f)) > 0) {
      bytes.append(chunk, n);
    }
    const bool bad = std::ferror(f) != 0;
    std::fclose(f);
    if (bad) return IoError("read failed", path);
  }

  WalScan scan;
  scan.file_bytes = static_cast<int64_t>(bytes.size());
  if (scan.file_bytes < kWalHeaderBytes) {
    scan.torn_header = true;
    scan.torn_tail = scan.file_bytes > 0;
    scan.tail_warning = StrFormat(
        "wal: torn header (%lld of %lld bytes)",
        static_cast<long long>(scan.file_bytes),
        static_cast<long long>(kWalHeaderBytes));
    return scan;
  }
  if (std::memcmp(bytes.data(), kWalMagic, sizeof(kWalMagic)) != 0) {
    return Status::DataLoss("wal: bad magic in " + path);
  }
  {
    ByteReader header(std::string_view(bytes).substr(sizeof(kWalMagic)));
    uint32_t version;
    COMX_RETURN_IF_ERROR(header.U32(&version));
    if (version != kWalVersion) {
      return Status::DataLoss(
          StrFormat("wal: unsupported version %u", version));
    }
  }

  int64_t pos = kWalHeaderBytes;
  scan.valid_bytes = pos;
  scan.boundary_bytes = pos;
  uint64_t expect_lsn = 0;
  while (pos + kWalFrameOverhead <= scan.file_bytes) {
    ByteReader frame(std::string_view(bytes).substr(
        static_cast<size_t>(pos), static_cast<size_t>(kWalFrameOverhead)));
    uint32_t len, masked_crc;
    (void)frame.U32(&len);
    (void)frame.U32(&masked_crc);
    const int64_t end = pos + kWalFrameOverhead + static_cast<int64_t>(len);
    if (end > scan.file_bytes) {
      scan.tail_warning = StrFormat(
          "wal: torn frame at offset %lld (%u byte payload, %lld available)",
          static_cast<long long>(pos), len,
          static_cast<long long>(scan.file_bytes - pos - kWalFrameOverhead));
      break;
    }
    const std::string_view payload(bytes.data() + pos + kWalFrameOverhead,
                                   len);
    if (Crc32cMask(Crc32c(payload.data(), payload.size())) != masked_crc) {
      scan.tail_warning = StrFormat(
          "wal: crc mismatch at offset %lld", static_cast<long long>(pos));
      break;
    }
    WalRecord rec;
    const Status decoded = DecodeWalPayload(payload, &rec);
    if (!decoded.ok()) {
      scan.tail_warning = StrFormat(
          "wal: undecodable frame at offset %lld: %s",
          static_cast<long long>(pos), decoded.ToString().c_str());
      break;
    }
    if (rec.lsn != expect_lsn) {
      scan.tail_warning = StrFormat(
          "wal: lsn discontinuity at offset %lld (got %llu, want %llu)",
          static_cast<long long>(pos),
          static_cast<unsigned long long>(rec.lsn),
          static_cast<unsigned long long>(expect_lsn));
      break;
    }
    ++expect_lsn;
    scan.records.push_back(std::move(rec));
    scan.payloads.emplace_back(payload);
    pos = end;
    scan.valid_bytes = pos;
    if (IsStepBoundary(scan.records.back().type)) {
      scan.boundary_records = scan.records.size();
      scan.boundary_bytes = pos;
    }
  }
  if (scan.valid_bytes < scan.file_bytes) {
    scan.torn_tail = true;
    if (scan.tail_warning.empty()) {
      scan.tail_warning = StrFormat(
          "wal: %lld trailing bytes beyond the last complete frame",
          static_cast<long long>(scan.file_bytes - scan.valid_bytes));
    }
  }
  for (size_t i = scan.boundary_records; i < scan.records.size(); ++i) {
    if (scan.records[i].type == WalRecordType::kOuterReserve) {
      ++scan.dangling_reserves;
    }
  }
  return scan;
}

}  // namespace recovery
}  // namespace comx
