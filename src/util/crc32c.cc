#include "util/crc32c.h"

#include <array>

namespace comx {
namespace {

// Castagnoli polynomial, reflected.
constexpr uint32_t kPoly = 0x82f63b78u;

constexpr std::array<uint32_t, 256> MakeTable() {
  std::array<uint32_t, 256> table{};
  for (uint32_t i = 0; i < 256; ++i) {
    uint32_t crc = i;
    for (int bit = 0; bit < 8; ++bit) {
      crc = (crc & 1) ? (crc >> 1) ^ kPoly : crc >> 1;
    }
    table[i] = crc;
  }
  return table;
}

constexpr std::array<uint32_t, 256> kTable = MakeTable();

}  // namespace

uint32_t Crc32cExtend(uint32_t crc, const void* data, size_t size) {
  const auto* p = static_cast<const unsigned char*>(data);
  crc = ~crc;
  for (size_t i = 0; i < size; ++i) {
    crc = kTable[(crc ^ p[i]) & 0xff] ^ (crc >> 8);
  }
  return ~crc;
}

uint32_t Crc32cMask(uint32_t crc) {
  // Rotate right by 15 bits and add a constant.
  return ((crc >> 15) | (crc << 17)) + 0xa282ead8u;
}

uint32_t Crc32cUnmask(uint32_t masked) {
  const uint32_t rot = masked - 0xa282ead8u;
  return (rot >> 17) | (rot << 15);
}

}  // namespace comx
