
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/datagen/arrival_process.cc" "src/datagen/CMakeFiles/comx_datagen.dir/arrival_process.cc.o" "gcc" "src/datagen/CMakeFiles/comx_datagen.dir/arrival_process.cc.o.d"
  "/root/repo/src/datagen/city_model.cc" "src/datagen/CMakeFiles/comx_datagen.dir/city_model.cc.o" "gcc" "src/datagen/CMakeFiles/comx_datagen.dir/city_model.cc.o.d"
  "/root/repo/src/datagen/dataset.cc" "src/datagen/CMakeFiles/comx_datagen.dir/dataset.cc.o" "gcc" "src/datagen/CMakeFiles/comx_datagen.dir/dataset.cc.o.d"
  "/root/repo/src/datagen/density.cc" "src/datagen/CMakeFiles/comx_datagen.dir/density.cc.o" "gcc" "src/datagen/CMakeFiles/comx_datagen.dir/density.cc.o.d"
  "/root/repo/src/datagen/real_like.cc" "src/datagen/CMakeFiles/comx_datagen.dir/real_like.cc.o" "gcc" "src/datagen/CMakeFiles/comx_datagen.dir/real_like.cc.o.d"
  "/root/repo/src/datagen/synthetic.cc" "src/datagen/CMakeFiles/comx_datagen.dir/synthetic.cc.o" "gcc" "src/datagen/CMakeFiles/comx_datagen.dir/synthetic.cc.o.d"
  "/root/repo/src/datagen/value_model.cc" "src/datagen/CMakeFiles/comx_datagen.dir/value_model.cc.o" "gcc" "src/datagen/CMakeFiles/comx_datagen.dir/value_model.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/comx_util.dir/DependInfo.cmake"
  "/root/repo/build/src/geo/CMakeFiles/comx_geo.dir/DependInfo.cmake"
  "/root/repo/build/src/model/CMakeFiles/comx_model.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
