// Tests of the ablation knobs on the core matchers: TOTA's random-choice
// variant and RamCOM's fixed threshold exponent.

#include <cmath>
#include <set>

#include <gtest/gtest.h>

#include "core/ram_com.h"
#include "core/tota_greedy.h"
#include "testing/builders.h"
#include "testing/fake_view.h"

namespace comx {
namespace {

using testing_fixtures::FakeView;
using testing_fixtures::MakeRequest;
using testing_fixtures::MakeWorker;
using testing_fixtures::PaperExample;

Instance ThreeInnerWorkers() {
  Instance ins;
  ins.AddWorker(MakeWorker(0, 1, 0.1, 0, 2.0));
  ins.AddWorker(MakeWorker(0, 1, 0.5, 0, 2.0));
  ins.AddWorker(MakeWorker(0, 1, 0.9, 0, 2.0));
  ins.BuildEvents();
  return ins;
}

TEST(TotaRandomChoiceTest, NameReflectsVariant) {
  EXPECT_EQ(TotaGreedy(false).name(), "TOTA");
  EXPECT_EQ(TotaGreedy(true).name(), "TOTA-rand");
}

TEST(TotaRandomChoiceTest, NearestVariantIsDeterministic) {
  const Instance ins = ThreeInnerWorkers();
  FakeView view(ins, 0);
  TotaGreedy tota(false);
  tota.Reset(ins, 0, 1);
  for (int i = 0; i < 10; ++i) {
    const Decision d = tota.OnRequest(MakeRequest(0, 2, 0, 0, 5), view);
    EXPECT_EQ(d.worker, 0);  // nearest to (0, 0)
  }
}

TEST(TotaRandomChoiceTest, RandomVariantCoversAllWorkers) {
  const Instance ins = ThreeInnerWorkers();
  std::set<WorkerId> chosen;
  for (uint64_t seed = 0; seed < 40; ++seed) {
    FakeView view(ins, 0);
    TotaGreedy tota(true);
    tota.Reset(ins, 0, seed);
    const Decision d = tota.OnRequest(MakeRequest(0, 2, 0, 0, 5), view);
    ASSERT_EQ(d.kind, Decision::Kind::kInner);
    chosen.insert(d.worker);
  }
  EXPECT_EQ(chosen.size(), 3u);
}

TEST(TotaRandomChoiceTest, RandomVariantDeterministicPerSeed) {
  const Instance ins = ThreeInnerWorkers();
  auto pick = [&](uint64_t seed) {
    FakeView view(ins, 0);
    TotaGreedy tota(true);
    tota.Reset(ins, 0, seed);
    return tota.OnRequest(MakeRequest(0, 2, 0, 0, 5), view).worker;
  };
  EXPECT_EQ(pick(5), pick(5));
}

TEST(TotaRandomChoiceTest, StillRejectsWhenNothingFeasible) {
  Instance ins;
  ins.AddWorker(MakeWorker(0, 1, 50, 50, 1.0));
  ins.BuildEvents();
  FakeView view(ins, 0);
  TotaGreedy tota(true);
  tota.Reset(ins, 0, 1);
  EXPECT_EQ(tota.OnRequest(MakeRequest(0, 2, 0, 0, 5), view).kind,
            Decision::Kind::kReject);
}

TEST(RamComFixedExponentTest, FreezesThreshold) {
  const Instance ins = PaperExample();
  for (int k = 0; k <= 2; ++k) {
    for (uint64_t seed = 0; seed < 5; ++seed) {
      RamCom ram({}, k);
      ram.Reset(ins, 0, seed);
      EXPECT_DOUBLE_EQ(ram.threshold(), std::exp(k));
    }
  }
}

TEST(RamComFixedExponentTest, NegativeMeansDraw) {
  const Instance ins = PaperExample();
  std::set<double> seen;
  for (uint64_t seed = 0; seed < 40; ++seed) {
    RamCom ram({}, -1);
    ram.Reset(ins, 0, seed);
    seen.insert(ram.threshold());
  }
  EXPECT_GT(seen.size(), 1u);
}

TEST(RamComFixedExponentTest, ZeroExponentKeepsEverythingInner) {
  // Threshold e^0 = 1 < every request value (values >= 2), so all requests
  // take the inner path while inner workers remain.
  Instance ins;
  ins.AddWorker(MakeWorker(0, 1, 0, 0, 2.0));
  ins.AddWorker(MakeWorker(1, 1, 0, 0, 2.0, {0.01}));
  ins.AddRequest(MakeRequest(0, 2, 0, 0, 5.0));
  ins.BuildEvents();
  FakeView view(ins, 0);
  RamCom ram({}, 0);
  ram.Reset(ins, 0, 1);
  const Decision d = ram.OnRequest(MakeRequest(0, 2, 0, 0, 5.0), view);
  EXPECT_EQ(d.kind, Decision::Kind::kInner);
}

TEST(RamComFixedExponentTest, HugeExponentDivertsEverything) {
  Instance ins;
  ins.AddWorker(MakeWorker(0, 1, 0, 0, 2.0));           // free inner
  ins.AddWorker(MakeWorker(1, 1, 0, 0, 2.0, {0.01}));   // eager outer
  ins.AddRequest(MakeRequest(0, 2, 0, 0, 5.0));
  ins.BuildEvents();
  FakeView view(ins, 0);
  RamCom ram({}, 10);  // threshold e^10 >> 5
  ram.Reset(ins, 0, 1);
  const Decision d = ram.OnRequest(MakeRequest(0, 2, 0, 0, 5.0), view);
  EXPECT_NE(d.kind, Decision::Kind::kInner);
}

}  // namespace
}  // namespace comx
