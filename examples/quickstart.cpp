// Quickstart: generate a two-platform city workload, run all four
// algorithms (TOTA, DemCOM, RamCOM, OFF), and print a Table-V-style report.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart [requests_per_platform] [workers_per_platform]

#include <cstdio>
#include <cstdlib>

#include "core/dem_com.h"
#include "core/offline_opt.h"
#include "core/ram_com.h"
#include "core/tota_greedy.h"
#include "datagen/synthetic.h"
#include "sim/simulator.h"

namespace {

void PrintRow(const char* name, const comx::PlatformMetrics& agg,
              double response_ms) {
  std::printf("%-8s %12.1f %9lld %9lld %9lld %8.3f %8.3f %10.4f\n", name,
              agg.revenue, static_cast<long long>(agg.completed),
              static_cast<long long>(agg.completed_inner),
              static_cast<long long>(agg.completed_outer),
              agg.AcceptanceRatio(), agg.MeanPaymentRate(), response_ms);
}

}  // namespace

int main(int argc, char** argv) {
  const int64_t requests = argc > 1 ? std::atoll(argv[1]) : 2500;
  const int64_t workers = argc > 2 ? std::atoll(argv[2]) : 500;

  // 1. Generate a two-platform city: each platform's idle drivers sit where
  //    the other platform's riders are (the imbalance COM exploits).
  comx::SyntheticConfig config;
  config.requests_per_platform = {requests};
  config.workers_per_platform = {workers};
  config.seed = 2020;
  auto instance = comx::GenerateSynthetic(config);
  if (!instance.ok()) {
    std::fprintf(stderr, "generate: %s\n",
                 instance.status().ToString().c_str());
    return 1;
  }
  std::printf("workload: %s\n\n", instance->Summary().c_str());

  // 2. Run the three online algorithms through the co-simulator.
  comx::SimConfig sim;
  sim.workers_recycle = true;
  std::printf("%-8s %12s %9s %9s %9s %8s %8s %10s\n", "algo", "revenue",
              "served", "inner", "coop", "acpRt", "payRate", "resp(ms)");
  {
    comx::TotaGreedy m0, m1;
    auto r = comx::RunSimulation(*instance, {&m0, &m1}, sim, 1);
    if (!r.ok()) return 1;
    const auto agg = r->metrics.Aggregate();
    PrintRow("TOTA", agg, agg.MeanResponseTimeMs());
  }
  {
    comx::DemCom m0, m1;
    auto r = comx::RunSimulation(*instance, {&m0, &m1}, sim, 1);
    if (!r.ok()) return 1;
    const auto agg = r->metrics.Aggregate();
    PrintRow("DemCOM", agg, agg.MeanResponseTimeMs());
  }
  {
    comx::RamCom m0, m1;
    auto r = comx::RunSimulation(*instance, {&m0, &m1}, sim, 1);
    if (!r.ok()) return 1;
    const auto agg = r->metrics.Aggregate();
    PrintRow("RamCOM", agg, agg.MeanResponseTimeMs());
  }

  // 3. The offline upper bound (OFF) with recycled-worker capacity.
  {
    comx::OfflineConfig off;
    off.worker_capacity = 8;
    comx::PlatformMetrics agg;
    for (comx::PlatformId p = 0; p < 2; ++p) {
      auto sol = comx::SolveOffline(*instance, p, off);
      if (!sol.ok()) return 1;
      agg.revenue += sol->matching.total_revenue;
      agg.completed += static_cast<int64_t>(sol->matching.size());
    }
    PrintRow("OFF", agg, 0.0);
  }
  return 0;
}
