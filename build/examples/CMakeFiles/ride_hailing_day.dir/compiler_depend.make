# Empty compiler generated dependencies file for ride_hailing_day.
# This may be replaced when dependencies are built.
