#include "datagen/arrival_process.h"

#include <algorithm>
#include <cmath>

namespace comx {
namespace {

double GaussianBump(double t, double mean, double sigma) {
  const double z = (t - mean) / sigma;
  return std::exp(-0.5 * z * z);
}

}  // namespace

double DayCurveIntensity(const CityModel::Params& params, double t) {
  const double base = (1.0 - params.peak_weight) / params.horizon_seconds;
  // Each peak carries half of peak_weight; a Gaussian's mass is
  // sqrt(2 pi) sigma, so the density height normalizes accordingly.
  const double peak_norm =
      params.peak_weight / 2.0 /
      (std::sqrt(2.0 * 3.14159265358979323846) * params.peak_sigma);
  return base + peak_norm * (GaussianBump(t, params.morning_peak,
                                          params.peak_sigma) +
                             GaussianBump(t, params.evening_peak,
                                          params.peak_sigma));
}

std::vector<double> DrawArrivalTimes(const CityModel& city,
                                     ArrivalProcess process, int64_t n,
                                     Rng* rng) {
  std::vector<double> times;
  if (n <= 0) return times;
  times.reserve(static_cast<size_t>(n));
  const CityModel::Params& params = city.params();

  if (process == ArrivalProcess::kIidDayCurve) {
    for (int64_t i = 0; i < n; ++i) times.push_back(city.SampleTime(rng));
    std::sort(times.begin(), times.end());
    return times;
  }

  // Lewis-Shedler thinning against a constant dominating intensity.
  double lambda_max = 0.0;
  for (double t = 0.0; t < params.horizon_seconds; t += 60.0) {
    lambda_max = std::max(lambda_max, DayCurveIntensity(params, t));
  }
  lambda_max *= 1.05;  // head-room over the sampled maximum

  double t = 0.0;
  while (static_cast<int64_t>(times.size()) < n) {
    t += rng->Exponential(lambda_max);
    if (t >= params.horizon_seconds) {
      // Wrap to the next "day" so exactly n arrivals always come out
      // (one exponential jump can span several days when the intensity is
      // low, hence fmod rather than one subtraction); wrapping keeps the
      // day-curve statistics.
      t = std::fmod(t, params.horizon_seconds);
    }
    if (rng->NextDouble() * lambda_max <= DayCurveIntensity(params, t)) {
      times.push_back(t);
    }
  }
  std::sort(times.begin(), times.end());
  return times;
}

}  // namespace comx
