// Hierarchical span profiler: attributes wall time to a tree of span
// sites so nested COMX_SPAN scopes (e.g. decide -> candidate_lookup ->
// ecdf_eval) record self-time vs total-time per call path, not just flat
// per-phase totals.
//
// Model: every thread carries a cursor into a process-wide call-tree.
// Entering a span moves the cursor to the child node for (current node,
// site), creating it on first visit; leaving restores the parent. A node
// therefore identifies a call *path* (the same site reached under two
// different parents is two nodes). Each node accumulates count / total /
// self nanoseconds in kShardCount sharded cells plus a per-node
// LatencyHistogram of total time, so perf_report can render p50/p99/p999
// per path. Self time is exact by construction: a span subtracts the sum
// of its direct children's totals (measured with the same clock reads)
// from its own total.
//
// The tree is append-only and bounded (kProfilerMaxNodes nodes,
// kProfilerMaxDepth depth). Beyond either bound, spans still record into
// their flat per-phase histogram but skip tree accounting. Nodes are
// never freed: SpanSite phases are string literals and the profiler is a
// process-lifetime singleton, so lock-free readers never chase a dangling
// pointer.
//
// Outputs:
//   CollapsedStacks() — flamegraph-compatible "a;b;c <self_nanos>" lines.
//   ProfileJsonl()    — one flat JSON object per node (parseable by
//                       util::ParseJsonFlatObject), consumed by
//                       tools/perf_report.

#ifndef COMX_OBS_PROFILER_H_
#define COMX_OBS_PROFILER_H_

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "obs/latency_histogram.h"
#include "util/status.h"

namespace comx {
namespace obs {

/// Node id of the synthetic root (every thread's initial cursor).
inline constexpr int32_t kProfilerRootNode = 0;
/// Sentinel for "no node": tree accounting is skipped for this span.
inline constexpr int32_t kProfilerInvalidNode = -1;

inline constexpr int kProfilerMaxSites = 256;
inline constexpr int kProfilerMaxNodes = 1024;
inline constexpr int kProfilerMaxDepth = 32;

/// Schema tag of the first line of a ProfileJsonl() dump.
inline constexpr const char* kProfileSchema = "comx-perf-profile-v1";

/// Merged view of one call-tree node. `parent` is always a smaller node
/// id (creation order), so a single forward pass resolves paths.
struct ProfileNode {
  int32_t node = 0;
  int32_t parent = kProfilerInvalidNode;
  int32_t depth = 0;
  std::string phase;  // empty for the root
  std::string path;   // "a;b;c" from the root; empty for the root
  int64_t count = 0;
  int64_t total_nanos = 0;
  int64_t self_nanos = 0;
  LatencySnapshot latency;  // distribution of total time per entry
};

class SpanProfiler {
 public:
  /// The process-wide profiler used by all COMX_SPAN sites.
  static SpanProfiler& Global();

  SpanProfiler();
  SpanProfiler(const SpanProfiler&) = delete;
  SpanProfiler& operator=(const SpanProfiler&) = delete;

  /// Interns `phase` (which must outlive the profiler — COMX_SPAN passes
  /// string literals) and returns its site id, or -1 if the site table is
  /// full (such spans skip tree accounting).
  int RegisterSite(const char* phase);

  /// Name of a registered site (empty for out-of-range ids).
  std::string SiteName(int site) const;

  /// Child of `parent` for `site`, created on first visit. Returns
  /// kProfilerInvalidNode when parent is invalid, `site` is -1, the depth
  /// cap is hit, or the node table is full. Lock-free on the hit path.
  int32_t EnterChild(int32_t parent, int site);

  /// Adds one completed span to `node`'s accounting (no-op for
  /// kProfilerInvalidNode).
  void RecordSpan(int32_t node, int64_t total_nanos, int64_t self_nanos);

  /// Merged view of every node, indexed by node id (root included at 0).
  /// Exact once span-recording threads are quiescent.
  std::vector<ProfileNode> Snapshot() const;

  /// Flamegraph collapsed-stack lines ("path self_nanos\n") for every
  /// non-root node with count > 0, in node-id order.
  std::string CollapsedStacks() const;

  /// Flat-JSONL profile dump: a schema header line, then one line per
  /// non-root node with count > 0.
  std::string ProfileJsonl() const;
  Status WriteProfile(const std::string& path) const;

  /// Zeroes all node statistics (tree structure and sites survive, so
  /// live spans keep valid node ids). For tests and phase separation.
  void ResetStats();

 private:
  struct Node;
  struct ChildLink;

  Node* NodeAt(int32_t id) const {
    return nodes_[static_cast<size_t>(id)].load(std::memory_order_acquire);
  }

  mutable std::mutex mu_;  // guards creation only; lookups are lock-free
  std::atomic<int32_t> node_count_{0};
  std::atomic<int> site_count_{0};
  std::vector<std::atomic<Node*>> nodes_;
  std::vector<std::atomic<const char*>> site_names_;
};

namespace internal {
/// The calling thread's call-tree cursor (root initially). ScopedSpan
/// saves/restores it; exposed for tests.
int32_t CurrentThreadNode();
void SetCurrentThreadNode(int32_t node);
/// Address of the innermost live span's child-time accumulator on this
/// thread (null at top level). ScopedSpan chains these to compute exact
/// self time.
int64_t** ThreadChildNanosSlot();
}  // namespace internal

}  // namespace obs
}  // namespace comx

#endif  // COMX_OBS_PROFILER_H_
