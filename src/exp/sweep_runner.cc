#include "exp/sweep_runner.h"

#include <algorithm>

#include "util/timer.h"

namespace comx {
namespace exp {
namespace {

// splitmix64 finalizer (Vigna): bijective 64-bit mix, so distinct job
// indices can never collide for a fixed base seed.
uint64_t Mix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

}  // namespace

uint64_t JobSeed(uint64_t base_seed, uint64_t job_index) {
  return Mix64(base_seed ^ (0x9e3779b97f4a7c15ull * (job_index + 1)));
}

Rng JobRng(uint64_t base_seed, uint64_t job_index) {
  return Rng(JobSeed(base_seed, job_index));
}

SweepRunner::SweepRunner(SweepOptions options) : options_(options) {}

Status SweepRunner::Run(size_t config_count, size_t seed_count,
                        const SweepJobFn& fn) {
  const size_t count = config_count * seed_count;
  report_ = SweepReport{};
  report_.job_count = count;

  auto job_at = [seed_count](size_t i) {
    SweepJob job;
    job.job_index = i;
    job.config_index = seed_count > 0 ? i / seed_count : 0;
    job.seed_index = seed_count > 0 ? i % seed_count : 0;
    return job;
  };

  obs::MetricsSnapshot before_sweep;
  if (options_.capture_metrics) {
    before_sweep = obs::MetricsRegistry::Global().Snapshot();
  }

  // One Status slot per job: errors are merged in job order below, so the
  // reported failure does not depend on scheduling. Wall-time slots work
  // the same way — each job times its own body into its own cell.
  std::vector<Status> status(count);
  std::vector<int64_t> job_nanos(count, 0);
  auto timed = [&](size_t i) {
    Stopwatch watch;
    status[i] = fn(job_at(i));
    job_nanos[i] = watch.ElapsedNanos();
  };
  const bool use_pool =
      count > 1 && (options_.pool != nullptr || options_.jobs != 1);
  if (!use_pool) {
    for (size_t i = 0; i < count; ++i) {
      obs::MetricsSnapshot before_job;
      if (options_.capture_metrics) {
        before_job = obs::MetricsRegistry::Global().Snapshot();
      }
      timed(i);
      if (options_.capture_metrics) {
        report_.per_job_metrics.push_back(obs::DiffSnapshots(
            before_job, obs::MetricsRegistry::Global().Snapshot()));
      }
    }
  } else {
    report_.parallel = true;
    auto run_all = [&](ThreadPool& pool) {
      ParallelFor(pool, count, timed);
    };
    if (options_.pool != nullptr) {
      run_all(*options_.pool);
    } else {
      const size_t threads =
          options_.jobs > 0
              ? std::min(static_cast<size_t>(options_.jobs), count)
              : 0;  // 0 = hardware concurrency
      ThreadPool pool(threads);
      run_all(pool);
    }
  }

  report_.job_wall_seconds.resize(count);
  for (size_t i = 0; i < count; ++i) {
    report_.job_wall_seconds[i] = static_cast<double>(job_nanos[i]) / 1e9;
    report_.job_latency.Observe(job_nanos[i]);
  }

  if (options_.capture_metrics) {
    report_.sweep_metrics = obs::DiffSnapshots(
        before_sweep, obs::MetricsRegistry::Global().Snapshot());
  }

  for (const Status& s : status) {
    COMX_RETURN_IF_ERROR(s);
  }
  return Status::OK();
}

}  // namespace exp
}  // namespace comx
