#include "util/binio.h"

namespace comx {

void WriteRng(const Rng& rng, ByteWriter* out) {
  const Rng::State state = rng.SaveState();
  for (uint64_t word : state.s) out->U64(word);
  out->Bool(state.has_cached_normal);
  out->F64(state.cached_normal);
}

Status ReadRng(ByteReader* in, Rng* rng) {
  Rng::State state;
  for (uint64_t& word : state.s) COMX_RETURN_IF_ERROR(in->U64(&word));
  COMX_RETURN_IF_ERROR(in->Bool(&state.has_cached_normal));
  COMX_RETURN_IF_ERROR(in->F64(&state.cached_normal));
  rng->RestoreState(state);
  return Status::OK();
}

}  // namespace comx
