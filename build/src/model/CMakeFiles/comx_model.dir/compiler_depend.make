# Empty compiler generated dependencies file for comx_model.
# This may be replaced when dependencies are built.
