#include "obs/latency_histogram.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <thread>
#include <vector>

#include "util/rng.h"

namespace comx {
namespace obs {
namespace {

TEST(LatencyBucketTest, LinearRegionIsExact) {
  // Every value below 2^(P+1) = 256 ns has its own 1-ns bucket.
  for (int64_t v = 0; v < 256; ++v) {
    const int index = LatencyBucketIndex(v);
    EXPECT_EQ(index, static_cast<int>(v));
    EXPECT_EQ(LatencyBucketLowerNanos(index), v);
    EXPECT_EQ(LatencyBucketUpperNanos(index), v);
  }
}

TEST(LatencyBucketTest, BoundariesCoverAndPartition) {
  // Across the linear/log seam (255 -> 256) and every later octave edge,
  // buckets must tile the value axis: lower(i) = upper(i-1) + 1, and the
  // index function must be consistent with its own bounds.
  const std::vector<int64_t> probes = {
      255, 256, 257, 511, 512, 513, 1023, 1024, 65535, 65536,
      (int64_t{1} << 41) - 1, int64_t{1} << 41, kLatencyMaxTrackableNanos};
  for (int64_t v : probes) {
    const int index = LatencyBucketIndex(v);
    EXPECT_GE(v, LatencyBucketLowerNanos(index)) << v;
    EXPECT_LE(v, LatencyBucketUpperNanos(index)) << v;
    if (index > 0) {
      EXPECT_EQ(LatencyBucketLowerNanos(index),
                LatencyBucketUpperNanos(index - 1) + 1)
          << v;
    }
  }
  EXPECT_EQ(LatencyBucketIndex(kLatencyMaxTrackableNanos),
            kLatencyBucketCount - 1);
  // Clamps: negatives to bucket 0, overlarge to the last bucket.
  EXPECT_EQ(LatencyBucketIndex(-5), 0);
  EXPECT_EQ(LatencyBucketIndex(kLatencyMaxTrackableNanos + 1000),
            kLatencyBucketCount - 1);
}

TEST(LatencyBucketTest, RelativeWidthBounded) {
  // Outside the exact region the bucket width is <= lower / 128.
  Rng rng(11);
  for (int i = 0; i < 10000; ++i) {
    const int64_t v = rng.UniformInt(256, kLatencyMaxTrackableNanos);
    const int index = LatencyBucketIndex(v);
    const int64_t lower = LatencyBucketLowerNanos(index);
    const int64_t width =
        LatencyBucketUpperNanos(index) - lower + 1;
    EXPECT_LE(width, std::max<int64_t>(1, lower / kLatencySubBuckets)) << v;
  }
}

TEST(LatencyHistogramTest, CountSumMaxAreExact) {
  LatencyHistogram h("test");
  h.ObserveNanos(10);
  h.ObserveNanos(300);
  h.ObserveNanos(1'000'000);
  const LatencySnapshot snap = h.Snapshot();
  EXPECT_EQ(snap.count, 3);
  EXPECT_EQ(snap.sum_nanos, 10 + 300 + 1'000'000);
  EXPECT_EQ(snap.max_nanos, 1'000'000);
  EXPECT_EQ(h.Count(), 3);
}

TEST(LatencyHistogramTest, QuantileErrorBoundVsSortedOracle) {
  // 1M log-uniform samples: every reported quantile must sit within one
  // bucket width (<= 2^-7 relative) of the exact order statistic.
  constexpr int kN = 1'000'000;
  LatencyHistogram h("test");
  std::vector<int64_t> values;
  values.reserve(kN);
  Rng rng(2020);
  for (int i = 0; i < kN; ++i) {
    // log-uniform over [1, ~1s] so every octave gets traffic.
    const double log_v = rng.Uniform(0.0, std::log(1e9));
    const int64_t v = static_cast<int64_t>(std::exp(log_v));
    values.push_back(v);
    h.ObserveNanos(v);
  }
  std::sort(values.begin(), values.end());
  const LatencySnapshot snap = h.Snapshot();
  ASSERT_EQ(snap.count, kN);
  for (double q : {0.01, 0.10, 0.50, 0.90, 0.99, 0.999, 0.9999, 1.0}) {
    const int64_t rank =
        std::clamp<int64_t>(static_cast<int64_t>(std::ceil(q * kN)), 1, kN);
    const int64_t exact = values[static_cast<size_t>(rank - 1)];
    const int64_t approx = snap.ValueAtQuantileNanos(q);
    // The reported value is the inclusive upper bound of the exact
    // value's bucket (clamped to max): never below, within 1% above.
    EXPECT_GE(approx, exact) << "q=" << q;
    EXPECT_LE(static_cast<double>(approx - exact),
              std::max(1.0, static_cast<double>(exact) / 100.0))
        << "q=" << q;
  }
  EXPECT_EQ(snap.ValueAtQuantileNanos(1.0), snap.max_nanos);
}

TEST(LatencyHistogramTest, MergeIsAssociativeAndCommutative) {
  Rng rng(7);
  std::vector<LatencySnapshot> parts(3);
  for (LatencySnapshot& part : parts) {
    for (int i = 0; i < 1000; ++i) {
      part.Observe(rng.UniformInt(0, 10'000'000));
    }
  }
  // ((a + b) + c) vs (a + (b + c)) vs (c + b) + a.
  LatencySnapshot left = parts[0];
  left.Merge(parts[1]);
  left.Merge(parts[2]);
  LatencySnapshot bc = parts[1];
  bc.Merge(parts[2]);
  LatencySnapshot right = parts[0];
  right.Merge(bc);
  LatencySnapshot rev = parts[2];
  rev.Merge(parts[1]);
  rev.Merge(parts[0]);
  for (const LatencySnapshot* other : {&right, &rev}) {
    EXPECT_EQ(left.count, other->count);
    EXPECT_EQ(left.sum_nanos, other->sum_nanos);
    EXPECT_EQ(left.max_nanos, other->max_nanos);
    EXPECT_EQ(left.counts, other->counts);
  }
}

TEST(LatencyHistogramTest, SparseRoundTrip) {
  LatencySnapshot snap;
  Rng rng(13);
  for (int i = 0; i < 5000; ++i) {
    snap.Observe(rng.UniformInt(0, 1'000'000'000));
  }
  const auto sparse = snap.NonZeroBuckets();
  const LatencySnapshot rebuilt = LatencySnapshotFromSparse(
      sparse, snap.count, snap.sum_nanos, snap.max_nanos);
  ASSERT_GE(rebuilt.count, 0);
  EXPECT_EQ(rebuilt.count, snap.count);
  EXPECT_EQ(rebuilt.sum_nanos, snap.sum_nanos);
  EXPECT_EQ(rebuilt.max_nanos, snap.max_nanos);
  EXPECT_EQ(rebuilt.counts, snap.counts);

  // Out-of-range bucket index is rejected with count -1.
  const LatencySnapshot bad = LatencySnapshotFromSparse(
      {{kLatencyBucketCount, 1}}, 1, 10, 10);
  EXPECT_EQ(bad.count, -1);
}

TEST(LatencyHistogramTest, ResetZeroesEverything) {
  LatencyHistogram h("test");
  h.ObserveNanos(123);
  h.Reset();
  const LatencySnapshot snap = h.Snapshot();
  EXPECT_EQ(snap.count, 0);
  EXPECT_TRUE(snap.empty());
  h.ObserveNanos(7);
  EXPECT_EQ(h.Count(), 1);
}

TEST(LatencyHistogramTest, ConcurrentObserveLosesNothing) {
  // 8 threads x 50k observations; the merged snapshot must account for
  // every single one (also the TSan target for stage 2 of check.sh).
  constexpr int kThreads = 8;
  constexpr int kPerThread = 50'000;
  LatencyHistogram h("test");
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&h, t] {
      Rng rng(static_cast<uint64_t>(t) + 1);
      for (int i = 0; i < kPerThread; ++i) {
        h.ObserveNanos(rng.UniformInt(0, 100'000'000));
      }
    });
  }
  for (std::thread& t : threads) t.join();
  const LatencySnapshot snap = h.Snapshot();
  EXPECT_EQ(snap.count, int64_t{kThreads} * kPerThread);
  int64_t bucket_total = 0;
  for (int64_t c : snap.counts) bucket_total += c;
  EXPECT_EQ(bucket_total, snap.count);
  EXPECT_GT(snap.max_nanos, 0);
}

}  // namespace
}  // namespace obs
}  // namespace comx
