file(REMOVE_RECURSE
  "CMakeFiles/comx_integration_test.dir/integration/cross_solver_test.cc.o"
  "CMakeFiles/comx_integration_test.dir/integration/cross_solver_test.cc.o.d"
  "CMakeFiles/comx_integration_test.dir/integration/end_to_end_test.cc.o"
  "CMakeFiles/comx_integration_test.dir/integration/end_to_end_test.cc.o.d"
  "CMakeFiles/comx_integration_test.dir/integration/fuzz_test.cc.o"
  "CMakeFiles/comx_integration_test.dir/integration/fuzz_test.cc.o.d"
  "CMakeFiles/comx_integration_test.dir/integration/invariants_test.cc.o"
  "CMakeFiles/comx_integration_test.dir/integration/invariants_test.cc.o.d"
  "CMakeFiles/comx_integration_test.dir/integration/metamorphic_test.cc.o"
  "CMakeFiles/comx_integration_test.dir/integration/metamorphic_test.cc.o.d"
  "comx_integration_test"
  "comx_integration_test.pdb"
  "comx_integration_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/comx_integration_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
