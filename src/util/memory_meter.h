// Memory accounting for the efficiency experiments (Tables V and Fig. 5
// memory panels). Two complementary measures:
//   * process RSS from /proc/self/status (matches the paper's "Memory (MB)"),
//   * a logical byte counter the simulator feeds with the sizes of live
//     requests/workers, which is deterministic across machines.

#ifndef COMX_UTIL_MEMORY_METER_H_
#define COMX_UTIL_MEMORY_METER_H_

#include <cstdint>

namespace comx {

/// Returns the current resident set size of this process in bytes, or 0 when
/// the platform does not expose it (/proc not mounted).
int64_t CurrentRssBytes();

/// Deterministic logical memory accounting: components register the bytes
/// they hold so experiments report identical numbers on every machine.
class MemoryMeter {
 public:
  /// Records `bytes` more live logical bytes.
  void Allocate(int64_t bytes);

  /// Records `bytes` fewer live logical bytes.
  void Release(int64_t bytes);

  /// Currently live logical bytes.
  int64_t live_bytes() const { return live_; }

  /// Largest value live_bytes() ever reached.
  int64_t peak_bytes() const { return peak_; }

  /// Resets both counters.
  void Reset();

 private:
  int64_t live_ = 0;
  int64_t peak_ = 0;
};

}  // namespace comx

#endif  // COMX_UTIL_MEMORY_METER_H_
