# Empty compiler generated dependencies file for bench_extension_cost.
# This may be replaced when dependencies are built.
