file(REMOVE_RECURSE
  "CMakeFiles/comx_core_test.dir/core/candidate_cap_test.cc.o"
  "CMakeFiles/comx_core_test.dir/core/candidate_cap_test.cc.o.d"
  "CMakeFiles/comx_core_test.dir/core/cost_aware_test.cc.o"
  "CMakeFiles/comx_core_test.dir/core/cost_aware_test.cc.o.d"
  "CMakeFiles/comx_core_test.dir/core/dem_com_test.cc.o"
  "CMakeFiles/comx_core_test.dir/core/dem_com_test.cc.o.d"
  "CMakeFiles/comx_core_test.dir/core/greedy_rt_test.cc.o"
  "CMakeFiles/comx_core_test.dir/core/greedy_rt_test.cc.o.d"
  "CMakeFiles/comx_core_test.dir/core/matcher_variants_test.cc.o"
  "CMakeFiles/comx_core_test.dir/core/matcher_variants_test.cc.o.d"
  "CMakeFiles/comx_core_test.dir/core/offline_opt_test.cc.o"
  "CMakeFiles/comx_core_test.dir/core/offline_opt_test.cc.o.d"
  "CMakeFiles/comx_core_test.dir/core/paper_example_test.cc.o"
  "CMakeFiles/comx_core_test.dir/core/paper_example_test.cc.o.d"
  "CMakeFiles/comx_core_test.dir/core/ram_com_test.cc.o"
  "CMakeFiles/comx_core_test.dir/core/ram_com_test.cc.o.d"
  "CMakeFiles/comx_core_test.dir/core/ranking_test.cc.o"
  "CMakeFiles/comx_core_test.dir/core/ranking_test.cc.o.d"
  "CMakeFiles/comx_core_test.dir/core/tota_greedy_test.cc.o"
  "CMakeFiles/comx_core_test.dir/core/tota_greedy_test.cc.o.d"
  "comx_core_test"
  "comx_core_test.pdb"
  "comx_core_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/comx_core_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
