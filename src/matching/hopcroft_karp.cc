#include "matching/hopcroft_karp.h"

#include <algorithm>
#include <limits>
#include <queue>
#include <vector>

namespace comx {
namespace {

constexpr int32_t kNil = -1;
constexpr int32_t kInf = std::numeric_limits<int32_t>::max();

struct HkState {
  const std::vector<std::vector<int32_t>>* adj;  // left -> right lists
  std::vector<int32_t> match_left;               // left -> right
  std::vector<int32_t> match_right;              // right -> left
  std::vector<int32_t> dist;

  bool Bfs() {
    std::queue<int32_t> q;
    const int32_t n = static_cast<int32_t>(adj->size());
    bool found_free_right = false;
    for (int32_t l = 0; l < n; ++l) {
      if (match_left[static_cast<size_t>(l)] == kNil) {
        dist[static_cast<size_t>(l)] = 0;
        q.push(l);
      } else {
        dist[static_cast<size_t>(l)] = kInf;
      }
    }
    while (!q.empty()) {
      const int32_t l = q.front();
      q.pop();
      for (int32_t r : (*adj)[static_cast<size_t>(l)]) {
        const int32_t l2 = match_right[static_cast<size_t>(r)];
        if (l2 == kNil) {
          found_free_right = true;
        } else if (dist[static_cast<size_t>(l2)] == kInf) {
          dist[static_cast<size_t>(l2)] = dist[static_cast<size_t>(l)] + 1;
          q.push(l2);
        }
      }
    }
    return found_free_right;
  }

  bool Dfs(int32_t l) {
    for (int32_t r : (*adj)[static_cast<size_t>(l)]) {
      const int32_t l2 = match_right[static_cast<size_t>(r)];
      if (l2 == kNil ||
          (dist[static_cast<size_t>(l2)] ==
               dist[static_cast<size_t>(l)] + 1 &&
           Dfs(l2))) {
        match_left[static_cast<size_t>(l)] = r;
        match_right[static_cast<size_t>(r)] = l;
        return true;
      }
    }
    dist[static_cast<size_t>(l)] = kInf;
    return false;
  }
};

}  // namespace

BipartiteMatching HopcroftKarpMaxCardinality(const BipartiteGraph& graph) {
  // Deduplicated unweighted adjacency.
  std::vector<std::vector<int32_t>> adj(
      static_cast<size_t>(graph.left_count()));
  for (const BipartiteEdge& e : graph.edges()) {
    adj[static_cast<size_t>(e.left)].push_back(e.right);
  }
  for (auto& list : adj) {
    std::sort(list.begin(), list.end());
    list.erase(std::unique(list.begin(), list.end()), list.end());
  }

  HkState st;
  st.adj = &adj;
  st.match_left.assign(static_cast<size_t>(graph.left_count()), kNil);
  st.match_right.assign(static_cast<size_t>(graph.right_count()), kNil);
  st.dist.assign(static_cast<size_t>(graph.left_count()), kInf);

  while (st.Bfs()) {
    for (int32_t l = 0; l < graph.left_count(); ++l) {
      if (st.match_left[static_cast<size_t>(l)] == kNil) st.Dfs(l);
    }
  }

  BipartiteMatching result;
  result.match_of_left = st.match_left;
  // Report the weight of the chosen edges (max over parallel edges).
  const auto& ladj = graph.LeftAdjacency();
  for (int32_t l = 0; l < graph.left_count(); ++l) {
    const int32_t r = result.match_of_left[static_cast<size_t>(l)];
    if (r == kNil) continue;
    ++result.size;
    double best = 0.0;
    for (int32_t ei : ladj[static_cast<size_t>(l)]) {
      const auto& e = graph.edges()[static_cast<size_t>(ei)];
      if (e.right == r) best = std::max(best, e.weight);
    }
    result.total_weight += best;
  }
  return result;
}

}  // namespace comx
