file(REMOVE_RECURSE
  "CMakeFiles/comx_pricing_test.dir/pricing/acceptance_mode_test.cc.o"
  "CMakeFiles/comx_pricing_test.dir/pricing/acceptance_mode_test.cc.o.d"
  "CMakeFiles/comx_pricing_test.dir/pricing/acceptance_model_test.cc.o"
  "CMakeFiles/comx_pricing_test.dir/pricing/acceptance_model_test.cc.o.d"
  "CMakeFiles/comx_pricing_test.dir/pricing/history_test.cc.o"
  "CMakeFiles/comx_pricing_test.dir/pricing/history_test.cc.o.d"
  "CMakeFiles/comx_pricing_test.dir/pricing/mer_pricer_test.cc.o"
  "CMakeFiles/comx_pricing_test.dir/pricing/mer_pricer_test.cc.o.d"
  "CMakeFiles/comx_pricing_test.dir/pricing/min_payment_estimator_test.cc.o"
  "CMakeFiles/comx_pricing_test.dir/pricing/min_payment_estimator_test.cc.o.d"
  "comx_pricing_test"
  "comx_pricing_test.pdb"
  "comx_pricing_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/comx_pricing_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
