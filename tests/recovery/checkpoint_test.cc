// Checkpoint store corruption handling (src/recovery/checkpoint.h):
// flipped bits, truncations, and zero-length files must fail the CRC/
// length validation with a loud DataLoss and fall back across
// generations, never load silently wrong state.

#include "recovery/checkpoint.h"

#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <string>

#include "gtest/gtest.h"

namespace comx {
namespace recovery {
namespace {

std::string MakeTempDir() {
  char tmpl[] = "/tmp/comx_ckpt_test.XXXXXX";
  const char* dir = ::mkdtemp(tmpl);
  EXPECT_NE(dir, nullptr);
  return dir == nullptr ? std::string("/tmp") : std::string(dir);
}

CheckpointMeta MakeMeta(int64_t generation) {
  CheckpointMeta meta;
  meta.generation = generation;
  meta.next_lsn = 100 + static_cast<uint64_t>(generation);
  meta.wal_bytes = 4096 * generation;
  meta.step_index = 10 * generation;
  meta.seed = 0xFEEDFACEull;
  meta.instance_digest = 0xAAAAull;
  meta.config_digest = 0xBBBBull;
  return meta;
}

std::string MakeState(int64_t generation) {
  std::string state = "engine-state-gen-" + std::to_string(generation);
  state.append(512, static_cast<char>('A' + generation % 26));
  return state;
}

void WriteGeneration(const std::string& dir, int64_t generation) {
  const Status s =
      WriteCheckpoint(dir, MakeMeta(generation), MakeState(generation),
                      /*crash=*/nullptr);
  ASSERT_TRUE(s.ok()) << s.ToString();
}

void CorruptFile(const std::string& path, int64_t byte_offset,
                 uint8_t xor_mask) {
  std::FILE* f = std::fopen(path.c_str(), "r+b");
  ASSERT_NE(f, nullptr) << path;
  ASSERT_EQ(std::fseek(f, static_cast<long>(byte_offset), SEEK_SET), 0);
  int ch = std::fgetc(f);
  ASSERT_NE(ch, EOF);
  ASSERT_EQ(std::fseek(f, static_cast<long>(byte_offset), SEEK_SET), 0);
  ASSERT_NE(std::fputc(ch ^ xor_mask, f), EOF);
  ASSERT_EQ(std::fclose(f), 0);
}

int64_t FileBytes(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return -1;
  std::fseek(f, 0, SEEK_END);
  const long n = std::ftell(f);
  std::fclose(f);
  return n;
}

TEST(CheckpointTest, WriteLoadRoundTrip) {
  const std::string dir = MakeTempDir();
  WriteGeneration(dir, 5);
  auto loaded = LoadCheckpoint(CheckpointPath(dir, 5));
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded->meta.generation, 5);
  EXPECT_EQ(loaded->meta.next_lsn, 105u);
  EXPECT_EQ(loaded->meta.wal_bytes, 4096 * 5);
  EXPECT_EQ(loaded->meta.step_index, 50);
  EXPECT_EQ(loaded->meta.seed, 0xFEEDFACEull);
  EXPECT_EQ(loaded->state, MakeState(5));
  EXPECT_EQ(loaded->file_bytes, FileBytes(CheckpointPath(dir, 5)));
}

TEST(CheckpointTest, FindPicksNewestValidGeneration) {
  const std::string dir = MakeTempDir();
  WriteGeneration(dir, 1);
  WriteGeneration(dir, 2);
  WriteGeneration(dir, 3);
  auto pick = FindLatestValidCheckpoint(dir);
  ASSERT_TRUE(pick.ok()) << pick.status().ToString();
  ASSERT_TRUE(pick->best.has_value());
  EXPECT_EQ(pick->best->meta.generation, 3);
  EXPECT_EQ(pick->fallbacks, 0);
  EXPECT_TRUE(pick->rejected.empty());
}

TEST(CheckpointTest, FlippedBitFailsLoadAndFallsBackOneGeneration) {
  const std::string dir = MakeTempDir();
  WriteGeneration(dir, 1);
  WriteGeneration(dir, 2);
  // Flip a bit in the middle of the newest file's body.
  const std::string newest = CheckpointPath(dir, 2);
  CorruptFile(newest, FileBytes(newest) / 2, 0x08);

  EXPECT_EQ(LoadCheckpoint(newest).status().code(), StatusCode::kDataLoss);

  auto pick = FindLatestValidCheckpoint(dir);
  ASSERT_TRUE(pick.ok());
  ASSERT_TRUE(pick->best.has_value());
  EXPECT_EQ(pick->best->meta.generation, 1);
  EXPECT_EQ(pick->fallbacks, 1);
  ASSERT_EQ(pick->rejected.size(), 1u);
  EXPECT_NE(pick->rejected[0].find("checkpoint-000002"), std::string::npos)
      << pick->rejected[0];
}

TEST(CheckpointTest, TruncatedAndZeroLengthFilesAreRejectedLoudly) {
  const std::string dir = MakeTempDir();
  WriteGeneration(dir, 1);
  WriteGeneration(dir, 2);
  WriteGeneration(dir, 3);
  // Gen 3: cut to half its bytes (a torn copy; the store itself never
  // installs a torn file, but disks do worse).
  const std::string gen3 = CheckpointPath(dir, 3);
  ASSERT_EQ(::truncate(gen3.c_str(), FileBytes(gen3) / 2), 0);
  // Gen 2: zero-length.
  ASSERT_EQ(::truncate(CheckpointPath(dir, 2).c_str(), 0), 0);

  EXPECT_EQ(LoadCheckpoint(gen3).status().code(), StatusCode::kDataLoss);
  EXPECT_EQ(LoadCheckpoint(CheckpointPath(dir, 2)).status().code(),
            StatusCode::kDataLoss);

  auto pick = FindLatestValidCheckpoint(dir);
  ASSERT_TRUE(pick.ok());
  ASSERT_TRUE(pick->best.has_value());
  EXPECT_EQ(pick->best->meta.generation, 1);
  EXPECT_EQ(pick->fallbacks, 2);
  EXPECT_EQ(pick->rejected.size(), 2u);
}

TEST(CheckpointTest, AllGenerationsCorruptMeansNoPick) {
  const std::string dir = MakeTempDir();
  WriteGeneration(dir, 1);
  const std::string path = CheckpointPath(dir, 1);
  CorruptFile(path, 0, 0xFF);  // smash the magic
  auto pick = FindLatestValidCheckpoint(dir);
  ASSERT_TRUE(pick.ok());
  EXPECT_FALSE(pick->best.has_value());
  EXPECT_EQ(pick->fallbacks, 1);
}

TEST(CheckpointTest, EmptyDirectoryIsNotAnError) {
  const std::string dir = MakeTempDir();
  auto pick = FindLatestValidCheckpoint(dir);
  ASSERT_TRUE(pick.ok());
  EXPECT_FALSE(pick->best.has_value());
  EXPECT_EQ(pick->fallbacks, 0);
}

TEST(CheckpointTest, RemoveOldCheckpointsKeepsNewest) {
  const std::string dir = MakeTempDir();
  for (int64_t gen = 1; gen <= 4; ++gen) WriteGeneration(dir, gen);
  ASSERT_TRUE(RemoveOldCheckpoints(dir, 2).ok());
  EXPECT_EQ(FileBytes(CheckpointPath(dir, 1)), -1);
  EXPECT_EQ(FileBytes(CheckpointPath(dir, 2)), -1);
  EXPECT_GT(FileBytes(CheckpointPath(dir, 3)), 0);
  EXPECT_GT(FileBytes(CheckpointPath(dir, 4)), 0);
}

TEST(CheckpointTest, MidWriteCrashLeavesNoInstalledCheckpoint) {
  const std::string dir = MakeTempDir();
  CrashPoint point;
  point.kind = CrashPoint::Kind::kCheckpoint;
  point.checkpoint_gen = 7;
  point.checkpoint_offset = 24;  // tear inside the staging write
  CrashInjector injector(point);

  const Status s =
      WriteCheckpoint(dir, MakeMeta(7), MakeState(7), &injector);
  EXPECT_EQ(s.code(), StatusCode::kDataLoss);
  EXPECT_TRUE(injector.fired());
  // The torn staging file was never renamed into place, so the store sees
  // no generation at all.
  EXPECT_EQ(FileBytes(CheckpointPath(dir, 7)), -1);
  auto pick = FindLatestValidCheckpoint(dir);
  ASSERT_TRUE(pick.ok());
  EXPECT_FALSE(pick->best.has_value());
}

}  // namespace
}  // namespace recovery
}  // namespace comx
