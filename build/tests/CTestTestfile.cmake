# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/comx_util_test[1]_include.cmake")
include("/root/repo/build/tests/comx_geo_test[1]_include.cmake")
include("/root/repo/build/tests/comx_model_test[1]_include.cmake")
include("/root/repo/build/tests/comx_matching_test[1]_include.cmake")
include("/root/repo/build/tests/comx_pricing_test[1]_include.cmake")
include("/root/repo/build/tests/comx_core_test[1]_include.cmake")
include("/root/repo/build/tests/comx_sim_test[1]_include.cmake")
include("/root/repo/build/tests/comx_datagen_test[1]_include.cmake")
include("/root/repo/build/tests/comx_integration_test[1]_include.cmake")
include("/root/repo/build/tests/comx_roadnet_test[1]_include.cmake")
