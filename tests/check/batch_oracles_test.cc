// Oracle coverage for MatcherKind::kBatch (micro-batch dispatch): clean
// batch runs pass every constraint/policy/differential oracle, the
// batch-specific deadline oracle fires on tampered busy overlaps, and the
// fuzz driver's --batch mode actually adds batch runs with replayable
// commands. TESTING.md lists the slugs exercised here.

#include <cstdint>
#include <set>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "check/fuzz_driver.h"
#include "check/oracles.h"
#include "check/scenario_gen.h"
#include "matching/batch_matcher.h"
#include "testing/scenario_fixtures.h"

namespace comx {
namespace check {
namespace {

using testing_fixtures::DumpViolations;
using testing_fixtures::HasOracle;
using testing_fixtures::MakeRunRecord;

TEST(BatchOraclesTest, CleanBatchRunsPassEveryOracle) {
  DifferentialCounts counted;
  for (uint64_t i = 0; i < 40; ++i) {
    const Scenario s = DrawScenario(101, i);
    auto instance = BuildScenarioInstance(s);
    ASSERT_TRUE(instance.ok());
    const auto violations = CheckMatcherRun(MatcherKind::kBatch, s, *instance,
                                            OracleOptions{}, &counted);
    EXPECT_TRUE(violations.empty())
        << "batch on " << s.Describe() << "\n" << DumpViolations(violations);
  }
  // The stream must reach the differential regime, including the sparse
  // warm-started KM vs dense Hungarian comparison, or this test proves
  // nothing about "incremental-off-equals-dense-off" on batch runs.
  EXPECT_GT(counted.off_bounds, 0);
  EXPECT_GT(counted.incremental_km, 0);
}

TEST(BatchOraclesTest, TamperedBusyOverlapFiresDeadlineOracle) {
  // Hand a dispatched window's worker a second request while the first
  // service is still running: the replay must attribute the overlap to the
  // batch deadline oracle (the one-by-one slug is the non-batch analogue).
  bool fired = false;
  for (uint64_t i = 0; i < 400 && !fired; ++i) {
    const Scenario s = DrawScenario(303, i);
    if (!s.workers_recycle) continue;  // non-recycle reuse fires 1-by-1
    auto instance = BuildScenarioInstance(s);
    if (!instance.ok()) continue;
    auto run = RunMatcherOnInstance(MatcherKind::kBatch, s, *instance);
    if (!run.ok()) continue;
    auto& assignments = run->result.matching.assignments;
    for (size_t j = 1; j < assignments.size() && !fired; ++j) {
      if (assignments[j].worker == assignments[j - 1].worker) continue;
      const WorkerId original = assignments[j].worker;
      assignments[j].worker = assignments[j - 1].worker;
      const auto violations = CheckConstraintOracles(
          MakeRunRecord(MatcherKind::kBatch, s, *instance, *run),
          OracleOptions{});
      assignments[j].worker = original;
      fired = HasOracle(violations, "batch-window-never-violates-deadline");
    }
  }
  EXPECT_TRUE(fired)
      << "no tampered batch run fired batch-window-never-violates-deadline";
}

TEST(BatchOraclesTest, ScenarioStreamDrawsBatchKnobs) {
  int zero_windows = 0;
  int positive_windows = 0;
  std::set<BatchAlgo> algos;
  for (uint64_t i = 0; i < 200; ++i) {
    const Scenario s = DrawScenario(55, i);
    ASSERT_GE(s.batch_window_seconds, 0.0) << s.Describe();
    ASSERT_LE(s.batch_window_seconds, 120.0) << s.Describe();
    if (s.batch_window_seconds == 0.0) {
      ++zero_windows;
    } else {
      ++positive_windows;
    }
    algos.insert(s.batch_algo);
  }
  // The stream must cover the window-0 (pure online) edge and several
  // window solvers, or the batch fuzz pass degenerates to one config.
  EXPECT_GT(zero_windows, 0);
  EXPECT_GT(positive_windows, 0);
  EXPECT_GE(algos.size(), 2u);
}

TEST(BatchOraclesTest, FuzzWithBatchAddsBatchRunsAndStaysClean) {
  FuzzOptions options;
  options.base_seed = 77;
  options.runs = 20;
  options.shrink = false;
  options.include_batch = true;
  auto report = RunFuzz(options);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_TRUE(report->ok()) << report->failures.size() << " failures";
  EXPECT_EQ(report->scenarios_run, 20);
  // Every fault-free scenario runs a fourth (batch) matcher on top of the
  // baseline three; at least one of 20 scenarios must be fault-free.
  EXPECT_GT(report->matcher_runs, report->scenarios_run * 3);
}

TEST(BatchOraclesTest, ReplayCommandCarriesBatchKnobs) {
  const Scenario s = DrawScenario(9, 3);
  const std::string cmd = ReplayCommand(s, MatcherKind::kBatch, "prefix");
  EXPECT_NE(cmd.find("--algo batch"), std::string::npos) << cmd;
  EXPECT_NE(cmd.find("--batch-window"), std::string::npos) << cmd;
  EXPECT_NE(cmd.find("--batch-algo"), std::string::npos) << cmd;
}

}  // namespace
}  // namespace check
}  // namespace comx
