// Ride-hailing day replay: builds a Chengdu-like two-platform day (a
// scaled clone of the paper's RDC10 + RYC10 datasets), persists it to CSV,
// reloads it, and replays it under DemCOM — printing an hour-by-hour
// timeline of completions, borrowing, and revenue for the target platform.
//
//   ./build/examples/ride_hailing_day [scale] [output_prefix]

#include <cstdio>
#include <cstdlib>
#include <map>

#include "core/dem_com.h"
#include "core/tota_greedy.h"
#include "datagen/dataset.h"
#include "datagen/real_like.h"
#include "sim/simulator.h"

namespace {

struct HourBucket {
  int64_t completed = 0;
  int64_t cooperative = 0;
  double revenue = 0.0;
};

}  // namespace

int main(int argc, char** argv) {
  const double scale = argc > 1 ? std::atof(argv[1]) : 0.02;
  const std::string prefix = argc > 2 ? argv[2] : "/tmp/comx_rdc10_clone";

  // 1. Generate the day and round-trip it through the CSV persistence so
  //    the example doubles as a dataset-tooling demo.
  auto generated = comx::GenerateRealLike(comx::Rdc10Ryc10(), scale, 2016);
  if (!generated.ok()) {
    std::fprintf(stderr, "generate: %s\n",
                 generated.status().ToString().c_str());
    return 1;
  }
  if (comx::Status s = comx::SaveInstance(*generated, prefix); !s.ok()) {
    std::fprintf(stderr, "save: %s\n", s.ToString().c_str());
    return 1;
  }
  auto instance = comx::LoadInstance(prefix);
  if (!instance.ok()) {
    std::fprintf(stderr, "load: %s\n", instance.status().ToString().c_str());
    return 1;
  }
  std::printf("replaying %s (saved to %s.{workers,requests}.csv)\n",
              instance->Summary().c_str(), prefix.c_str());

  // 2. One DemCOM run (both platforms cooperate).
  comx::SimConfig sim;
  sim.workers_recycle = true;
  comx::DemCom dem0, dem1;
  auto result = comx::RunSimulation(*instance, {&dem0, &dem1}, sim, 1);
  if (!result.ok()) {
    std::fprintf(stderr, "sim: %s\n", result.status().ToString().c_str());
    return 1;
  }

  // 3. Hour-by-hour timeline for platform 0 (the DiDi-like side).
  std::map<int, HourBucket> hours;
  for (const comx::Assignment& a : result->matching.assignments) {
    const comx::Request& r = instance->request(a.request);
    if (r.platform != 0) continue;
    HourBucket& bucket = hours[static_cast<int>(r.time / 3600.0)];
    ++bucket.completed;
    bucket.cooperative += a.is_outer ? 1 : 0;
    bucket.revenue += a.revenue;
  }
  std::printf("\nhour  served  borrowed  revenue   (platform 0)\n");
  for (int h = 0; h < 24; ++h) {
    const HourBucket bucket =
        hours.count(h) ? hours[h] : HourBucket{};
    std::printf("%02d:00 %7lld %9lld %9.1f  %s\n", h,
                static_cast<long long>(bucket.completed),
                static_cast<long long>(bucket.cooperative), bucket.revenue,
                std::string(static_cast<size_t>(bucket.completed / 4),
                            '#')
                    .c_str());
  }

  // 4. Compare against the no-cooperation baseline.
  comx::TotaGreedy tota0, tota1;
  auto baseline = comx::RunSimulation(*instance, {&tota0, &tota1}, sim, 1);
  if (!baseline.ok()) return 1;
  const auto& dem_m = result->metrics.per_platform[0];
  const auto& tota_m = baseline->metrics.per_platform[0];
  std::printf("\nplatform 0 summary: DemCOM rev %.1f (served %lld, borrowed "
              "%lld) vs TOTA rev %.1f (served %lld) — cooperation gain "
              "%+.1f%%\n",
              dem_m.revenue, static_cast<long long>(dem_m.completed),
              static_cast<long long>(dem_m.completed_outer), tota_m.revenue,
              static_cast<long long>(tota_m.completed),
              100.0 * (dem_m.revenue - tota_m.revenue) / tota_m.revenue);
  return 0;
}
