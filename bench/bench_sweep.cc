// Canonical deterministic sweep backing the committed BENCH baseline
// (BENCH_sweep.json at the repo root). Runs a small fixed parameter grid
// (two synthetic workloads x {TOTA, DemCOM, RamCOM} x seeds) on the sweep
// engine and writes one flat JSON record per (workload, algorithm) plus a
// timing summary. Deterministic fields (revenue, completed, cooperative,
// acceptance, payment rate, logical memory) are identical at any --jobs
// value; tools/bench_check diffs a fresh run against the baseline.
//
//   bench_sweep [--jobs N] [--seeds N] [--out PATH]

#include <cstdio>
#include <string>
#include <vector>

#include "common.h"
#include "datagen/synthetic.h"
#include "exp/bench_record.h"
#include "util/memory_meter.h"
#include "util/thread_pool.h"
#include "util/timer.h"

namespace {

const char* ArgString(int argc, char** argv, const std::string& flag,
                      const char* fallback) {
  for (int i = 1; i + 1 < argc; ++i) {
    if (flag == argv[i]) return argv[i + 1];
  }
  return fallback;
}

struct Workload {
  const char* label;
  int64_t requests_per_platform;
  int64_t workers_per_platform;
  double radius_km;
};

}  // namespace

int main(int argc, char** argv) {
  using namespace comx;

  const int jobs = static_cast<int>(bench::ArgInt(argc, argv, "--jobs", 1));
  const int seeds = static_cast<int>(bench::ArgInt(argc, argv, "--seeds", 3));
  const std::string out =
      ArgString(argc, argv, "--out", "BENCH_sweep.json");

  // Sized so the default sweep finishes in seconds serially (the baseline
  // gate runs on every check) while still giving a multicore runner
  // parallel headroom. Workload totals are per-platform counts x 2
  // platforms; R2500_W500 is the Table IV default.
  const std::vector<Workload> workloads = {
      {"R1000_W200", 500, 100, 1.5},
      {"R2500_W500", 1250, 250, 1.0},
  };
  const std::vector<bench::Algo> algos = {
      bench::Algo::kTota, bench::Algo::kDemCom, bench::Algo::kRamCom};

  Stopwatch wall;
  ThreadPool shared_pool(jobs > 1 ? static_cast<size_t>(jobs) : 1);
  std::vector<exp::BenchRecord> records;
  for (const Workload& w : workloads) {
    SyntheticConfig gen;
    gen.requests_per_platform = {w.requests_per_platform};
    gen.workers_per_platform = {w.workers_per_platform};
    gen.radius_km = w.radius_km;
    gen.seed = 2020;
    auto instance = GenerateSynthetic(gen);
    if (!instance.ok()) {
      std::fprintf(stderr, "generate %s: %s\n", w.label,
                   instance.status().ToString().c_str());
      return 1;
    }
    bench::TableRunConfig run;
    run.seeds = seeds;
    run.algos = algos;
    if (jobs > 1) run.pool = &shared_pool;
    run.sim.workers_recycle = true;
    // Response time is a wall-clock measurement (host- and load-
    // dependent); the baseline only records deterministic fields.
    run.sim.measure_response_time = false;
    const std::vector<bench::Row> rows = bench::RunTable(*instance, run);
    for (const bench::Row& row : rows) {
      exp::BenchRecord record;
      record.name = std::string(w.label) + "." + bench::AlgoName(row.algo);
      double revenue = 0.0;
      int64_t completed = 0;
      for (double r : row.revenue) revenue += r;
      for (int64_t c : row.completed) completed += c;
      record.numbers["revenue"] = revenue;
      record.numbers["completed"] = static_cast<double>(completed);
      record.numbers["cooperative"] = static_cast<double>(row.cooperative);
      record.numbers["acceptance"] = row.acceptance;
      record.numbers["payment_rate"] = row.payment_rate;
      record.numbers["memory_mb"] = row.memory_mb;
      record.numbers["seeds"] = static_cast<double>(seeds);
      records.push_back(std::move(record));
    }
    std::printf("%-12s done (%d seeds x %zu algos)\n", w.label, seeds,
                algos.size());
  }

  const double wall_seconds = wall.ElapsedNanos() / 1e9;
  const double runs = static_cast<double>(workloads.size() * algos.size()) *
                      static_cast<double>(seeds);
  exp::BenchRecord summary;
  summary.name = "summary";
  summary.numbers["jobs"] = static_cast<double>(jobs);
  summary.numbers["runs"] = runs;
  summary.numbers["wall_seconds"] = wall_seconds;
  summary.numbers["runs_per_sec"] =
      wall_seconds > 0.0 ? runs / wall_seconds : 0.0;
  summary.numbers["rss_mb"] =
      static_cast<double>(CurrentRssBytes()) / 1e6;
  records.push_back(std::move(summary));

  if (Status st = exp::WriteBenchRecords(out, records); !st.ok()) {
    std::fprintf(stderr, "write %s: %s\n", out.c_str(),
                 st.ToString().c_str());
    return 1;
  }
  std::printf("wrote %s: %.0f runs in %.2fs (%.1f runs/s, jobs=%d)\n",
              out.c_str(), runs, wall_seconds,
              wall_seconds > 0.0 ? runs / wall_seconds : 0.0, jobs);
  return 0;
}
