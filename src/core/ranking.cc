#include "core/ranking.h"

namespace comx {

void Ranking::Reset(const Instance& instance, PlatformId /*platform*/,
                    uint64_t seed) {
  Rng rng(seed);
  ranks_.resize(instance.workers().size());
  for (double& rank : ranks_) rank = rng.NextDouble();
}

Decision Ranking::OnRequest(const Request& r, const PlatformView& view) {
  const std::vector<WorkerId> inner = view.FeasibleInnerWorkers(r);
  WorkerId best = kInvalidId;
  double best_rank = 2.0;
  for (WorkerId w : inner) {
    const double rank = ranks_[static_cast<size_t>(w)];
    if (rank < best_rank) {
      best_rank = rank;
      best = w;
    }
  }
  if (best == kInvalidId) return Decision::Reject();
  return Decision::Inner(best);
}

}  // namespace comx
