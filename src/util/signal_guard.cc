#include "util/signal_guard.h"

#include <csignal>
#include <unistd.h>

#include <atomic>

namespace comx {
namespace {

std::atomic<std::FILE*> g_files[kMaxShutdownFiles];
std::atomic<bool> g_installed{false};
volatile std::sig_atomic_t g_shutdown_requested = 0;

extern "C" void ComxShutdownHandler(int signo) {
  g_shutdown_requested = 1;
  for (auto& slot : g_files) {
    std::FILE* f = slot.load(std::memory_order_relaxed);
    if (f == nullptr) continue;
    std::fflush(f);
    ::fsync(::fileno(f));
  }
  std::fflush(nullptr);
  ::_exit(128 + signo);
}

}  // namespace

void InstallShutdownGuard() {
  bool expected = false;
  if (!g_installed.compare_exchange_strong(expected, true)) return;
  struct sigaction sa = {};
  sa.sa_handler = ComxShutdownHandler;
  sigemptyset(&sa.sa_mask);
  sa.sa_flags = 0;
  ::sigaction(SIGINT, &sa, nullptr);
  ::sigaction(SIGTERM, &sa, nullptr);
}

bool ShutdownRequested() { return g_shutdown_requested != 0; }

void RegisterShutdownFlushFile(std::FILE* f) {
  if (f == nullptr) return;
  for (auto& slot : g_files) {
    std::FILE* expected = nullptr;
    if (slot.compare_exchange_strong(expected, f,
                                     std::memory_order_relaxed)) {
      return;
    }
  }
}

void UnregisterShutdownFlushFile(std::FILE* f) {
  if (f == nullptr) return;
  for (auto& slot : g_files) {
    std::FILE* expected = f;
    slot.compare_exchange_strong(expected, nullptr,
                                 std::memory_order_relaxed);
  }
}

int ShutdownExitCode(int signo) { return 128 + signo; }

}  // namespace comx
