#include "serve/shard.h"

#include <utility>

#include "obs/metrics_registry.h"
#include "util/string_util.h"
#include "util/timer.h"

namespace comx {
namespace serve {

Shard::~Shard() {
  // Belt-and-braces: a correctly used shard is drained or flushed before
  // destruction, but a unit test bailing early must not race the drainer.
  std::unique_lock<std::mutex> lock(mu_);
  draining_ = true;
  cv_.wait(lock, [this] { return !drainer_active_; });
}

Status Shard::Init(const Instance& instance,
                   const std::vector<OnlineMatcher*>& matchers,
                   const Options& options, ThreadPool* pool) {
  options_ = options;
  // The serve layer owns latency measurement and decision reporting; the
  // engine-internal variants would only add clock reads and trace I/O to
  // the hot path (and SaveState forbids the histogram anyway).
  options_.sim.trace = nullptr;
  options_.sim.measure_response_time = false;
  // The step journal checkpoints via SaveState, which batch mode refuses
  // (open windows and warm-started duals are not serialized) — reject the
  // combination up front instead of failing on the first checkpoint.
  if (options_.sim.batch_mode && !options_.wal_path.empty()) {
    return Status::InvalidArgument(StrFormat(
        "shard %d: batch mode cannot journal to a WAL", options.shard_id));
  }
  instance_ = &instance;
  pool_ = pool;
  events_ = instance.events().size();
  cell_ = std::make_unique<StatsCell>(instance.PlatformCount());
  acc_.platforms.assign(static_cast<size_t>(instance.PlatformCount()),
                        PlatformSlice{});
  if (events_ == 0) {
    inert_ = true;
    cell_->Publish(acc_);
    return Status::OK();
  }
  COMX_RETURN_IF_ERROR(
      engine_.Init(instance, matchers, options_.sim, options_.seed));
  if (!options_.wal_path.empty()) {
    COMX_ASSIGN_OR_RETURN(
        journal_,
        recovery::StepJournal::Create(options_.wal_path, options_.wal, instance,
                                      options_.sim, options_.seed,
                                      /*crash=*/nullptr));
  }
  if (obs::CollectionEnabled()) {
    registry_latency_ = obs::MetricsRegistry::Global().GetLatencyHistogram(
        obs::MetricName("comx_serve_decision_latency_ns", "shard",
                        static_cast<int64_t>(options_.shard_id)),
        "Shard decision latency from queue pop to step completion");
  }
  cell_->Publish(acc_);
  return Status::OK();
}

Status Shard::Submit(int64_t local_index, int64_t global_index, Callback cb) {
  std::lock_guard<std::mutex> lock(mu_);
  if (inert_) {
    return Status::FailedPrecondition(
        StrFormat("shard %d is empty and accepts no events", options_.shard_id));
  }
  if (draining_ || finished_) {
    return Status::FailedPrecondition(
        StrFormat("shard %d is draining", options_.shard_id));
  }
  if (!failed_.ok()) return failed_;
  queue_.push_back(Pending{local_index, global_index, std::move(cb)});
  ++acc_submitted_;
  if (!drainer_active_) {
    drainer_active_ = true;
    pool_->Submit([this] { DrainLoop(); });
  }
  return Status::OK();
}

void Shard::DrainLoop() {
  for (;;) {
    std::deque<Pending> batch;
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (queue_.empty()) {
        PublishLocked();
        drainer_active_ = false;
        cv_.notify_all();
        return;
      }
      batch.swap(queue_);
    }
    Status err;
    {
      std::lock_guard<std::mutex> lock(mu_);
      err = failed_;
    }
    for (Pending& p : batch) {
      if (err.ok()) {
        const Status st = ProcessOne(p);
        if (!st.ok()) {
          err = st;
          std::lock_guard<std::mutex> lock(mu_);
          failed_ = st;
        }
      } else if (p.cb) {
        ShardDecision d;
        d.global_index = p.global_index;
        d.shard = options_.shard_id;
        p.cb(err, d);
      }
    }
    std::lock_guard<std::mutex> lock(mu_);
    PublishLocked();
  }
}

Status Shard::ProcessOne(const Pending& p) {
  Stopwatch sw;
  if (static_cast<int64_t>(engine_.static_cursor()) != p.local_index) {
    const Status st = Status::Internal(StrFormat(
        "shard %d: out-of-order submission: next local event is %zu, got %lld",
        options_.shard_id, engine_.static_cursor(),
        static_cast<long long>(p.local_index)));
    if (p.cb) {
      ShardDecision d;
      d.global_index = p.global_index;
      d.shard = options_.shard_id;
      p.cb(st, d);
    }
    return st;
  }
  StepRecord last;
  if (Status st = StepPast(p.local_index, &last); !st.ok()) {
    if (p.cb) {
      ShardDecision d;
      d.global_index = p.global_index;
      d.shard = options_.shard_id;
      p.cb(st, d);
    }
    return st;
  }
  const int64_t nanos = sw.ElapsedNanos();
  latency_.ObserveNanos(nanos);
  if (registry_latency_ != nullptr) registry_latency_->ObserveNanos(nanos);
  if (p.cb) {
    ShardDecision d;
    d.global_index = p.global_index;
    d.shard = options_.shard_id;
    d.record = std::move(last);
    d.latency_nanos = nanos;
    p.cb(Status::OK(), d);
  }
  return Status::OK();
}

Status Shard::StepPast(int64_t local_index, StepRecord* last) {
  // Dynamic re-arrivals due before the submitted static event sort first
  // and do not advance the cursor; the loop drains them, then consumes the
  // static event itself (cursor moves to local_index + 1).
  while (static_cast<int64_t>(engine_.static_cursor()) <= local_index) {
    StepRecord rec;
    COMX_RETURN_IF_ERROR(engine_.Step(&rec));
    if (journal_ != nullptr) {
      COMX_RETURN_IF_ERROR(journal_->JournalStep(engine_, rec));
    }
    Accumulate(rec);
    *last = std::move(rec);
  }
  return Status::OK();
}

void Shard::Accumulate(const StepRecord& rec) {
  ++acc_.steps;
  if (rec.kind == StepRecord::Kind::kArrival) {
    ++acc_.arrivals;
    return;
  }
  if (rec.kind == StepRecord::Kind::kBatchEnqueue) {
    // No decision yet — the request is counted when its window flushes.
    return;
  }
  if (rec.kind == StepRecord::Kind::kBatchFlush) {
    for (const StepRecord::BatchPlatformDelta& d : rec.batch_deltas) {
      acc_.decisions += d.requests;
      acc_.revenue += d.revenue;
      acc_.inner += d.inner;
      acc_.outer += d.outer;
      acc_.rejects += d.rejected;
      if (d.platform >= 0 &&
          d.platform < static_cast<PlatformId>(acc_.platforms.size())) {
        PlatformSlice& slice = acc_.platforms[static_cast<size_t>(d.platform)];
        slice.requests += d.requests;
        slice.revenue += d.revenue;
        slice.inner += d.inner;
        slice.outer += d.outer;
        slice.rejects += d.rejected;
      }
    }
    return;
  }
  ++acc_.decisions;
  acc_.revenue += rec.revenue;
  PlatformSlice* slice = nullptr;
  if (rec.platform >= 0 &&
      rec.platform < static_cast<PlatformId>(acc_.platforms.size())) {
    slice = &acc_.platforms[static_cast<size_t>(rec.platform)];
    ++slice->requests;
    slice->revenue += rec.revenue;
  }
  switch (rec.outcome) {
    case static_cast<int8_t>(Decision::Kind::kInner):
      ++acc_.inner;
      if (slice != nullptr) ++slice->inner;
      break;
    case static_cast<int8_t>(Decision::Kind::kOuter):
      ++acc_.outer;
      if (slice != nullptr) ++slice->outer;
      break;
    default:
      ++acc_.rejects;
      if (slice != nullptr) ++slice->rejects;
      break;
  }
}

void Shard::PublishLocked() {
  acc_.submitted = acc_submitted_;
  acc_.queue_depth = static_cast<int64_t>(queue_.size());
  cell_->Publish(acc_);
}

Status Shard::WaitQuiesced(std::unique_lock<std::mutex>* lock) {
  cv_.wait(*lock, [this] { return !drainer_active_ && queue_.empty(); });
  return failed_;
}

Result<SimResult> Shard::Drain() {
  std::unique_lock<std::mutex> lock(mu_);
  if (finished_) {
    return Status::FailedPrecondition(
        StrFormat("shard %d already drained", options_.shard_id));
  }
  draining_ = true;
  COMX_RETURN_IF_ERROR(WaitQuiesced(&lock));
  if (inert_) {
    finished_ = true;
    return SimResult{};
  }
  // Close of day: consume what the clients never submitted so Finish()'s
  // Eq. 1 totals cover the whole instance (and match the batch simulator).
  while (!engine_.Done()) {
    StepRecord rec;
    if (Status st = engine_.Step(&rec); !st.ok()) {
      failed_ = st;
      return st;
    }
    if (journal_ != nullptr) {
      if (Status st = journal_->JournalStep(engine_, rec); !st.ok()) {
        failed_ = st;
        return st;
      }
    }
    Accumulate(rec);
  }
  SimResult result = engine_.Finish();
  if (journal_ != nullptr) {
    if (Status st = journal_->Finish(engine_); !st.ok()) {
      failed_ = st;
      return st;
    }
    journal_.reset();
  }
  finished_ = true;
  PublishLocked();
  return result;
}

Status Shard::FlushJournal() {
  std::unique_lock<std::mutex> lock(mu_);
  draining_ = true;
  cv_.wait(lock, [this] { return !drainer_active_; });
  if (journal_ == nullptr) return Status::OK();
  return journal_->Flush();
}

}  // namespace serve
}  // namespace comx
