#include "obs/span.h"

#include <gtest/gtest.h>

#include "obs/metrics_registry.h"
#include "obs/profiler.h"

namespace comx {
namespace obs {
namespace {

LatencyHistogram* PhaseHistogram(const char* phase) {
  return MetricsRegistry::Global().GetLatencyHistogram(
      MetricName("comx_span_seconds", "phase", phase));
}

TEST(SpanTest, RecordsOneObservationPerScope) {
  SetCollectionEnabled(true);
  LatencyHistogram* h = PhaseHistogram("span_test_phase");
  const int64_t before = h->Count();
  for (int i = 0; i < 3; ++i) {
    COMX_SPAN("span_test_phase");
  }
  SetCollectionEnabled(false);
  EXPECT_EQ(h->Count(), before + 3);
  EXPECT_GE(h->Snapshot().sum_nanos, 0);
}

TEST(SpanTest, DisabledCollectionRecordsNothing) {
  SetCollectionEnabled(false);
  LatencyHistogram* h = PhaseHistogram("span_test_disabled");
  const int64_t before = h->Count();
  {
    COMX_SPAN("span_test_disabled");
  }
  EXPECT_EQ(h->Count(), before);
}

TEST(SpanTest, EnableStateIsSampledAtScopeEntry) {
  // A span opened while disabled must not record even if collection is
  // turned on before the scope closes (it never started its clock).
  SetCollectionEnabled(false);
  LatencyHistogram* h = PhaseHistogram("span_test_toggle");
  const int64_t before = h->Count();
  {
    COMX_SPAN("span_test_toggle");
    SetCollectionEnabled(true);
  }
  SetCollectionEnabled(false);
  EXPECT_EQ(h->Count(), before);
}

TEST(SpanTest, TwoSitesSamePhaseShareOneHistogram) {
  SetCollectionEnabled(true);
  LatencyHistogram* h = PhaseHistogram("span_test_shared");
  const int64_t before = h->Count();
  {
    COMX_SPAN("span_test_shared");
  }
  {
    COMX_SPAN("span_test_shared");
  }
  SetCollectionEnabled(false);
  EXPECT_EQ(h->Count(), before + 2);
}

TEST(SpanTest, ExplicitStopIsIdempotent) {
  SetCollectionEnabled(true);
  static const SpanSite site("span_test_stop");
  LatencyHistogram* h = PhaseHistogram("span_test_stop");
  const int64_t before = h->Count();
  {
    ScopedSpan span(site);
    span.Stop();
    span.Stop();  // second explicit Stop: no-op
  }               // destructor after Stop: no-op
  SetCollectionEnabled(false);
  EXPECT_EQ(h->Count(), before + 1);
}

TEST(SpanTest, StopRestoresThreadCursorForSiblings) {
  // An early Stop() must pop the span off the thread's stack so a sibling
  // opened afterwards attaches to the same parent, not to the stopped span.
  SetCollectionEnabled(true);
  static const SpanSite outer("span_test_cursor_outer");
  static const SpanSite a("span_test_cursor_a");
  static const SpanSite b("span_test_cursor_b");
  {
    ScopedSpan outer_span(outer);
    ScopedSpan first(a);
    first.Stop();
    ScopedSpan second(b);  // sibling of `a`, child of `outer`
  }
  SetCollectionEnabled(false);
  bool saw_b_under_outer = false;
  for (const ProfileNode& node : SpanProfiler::Global().Snapshot()) {
    if (node.path == "span_test_cursor_outer;span_test_cursor_b") {
      saw_b_under_outer = true;
    }
    // `b` must never appear nested under the already-stopped `a`.
    EXPECT_EQ(node.path.find("span_test_cursor_a;span_test_cursor_b"),
              std::string::npos)
        << node.path;
  }
  EXPECT_TRUE(saw_b_under_outer);
}

TEST(SpanTest, SetSpansDisabledSuppressesRecording) {
  SetCollectionEnabled(true);
  SetSpansDisabled(true);
  EXPECT_FALSE(SpansEnabled());
  LatencyHistogram* h = PhaseHistogram("span_test_kill");
  const int64_t before = h->Count();
  {
    COMX_SPAN("span_test_kill");
  }
  EXPECT_EQ(h->Count(), before);
  SetSpansDisabled(false);
  EXPECT_TRUE(SpansEnabled());
  {
    COMX_SPAN("span_test_kill");
  }
  SetCollectionEnabled(false);
  EXPECT_EQ(h->Count(), before + 1);
}

}  // namespace
}  // namespace obs
}  // namespace comx
