# Empty compiler generated dependencies file for comx_core.
# This may be replaced when dependencies are built.
