// Fig. 5(a)-(d): total revenue, response time, memory, and acceptance ratio
// versus the total request count |R| (Table IV sweep).

#include "fig5_common.h"

int main(int argc, char** argv) {
  using comx::bench::SweepPoint;
  const int seeds =
      static_cast<int>(comx::bench::ArgInt(argc, argv, "--seeds", 6));
  const int jobs =
      static_cast<int>(comx::bench::ArgInt(argc, argv, "--jobs", 1));
  const int64_t max_r = comx::bench::ArgInt(argc, argv, "--max-r", 20'000);
  std::vector<SweepPoint> points;
  for (int64_t r : {500, 1000, 2500, 5000, 10'000, 20'000, 50'000, 100'000}) {
    if (r > max_r) break;  // default trims the two largest for quick runs
    points.push_back(SweepPoint{"R=" + std::to_string(r), r, 500, 1.0});
  }
  comx::bench::RunSweep("Fig. 5(a)-(d)", "|R|", points, seeds,
                        "bench_fig5_r.csv", jobs);
  std::printf("\nexpected shapes (paper): revenue grows with |R|, RamCOM "
              "steepest, TOTA flattest; response time grows ~linearly; "
              "memory grows with |R|; acceptance ratios rise until ~20k "
              "then DemCOM's declines.\n");
  return 0;
}
