#include "pricing/mer_pricer.h"

#include <gtest/gtest.h>

#include "testing/builders.h"

namespace comx {
namespace {

using testing_fixtures::MakeWorker;

Instance WorkersWithHistories(
    const std::vector<std::vector<double>>& histories) {
  Instance ins;
  for (const auto& h : histories) {
    ins.AddWorker(MakeWorker(0, 1, 0, 0, 1, h));
  }
  ins.BuildEvents();
  return ins;
}

TEST(MerPricerTest, EmptyCandidatesZeroQuote) {
  const Instance ins = WorkersWithHistories({{5.0}});
  const AcceptanceModel model(ins);
  const MerQuote q = ComputeMerQuote(model, {}, 10.0);
  EXPECT_EQ(q.payment, 0.0);
  EXPECT_EQ(q.expected_revenue, 0.0);
}

TEST(MerPricerTest, SingleStepWorkerPricedAtThreshold) {
  // Worker accepts iff p >= 4 (prob 1). Expected revenue (10 - p) * 1 is
  // maximized at the smallest accepted payment: exactly 4.
  const Instance ins = WorkersWithHistories({{4.0}});
  const AcceptanceModel model(ins);
  const MerQuote q = ComputeMerQuote(model, {0}, 10.0);
  EXPECT_DOUBLE_EQ(q.payment, 4.0);
  EXPECT_DOUBLE_EQ(q.accept_probability, 1.0);
  EXPECT_DOUBLE_EQ(q.expected_revenue, 6.0);
}

TEST(MerPricerTest, PaperExampleThreeDistribution) {
  // Example 3 of the paper: payments with acceptance probabilities
  // {0.9, 0.8, 0.4, 0.3, 0.2} at platform revenues {1, 2, 3, 4, 5}; the
  // maximum expected revenue is 2 * 0.8 = 1.6 at revenue 2 (payment 4 on
  // v = 6). Histories realizing that ECDF for payments {1..5}: a worker
  // with 10 history entries crossing at the right counts.
  // ECDF(p) for candidate payments p = v - rev: p=5 -> 0.9, p=4 -> 0.8,
  // p=3 -> 0.4, p=2 -> 0.3, p=1 -> 0.2.
  const std::vector<double> hist = {0.9, 0.9, 1.8, 2.7, 2.7, 2.7, 2.7,
                                    3.6, 4.5, 5.4};
  // ECDF: <=1 : 2/10=0.2, <=2: 3/10=0.3, <=3: 7/10=0.7? That breaks the
  // target; instead hand-build: 2 entries <=1, 1 in (1,2], 1 in (2,3],
  // 4 in (3,4], 1 in (4,5], 1 above 5.
  const std::vector<double> hist2 = {0.5, 0.8, 1.5, 2.5, 3.2, 3.4,
                                     3.6, 3.8, 4.5, 8.0};
  (void)hist;
  Instance ins = WorkersWithHistories({hist2});
  const AcceptanceModel model(ins);
  EXPECT_DOUBLE_EQ(model.AcceptProbability(0, 1.0), 0.2);
  EXPECT_DOUBLE_EQ(model.AcceptProbability(0, 2.0), 0.3);
  EXPECT_DOUBLE_EQ(model.AcceptProbability(0, 3.0), 0.4);
  EXPECT_DOUBLE_EQ(model.AcceptProbability(0, 4.0), 0.8);
  EXPECT_DOUBLE_EQ(model.AcceptProbability(0, 5.0), 0.9);

  const MerQuote q = ComputeMerQuote(model, {0}, 6.0);
  // Candidates include the integer grid; the best integer quote is p = 4:
  // (6-4)*0.8 = 1.6 vs p=5: 0.9, p=3: 1.2, p=2: 1.2, p=1: 1.0. History
  // values can only do better at the same step (e.g. 3.8 gives 1.76).
  EXPECT_GE(q.expected_revenue, 1.6);
  EXPECT_DOUBLE_EQ(q.accept_probability,
                   model.AcceptProbability(0, q.payment));
}

TEST(MerPricerTest, HistoryCandidatesBeatCoarseGrid) {
  // The optimum sits just at a history value between grid points.
  const Instance ins = WorkersWithHistories({{2.5}});
  const AcceptanceModel model(ins);
  const MerQuote q = ComputeMerQuote(model, {0}, 10.0);
  EXPECT_DOUBLE_EQ(q.payment, 2.5);
  EXPECT_DOUBLE_EQ(q.expected_revenue, 7.5);
}

TEST(MerPricerTest, NeverQuotesAboveValue) {
  const Instance ins = WorkersWithHistories({{1.0, 5.0, 20.0}});
  const AcceptanceModel model(ins);
  const MerQuote q = ComputeMerQuote(model, {0}, 10.0);
  EXPECT_LE(q.payment, 10.0);
  EXPECT_GE(q.payment, 0.0);
}

TEST(MerPricerTest, HopelessWorkersQuoteValueWithZeroRevenue) {
  const Instance ins = WorkersWithHistories({{100.0}});
  const AcceptanceModel model(ins);
  const MerQuote q = ComputeMerQuote(model, {0}, 10.0);
  EXPECT_DOUBLE_EQ(q.payment, 10.0);
  EXPECT_DOUBLE_EQ(q.expected_revenue, 0.0);
  EXPECT_DOUBLE_EQ(q.accept_probability, 0.0);
}

TEST(MerPricerTest, MoreWorkersWeaklyIncreaseExpectedRevenue) {
  const Instance ins = WorkersWithHistories(
      {{4.0, 8.0}, {2.0, 6.0}, {5.0, 7.0}});
  const AcceptanceModel model(ins);
  const MerQuote q1 = ComputeMerQuote(model, {0}, 10.0);
  const MerQuote q3 = ComputeMerQuote(model, {0, 1, 2}, 10.0);
  EXPECT_GE(q3.expected_revenue + 1e-12, q1.expected_revenue);
}

TEST(MerPricerTest, QuoteIsGridOptimal) {
  // Verify argmax over a dense re-evaluation of the objective.
  const Instance ins = WorkersWithHistories(
      {{1.5, 3.0, 4.5, 6.0}, {2.0, 2.5, 7.0}});
  const AcceptanceModel model(ins);
  const std::vector<WorkerId> cands{0, 1};
  const double v = 8.0;
  const MerQuote q = ComputeMerQuote(model, cands, v);
  for (double p = 0.05; p <= v; p += 0.05) {
    const double e = (v - p) * model.GroupAcceptProbability(cands, p);
    EXPECT_LE(e, q.expected_revenue + 1e-9) << "p=" << p;
  }
}

TEST(MerPricerTest, ExpectedRevenueConsistent) {
  const Instance ins = WorkersWithHistories({{3.0, 6.0}});
  const AcceptanceModel model(ins);
  const MerQuote q = ComputeMerQuote(model, {0}, 9.0);
  EXPECT_NEAR(q.expected_revenue,
              (9.0 - q.payment) * q.accept_probability, 1e-12);
}

}  // namespace
}  // namespace comx
