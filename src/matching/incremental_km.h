// Incremental Kuhn–Munkres (Jonker–Volgenant style shortest augmenting
// paths) for maximum-weight bipartite matching with free disposal. Rows
// (requests) arrive one at a time; each AddRow runs a single Dijkstra over
// reduced costs and augments, reusing the dual potentials built by all
// previous rows. This is what lets the offline optimum OFF (paper
// Section II-B) scale to 100k-request instances: the dense Hungarian solver
// rebuilds an L×R matrix per solve, while this one touches only the
// grid-pruned candidate edges of each arriving request.
//
// Internally we solve the equivalent min-cost assignment on costs
// c(i,j) = -w(i,j) with an explicit null sink T: every row may exit
// unmatched at cost 0 (free disposal), every unmatched column connects to T
// at reduced cost v[j]. Invariants maintained after every AddRow, with
// u[i] the row potential and v[j] the column potential:
//
//   * every edge of a MATCHED row: -w + u[i] - v[j] >= 0 (dual feasibility)
//   * every matched edge:          -w + u[i] - v[j] == 0 (tightness)
//   * rows matched to a column: u[i] >= 0; unmatched rows: u[i] == 0
//   * unmatched columns: v[j] >= 0
//
// Unmatched (disposed) rows sit at u[i] == 0 with no feasibility claim on
// their edges: their certificate is the nonnegative shortest-exit cost
// established when they were added, and augmenting paths only get more
// expensive as later rows consume columns, so "null stays null" remains
// optimal. The matched-row invariant is exactly what keeps every Dijkstra
// arc (matched row -> column) at nonnegative reduced cost, warm-started or
// not.
//
// Satellite convention: with u_i := -u[i], v_j := v[j], c_ij := -w the
// first invariant reads u_i + v_j <= c_ij — see DualFeasibilityGap().

#ifndef COMX_MATCHING_INCREMENTAL_KM_H_
#define COMX_MATCHING_INCREMENTAL_KM_H_

#include <cstdint>
#include <vector>

#include "matching/bipartite_graph.h"
#include "util/result.h"
#include "util/status.h"

namespace comx {

/// Tuning for IncrementalKuhnMunkres.
struct IncrementalKmConfig {
  /// Upper bound on edge relaxations summed over all AddRow calls; the
  /// solver errors with OutOfRange instead of stalling a sweep. The
  /// R100k/W20k grid-pruned stress instance consumes ~3.1e9 relaxations
  /// per platform (~50 s single-core), so the default leaves ~2.5x
  /// headroom while still bounding a runaway solve to a couple minutes.
  int64_t max_relaxations = 8'000'000'000;
};

/// Online maximum-weight assignment with dual reuse across row arrivals.
class IncrementalKuhnMunkres {
 public:
  using Config = IncrementalKmConfig;

  /// One candidate edge of an arriving row.
  struct RowEdge {
    int32_t column = 0;
    double weight = 0.0;
  };

  explicit IncrementalKuhnMunkres(int32_t column_count,
                                  Config config = IncrementalKmConfig());

  /// Seeds the column potentials before any row is added (warm start from a
  /// previous window's duals). Values are clamped to >= 0 because the fresh
  /// empty matching leaves every column unmatched. Errors with
  /// FailedPrecondition after AddRow and InvalidArgument on size mismatch
  /// or non-finite values.
  Status WarmStart(const std::vector<double>& column_potentials);

  /// Adds one row with its candidate edges and re-optimizes. Edges with
  /// weight <= 0 are dropped (free disposal makes them worthless), parallel
  /// edges collapse to their maximum weight. Returns the new row's id.
  /// Errors with OutOfRange on bad columns or an exhausted relaxation
  /// budget and InvalidArgument on non-finite weights.
  Result<int32_t> AddRow(const std::vector<RowEdge>& edges);

  int32_t row_count() const { return static_cast<int32_t>(u_.size()); }
  int32_t column_count() const { return static_cast<int32_t>(v_.size()); }

  /// Matched column of `row` (-1 when unmatched / out of range).
  int32_t MatchOfRow(int32_t row) const;
  /// Matched row of `column` (-1 when unmatched / out of range).
  int32_t MatchOfColumn(int32_t column) const;

  /// Current duals. Row potentials are >= 0; column potentials of
  /// unmatched columns are >= 0.
  const std::vector<double>& row_potentials() const { return u_; }
  const std::vector<double>& column_potentials() const { return v_; }

  /// max(0, max over edges of matched rows of w - u[row] + v[column]) —
  /// 0 when the duals are feasible (see the invariant list above; disposed
  /// rows make no feasibility claim). Exposed for the dual-feasibility
  /// oracle; the dual updates accumulate rounding, so tests compare
  /// against an ulp-scale bound (1e-9), and anything beyond that is a
  /// solver bug.
  double DualFeasibilityGap() const;

  /// Snapshot of the current matching. The total sums matched weights in
  /// ascending column order, the same order HungarianMaxWeight uses, so a
  /// unique-optimum instance reproduces the dense total bit for bit.
  BipartiteMatching Extract() const;

  /// Relaxations consumed so far (monotone across AddRow calls).
  int64_t relaxations_used() const { return relax_ops_; }

 private:
  double EdgeWeight(int32_t row, int32_t column) const;

  Config config_;
  std::vector<double> v_;          // column potentials
  std::vector<double> u_;          // row potentials, grows with AddRow
  std::vector<int32_t> match_col_; // column -> row or -1
  std::vector<int32_t> match_row_; // row -> column or -1

  // Retained row edges (CSR): later Dijkstras relax through matched rows.
  std::vector<size_t> row_start_;  // size row_count()+1
  std::vector<int32_t> edge_col_;
  std::vector<double> edge_w_;

  // Generation-stamped Dijkstra scratch (no O(columns) clear per row).
  std::vector<double> d_;
  std::vector<int32_t> pred_col_;
  std::vector<uint32_t> d_gen_;
  std::vector<uint32_t> done_gen_;
  uint32_t gen_ = 0;
  int64_t relax_ops_ = 0;
};

/// Convenience wrapper matching the HungarianMaxWeight contract: feeds the
/// graph's left vertices through an IncrementalKuhnMunkres in index order.
/// Requirements mirror the dense solver: every weight >= 0, parallel edges
/// collapse to their maximum. Errors with InvalidArgument on negative
/// weights and OutOfRange when the relaxation budget is exhausted.
Result<BipartiteMatching> IncrementalKmMaxWeight(
    const BipartiteGraph& graph, IncrementalKmConfig config = {});

}  // namespace comx

#endif  // COMX_MATCHING_INCREMENTAL_KM_H_
