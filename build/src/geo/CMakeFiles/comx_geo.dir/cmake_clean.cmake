file(REMOVE_RECURSE
  "CMakeFiles/comx_geo.dir/bbox.cc.o"
  "CMakeFiles/comx_geo.dir/bbox.cc.o.d"
  "CMakeFiles/comx_geo.dir/distance.cc.o"
  "CMakeFiles/comx_geo.dir/distance.cc.o.d"
  "CMakeFiles/comx_geo.dir/grid_index.cc.o"
  "CMakeFiles/comx_geo.dir/grid_index.cc.o.d"
  "CMakeFiles/comx_geo.dir/kd_tree.cc.o"
  "CMakeFiles/comx_geo.dir/kd_tree.cc.o.d"
  "libcomx_geo.a"
  "libcomx_geo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/comx_geo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
