// Arrival events: the unit the online simulator consumes. An event is either
// a worker arrival or a request arrival, referencing the entity by dense id.

#ifndef COMX_MODEL_EVENT_H_
#define COMX_MODEL_EVENT_H_

#include <string>

#include "model/ids.h"

namespace comx {

/// Kind of arrival.
enum class EventKind : int8_t {
  kWorkerArrival = 0,
  kRequestArrival = 1,
};

/// One arrival in the interleaved online stream.
struct Event {
  /// Arrival time; the stream is sorted ascending by this.
  Timestamp time = 0.0;
  /// Worker or request arrival.
  EventKind kind = EventKind::kWorkerArrival;
  /// Dense id of the worker or request (interpreted per `kind`).
  int64_t entity_id = kInvalidId;
  /// Stable tiebreaker: position in the original input order. Events with
  /// equal time are ordered by this, so worker-before-request ties follow
  /// the dataset's declared arrival order (Table II semantics).
  int64_t sequence = 0;

  /// Strict stream order: by time, then by sequence.
  bool operator<(const Event& other) const {
    if (time != other.time) return time < other.time;
    return sequence < other.sequence;
  }
  bool operator==(const Event& other) const {
    return time == other.time && kind == other.kind &&
           entity_id == other.entity_id && sequence == other.sequence;
  }

  /// Compact debug representation.
  std::string ToString() const;
};

}  // namespace comx

#endif  // COMX_MODEL_EVENT_H_
