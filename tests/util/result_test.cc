#include "util/result.h"

#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

namespace comx {
namespace {

TEST(ResultTest, HoldsValue) {
  Result<int> r = 42;
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 42);
  EXPECT_EQ(*r, 42);
  EXPECT_TRUE(r.status().ok());
}

TEST(ResultTest, HoldsError) {
  Result<int> r = Status::NotFound("nope");
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
}

TEST(ResultTest, MoveOnlyValue) {
  Result<std::unique_ptr<int>> r = std::make_unique<int>(7);
  ASSERT_TRUE(r.ok());
  std::unique_ptr<int> v = std::move(r).value();
  EXPECT_EQ(*v, 7);
}

TEST(ResultTest, ValueOrFallsBack) {
  Result<int> ok = 3;
  Result<int> err = Status::Internal("x");
  EXPECT_EQ(ok.value_or(-1), 3);
  EXPECT_EQ(err.value_or(-1), -1);
}

TEST(ResultTest, ArrowOperator) {
  Result<std::string> r = std::string("hello");
  EXPECT_EQ(r->size(), 5u);
}

Result<int> ParsePositive(int x) {
  if (x <= 0) return Status::InvalidArgument("not positive");
  return x;
}

Result<int> Doubled(int x) {
  COMX_ASSIGN_OR_RETURN(int v, ParsePositive(x));
  return v * 2;
}

TEST(ResultTest, AssignOrReturnHappyPath) {
  Result<int> r = Doubled(21);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 42);
}

TEST(ResultTest, AssignOrReturnPropagatesError) {
  Result<int> r = Doubled(-5);
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
}

TEST(ResultTest, VectorValue) {
  Result<std::vector<int>> r = std::vector<int>{1, 2, 3};
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value().size(), 3u);
}

}  // namespace
}  // namespace comx
