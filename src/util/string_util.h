// Small string helpers shared by dataset I/O and report formatting.

#ifndef COMX_UTIL_STRING_UTIL_H_
#define COMX_UTIL_STRING_UTIL_H_

#include <string>
#include <string_view>
#include <vector>

#include "util/result.h"

namespace comx {

/// Splits on a single-character delimiter; keeps empty fields.
std::vector<std::string> Split(std::string_view s, char delim);

/// Strips ASCII whitespace from both ends.
std::string_view Trim(std::string_view s);

/// Joins parts with the given separator.
std::string Join(const std::vector<std::string>& parts,
                 std::string_view separator);

/// printf-style formatting into a std::string.
std::string StrFormat(const char* fmt, ...)
    __attribute__((format(printf, 1, 2)));

/// Strict parse of a double; errors on trailing garbage or empty input.
Result<double> ParseDouble(std::string_view s);

/// Strict parse of an int64; errors on trailing garbage or empty input.
Result<int64_t> ParseInt64(std::string_view s);

}  // namespace comx

#endif  // COMX_UTIL_STRING_UTIL_H_
