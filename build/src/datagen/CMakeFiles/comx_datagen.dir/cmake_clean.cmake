file(REMOVE_RECURSE
  "CMakeFiles/comx_datagen.dir/arrival_process.cc.o"
  "CMakeFiles/comx_datagen.dir/arrival_process.cc.o.d"
  "CMakeFiles/comx_datagen.dir/city_model.cc.o"
  "CMakeFiles/comx_datagen.dir/city_model.cc.o.d"
  "CMakeFiles/comx_datagen.dir/dataset.cc.o"
  "CMakeFiles/comx_datagen.dir/dataset.cc.o.d"
  "CMakeFiles/comx_datagen.dir/density.cc.o"
  "CMakeFiles/comx_datagen.dir/density.cc.o.d"
  "CMakeFiles/comx_datagen.dir/real_like.cc.o"
  "CMakeFiles/comx_datagen.dir/real_like.cc.o.d"
  "CMakeFiles/comx_datagen.dir/synthetic.cc.o"
  "CMakeFiles/comx_datagen.dir/synthetic.cc.o.d"
  "CMakeFiles/comx_datagen.dir/value_model.cc.o"
  "CMakeFiles/comx_datagen.dir/value_model.cc.o.d"
  "libcomx_datagen.a"
  "libcomx_datagen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/comx_datagen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
