#include "sim/simulator.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <queue>
#include <vector>

#include "geo/distance.h"
#include "pricing/acceptance_model.h"
#include "sim/platform_view.h"
#include "sim/worker_pool.h"
#include "util/memory_meter.h"
#include "util/string_util.h"
#include "util/timer.h"

namespace comx {

double ServiceDurationSeconds(const SimConfig& config, double pickup_km,
                              double value) {
  const double travel_s = pickup_km / config.speed_kmh * 3600.0;
  return travel_s + config.base_service_seconds +
         config.service_seconds_per_value * value;
}

namespace {

// Deterministic logical footprint of the static instance data.
int64_t InstanceLogicalBytes(const Instance& instance) {
  int64_t bytes = 0;
  bytes += static_cast<int64_t>(instance.workers().size() * sizeof(Worker));
  bytes += static_cast<int64_t>(instance.requests().size() * sizeof(Request));
  bytes += static_cast<int64_t>(instance.events().size() * sizeof(Event));
  for (const Worker& w : instance.workers()) {
    bytes += static_cast<int64_t>(w.history.size() * sizeof(double));
  }
  return bytes;
}

struct QueuedEvent {
  Event event;
  bool operator>(const QueuedEvent& o) const { return o.event < event; }
};

}  // namespace

Result<SimResult> RunSimulation(const Instance& instance,
                                const std::vector<OnlineMatcher*>& matchers,
                                const SimConfig& config, uint64_t seed) {
  const int32_t platform_count = instance.PlatformCount();
  if (static_cast<int32_t>(matchers.size()) != platform_count) {
    return Status::InvalidArgument(
        StrFormat("need %d matchers, got %zu", platform_count,
                  matchers.size()));
  }
  for (OnlineMatcher* m : matchers) {
    if (m == nullptr) return Status::InvalidArgument("null matcher");
  }

  Stopwatch wall;
  const DistanceMetric& metric =
      config.metric != nullptr ? *config.metric : DefaultMetric();
  const AcceptanceModel acceptance(instance, config.acceptance_mode,
                                   config.reservation_seed);
  WorkerPool pool(instance, &metric);
  MemoryMeter pool_meter;
  // Per-available-worker footprint: grid bucket slot + location + flags.
  constexpr int64_t kPoolEntryBytes =
      static_cast<int64_t>(sizeof(int64_t) + sizeof(Point) +
                           sizeof(Timestamp) + 1);

  std::vector<PoolPlatformView> views;
  views.reserve(static_cast<size_t>(platform_count));
  for (PlatformId p = 0; p < platform_count; ++p) {
    views.emplace_back(instance, acceptance, pool, p);
    matchers[static_cast<size_t>(p)]->Reset(instance, p,
                                            seed + static_cast<uint64_t>(p));
  }

  SimResult result;
  result.metrics.per_platform.assign(static_cast<size_t>(platform_count),
                                     PlatformMetrics{});

  std::priority_queue<QueuedEvent, std::vector<QueuedEvent>, std::greater<>>
      queue;
  for (const Event& e : instance.events()) queue.push(QueuedEvent{e});
  const int64_t static_event_count =
      static_cast<int64_t>(instance.events().size());
  int64_t dynamic_sequence = static_event_count;
  // Drop-off point of each worker's last completed service; re-arrival
  // events place the worker there instead of at its static start location.
  std::vector<Point> drop_off(instance.workers().size());

  Stopwatch request_clock;
  while (!queue.empty()) {
    const Event e = queue.top().event;
    queue.pop();
    if (e.kind == EventKind::kWorkerArrival) {
      const Worker& w = instance.worker(e.entity_id);
      // Initial arrivals start at the static location; re-arrivals at the
      // drop-off point of the service that just finished.
      const Point where = (e.sequence < static_event_count)
                              ? w.location
                              : drop_off[static_cast<size_t>(e.entity_id)];
      COMX_RETURN_IF_ERROR(pool.OnArrival(e.entity_id, where, e.time));
      pool_meter.Allocate(kPoolEntryBytes);
      continue;
    }

    const Request& r = instance.request(e.entity_id);
    PlatformMetrics& pm =
        result.metrics.per_platform[static_cast<size_t>(r.platform)];
    OnlineMatcher* matcher = matchers[static_cast<size_t>(r.platform)];
    const PoolPlatformView& view = views[static_cast<size_t>(r.platform)];

    if (config.measure_response_time) request_clock.Reset();
    const Decision decision = matcher->OnRequest(r, view);
    if (config.measure_response_time) {
      pm.response_time_us.Add(request_clock.ElapsedMicros());
    }

    if (decision.attempted_outer) ++pm.outer_offers;

    if (decision.kind == Decision::Kind::kReject) {
      ++pm.rejected;
      continue;
    }

    // Validate and apply the decision.
    const WorkerId wid = decision.worker;
    if (wid < 0 || wid >= static_cast<WorkerId>(instance.workers().size())) {
      return Status::Internal(
          StrFormat("%s returned invalid worker id", matcher->name().c_str()));
    }
    if (!pool.IsAvailable(wid)) {
      return Status::Internal(StrFormat("%s assigned an occupied worker",
                                        matcher->name().c_str()));
    }
    const Worker& w = instance.worker(wid);
    const bool is_outer = w.platform != r.platform;
    if ((decision.kind == Decision::Kind::kOuter) != is_outer) {
      return Status::Internal(
          StrFormat("%s mislabelled inner/outer for worker %lld",
                    matcher->name().c_str(), static_cast<long long>(wid)));
    }
    const double pickup_km =
        metric.Distance(pool.CurrentLocation(wid), r.location);
    if (pickup_km > w.radius + 1e-9) {
      return Status::Internal(StrFormat(
          "%s violated the range constraint (%.3f > %.3f)",
          matcher->name().c_str(), pickup_km, w.radius));
    }
    if (pool.AvailableSince(wid) > r.time) {
      return Status::Internal(
          StrFormat("%s violated the time constraint",
                    matcher->name().c_str()));
    }

    Assignment a;
    a.request = r.id;
    a.worker = wid;
    a.is_outer = is_outer;
    if (is_outer) {
      const double payment = decision.outer_payment;
      if (!(payment > 0.0) || payment > r.value + 1e-9) {
        return Status::Internal(StrFormat(
            "%s quoted outer payment %.4f outside (0, v=%.4f]",
            matcher->name().c_str(), payment, r.value));
      }
      a.outer_payment = payment;
      a.revenue = r.value - payment;
      ++pm.completed_outer;
      pm.outer_payment_sum += payment;
      pm.payment_rate_sum += payment / r.value;
    } else {
      a.outer_payment = 0.0;
      a.revenue = r.value;
      ++pm.completed_inner;
    }
    ++pm.completed;
    pm.revenue += a.revenue;
    pm.total_pickup_km += pickup_km;
    result.matching.Add(a);

    COMX_RETURN_IF_ERROR(pool.MarkOccupied(wid));
    pool_meter.Release(kPoolEntryBytes);

    if (config.workers_recycle) {
      const double duration =
          ServiceDurationSeconds(config, pickup_km, r.value);
      Event rearrival;
      rearrival.time = r.time + duration;
      rearrival.kind = EventKind::kWorkerArrival;
      rearrival.entity_id = wid;
      rearrival.sequence = dynamic_sequence++;
      drop_off[static_cast<size_t>(wid)] = r.location;
      queue.push(QueuedEvent{rearrival});
    }
  }

  result.metrics.logical_bytes =
      InstanceLogicalBytes(instance) + pool_meter.peak_bytes();
  result.metrics.rss_bytes = CurrentRssBytes();
  result.metrics.wall_seconds = wall.ElapsedNanos() / 1e9;
  return result;
}

Status AuditSimResult(const Instance& instance, const SimConfig& config,
                      const SimResult& result) {
  const DistanceMetric& metric =
      config.metric != nullptr ? *config.metric : DefaultMetric();
  std::vector<Timestamp> available_since(instance.workers().size());
  std::vector<Point> location(instance.workers().size());
  std::vector<char> busy(instance.workers().size(), 0);
  std::vector<char> request_served(instance.requests().size(), 0);
  for (const Worker& w : instance.workers()) {
    available_since[static_cast<size_t>(w.id)] = w.time;
    location[static_cast<size_t>(w.id)] = w.location;
  }

  // Replay in recorded order; times must be non-decreasing. With recycling
  // a worker frees up at its service end; we track that explicitly.
  std::vector<Timestamp> busy_until(instance.workers().size(), 0.0);
  double last_time = -std::numeric_limits<double>::infinity();
  double revenue_check = 0.0;
  for (const Assignment& a : result.matching.assignments) {
    if (a.request < 0 ||
        a.request >= static_cast<RequestId>(instance.requests().size())) {
      return Status::OutOfRange("assignment references unknown request");
    }
    if (a.worker < 0 ||
        a.worker >= static_cast<WorkerId>(instance.workers().size())) {
      return Status::OutOfRange("assignment references unknown worker");
    }
    const Request& r = instance.request(a.request);
    const Worker& w = instance.worker(a.worker);
    if (r.time < last_time - 1e-9) {
      return Status::FailedPrecondition("assignments out of time order");
    }
    last_time = r.time;
    if (request_served[static_cast<size_t>(a.request)]) {
      return Status::FailedPrecondition("request served twice");
    }
    request_served[static_cast<size_t>(a.request)] = 1;

    auto& since = available_since[static_cast<size_t>(a.worker)];
    auto& loc = location[static_cast<size_t>(a.worker)];
    auto& is_busy = busy[static_cast<size_t>(a.worker)];
    auto& until = busy_until[static_cast<size_t>(a.worker)];
    if (is_busy) {
      if (!config.workers_recycle) {
        return Status::FailedPrecondition("worker used twice (1-by-1)");
      }
      if (until > r.time + 1e-9) {
        return Status::FailedPrecondition(
            "worker assigned while still serving");
      }
      // Recycled: it became available at `until` at the previous drop-off.
      since = until;
      is_busy = false;
    }
    if (since > r.time + 1e-9) {
      return Status::FailedPrecondition("time constraint violated");
    }
    const double pickup = metric.Distance(loc, r.location);
    if (pickup > w.radius + 1e-9) {
      return Status::FailedPrecondition("range constraint violated");
    }
    const bool is_outer = w.platform != r.platform;
    if (is_outer != a.is_outer) {
      return Status::FailedPrecondition("inner/outer flag wrong");
    }
    if (is_outer) {
      if (!(a.outer_payment > 0.0) || a.outer_payment > r.value + 1e-9) {
        return Status::FailedPrecondition("outer payment outside (0, v]");
      }
      if (std::abs(a.revenue - (r.value - a.outer_payment)) > 1e-9) {
        return Status::FailedPrecondition("outer revenue accounting wrong");
      }
    } else {
      if (a.outer_payment != 0.0) {
        return Status::FailedPrecondition("inner match has outer payment");
      }
      if (std::abs(a.revenue - r.value) > 1e-9) {
        return Status::FailedPrecondition("inner revenue accounting wrong");
      }
    }
    revenue_check += a.revenue;

    is_busy = true;
    until = r.time + (config.workers_recycle
                          ? ServiceDurationSeconds(config, pickup, r.value)
                          : std::numeric_limits<double>::infinity());
    loc = r.location;
  }
  if (std::abs(revenue_check - result.matching.total_revenue) > 1e-6) {
    return Status::FailedPrecondition("total revenue mismatch");
  }
  return Status::OK();
}

}  // namespace comx
