#include "util/json.h"

#include <cctype>
#include <cmath>
#include <cstdio>

#include "util/string_util.h"

namespace comx {

std::string JsonEscape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string JsonDouble(double v) {
  if (!std::isfinite(v)) return "null";
  // 17 significant digits round-trip any IEEE-754 double exactly; the
  // trace replay check (obs/trace.h) depends on this.
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

void JsonWriter::MaybeComma() {
  if (pending_key_) {
    pending_key_ = false;
    return;
  }
  if (has_element_.back()) out_ += ',';
  has_element_.back() = true;
}

JsonWriter& JsonWriter::BeginObject() {
  MaybeComma();
  out_ += '{';
  has_element_.push_back(false);
  return *this;
}

JsonWriter& JsonWriter::EndObject() {
  out_ += '}';
  has_element_.pop_back();
  return *this;
}

JsonWriter& JsonWriter::BeginArray() {
  MaybeComma();
  out_ += '[';
  has_element_.push_back(false);
  return *this;
}

JsonWriter& JsonWriter::EndArray() {
  out_ += ']';
  has_element_.pop_back();
  return *this;
}

JsonWriter& JsonWriter::Key(std::string_view key) {
  MaybeComma();
  out_ += '"';
  out_ += JsonEscape(key);
  out_ += "\":";
  pending_key_ = true;
  return *this;
}

JsonWriter& JsonWriter::Value(std::string_view v) {
  MaybeComma();
  out_ += '"';
  out_ += JsonEscape(v);
  out_ += '"';
  return *this;
}

JsonWriter& JsonWriter::Value(double v) {
  MaybeComma();
  out_ += JsonDouble(v);
  return *this;
}

JsonWriter& JsonWriter::Value(int64_t v) {
  MaybeComma();
  out_ += std::to_string(v);
  return *this;
}

JsonWriter& JsonWriter::Raw(std::string_view json) {
  MaybeComma();
  out_ += json;
  return *this;
}

JsonWriter& JsonWriter::Value(bool v) {
  MaybeComma();
  out_ += v ? "true" : "false";
  return *this;
}

JsonWriter& JsonWriter::Null() {
  MaybeComma();
  out_ += "null";
  return *this;
}

namespace {

void SkipSpace(std::string_view s, size_t* i) {
  while (*i < s.size() &&
         std::isspace(static_cast<unsigned char>(s[*i])) != 0) {
    ++*i;
  }
}

// Parses a JSON string literal starting at s[*i] == '"'.
Result<std::string> ParseString(std::string_view s, size_t* i) {
  if (*i >= s.size() || s[*i] != '"') {
    return Status::InvalidArgument("expected '\"'");
  }
  ++*i;
  std::string out;
  while (*i < s.size() && s[*i] != '"') {
    char c = s[*i];
    if (c == '\\') {
      ++*i;
      if (*i >= s.size()) return Status::InvalidArgument("dangling escape");
      switch (s[*i]) {
        case '"':
          out += '"';
          break;
        case '\\':
          out += '\\';
          break;
        case '/':
          out += '/';
          break;
        case 'n':
          out += '\n';
          break;
        case 'r':
          out += '\r';
          break;
        case 't':
          out += '\t';
          break;
        case 'u': {
          if (*i + 4 >= s.size()) {
            return Status::InvalidArgument("truncated \\u escape");
          }
          unsigned code = 0;
          for (int k = 1; k <= 4; ++k) {
            const char h = s[*i + static_cast<size_t>(k)];
            code <<= 4;
            if (h >= '0' && h <= '9') {
              code |= static_cast<unsigned>(h - '0');
            } else if (h >= 'a' && h <= 'f') {
              code |= static_cast<unsigned>(h - 'a' + 10);
            } else if (h >= 'A' && h <= 'F') {
              code |= static_cast<unsigned>(h - 'A' + 10);
            } else {
              return Status::InvalidArgument("bad \\u escape");
            }
          }
          if (code > 0x7f) {
            return Status::Unimplemented("non-ASCII \\u escape");
          }
          out += static_cast<char>(code);
          *i += 4;
          break;
        }
        default:
          return Status::InvalidArgument("unknown escape");
      }
      ++*i;
    } else {
      out += c;
      ++*i;
    }
  }
  if (*i >= s.size()) return Status::InvalidArgument("unterminated string");
  ++*i;  // closing quote
  return out;
}

Result<JsonScalar> ParseScalar(std::string_view s, size_t* i) {
  SkipSpace(s, i);
  if (*i >= s.size()) return Status::InvalidArgument("missing value");
  JsonScalar v;
  const char c = s[*i];
  if (c == '"') {
    auto str = ParseString(s, i);
    if (!str.ok()) return str.status();
    v.kind = JsonScalar::Kind::kString;
    v.string_value = *std::move(str);
    return v;
  }
  if (c == '{' || c == '[') {
    return Status::Unimplemented("nested values are not supported");
  }
  // Bare token: number, true, false, null.
  size_t end = *i;
  while (end < s.size() && s[end] != ',' && s[end] != '}' &&
         std::isspace(static_cast<unsigned char>(s[end])) == 0) {
    ++end;
  }
  const std::string_view token = s.substr(*i, end - *i);
  *i = end;
  if (token == "true" || token == "false") {
    v.kind = JsonScalar::Kind::kBool;
    v.bool_value = token == "true";
    return v;
  }
  if (token == "null") {
    v.kind = JsonScalar::Kind::kNull;
    return v;
  }
  auto num = ParseDouble(token);
  if (!num.ok()) {
    return Status::InvalidArgument(
        StrFormat("bad scalar '%.*s'", static_cast<int>(token.size()),
                  token.data()));
  }
  v.kind = JsonScalar::Kind::kNumber;
  v.number_value = *num;
  return v;
}

}  // namespace

Result<std::map<std::string, JsonScalar>> ParseJsonFlatObject(
    std::string_view line) {
  std::map<std::string, JsonScalar> out;
  size_t i = 0;
  SkipSpace(line, &i);
  if (i >= line.size() || line[i] != '{') {
    return Status::InvalidArgument("expected '{'");
  }
  ++i;
  SkipSpace(line, &i);
  if (i < line.size() && line[i] == '}') {
    ++i;
  } else {
    while (true) {
      SkipSpace(line, &i);
      auto key = ParseString(line, &i);
      if (!key.ok()) return key.status();
      SkipSpace(line, &i);
      if (i >= line.size() || line[i] != ':') {
        return Status::InvalidArgument("expected ':'");
      }
      ++i;
      auto value = ParseScalar(line, &i);
      if (!value.ok()) return value.status();
      if (!out.emplace(*std::move(key), *std::move(value)).second) {
        return Status::InvalidArgument("duplicate key");
      }
      SkipSpace(line, &i);
      if (i >= line.size()) return Status::InvalidArgument("unterminated {");
      if (line[i] == ',') {
        ++i;
        continue;
      }
      if (line[i] == '}') {
        ++i;
        break;
      }
      return Status::InvalidArgument("expected ',' or '}'");
    }
  }
  SkipSpace(line, &i);
  if (i != line.size()) {
    return Status::InvalidArgument("trailing characters after object");
  }
  return out;
}

}  // namespace comx
