#include "matching/bipartite_graph.h"

#include <cmath>

#include <gtest/gtest.h>

namespace comx {
namespace {

TEST(BipartiteGraphTest, StartsEmpty) {
  BipartiteGraph g(3, 4);
  EXPECT_EQ(g.left_count(), 3);
  EXPECT_EQ(g.right_count(), 4);
  EXPECT_TRUE(g.edges().empty());
}

TEST(BipartiteGraphTest, AddEdgeValidatesRange) {
  BipartiteGraph g(2, 2);
  EXPECT_TRUE(g.AddEdge(0, 1, 1.0).ok());
  EXPECT_EQ(g.AddEdge(2, 0, 1.0).code(), StatusCode::kOutOfRange);
  EXPECT_EQ(g.AddEdge(-1, 0, 1.0).code(), StatusCode::kOutOfRange);
  EXPECT_EQ(g.AddEdge(0, 2, 1.0).code(), StatusCode::kOutOfRange);
  EXPECT_EQ(g.AddEdge(0, 0, std::nan("")).code(),
            StatusCode::kInvalidArgument);
}

TEST(BipartiteGraphTest, LeftAdjacencyGroupsEdges) {
  BipartiteGraph g(3, 3);
  ASSERT_TRUE(g.AddEdge(0, 0, 1.0).ok());
  ASSERT_TRUE(g.AddEdge(0, 1, 2.0).ok());
  ASSERT_TRUE(g.AddEdge(2, 2, 3.0).ok());
  const auto& adj = g.LeftAdjacency();
  ASSERT_EQ(adj.size(), 3u);
  EXPECT_EQ(adj[0].size(), 2u);
  EXPECT_TRUE(adj[1].empty());
  EXPECT_EQ(adj[2].size(), 1u);
  // Lazy rebuild after more edges.
  ASSERT_TRUE(g.AddEdge(1, 0, 4.0).ok());
  EXPECT_EQ(g.LeftAdjacency()[1].size(), 1u);
}

TEST(BipartiteGraphTest, ValidateMatchingComputesWeight) {
  BipartiteGraph g(2, 2);
  ASSERT_TRUE(g.AddEdge(0, 0, 3.0).ok());
  ASSERT_TRUE(g.AddEdge(1, 1, 4.0).ok());
  double total = 0.0;
  EXPECT_TRUE(g.ValidateMatching({0, 1}, &total).ok());
  EXPECT_DOUBLE_EQ(total, 7.0);
}

TEST(BipartiteGraphTest, ValidateMatchingAllowsUnmatched) {
  BipartiteGraph g(2, 2);
  ASSERT_TRUE(g.AddEdge(0, 0, 3.0).ok());
  double total = 0.0;
  EXPECT_TRUE(g.ValidateMatching({0, -1}, &total).ok());
  EXPECT_DOUBLE_EQ(total, 3.0);
}

TEST(BipartiteGraphTest, ValidateMatchingRejectsNonEdge) {
  BipartiteGraph g(2, 2);
  ASSERT_TRUE(g.AddEdge(0, 0, 3.0).ok());
  EXPECT_EQ(g.ValidateMatching({1, -1}, nullptr).code(),
            StatusCode::kFailedPrecondition);
}

TEST(BipartiteGraphTest, ValidateMatchingRejectsDoubleUse) {
  BipartiteGraph g(2, 1);
  ASSERT_TRUE(g.AddEdge(0, 0, 3.0).ok());
  ASSERT_TRUE(g.AddEdge(1, 0, 2.0).ok());
  EXPECT_EQ(g.ValidateMatching({0, 0}, nullptr).code(),
            StatusCode::kFailedPrecondition);
}

TEST(BipartiteGraphTest, ValidateMatchingWrongSize) {
  BipartiteGraph g(2, 2);
  EXPECT_EQ(g.ValidateMatching({-1}, nullptr).code(),
            StatusCode::kInvalidArgument);
}

TEST(BipartiteGraphTest, ParallelEdgesUseMaxWeight) {
  BipartiteGraph g(1, 1);
  ASSERT_TRUE(g.AddEdge(0, 0, 1.0).ok());
  ASSERT_TRUE(g.AddEdge(0, 0, 5.0).ok());
  double total = 0.0;
  EXPECT_TRUE(g.ValidateMatching({0}, &total).ok());
  EXPECT_DOUBLE_EQ(total, 5.0);
}

TEST(BipartiteGraphTest, SummaryFormat) {
  BipartiteGraph g(2, 3);
  ASSERT_TRUE(g.AddEdge(0, 0, 1.0).ok());
  EXPECT_EQ(g.Summary(), "BipartiteGraph{L=2, R=3, E=1}");
}

}  // namespace
}  // namespace comx
