#include "geo/point.h"

#include <sstream>

#include <gtest/gtest.h>

namespace comx {
namespace {

TEST(PointTest, DefaultIsOrigin) {
  constexpr Point p;
  EXPECT_EQ(p.x, 0.0);
  EXPECT_EQ(p.y, 0.0);
}

TEST(PointTest, Equality) {
  EXPECT_EQ(Point(1, 2), Point(1, 2));
  EXPECT_NE(Point(1, 2), Point(2, 1));
}

TEST(PointTest, Arithmetic) {
  const Point a(1, 2), b(3, -1);
  EXPECT_EQ(a + b, Point(4, 1));
  EXPECT_EQ(a - b, Point(-2, 3));
  EXPECT_EQ(a * 2.0, Point(2, 4));
}

TEST(PointTest, StreamFormat) {
  std::ostringstream os;
  os << Point(1.5, -2.0);
  EXPECT_EQ(os.str(), "(1.5, -2)");
}

}  // namespace
}  // namespace comx
