// Internal: backend entry points wired into the dispatch table. The scalar
// functions are also called directly by the AVX2 backend for loop tails.

#ifndef COMX_KERNELS_BACKENDS_H_
#define COMX_KERNELS_BACKENDS_H_

#include <cstddef>
#include <cstdint>

namespace comx {
namespace kernels {
namespace internal {

void ScalarBatchSquaredDistance(const double* xs, const double* ys, size_t n,
                                double cx, double cy, double* d2_out);
size_t ScalarFilterInRange(const double* xs, const double* ys,
                           const double* radius2, size_t n, double cx,
                           double cy, double range2, int32_t* idx_out,
                           double* d2_out);
void ScalarBatchHaversineA(const double* sin_lat, const double* cos_lat,
                           const double* sin_lon, const double* cos_lon,
                           size_t n, double q_sin_lat, double q_cos_lat,
                           double q_sin_lon, double q_cos_lon,
                           double* a_out);

#if defined(COMX_KERNELS_HAVE_AVX2)
void Avx2BatchSquaredDistance(const double* xs, const double* ys, size_t n,
                              double cx, double cy, double* d2_out);
size_t Avx2FilterInRange(const double* xs, const double* ys,
                         const double* radius2, size_t n, double cx,
                         double cy, double range2, int32_t* idx_out,
                         double* d2_out);
void Avx2BatchHaversineA(const double* sin_lat, const double* cos_lat,
                         const double* sin_lon, const double* cos_lon,
                         size_t n, double q_sin_lat, double q_cos_lat,
                         double q_sin_lon, double q_cos_lon, double* a_out);
#endif  // COMX_KERNELS_HAVE_AVX2

}  // namespace internal
}  // namespace kernels
}  // namespace comx

#endif  // COMX_KERNELS_BACKENDS_H_
