#include "roadnet/road_metric.h"

#include <gtest/gtest.h>

#include "core/dem_com.h"
#include "core/tota_greedy.h"
#include "datagen/synthetic.h"
#include "roadnet/road_generator.h"
#include "sim/simulator.h"
#include "util/rng.h"

namespace comx {
namespace {

RoadGraph TestCity(uint64_t seed = 5) {
  RoadGridConfig config;
  config.rows = 21;
  config.cols = 21;
  config.spacing_km = 1.5;
  config.seed = seed;
  return std::move(GenerateGridCity(config)).value();
}

TEST(EuclideanMetricTest, MatchesFreeFunctions) {
  const EuclideanMetric metric;
  EXPECT_DOUBLE_EQ(metric.Distance(Point(0, 0), Point(3, 4)), 5.0);
  EXPECT_TRUE(metric.WithinRange(Point(0, 0), Point(3, 4), 5.0));
  EXPECT_FALSE(metric.WithinRange(Point(0, 0), Point(3, 4), 4.9));
  EXPECT_EQ(metric.name(), "euclidean");
  EXPECT_EQ(DefaultMetric().name(), "euclidean");
}

TEST(RoadMetricTest, DominatesEuclidean) {
  const RoadGraph city = TestCity();
  const RoadNetworkMetric metric(&city);
  Rng rng(1);
  for (int i = 0; i < 200; ++i) {
    const Point a(rng.Uniform(-12, 12), rng.Uniform(-12, 12));
    const Point b(rng.Uniform(-12, 12), rng.Uniform(-12, 12));
    EXPECT_GE(metric.Distance(a, b) + 1e-9, EuclideanDistance(a, b));
  }
}

TEST(RoadMetricTest, SymmetricAndReflexiveAtNodes) {
  const RoadGraph city = TestCity();
  const RoadNetworkMetric metric(&city);
  const Point a = city.NodeLocation(10);
  const Point b = city.NodeLocation(200);
  EXPECT_NEAR(metric.Distance(a, b), metric.Distance(b, a), 1e-9);
  EXPECT_NEAR(metric.Distance(a, a), 0.0, 1e-9);
}

TEST(RoadMetricTest, WithinRangeUsesEuclideanShortcut) {
  const RoadGraph city = TestCity();
  const RoadNetworkMetric metric(&city);
  // Far beyond the Euclidean bound: rejected without touching the cache.
  EXPECT_FALSE(metric.WithinRange(Point(-12, -12), Point(12, 12), 1.0));
  EXPECT_EQ(metric.cache_size(), 0u);
}

TEST(RoadMetricTest, CachesNodePairs) {
  const RoadGraph city = TestCity();
  const RoadNetworkMetric metric(&city);
  const Point a(-5, -5), b(5, 5);
  const double d1 = metric.Distance(a, b);
  const size_t cached = metric.cache_size();
  EXPECT_GE(cached, 1u);
  const double d2 = metric.Distance(a, b);
  EXPECT_DOUBLE_EQ(d1, d2);
  EXPECT_EQ(metric.cache_size(), cached);  // no growth on repeat
}

TEST(RoadMetricTest, StreetClosureLengthensRoute) {
  // A 1x2 corridor: 0 - 1 - 2 in a line, plus a detour arc 0 - 3 - 2.
  RoadGraph g;
  g.AddNode(Point(0, 0));   // 0
  g.AddNode(Point(1, 0));   // 1
  g.AddNode(Point(2, 0));   // 2
  g.AddNode(Point(1, 2));   // 3 (detour)
  ASSERT_TRUE(g.AddEdge(0, 3).ok());
  ASSERT_TRUE(g.AddEdge(3, 2).ok());
  // Without the direct street, 0 -> 2 must take the detour.
  const RoadNetworkMetric metric(&g);
  const double detour = metric.Distance(Point(0, 0), Point(2, 0));
  EXPECT_GT(detour, 4.0);  // 2 * sqrt(5) ~= 4.47 vs straight-line 2
}

TEST(RoadMetricSimTest, SimulationRunsAndAuditsUnderRoadMetric) {
  const RoadGraph city = TestCity(9);
  const RoadNetworkMetric metric(&city);
  SyntheticConfig config;
  config.requests_per_platform = {150};
  config.workers_per_platform = {40};
  config.radius_km = 2.0;  // roads make 1 km ranges very tight
  config.seed = 12;
  auto instance = GenerateSynthetic(config);
  ASSERT_TRUE(instance.ok());
  SimConfig sim;
  sim.metric = &metric;
  sim.measure_response_time = false;
  DemCom m0, m1;
  auto result = RunSimulation(*instance, {&m0, &m1}, sim, 1);
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_TRUE(AuditSimResult(*instance, sim, *result).ok());
  EXPECT_GT(result->metrics.TotalRevenue(), 0.0);
}

TEST(RoadMetricSimTest, RoadConstraintServesFewerThanEuclidean) {
  // The same workload under road distances can only serve a subset of the
  // Euclidean-feasible pairs (network distance dominates Euclidean).
  const RoadGraph city = TestCity(9);
  const RoadNetworkMetric metric(&city);
  SyntheticConfig config;
  config.requests_per_platform = {200};
  config.workers_per_platform = {50};
  config.radius_km = 1.5;
  config.seed = 13;
  auto instance = GenerateSynthetic(config);
  ASSERT_TRUE(instance.ok());
  SimConfig euclid;
  euclid.measure_response_time = false;
  SimConfig road = euclid;
  road.metric = &metric;
  TotaGreedy e0, e1, r0, r1;
  auto euclid_result = RunSimulation(*instance, {&e0, &e1}, euclid, 1);
  auto road_result = RunSimulation(*instance, {&r0, &r1}, road, 1);
  ASSERT_TRUE(euclid_result.ok());
  ASSERT_TRUE(road_result.ok());
  EXPECT_LE(road_result->metrics.Aggregate().completed,
            euclid_result->metrics.Aggregate().completed);
}

}  // namespace
}  // namespace comx
