
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/roadnet/road_generator.cc" "src/roadnet/CMakeFiles/comx_roadnet.dir/road_generator.cc.o" "gcc" "src/roadnet/CMakeFiles/comx_roadnet.dir/road_generator.cc.o.d"
  "/root/repo/src/roadnet/road_graph.cc" "src/roadnet/CMakeFiles/comx_roadnet.dir/road_graph.cc.o" "gcc" "src/roadnet/CMakeFiles/comx_roadnet.dir/road_graph.cc.o.d"
  "/root/repo/src/roadnet/road_metric.cc" "src/roadnet/CMakeFiles/comx_roadnet.dir/road_metric.cc.o" "gcc" "src/roadnet/CMakeFiles/comx_roadnet.dir/road_metric.cc.o.d"
  "/root/repo/src/roadnet/shortest_path.cc" "src/roadnet/CMakeFiles/comx_roadnet.dir/shortest_path.cc.o" "gcc" "src/roadnet/CMakeFiles/comx_roadnet.dir/shortest_path.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/comx_util.dir/DependInfo.cmake"
  "/root/repo/build/src/geo/CMakeFiles/comx_geo.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
