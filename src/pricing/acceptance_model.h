// Acceptance-probability model (Definition 3.1): the probability that a
// worker accepts an outer payment v' is the empirical CDF of the worker's
// completed-request values at v'. The same model serves as both the
// algorithms' estimator and the simulator's acceptance draw, exactly as in
// Algorithm 1 lines 17-20 of the paper.

#ifndef COMX_PRICING_ACCEPTANCE_MODEL_H_
#define COMX_PRICING_ACCEPTANCE_MODEL_H_

#include <vector>

#include "kernels/ecdf_batch.h"
#include "model/instance.h"
#include "pricing/history.h"
#include "util/rng.h"

namespace comx {

/// How the *realized* accept/reject decision of an offered payment is made.
/// (Estimation — Algorithm 2's Monte-Carlo sampling and the MER objective —
/// always uses the ECDF probabilities regardless of mode.)
enum class AcceptanceMode : int8_t {
  /// The paper's mechanism (Algorithm 1 lines 17-20): every offer draws a
  /// fresh Bernoulli(pr(v', w)). Independent across offers.
  kBernoulli = 0,
  /// Consistent ground truth: worker w holds a fixed reservation payment
  /// rho_w (one uniform draw from its history, so P(rho_w <= p) = pr(p, w))
  /// and accepts exactly the offers >= rho_w. This is the realization the
  /// offline optimum (core/offline_opt.h) knows, so online revenue can
  /// never exceed OPT — required by the competitive-ratio harness.
  kReservation = 1,
};

/// One uniform reservation draw per worker from its history; workers with
/// empty histories get +infinity (never accept). Shared by the offline
/// solver and the reservation acceptance mode so they see one reality.
std::vector<double> DrawWorkerReservations(const Instance& instance,
                                           uint64_t seed);

/// Per-worker acceptance probabilities for a whole Instance.
class AcceptanceModel {
 public:
  /// Builds ECDFs from every worker's history. O(sum |history| log).
  /// `reservation_seed` is only used in kReservation mode.
  explicit AcceptanceModel(const Instance& instance,
                           AcceptanceMode mode = AcceptanceMode::kBernoulli,
                           uint64_t reservation_seed = 42);

  /// pr(v', w): probability worker `w` accepts payment `payment`.
  double AcceptProbability(WorkerId w, double payment) const;

  /// pr(v', W): probability that at least one of `workers` accepts,
  /// assuming independent decisions: 1 - prod(1 - pr).
  double GroupAcceptProbability(const std::vector<WorkerId>& workers,
                                double payment) const;

  /// Simulation draw used by *estimators* (Algorithm 2's sampling):
  /// always Bernoulli(pr), whatever the mode.
  bool DrawAcceptance(WorkerId w, double payment, Rng* rng) const;

  /// The realized decision for an actual offer (Algorithm 1 lines 17-20):
  /// Bernoulli in kBernoulli mode, payment >= rho_w in kReservation mode.
  bool Accepts(WorkerId w, double payment, Rng* rng) const;

  /// The worker's sorted history.
  const ValueHistory& HistoryOf(WorkerId w) const {
    return histories_[static_cast<size_t>(w)];
  }

  /// Flat ECDF mirror of every history — the batched evaluation path used
  /// by Algorithm 2's Monte-Carlo sweeps (kernels/ecdf_batch.h). Values are
  /// bit-identical to AcceptProbability.
  const kernels::EcdfIndex& ecdf() const { return ecdf_; }

  /// Number of workers covered.
  size_t worker_count() const { return histories_.size(); }

  /// The configured decision mode.
  AcceptanceMode mode() const { return mode_; }

 private:
  std::vector<ValueHistory> histories_;
  kernels::EcdfIndex ecdf_;  // flat mirror of histories_, built once
  AcceptanceMode mode_;
  std::vector<double> reservations_;  // only filled in kReservation mode
};

}  // namespace comx

#endif  // COMX_PRICING_ACCEPTANCE_MODEL_H_
