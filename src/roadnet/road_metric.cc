#include "roadnet/road_metric.h"

#include "roadnet/shortest_path.h"

namespace comx {

double RoadNetworkMetric::Distance(const Point& a, const Point& b) const {
  auto na = graph_->NearestNode(a);
  auto nb = graph_->NearestNode(b);
  if (!na.ok() || !nb.ok()) return kUnreachable;
  const double walk_on = EuclideanDistance(a, graph_->NodeLocation(*na));
  const double walk_off = EuclideanDistance(b, graph_->NodeLocation(*nb));
  if (*na == *nb) {
    // Same snap node: within one block; walk segments dominate.
    return walk_on + walk_off;
  }
  const uint64_t key =
      (static_cast<uint64_t>(static_cast<uint32_t>(*na)) << 32) |
      static_cast<uint64_t>(static_cast<uint32_t>(*nb));
  double path;
  if (const auto it = cache_.find(key); it != cache_.end()) {
    path = it->second;
  } else {
    path = AStarKm(*graph_, *na, *nb);
    cache_.emplace(key, path);
    // Undirected graph: store the reverse too.
    cache_.emplace(
        (static_cast<uint64_t>(static_cast<uint32_t>(*nb)) << 32) |
            static_cast<uint64_t>(static_cast<uint32_t>(*na)),
        path);
  }
  return walk_on + path + walk_off;
}

}  // namespace comx
