# Empty compiler generated dependencies file for comx_cli.
# This may be replaced when dependencies are built.
