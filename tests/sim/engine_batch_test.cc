// Batch-mode engine tests: the window=0 differential guarantee (bit
// identity with the online WindowGreedy matcher), windowed feasibility
// under AuditSimResult, determinism, and the mode's refusal surface.

#include <cmath>
#include <limits>
#include <vector>

#include <gtest/gtest.h>

#include "core/window_greedy.h"
#include "fault/fault_plan.h"
#include "sim/sim_engine.h"
#include "sim/simulator.h"
#include "testing/builders.h"
#include "util/rng.h"

namespace comx {
namespace {

using testing_fixtures::MakeRequest;
using testing_fixtures::MakeWorker;
using testing_fixtures::PaperExample;

// A small random 2-platform instance with cross-platform coverage so both
// inner and outer assignments (and their acceptance draws) occur.
Instance RandomInstance(Rng* rng) {
  Instance ins;
  const int workers = static_cast<int>(rng->UniformInt(4, 14));
  const int requests = static_cast<int>(rng->UniformInt(4, 24));
  for (int i = 0; i < workers; ++i) {
    const PlatformId p = static_cast<PlatformId>(rng->UniformInt(0, 1));
    std::vector<double> history;
    const int h = static_cast<int>(rng->UniformInt(1, 4));
    for (int k = 0; k < h; ++k) history.push_back(rng->Uniform(1.0, 8.0));
    ins.AddWorker(MakeWorker(p, rng->Uniform(0.0, 50.0),
                             rng->Uniform(0.0, 4.0), rng->Uniform(0.0, 4.0),
                             rng->Uniform(1.0, 5.0), std::move(history)));
  }
  for (int i = 0; i < requests; ++i) {
    const PlatformId p = static_cast<PlatformId>(rng->UniformInt(0, 1));
    ins.AddRequest(MakeRequest(p, rng->Uniform(0.0, 200.0),
                               rng->Uniform(0.0, 4.0), rng->Uniform(0.0, 4.0),
                               rng->Uniform(1.0, 10.0)));
  }
  ins.BuildEvents();
  return ins;
}

SimConfig BaseConfig() {
  SimConfig c;
  c.measure_response_time = false;
  return c;
}

void ExpectSameResult(const SimResult& a, const SimResult& b) {
  ASSERT_EQ(a.matching.assignments.size(), b.matching.assignments.size());
  for (size_t i = 0; i < a.matching.assignments.size(); ++i) {
    const Assignment& x = a.matching.assignments[i];
    const Assignment& y = b.matching.assignments[i];
    EXPECT_EQ(x.request, y.request) << "assignment " << i;
    EXPECT_EQ(x.worker, y.worker) << "assignment " << i;
    EXPECT_EQ(x.is_outer, y.is_outer) << "assignment " << i;
    // Bitwise: the same candidate pricing and the same RNG draws.
    EXPECT_EQ(x.outer_payment, y.outer_payment) << "assignment " << i;
    EXPECT_EQ(x.revenue, y.revenue) << "assignment " << i;
  }
  EXPECT_EQ(a.metrics.TotalRevenue(), b.metrics.TotalRevenue());
  ASSERT_EQ(a.metrics.per_platform.size(), b.metrics.per_platform.size());
  for (size_t p = 0; p < a.metrics.per_platform.size(); ++p) {
    const PlatformMetrics& x = a.metrics.per_platform[p];
    const PlatformMetrics& y = b.metrics.per_platform[p];
    EXPECT_EQ(x.completed, y.completed);
    EXPECT_EQ(x.completed_inner, y.completed_inner);
    EXPECT_EQ(x.completed_outer, y.completed_outer);
    EXPECT_EQ(x.rejected, y.rejected);
    EXPECT_EQ(x.outer_offers, y.outer_offers);
    EXPECT_EQ(x.revenue, y.revenue);
  }
}

// The tentpole differential: window=0 batch dispatch is the WindowGreedy
// online matcher, decision for decision and RNG draw for RNG draw.
TEST(EngineBatchTest, Window0BitIdenticalToWindowGreedyOver200Seeds) {
  for (uint64_t seed = 0; seed < 200; ++seed) {
    Rng rng(9000 + seed);
    const Instance ins = RandomInstance(&rng);
    const bool recycle = (seed % 3) != 0;
    const uint64_t sim_seed = 77 + seed;

    SimConfig online = BaseConfig();
    online.workers_recycle = recycle;
    if (seed % 4 == 0) {
      online.acceptance_mode = AcceptanceMode::kReservation;
      online.reservation_seed = seed;
    }
    WindowGreedy g0, g1;
    std::vector<OnlineMatcher*> matchers = {&g0, &g1};
    auto base = RunSimulation(ins, matchers, online, sim_seed);
    ASSERT_TRUE(base.ok()) << base.status().message() << " seed " << seed;

    SimConfig batch = online;
    batch.batch_mode = true;
    batch.batch_window_seconds = 0.0;
    auto batched = RunSimulation(ins, matchers, batch, sim_seed);
    ASSERT_TRUE(batched.ok())
        << batched.status().message() << " seed " << seed;
    ExpectSameResult(*base, *batched);
  }
}

TEST(EngineBatchTest, WindowedRunsPassTheAuditAcrossAlgos) {
  for (BatchAlgo algo : {BatchAlgo::kAuto, BatchAlgo::kGreedy,
                         BatchAlgo::kHungarian, BatchAlgo::kIncrementalKm}) {
    Rng rng(314);
    for (uint64_t seed = 0; seed < 20; ++seed) {
      const Instance ins = RandomInstance(&rng);
      SimConfig config = BaseConfig();
      config.batch_mode = true;
      config.batch_window_seconds = 30.0;
      config.batch.algo = algo;
      config.workers_recycle = (seed % 2) == 0;
      WindowGreedy g0, g1;
      auto result = RunSimulation(ins, {&g0, &g1}, config, seed);
      ASSERT_TRUE(result.ok())
          << result.status().message() << " algo "
          << BatchAlgoName(algo) << " seed " << seed;
      EXPECT_TRUE(AuditSimResult(ins, config, *result).ok())
          << AuditSimResult(ins, config, *result).message() << " algo "
          << BatchAlgoName(algo) << " seed " << seed;
    }
  }
}

TEST(EngineBatchTest, WindowedRunIsDeterministic) {
  Rng rng(500);
  const Instance ins = RandomInstance(&rng);
  SimConfig config = BaseConfig();
  config.batch_mode = true;
  config.batch_window_seconds = 45.0;
  WindowGreedy a0, a1, b0, b1;
  auto first = RunSimulation(ins, {&a0, &a1}, config, 9);
  auto second = RunSimulation(ins, {&b0, &b1}, config, 9);
  ASSERT_TRUE(first.ok());
  ASSERT_TRUE(second.ok());
  ExpectSameResult(*first, *second);
}

TEST(EngineBatchTest, StepRecordsAccountForEveryRequest) {
  const Instance ins = PaperExample();
  SimConfig config = BaseConfig();
  config.batch_mode = true;
  config.batch_window_seconds = 4.0;
  WindowGreedy g0, g1;
  SimEngine engine;
  ASSERT_TRUE(engine.Init(ins, {&g0, &g1}, config, 3).ok());
  int64_t enqueued = 0;
  int64_t flushed_requests = 0;
  int64_t flushes = 0;
  StepRecord record;
  while (!engine.Done()) {
    ASSERT_TRUE(engine.Step(&record).ok());
    if (record.kind == StepRecord::Kind::kBatchEnqueue) {
      ++enqueued;
      EXPECT_GE(record.request, 0);
    } else if (record.kind == StepRecord::Kind::kBatchFlush) {
      ++flushes;
      for (const StepRecord::BatchPlatformDelta& d : record.batch_deltas) {
        flushed_requests += d.requests;
        EXPECT_EQ(d.requests, d.inner + d.outer + d.rejected);
      }
    }
  }
  EXPECT_EQ(enqueued, 5);
  EXPECT_EQ(flushed_requests, 5);
  EXPECT_GT(flushes, 1);  // the paper example spans several 4s windows
  const SimResult result = engine.Finish();
  EXPECT_TRUE(AuditSimResult(ins, config, result).ok());
}

TEST(EngineBatchTest, InitRefusesFaultPlans) {
  const Instance ins = PaperExample();
  fault::FaultPlan plan;  // even a trivial plan is refused in batch mode
  SimConfig config = BaseConfig();
  config.batch_mode = true;
  config.fault_plan = &plan;
  WindowGreedy g0, g1;
  SimEngine engine;
  EXPECT_EQ(engine.Init(ins, {&g0, &g1}, config, 1).code(),
            StatusCode::kInvalidArgument);
}

TEST(EngineBatchTest, InitRefusesBadWindows) {
  const Instance ins = PaperExample();
  WindowGreedy g0, g1;
  for (double bad : {-1.0, std::nan(""),
                     std::numeric_limits<double>::infinity()}) {
    SimConfig config = BaseConfig();
    config.batch_mode = true;
    config.batch_window_seconds = bad;
    SimEngine engine;
    EXPECT_EQ(engine.Init(ins, {&g0, &g1}, config, 1).code(),
              StatusCode::kInvalidArgument)
        << bad;
  }
}

TEST(EngineBatchTest, SaveStateRefusedInBatchMode) {
  const Instance ins = PaperExample();
  SimConfig config = BaseConfig();
  config.batch_mode = true;
  WindowGreedy g0, g1;
  SimEngine engine;
  ASSERT_TRUE(engine.Init(ins, {&g0, &g1}, config, 1).ok());
  ByteWriter out;
  EXPECT_EQ(engine.SaveState(&out).code(), StatusCode::kFailedPrecondition);
}

}  // namespace
}  // namespace comx
