// OFF: the offline optimum of Section II-B. With full hindsight (arrival
// order, locations, values, and the outer workers' acceptable payments all
// known), the COM problem becomes maximum-weight bipartite matching:
// requests on the left, workers on the right, inner edges weighted v_r and
// outer edges weighted v_r - rho_w, where rho_w is the outer worker's
// realized reservation payment.
//
// Reservation model: rho_w is one uniform draw from the worker's value
// history, so P(rho_w <= p) equals the ECDF pr(p, w) of Definition 3.1 —
// the offline adversary "knows" a realization of exactly the acceptance
// model the online algorithms estimate.
//
// Solver selection: dense Hungarian for small graphs, exact sparse
// min-cost flow for medium graphs, sorted-edge greedy (1/2-approximation,
// empirically near-optimal in abundant-supply regimes) for day-scale
// graphs. `worker_capacity` > 1 relaxes the 1-by-1 constraint into a
// b-matching, modelling workers that recycle during the horizon.

#ifndef COMX_CORE_OFFLINE_OPT_H_
#define COMX_CORE_OFFLINE_OPT_H_

#include <string>
#include <vector>

#include "geo/distance_metric.h"
#include "matching/bipartite_graph.h"
#include "model/assignment.h"
#include "model/instance.h"
#include "util/result.h"

namespace comx {

/// Tuning for the offline solver.
struct OfflineConfig {
  /// Use dense Hungarian when |R_target| * |W| <= this.
  int64_t dense_cell_limit = 1'000'000;
  /// Use exact min-cost flow when the edge count <= this AND the number of
  /// target requests <= flow_left_limit (each matched request costs one
  /// Dijkstra augmentation, so both dimensions must stay bounded).
  int64_t flow_edge_limit = 2'000'000;
  int64_t flow_left_limit = 5'000;
  /// Service slots per worker (1 = strict 1-by-1 constraint of Def. 2.6;
  /// >1 models the paper's recycled workers on day-scale datasets).
  int32_t worker_capacity = 1;
  /// Day-scale relaxation mode (only with worker_capacity > 1): drop the
  /// range constraint entirely. Rationale: recycled workers relocate with
  /// every drop-off, so over a day a worker can in principle reach any
  /// request — a bound with the *static* start-location ranges is not an
  /// upper bound on the mobile online system (it demonstrably loses to
  /// DemCOM at scale). The paper's own OFF behaves this way: its completed
  /// counts equal |R|, impossible under static ranges and capacity 1.
  /// With the range dropped the bound admits a fast greedy-exact solution
  /// (requests in arrival order against aggregate arrived capacity).
  bool relax_range_when_recycling = true;
  /// Cooperative borrowing on (COM offline) or off (TOTA offline).
  bool allow_outer = true;
  /// Seed for the reservation-payment draws.
  uint64_t seed = 42;
  /// Travel metric for the range constraint (nullptr = Euclidean). Must
  /// match the simulator's metric when comparing online vs OFF.
  const DistanceMetric* metric = nullptr;
};

/// An offline solution for one target platform.
struct OfflineSolution {
  Matching matching;
  /// "hungarian", "min_cost_flow", "greedy", or "relaxed".
  std::string solver;
  /// Number of candidate edges considered (0 for the relaxed solver,
  /// which never materializes a graph).
  int64_t edge_count = 0;
};

/// Solves OFF for the requests of `target` platform over all workers of the
/// instance. Requests of other platforms are ignored (the paper reports OFF
/// per platform).
Result<OfflineSolution> SolveOffline(const Instance& instance,
                                     PlatformId target,
                                     const OfflineConfig& config = {});

/// Builds the offline bipartite graph (exposed for tests and benchmarks).
/// `request_ids` receives the left-index -> RequestId mapping; `payments`
/// receives, per edge, the outer payment (0 for inner edges).
Result<BipartiteGraph> BuildOfflineGraph(const Instance& instance,
                                         PlatformId target,
                                         const OfflineConfig& config,
                                         std::vector<RequestId>* request_ids,
                                         std::vector<double>* edge_payments);

}  // namespace comx

#endif  // COMX_CORE_OFFLINE_OPT_H_
