#include "obs/profiler.h"

#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "obs/metrics_registry.h"
#include "obs/span.h"
#include "util/json.h"

namespace comx {
namespace obs {
namespace {

// The profiler is a process-lifetime singleton shared across the test
// binary, so every test uses its own phase names and looks nodes up by
// path instead of assuming ids.
std::map<std::string, ProfileNode> NodesByPath() {
  std::map<std::string, ProfileNode> by_path;
  for (const ProfileNode& node : SpanProfiler::Global().Snapshot()) {
    if (!node.path.empty()) by_path[node.path] = node;
  }
  return by_path;
}

TEST(ProfilerTest, NestedSpansDecomposeExactly) {
  SetCollectionEnabled(true);
  static const SpanSite outer("prof_outer");
  static const SpanSite mid("prof_mid");
  static const SpanSite leaf("prof_leaf");
  for (int i = 0; i < 5; ++i) {
    ScopedSpan a(outer);
    {
      ScopedSpan b(mid);
      { ScopedSpan c(leaf); }
      { ScopedSpan c(leaf); }
    }
  }
  SetCollectionEnabled(false);

  const auto by_path = NodesByPath();
  ASSERT_TRUE(by_path.count("prof_outer"));
  ASSERT_TRUE(by_path.count("prof_outer;prof_mid"));
  ASSERT_TRUE(by_path.count("prof_outer;prof_mid;prof_leaf"));
  const ProfileNode& a = by_path.at("prof_outer");
  const ProfileNode& b = by_path.at("prof_outer;prof_mid");
  const ProfileNode& c = by_path.at("prof_outer;prof_mid;prof_leaf");

  EXPECT_EQ(a.count, 5);
  EXPECT_EQ(b.count, 5);
  EXPECT_EQ(c.count, 10);
  EXPECT_EQ(a.depth, 1);
  EXPECT_EQ(b.depth, 2);
  EXPECT_EQ(c.depth, 3);
  EXPECT_EQ(b.parent, a.node);
  EXPECT_EQ(c.parent, b.node);

  // Self time is exact by construction: the same clock reads produce the
  // child's total and the parent's subtraction, so the per-level
  // decomposition holds with no epsilon.
  EXPECT_EQ(a.self_nanos + b.total_nanos, a.total_nanos);
  EXPECT_EQ(b.self_nanos + c.total_nanos, b.total_nanos);
  EXPECT_EQ(c.self_nanos, c.total_nanos);  // leaf has no children
  // Per-node latency histogram counts one entry per span.
  EXPECT_EQ(a.latency.count, 5);
  EXPECT_EQ(c.latency.count, 10);
}

TEST(ProfilerTest, SameSiteUnderTwoParentsIsTwoNodes) {
  SetCollectionEnabled(true);
  static const SpanSite p1("prof_parent1");
  static const SpanSite p2("prof_parent2");
  static const SpanSite shared("prof_shared_leaf");
  {
    ScopedSpan a(p1);
    ScopedSpan s(shared);
  }
  {
    ScopedSpan a(p2);
    ScopedSpan s(shared);
  }
  SetCollectionEnabled(false);
  const auto by_path = NodesByPath();
  ASSERT_TRUE(by_path.count("prof_parent1;prof_shared_leaf"));
  ASSERT_TRUE(by_path.count("prof_parent2;prof_shared_leaf"));
  EXPECT_NE(by_path.at("prof_parent1;prof_shared_leaf").node,
            by_path.at("prof_parent2;prof_shared_leaf").node);
  EXPECT_EQ(by_path.at("prof_parent1;prof_shared_leaf").count, 1);
}

TEST(ProfilerTest, CollapsedStacksMatchSnapshot) {
  SetCollectionEnabled(true);
  static const SpanSite outer("prof_collapse_outer");
  static const SpanSite inner("prof_collapse_inner");
  {
    ScopedSpan a(outer);
    ScopedSpan b(inner);
  }
  SetCollectionEnabled(false);

  const auto by_path = NodesByPath();
  const std::string collapsed = SpanProfiler::Global().CollapsedStacks();
  std::istringstream lines(collapsed);
  std::string line;
  int matched = 0;
  while (std::getline(lines, line)) {
    const size_t space = line.rfind(' ');
    ASSERT_NE(space, std::string::npos) << line;
    const std::string path = line.substr(0, space);
    const int64_t self = std::stoll(line.substr(space + 1));
    ASSERT_TRUE(by_path.count(path)) << path;
    EXPECT_EQ(self, by_path.at(path).self_nanos) << path;
    EXPECT_GE(self, 0) << path;
    if (path == "prof_collapse_outer" ||
        path == "prof_collapse_outer;prof_collapse_inner") {
      ++matched;
    }
  }
  EXPECT_EQ(matched, 2);
}

TEST(ProfilerTest, ProfileJsonlIsFlatParseable) {
  SetCollectionEnabled(true);
  static const SpanSite site("prof_jsonl_phase");
  {
    ScopedSpan a(site);
  }
  SetCollectionEnabled(false);

  const std::string dump = SpanProfiler::Global().ProfileJsonl();
  std::istringstream lines(dump);
  std::string line;
  ASSERT_TRUE(std::getline(lines, line));
  auto header = ParseJsonFlatObject(line);
  ASSERT_TRUE(header.ok()) << header.status().ToString();
  ASSERT_TRUE(header->count("schema"));
  EXPECT_EQ(header->at("schema").string_value, kProfileSchema);
  bool saw_phase = false;
  while (std::getline(lines, line)) {
    auto obj = ParseJsonFlatObject(line);
    ASSERT_TRUE(obj.ok()) << obj.status().ToString() << "\n" << line;
    for (const char* key :
         {"node", "parent", "depth", "count", "total_ns", "self_ns",
          "p50_ns", "p90_ns", "p99_ns", "p999_ns", "max_ns"}) {
      ASSERT_TRUE(obj->count(key)) << key << " missing in " << line;
      EXPECT_EQ(obj->at(key).kind, JsonScalar::Kind::kNumber) << key;
    }
    EXPECT_LT(obj->at("parent").number_value, obj->at("node").number_value);
    EXPECT_LE(obj->at("self_ns").number_value,
              obj->at("total_ns").number_value);
    if (obj->at("phase").string_value == "prof_jsonl_phase") {
      saw_phase = true;
    }
  }
  EXPECT_TRUE(saw_phase);
}

TEST(ProfilerTest, InvalidNodeAndSiteAreRejected) {
  SpanProfiler& prof = SpanProfiler::Global();
  EXPECT_EQ(prof.EnterChild(kProfilerInvalidNode, 0), kProfilerInvalidNode);
  EXPECT_EQ(prof.EnterChild(kProfilerRootNode, -1), kProfilerInvalidNode);
  prof.RecordSpan(kProfilerInvalidNode, 100, 100);  // must not crash
  EXPECT_EQ(prof.SiteName(-1), "");
  EXPECT_EQ(prof.SiteName(kProfilerMaxSites + 5), "");
}

TEST(ProfilerTest, ConcurrentNestedSpansFromManyThreads) {
  // Every thread drives its own cursor through the same two sites; counts
  // must add up with no lost updates (also the TSan target in check.sh).
  SetCollectionEnabled(true);
  static const SpanSite outer("prof_mt_outer");
  static const SpanSite inner("prof_mt_inner");
  constexpr int kThreads = 8;
  constexpr int kIters = 2000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([] {
      for (int i = 0; i < kIters; ++i) {
        ScopedSpan a(outer);
        ScopedSpan b(inner);
      }
    });
  }
  for (std::thread& t : threads) t.join();
  SetCollectionEnabled(false);

  const auto by_path = NodesByPath();
  ASSERT_TRUE(by_path.count("prof_mt_outer"));
  ASSERT_TRUE(by_path.count("prof_mt_outer;prof_mt_inner"));
  const ProfileNode& a = by_path.at("prof_mt_outer");
  const ProfileNode& b = by_path.at("prof_mt_outer;prof_mt_inner");
  EXPECT_EQ(a.count, int64_t{kThreads} * kIters);
  EXPECT_EQ(b.count, int64_t{kThreads} * kIters);
  EXPECT_EQ(a.self_nanos + b.total_nanos, a.total_nanos);
  EXPECT_EQ(a.latency.count, a.count);
}

TEST(ProfilerTest, DepthCapSkipsTreeButKeepsFlatHistogram) {
  SetCollectionEnabled(true);
  static const SpanSite deep("prof_deep");
  LatencyHistogram* flat = MetricsRegistry::Global().GetLatencyHistogram(
      MetricName("comx_span_seconds", "phase", "prof_deep"));
  const int64_t flat_before = flat->Count();
  constexpr int kDepth = kProfilerMaxDepth + 8;
  {
    std::vector<std::unique_ptr<ScopedSpan>> spans;
    for (int i = 0; i < kDepth; ++i) {
      spans.push_back(std::make_unique<ScopedSpan>(deep));
    }
    for (auto it = spans.rbegin(); it != spans.rend(); ++it) (*it)->Stop();
  }
  SetCollectionEnabled(false);
  // Every span recorded into the flat per-phase histogram even though the
  // ones past the depth cap skipped tree accounting.
  EXPECT_EQ(flat->Count(), flat_before + kDepth);
  int64_t tree_count = 0;
  for (const auto& [path, node] : NodesByPath()) {
    if (node.phase == "prof_deep") tree_count += node.count;
  }
  EXPECT_EQ(tree_count, kProfilerMaxDepth);
}

}  // namespace
}  // namespace obs
}  // namespace comx
