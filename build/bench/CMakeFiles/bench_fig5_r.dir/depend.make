# Empty dependencies file for bench_fig5_r.
# This may be replaced when dependencies are built.
