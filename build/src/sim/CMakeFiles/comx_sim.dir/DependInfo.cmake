
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sim/batch_simulator.cc" "src/sim/CMakeFiles/comx_sim.dir/batch_simulator.cc.o" "gcc" "src/sim/CMakeFiles/comx_sim.dir/batch_simulator.cc.o.d"
  "/root/repo/src/sim/competitive_ratio.cc" "src/sim/CMakeFiles/comx_sim.dir/competitive_ratio.cc.o" "gcc" "src/sim/CMakeFiles/comx_sim.dir/competitive_ratio.cc.o.d"
  "/root/repo/src/sim/metrics.cc" "src/sim/CMakeFiles/comx_sim.dir/metrics.cc.o" "gcc" "src/sim/CMakeFiles/comx_sim.dir/metrics.cc.o.d"
  "/root/repo/src/sim/multi_day.cc" "src/sim/CMakeFiles/comx_sim.dir/multi_day.cc.o" "gcc" "src/sim/CMakeFiles/comx_sim.dir/multi_day.cc.o.d"
  "/root/repo/src/sim/offline_schedule.cc" "src/sim/CMakeFiles/comx_sim.dir/offline_schedule.cc.o" "gcc" "src/sim/CMakeFiles/comx_sim.dir/offline_schedule.cc.o.d"
  "/root/repo/src/sim/platform_view.cc" "src/sim/CMakeFiles/comx_sim.dir/platform_view.cc.o" "gcc" "src/sim/CMakeFiles/comx_sim.dir/platform_view.cc.o.d"
  "/root/repo/src/sim/result_io.cc" "src/sim/CMakeFiles/comx_sim.dir/result_io.cc.o" "gcc" "src/sim/CMakeFiles/comx_sim.dir/result_io.cc.o.d"
  "/root/repo/src/sim/simulator.cc" "src/sim/CMakeFiles/comx_sim.dir/simulator.cc.o" "gcc" "src/sim/CMakeFiles/comx_sim.dir/simulator.cc.o.d"
  "/root/repo/src/sim/worker_pool.cc" "src/sim/CMakeFiles/comx_sim.dir/worker_pool.cc.o" "gcc" "src/sim/CMakeFiles/comx_sim.dir/worker_pool.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/comx_util.dir/DependInfo.cmake"
  "/root/repo/build/src/geo/CMakeFiles/comx_geo.dir/DependInfo.cmake"
  "/root/repo/build/src/model/CMakeFiles/comx_model.dir/DependInfo.cmake"
  "/root/repo/build/src/pricing/CMakeFiles/comx_pricing.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/comx_core.dir/DependInfo.cmake"
  "/root/repo/build/src/matching/CMakeFiles/comx_matching.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
