// SIGINT/SIGTERM shutdown guard for the CLI tools and the serving binary.
//
// The handler itself is strictly async-signal-safe: it records the signal
// number in a lock-free atomic and writes one byte to a self-pipe, nothing
// else. All real shutdown work — flushing registered stdio streams (traces,
// metrics, WAL-adjacent artifacts), committing buffered WAL tails, exiting
// with the conventional 128 + signo code — happens on a normal thread when
// the main loop notices the flag (ShutdownRequested()) or the pipe becomes
// readable (ShutdownWakeFd(), for poll()-based loops) and calls
// DrainShutdown(). This matters for long-running processes: fflush() takes
// stdio's internal locks and fsync() can block, so running them inside the
// handler deadlocks the moment a signal lands while any thread holds a
// stream lock (or, in comx_serve, a shard lock around a registered file).
//
// A second signal while the first is still being drained _exit()s
// immediately with 128 + signo — the operator's escape hatch when the
// cooperative drain itself is wedged.

#ifndef COMX_UTIL_SIGNAL_GUARD_H_
#define COMX_UTIL_SIGNAL_GUARD_H_

#include <cstdio>

namespace comx {

/// Installs the SIGINT/SIGTERM handler and the self-pipe. Idempotent.
void InstallShutdownGuard();

/// True once a shutdown signal was received. Cheap (one relaxed atomic
/// load) — poll it from run loops between units of work.
bool ShutdownRequested();

/// The signal that requested shutdown, or 0 when none arrived yet.
int ShutdownSignal();

/// Read end of the self-pipe: becomes readable when a signal arrives, so
/// poll()/select()-based loops wake without busy-polling the flag.
/// -1 before InstallShutdownGuard() (or if the pipe could not be created,
/// in which case the flag still works).
int ShutdownWakeFd();

/// Runs the shutdown work the old handler used to do inside the signal
/// context: best-effort fflush + fsync of every registered stream, then
/// fflush(nullptr). Call from the main loop after ShutdownRequested()
/// turns true; returns the exit code the caller should exit with
/// (ShutdownExitCode of the received signal), or 0 when no signal was
/// actually pending. Safe to call more than once.
int DrainShutdown();

/// Registers `f` for best-effort fflush + fsync in DrainShutdown().
/// Bounded capacity (see kMaxShutdownFiles); extra registrations are
/// silently dropped. Pass the same pointer to Unregister before closing.
void RegisterShutdownFlushFile(std::FILE* f);
void UnregisterShutdownFlushFile(std::FILE* f);

/// Number of FILE* slots the guard can track.
inline constexpr int kMaxShutdownFiles = 16;

/// The exit code the guard uses for signal `signo` (128 + signo).
int ShutdownExitCode(int signo);

/// Clears a recorded signal and drains the wake pipe so one test's
/// raise() does not leak into the next. Testing only.
void ResetShutdownForTesting();

}  // namespace comx

#endif  // COMX_UTIL_SIGNAL_GUARD_H_
