#include "matching/min_cost_flow.h"

#include <gtest/gtest.h>

#include "matching/brute_force.h"
#include "matching/hungarian.h"
#include "util/rng.h"

namespace comx {
namespace {

using testing_fixtures::BruteForceMaxWeight;
using testing_fixtures::RandomGraph;

TEST(MinCostFlowTest, EmptyGraph) {
  BipartiteGraph g(0, 0);
  auto m = MinCostFlowMaxWeight(g);
  ASSERT_TRUE(m.ok());
  EXPECT_EQ(m->size, 0);
}

TEST(MinCostFlowTest, SingleEdge) {
  BipartiteGraph g(1, 1);
  ASSERT_TRUE(g.AddEdge(0, 0, 4.0).ok());
  auto m = MinCostFlowMaxWeight(g);
  ASSERT_TRUE(m.ok());
  EXPECT_EQ(m->size, 1);
  EXPECT_DOUBLE_EQ(m->total_weight, 4.0);
}

TEST(MinCostFlowTest, GreedyTrapSolvedOptimally) {
  BipartiteGraph g(2, 2);
  ASSERT_TRUE(g.AddEdge(0, 0, 10.0).ok());
  ASSERT_TRUE(g.AddEdge(0, 1, 9.0).ok());
  ASSERT_TRUE(g.AddEdge(1, 0, 9.0).ok());
  auto m = MinCostFlowMaxWeight(g);
  ASSERT_TRUE(m.ok());
  EXPECT_DOUBLE_EQ(m->total_weight, 18.0);
}

TEST(MinCostFlowTest, RejectsNegativeWeights) {
  BipartiteGraph g(1, 1);
  ASSERT_TRUE(g.AddEdge(0, 0, -2.0).ok());
  EXPECT_FALSE(MinCostFlowMaxWeight(g).ok());
}

TEST(MinCostFlowTest, RightCapacityAllowsBMatching) {
  BipartiteGraph g(3, 1);
  ASSERT_TRUE(g.AddEdge(0, 0, 3.0).ok());
  ASSERT_TRUE(g.AddEdge(1, 0, 2.0).ok());
  ASSERT_TRUE(g.AddEdge(2, 0, 1.0).ok());
  auto m = MinCostFlowMaxWeight(g, {2});
  ASSERT_TRUE(m.ok());
  EXPECT_EQ(m->size, 2);
  EXPECT_DOUBLE_EQ(m->total_weight, 5.0);
}

TEST(MinCostFlowTest, CapacityZeroExcludesVertex) {
  BipartiteGraph g(1, 2);
  ASSERT_TRUE(g.AddEdge(0, 0, 9.0).ok());
  ASSERT_TRUE(g.AddEdge(0, 1, 1.0).ok());
  auto m = MinCostFlowMaxWeight(g, {0, 1});
  ASSERT_TRUE(m.ok());
  EXPECT_EQ(m->match_of_left[0], 1);
  EXPECT_DOUBLE_EQ(m->total_weight, 1.0);
}

class McmfVsHungarianTest : public testing::TestWithParam<int> {};

TEST_P(McmfVsHungarianTest, AgreesWithHungarianAndBruteForce) {
  Rng rng(static_cast<uint64_t>(GetParam()) * 1299709 + 17);
  for (int iter = 0; iter < 20; ++iter) {
    const BipartiteGraph g = RandomGraph(
        static_cast<int32_t>(rng.UniformInt(1, 6)),
        static_cast<int32_t>(rng.UniformInt(1, 6)), 0.5, &rng);
    auto flow = MinCostFlowMaxWeight(g);
    auto hung = HungarianMaxWeight(g);
    ASSERT_TRUE(flow.ok());
    ASSERT_TRUE(hung.ok());
    const double brute = BruteForceMaxWeight(g);
    EXPECT_NEAR(flow->total_weight, brute, 1e-6) << g.Summary();
    EXPECT_NEAR(flow->total_weight, hung->total_weight, 1e-6);
    EXPECT_TRUE(g.ValidateMatching(flow->match_of_left, nullptr).ok());
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, McmfVsHungarianTest, testing::Range(0, 8));

TEST(MinCostFlowTest, LargerSparseGraphAgreesWithHungarian) {
  Rng rng(777);
  const BipartiteGraph g = RandomGraph(60, 50, 0.1, &rng);
  auto flow = MinCostFlowMaxWeight(g);
  auto hung = HungarianMaxWeight(g);
  ASSERT_TRUE(flow.ok());
  ASSERT_TRUE(hung.ok());
  EXPECT_NEAR(flow->total_weight, hung->total_weight, 1e-6);
}

TEST(MinCostFlowTest, CapacitatedMatchesReplicatedHungarian) {
  // Capacity k on a right vertex == k replicas of that vertex.
  Rng rng(888);
  const BipartiteGraph g = RandomGraph(6, 3, 0.6, &rng);
  auto flow = MinCostFlowMaxWeight(g, {2, 2, 2});
  ASSERT_TRUE(flow.ok());

  BipartiteGraph replicated(6, 6);
  for (const BipartiteEdge& e : g.edges()) {
    ASSERT_TRUE(replicated.AddEdge(e.left, e.right * 2, e.weight).ok());
    ASSERT_TRUE(replicated.AddEdge(e.left, e.right * 2 + 1, e.weight).ok());
  }
  auto hung = HungarianMaxWeight(replicated);
  ASSERT_TRUE(hung.ok());
  EXPECT_NEAR(flow->total_weight, hung->total_weight, 1e-6);
}

}  // namespace
}  // namespace comx
