// Window-greedy online policy: the degenerate (window = 0) case of
// micro-batch dispatch, factored out so the batch engine and the online
// simulator share one decision function. For a single request the window
// assignment problem collapses to an argmax over the candidate edges —
// inner workers at weight v_r, outer workers at their per-worker MER
// expected revenue (Definition 4.1 with W = {w}) — which this matcher
// evaluates immediately at arrival. SimEngine's batch mode routes every
// single-request window through DecideWindowGreedy with the same RNG
// stream, which is what makes BatchMatcher at window = 0 bit-identical to
// this matcher (property-tested across 200 seeds).

#ifndef COMX_CORE_WINDOW_GREEDY_H_
#define COMX_CORE_WINDOW_GREEDY_H_

#include <string>

#include "core/online_matcher.h"
#include "util/rng.h"

namespace comx {

/// The shared decision function: argmax over inner value / outer expected
/// revenue with earliest-candidate-wins ties (strict improvement only),
/// acceptance drawn from `rng` for a chosen outer edge (a decline rejects
/// the request, as in Algorithm 1 lines 25-26). Enumeration order is the
/// view's: inner candidates first, then outer.
Decision DecideWindowGreedy(const Request& r, const PlatformView& view,
                            Rng* rng);

/// OnlineMatcher wrapper around DecideWindowGreedy.
class WindowGreedy : public OnlineMatcher {
 public:
  void Reset(const Instance& instance, PlatformId platform,
             uint64_t seed) override;
  Decision OnRequest(const Request& r, const PlatformView& view) override;
  std::string name() const override { return "WindowGreedy"; }
  Status SaveState(ByteWriter* out) const override;
  Status RestoreState(ByteReader* in) override;

 private:
  Rng rng_{0};
};

}  // namespace comx

#endif  // COMX_CORE_WINDOW_GREEDY_H_
