// Spatial + temporal model of one city. Locations come from a Gaussian-
// mixture of hotspots inside a bounded square; arrival times follow a
// two-peak (commute) day curve. Per-platform hotspot weights create the
// cross-platform supply/demand imbalance of the paper's Fig. 2: one
// platform's workers cluster where the other platform's requests are, which
// is precisely the regime where borrowing pays off.

#ifndef COMX_DATAGEN_CITY_MODEL_H_
#define COMX_DATAGEN_CITY_MODEL_H_

#include <vector>

#include "geo/bbox.h"
#include "geo/point.h"
#include "util/result.h"
#include "util/rng.h"

namespace comx {

/// One Gaussian hotspot.
struct Hotspot {
  Point center;
  /// Isotropic standard deviation in km.
  double sigma = 2.0;
};

/// Gaussian-mixture city with a commute-shaped arrival-time curve.
class CityModel {
 public:
  struct Params {
    /// City half-width: the square [-extent, extent]^2 km.
    double extent_km = 15.0;
    /// Hotspots; empty means uniform over the square.
    std::vector<Hotspot> hotspots;
    /// Mixture weight of the uniform background vs. the hotspots.
    double background_weight = 0.15;
    /// Day length (seconds); arrivals land in [0, horizon).
    double horizon_seconds = 86'400.0;
    /// Morning / evening rush-hour peaks (seconds into the day) and their
    /// widths; a uniform base load fills the rest.
    double morning_peak = 8.0 * 3600.0;
    double evening_peak = 18.0 * 3600.0;
    double peak_sigma = 1.5 * 3600.0;
    double peak_weight = 0.6;  // fraction of arrivals in the two peaks
  };

  explicit CityModel(Params params);

  /// Samples a location using per-hotspot weights (must match the hotspot
  /// count; pass {} for equal weights). Points are clamped to the square.
  Point SamplePoint(const std::vector<double>& hotspot_weights,
                    Rng* rng) const;

  /// Samples an arrival time from the day curve.
  double SampleTime(Rng* rng) const;

  /// Default Chengdu-like layout: 4 hotspots around a dense core.
  static Params ChengduLike();

  /// Xi'an-like layout: 3 hotspots, tighter core, stronger skew.
  static Params XianLike();

  const Params& params() const { return params_; }

  /// Bounding box of the city square.
  BBox Bounds() const;

 private:
  Params params_;
};

}  // namespace comx

#endif  // COMX_DATAGEN_CITY_MODEL_H_
