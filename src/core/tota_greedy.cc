#include "core/tota_greedy.h"

#include "obs/span.h"

namespace comx {

void TotaGreedy::Reset(const Instance& /*instance*/, PlatformId /*platform*/,
                       uint64_t seed) {
  rng_ = Rng(seed);
}

Decision TotaGreedy::OnRequest(const Request& r, const PlatformView& view) {
  std::vector<WorkerId> inner;
  {
    COMX_SPAN("candidate_lookup");
    inner = view.FeasibleInnerWorkers(r);
  }
  DecisionStats stats;
  stats.inner_candidates = static_cast<int32_t>(inner.size());
  if (inner.empty()) {
    Decision d = Decision::Reject();
    d.stats = stats;
    return d;
  }
  const WorkerId w = random_choice_ ? inner[rng_.PickIndex(inner.size())]
                                    : NearestWorker(inner, r, view);
  Decision d = Decision::Inner(w);
  d.stats = stats;
  return d;
}

Status TotaGreedy::SaveState(ByteWriter* out) const {
  WriteRng(rng_, out);
  return Status::OK();
}

Status TotaGreedy::RestoreState(ByteReader* in) {
  return ReadRng(in, &rng_);
}

}  // namespace comx
