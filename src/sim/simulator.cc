#include "sim/simulator.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <vector>

#include "geo/distance.h"
#include "sim/sim_engine.h"
#include "sim/worker_pool.h"
#include "util/string_util.h"

namespace comx {

double ServiceDurationSeconds(const SimConfig& config, double pickup_km,
                              double value) {
  const double travel_s = pickup_km / config.speed_kmh * 3600.0;
  return travel_s + config.base_service_seconds +
         config.service_seconds_per_value * value;
}

// The historical monolithic loop now lives in sim/sim_engine.{h,cc} as a
// resumable Init/Step/Finish engine (the durability seam); this wrapper
// preserves the original single-call contract bit-exactly.
Result<SimResult> RunSimulation(const Instance& instance,
                                const std::vector<OnlineMatcher*>& matchers,
                                const SimConfig& config, uint64_t seed) {
  SimEngine engine;
  COMX_RETURN_IF_ERROR(engine.Init(instance, matchers, config, seed));
  while (!engine.Done()) {
    COMX_RETURN_IF_ERROR(engine.Step(nullptr));
  }
  return engine.Finish();
}

Status AuditSimResult(const Instance& instance, const SimConfig& config,
                      const SimResult& result) {
  const DistanceMetric& metric =
      config.metric != nullptr ? *config.metric : DefaultMetric();
  std::vector<Timestamp> available_since(instance.workers().size());
  std::vector<Point> location(instance.workers().size());
  std::vector<char> busy(instance.workers().size(), 0);
  std::vector<char> request_served(instance.requests().size(), 0);
  for (const Worker& w : instance.workers()) {
    available_since[static_cast<size_t>(w.id)] = w.time;
    location[static_cast<size_t>(w.id)] = w.location;
  }

  // Replay in recorded order; times must be non-decreasing. With recycling
  // a worker frees up at its service end; we track that explicitly.
  // In batch mode the booking point is the request's window close, not its
  // arrival: ordering and the busy horizon are audited at dispatch time
  // (within a window, platforms interleave arbitrary request times).
  const auto dispatch_of = [&config](Timestamp t) {
    if (!config.batch_mode || config.batch_window_seconds <= 0.0) return t;
    const double w = config.batch_window_seconds;
    return (std::floor(t / w) + 1.0) * w;
  };
  std::vector<Timestamp> busy_until(instance.workers().size(), 0.0);
  double last_time = -std::numeric_limits<double>::infinity();
  double revenue_check = 0.0;
  for (const Assignment& a : result.matching.assignments) {
    if (a.request < 0 ||
        a.request >= static_cast<RequestId>(instance.requests().size())) {
      return Status::OutOfRange("assignment references unknown request");
    }
    if (a.worker < 0 ||
        a.worker >= static_cast<WorkerId>(instance.workers().size())) {
      return Status::OutOfRange("assignment references unknown worker");
    }
    const Request& r = instance.request(a.request);
    const Worker& w = instance.worker(a.worker);
    const Timestamp dispatch = dispatch_of(r.time);
    if (dispatch < last_time - 1e-9) {
      return Status::FailedPrecondition("assignments out of time order");
    }
    last_time = dispatch;
    if (request_served[static_cast<size_t>(a.request)]) {
      return Status::FailedPrecondition("request served twice");
    }
    request_served[static_cast<size_t>(a.request)] = 1;

    auto& since = available_since[static_cast<size_t>(a.worker)];
    auto& loc = location[static_cast<size_t>(a.worker)];
    auto& is_busy = busy[static_cast<size_t>(a.worker)];
    auto& until = busy_until[static_cast<size_t>(a.worker)];
    if (is_busy) {
      if (!config.workers_recycle) {
        return Status::FailedPrecondition("worker used twice (1-by-1)");
      }
      if (until > r.time + 1e-9) {
        return Status::FailedPrecondition(
            "worker assigned while still serving");
      }
      // Recycled: it became available at `until` at the previous drop-off.
      since = until;
      is_busy = false;
    }
    if (since > r.time + 1e-9) {
      return Status::FailedPrecondition("time constraint violated");
    }
    const double pickup = metric.Distance(loc, r.location);
    if (pickup > w.radius + 1e-9) {
      return Status::FailedPrecondition("range constraint violated");
    }
    const bool is_outer = w.platform != r.platform;
    if (is_outer != a.is_outer) {
      return Status::FailedPrecondition("inner/outer flag wrong");
    }
    if (is_outer) {
      if (!(a.outer_payment > 0.0) || a.outer_payment > r.value + 1e-9) {
        return Status::FailedPrecondition("outer payment outside (0, v]");
      }
      if (std::abs(a.revenue - (r.value - a.outer_payment)) > 1e-9) {
        return Status::FailedPrecondition("outer revenue accounting wrong");
      }
    } else {
      if (a.outer_payment != 0.0) {
        return Status::FailedPrecondition("inner match has outer payment");
      }
      if (std::abs(a.revenue - r.value) > 1e-9) {
        return Status::FailedPrecondition("inner revenue accounting wrong");
      }
    }
    revenue_check += a.revenue;

    is_busy = true;
    until = dispatch + (config.workers_recycle
                            ? ServiceDurationSeconds(config, pickup, r.value)
                            : std::numeric_limits<double>::infinity());
    loc = r.location;
  }
  if (std::abs(revenue_check - result.matching.total_revenue) > 1e-6) {
    return Status::FailedPrecondition("total revenue mismatch");
  }
  return Status::OK();
}

}  // namespace comx
