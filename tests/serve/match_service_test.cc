// MatchService (src/serve/match_service.h): the acceptance properties of the
// serving core. One shard is bit-identical to the batch simulator; N shards
// equal one shard exactly on instances whose demand clusters are separated
// by more than the worker radius; a graceful drain always closes the day
// with the full-instance Eq. 1 totals; stats reads are safe and consistent
// under concurrent ingestion (the TSan target).

#include "serve/match_service.h"

#include <atomic>
#include <memory>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "core/dem_com.h"
#include "core/tota_greedy.h"
#include "datagen/synthetic.h"
#include "sim/simulator.h"
#include "testing/builders.h"

namespace comx {
namespace serve {
namespace {

using testing_fixtures::MakeRequest;
using testing_fixtures::MakeWorker;

std::unique_ptr<OnlineMatcher> MakeTota() {
  return std::make_unique<TotaGreedy>();
}

std::unique_ptr<OnlineMatcher> MakeDemCom() {
  return std::make_unique<DemCom>();
}

SimConfig ServeConfig() {
  SimConfig config;
  config.measure_response_time = false;  // the serve layer owns latency
  return config;
}

Instance SmallSynthetic(uint64_t seed = 7) {
  SyntheticConfig config;
  config.platforms = 2;
  config.requests_per_platform = {40};
  config.workers_per_platform = {20};
  config.seed = seed;
  auto instance = GenerateSynthetic(config);
  EXPECT_TRUE(instance.ok()) << instance.status().ToString();
  return std::move(instance).value();
}

SimResult BatchRun(const Instance& ins,
                   const std::function<std::unique_ptr<OnlineMatcher>()>& factory,
                   uint64_t seed) {
  std::vector<std::unique_ptr<OnlineMatcher>> owned;
  std::vector<OnlineMatcher*> matchers;
  for (int32_t p = 0; p < ins.PlatformCount(); ++p) {
    owned.push_back(factory());
    matchers.push_back(owned.back().get());
  }
  auto result = RunSimulation(ins, matchers, ServeConfig(), seed);
  EXPECT_TRUE(result.ok()) << result.status().ToString();
  return std::move(result).value();
}

void ExpectPlatformMetricsBitEqual(const PlatformMetrics& a,
                                   const PlatformMetrics& b) {
  EXPECT_EQ(a.revenue, b.revenue);  // bitwise double equality, deliberately
  EXPECT_EQ(a.completed, b.completed);
  EXPECT_EQ(a.completed_inner, b.completed_inner);
  EXPECT_EQ(a.completed_outer, b.completed_outer);
  EXPECT_EQ(a.rejected, b.rejected);
  EXPECT_EQ(a.outer_offers, b.outer_offers);
  EXPECT_EQ(a.outer_payment_sum, b.outer_payment_sum);
  EXPECT_EQ(a.payment_rate_sum, b.payment_rate_sum);
  EXPECT_EQ(a.total_pickup_km, b.total_pickup_km);
}

// Two demand clusters separated in x by far more than any worker radius, so
// no feasible (worker, request) pair ever crosses the stripe boundary —
// the case where geo-sharding is exact, not approximate. Values are small
// integers so revenue sums are exact in any summation order.
Instance TwoClusterInstance() {
  Instance ins;
  auto add_cluster = [&ins](double x0, double t0) {
    ins.AddWorker(MakeWorker(0, t0 + 0.0, x0 + 0.0, 0.0, 1.5));
    ins.AddWorker(MakeWorker(0, t0 + 1.0, x0 + 2.0, 0.0, 1.5));
    ins.AddWorker(MakeWorker(1, t0 + 2.0, x0 + 1.0, 0.0, 1.5));
    ins.AddRequest(MakeRequest(0, t0 + 3.0, x0 + 0.5, 0.0, 4.0));
    ins.AddRequest(MakeRequest(0, t0 + 4.0, x0 + 1.5, 0.0, 9.0));
    ins.AddRequest(MakeRequest(1, t0 + 5.0, x0 + 1.0, 0.0, 6.0));
    ins.AddRequest(MakeRequest(0, t0 + 6.0, x0 + 2.0, 0.0, 3.0));
  };
  // Interleaved arrival times (t0 offset by 0.5) so the global event stream
  // alternates between clusters — the sharded service must reproduce the
  // batch result despite processing the clusters concurrently.
  add_cluster(/*x0=*/0.0, /*t0=*/1.0);
  add_cluster(/*x0=*/100.0, /*t0=*/1.5);
  ins.BuildEvents();
  EXPECT_TRUE(ins.Validate().ok());
  return ins;
}

TEST(MatchServiceTest, OneShardBitIdenticalToBatchSimulator) {
  // DemCom exercises the full machinery: outer offers, acceptance RNG,
  // payments. With one shard the plan is a verbatim instance copy and the
  // engine consumes the identical event stream with the identical seed, so
  // every double must match bit for bit.
  const Instance ins = testing_fixtures::PaperExample();
  const uint64_t seed = 42;
  const SimResult batch = BatchRun(ins, MakeDemCom, seed);

  ServiceOptions options;
  options.shards = 1;
  options.seed = seed;
  options.sim = ServeConfig();
  auto service = MatchService::Create(ins, MakeDemCom, options);
  ASSERT_TRUE(service.ok()) << service.status().ToString();
  ASSERT_TRUE((*service)->SubmitAll().ok());
  auto totals = (*service)->Drain();
  ASSERT_TRUE(totals.ok()) << totals.status().ToString();

  ASSERT_EQ(totals->merged.per_platform.size(),
            batch.metrics.per_platform.size());
  for (size_t p = 0; p < batch.metrics.per_platform.size(); ++p) {
    ExpectPlatformMetricsBitEqual(totals->merged.per_platform[p],
                                  batch.metrics.per_platform[p]);
  }
  EXPECT_EQ(totals->total_revenue, batch.metrics.TotalRevenue());
  EXPECT_EQ(totals->assignments,
            batch.metrics.Aggregate().completed);
  ASSERT_EQ(totals->shard_results.size(), 1u);
  EXPECT_EQ(totals->shard_results[0].matching.assignments.size(),
            batch.matching.assignments.size());
}

TEST(MatchServiceTest, ShardedEqualsSingleShardOnSeparatedClusters) {
  const Instance ins = TwoClusterInstance();
  const uint64_t seed = 7;
  const SimResult batch = BatchRun(ins, MakeTota, seed);

  for (const int32_t shards : {1, 2, 4}) {
    ServiceOptions options;
    options.shards = shards;
    options.seed = seed;
    options.sim = ServeConfig();
    auto service = MatchService::Create(ins, MakeTota, options);
    ASSERT_TRUE(service.ok()) << service.status().ToString();
    ASSERT_TRUE((*service)->SubmitAll().ok());
    auto totals = (*service)->Drain();
    ASSERT_TRUE(totals.ok()) << totals.status().ToString();
    // Integer request values and radius-separated clusters: the sharded
    // totals are exactly the batch totals at every shard count.
    EXPECT_EQ(totals->total_revenue, batch.metrics.TotalRevenue())
        << "shards=" << shards;
    EXPECT_EQ(totals->assignments, batch.metrics.Aggregate().completed)
        << "shards=" << shards;
    ASSERT_EQ(totals->merged.per_platform.size(),
              batch.metrics.per_platform.size());
    for (size_t p = 0; p < batch.metrics.per_platform.size(); ++p) {
      EXPECT_EQ(totals->merged.per_platform[p].revenue,
                batch.metrics.per_platform[p].revenue)
          << "shards=" << shards << " platform=" << p;
      EXPECT_EQ(totals->merged.per_platform[p].completed_inner,
                batch.metrics.per_platform[p].completed_inner);
      EXPECT_EQ(totals->merged.per_platform[p].rejected,
                batch.metrics.per_platform[p].rejected);
    }
  }
}

TEST(MatchServiceTest, GracefulDrainClosesTheDayWithFullTotals) {
  // Submit only the first half of the stream, then drain: the close-of-day
  // path must consume the unsubmitted remainder so Eq. 1 totals equal the
  // uninterrupted batch run exactly.
  const Instance ins = testing_fixtures::PaperExample();
  const uint64_t seed = 42;
  const SimResult batch = BatchRun(ins, MakeDemCom, seed);

  ServiceOptions options;
  options.shards = 1;
  options.seed = seed;
  options.sim = ServeConfig();
  auto service = MatchService::Create(ins, MakeDemCom, options);
  ASSERT_TRUE(service.ok());
  const int64_t half = (*service)->event_count() / 2;
  for (int64_t i = 0; i < half; ++i) {
    ASSERT_TRUE((*service)->SubmitEvent(i, nullptr).ok());
  }
  auto totals = (*service)->Drain();
  ASSERT_TRUE(totals.ok()) << totals.status().ToString();
  EXPECT_EQ(totals->total_revenue, batch.metrics.TotalRevenue());
  EXPECT_EQ(totals->assignments, batch.metrics.Aggregate().completed);
  EXPECT_EQ(totals->rejected, batch.metrics.Aggregate().rejected);
}

TEST(MatchServiceTest, CallbacksFireOncePerEventWithDecisions) {
  const Instance ins = SmallSynthetic();
  ServiceOptions options;
  options.shards = 4;
  options.seed = 3;
  options.sim = ServeConfig();
  auto service = MatchService::Create(ins, MakeTota, options);
  ASSERT_TRUE(service.ok());

  std::atomic<int64_t> fired{0};
  std::atomic<int64_t> failed{0};
  std::atomic<int64_t> bad_latency{0};
  for (int64_t i = 0; i < (*service)->event_count(); ++i) {
    const Status st = (*service)->SubmitEvent(
        i, [i, &fired, &failed, &bad_latency](const Status& status,
                                              const ShardDecision& d) {
          fired.fetch_add(1);
          if (!status.ok()) failed.fetch_add(1);
          if (d.global_index != i || d.latency_nanos < 0) {
            bad_latency.fetch_add(1);
          }
        });
    ASSERT_TRUE(st.ok()) << st.ToString();
  }
  auto totals = (*service)->Drain();
  ASSERT_TRUE(totals.ok()) << totals.status().ToString();
  EXPECT_EQ(fired.load(), (*service)->event_count());
  EXPECT_EQ(failed.load(), 0);
  EXPECT_EQ(bad_latency.load(), 0);

  const ShardSnapshot stats = (*service)->TotalStats();
  EXPECT_EQ(stats.submitted, (*service)->event_count());
  EXPECT_EQ(stats.decisions,
            static_cast<int64_t>(ins.requests().size()));
  EXPECT_GE(stats.arrivals, static_cast<int64_t>(ins.workers().size()));
  EXPECT_EQ(stats.queue_depth, 0);
  EXPECT_EQ(stats.inner + stats.outer,
            totals->assignments);
  // Snapshot revenue accumulates in step order, merged totals in platform
  // order — same values, possibly different rounding path.
  EXPECT_NEAR(stats.revenue, totals->total_revenue,
              1e-9 * (1.0 + totals->total_revenue));
  EXPECT_EQ((*service)->DecisionLatency().count, (*service)->event_count());
}

TEST(MatchServiceTest, StatsReadsAreSafeDuringConcurrentIngestion) {
  // The seqlock consistency claim under real traffic: readers hammer
  // TotalStats() from two threads while the stream is ingested and drained.
  // Under TSan this is the serve layer's data-race proof.
  const Instance ins = SmallSynthetic(13);
  const int64_t requests = static_cast<int64_t>(ins.requests().size());
  ServiceOptions options;
  options.shards = 4;
  options.seed = 5;
  options.sim = ServeConfig();
  auto service = MatchService::Create(ins, MakeTota, options);
  ASSERT_TRUE(service.ok());

  std::atomic<bool> done{false};
  std::atomic<int64_t> violations{0};
  std::vector<std::thread> readers;
  for (int t = 0; t < 2; ++t) {
    readers.emplace_back([&] {
      int64_t last_decisions = 0;
      while (!done.load(std::memory_order_acquire)) {
        const ShardSnapshot s = (*service)->TotalStats();
        if (s.decisions < 0 || s.decisions > requests ||
            s.inner + s.outer + s.rejects != s.decisions ||
            s.decisions < last_decisions) {
          violations.fetch_add(1);
        }
        last_decisions = s.decisions;
      }
    });
  }
  ASSERT_TRUE((*service)->SubmitAll().ok());
  auto totals = (*service)->Drain();
  done.store(true, std::memory_order_release);
  for (std::thread& t : readers) t.join();
  ASSERT_TRUE(totals.ok()) << totals.status().ToString();
  EXPECT_EQ(violations.load(), 0);
  EXPECT_EQ((*service)->TotalStats().decisions, requests);
}

TEST(MatchServiceTest, SubmitErrorsAreLoud) {
  const Instance ins = testing_fixtures::PaperExample();
  ServiceOptions options;
  options.shards = 2;
  options.sim = ServeConfig();
  auto service = MatchService::Create(ins, MakeTota, options);
  ASSERT_TRUE(service.ok());
  EXPECT_EQ((*service)->SubmitEvent(-1, nullptr).code(),
            StatusCode::kOutOfRange);
  EXPECT_EQ((*service)->SubmitEvent((*service)->event_count(), nullptr).code(),
            StatusCode::kOutOfRange);
  ASSERT_TRUE((*service)->SubmitAll().ok());
  ASSERT_TRUE((*service)->Drain().ok());
  // Post-drain: the service is read-only.
  EXPECT_EQ((*service)->SubmitEvent(0, nullptr).code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ((*service)->Drain().status().code(),
            StatusCode::kFailedPrecondition);
}

}  // namespace
}  // namespace serve
}  // namespace comx
