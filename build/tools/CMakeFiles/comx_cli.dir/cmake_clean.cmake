file(REMOVE_RECURSE
  "CMakeFiles/comx_cli.dir/comx_cli.cc.o"
  "CMakeFiles/comx_cli.dir/comx_cli.cc.o.d"
  "comx_cli"
  "comx_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/comx_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
