// Utilities over event streams: filtering by platform, random-order
// permutations (for the random-order competitive-ratio model), and arrival
// order tables like the paper's Table II.

#ifndef COMX_MODEL_ARRIVAL_STREAM_H_
#define COMX_MODEL_ARRIVAL_STREAM_H_

#include <string>
#include <vector>

#include "model/event.h"
#include "model/instance.h"
#include "util/rng.h"

namespace comx {

/// Returns the events of `instance` restricted to entities of `platform`.
/// Worker events are kept for every platform (outer workers are visible to
/// all platforms' waiting lists); request events are kept only for the
/// requesting platform.
std::vector<Event> EventsForPlatform(const Instance& instance,
                                     PlatformId platform);

/// Produces a uniformly random permutation of the instance's arrival order:
/// entity timestamps are kept but the *order* is shuffled and times are
/// re-assigned monotonically so the shuffled order is consistent. This
/// implements the "random order model" (Definition 2.8): the adversary fixes
/// the input set, nature draws the order.
///
/// Returns a deep copy of the instance with rewritten times/events.
Instance RandomOrderCopy(const Instance& instance, Rng* rng);

/// Renders the arrival order as "w1, w2, r1, ..." (ids are 1-based like the
/// paper's Table II) for debugging small instances.
std::string ArrivalOrderString(const Instance& instance);

}  // namespace comx

#endif  // COMX_MODEL_ARRIVAL_STREAM_H_
