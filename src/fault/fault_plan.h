// Declarative description of partner-platform failure behaviour. A
// FaultPlan lists, per cooperative platform, how its remote API misbehaves
// (per-attempt failure probability, injected latency vs. a timeout budget,
// scheduled outage windows, stale-view probability on the reserve step) plus
// the resilience policies — retry/backoff and circuit breaking — the target
// platform answers with. Plans are plain data: the seeded FaultInjector
// (fault/fault_injector.h) turns them into deterministic fault sequences.
//
// Plans load from JSONL files of flat objects, one per line, distinguished
// by their "type" field ("partner" / "retry" / "breaker" / "plan"):
//
//   {"type":"plan","seed":7}
//   {"type":"partner","partner":1,"availability":0.9,"latency_ms_mean":40,
//    "timeout_ms":150,"stale_probability":0.05,"outages":"3600-7200"}
//   {"type":"retry","max_attempts":3,"base_backoff_ms":25}
//   {"type":"breaker","failure_threshold":5,"open_seconds":60}

#ifndef COMX_FAULT_FAULT_PLAN_H_
#define COMX_FAULT_FAULT_PLAN_H_

#include <string>
#include <vector>

#include "model/ids.h"
#include "util/result.h"
#include "util/status.h"

namespace comx {
namespace fault {

/// Closed interval of simulation seconds during which a partner is fully
/// unreachable (deterministic, no draw involved).
struct OutageWindow {
  Timestamp start = 0.0;
  Timestamp end = 0.0;
};

/// How one cooperative platform's remote API misbehaves.
struct PartnerFaultSpec {
  /// Platform id of the partner this spec describes.
  PlatformId partner = -1;
  /// Probability that one RPC attempt succeeds (outside outage windows).
  double availability = 1.0;
  /// Mean of the exponential latency injected per attempt, ms. 0 = none.
  double latency_ms_mean = 0.0;
  /// Attempts whose injected latency exceeds this budget count as timeouts.
  /// 0 = no timeout budget (latency is recorded but never fatal).
  double timeout_ms = 0.0;
  /// Probability that the reserve step of an outer commit finds the worker
  /// already assigned elsewhere (stale waiting-list view).
  double stale_probability = 0.0;
  /// Scheduled full-downtime windows.
  std::vector<OutageWindow> outages;

  /// True when this spec can never produce a fault — the injector then
  /// short-circuits to success without consuming a single RNG draw, so a
  /// trivial spec is bit-identical to no spec at all.
  bool Trivial() const;

  /// True when `t` falls inside a scheduled outage window.
  bool DownAt(Timestamp t) const;
};

/// Retry with exponential backoff and deterministic jitter.
struct RetryPolicy {
  /// Attempts per logical call, including the first (>= 1).
  int max_attempts = 3;
  /// Backoff before the first retry, ms.
  double base_backoff_ms = 25.0;
  /// Growth factor per further retry.
  double backoff_multiplier = 2.0;
  /// Upper bound on a single backoff, ms.
  double max_backoff_ms = 1000.0;
  /// Jitter added on top of each backoff, as a fraction of it (>= 0).
  double jitter_fraction = 0.2;

  /// Backoff before retry number `retry` (1-based), with deterministic
  /// jitter derived from `jitter_unit` in [0, 1).
  double BackoffMs(int retry, double jitter_unit) const;
};

/// Per-partner circuit breaker tuning (fault/circuit_breaker.h).
struct CircuitBreakerConfig {
  /// Consecutive call failures that trip the breaker open.
  int failure_threshold = 5;
  /// Simulated seconds the breaker stays open before probing (half-open).
  double open_seconds = 60.0;
  /// Consecutive half-open probe successes required to close again.
  int half_open_successes = 2;
};

/// The whole declarative plan.
struct FaultPlan {
  /// Folded into the run seed when seeding the injector, so one plan can be
  /// replayed against many simulation seeds deterministically.
  uint64_t seed = 0;
  RetryPolicy retry;
  CircuitBreakerConfig breaker;
  std::vector<PartnerFaultSpec> partners;

  /// Spec for `partner`, or nullptr when the plan does not mention it
  /// (unmentioned partners are perfectly reliable).
  const PartnerFaultSpec* SpecFor(PlatformId partner) const;

  /// True when no spec can produce a fault.
  bool Trivial() const;

  /// Structural check: probabilities in [0, 1], non-negative durations,
  /// ordered outage windows, no duplicate partner entries.
  Status Validate() const;
};

/// Parses the JSONL plan text (see file header). Unknown line types and
/// fields are errors; every field has the default above when omitted.
Result<FaultPlan> ParseFaultPlan(const std::string& text);

/// Reads and parses a plan file.
Result<FaultPlan> LoadFaultPlan(const std::string& path);

/// Serializes a plan to the JSONL format ParseFaultPlan reads. Numbers are
/// written with round-trip precision, so parse(serialize(p)) reproduces p
/// exactly — except `seed`, which travels through a JSON double: keep plan
/// seeds below 2^53 (the fuzzer does) for bit-exact replay.
std::string FaultPlanToJsonl(const FaultPlan& plan);

/// Writes FaultPlanToJsonl(plan) to `path`.
Status SaveFaultPlan(const FaultPlan& plan, const std::string& path);

}  // namespace fault
}  // namespace comx

#endif  // COMX_FAULT_FAULT_PLAN_H_
