#include "fault/fault_injector.h"

namespace comx {
namespace fault {
namespace {

// splitmix64 step — mixes the plan seed into the run seed so that
// (plan, run_seed) pairs land on unrelated streams.
uint64_t MixSeeds(uint64_t a, uint64_t b) {
  uint64_t z = a + 0x9e3779b97f4a7c15ull + (b << 1);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

}  // namespace

const char* AttemptOutcomeName(AttemptOutcome outcome) {
  switch (outcome) {
    case AttemptOutcome::kOk:
      return "ok";
    case AttemptOutcome::kTimeout:
      return "timeout";
    case AttemptOutcome::kUnavailable:
      return "unavailable";
    case AttemptOutcome::kOutage:
      return "outage";
  }
  return "unknown";
}

FaultInjector::FaultInjector(const FaultPlan& plan, uint64_t run_seed)
    : plan_(&plan), rng_(MixSeeds(plan.seed, run_seed)) {}

AttemptResult FaultInjector::QueryAttempt(PlatformId partner, Timestamp now) {
  AttemptResult result;
  const PartnerFaultSpec* spec = plan_->SpecFor(partner);
  if (spec == nullptr || spec->Trivial()) return result;
  if (spec->DownAt(now)) {
    result.outcome = AttemptOutcome::kOutage;
    return result;
  }
  if (spec->availability < 1.0 && !rng_.Bernoulli(spec->availability)) {
    result.outcome = AttemptOutcome::kUnavailable;
    return result;
  }
  if (spec->latency_ms_mean > 0.0) {
    result.latency_ms = rng_.Exponential(1.0 / spec->latency_ms_mean);
    if (spec->timeout_ms > 0.0 && result.latency_ms > spec->timeout_ms) {
      result.outcome = AttemptOutcome::kTimeout;
    }
  }
  return result;
}

bool FaultInjector::ReserveConflict(PlatformId partner) {
  const PartnerFaultSpec* spec = plan_->SpecFor(partner);
  if (spec == nullptr || spec->stale_probability <= 0.0) return false;
  return rng_.Bernoulli(spec->stale_probability);
}

}  // namespace fault
}  // namespace comx
