#include "core/offline_opt.h"

#include <gtest/gtest.h>

#include "geo/distance.h"
#include "testing/builders.h"

namespace comx {
namespace {

using testing_fixtures::MakeRequest;
using testing_fixtures::MakeWorker;
using testing_fixtures::PaperExample;

TEST(OfflineOptTest, PaperExampleTotaOptimum) {
  // Without borrowing, the Fig. 3(b) optimum is 9 + 6 + 3 = 18.
  OfflineConfig config;
  config.allow_outer = false;
  auto sol = SolveOffline(PaperExample(), 0, config);
  ASSERT_TRUE(sol.ok());
  EXPECT_DOUBLE_EQ(sol->matching.total_revenue, 18.0);
  EXPECT_EQ(sol->matching.size(), 3u);
  EXPECT_EQ(sol->solver, "hungarian");
}

TEST(OfflineOptTest, PaperExampleComOptimum) {
  // With borrowing at the 50% reservations baked into the fixture:
  // 4 + 9 + 3 + 3 + 2 = 21 (Fig. 3(c)).
  auto sol = SolveOffline(PaperExample(), 0, {});
  ASSERT_TRUE(sol.ok());
  EXPECT_DOUBLE_EQ(sol->matching.total_revenue, 21.0);
  EXPECT_EQ(sol->matching.size(), 5u);
  int outer = 0;
  for (const Assignment& a : sol->matching.assignments) {
    if (a.is_outer) {
      ++outer;
      EXPECT_GT(a.outer_payment, 0.0);
    } else {
      EXPECT_EQ(a.outer_payment, 0.0);
    }
  }
  EXPECT_EQ(outer, 2);
}

TEST(OfflineOptTest, OtherPlatformHasNoRequests) {
  auto sol = SolveOffline(PaperExample(), 1, {});
  ASSERT_TRUE(sol.ok());
  EXPECT_EQ(sol->matching.size(), 0u);
}

TEST(OfflineOptTest, GraphBuildRespectsConstraints) {
  std::vector<RequestId> ids;
  std::vector<double> payments;
  auto graph = BuildOfflineGraph(PaperExample(), 0, {}, &ids, &payments);
  ASSERT_TRUE(graph.ok());
  EXPECT_EQ(ids.size(), 5u);
  EXPECT_EQ(payments.size(), graph->edges().size());
  const Instance ins = PaperExample();
  for (const BipartiteEdge& e : graph->edges()) {
    const Request& r = ins.request(ids[static_cast<size_t>(e.left)]);
    const Worker& w = ins.worker(e.right);
    EXPECT_LE(w.time, r.time);  // time constraint
    EXPECT_LE(EuclideanDistance(w.location, r.location), w.radius + 1e-9);
    EXPECT_GT(e.weight, 0.0);
  }
}

TEST(OfflineOptTest, OuterEdgeWeightsAreValueMinusReservation) {
  std::vector<RequestId> ids;
  std::vector<double> payments;
  auto graph = BuildOfflineGraph(PaperExample(), 0, {}, &ids, &payments);
  ASSERT_TRUE(graph.ok());
  const Instance ins = PaperExample();
  for (size_t ei = 0; ei < graph->edges().size(); ++ei) {
    const BipartiteEdge& e = graph->edges()[ei];
    const Request& r = ins.request(ids[static_cast<size_t>(e.left)]);
    const Worker& w = ins.worker(e.right);
    if (w.platform != 0) {
      // Single-valued histories make the reservation draw deterministic.
      EXPECT_DOUBLE_EQ(payments[ei], w.history[0]);
      EXPECT_DOUBLE_EQ(e.weight, r.value - w.history[0]);
    } else {
      EXPECT_DOUBLE_EQ(payments[ei], 0.0);
      EXPECT_DOUBLE_EQ(e.weight, r.value);
    }
  }
}

TEST(OfflineOptTest, WorkerCapacityRelaxationIncreasesRevenue) {
  // Two requests in range of one worker: capacity 1 serves one, capacity 2
  // serves both.
  Instance ins;
  ins.AddWorker(MakeWorker(0, 1, 0, 0, 2.0));
  ins.AddRequest(MakeRequest(0, 2, 0.5, 0, 5.0));
  ins.AddRequest(MakeRequest(0, 3, -0.5, 0, 7.0));
  ins.BuildEvents();
  OfflineConfig c1;
  auto s1 = SolveOffline(ins, 0, c1);
  ASSERT_TRUE(s1.ok());
  EXPECT_DOUBLE_EQ(s1->matching.total_revenue, 7.0);
  OfflineConfig c2;
  c2.worker_capacity = 2;
  auto s2 = SolveOffline(ins, 0, c2);
  ASSERT_TRUE(s2.ok());
  EXPECT_DOUBLE_EQ(s2->matching.total_revenue, 12.0);
  EXPECT_EQ(s2->solver, "relaxed");
  // The static-range capacitated variant agrees here and uses flow.
  OfflineConfig c3 = c2;
  c3.relax_range_when_recycling = false;
  auto s3 = SolveOffline(ins, 0, c3);
  ASSERT_TRUE(s3.ok());
  EXPECT_DOUBLE_EQ(s3->matching.total_revenue, 12.0);
  EXPECT_EQ(s3->solver, "min_cost_flow");
}

TEST(OfflineOptTest, Capacity1BeyondDenseLimitUsesIncrementalKm) {
  Instance ins;
  ins.AddWorker(MakeWorker(0, 1, 0, 0, 2.0));
  ins.AddRequest(MakeRequest(0, 2, 0.5, 0, 5.0));
  ins.BuildEvents();
  OfflineConfig config;
  config.dense_cell_limit = 0;
  config.flow_edge_limit = 0;
  auto sol = SolveOffline(ins, 0, config);
  ASSERT_TRUE(sol.ok());
  EXPECT_EQ(sol->solver, "incremental_km");
  EXPECT_DOUBLE_EQ(sol->matching.total_revenue, 5.0);
}

TEST(OfflineOptTest, SolverFallbackToGreedyOnHugeCapacitatedGraphs) {
  Instance ins;
  ins.AddWorker(MakeWorker(0, 1, 0, 0, 2.0));
  ins.AddRequest(MakeRequest(0, 2, 0.5, 0, 5.0));
  ins.BuildEvents();
  OfflineConfig config;
  config.worker_capacity = 2;
  config.relax_range_when_recycling = false;
  config.dense_cell_limit = 0;
  config.flow_edge_limit = 0;
  auto sol = SolveOffline(ins, 0, config);
  ASSERT_TRUE(sol.ok());
  EXPECT_EQ(sol->solver, "greedy");
  EXPECT_DOUBLE_EQ(sol->matching.total_revenue, 5.0);
}

TEST(OfflineOptTest, WorkersWithEmptyHistoryNeverBorrowed) {
  Instance ins;
  ins.AddWorker(MakeWorker(1, 1, 0, 0, 2.0, {}));  // outer, no history
  ins.AddRequest(MakeRequest(0, 2, 0.5, 0, 5.0));
  ins.BuildEvents();
  auto sol = SolveOffline(ins, 0, {});
  ASSERT_TRUE(sol.ok());
  EXPECT_EQ(sol->matching.size(), 0u);
}

TEST(OfflineOptTest, DeterministicGivenSeed) {
  auto a = SolveOffline(PaperExample(), 0, {});
  auto b = SolveOffline(PaperExample(), 0, {});
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a->matching.total_revenue, b->matching.total_revenue);
  EXPECT_EQ(a->matching.assignments.size(), b->matching.assignments.size());
}

TEST(OfflineOptTest, RevenueAccountingIdentity) {
  auto sol = SolveOffline(PaperExample(), 0, {});
  ASSERT_TRUE(sol.ok());
  double sum = 0.0;
  for (const Assignment& a : sol->matching.assignments) sum += a.revenue;
  EXPECT_NEAR(sum, sol->matching.total_revenue, 1e-9);
}

}  // namespace
}  // namespace comx
