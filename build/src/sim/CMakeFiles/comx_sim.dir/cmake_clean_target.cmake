file(REMOVE_RECURSE
  "libcomx_sim.a"
)
