// Persistence of simulation results: matchings to CSV (one assignment per
// row) so runs can be archived, diffed, and analysed outside the binary.

#ifndef COMX_SIM_RESULT_IO_H_
#define COMX_SIM_RESULT_IO_H_

#include <string>

#include "model/assignment.h"
#include "model/instance.h"
#include "util/result.h"

namespace comx {

/// Writes `matching` as CSV:
///   request,worker,request_platform,worker_platform,is_outer,
///   outer_payment,revenue,value,time
/// with a header row. Entities are resolved against `instance`.
Status SaveMatchingCsv(const Instance& instance, const Matching& matching,
                       const std::string& path);

/// Reads a matching saved by SaveMatchingCsv and re-derives the totals.
/// Validates ids against the instance and the revenue arithmetic.
Result<Matching> LoadMatchingCsv(const Instance& instance,
                                 const std::string& path);

}  // namespace comx

#endif  // COMX_SIM_RESULT_IO_H_
