// Greedy-RT (Tong et al. ICDE'16 [9]): the random-threshold variant of the
// single-platform greedy with competitive ratio 1 / (2e ln(Umax + 1)) under
// the adversarial model. Included as an ablation baseline: it shows what the
// randomized-threshold idea achieves *without* cross-platform borrowing,
// isolating RamCOM's cooperation gain from its thresholding gain.

#ifndef COMX_CORE_GREEDY_RT_H_
#define COMX_CORE_GREEDY_RT_H_

#include "core/online_matcher.h"
#include "util/rng.h"

namespace comx {

/// Single-platform greedy that only serves requests whose value exceeds a
/// randomly drawn threshold e^k, k uniform over {0, ..., theta - 1},
/// theta = ceil(ln(max v + 1)).
class GreedyRt : public OnlineMatcher {
 public:
  void Reset(const Instance& instance, PlatformId platform,
             uint64_t seed) override;
  Decision OnRequest(const Request& r, const PlatformView& view) override;
  std::string name() const override { return "Greedy-RT"; }
  Status SaveState(ByteWriter* out) const override;
  Status RestoreState(ByteReader* in) override;

  /// The drawn threshold e^k (for tests/diagnostics).
  double threshold() const { return threshold_; }

 private:
  double threshold_ = 0.0;
  Rng rng_{0};
};

}  // namespace comx

#endif  // COMX_CORE_GREEDY_RT_H_
