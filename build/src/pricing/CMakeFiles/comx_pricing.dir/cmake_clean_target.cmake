file(REMOVE_RECURSE
  "libcomx_pricing.a"
)
