#include "exp/algo_grid.h"

#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/dem_com.h"
#include "datagen/synthetic.h"
#include "exp/sweep_runner.h"
#include "sim/simulator.h"
#include "util/csv.h"

namespace comx {
namespace exp {
namespace {

Instance SmallInstance() {
  SyntheticConfig config;
  config.requests_per_platform = {120};
  config.workers_per_platform = {30};
  config.seed = 7;
  auto instance = GenerateSynthetic(config);
  EXPECT_TRUE(instance.ok()) << instance.status();
  return std::move(*instance);
}

AlgoGridConfig OnlineOnlyConfig(int jobs) {
  AlgoGridConfig config;
  config.seeds = 4;
  config.jobs = jobs;
  config.algos = {Algo::kTota, Algo::kDemCom, Algo::kRamCom};
  config.sim.workers_recycle = true;
  // The wall-clock response-time column is the one legitimately
  // nondeterministic output; everything else must be bit-stable.
  config.sim.measure_response_time = false;
  return config;
}

TEST(AlgoGridTest, ParallelRowsAreBitIdenticalToSerial) {
  const Instance instance = SmallInstance();
  auto serial = RunAlgoGrid(instance, OnlineOnlyConfig(1));
  auto parallel = RunAlgoGrid(instance, OnlineOnlyConfig(8));
  ASSERT_TRUE(serial.ok()) << serial.status();
  ASSERT_TRUE(parallel.ok()) << parallel.status();
  ASSERT_EQ(serial->size(), parallel->size());
  for (size_t i = 0; i < serial->size(); ++i) {
    const Row& a = (*serial)[i];
    const Row& b = (*parallel)[i];
    EXPECT_EQ(a.algo, b.algo);
    EXPECT_EQ(a.revenue, b.revenue);  // element-wise exact doubles
    EXPECT_EQ(a.completed, b.completed);
    EXPECT_EQ(a.response_ms, b.response_ms);
    EXPECT_EQ(a.memory_mb, b.memory_mb);
    EXPECT_EQ(a.cooperative, b.cooperative);
    EXPECT_EQ(a.acceptance, b.acceptance);
    EXPECT_EQ(a.payment_rate, b.payment_rate);
  }
  // Rendered artifacts — what the bench binaries print and append — must
  // be byte-identical too.
  EXPECT_EQ(RenderTable("T", *serial, instance.PlatformCount()),
            RenderTable("T", *parallel, instance.PlatformCount()));
  EXPECT_EQ(RenderCsvRows("tag", *serial), RenderCsvRows("tag", *parallel));
}

TEST(AlgoGridTest, PerSeedRevenueIdenticalAcrossJobCounts) {
  // Below the row averaging: every (config, seed) cell's SimResult revenue
  // must match between a serial and a parallel sweep.
  const Instance instance = SmallInstance();
  SimConfig sim;
  sim.workers_recycle = true;
  sim.measure_response_time = false;
  auto run = [&](int jobs) {
    std::vector<double> revenue(8, 0.0);
    SweepOptions options;
    options.jobs = jobs;
    SweepRunner runner(options);
    EXPECT_TRUE(runner.Run(2, 4, [&](const SweepJob& job) -> Status {
                  std::vector<std::unique_ptr<OnlineMatcher>> owned;
                  std::vector<OnlineMatcher*> matchers;
                  for (PlatformId p = 0; p < instance.PlatformCount(); ++p) {
                    owned.push_back(std::make_unique<DemCom>());
                    matchers.push_back(owned.back().get());
                  }
                  COMX_ASSIGN_OR_RETURN(
                      auto result,
                      RunSimulation(instance, matchers, sim,
                                    JobSeed(2024, job.job_index)));
                  revenue[job.job_index] = result.metrics.TotalRevenue();
                  return Status::OK();
                }).ok());
    return revenue;
  };
  const auto serial = run(1);
  const auto parallel = run(8);
  EXPECT_EQ(serial, parallel);
  // Distinct seeds should actually change the outcome somewhere; a sweep
  // of identical runs would make this test vacuous.
  bool any_different = false;
  for (size_t i = 1; i < serial.size(); ++i) {
    if (serial[i] != serial[0]) any_different = true;
  }
  EXPECT_TRUE(any_different);
}

TEST(AlgoGridTest, PreservesAlgoOrderIncludingOffline) {
  const Instance instance = SmallInstance();
  AlgoGridConfig config;
  config.seeds = 1;
  config.algos = {Algo::kTota, Algo::kOff};
  config.sim.measure_response_time = false;
  auto rows = RunAlgoGrid(instance, config);
  ASSERT_TRUE(rows.ok()) << rows.status();
  ASSERT_EQ(rows->size(), 2u);
  EXPECT_EQ((*rows)[0].algo, Algo::kTota);
  EXPECT_EQ((*rows)[1].algo, Algo::kOff);
  EXPECT_GT((*rows)[1].revenue.size(), 0u);
}

TEST(AlgoGridTest, RejectsNonPositiveSeeds) {
  const Instance instance = SmallInstance();
  AlgoGridConfig config;
  config.seeds = 0;
  const auto rows = RunAlgoGrid(instance, config);
  ASSERT_FALSE(rows.ok());
  EXPECT_EQ(rows.status().code(), StatusCode::kInvalidArgument);
}

TEST(AlgoGridTest, CsvAppendWritesHeaderExactlyOnce) {
  const std::string path =
      testing::TempDir() + "/algo_grid_csv_test.csv";
  std::remove(path.c_str());
  std::vector<Row> rows(1);
  rows[0].algo = Algo::kTota;
  rows[0].revenue = {10.0, 5.0};
  rows[0].completed = {3, 2};
  ASSERT_TRUE(AppendCsvFile(path, "p1", rows).ok());
  ASSERT_TRUE(AppendCsvFile(path, "p2", rows).ok());
  auto parsed = ReadCsvFile(path);
  ASSERT_TRUE(parsed.ok()) << parsed.status();
  ASSERT_EQ(parsed->size(), 3u);  // header + two rows
  EXPECT_EQ((*parsed)[0][0], "tag");
  EXPECT_EQ((*parsed)[1][0], "p1");
  EXPECT_EQ((*parsed)[2][0], "p2");
  EXPECT_EQ((*parsed)[1][2], "15.00");  // summed platform revenue
  std::remove(path.c_str());
}

}  // namespace
}  // namespace exp
}  // namespace comx
