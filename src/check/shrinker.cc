#include "check/shrinker.h"

#include <algorithm>
#include <chrono>

namespace comx {
namespace check {

Instance RemoveEntities(const Instance& instance,
                        const std::vector<char>& keep_worker,
                        const std::vector<char>& keep_request) {
  Instance out;
  for (size_t i = 0; i < instance.workers().size(); ++i) {
    if (keep_worker[i]) out.AddWorker(instance.workers()[i]);
  }
  for (size_t j = 0; j < instance.requests().size(); ++j) {
    if (keep_request[j]) out.AddRequest(instance.requests()[j]);
  }
  out.BuildEvents();
  return out;
}

namespace {

using Clock = std::chrono::steady_clock;

// One entity index into the combined (workers ++ requests) list.
struct EntityMask {
  std::vector<char> worker;
  std::vector<char> request;
  size_t Size() const { return worker.size() + request.size(); }
  char& At(size_t i) {
    return i < worker.size() ? worker[i] : request[i - worker.size()];
  }
};

}  // namespace

ShrinkResult ShrinkInstance(const Instance& instance,
                            const FailurePredicate& fails,
                            const ShrinkOptions& options) {
  ShrinkResult result;
  result.entities_before = static_cast<int64_t>(instance.workers().size() +
                                                instance.requests().size());

  const Clock::time_point deadline =
      Clock::now() + std::chrono::duration_cast<Clock::duration>(
                         std::chrono::duration<double>(
                             options.time_budget_seconds > 0.0
                                 ? options.time_budget_seconds
                                 : 1e9));
  const auto out_of_budget = [&] {
    return (options.time_budget_seconds > 0.0 && Clock::now() >= deadline) ||
           result.probes >= options.max_probes;
  };

  EntityMask kept;
  kept.worker.assign(instance.workers().size(), 1);
  kept.request.assign(instance.requests().size(), 1);

  const auto probe = [&](const EntityMask& mask) {
    ++result.probes;
    return fails(RemoveEntities(instance, mask.worker, mask.request));
  };

  // The caller promises the full instance fails; verify so a flaky
  // predicate cannot make us "shrink" a healthy instance to nothing.
  if (kept.Size() == 0 || !probe(kept)) {
    result.instance = instance;
    result.entities_after = result.entities_before;
    return result;
  }

  // ddmin-style greedy deletion: try dropping windows of `chunk` surviving
  // entities; a successful drop restarts the pass at the same granularity,
  // a fruitless full pass halves it.
  size_t alive = kept.Size();
  size_t chunk = std::max<size_t>(1, alive / 2);
  while (true) {
    if (out_of_budget()) {
      result.budget_exhausted = true;
      break;
    }
    bool removed_any = false;
    // Walk over *surviving* entity positions so windows stay contiguous in
    // what is left rather than in the original numbering.
    std::vector<size_t> live;
    live.reserve(alive);
    for (size_t i = 0; i < kept.Size(); ++i) {
      if (kept.At(i)) live.push_back(i);
    }
    for (size_t start = 0; start < live.size(); start += chunk) {
      if (out_of_budget()) {
        result.budget_exhausted = true;
        break;
      }
      const size_t end = std::min(live.size(), start + chunk);
      EntityMask candidate = kept;
      for (size_t i = start; i < end; ++i) candidate.At(live[i]) = 0;
      if (probe(candidate)) {
        kept = std::move(candidate);
        alive -= end - start;
        removed_any = true;
      }
    }
    if (result.budget_exhausted) break;
    if (!removed_any) {
      if (chunk == 1) break;  // 1-minimal: no single deletion reproduces
      chunk = std::max<size_t>(1, chunk / 2);
    } else {
      chunk = std::min(chunk, std::max<size_t>(1, alive / 2));
    }
    if (alive == 0) break;
  }

  result.instance = RemoveEntities(instance, kept.worker, kept.request);
  result.entities_after = static_cast<int64_t>(alive);
  return result;
}

}  // namespace check
}  // namespace comx
