// Shared test fixtures: entity builders and the paper's running Example 1
// (Fig. 3 + Tables I-II) realized as a concrete geometry.

#ifndef COMX_TESTS_TESTING_BUILDERS_H_
#define COMX_TESTS_TESTING_BUILDERS_H_

#include <vector>

#include "model/instance.h"

namespace comx {
namespace testing_fixtures {

inline Worker MakeWorker(PlatformId platform, Timestamp time, double x,
                         double y, double radius,
                         std::vector<double> history = {10.0}) {
  Worker w;
  w.platform = platform;
  w.time = time;
  w.location = Point(x, y);
  w.radius = radius;
  w.history = std::move(history);
  return w;
}

inline Request MakeRequest(PlatformId platform, Timestamp time, double x,
                           double y, double value) {
  Request r;
  r.platform = platform;
  r.time = time;
  r.location = Point(x, y);
  r.value = value;
  return r;
}

/// The paper's Example 1 with an explicit geometry:
///
///   workers: w1..w5 arrive at t = 1, 2, 4, 7, 9; w3 and w5 belong to the
///   cooperative platform (platform 1); the rest and every request belong
///   to the target platform 0.
///   requests: r1..r5 arrive at t = 3, 5, 6, 8, 10 with values
///   4, 9, 6, 3, 4 (Table I reconstructed from the worked revenues).
///
///   Coverage: w1 {r1, r2}, w2 {r2, r3}, w3 {r3}, w4 {r4}, w5 {r5}.
///
/// Consequences (verified in core/paper_example_test.cc):
///   * online TOTA greedy earns 4 + 9 + 3 = 16;
///   * offline single-platform optimum earns 9 + 6 + 3 = 18 (Fig. 3(b));
///   * offline COM with 50% outer payments earns
///     4 + 9 + 6*0.5 + 3 + 4*0.5 = 21 (Fig. 3(c)) — w3/w5 histories are
///     single-valued at half the request value so the offline reservation
///     draw is exactly the paper's 50% payment.
inline Instance PaperExample() {
  Instance ins;
  ins.AddWorker(MakeWorker(0, 1.0, 0.0, 0.0, 1.5));            // w1
  ins.AddWorker(MakeWorker(0, 2.0, 2.0, 0.0, 1.5));            // w2
  ins.AddWorker(MakeWorker(1, 4.0, 3.2, 0.0, 1.0, {3.0}));     // w3 (outer)
  ins.AddWorker(MakeWorker(0, 7.0, 6.0, 0.0, 0.6));            // w4
  ins.AddWorker(MakeWorker(1, 9.0, 7.2, 0.0, 1.0, {2.0}));     // w5 (outer)
  ins.AddRequest(MakeRequest(0, 3.0, 0.5, 0.0, 4.0));          // r1
  ins.AddRequest(MakeRequest(0, 5.0, 1.0, 0.0, 9.0));          // r2
  ins.AddRequest(MakeRequest(0, 6.0, 3.0, 0.0, 6.0));          // r3
  ins.AddRequest(MakeRequest(0, 8.0, 6.5, 0.0, 3.0));          // r4
  ins.AddRequest(MakeRequest(0, 10.0, 7.0, 0.0, 4.0));         // r5
  ins.BuildEvents();
  return ins;
}

}  // namespace testing_fixtures
}  // namespace comx

#endif  // COMX_TESTS_TESTING_BUILDERS_H_
