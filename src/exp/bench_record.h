// BENCH baseline records: flat JSONL result files written by the bench
// sweep binary and diffed by tools/bench_check.
//
// A file holds one flat JSON object per line ("comx-bench-sweep-v1"), each
// identified by a unique "name" field. Deterministic fields (revenues,
// completion counts) must reproduce across machines and job counts and are
// compared against a committed baseline with a relative tolerance; timing
// and footprint fields (wall_seconds, runs_per_sec, rss_mb, jobs) vary by
// host and are informational only. The flat shape is deliberate: it is
// exactly what util/json.h's ParseJsonFlatObject handles, and line-oriented
// diffs stay readable in review.

#ifndef COMX_EXP_BENCH_RECORD_H_
#define COMX_EXP_BENCH_RECORD_H_

#include <map>
#include <string>
#include <vector>

#include "util/result.h"

namespace comx {
namespace exp {

/// Schema tag written into (and required of) every record line.
inline constexpr const char* kBenchSchema = "comx-bench-sweep-v1";

/// One baseline record: a named bag of scalar fields. Field order in the
/// serialized line is map order (sorted), so re-running a sweep yields a
/// byte-stable file.
struct BenchRecord {
  std::string name;
  std::map<std::string, double> numbers;
  std::map<std::string, std::string> strings;
};

/// Serializes one record to a single JSON line (no trailing newline).
std::string SerializeBenchRecord(const BenchRecord& record);

/// Writes records as JSONL (schema line order = input order).
Status WriteBenchRecords(const std::string& path,
                         const std::vector<BenchRecord>& records);

/// Parses a JSONL baseline file. Errors on schema mismatch, duplicate
/// names, or malformed lines; blank lines are skipped.
Result<std::vector<BenchRecord>> ReadBenchRecords(const std::string& path);

struct BenchCompareOptions {
  /// Allowed relative error |a - b| / max(|a|, |b|, 1) on checked fields.
  double rel_tol = 1e-9;
  /// Field-name prefixes that never fail a comparison (host-dependent
  /// timing/footprint measurements); they are still reported, with the
  /// relative delta against the baseline per row.
  std::vector<std::string> informational_prefixes = {
      "wall_",    "runs_per_sec", "rss_",  "jobs",
      "speedup_", "latency_",     "decisions_per_sec"};
};

/// Diffs `current` against `baseline`. Returns one human-readable line per
/// mismatch (missing record, missing field, value out of tolerance); empty
/// means the run reproduces the baseline. Informational fields are listed
/// with an "info:" prefix and do not count as mismatches.
struct BenchCompareResult {
  std::vector<std::string> mismatches;
  std::vector<std::string> notes;
  bool ok() const { return mismatches.empty(); }
};
BenchCompareResult CompareBenchRecords(
    const std::vector<BenchRecord>& baseline,
    const std::vector<BenchRecord>& current,
    const BenchCompareOptions& options = {});

}  // namespace exp
}  // namespace comx

#endif  // COMX_EXP_BENCH_RECORD_H_
