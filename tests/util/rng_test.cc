#include "util/rng.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <set>
#include <vector>

#include <gtest/gtest.h>

namespace comx {
namespace {

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.NextUint64(), b.NextUint64());
  }
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.NextUint64() == b.NextUint64()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10'000; ++i) {
    const double x = rng.NextDouble();
    EXPECT_GE(x, 0.0);
    EXPECT_LT(x, 1.0);
  }
}

TEST(RngTest, UniformRespectsBounds) {
  Rng rng(7);
  for (int i = 0; i < 10'000; ++i) {
    const double x = rng.Uniform(-3.5, 2.5);
    EXPECT_GE(x, -3.5);
    EXPECT_LT(x, 2.5);
  }
}

TEST(RngTest, UniformIntCoversRangeInclusive) {
  Rng rng(11);
  std::set<int64_t> seen;
  for (int i = 0; i < 10'000; ++i) {
    const int64_t x = rng.UniformInt(3, 7);
    EXPECT_GE(x, 3);
    EXPECT_LE(x, 7);
    seen.insert(x);
  }
  EXPECT_EQ(seen.size(), 5u);  // all of {3,4,5,6,7} hit
}

TEST(RngTest, UniformIntSingleton) {
  Rng rng(1);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(rng.UniformInt(5, 5), 5);
}

TEST(RngTest, UniformIntApproximatelyUniform) {
  Rng rng(99);
  std::vector<int> counts(10, 0);
  const int n = 100'000;
  for (int i = 0; i < n; ++i) ++counts[static_cast<size_t>(rng.UniformInt(0, 9))];
  for (int c : counts) {
    EXPECT_NEAR(c, n / 10, 500);  // ~5 sigma of binomial
  }
}

TEST(RngTest, BernoulliEdgeCases) {
  Rng rng(5);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.Bernoulli(0.0));
    EXPECT_TRUE(rng.Bernoulli(1.0));
    EXPECT_FALSE(rng.Bernoulli(-0.5));
    EXPECT_TRUE(rng.Bernoulli(1.5));
  }
}

TEST(RngTest, BernoulliFrequency) {
  Rng rng(5);
  int hits = 0;
  const int n = 100'000;
  for (int i = 0; i < n; ++i) hits += rng.Bernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(RngTest, NormalMoments) {
  Rng rng(21);
  double sum = 0.0, sq = 0.0;
  const int n = 200'000;
  for (int i = 0; i < n; ++i) {
    const double x = rng.Normal(10.0, 2.0);
    sum += x;
    sq += x * x;
  }
  const double mean = sum / n;
  const double var = sq / n - mean * mean;
  EXPECT_NEAR(mean, 10.0, 0.05);
  EXPECT_NEAR(var, 4.0, 0.1);
}

TEST(RngTest, LogNormalIsPositive) {
  Rng rng(33);
  for (int i = 0; i < 10'000; ++i) {
    EXPECT_GT(rng.LogNormal(1.0, 0.8), 0.0);
  }
}

TEST(RngTest, LogNormalMedian) {
  Rng rng(33);
  std::vector<double> xs;
  for (int i = 0; i < 50'000; ++i) xs.push_back(rng.LogNormal(2.0, 0.5));
  std::nth_element(xs.begin(), xs.begin() + xs.size() / 2, xs.end());
  EXPECT_NEAR(xs[xs.size() / 2], std::exp(2.0), 0.15);
}

TEST(RngTest, ExponentialMean) {
  Rng rng(44);
  double sum = 0.0;
  const int n = 200'000;
  for (int i = 0; i < n; ++i) sum += rng.Exponential(0.5);
  EXPECT_NEAR(sum / n, 2.0, 0.05);
}

TEST(RngTest, ShuffleIsPermutation) {
  Rng rng(8);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8, 9, 10};
  std::vector<int> original = v;
  rng.Shuffle(&v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, original);
}

TEST(RngTest, ShuffleChangesOrderEventually) {
  Rng rng(8);
  std::vector<int> v(50);
  for (int i = 0; i < 50; ++i) v[static_cast<size_t>(i)] = i;
  const std::vector<int> original = v;
  rng.Shuffle(&v);
  EXPECT_NE(v, original);  // probability 1/50! of spurious failure
}

TEST(RngTest, ShuffleUniformOverSmallPermutations) {
  // All 6 permutations of 3 elements should be roughly equally likely.
  std::map<std::vector<int>, int> counts;
  Rng rng(17);
  const int n = 60'000;
  for (int i = 0; i < n; ++i) {
    std::vector<int> v{0, 1, 2};
    rng.Shuffle(&v);
    ++counts[v];
  }
  ASSERT_EQ(counts.size(), 6u);
  for (const auto& [perm, c] : counts) {
    EXPECT_NEAR(c, n / 6, 400);
  }
}

TEST(RngTest, PickIndexWithinBounds) {
  Rng rng(3);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.PickIndex(7), 7u);
  }
}

TEST(RngTest, ForkProducesIndependentStream) {
  Rng a(55);
  Rng forked = a.Fork();
  // Forked stream differs from the parent's continued stream.
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.NextUint64() == forked.NextUint64()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(RngTest, CopyReproducesStream) {
  Rng a(99);
  a.NextUint64();
  Rng b = a;  // copy mid-stream
  for (int i = 0; i < 32; ++i) EXPECT_EQ(a.NextUint64(), b.NextUint64());
}

}  // namespace
}  // namespace comx
