// Full-stack tests: generated city workloads through every algorithm, with
// the paper's qualitative orderings asserted.

#include <cstdio>
#include <memory>
#include <string>

#include <gtest/gtest.h>

#include "core/dem_com.h"
#include "core/offline_opt.h"
#include "core/ram_com.h"
#include "core/tota_greedy.h"
#include "datagen/real_like.h"
#include "datagen/synthetic.h"
#include "obs/metrics_registry.h"
#include "obs/trace.h"
#include "sim/simulator.h"

namespace comx {
namespace {

Instance MidInstance(uint64_t seed = 41) {
  SyntheticConfig c;
  c.requests_per_platform = {400};
  c.workers_per_platform = {80};
  c.seed = seed;
  auto ins = GenerateSynthetic(c);
  EXPECT_TRUE(ins.ok());
  return std::move(ins).value();
}

SimConfig DayConfig() {
  SimConfig c;
  c.workers_recycle = true;
  c.measure_response_time = false;
  return c;
}

struct RunOutcome {
  double revenue;
  SimMetrics metrics;
};

template <typename Matcher>
RunOutcome RunWith(const Instance& ins, const SimConfig& config,
                   uint64_t seed) {
  Matcher m0, m1;
  auto r = RunSimulation(ins, {&m0, &m1}, config, seed);
  EXPECT_TRUE(r.ok()) << r.status();
  EXPECT_TRUE(AuditSimResult(ins, config, *r).ok());
  return {r->metrics.TotalRevenue(), r->metrics};
}

TEST(EndToEndTest, ComBeatsTotaOnImbalancedCity) {
  const Instance ins = MidInstance();
  const SimConfig config = DayConfig();
  double tota = 0, dem = 0, ram = 0;
  const int kSeeds = 3;
  for (uint64_t s = 1; s <= kSeeds; ++s) {
    tota += RunWith<TotaGreedy>(ins, config, s).revenue;
    dem += RunWith<DemCom>(ins, config, s).revenue;
    ram += RunWith<RamCom>(ins, config, s).revenue;
  }
  // Headline ordering of Tables V-VII: DemCOM and RamCOM above TOTA.
  EXPECT_GT(dem, tota);
  EXPECT_GT(ram, tota);
}

TEST(EndToEndTest, OfflineUpperBoundsOnlineWithoutRecycling) {
  const Instance ins = MidInstance();
  SimConfig strict;
  strict.workers_recycle = false;
  strict.measure_response_time = false;
  double off = 0.0;
  for (PlatformId p = 0; p < 2; ++p) {
    auto sol = SolveOffline(ins, p, {});
    ASSERT_TRUE(sol.ok());
    off += sol->matching.total_revenue;
  }
  for (uint64_t s = 1; s <= 3; ++s) {
    EXPECT_LE(RunWith<TotaGreedy>(ins, strict, s).revenue, off + 1e-6);
    // DemCOM/RamCOM pay *online-estimated* prices, which can undercut the
    // offline reservation draw on individual requests, but the offline
    // optimum with full knowledge still dominates in aggregate here.
    EXPECT_LE(RunWith<DemCom>(ins, strict, s).revenue, off * 1.05);
    EXPECT_LE(RunWith<RamCom>(ins, strict, s).revenue, off * 1.05);
  }
}

TEST(EndToEndTest, CooperativeRequestsOnlyFromComAlgorithms) {
  const Instance ins = MidInstance();
  const SimConfig config = DayConfig();
  const auto tota = RunWith<TotaGreedy>(ins, config, 2);
  EXPECT_EQ(tota.metrics.TotalCooperative(), 0);
  const auto dem = RunWith<DemCom>(ins, config, 2);
  const auto ram = RunWith<RamCom>(ins, config, 2);
  EXPECT_GT(dem.metrics.TotalCooperative() +
                ram.metrics.TotalCooperative(),
            0);
}

TEST(EndToEndTest, RamComAcceptanceRatioAboveDemCom) {
  // Section V-B4: RamCOM's MER pricing gets accepted far more often than
  // DemCOM's minimum pricing. Averaged over seeds for stability.
  const Instance ins = MidInstance();
  const SimConfig config = DayConfig();
  double dem_acc = 0, ram_acc = 0;
  const int kSeeds = 3;
  for (uint64_t s = 1; s <= kSeeds; ++s) {
    dem_acc += RunWith<DemCom>(ins, config, s).metrics.Aggregate()
                   .AcceptanceRatio();
    ram_acc += RunWith<RamCom>(ins, config, s).metrics.Aggregate()
                   .AcceptanceRatio();
  }
  EXPECT_GT(ram_acc, dem_acc);
}

TEST(EndToEndTest, RamComPaysMoreButCompletesMoreCooperative) {
  // Section V-B5: RamCOM's payment rate exceeds DemCOM's, and it completes
  // more cooperative requests.
  const Instance ins = MidInstance();
  const SimConfig config = DayConfig();
  double dem_rate = 0, ram_rate = 0;
  int64_t dem_cor = 0, ram_cor = 0;
  for (uint64_t s = 1; s <= 3; ++s) {
    const auto dem = RunWith<DemCom>(ins, config, s).metrics.Aggregate();
    const auto ram = RunWith<RamCom>(ins, config, s).metrics.Aggregate();
    dem_rate += dem.MeanPaymentRate();
    ram_rate += ram.MeanPaymentRate();
    dem_cor += dem.completed_outer;
    ram_cor += ram.completed_outer;
  }
  EXPECT_GT(ram_cor, dem_cor);
  if (dem_cor > 0) {
    EXPECT_GT(ram_rate, dem_rate * 0.9);  // Ram pays at least comparably
  }
}

TEST(EndToEndTest, RealLikeCloneRunsAllAlgorithms) {
  auto ins = GenerateRealLike(Rdx11Ryx11(), 0.01, 11);
  ASSERT_TRUE(ins.ok());
  const SimConfig config = DayConfig();
  const auto tota = RunWith<TotaGreedy>(*ins, config, 1);
  const auto dem = RunWith<DemCom>(*ins, config, 1);
  const auto ram = RunWith<RamCom>(*ins, config, 1);
  EXPECT_GT(tota.revenue, 0.0);
  EXPECT_GE(dem.revenue, tota.revenue * 0.9);
  EXPECT_GE(ram.revenue, tota.revenue * 0.9);
}

TEST(EndToEndTest, ObservabilityChangesNoResult) {
  // The determinism guard for the tracing/metrics layer: running with the
  // trace sink attached and metric collection on must yield assignment-for-
  // assignment identical results — instrumentation never consumes RNG
  // draws.
  const Instance ins = MidInstance();
  const SimConfig plain = DayConfig();

  DemCom d0, d1;
  auto bare = RunSimulation(ins, {&d0, &d1}, plain, 5);
  ASSERT_TRUE(bare.ok());

  obs::VectorTraceSink sink;
  SimConfig traced = plain;
  traced.trace = &sink;
  obs::SetCollectionEnabled(true);
  DemCom t0, t1;
  auto observed = RunSimulation(ins, {&t0, &t1}, traced, 5);
  obs::SetCollectionEnabled(false);
  ASSERT_TRUE(observed.ok());

  ASSERT_EQ(bare->matching.assignments.size(),
            observed->matching.assignments.size());
  for (size_t i = 0; i < bare->matching.assignments.size(); ++i) {
    const Assignment& a = bare->matching.assignments[i];
    const Assignment& b = observed->matching.assignments[i];
    EXPECT_EQ(a.request, b.request);
    EXPECT_EQ(a.worker, b.worker);
    EXPECT_EQ(a.is_outer, b.is_outer);
    EXPECT_EQ(a.outer_payment, b.outer_payment);  // bit-exact
    EXPECT_EQ(a.revenue, b.revenue);
  }
  EXPECT_EQ(bare->metrics.TotalRevenue(), observed->metrics.TotalRevenue());
}

TEST(EndToEndTest, TraceReplayReproducesRunRevenue) {
  // Write a real simulation trace through the JSONL writer, then replay it
  // from disk: the acceptance criterion is bit-exact revenue reproduction.
  const Instance ins = MidInstance();
  const SimConfig base = DayConfig();
  const std::string path = ::testing::TempDir() + "e2e_trace.jsonl";
  auto writer = obs::JsonlTraceWriter::Open(path);
  ASSERT_TRUE(writer.ok());

  SimConfig traced = base;
  traced.trace = writer->get();
  DemCom m0, m1;
  auto result = RunSimulation(ins, {&m0, &m1}, traced, 3);
  ASSERT_TRUE(result.ok());
  ASSERT_TRUE((*writer)->Close().ok());

  auto replay = obs::ReplayTraceFile(path);
  ASSERT_TRUE(replay.ok()) << replay.status().ToString();
  EXPECT_TRUE(obs::CheckTraceReplay(*replay).ok());
  ASSERT_EQ(replay->platform_revenue.size(), 2u);
  EXPECT_EQ(replay->platform_revenue[0],
            result->metrics.per_platform[0].revenue);
  EXPECT_EQ(replay->platform_revenue[1],
            result->metrics.per_platform[1].revenue);
  EXPECT_EQ(replay->total_revenue, result->metrics.TotalRevenue());
  EXPECT_EQ(replay->assignments,
            static_cast<int64_t>(result->matching.assignments.size()));
  EXPECT_EQ(replay->decision_events,
            static_cast<int64_t>(ins.requests().size()));
  std::remove(path.c_str());
}

TEST(EndToEndTest, MixedMatchersPerPlatform) {
  // One platform runs DemCOM while the other runs TOTA — the simulator
  // supports heterogeneous fleets and stays consistent.
  const Instance ins = MidInstance();
  DemCom dem;
  TotaGreedy tota;
  const SimConfig config = DayConfig();
  auto r = RunSimulation(ins, {&dem, &tota}, config, 9);
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(AuditSimResult(ins, config, *r).ok());
  // Platform 1 (TOTA) must have no cooperative requests.
  EXPECT_EQ(r->metrics.per_platform[1].completed_outer, 0);
}

}  // namespace
}  // namespace comx
