#include "pricing/acceptance_model.h"

#include <gtest/gtest.h>

#include "testing/builders.h"

namespace comx {
namespace {

using testing_fixtures::MakeWorker;

Instance TwoWorkerInstance() {
  Instance ins;
  ins.AddWorker(MakeWorker(0, 1, 0, 0, 1, {2.0, 4.0, 6.0, 8.0}));
  ins.AddWorker(MakeWorker(1, 1, 0, 0, 1, {10.0}));
  ins.BuildEvents();
  return ins;
}

TEST(AcceptanceModelTest, PerWorkerEcdf) {
  const Instance ins = TwoWorkerInstance();
  const AcceptanceModel model(ins);
  EXPECT_DOUBLE_EQ(model.AcceptProbability(0, 4.0), 0.5);
  EXPECT_DOUBLE_EQ(model.AcceptProbability(0, 8.0), 1.0);
  EXPECT_DOUBLE_EQ(model.AcceptProbability(1, 9.0), 0.0);
  EXPECT_DOUBLE_EQ(model.AcceptProbability(1, 10.0), 1.0);
}

TEST(AcceptanceModelTest, GroupProbabilityIndependentUnion) {
  const Instance ins = TwoWorkerInstance();
  const AcceptanceModel model(ins);
  // pr = 1 - (1 - 0.5)(1 - 0) = 0.5 at payment 4.
  EXPECT_DOUBLE_EQ(model.GroupAcceptProbability({0, 1}, 4.0), 0.5);
  // At 10, both accept surely: 1 - 0 * 0 = 1.
  EXPECT_DOUBLE_EQ(model.GroupAcceptProbability({0, 1}, 10.0), 1.0);
  // Empty group never accepts.
  EXPECT_DOUBLE_EQ(model.GroupAcceptProbability({}, 10.0), 0.0);
}

TEST(AcceptanceModelTest, GroupProbabilityShortCircuitsAtOne) {
  const Instance ins = TwoWorkerInstance();
  const AcceptanceModel model(ins);
  EXPECT_DOUBLE_EQ(model.GroupAcceptProbability({1, 0}, 10.0), 1.0);
}

TEST(AcceptanceModelTest, DrawMatchesProbabilityInFrequency) {
  const Instance ins = TwoWorkerInstance();
  const AcceptanceModel model(ins);
  Rng rng(42);
  int hits = 0;
  const int n = 50'000;
  for (int i = 0; i < n; ++i) {
    hits += model.DrawAcceptance(0, 4.0, &rng) ? 1 : 0;
  }
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.5, 0.01);
}

TEST(AcceptanceModelTest, DrawDeterministicAtExtremes) {
  const Instance ins = TwoWorkerInstance();
  const AcceptanceModel model(ins);
  Rng rng(1);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(model.DrawAcceptance(1, 5.0, &rng));   // prob 0
    EXPECT_TRUE(model.DrawAcceptance(1, 10.0, &rng));   // prob 1
  }
}

TEST(AcceptanceModelTest, EmptyHistoryNeverAccepts) {
  Instance ins;
  ins.AddWorker(MakeWorker(0, 1, 0, 0, 1, {}));
  ins.BuildEvents();
  const AcceptanceModel model(ins);
  EXPECT_DOUBLE_EQ(model.AcceptProbability(0, 1e9), 0.0);
  Rng rng(2);
  EXPECT_FALSE(model.DrawAcceptance(0, 1e9, &rng));
}

TEST(AcceptanceModelTest, CoversEveryWorker) {
  const Instance ins = TwoWorkerInstance();
  const AcceptanceModel model(ins);
  EXPECT_EQ(model.worker_count(), 2u);
  EXPECT_EQ(model.HistoryOf(0).size(), 4u);
  EXPECT_EQ(model.HistoryOf(1).size(), 1u);
}

}  // namespace
}  // namespace comx
