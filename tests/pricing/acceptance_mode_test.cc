// Tests of the two acceptance ground-truth modes (DESIGN.md §7.3): the
// paper's per-offer Bernoulli and the reservation mode shared with OFF.
#include <cmath>

#include <gtest/gtest.h>

#include "pricing/acceptance_model.h"
#include "testing/builders.h"

namespace comx {
namespace {

using testing_fixtures::MakeWorker;

Instance ThreeWorkers() {
  Instance ins;
  ins.AddWorker(MakeWorker(0, 1, 0, 0, 1, {2.0, 4.0, 6.0}));
  ins.AddWorker(MakeWorker(1, 1, 0, 0, 1, {10.0}));
  ins.AddWorker(MakeWorker(1, 1, 0, 0, 1, {}));
  ins.BuildEvents();
  return ins;
}

TEST(DrawWorkerReservationsTest, DrawsFromHistory) {
  const Instance ins = ThreeWorkers();
  for (uint64_t seed = 0; seed < 20; ++seed) {
    const auto rho = DrawWorkerReservations(ins, seed);
    ASSERT_EQ(rho.size(), 3u);
    EXPECT_TRUE(rho[0] == 2.0 || rho[0] == 4.0 || rho[0] == 6.0);
    EXPECT_EQ(rho[1], 10.0);
    EXPECT_TRUE(std::isinf(rho[2]));  // empty history never accepts
  }
}

TEST(DrawWorkerReservationsTest, DeterministicPerSeed) {
  const Instance ins = ThreeWorkers();
  EXPECT_EQ(DrawWorkerReservations(ins, 7), DrawWorkerReservations(ins, 7));
}

TEST(DrawWorkerReservationsTest, MatchesEcdfInDistribution) {
  // P(rho <= p) must equal the ECDF pr(p, w) — the consistency that makes
  // reservation mode a valid realization of Definition 3.1.
  const Instance ins = ThreeWorkers();
  int le4 = 0;
  const int n = 20'000;
  for (uint64_t seed = 0; seed < n; ++seed) {
    le4 += DrawWorkerReservations(ins, seed)[0] <= 4.0 ? 1 : 0;
  }
  EXPECT_NEAR(static_cast<double>(le4) / n, 2.0 / 3.0, 0.02);
}

TEST(AcceptanceModeTest, BernoulliModeIsStochastic) {
  const Instance ins = ThreeWorkers();
  const AcceptanceModel model(ins, AcceptanceMode::kBernoulli);
  Rng rng(1);
  int accepts = 0;
  for (int i = 0; i < 1000; ++i) {
    accepts += model.Accepts(0, 4.0, &rng) ? 1 : 0;  // pr = 2/3
  }
  EXPECT_GT(accepts, 550);
  EXPECT_LT(accepts, 780);
}

TEST(AcceptanceModeTest, ReservationModeIsDeterministicThreshold) {
  const Instance ins = ThreeWorkers();
  const AcceptanceModel model(ins, AcceptanceMode::kReservation, 9);
  const auto rho = DrawWorkerReservations(ins, 9);
  Rng rng(1);
  for (int i = 0; i < 50; ++i) {
    EXPECT_TRUE(model.Accepts(0, rho[0], &rng));
    EXPECT_FALSE(model.Accepts(0, rho[0] - 0.01, &rng));
    EXPECT_TRUE(model.Accepts(0, 100.0, &rng));
  }
}

TEST(AcceptanceModeTest, ReservationNeverAcceptsForEmptyHistory) {
  const Instance ins = ThreeWorkers();
  const AcceptanceModel model(ins, AcceptanceMode::kReservation, 9);
  Rng rng(1);
  EXPECT_FALSE(model.Accepts(2, 1e12, &rng));
}

TEST(AcceptanceModeTest, EstimatorDrawIsBernoulliInBothModes) {
  // DrawAcceptance (Algorithm 2's sampling primitive) stays stochastic
  // even in reservation mode.
  const Instance ins = ThreeWorkers();
  const AcceptanceModel model(ins, AcceptanceMode::kReservation, 9);
  Rng rng(2);
  int accepts = 0;
  for (int i = 0; i < 3000; ++i) {
    accepts += model.DrawAcceptance(0, 4.0, &rng) ? 1 : 0;
  }
  EXPECT_NEAR(static_cast<double>(accepts) / 3000.0, 2.0 / 3.0, 0.04);
}

TEST(AcceptanceModeTest, ModeIsReported) {
  const Instance ins = ThreeWorkers();
  EXPECT_EQ(AcceptanceModel(ins).mode(), AcceptanceMode::kBernoulli);
  EXPECT_EQ(AcceptanceModel(ins, AcceptanceMode::kReservation).mode(),
            AcceptanceMode::kReservation);
}

}  // namespace
}  // namespace comx
