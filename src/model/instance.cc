#include "model/instance.h"

#include <algorithm>
#include <cmath>

#include "util/string_util.h"

namespace comx {

WorkerId Instance::AddWorker(Worker worker) {
  worker.id = static_cast<WorkerId>(workers_.size());
  workers_.push_back(std::move(worker));
  return workers_.back().id;
}

RequestId Instance::AddRequest(Request request) {
  request.id = static_cast<RequestId>(requests_.size());
  requests_.push_back(std::move(request));
  return requests_.back().id;
}

void Instance::BuildEvents() {
  events_.clear();
  events_.reserve(workers_.size() + requests_.size());
  int64_t seq = 0;
  for (const Worker& w : workers_) {
    events_.push_back(Event{w.time, EventKind::kWorkerArrival, w.id, seq++});
  }
  for (const Request& r : requests_) {
    events_.push_back(Event{r.time, EventKind::kRequestArrival, r.id, seq++});
  }
  std::stable_sort(events_.begin(), events_.end());
  // Re-number sequences to reflect the final stream order so downstream
  // consumers can use `sequence` as a dense position.
  for (size_t i = 0; i < events_.size(); ++i) {
    events_[i].sequence = static_cast<int64_t>(i);
  }
}

void Instance::SetEvents(std::vector<Event> events) {
  events_ = std::move(events);
}

Status Instance::Validate() const {
  for (size_t i = 0; i < workers_.size(); ++i) {
    if (workers_[i].id != static_cast<WorkerId>(i)) {
      return Status::Internal(StrFormat("worker %zu has id %lld", i,
                                        static_cast<long long>(workers_[i].id)));
    }
    COMX_RETURN_IF_ERROR(workers_[i].Validate());
  }
  for (size_t i = 0; i < requests_.size(); ++i) {
    if (requests_[i].id != static_cast<RequestId>(i)) {
      return Status::Internal(
          StrFormat("request %zu has id %lld", i,
                    static_cast<long long>(requests_[i].id)));
    }
    COMX_RETURN_IF_ERROR(requests_[i].Validate());
  }
  if (events_.size() != workers_.size() + requests_.size()) {
    return Status::FailedPrecondition(
        StrFormat("event stream covers %zu arrivals, expected %zu",
                  events_.size(), workers_.size() + requests_.size()));
  }
  std::vector<bool> seen_worker(workers_.size(), false);
  std::vector<bool> seen_request(requests_.size(), false);
  for (size_t i = 0; i < events_.size(); ++i) {
    const Event& e = events_[i];
    if (i > 0 && events_[i].time < events_[i - 1].time) {
      return Status::FailedPrecondition("events not sorted by time");
    }
    if (e.kind == EventKind::kWorkerArrival) {
      if (e.entity_id < 0 ||
          e.entity_id >= static_cast<int64_t>(workers_.size())) {
        return Status::OutOfRange("event references unknown worker");
      }
      if (seen_worker[e.entity_id]) {
        return Status::FailedPrecondition("worker appears twice in events");
      }
      if (workers_[e.entity_id].time != e.time) {
        return Status::FailedPrecondition(
            "event time disagrees with worker arrival time");
      }
      seen_worker[e.entity_id] = true;
    } else {
      if (e.entity_id < 0 ||
          e.entity_id >= static_cast<int64_t>(requests_.size())) {
        return Status::OutOfRange("event references unknown request");
      }
      if (seen_request[e.entity_id]) {
        return Status::FailedPrecondition("request appears twice in events");
      }
      if (requests_[e.entity_id].time != e.time) {
        return Status::FailedPrecondition(
            "event time disagrees with request arrival time");
      }
      seen_request[e.entity_id] = true;
    }
  }
  return Status::OK();
}

int32_t Instance::PlatformCount() const {
  int32_t max_id = -1;
  for (const Worker& w : workers_) max_id = std::max(max_id, w.platform);
  for (const Request& r : requests_) max_id = std::max(max_id, r.platform);
  return max_id + 1;
}

double Instance::MaxRequestValue() const {
  double max_v = 0.0;
  for (const Request& r : requests_) max_v = std::max(max_v, r.value);
  return max_v;
}

int64_t Instance::RequestCountOf(PlatformId platform) const {
  int64_t n = 0;
  for (const Request& r : requests_) n += (r.platform == platform) ? 1 : 0;
  return n;
}

int64_t Instance::WorkerCountOf(PlatformId platform) const {
  int64_t n = 0;
  for (const Worker& w : workers_) n += (w.platform == platform) ? 1 : 0;
  return n;
}

std::string Instance::Summary() const {
  std::string out = StrFormat("Instance{|W|=%zu, |R|=%zu, platforms=%d",
                              workers_.size(), requests_.size(),
                              PlatformCount());
  for (PlatformId p = 0; p < PlatformCount(); ++p) {
    out += StrFormat("; p%d: W=%lld R=%lld", p,
                     static_cast<long long>(WorkerCountOf(p)),
                     static_cast<long long>(RequestCountOf(p)));
  }
  out += "}";
  return out;
}

}  // namespace comx
