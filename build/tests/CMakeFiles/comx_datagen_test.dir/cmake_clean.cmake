file(REMOVE_RECURSE
  "CMakeFiles/comx_datagen_test.dir/datagen/arrival_process_test.cc.o"
  "CMakeFiles/comx_datagen_test.dir/datagen/arrival_process_test.cc.o.d"
  "CMakeFiles/comx_datagen_test.dir/datagen/city_model_test.cc.o"
  "CMakeFiles/comx_datagen_test.dir/datagen/city_model_test.cc.o.d"
  "CMakeFiles/comx_datagen_test.dir/datagen/dataset_test.cc.o"
  "CMakeFiles/comx_datagen_test.dir/datagen/dataset_test.cc.o.d"
  "CMakeFiles/comx_datagen_test.dir/datagen/density_test.cc.o"
  "CMakeFiles/comx_datagen_test.dir/datagen/density_test.cc.o.d"
  "CMakeFiles/comx_datagen_test.dir/datagen/real_like_test.cc.o"
  "CMakeFiles/comx_datagen_test.dir/datagen/real_like_test.cc.o.d"
  "CMakeFiles/comx_datagen_test.dir/datagen/synthetic_test.cc.o"
  "CMakeFiles/comx_datagen_test.dir/datagen/synthetic_test.cc.o.d"
  "CMakeFiles/comx_datagen_test.dir/datagen/value_model_test.cc.o"
  "CMakeFiles/comx_datagen_test.dir/datagen/value_model_test.cc.o.d"
  "comx_datagen_test"
  "comx_datagen_test.pdb"
  "comx_datagen_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/comx_datagen_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
