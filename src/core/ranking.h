// RANKING (Karp, Vazirani, Vazirani STOC'90), the classic online bipartite
// matching algorithm the paper surveys in Section VI: every worker draws a
// random rank once; each request is served by its feasible inner worker of
// smallest rank. Included as a cardinality-oriented baseline — it ignores
// request values and distances, which is exactly the gap the revenue-aware
// COM algorithms close.

#ifndef COMX_CORE_RANKING_H_
#define COMX_CORE_RANKING_H_

#include <vector>

#include "core/online_matcher.h"
#include "util/rng.h"

namespace comx {

/// Single-platform RANKING matcher.
class Ranking : public OnlineMatcher {
 public:
  void Reset(const Instance& instance, PlatformId platform,
             uint64_t seed) override;
  Decision OnRequest(const Request& r, const PlatformView& view) override;
  std::string name() const override { return "RANKING"; }
  Status SaveState(ByteWriter* out) const override;
  Status RestoreState(ByteReader* in) override;

  /// The rank drawn for worker `w` (for tests).
  double RankOf(WorkerId w) const { return ranks_[static_cast<size_t>(w)]; }

 private:
  std::vector<double> ranks_;
};

}  // namespace comx

#endif  // COMX_CORE_RANKING_H_
