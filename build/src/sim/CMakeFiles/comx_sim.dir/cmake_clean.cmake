file(REMOVE_RECURSE
  "CMakeFiles/comx_sim.dir/batch_simulator.cc.o"
  "CMakeFiles/comx_sim.dir/batch_simulator.cc.o.d"
  "CMakeFiles/comx_sim.dir/competitive_ratio.cc.o"
  "CMakeFiles/comx_sim.dir/competitive_ratio.cc.o.d"
  "CMakeFiles/comx_sim.dir/metrics.cc.o"
  "CMakeFiles/comx_sim.dir/metrics.cc.o.d"
  "CMakeFiles/comx_sim.dir/multi_day.cc.o"
  "CMakeFiles/comx_sim.dir/multi_day.cc.o.d"
  "CMakeFiles/comx_sim.dir/offline_schedule.cc.o"
  "CMakeFiles/comx_sim.dir/offline_schedule.cc.o.d"
  "CMakeFiles/comx_sim.dir/platform_view.cc.o"
  "CMakeFiles/comx_sim.dir/platform_view.cc.o.d"
  "CMakeFiles/comx_sim.dir/result_io.cc.o"
  "CMakeFiles/comx_sim.dir/result_io.cc.o.d"
  "CMakeFiles/comx_sim.dir/simulator.cc.o"
  "CMakeFiles/comx_sim.dir/simulator.cc.o.d"
  "CMakeFiles/comx_sim.dir/worker_pool.cc.o"
  "CMakeFiles/comx_sim.dir/worker_pool.cc.o.d"
  "libcomx_sim.a"
  "libcomx_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/comx_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
