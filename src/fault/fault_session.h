// Run-scoped resilience state: one FaultSession lives for the duration of
// one simulation and owns the seeded FaultInjector, a circuit breaker per
// (observer platform, partner platform) pair, the retry/backoff policy,
// and all fault accounting. The simulator consults it at two points:
//
//   * PartnerVisible() — before (inside FaultyPlatformView) an outer-worker
//     query touches a partner's waiting list. Runs the full retry loop
//     against injected attempt outcomes and feeds the breaker; a false
//     return means the partner's workers are invisible for this request,
//     which is exactly inner-only degradation for that partner.
//   * TryReserve() — the reserve step of the two-phase outer commit. A
//     conflict models a stale waiting-list view (the worker was assigned
//     elsewhere between query and commit); it is a valid partner response
//     and does NOT feed the breaker.
//
// Backoff time is virtual: the simulator runs on event time, so backoff is
// accounted (stats + histograms), never slept. All randomness comes from
// the injector's dedicated Rng; matcher streams are untouched.

#ifndef COMX_FAULT_FAULT_SESSION_H_
#define COMX_FAULT_FAULT_SESSION_H_

#include <cstdint>
#include <map>
#include <utility>
#include <vector>

#include "fault/circuit_breaker.h"
#include "fault/fault_injector.h"
#include "fault/fault_plan.h"
#include "model/ids.h"
#include "util/binio.h"

namespace comx {
namespace fault {

/// Whole-run fault accounting. Plain integers, always collected (cheap and
/// deterministic) and surfaced on SimResult so tests can assert exact
/// counts; the obs registry gets the same numbers via PublishMetrics().
struct FaultSessionStats {
  int64_t attempts = 0;              // injected RPC attempts drawn
  int64_t attempt_timeouts = 0;      // failed: latency over budget
  int64_t attempt_unavailable = 0;   // failed: availability draw
  int64_t attempt_outages = 0;       // failed: scheduled outage window
  int64_t retries = 0;               // attempts beyond the first
  int64_t partner_unreachable = 0;   // logical calls failed after retries
  int64_t breaker_open_skips = 0;    // calls rejected by an open breaker
  int64_t breaker_transitions = 0;   // state changes across all breakers
  int64_t reserve_conflicts = 0;     // stale-view conflicts on reserve
  int64_t degraded_requests = 0;     // requests served/decided inner-only
  double backoff_ms_total = 0.0;     // virtual backoff accounted
  double injected_latency_ms_total = 0.0;

  bool operator==(const FaultSessionStats&) const = default;

  /// Adds another run's counters into this one (multi-seed aggregation).
  void Merge(const FaultSessionStats& other);
};

/// Fault footprint of the request currently being decided; the simulator
/// drains it into the decision trace after each request.
struct RequestFaultInfo {
  int32_t retries = 0;
  int32_t failed_partners = 0;  // partners invisible (unreachable or open)
  int32_t reserve_conflicts = 0;
  bool degraded = false;

  bool Any() const {
    return retries > 0 || failed_partners > 0 || reserve_conflicts > 0 ||
           degraded;
  }
};

class FaultSession {
 public:
  /// The plan is borrowed and must outlive the session — temporaries are
  /// rejected at compile time.
  FaultSession(const FaultPlan& plan, uint64_t run_seed);
  FaultSession(FaultPlan&&, uint64_t) = delete;

  /// Single-branch fast path: true when `partner` can ever fail.
  bool PartnerFaulty(PlatformId partner) const {
    return injector_.PartnerFaulty(partner);
  }

  /// Whether `observer`'s query may see `partner`'s waiting list at
  /// simulated time `now`. Runs breaker + retry/backoff.
  bool PartnerVisible(PlatformId observer, PlatformId partner, Timestamp now);

  /// Reserve step of the two-phase outer commit: false when the partner
  /// reports the worker already taken (stale view).
  bool TryReserve(PlatformId observer, PlatformId partner, Timestamp now);

  /// Marks the in-flight request as degraded (decided without some or all
  /// outer candidates, or after exhausting reserve fallbacks).
  void NoteDegraded();

  /// Returns and clears the in-flight request's fault footprint.
  RequestFaultInfo TakeRequestInfo();

  /// Breaker for an (observer, partner) pair, created closed on first use.
  CircuitBreaker& BreakerFor(PlatformId observer, PlatformId partner);

  /// Whole-run stats; breaker_transitions is folded in here.
  FaultSessionStats stats() const;

  /// Flushes stats into the global metrics registry (comx_fault_* counters
  /// plus per-pair breaker-state gauges). No-op unless collection is on.
  void PublishMetrics() const;

  const FaultPlan& plan() const { return injector_.plan(); }

  /// Every live breaker keyed by (observer, partner) — read-only iteration
  /// for checkpoints and the per-step breaker-transition WAL records.
  const std::map<std::pair<PlatformId, PlatformId>, CircuitBreaker>&
  breakers() const {
    return breakers_;
  }

  /// Serializes the session's mutable state: injector RNG position, every
  /// breaker's state machine, the whole-run stats, and the in-flight
  /// request footprint. RestoreState requires a session built from the
  /// same (plan, run_seed).
  void SaveState(ByteWriter* out) const;
  Status RestoreState(ByteReader* in);

 private:
  FaultInjector injector_;
  std::map<std::pair<PlatformId, PlatformId>, CircuitBreaker> breakers_;
  FaultSessionStats stats_;
  RequestFaultInfo request_info_;
};

}  // namespace fault
}  // namespace comx

#endif  // COMX_FAULT_FAULT_SESSION_H_
