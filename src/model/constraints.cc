#include "model/constraints.h"

#include "geo/distance.h"

namespace comx {

Feasibility CheckFeasibility(const Worker& w, const Request& r) {
  // Time constraint: a worker waits in the list and can only serve requests
  // arriving at the platform after them (Definition 2.6).
  if (w.time > r.time) return Feasibility::kViolatesTime;
  if (!WithinRadius(w.location, r.location, w.radius)) {
    return Feasibility::kViolatesRange;
  }
  return Feasibility::kFeasible;
}

bool CanServe(const Worker& w, const Request& r) {
  return CheckFeasibility(w, r) == Feasibility::kFeasible;
}

}  // namespace comx
