// Strongly-hinted id aliases used across the library.

#ifndef COMX_MODEL_IDS_H_
#define COMX_MODEL_IDS_H_

#include <cstdint>

namespace comx {

/// Identifies a request within an Instance. Dense: 0..|R|-1.
using RequestId = int64_t;

/// Identifies a worker within an Instance. Dense: 0..|W|-1.
using WorkerId = int64_t;

/// Identifies a spatial-crowdsourcing platform (0 = first platform).
using PlatformId = int32_t;

/// Sentinel for "no id".
inline constexpr int64_t kInvalidId = -1;

/// Simulation timestamps are seconds since the instance epoch.
using Timestamp = double;

}  // namespace comx

#endif  // COMX_MODEL_IDS_H_
