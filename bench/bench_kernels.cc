// Microbenchmark of the kernel layer (src/kernels/) backing the committed
// BENCH_kernels.json baseline. For each batch size (1k / 10k / 100k points)
// it times the batched kernels on the scalar backend and on the dispatched
// (cpuid-selected) backend, next to the historical per-call paths they
// replaced, and emits one flat JSON record per (op, path, size).
//
// Deterministic fields — "checksum" (fixed-order sum over seeded inputs),
// "n", "survivors" — are identical on every host and backend (the kernel
// layer's bit-identity contract), so tools/bench_check gates them exactly
// like the sweep baseline. Timing fields (wall_, runs_per_sec, speedup_)
// are informational.
//
//   bench_kernels [--smoke] [--out PATH]
//
// --smoke shrinks the timing repetitions (the checksums are unaffected) so
// the tier-1 gate stays fast.

#include <algorithm>
#include <cstdio>
#include <string>
#include <utility>
#include <vector>

#include "common.h"
#include "exp/bench_record.h"
#include "geo/distance.h"
#include "kernels/dispatch.h"
#include "kernels/ecdf_batch.h"
#include "kernels/geo_kernels.h"
#include "obs/span.h"
#include "pricing/history.h"
#include "util/memory_meter.h"
#include "util/rng.h"
#include "util/timer.h"

namespace {

using namespace comx;

const char* ArgString(int argc, char** argv, const std::string& flag,
                      const char* fallback) {
  for (int i = 1; i + 1 < argc; ++i) {
    if (flag == argv[i]) return argv[i + 1];
  }
  return fallback;
}

bool HasFlag(int argc, char** argv, const std::string& flag) {
  for (int i = 1; i < argc; ++i) {
    if (flag == argv[i]) return true;
  }
  return false;
}

// Defeats dead-code elimination of the timed kernel outputs.
volatile double g_sink = 0.0;

// Seconds per pass over the batch: runs `f` in groups sized so one
// measurement covers ~`target_elems` elements, repeated `reps` times, and
// keeps the fastest group (standard best-of-N to shed scheduler noise).
template <typename F>
double BestSecondsPerPass(F&& f, size_t n, size_t target_elems, int reps) {
  const int iters =
      static_cast<int>(std::max<size_t>(1, target_elems / std::max<size_t>(n, 1)));
  double best = 0.0;
  for (int r = 0; r < reps; ++r) {
    Stopwatch clock;
    for (int i = 0; i < iters; ++i) f();
    const double secs =
        static_cast<double>(clock.ElapsedNanos()) / 1e9 / iters;
    if (r == 0 || secs < best) best = secs;
  }
  return best;
}

// Deterministic per-size inputs, all drawn from one fixed-seed stream.
struct Inputs {
  // Geodetic batch (Chengdu-like bounding box) + query point.
  kernels::GeoTrigBatch trig;
  std::vector<double> lat, lon;
  double q_lat = 30.66, q_lon = 104.06;
  // Planar points + per-point service radius² around a probe center.
  std::vector<double> xs, ys, radius2;
  double cx = 0.3, cy = -0.2, range2 = 36.0;
  // ECDF candidate ids + offered payment over a shared worker table.
  std::vector<int64_t> ids;
  double payment = 27.5;
};

Inputs MakeInputs(size_t n, size_t worker_count) {
  Inputs in;
  Rng rng(2020 + static_cast<uint64_t>(n));
  in.trig.Reserve(n);
  in.lat.reserve(n);
  in.lon.reserve(n);
  in.xs.reserve(n);
  in.ys.reserve(n);
  in.radius2.reserve(n);
  in.ids.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    const double lat = rng.Uniform(30.0, 31.5);
    const double lon = rng.Uniform(104.0, 105.5);
    in.lat.push_back(lat);
    in.lon.push_back(lon);
    in.trig.Add(lat, lon);
    in.xs.push_back(rng.Uniform(-15.0, 15.0));
    in.ys.push_back(rng.Uniform(-15.0, 15.0));
    const double radius = rng.Uniform(1.0, 8.0);
    in.radius2.push_back(radius * radius);
    in.ids.push_back(static_cast<int64_t>(i % worker_count));
  }
  return in;
}

struct Row {
  exp::BenchRecord record;
  double secs_per_pass = 0.0;
};

// One timed row: checksum from a single untimed pass (deterministic gate
// value), then the timing loop.
template <typename F>
Row TimeRow(const std::string& name, size_t n, double checksum, F&& pass,
            size_t target_elems, int reps) {
  Row row;
  pass();  // warm-up (and page in the output buffers)
  row.secs_per_pass = BestSecondsPerPass(pass, n, target_elems, reps);
  row.record.name = name;
  row.record.numbers["n"] = static_cast<double>(n);
  row.record.numbers["checksum"] = checksum;
  row.record.numbers["wall_seconds_per_pass"] = row.secs_per_pass;
  row.record.numbers["runs_per_sec"] =
      row.secs_per_pass > 0.0
          ? static_cast<double>(n) / row.secs_per_pass
          : 0.0;
  return row;
}

double Sum(const std::vector<double>& v) {
  double s = 0.0;
  for (double x : v) s += x;
  return s;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace comx;

  const bool smoke = HasFlag(argc, argv, "--smoke");
  const std::string out = ArgString(argc, argv, "--out", "BENCH_kernels.json");
  const size_t target_elems = smoke ? 20'000 : 4'000'000;
  const int reps = smoke ? 1 : 3;
  constexpr size_t kWorkers = 512;

  // Shared worker value-history table: the per-call path keeps one
  // ValueHistory per worker (pointer-chased vectors), the batch path the
  // flat EcdfIndex mirror — both built from identical draws.
  Rng hist_rng(7);
  std::vector<ValueHistory> histories;
  kernels::EcdfIndex ecdf;
  histories.reserve(kWorkers);
  for (size_t w = 0; w < kWorkers; ++w) {
    const int64_t len = hist_rng.UniformInt(0, 64);
    std::vector<double> values;
    values.reserve(static_cast<size_t>(len));
    for (int64_t i = 0; i < len; ++i) {
      values.push_back(hist_rng.Uniform(5.0, 60.0));
    }
    histories.emplace_back(std::move(values));
    ecdf.AddWorker(histories.back().values().data(),
                   histories.back().values().size());
  }

  Stopwatch wall;
  std::vector<exp::BenchRecord> records;
  const std::vector<size_t> sizes = {1000, 10000, 100000};
  // Captured before any ForceBackendForTesting call so the "dispatch" rows
  // always use the backend cpuid would pick, not whatever a previous row
  // pinned.
  const kernels::Backend auto_backend = kernels::ActiveBackend();
  const std::vector<std::pair<const char*, kernels::Backend>> backends = {
      {"scalar", kernels::Backend::kScalar}, {"dispatch", auto_backend}};
  std::printf("bench_kernels: dispatched backend = %s%s\n",
              kernels::BackendName(auto_backend), smoke ? " (smoke)" : "");

  for (size_t n : sizes) {
    const Inputs in = MakeInputs(n, kWorkers);
    std::vector<double> buf(n);
    std::vector<int32_t> idx(n);
    std::vector<double> d2(n);

    // -- haversine: per-call reference vs batched kernel per backend --
    const auto haversine_percall = [&] {
      for (size_t i = 0; i < n; ++i) {
        buf[i] = HaversineKm(in.q_lat, in.q_lon, in.lat[i], in.lon[i]);
      }
      g_sink += buf[0] + buf[n - 1];
    };
    haversine_percall();
    const double haversine_ref_checksum = Sum(buf);
    Row percall =
        TimeRow("kernels.haversine_percall.n" + std::to_string(n), n,
                haversine_ref_checksum, haversine_percall, target_elems, reps);
    const double percall_secs = percall.secs_per_pass;
    records.push_back(std::move(percall.record));

    const auto haversine_batch = [&] {
      kernels::BatchHaversineKm(in.trig, in.q_lat, in.q_lon, buf.data());
      g_sink += buf[0] + buf[n - 1];
    };
    for (const auto& [path, backend] : backends) {
      kernels::ForceBackendForTesting(backend);
      haversine_batch();
      const double checksum = Sum(buf);
      Row row = TimeRow("kernels.haversine_batch." + std::string(path) +
                            ".n" + std::to_string(n),
                        n, checksum, haversine_batch, target_elems, reps);
      row.record.numbers["speedup_vs_percall"] =
          row.secs_per_pass > 0.0 ? percall_secs / row.secs_per_pass : 0.0;
      records.push_back(std::move(row.record));
    }

    // -- squared distance + fused filter per backend --
    for (const auto& [path, backend] : backends) {
      kernels::ForceBackendForTesting(backend);

      const auto sqdist = [&] {
        kernels::BatchSquaredDistance(in.xs.data(), in.ys.data(), n, in.cx,
                                      in.cy, buf.data());
        g_sink += buf[0] + buf[n - 1];
      };
      sqdist();
      records.push_back(TimeRow("kernels.sqdist_batch." + std::string(path) +
                                    ".n" + std::to_string(n),
                                n, Sum(buf), sqdist, target_elems, reps)
                            .record);

      size_t survivors = 0;
      const auto filter = [&] {
        survivors = kernels::FilterInRange(in.xs.data(), in.ys.data(),
                                           in.radius2.data(), n, in.cx, in.cy,
                                           in.range2, idx.data(), d2.data());
        g_sink += survivors > 0 ? d2[0] : 0.0;
      };
      filter();
      double checksum = static_cast<double>(survivors);
      for (size_t i = 0; i < survivors; ++i) {
        checksum += static_cast<double>(idx[i]) + d2[i];
      }
      Row row = TimeRow("kernels.filter_range." + std::string(path) + ".n" +
                            std::to_string(n),
                        n, checksum, filter, target_elems, reps);
      row.record.numbers["survivors"] = static_cast<double>(survivors);
      records.push_back(std::move(row.record));
    }
    kernels::ResetDispatchForTesting();

    // -- ECDF: per-call ValueHistory::Ecdf vs flat batched index --
    const auto ecdf_percall = [&] {
      for (size_t i = 0; i < n; ++i) {
        buf[i] =
            histories[static_cast<size_t>(in.ids[i])].Ecdf(in.payment);
      }
      g_sink += buf[0] + buf[n - 1];
    };
    ecdf_percall();
    const double ecdf_checksum = Sum(buf);
    Row ecdf_ref = TimeRow("kernels.ecdf_percall.n" + std::to_string(n), n,
                           ecdf_checksum, ecdf_percall, target_elems, reps);
    const double ecdf_percall_secs = ecdf_ref.secs_per_pass;
    records.push_back(std::move(ecdf_ref.record));

    const auto ecdf_batch = [&] {
      ecdf.BatchEvaluate(in.ids.data(), n, in.payment, buf.data());
      g_sink += buf[0] + buf[n - 1];
    };
    ecdf_batch();
    Row ecdf_row = TimeRow("kernels.ecdf_batch.n" + std::to_string(n), n,
                           Sum(buf), ecdf_batch, target_elems, reps);
    ecdf_row.record.numbers["speedup_vs_percall"] =
        ecdf_row.secs_per_pass > 0.0
            ? ecdf_percall_secs / ecdf_row.secs_per_pass
            : 0.0;
    records.push_back(std::move(ecdf_row.record));

    std::printf("n=%-7zu done\n", n);
  }

  // -- observability: ScopedSpan record cost (budget: < 50 ns/record on the
  // enabled path; the disabled path is two relaxed loads and a branch). The
  // deterministic gate field is the histogram count delta of one untimed
  // pass (== n); wall_ns_per_record is informational like all timing. --
  {
    const size_t n = 100'000;
    const bool was_enabled = obs::CollectionEnabled();
    obs::SetCollectionEnabled(true);
    static const obs::SpanSite site("bench_span");
    const auto span_pass = [&] {
      for (size_t i = 0; i < n; ++i) {
        obs::ScopedSpan span(site);
      }
    };
    const int64_t before = site.histogram()->Count();
    span_pass();
    const double recorded =
        static_cast<double>(site.histogram()->Count() - before);
    Row on = TimeRow("obs.span_record.enabled.n" + std::to_string(n), n,
                     recorded, span_pass, target_elems, reps);
    on.record.numbers["wall_ns_per_record"] =
        on.secs_per_pass / static_cast<double>(n) * 1e9;
    std::printf("  %-40s %8.1f ns/record (budget 50)\n",
                on.record.name.c_str(),
                on.record.numbers["wall_ns_per_record"]);
    records.push_back(std::move(on.record));

    obs::SetSpansDisabled(true);
    const int64_t off_before = site.histogram()->Count();
    span_pass();
    const double off_recorded =
        static_cast<double>(site.histogram()->Count() - off_before);
    Row off = TimeRow("obs.span_record.disabled.n" + std::to_string(n), n,
                      off_recorded, span_pass, target_elems, reps);
    off.record.numbers["wall_ns_per_record"] =
        off.secs_per_pass / static_cast<double>(n) * 1e9;
    records.push_back(std::move(off.record));
    obs::SetSpansDisabled(false);
    obs::SetCollectionEnabled(was_enabled);
  }

  exp::BenchRecord summary;
  summary.name = "summary";
  summary.numbers["rows"] = static_cast<double>(records.size());
  summary.numbers["wall_seconds"] = wall.ElapsedNanos() / 1e9;
  summary.numbers["rss_mb"] = static_cast<double>(CurrentRssBytes()) / 1e6;
  records.push_back(std::move(summary));

  if (Status st = exp::WriteBenchRecords(out, records); !st.ok()) {
    std::fprintf(stderr, "write %s: %s\n", out.c_str(),
                 st.ToString().c_str());
    return 1;
  }
  for (const exp::BenchRecord& r : records) {
    const auto speedup = r.numbers.find("speedup_vs_percall");
    if (speedup != r.numbers.end()) {
      std::printf("  %-40s %8.2fx vs per-call\n", r.name.c_str(),
                  speedup->second);
    }
  }
  std::printf("wrote %s: %zu records in %.2fs\n", out.c_str(), records.size(),
              wall.ElapsedNanos() / 1e9);
  return 0;
}
