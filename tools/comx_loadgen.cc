// Load generator for comx_serve: replays the instance's day-curve arrival
// schedule against a live service over the TCP line protocol and reports
// client-observed decision latency.
//
//   comx_loadgen --spawn-serve BIN [instance/serve flags] [--qps Q]
//   comx_loadgen --port N [--host 127.0.0.1] ...
//
// Modes:
//   --mode open    (default) paced submissions: the instance's event
//                  timestamps are compressed so the MEAN rate is --qps,
//                  preserving the day curve's shape (rush hours stay
//                  proportionally bursty); replies are consumed as they
//                  arrive, submissions never wait for them.
//   --mode closed  windowed: at most --outstanding submissions in flight;
//                  each reply releases the next. --qps is ignored.
//
// Every event is submitted in global order (the service's per-shard
// ordering contract), then DRAIN cross-checks the client-side revenue sum
// against the service's Eq. 1 total, QUIT asserts a clean server exit, and
// --spawn-serve additionally asserts exit status 0 (the clean-shutdown
// check check.sh stage 8 runs under ASan).
//
// --smoke: small built-in instance, 4 shards, capped duration — exits
// non-zero on any protocol error, latency anomaly (p50 == 0 with decisions
// present), revenue mismatch, or unclean server exit.
//
// --bench-out PATH writes one comx-bench-sweep-v1 record (deterministic:
// decisions, revenue; informational: latency_*, wall_, decisions_per_sec)
// for the BENCH_serve.json baseline gated by tools/bench_check.

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "exp/bench_record.h"
#include "obs/latency_histogram.h"
#include "util/result.h"
#include "util/string_util.h"
#include "util/timer.h"

namespace comx {
namespace {

const char* FlagValue(int argc, char** argv, const char* flag) {
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::strcmp(argv[i], flag) == 0) return argv[i + 1];
  }
  return nullptr;
}

bool HasFlag(int argc, char** argv, const char* flag) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], flag) == 0) return true;
  }
  return false;
}

int64_t IntFlag(int argc, char** argv, const char* flag, int64_t fallback) {
  const char* v = FlagValue(argc, argv, flag);
  return v != nullptr ? std::atoll(v) : fallback;
}

double DoubleFlag(int argc, char** argv, const char* flag, double fallback) {
  const char* v = FlagValue(argc, argv, flag);
  return v != nullptr ? std::atof(v) : fallback;
}

int Fail(const std::string& message) {
  std::fprintf(stderr, "comx_loadgen: %s\n", message.c_str());
  return 1;
}

struct SpawnedServe {
  pid_t pid = -1;
  int port = -1;
};

/// fork/execs the serve binary with --port 0, parses the actual port from
/// its "comx_serve listening on port N ..." stdout line (stdout is then
/// forwarded to our stderr so server logs stay visible).
Result<SpawnedServe> SpawnServe(const std::string& bin,
                                const std::vector<std::string>& extra) {
  int pipe_fds[2];
  if (::pipe(pipe_fds) != 0) return Status::IoError("pipe() failed");
  const pid_t pid = ::fork();
  if (pid < 0) return Status::IoError("fork() failed");
  if (pid == 0) {
    ::close(pipe_fds[0]);
    ::dup2(pipe_fds[1], STDOUT_FILENO);
    ::close(pipe_fds[1]);
    std::vector<std::string> args = {bin, "--port", "0"};
    args.insert(args.end(), extra.begin(), extra.end());
    std::vector<char*> argv;
    for (std::string& a : args) argv.push_back(a.data());
    argv.push_back(nullptr);
    ::execv(bin.c_str(), argv.data());
    std::fprintf(stderr, "comx_loadgen: execv %s: %s\n", bin.c_str(),
                 std::strerror(errno));
    ::_exit(127);
  }
  ::close(pipe_fds[1]);
  std::string line;
  char ch;
  while (line.find('\n') == std::string::npos) {
    const ssize_t n = ::read(pipe_fds[0], &ch, 1);
    if (n <= 0) {
      ::close(pipe_fds[0]);
      int wstatus = 0;
      ::waitpid(pid, &wstatus, 0);
      return Status::Internal("serve process exited before announcing port");
    }
    line.push_back(ch);
  }
  ::close(pipe_fds[0]);
  const char* marker = "listening on port ";
  const size_t at = line.find(marker);
  if (at == std::string::npos) {
    return Status::Internal(StrFormat("unexpected serve banner: %s",
                                      line.c_str()));
  }
  SpawnedServe spawned;
  spawned.pid = pid;
  spawned.port = std::atoi(line.c_str() + at + std::strlen(marker));
  return spawned;
}

Result<int> Connect(const std::string& host, int port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return Status::IoError("socket() failed");
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(port));
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    ::close(fd);
    return Status::InvalidArgument(StrFormat("bad host %s", host.c_str()));
  }
  // The spawned server prints its banner before listen() returns to us, so
  // a short retry loop covers the accept-loop startup race.
  for (int attempt = 0; attempt < 50; ++attempt) {
    if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                  sizeof(addr)) == 0) {
      return fd;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  ::close(fd);
  return Status::IoError(StrFormat("cannot connect to %s:%d", host.c_str(),
                                   port));
}

/// Buffered line reader over a socket.
class LineReader {
 public:
  explicit LineReader(int fd) : fd_(fd) {}

  /// Blocks until a full line is available; false on EOF/error.
  bool ReadLine(std::string* line) {
    for (;;) {
      const size_t nl = buf_.find('\n');
      if (nl != std::string::npos) {
        *line = buf_.substr(0, nl);
        buf_.erase(0, nl + 1);
        return true;
      }
      char chunk[1 << 16];
      const ssize_t n = ::read(fd_, chunk, sizeof(chunk));
      if (n <= 0) return false;
      buf_.append(chunk, static_cast<size_t>(n));
    }
  }

  /// Non-blocking variant: drains whatever is ready, false when no full
  /// line is buffered.
  bool TryReadLine(std::string* line) {
    const size_t nl = buf_.find('\n');
    if (nl != std::string::npos) {
      *line = buf_.substr(0, nl);
      buf_.erase(0, nl + 1);
      return true;
    }
    pollfd p{fd_, POLLIN, 0};
    while (::poll(&p, 1, 0) > 0 && (p.revents & POLLIN) != 0) {
      char chunk[1 << 16];
      const ssize_t n = ::read(fd_, chunk, sizeof(chunk));
      if (n <= 0) return false;
      buf_.append(chunk, static_cast<size_t>(n));
      const size_t at = buf_.find('\n');
      if (at != std::string::npos) {
        *line = buf_.substr(0, at);
        buf_.erase(0, at + 1);
        return true;
      }
      p.revents = 0;
    }
    return false;
  }

 private:
  int fd_;
  std::string buf_;
};

bool SendLine(int fd, const std::string& line) {
  std::string buf = line;
  buf.push_back('\n');
  size_t off = 0;
  while (off < buf.size()) {
    const ssize_t n = ::write(fd, buf.data() + off, buf.size() - off);
    if (n <= 0) return false;
    off += static_cast<size_t>(n);
  }
  return true;
}

struct ReplayStats {
  int64_t sent = 0;
  int64_t replies = 0;
  int64_t decisions = 0;
  int64_t errors = 0;
  double revenue_sum = 0.0;
  obs::LatencyHistogram latency;
};

/// Parses one "D <i> <shard> ..." reply; updates latency from send stamps.
void HandleReply(const std::string& line, const std::vector<int64_t>& sent_ns,
                 const Stopwatch& clock, ReplayStats* stats) {
  ++stats->replies;
  if (line.size() < 2 || line[0] != 'D') {
    ++stats->errors;
    std::fprintf(stderr, "comx_loadgen: error reply: %s\n", line.c_str());
    return;
  }
  char kind = 0;
  long long index = -1;
  int shard = -1;
  int outcome = 0;
  double revenue = 0.0;
  // Two layouts: "D i shard A lat" and "D i shard D outcome revenue lat".
  if (std::sscanf(line.c_str(), "D %lld %d %c %d %lf", &index, &shard, &kind,
                  &outcome, &revenue) >= 3 &&
      index >= 0 && index < static_cast<long long>(sent_ns.size())) {
    if (kind == 'D') {
      ++stats->decisions;
      stats->revenue_sum += revenue;
    }
    stats->latency.ObserveNanos(clock.ElapsedNanos() -
                                sent_ns[static_cast<size_t>(index)]);
  } else {
    ++stats->errors;
    std::fprintf(stderr, "comx_loadgen: unparseable reply: %s\n", line.c_str());
  }
}

int Main(int argc, char** argv) {
  const bool smoke = HasFlag(argc, argv, "--smoke");
  const bool closed = [&] {
    const char* mode = FlagValue(argc, argv, "--mode");
    return mode != nullptr && std::strcmp(mode, "closed") == 0;
  }();
  const double qps = DoubleFlag(argc, argv, "--qps", smoke ? 5000.0 : 1000.0);
  const int64_t outstanding = IntFlag(argc, argv, "--outstanding", 64);
  const double cap_seconds = DoubleFlag(argc, argv, "--duration-cap-s",
                                        smoke ? 10.0 : 0.0);

  SpawnedServe spawned;
  int port = static_cast<int>(IntFlag(argc, argv, "--port", -1));
  std::string host = "127.0.0.1";
  if (const char* h = FlagValue(argc, argv, "--host"); h != nullptr) host = h;

  if (const char* bin = FlagValue(argc, argv, "--spawn-serve"); bin != nullptr) {
    std::vector<std::string> extra;
    // Forward the instance/serve shape to the child.
    for (const char* flag :
         {"--platforms", "--requests", "--workers", "--radius", "--imbalance",
          "--gen-seed", "--arrival", "--load", "--algo", "--seed", "--shards",
          "--threads", "--wal-dir", "--perf-out"}) {
      if (const char* v = FlagValue(argc, argv, flag); v != nullptr) {
        extra.push_back(flag);
        extra.push_back(v);
      }
    }
    if (smoke && FlagValue(argc, argv, "--requests") == nullptr) {
      extra.insert(extra.end(), {"--requests", "1000", "--workers", "200",
                                 "--platforms", "2"});
    }
    if (smoke && FlagValue(argc, argv, "--shards") == nullptr) {
      extra.insert(extra.end(), {"--shards", "4"});
    }
    auto s = SpawnServe(bin, extra);
    if (!s.ok()) return Fail(s.status().ToString());
    spawned = *s;
    port = spawned.port;
  }
  if (port <= 0) {
    return Fail("need --port N or --spawn-serve BIN");
  }

  auto fd_result = Connect(host, port);
  if (!fd_result.ok()) return Fail(fd_result.status().ToString());
  const int fd = *fd_result;
  LineReader reader(fd);

  // Handshake: learn the event count.
  if (!SendLine(fd, "HELLO")) return Fail("handshake write failed");
  std::string line;
  if (!reader.ReadLine(&line)) return Fail("handshake read failed");
  long long events = -1;
  if (std::sscanf(line.c_str(), "COMX-SERVE v1 events=%lld", &events) != 1 ||
      events < 0) {
    return Fail(StrFormat("bad handshake: %s", line.c_str()));
  }

  // Open-loop pacing: compress the instance's event-time span so the mean
  // rate is --qps. We do not know individual event times client-side, so
  // the schedule is uniform at qps with the day curve realized server-side
  // by event order; closed-loop ignores pacing entirely.
  const double interval_ns = qps > 0.0 ? 1e9 / qps : 0.0;

  ReplayStats stats;
  std::vector<int64_t> sent_ns(static_cast<size_t>(events), 0);
  Stopwatch clock;
  const int64_t cap_ns =
      cap_seconds > 0.0 ? static_cast<int64_t>(cap_seconds * 1e9) : 0;
  bool capped = false;

  for (long long i = 0; i < events; ++i) {
    if (cap_ns > 0 && clock.ElapsedNanos() > cap_ns) {
      capped = true;
      std::fprintf(stderr,
                   "comx_loadgen: duration cap hit after %lld/%lld events; "
                   "remaining events drain server-side\n",
                   i, events);
      break;
    }
    if (closed) {
      while (stats.sent - stats.replies >= outstanding) {
        if (!reader.ReadLine(&line)) return Fail("connection lost");
        HandleReply(line, sent_ns, clock, &stats);
      }
    } else if (interval_ns > 0.0) {
      const int64_t due = static_cast<int64_t>(static_cast<double>(i) *
                                               interval_ns);
      while (clock.ElapsedNanos() < due) {
        if (reader.TryReadLine(&line)) {
          HandleReply(line, sent_ns, clock, &stats);
        } else {
          std::this_thread::sleep_for(std::chrono::microseconds(50));
        }
      }
    }
    sent_ns[static_cast<size_t>(i)] = clock.ElapsedNanos();
    if (!SendLine(fd, StrFormat("S %lld", i))) return Fail("send failed");
    ++stats.sent;
    while (reader.TryReadLine(&line)) HandleReply(line, sent_ns, clock, &stats);
  }

  // Collect the stragglers.
  while (stats.replies < stats.sent) {
    if (!reader.ReadLine(&line)) return Fail("connection lost during drain");
    HandleReply(line, sent_ns, clock, &stats);
  }
  const double replay_seconds = static_cast<double>(clock.ElapsedNanos()) / 1e9;

  // Graceful drain + Eq. 1 cross-check.
  if (!SendLine(fd, "DRAIN")) return Fail("DRAIN write failed");
  if (!reader.ReadLine(&line)) return Fail("DRAIN read failed");
  double serve_revenue = 0.0;
  long long assignments = -1;
  if (std::sscanf(line.c_str(), "T revenue=%lf assignments=%lld",
                  &serve_revenue, &assignments) != 2) {
    return Fail(StrFormat("bad DRAIN reply: %s", line.c_str()));
  }

  int failures = static_cast<int>(stats.errors);
  // Client-side revenue is a different summation order (reply order) and
  // excludes events past the duration cap, so the cross-check only binds
  // on a full replay.
  if (!capped) {
    const double tol =
        1e-9 * std::max({1.0, std::abs(serve_revenue), stats.revenue_sum});
    if (std::abs(serve_revenue - stats.revenue_sum) > tol) {
      std::fprintf(stderr,
                   "comx_loadgen: revenue mismatch: client sum %.17g vs "
                   "serve total %.17g\n",
                   stats.revenue_sum, serve_revenue);
      ++failures;
    }
  }
  const obs::LatencySnapshot lat = stats.latency.Snapshot();
  if (smoke && stats.decisions > 0 && lat.ValueAtQuantileNanos(0.5) <= 0) {
    std::fprintf(stderr, "comx_loadgen: implausible zero p50 latency\n");
    ++failures;
  }

  // Clean shutdown: QUIT, expect BYE, and a zero exit from a spawned serve.
  if (!SendLine(fd, "QUIT")) return Fail("QUIT write failed");
  if (!reader.ReadLine(&line) || line != "BYE") {
    std::fprintf(stderr, "comx_loadgen: expected BYE, got: %s\n",
                 line.c_str());
    ++failures;
  }
  ::close(fd);
  if (spawned.pid > 0) {
    int wstatus = 0;
    if (::waitpid(spawned.pid, &wstatus, 0) != spawned.pid ||
        !WIFEXITED(wstatus) || WEXITSTATUS(wstatus) != 0) {
      std::fprintf(stderr, "comx_loadgen: serve exited uncleanly (status %d)\n",
                   wstatus);
      ++failures;
    }
  }

  const double decisions_per_sec =
      replay_seconds > 0.0 ? static_cast<double>(stats.decisions) /
                                 replay_seconds
                           : 0.0;
  std::printf(
      "loadgen: events=%lld decisions=%lld revenue=%.17g wall_s=%.3f "
      "decisions_per_sec=%.0f p50_us=%.1f p99_us=%.1f p999_us=%.1f%s\n",
      static_cast<long long>(stats.sent),
      static_cast<long long>(stats.decisions), serve_revenue, replay_seconds,
      decisions_per_sec, lat.QuantileMicros(0.50), lat.QuantileMicros(0.99),
      lat.QuantileMicros(0.999), capped ? " (capped)" : "");

  if (const char* bench = FlagValue(argc, argv, "--bench-out");
      bench != nullptr && !capped && failures == 0) {
    exp::BenchRecord record;
    record.name = StrFormat("serve_smoke.%s",
                            FlagValue(argc, argv, "--algo") != nullptr
                                ? FlagValue(argc, argv, "--algo")
                                : "ramcom");
    record.numbers["decisions"] = static_cast<double>(stats.decisions);
    record.numbers["revenue"] = serve_revenue;
    record.numbers["assignments"] = static_cast<double>(assignments);
    record.numbers["wall_seconds"] = replay_seconds;
    record.numbers["decisions_per_sec"] = decisions_per_sec;
    record.numbers["latency_p50_us"] = lat.QuantileMicros(0.50);
    record.numbers["latency_p99_us"] = lat.QuantileMicros(0.99);
    record.numbers["latency_p999_us"] = lat.QuantileMicros(0.999);
    if (Status st = exp::WriteBenchRecords(bench, {record}); !st.ok()) {
      std::fprintf(stderr, "comx_loadgen: bench-out: %s\n",
                   st.ToString().c_str());
      ++failures;
    }
  }
  return failures == 0 ? 0 : 1;
}

}  // namespace
}  // namespace comx

int main(int argc, char** argv) { return comx::Main(argc, argv); }
