#include "sim/multi_day.h"

#include <gtest/gtest.h>

#include "core/dem_com.h"
#include "core/ram_com.h"
#include "core/tota_greedy.h"

namespace comx {
namespace {

MultiDayConfig SmallConfig() {
  MultiDayConfig config;
  config.days = 4;
  config.day_template.requests_per_platform = {150};
  config.day_template.workers_per_platform = {40};
  config.sim.measure_response_time = false;
  return config;
}

DayMatcherFactory DemFactory() {
  return [] { return std::unique_ptr<OnlineMatcher>(new DemCom()); };
}
DayMatcherFactory RamFactory() {
  return [] { return std::unique_ptr<OnlineMatcher>(new RamCom()); };
}
DayMatcherFactory TotaFactory() {
  return [] { return std::unique_ptr<OnlineMatcher>(new TotaGreedy()); };
}

TEST(MultiDayTest, ValidatesConfig) {
  MultiDayConfig bad = SmallConfig();
  bad.days = 0;
  EXPECT_FALSE(RunMultiDay(bad, DemFactory(), 1).ok());
  bad = SmallConfig();
  bad.max_history_length = 0;
  EXPECT_FALSE(RunMultiDay(bad, DemFactory(), 1).ok());
}

TEST(MultiDayTest, ProducesOneOutcomePerDay) {
  auto result = RunMultiDay(SmallConfig(), DemFactory(), 2);
  ASSERT_TRUE(result.ok()) << result.status();
  ASSERT_EQ(result->days.size(), 4u);
  for (const DayOutcome& day : result->days) {
    EXPECT_GE(day.revenue, 0.0);
    EXPECT_GE(day.completed, day.cooperative);
    EXPECT_GT(day.mean_history_value, 0.0);
  }
}

TEST(MultiDayTest, DeterministicGivenSeed) {
  auto a = RunMultiDay(SmallConfig(), RamFactory(), 5);
  auto b = RunMultiDay(SmallConfig(), RamFactory(), 5);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  for (size_t d = 0; d < a->days.size(); ++d) {
    EXPECT_DOUBLE_EQ(a->days[d].revenue, b->days[d].revenue);
    EXPECT_EQ(a->days[d].cooperative, b->days[d].cooperative);
  }
}

TEST(MultiDayTest, HistoryFeedbackChangesLaterDays) {
  MultiDayConfig with = SmallConfig();
  MultiDayConfig without = SmallConfig();
  without.update_histories = false;
  auto a = RunMultiDay(with, DemFactory(), 7);
  auto b = RunMultiDay(without, DemFactory(), 7);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  // Day 0 is identical (no feedback applied yet when matching).
  EXPECT_DOUBLE_EQ(a->days[0].revenue, b->days[0].revenue);
  // The mean history signal must diverge once feedback is on.
  EXPECT_NE(a->days.back().mean_history_value,
            b->days.back().mean_history_value);
}

TEST(MultiDayTest, FrozenHistoriesKeepMeanStable) {
  MultiDayConfig config = SmallConfig();
  config.update_histories = false;
  auto result = RunMultiDay(config, TotaFactory(), 3);
  ASSERT_TRUE(result.ok());
  // Without updates the population's history statistic never moves.
  EXPECT_DOUBLE_EQ(result->days.front().mean_history_value,
                   result->days.back().mean_history_value);
}

TEST(MultiDayTest, HistoryCapBounds) {
  MultiDayConfig config = SmallConfig();
  config.days = 6;
  config.max_history_length = 8;
  config.day_template.min_history = 8;
  config.day_template.max_history = 8;
  // Run and rely on internal capping; the trajectory staying finite and
  // the mean history staying positive demonstrates the FIFO cap works
  // (without it, histories and the mean-history computation would grow
  // unboundedly with served volume).
  auto result = RunMultiDay(config, DemFactory(), 3);
  ASSERT_TRUE(result.ok());
  for (const DayOutcome& day : result->days) {
    EXPECT_GT(day.mean_history_value, 0.0);
  }
}

TEST(MultiDayTest, InnerServiceRaisesHistoriesTowardValues) {
  // TOTA never borrows: every completed service appends the full request
  // value, pulling the mean history towards the value scale (which sits
  // above the initial frugality-discounted level).
  MultiDayConfig config = SmallConfig();
  config.days = 6;
  auto result = RunMultiDay(config, TotaFactory(), 11);
  ASSERT_TRUE(result.ok());
  EXPECT_GT(result->days.back().mean_history_value,
            result->days.front().mean_history_value);
}

}  // namespace
}  // namespace comx
