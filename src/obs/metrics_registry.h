// Process-wide metrics registry: named counters, gauges, and fixed-bucket
// histograms, safe to update from any thread. Updates go to thread-local
// sharded cells (one cache line each) with relaxed atomic increments — no
// lock, no contention between threads on different shards — and are merged
// only on scrape. Collection is off by default; every update is a single
// relaxed load + branch until obs::SetCollectionEnabled(true) is called, so
// instrumented hot paths (grid probes, pricing loops) stay within noise of
// the uninstrumented code when observability is idle.
//
// Naming convention: comx_<area>_<name>[{label="value",...}], e.g.
// comx_geo_grid_queries_total or comx_sim_requests_total{platform="0"}.
// Labels are part of the registered name; MetricName() builds them.

#ifndef COMX_OBS_METRICS_REGISTRY_H_
#define COMX_OBS_METRICS_REGISTRY_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "obs/latency_histogram.h"

namespace comx {
namespace obs {

/// Number of cache-line-padded cells per counter/histogram. Threads are
/// assigned cells round-robin; 16 keeps contention negligible for the
/// thread counts ThreadPool spawns while costing 1 KiB per counter.
inline constexpr size_t kShardCount = 16;

/// Global collection switch (default off). Reading it is a relaxed atomic
/// load; flipping it does not reset any values.
void SetCollectionEnabled(bool enabled);

namespace internal {
extern std::atomic<bool> g_collection_enabled;
/// Stable shard index of the calling thread (round-robin assigned).
size_t ThisThreadShard();
}  // namespace internal

inline bool CollectionEnabled() {
  return internal::g_collection_enabled.load(std::memory_order_relaxed);
}

/// Builds "base{label=\"value\"}". `value` is escaped for Prometheus
/// exposition (backslash, quote, newline).
std::string MetricName(std::string_view base, std::string_view label,
                       std::string_view value);
std::string MetricName(std::string_view base, std::string_view label,
                       int64_t value);

struct alignas(64) CounterCell {
  std::atomic<int64_t> value{0};
};

/// Monotonically increasing integer metric.
class Counter {
 public:
  void Inc(int64_t n = 1) {
    if (!CollectionEnabled()) return;
    cells_[internal::ThisThreadShard()].value.fetch_add(
        n, std::memory_order_relaxed);
  }

  /// Merged value across all shards. Exact once updating threads have been
  /// joined; a racy-but-monotonic estimate while they run.
  int64_t Value() const;

  const std::string& name() const { return name_; }
  const std::string& help() const { return help_; }

 private:
  friend class MetricsRegistry;
  Counter(std::string name, std::string help)
      : name_(std::move(name)), help_(std::move(help)) {}
  void Reset();

  std::string name_;
  std::string help_;
  std::array<CounterCell, kShardCount> cells_;
};

/// Last-write-wins floating-point metric (single atomic — gauges are set
/// at coarse granularity, not on hot paths).
class Gauge {
 public:
  void Set(double v) {
    if (!CollectionEnabled()) return;
    value_.store(v, std::memory_order_relaxed);
  }
  void Add(double v) {
    if (!CollectionEnabled()) return;
    value_.fetch_add(v, std::memory_order_relaxed);
  }
  double Value() const { return value_.load(std::memory_order_relaxed); }

  const std::string& name() const { return name_; }
  const std::string& help() const { return help_; }

 private:
  friend class MetricsRegistry;
  Gauge(std::string name, std::string help)
      : name_(std::move(name)), help_(std::move(help)) {}
  void Reset() { value_.store(0.0, std::memory_order_relaxed); }

  std::string name_;
  std::string help_;
  std::atomic<double> value_{0.0};
};

/// Fixed-bucket histogram. `bounds` are inclusive upper bucket edges in
/// ascending order; an implicit +inf bucket catches the rest (Prometheus
/// semantics: bucket i counts observations <= bounds[i], cumulated on
/// export). Observation cost: one binary search + two relaxed fetch_adds.
class Histogram {
 public:
  void Observe(double v);

  /// Merged per-bucket counts (size bounds().size() + 1, non-cumulative).
  std::vector<int64_t> BucketCounts() const;
  /// Merged observation count and sum.
  int64_t Count() const;
  double Sum() const;

  const std::vector<double>& bounds() const { return bounds_; }
  const std::string& name() const { return name_; }
  const std::string& help() const { return help_; }

 private:
  friend class MetricsRegistry;
  Histogram(std::string name, std::string help, std::vector<double> bounds);
  void Reset();

  struct alignas(64) Shard {
    // counts has bounds_.size() + 1 entries; the last is the +inf bucket.
    std::unique_ptr<std::atomic<int64_t>[]> counts;
    std::atomic<int64_t> count{0};
    std::atomic<double> sum{0.0};
  };

  std::string name_;
  std::string help_;
  std::vector<double> bounds_;
  std::array<Shard, kShardCount> shards_;
};

/// Default latency buckets for timing spans, in seconds: 1us .. ~10s,
/// roughly 4 per decade.
std::vector<double> DefaultLatencyBoundsSeconds();

/// A point-in-time merged view of every registered metric, sorted by name.
struct CounterSample {
  std::string name, help;
  int64_t value = 0;
};
struct GaugeSample {
  std::string name, help;
  double value = 0.0;
};
struct HistogramSample {
  std::string name, help;
  std::vector<double> bounds;
  std::vector<int64_t> counts;  // per-bucket, non-cumulative; size bounds+1
  int64_t count = 0;
  double sum = 0.0;
};
struct LatencySample {
  std::string name, help;
  LatencySnapshot latency;
};
struct MetricsSnapshot {
  std::vector<CounterSample> counters;
  std::vector<GaugeSample> gauges;
  std::vector<HistogramSample> histograms;
  std::vector<LatencySample> latencies;
};

/// What happened between two snapshots of the same registry: counters and
/// histograms are subtracted (metrics absent from `before` count from
/// zero); gauges are last-write-wins, so the diff carries `after`'s value
/// unchanged. Used by the sweep engine to attribute registry activity to a
/// job (serial runs) or to a whole sweep (parallel runs, where concurrent
/// jobs share the global registry and per-job attribution is impossible).
MetricsSnapshot DiffSnapshots(const MetricsSnapshot& before,
                              const MetricsSnapshot& after);

/// Owner of every metric. Get* interns by full name (including the label
/// suffix) and returns a stable pointer; repeated calls with the same name
/// return the same object. Registration takes a mutex — call sites on hot
/// paths cache the pointer (function-local static or member).
class MetricsRegistry {
 public:
  /// The process-wide registry used by all library instrumentation.
  static MetricsRegistry& Global();

  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  Counter* GetCounter(std::string_view name, std::string_view help = "");
  Gauge* GetGauge(std::string_view name, std::string_view help = "");
  /// `bounds` must be ascending and non-empty; a second Get with the same
  /// name ignores `bounds` and returns the existing histogram.
  Histogram* GetHistogram(std::string_view name, std::vector<double> bounds,
                          std::string_view help = "");
  /// Log-linear nanosecond histogram (see latency_histogram.h). Unlike
  /// Histogram::Observe, LatencyHistogram::ObserveNanos is NOT gated on
  /// CollectionEnabled() — call sites gate (ScopedSpan samples the switch
  /// on scope entry).
  LatencyHistogram* GetLatencyHistogram(std::string_view name,
                                        std::string_view help = "");

  /// Merged values of everything registered so far.
  MetricsSnapshot Snapshot() const;

  /// Zeroes every metric value (registrations survive). For tests and for
  /// separating phases in long-lived processes.
  void ResetValues();

 private:
  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>, std::less<>> histograms_;
  std::map<std::string, std::unique_ptr<LatencyHistogram>, std::less<>>
      latencies_;
};

}  // namespace obs
}  // namespace comx

#endif  // COMX_OBS_METRICS_REGISTRY_H_
