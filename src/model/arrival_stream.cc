#include "model/arrival_stream.h"

#include <algorithm>

#include "util/string_util.h"

namespace comx {

std::vector<Event> EventsForPlatform(const Instance& instance,
                                     PlatformId platform) {
  std::vector<Event> out;
  out.reserve(instance.events().size());
  for (const Event& e : instance.events()) {
    if (e.kind == EventKind::kWorkerArrival) {
      out.push_back(e);
    } else if (instance.request(e.entity_id).platform == platform) {
      out.push_back(e);
    }
  }
  return out;
}

Instance RandomOrderCopy(const Instance& instance, Rng* rng) {
  Instance copy = instance;
  std::vector<Event> events = copy.events();
  rng->Shuffle(&events);
  // Re-assign monotone times preserving the shuffled order: position i gets
  // time i (seconds). Entity timestamps must agree with their event.
  for (size_t i = 0; i < events.size(); ++i) {
    events[i].time = static_cast<Timestamp>(i);
    events[i].sequence = static_cast<int64_t>(i);
    if (events[i].kind == EventKind::kWorkerArrival) {
      copy.mutable_worker(events[i].entity_id)->time = events[i].time;
    } else {
      copy.mutable_request(events[i].entity_id)->time = events[i].time;
    }
  }
  copy.SetEvents(std::move(events));
  return copy;
}

std::string ArrivalOrderString(const Instance& instance) {
  std::vector<std::string> parts;
  parts.reserve(instance.events().size());
  for (const Event& e : instance.events()) {
    parts.push_back(StrFormat(
        "%c%lld", e.kind == EventKind::kWorkerArrival ? 'w' : 'r',
        static_cast<long long>(e.entity_id + 1)));
  }
  return Join(parts, ", ");
}

}  // namespace comx
