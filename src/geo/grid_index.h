// Uniform-grid spatial index mapping int64 ids to points.
//
// The online matchers repeatedly ask "which unoccupied workers cover this
// request location?" — a radius query around the request against the centres
// of worker service circles. A uniform grid with cell size close to the
// typical radius answers these in near-constant time on city-scale data and
// supports O(1) insert/remove as workers arrive and get matched.

#ifndef COMX_GEO_GRID_INDEX_H_
#define COMX_GEO_GRID_INDEX_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "geo/bbox.h"
#include "geo/point.h"
#include "obs/metrics_registry.h"
#include "util/result.h"
#include "util/status.h"

namespace comx {

namespace internal {
/// Books one grid radius probe and its hit count into the metrics registry
/// (comx_geo_grid_queries_total / comx_geo_grid_hits_total). Out-of-line so
/// the header does not pin the counter lookups; callers skip the call
/// entirely while collection is disabled.
void RecordGridProbe(size_t hits);
}  // namespace internal

/// Spatial hash grid over an unbounded plane (cells are hashed, so points
/// outside any pre-declared area are fine).
class GridIndex {
 public:
  /// Creates an index with the given cell edge length in km (must be > 0).
  explicit GridIndex(double cell_size_km = 1.0);

  /// Inserts id at the given location. Errors with AlreadyExists if the id
  /// is present.
  Status Insert(int64_t id, const Point& location);

  /// Removes an id. Errors with NotFound when absent and Internal when the
  /// index detects bucket corruption (checked in every build, not
  /// assert-only — a corrupt spatial index must never fail silently).
  Status Remove(int64_t id);

  /// True when the id is currently indexed.
  bool Contains(int64_t id) const;

  /// Location of an id. Errors with NotFound when the id is absent (this
  /// used to be an assert-only precondition that returned garbage under
  /// NDEBUG).
  Result<Point> LocationOf(int64_t id) const;

  /// All ids whose point lies within `radius` of `center` (inclusive).
  /// Order is unspecified.
  std::vector<int64_t> QueryRadius(const Point& center, double radius) const;

  /// Like QueryRadius but invokes `fn(id, distance_km)` per hit; returns the
  /// number of hits. Avoids allocation on hot paths.
  template <typename Fn>
  size_t ForEachInRadius(const Point& center, double radius, Fn&& fn) const;

  /// All ids inside the rectangle (inclusive boundary).
  std::vector<int64_t> QueryRect(const BBox& box) const;

  /// Number of indexed points.
  size_t size() const { return locations_.size(); }

  /// True when empty.
  bool empty() const { return locations_.empty(); }

  /// Cell edge length in km.
  double cell_size() const { return cell_size_; }

  /// Removes everything.
  void Clear();

 private:
  using CellKey = uint64_t;

  CellKey KeyFor(const Point& p) const;
  static CellKey PackCell(int32_t cx, int32_t cy);

  int32_t CellCoordX(double x) const;
  int32_t CellCoordY(double y) const;

  double cell_size_;
  std::unordered_map<CellKey, std::vector<int64_t>> cells_;
  std::unordered_map<int64_t, Point> locations_;
};

template <typename Fn>
size_t GridIndex::ForEachInRadius(const Point& center, double radius,
                                  Fn&& fn) const {
  if (radius < 0) {
    if (obs::CollectionEnabled()) [[unlikely]] internal::RecordGridProbe(0);
    return 0;
  }
  size_t hits = 0;
  const int32_t cx_lo = CellCoordX(center.x - radius);
  const int32_t cx_hi = CellCoordX(center.x + radius);
  const int32_t cy_lo = CellCoordY(center.y - radius);
  const int32_t cy_hi = CellCoordY(center.y + radius);
  const double r2 = radius * radius;
  for (int32_t cx = cx_lo; cx <= cx_hi; ++cx) {
    for (int32_t cy = cy_lo; cy <= cy_hi; ++cy) {
      const auto it = cells_.find(PackCell(cx, cy));
      if (it == cells_.end()) continue;
      for (int64_t id : it->second) {
        const Point& p = locations_.at(id);
        const double dx = p.x - center.x;
        const double dy = p.y - center.y;
        const double d2 = dx * dx + dy * dy;
        if (d2 <= r2) {
          ++hits;
          fn(id, d2);
        }
      }
    }
  }
  if (obs::CollectionEnabled()) [[unlikely]] internal::RecordGridProbe(hits);
  return hits;
}

}  // namespace comx

#endif  // COMX_GEO_GRID_INDEX_H_
