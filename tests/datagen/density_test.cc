#include "datagen/density.h"

#include <cstdio>

#include <gtest/gtest.h>

#include "datagen/synthetic.h"
#include "testing/builders.h"
#include "util/csv.h"

namespace comx {
namespace {

using testing_fixtures::MakeRequest;
using testing_fixtures::MakeWorker;

Instance CornerInstance() {
  // Platform 0: workers bottom-left, requests top-right (max imbalance).
  Instance ins;
  ins.AddWorker(MakeWorker(0, 1, -9, -9, 1));
  ins.AddWorker(MakeWorker(0, 1, -8, -8, 1));
  ins.AddRequest(MakeRequest(0, 2, 9, 9, 5));
  ins.AddRequest(MakeRequest(0, 2, 8, 8, 5));
  ins.BuildEvents();
  return ins;
}

TEST(DensityGridTest, CountsLandInRightCells) {
  const Instance ins = CornerInstance();
  const BBox bounds(Point(-10, -10), Point(10, 10));
  const DensityGrid grid(ins, bounds, 2, 2);
  EXPECT_EQ(grid.WorkerCount(0, 0, 0), 2);   // bottom-left
  EXPECT_EQ(grid.WorkerCount(0, 1, 1), 0);
  EXPECT_EQ(grid.RequestCount(0, 1, 1), 2);  // top-right
  EXPECT_EQ(grid.RequestCount(0, 0, 0), 0);
}

TEST(DensityGridTest, OutOfBoundsClampsToEdge) {
  Instance ins;
  ins.AddWorker(MakeWorker(0, 1, 100, 100, 1));
  ins.AddRequest(MakeRequest(0, 2, -100, -100, 5));
  ins.BuildEvents();
  const DensityGrid grid(ins, BBox(Point(-1, -1), Point(1, 1)), 3, 3);
  EXPECT_EQ(grid.WorkerCount(0, 2, 2), 1);
  EXPECT_EQ(grid.RequestCount(0, 0, 0), 1);
}

TEST(DensityGridTest, ImbalanceScoreExtremes) {
  // Fully separated supply and demand -> score 1.
  const DensityGrid separated(CornerInstance(),
                              BBox(Point(-10, -10), Point(10, 10)), 2, 2);
  EXPECT_DOUBLE_EQ(separated.ImbalanceScore(), 1.0);
  // Co-located -> score 0.
  Instance ins;
  ins.AddWorker(MakeWorker(0, 1, 5, 5, 1));
  ins.AddRequest(MakeRequest(0, 2, 5, 5, 5));
  ins.BuildEvents();
  const DensityGrid colocated(ins, BBox(Point(0, 0), Point(10, 10)), 4, 4);
  EXPECT_DOUBLE_EQ(colocated.ImbalanceScore(), 0.0);
}

TEST(DensityGridTest, GeneratorImbalanceKnobMovesTheScore) {
  auto score_at = [](double imbalance) {
    SyntheticConfig config;
    config.requests_per_platform = {2000};
    config.workers_per_platform = {2000};
    config.imbalance = imbalance;
    config.seed = 5;
    auto ins = GenerateSynthetic(config);
    EXPECT_TRUE(ins.ok());
    const CityModel city(config.city);
    return DensityGrid(*ins, city.Bounds(), 10, 10).ImbalanceScore();
  };
  const double low = score_at(0.0);
  const double high = score_at(1.0);
  EXPECT_GT(high, low + 0.1);
}

TEST(DensityGridTest, AsciiHeatmapShape) {
  const Instance ins = CornerInstance();
  const DensityGrid grid(ins, BBox(Point(-10, -10), Point(10, 10)), 4, 3);
  const std::string map = grid.AsciiHeatmap(0, /*workers=*/true);
  // 3 lines of 4 chars (+ newlines).
  EXPECT_EQ(map.size(), 3u * 5u);
  // Workers are bottom-left: last line's first char is the densest mark.
  const std::string last_line = map.substr(map.size() - 5, 4);
  EXPECT_NE(last_line[0], ' ');
  // Top-right of the worker map is empty.
  EXPECT_EQ(map[3], ' ');
}

TEST(DensityGridTest, CsvRoundTripShape) {
  const Instance ins = CornerInstance();
  const DensityGrid grid(ins, BBox(Point(-10, -10), Point(10, 10)), 2, 2);
  const std::string path = testing::TempDir() + "/density.csv";
  ASSERT_TRUE(grid.WriteCsv(path).ok());
  auto rows = ReadCsvFile(path);
  ASSERT_TRUE(rows.ok());
  // Header + platforms(1) * roles(2) * cells(4).
  EXPECT_EQ(rows->size(), 1u + 1u * 2u * 4u);
  EXPECT_EQ((*rows)[0][0], "platform");
  std::remove(path.c_str());
}

}  // namespace
}  // namespace comx
