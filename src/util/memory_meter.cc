#include "util/memory_meter.h"

#include <algorithm>
#include <cstdio>
#include <cstring>

namespace comx {

int64_t CurrentRssBytes() {
  FILE* f = std::fopen("/proc/self/status", "r");
  if (f == nullptr) return 0;
  int64_t rss_kb = 0;
  char line[256];
  while (std::fgets(line, sizeof(line), f) != nullptr) {
    if (std::strncmp(line, "VmRSS:", 6) == 0) {
      std::sscanf(line + 6, "%ld", &rss_kb);
      break;
    }
  }
  std::fclose(f);
  return rss_kb * 1024;
}

void MemoryMeter::Allocate(int64_t bytes) {
  live_ += bytes;
  peak_ = std::max(peak_, live_);
}

void MemoryMeter::Release(int64_t bytes) { live_ -= bytes; }

void MemoryMeter::Reset() {
  live_ = 0;
  peak_ = 0;
}

}  // namespace comx
