// Empirical competitive-ratio harness for the two online models of
// Section II-B: the adversarial model (worst ratio over arrival orders,
// Definition 2.7) and the random-order model (expected ratio, Definition
// 2.8). Orders are sampled uniformly; the offline optimum is recomputed per
// order (OFF knows the order, so its value is order-dependent through the
// time constraint).

#ifndef COMX_SIM_COMPETITIVE_RATIO_H_
#define COMX_SIM_COMPETITIVE_RATIO_H_

#include <functional>
#include <memory>

#include "core/offline_opt.h"
#include "core/online_matcher.h"
#include "model/instance.h"
#include "sim/simulator.h"
#include "util/result.h"
#include "util/stats.h"

namespace comx {

/// Knobs for the CR estimation.
struct CrConfig {
  /// Number of uniformly sampled arrival orders.
  int permutations = 100;
  /// Base RNG seed (permutation i uses seed + i for both shuffle and
  /// matcher randomness).
  uint64_t seed = 7;
  /// Simulation physics; defaults to the strict theory setting.
  SimConfig sim = [] {
    SimConfig c;
    c.workers_recycle = false;
    c.measure_response_time = false;
    return c;
  }();
  /// Offline solver settings (exact solvers for the small CR instances).
  OfflineConfig offline;
};

/// Estimated ratios over the sampled orders.
struct CrEstimate {
  /// min over sampled orders of alg/OPT — an upper bound estimate of CR_A.
  double min_ratio = 0.0;
  /// mean over sampled orders of alg/OPT — the CR_RO estimate.
  double mean_ratio = 0.0;
  /// Per-order ratio distribution.
  RunningStats ratios;
  /// Orders skipped because OPT was 0 (no feasible pair at any order).
  int skipped = 0;
};

/// Factory producing a fresh matcher instance (one per platform per order).
using MatcherFactoryFn = std::function<std::unique_ptr<OnlineMatcher>()>;

/// Runs the estimation: for each sampled order, simulate `factory` matchers
/// on every platform, solve OFF per platform on the same order, and record
/// total-revenue ratios.
Result<CrEstimate> EstimateCompetitiveRatio(const Instance& instance,
                                            const MatcherFactoryFn& factory,
                                            const CrConfig& config);

}  // namespace comx

#endif  // COMX_SIM_COMPETITIVE_RATIO_H_
