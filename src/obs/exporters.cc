#include "obs/exporters.h"

#include <cstdio>
#include <utility>

#include "util/atomic_file.h"
#include "util/json.h"
#include "util/string_util.h"

namespace comx {
namespace obs {

namespace {

// Splits "base{labels}" into its parts; labels comes back empty for
// unlabeled names.
std::pair<std::string_view, std::string_view> SplitName(
    std::string_view name) {
  const size_t brace = name.find('{');
  if (brace == std::string_view::npos) return {name, {}};
  std::string_view labels = name.substr(brace + 1);
  if (!labels.empty() && labels.back() == '}') labels.remove_suffix(1);
  return {name.substr(0, brace), labels};
}

// "base_suffix{labels,extra}" with every part optional.
std::string SeriesName(std::string_view base, std::string_view suffix,
                       std::string_view labels, std::string_view extra) {
  std::string out(base);
  out += suffix;
  if (labels.empty() && extra.empty()) return out;
  out += '{';
  out += labels;
  if (!labels.empty() && !extra.empty()) out += ',';
  out += extra;
  out += '}';
  return out;
}

std::string FormatBound(double bound) {
  return StrFormat("%g", bound);
}

// Emits HELP/TYPE once per base name (samples arrive sorted by full name,
// so label variants of one base are adjacent).
void MaybeHeader(std::string* out, std::string_view base,
                 std::string_view help, const char* type,
                 std::string* last_base) {
  if (*last_base == base) return;
  *last_base = std::string(base);
  if (!help.empty()) {
    out->append("# HELP ").append(base).append(" ").append(help).append("\n");
  }
  out->append("# TYPE ").append(base).append(" ").append(type).append("\n");
}

}  // namespace

Result<MetricsFormat> ParseMetricsFormat(std::string_view name) {
  if (name == "prom" || name == "prometheus") {
    return MetricsFormat::kPrometheus;
  }
  if (name == "json") return MetricsFormat::kJson;
  return Status::InvalidArgument(
      StrFormat("unknown metrics format '%.*s' (want prom|json)",
                static_cast<int>(name.size()), name.data()));
}

std::string ToPrometheusText(const MetricsSnapshot& snapshot) {
  std::string out;
  std::string last_base;
  for (const CounterSample& c : snapshot.counters) {
    const auto [base, labels] = SplitName(c.name);
    MaybeHeader(&out, base, c.help, "counter", &last_base);
    out += SeriesName(base, "", labels, "");
    out += StrFormat(" %lld\n", static_cast<long long>(c.value));
  }
  last_base.clear();
  for (const GaugeSample& g : snapshot.gauges) {
    const auto [base, labels] = SplitName(g.name);
    MaybeHeader(&out, base, g.help, "gauge", &last_base);
    out += SeriesName(base, "", labels, "");
    out += StrFormat(" %.17g\n", g.value);
  }
  last_base.clear();
  // Latency histograms export as Prometheus summaries (quantile label),
  // converted from nanoseconds to the seconds their base names promise.
  for (const LatencySample& l : snapshot.latencies) {
    const auto [base, labels] = SplitName(l.name);
    MaybeHeader(&out, base, l.help, "summary", &last_base);
    static constexpr std::pair<const char*, double> kQuantiles[] = {
        {"0.5", 0.50}, {"0.9", 0.90}, {"0.99", 0.99}, {"0.999", 0.999}};
    for (const auto& [label, q] : kQuantiles) {
      out += SeriesName(base, "", labels,
                        StrFormat("quantile=\"%s\"", label));
      out += StrFormat(
          " %.17g\n",
          static_cast<double>(l.latency.ValueAtQuantileNanos(q)) / 1e9);
    }
    out += SeriesName(base, "_sum", labels, "");
    out += StrFormat(" %.17g\n",
                     static_cast<double>(l.latency.sum_nanos) / 1e9);
    out += SeriesName(base, "_count", labels, "");
    out += StrFormat(" %lld\n", static_cast<long long>(l.latency.count));
  }
  last_base.clear();
  for (const HistogramSample& h : snapshot.histograms) {
    const auto [base, labels] = SplitName(h.name);
    MaybeHeader(&out, base, h.help, "histogram", &last_base);
    int64_t cumulative = 0;
    for (size_t i = 0; i < h.counts.size(); ++i) {
      cumulative += h.counts[i];
      const std::string le =
          i < h.bounds.size()
              ? StrFormat("le=\"%s\"", FormatBound(h.bounds[i]).c_str())
              : std::string("le=\"+Inf\"");
      out += SeriesName(base, "_bucket", labels, le);
      out += StrFormat(" %lld\n", static_cast<long long>(cumulative));
    }
    out += SeriesName(base, "_sum", labels, "");
    out += StrFormat(" %.17g\n", h.sum);
    out += SeriesName(base, "_count", labels, "");
    out += StrFormat(" %lld\n", static_cast<long long>(h.count));
  }
  return out;
}

std::string ToJson(const MetricsSnapshot& snapshot) {
  JsonWriter w;
  w.BeginObject();
  w.Key("counters").BeginObject();
  for (const CounterSample& c : snapshot.counters) w.KV(c.name, c.value);
  w.EndObject();
  w.Key("gauges").BeginObject();
  for (const GaugeSample& g : snapshot.gauges) w.KV(g.name, g.value);
  w.EndObject();
  w.Key("histograms").BeginObject();
  for (const HistogramSample& h : snapshot.histograms) {
    w.Key(h.name).BeginObject();
    w.KV("count", h.count).KV("sum", h.sum);
    w.Key("bounds").BeginArray();
    for (double b : h.bounds) w.Value(b);
    w.EndArray();
    w.Key("bucket_counts").BeginArray();
    for (int64_t c : h.counts) w.Value(c);
    w.EndArray();
    w.EndObject();
  }
  w.EndObject();
  w.Key("latencies").BeginObject();
  for (const LatencySample& l : snapshot.latencies) {
    w.Key(l.name).BeginObject();
    w.KV("count", l.latency.count)
        .KV("sum_ns", l.latency.sum_nanos)
        .KV("max_ns", l.latency.max_nanos)
        .KV("p50_ns", l.latency.ValueAtQuantileNanos(0.50))
        .KV("p90_ns", l.latency.ValueAtQuantileNanos(0.90))
        .KV("p99_ns", l.latency.ValueAtQuantileNanos(0.99))
        .KV("p999_ns", l.latency.ValueAtQuantileNanos(0.999));
    // Sparse [index, count] pairs of the log-linear buckets (see
    // latency_histogram.h for the index -> bound mapping).
    w.Key("buckets").BeginArray();
    for (const auto& [index, count] : l.latency.NonZeroBuckets()) {
      w.BeginArray().Value(index).Value(count).EndArray();
    }
    w.EndArray();
    w.EndObject();
  }
  w.EndObject();
  w.EndObject();
  return w.TakeString();
}

Status WriteMetricsFile(const MetricsRegistry& registry,
                        const std::string& path, MetricsFormat format) {
  const MetricsSnapshot snapshot = registry.Snapshot();
  std::string body = format == MetricsFormat::kPrometheus
                         ? ToPrometheusText(snapshot)
                         : ToJson(snapshot);
  if (format == MetricsFormat::kJson) body += '\n';
  return AtomicWriteFile(path, body);
}

}  // namespace obs
}  // namespace comx
