// Sorted completed-request value history of one worker, exposing the
// empirical CDF that Definition 3.1 turns into an acceptance probability.

#ifndef COMX_PRICING_HISTORY_H_
#define COMX_PRICING_HISTORY_H_

#include <cstddef>
#include <vector>

namespace comx {

/// Immutable sorted view over a worker's completed-request values.
class ValueHistory {
 public:
  /// Builds from raw values; sorts internally. Empty histories are legal
  /// but make every acceptance probability 0 (Definition 3.1 with N = 0 is
  /// treated as "never accepts": the worker has no evidence of accepting
  /// any price).
  explicit ValueHistory(std::vector<double> values);

  /// Empirical CDF: fraction of history values <= v (Definition 3.1's
  /// N(value <= v) / N). Returns 0 for an empty history.
  double Ecdf(double v) const;

  /// Number of history entries.
  size_t size() const { return values_.size(); }

  /// True when no entries.
  bool empty() const { return values_.empty(); }

  /// Smallest / largest history value. Precondition: !empty().
  double min() const { return values_.front(); }
  double max() const { return values_.back(); }

  /// q-th quantile with linear interpolation, q in [0,1].
  /// Precondition: !empty().
  double Quantile(double q) const;

  /// Ascending values.
  const std::vector<double>& values() const { return values_; }

 private:
  std::vector<double> values_;  // ascending
};

}  // namespace comx

#endif  // COMX_PRICING_HISTORY_H_
