// Seqlock stats cell (src/serve/stats_cell.h): round-trip fidelity, merge
// arithmetic, and the property the scheme exists for — concurrent readers
// always observe a cross-field CONSISTENT snapshot, never a torn mix of two
// publishes. The hammer test is the TSan target for the serve layer.

#include "serve/stats_cell.h"

#include <atomic>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

namespace comx {
namespace serve {
namespace {

ShardSnapshot MakeSnapshot(int64_t i, int32_t platforms) {
  ShardSnapshot snap;
  snap.submitted = i;
  snap.steps = 2 * i;
  snap.arrivals = i / 2;
  snap.decisions = i;
  snap.inner = i / 3;
  snap.outer = i / 5;
  snap.rejects = i - i / 3 - i / 5;
  snap.queue_depth = i % 7;
  snap.revenue = 1.5 * static_cast<double>(i);
  snap.platforms.resize(static_cast<size_t>(platforms));
  for (int32_t p = 0; p < platforms; ++p) {
    snap.platforms[static_cast<size_t>(p)].requests = i + p;
    snap.platforms[static_cast<size_t>(p)].inner = i / 2 + p;
    snap.platforms[static_cast<size_t>(p)].outer = i / 4 + p;
    snap.platforms[static_cast<size_t>(p)].rejects = i / 8 + p;
    snap.platforms[static_cast<size_t>(p)].revenue =
        0.25 * static_cast<double>(i + p);
  }
  return snap;
}

void ExpectEqual(const ShardSnapshot& a, const ShardSnapshot& b) {
  EXPECT_EQ(a.submitted, b.submitted);
  EXPECT_EQ(a.steps, b.steps);
  EXPECT_EQ(a.arrivals, b.arrivals);
  EXPECT_EQ(a.decisions, b.decisions);
  EXPECT_EQ(a.inner, b.inner);
  EXPECT_EQ(a.outer, b.outer);
  EXPECT_EQ(a.rejects, b.rejects);
  EXPECT_EQ(a.queue_depth, b.queue_depth);
  EXPECT_EQ(a.revenue, b.revenue);  // bitwise: stored via bit-cast
  ASSERT_EQ(a.platforms.size(), b.platforms.size());
  for (size_t p = 0; p < a.platforms.size(); ++p) {
    EXPECT_EQ(a.platforms[p].requests, b.platforms[p].requests);
    EXPECT_EQ(a.platforms[p].inner, b.platforms[p].inner);
    EXPECT_EQ(a.platforms[p].outer, b.platforms[p].outer);
    EXPECT_EQ(a.platforms[p].rejects, b.platforms[p].rejects);
    EXPECT_EQ(a.platforms[p].revenue, b.platforms[p].revenue);
  }
}

TEST(StatsCellTest, PublishReadRoundTrip) {
  StatsCell cell(3);
  EXPECT_EQ(cell.platform_count(), 3);
  const ShardSnapshot in = MakeSnapshot(12345, 3);
  cell.Publish(in);
  ExpectEqual(cell.Read(), in);
  // Re-publish overwrites in place.
  const ShardSnapshot next = MakeSnapshot(999, 3);
  cell.Publish(next);
  ExpectEqual(cell.Read(), next);
}

TEST(StatsCellTest, ZeroPlatformsAndDefaultSnapshot) {
  StatsCell cell(0);
  ShardSnapshot empty;
  cell.Publish(empty);
  const ShardSnapshot out = cell.Read();
  EXPECT_EQ(out.decisions, 0);
  EXPECT_EQ(out.revenue, 0.0);
  EXPECT_TRUE(out.platforms.empty());
}

TEST(StatsCellTest, MergeSumsEveryField) {
  const ShardSnapshot a = MakeSnapshot(100, 2);
  const ShardSnapshot b = MakeSnapshot(23, 2);
  const ShardSnapshot m = MergeSnapshots({a, b});
  EXPECT_EQ(m.submitted, a.submitted + b.submitted);
  EXPECT_EQ(m.steps, a.steps + b.steps);
  EXPECT_EQ(m.arrivals, a.arrivals + b.arrivals);
  EXPECT_EQ(m.decisions, a.decisions + b.decisions);
  EXPECT_EQ(m.inner, a.inner + b.inner);
  EXPECT_EQ(m.outer, a.outer + b.outer);
  EXPECT_EQ(m.rejects, a.rejects + b.rejects);
  EXPECT_EQ(m.queue_depth, a.queue_depth + b.queue_depth);
  EXPECT_EQ(m.revenue, a.revenue + b.revenue);
  ASSERT_EQ(m.platforms.size(), 2u);
  for (size_t p = 0; p < 2; ++p) {
    EXPECT_EQ(m.platforms[p].requests,
              a.platforms[p].requests + b.platforms[p].requests);
    EXPECT_EQ(m.platforms[p].revenue,
              a.platforms[p].revenue + b.platforms[p].revenue);
  }
}

TEST(StatsCellTest, ConcurrentReadersNeverSeeTornSnapshots) {
  // One writer publishes snapshots whose fields are all derived from a
  // single counter i (steps = 2i, revenue = 1.5i, platform slices offset by
  // p). A torn read — half of publish i, half of publish i+1 — breaks at
  // least one of those relations. Readers hammer concurrently and check
  // every relation on every read. Run under TSan this also proves the
  // scheme is data-race-free, not merely consistent.
  constexpr int kPlatforms = 2;
  constexpr int64_t kPublishes = 20000;
  StatsCell cell(kPlatforms);
  cell.Publish(MakeSnapshot(0, kPlatforms));

  std::atomic<bool> done{false};
  std::atomic<int64_t> torn{0};
  std::vector<std::thread> readers;
  for (int t = 0; t < 4; ++t) {
    readers.emplace_back([&cell, &done, &torn] {
      int64_t last = -1;
      while (!done.load(std::memory_order_acquire)) {
        const ShardSnapshot s = cell.Read();
        const int64_t i = s.submitted;
        bool ok = s.steps == 2 * i && s.decisions == i &&
                  s.arrivals == i / 2 && s.inner == i / 3 &&
                  s.outer == i / 5 && s.queue_depth == i % 7 &&
                  s.revenue == 1.5 * static_cast<double>(i) &&
                  i >= last;  // single writer publishes monotonically
        for (int p = 0; ok && p < kPlatforms; ++p) {
          const PlatformSlice& ps = s.platforms[static_cast<size_t>(p)];
          ok = ps.requests == i + p && ps.inner == i / 2 + p &&
               ps.outer == i / 4 + p && ps.rejects == i / 8 + p &&
               ps.revenue == 0.25 * static_cast<double>(i + p);
        }
        if (!ok) torn.fetch_add(1);
        last = i;
      }
    });
  }
  for (int64_t i = 1; i <= kPublishes; ++i) {
    cell.Publish(MakeSnapshot(i, kPlatforms));
  }
  done.store(true, std::memory_order_release);
  for (std::thread& t : readers) t.join();
  EXPECT_EQ(torn.load(), 0);
  EXPECT_EQ(cell.Read().submitted, kPublishes);
}

}  // namespace
}  // namespace serve
}  // namespace comx
