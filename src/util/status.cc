#include "util/status.h"

namespace comx {

std::string_view StatusCodeToString(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "Ok";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kOutOfRange:
      return "OutOfRange";
    case StatusCode::kFailedPrecondition:
      return "FailedPrecondition";
    case StatusCode::kAlreadyExists:
      return "AlreadyExists";
    case StatusCode::kIoError:
      return "IoError";
    case StatusCode::kInternal:
      return "Internal";
    case StatusCode::kUnimplemented:
      return "Unimplemented";
    case StatusCode::kDataLoss:
      return "DataLoss";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) return "Ok";
  std::string out(StatusCodeToString(code_));
  if (!message_.empty()) {
    out += ": ";
    out += message_;
  }
  return out;
}

}  // namespace comx
