#include "check/fuzz_driver.h"

#include <chrono>
#include <fstream>
#include <iterator>
#include <set>
#include <utility>

#include "check/recovery_oracles.h"
#include "core/ram_com.h"
#include "datagen/dataset.h"
#include "util/signal_guard.h"
#include "util/string_util.h"

namespace comx {
namespace check {

namespace {
using Clock = std::chrono::steady_clock;
}  // namespace

Result<MatcherRunOutput> RunMatcherOnInstance(MatcherKind kind,
                                              const Scenario& scenario,
                                              const Instance& instance,
                                              const MatcherWrapper& wrap) {
  MatcherRunOutput out;
  obs::VectorTraceSink sink;
  const SimConfig sim =
      scenario.MakeSimConfig(&sink, kind == MatcherKind::kBatch);
  const int32_t platforms = instance.PlatformCount();
  std::vector<std::unique_ptr<OnlineMatcher>> owned;
  std::vector<OnlineMatcher*> matchers;
  // Raw handles onto the RamCom objects so the drawn thresholds survive
  // wrapping; a wrapper must keep the wrapped matcher alive (decoration,
  // not replacement) for these to stay valid.
  std::vector<RamCom*> rams;
  for (PlatformId p = 0; p < platforms; ++p) {
    std::unique_ptr<OnlineMatcher> m = MakeMatcher(kind);
    if (kind == MatcherKind::kRamCom) {
      rams.push_back(static_cast<RamCom*>(m.get()));
    }
    if (wrap) m = wrap(kind, std::move(m));
    owned.push_back(std::move(m));
    matchers.push_back(owned.back().get());
  }
  COMX_ASSIGN_OR_RETURN(
      out.result, RunSimulation(instance, matchers, sim, scenario.sim_seed));
  for (RamCom* ram : rams) out.ram_thresholds.push_back(ram->threshold());
  out.trace = sink.events();
  out.has_summary = sink.has_summary();
  if (out.has_summary) out.trace_summary = sink.summary();
  return out;
}

std::vector<OracleViolation> CheckMatcherRun(
    MatcherKind kind, const Scenario& scenario, const Instance& instance,
    const OracleOptions& options, DifferentialCounts* counted,
    const MatcherWrapper& wrap) {
  auto run = RunMatcherOnInstance(kind, scenario, instance, wrap);
  if (!run.ok()) {
    // The simulator's own runtime guards (occupied worker, range, payment)
    // refuse infeasible decisions with an error status — for the harness
    // that is a first-class constraint violation, not a crash.
    return {OracleViolation{"simulator-status",
                            run.status().ToString()}};
  }
  MatcherRunRecord record;
  record.kind = kind;
  record.instance = &instance;
  record.scenario = &scenario;
  record.result = &run->result;
  record.trace = &run->trace;
  record.trace_summary = run->has_summary ? &run->trace_summary : nullptr;
  record.ram_thresholds = run->ram_thresholds;
  return CheckAllOracles(record, options, counted);
}

std::string ReplayCommand(const Scenario& scenario, MatcherKind kind,
                          const std::string& repro_prefix) {
  std::string cmd = StrFormat(
      "comx_cli run --data %s --algo %s --sim-seed %llu --acceptance %s "
      "--reservation-seed %llu --speed-kmh %.17g --base-service-s %.17g "
      "--service-s-per-value %.17g",
      repro_prefix.c_str(), MatcherKindName(kind),
      static_cast<unsigned long long>(scenario.sim_seed),
      scenario.acceptance_mode == AcceptanceMode::kReservation
          ? "reservation"
          : "bernoulli",
      static_cast<unsigned long long>(scenario.reservation_seed),
      scenario.speed_kmh, scenario.base_service_seconds,
      scenario.service_seconds_per_value);
  if (!scenario.workers_recycle) cmd += " --no-recycle";
  if (kind == MatcherKind::kBatch) {
    cmd += StrFormat(" --batch-window %.17g --batch-algo %s",
                     scenario.batch_window_seconds,
                     BatchAlgoName(scenario.batch_algo));
  }
  if (scenario.with_fault_plan) {
    cmd += StrFormat(" --fault-plan %s.faultplan.jsonl",
                     repro_prefix.c_str());
  }
  return cmd;
}

namespace {

Status WriteReproText(const FuzzFailure& failure, const std::string& path) {
  std::ofstream out(path, std::ios::trunc);
  if (!out) return Status::IoError("cannot write repro: " + path);
  out << "# comx_fuzz repro\n";
  out << failure.scenario.Describe() << "\n";
  out << StrFormat("matcher=%s scenario_index=%llu entities=%lld->%lld\n",
                   MatcherKindName(failure.kind),
                   static_cast<unsigned long long>(failure.scenario_index),
                   static_cast<long long>(failure.entities_before),
                   static_cast<long long>(failure.entities_after));
  out << "violations (original instance):\n";
  for (const OracleViolation& v : failure.violations) {
    out << "  [" << v.oracle << "] " << v.detail << "\n";
  }
  out << "violations (shrunk instance):\n";
  for (const OracleViolation& v : failure.shrunk_violations) {
    out << "  [" << v.oracle << "] " << v.detail << "\n";
  }
  out << "replay:\n  " << failure.replay_command << "\n";
  out.close();
  if (!out) return Status::IoError("error writing repro: " + path);
  return Status::OK();
}

}  // namespace

Result<FuzzReport> RunFuzz(const FuzzOptions& options) {
  FuzzReport report;
  const Clock::time_point start = Clock::now();
  const auto out_of_time = [&] {
    if (options.time_budget_seconds <= 0.0) return false;
    return std::chrono::duration<double>(Clock::now() - start).count() >=
           options.time_budget_seconds;
  };

  for (int64_t i = 0; i < options.runs; ++i) {
    // Scenario boundaries are the fuzz loop's cooperative shutdown poll
    // points: SIGINT/SIGTERM only set a flag (util/signal_guard.h), and the
    // driver returns the partial report for the tool to print and drain.
    if (ShutdownRequested()) break;
    if (out_of_time()) {
      report.time_budget_exhausted = true;
      break;
    }
    const Scenario scenario =
        DrawScenario(options.base_seed, static_cast<uint64_t>(i));
    COMX_ASSIGN_OR_RETURN(const Instance instance,
                          BuildScenarioInstance(scenario));
    ++report.scenarios_run;

    std::vector<MatcherKind> kinds(std::begin(kAllMatcherKinds),
                                   std::end(kAllMatcherKinds));
    // Batch mode refuses fault plans, so fault-plan scenarios keep their
    // original three-matcher coverage and batch rides on the rest.
    if (options.include_batch && !scenario.with_fault_plan) {
      kinds.push_back(MatcherKind::kBatch);
    }
    for (MatcherKind kind : kinds) {
      std::vector<OracleViolation> violations =
          CheckMatcherRun(kind, scenario, instance, options.oracle_options,
                          &report.differential, options.wrap_matcher);
      ++report.matcher_runs;
      if (violations.empty()) continue;

      if (options.log != nullptr) {
        std::fprintf(options.log,
                     "fuzz: VIOLATION scenario %lld matcher %s: [%s] %s\n",
                     static_cast<long long>(i), MatcherKindName(kind),
                     violations.front().oracle.c_str(),
                     violations.front().detail.c_str());
      }

      FuzzFailure failure;
      failure.scenario_index = static_cast<uint64_t>(i);
      failure.scenario = scenario;
      failure.kind = kind;
      failure.violations = violations;
      failure.entities_before =
          static_cast<int64_t>(instance.workers().size()) +
          static_cast<int64_t>(instance.requests().size());

      // Shrink towards *the same* oracles firing, so an unrelated flake on
      // a sub-instance cannot hijack the minimization.
      std::set<std::string> target_slugs;
      for (const OracleViolation& v : violations) {
        target_slugs.insert(v.oracle);
      }
      const FailurePredicate reproduces = [&](const Instance& candidate) {
        const std::vector<OracleViolation> found =
            CheckMatcherRun(kind, scenario, candidate,
                            options.oracle_options, nullptr,
                            options.wrap_matcher);
        for (const OracleViolation& v : found) {
          if (target_slugs.count(v.oracle) != 0) return true;
        }
        return false;
      };
      if (options.shrink) {
        ShrinkResult shrunk =
            ShrinkInstance(instance, reproduces, options.shrink_options);
        failure.shrunk_instance = std::move(shrunk.instance);
        failure.entities_after = shrunk.entities_after;
      } else {
        failure.shrunk_instance = instance;
        failure.entities_after = failure.entities_before;
      }
      failure.shrunk_violations =
          CheckMatcherRun(kind, scenario, failure.shrunk_instance,
                          options.oracle_options, nullptr,
                          options.wrap_matcher);

      if (!options.repro_dir.empty()) {
        failure.repro_prefix = StrFormat(
            "%s/comx_repro_%llu_%llu_%s", options.repro_dir.c_str(),
            static_cast<unsigned long long>(options.base_seed),
            static_cast<unsigned long long>(i), MatcherKindName(kind));
        COMX_RETURN_IF_ERROR(
            SaveInstance(failure.shrunk_instance, failure.repro_prefix));
        if (scenario.with_fault_plan) {
          COMX_RETURN_IF_ERROR(SaveFaultPlan(
              scenario.fault_plan,
              failure.repro_prefix + ".faultplan.jsonl"));
        }
        failure.replay_command =
            ReplayCommand(scenario, kind, failure.repro_prefix);
        COMX_RETURN_IF_ERROR(
            WriteReproText(failure, failure.repro_prefix + ".repro.txt"));
        if (options.log != nullptr) {
          std::fprintf(options.log,
                       "fuzz: shrunk %lld -> %lld entities; wrote %s.*\n",
                       static_cast<long long>(failure.entities_before),
                       static_cast<long long>(failure.entities_after),
                       failure.repro_prefix.c_str());
        }
      } else {
        failure.replay_command = ReplayCommand(scenario, kind, "<prefix>");
      }

      report.failures.push_back(std::move(failure));
      if (static_cast<int64_t>(report.failures.size()) >=
          options.max_failures) {
        return report;
      }
    }

    if (options.crash_check_every > 0 &&
        i % options.crash_check_every == 0) {
      // Rotate the matcher kind across checks so every policy's durable
      // path gets crash coverage over a session.
      const MatcherKind kind = kAllMatcherKinds
          [(i / options.crash_check_every) %
           (sizeof(kAllMatcherKinds) / sizeof(kAllMatcherKinds[0]))];
      const std::string dir = StrFormat(
          "%s/crash_%llu_%lld", options.crash_check_dir.c_str(),
          static_cast<unsigned long long>(options.base_seed),
          static_cast<long long>(i));
      // One crash point per check, derived from the scenario stream so the
      // whole experiment replays from (base_seed, i) alone.
      const uint64_t crash_seed =
          scenario.scenario_seed ^ 0xC3A5C85C97CB3127ULL;
      COMX_ASSIGN_OR_RETURN(
          const CrashCheckOutcome crash,
          RunCrashRecoveryCheck(kind, scenario, instance, dir, crash_seed,
                                options.crash_check_checkpoint_every));
      ++report.crash_checks;
      if (!crash.violations.empty()) {
        if (options.log != nullptr) {
          std::fprintf(options.log,
                       "fuzz: CRASH VIOLATION scenario %lld matcher %s "
                       "(%s): [%s] %s\n",
                       static_cast<long long>(i), MatcherKindName(kind),
                       crash.point.ToString().c_str(),
                       crash.violations.front().oracle.c_str(),
                       crash.violations.front().detail.c_str());
        }
        FuzzFailure failure;
        failure.scenario_index = static_cast<uint64_t>(i);
        failure.scenario = scenario;
        failure.kind = kind;
        failure.violations = crash.violations;
        failure.entities_before =
            static_cast<int64_t>(instance.workers().size()) +
            static_cast<int64_t>(instance.requests().size());
        failure.entities_after = failure.entities_before;
        failure.shrunk_instance = instance;
        failure.shrunk_violations = crash.violations;
        failure.replay_command = StrFormat(
            "crash_matrix --fuzz-seed %llu --scenario %lld --algo %s "
            "--crash-seed %llu  # artifacts in %s",
            static_cast<unsigned long long>(options.base_seed),
            static_cast<long long>(i), MatcherKindName(kind),
            static_cast<unsigned long long>(crash_seed), dir.c_str());
        report.failures.push_back(std::move(failure));
        if (static_cast<int64_t>(report.failures.size()) >=
            options.max_failures) {
          return report;
        }
      }
    }

    if (options.log != nullptr && (i + 1) % 50 == 0) {
      std::fprintf(
          options.log,
          "fuzz: %lld/%lld scenarios, %lld matcher runs, %lld OFF bounds, "
          "%lld brute-force checks, %zu failures\n",
          static_cast<long long>(i + 1),
          static_cast<long long>(options.runs),
          static_cast<long long>(report.matcher_runs),
          static_cast<long long>(report.differential.off_bounds),
          static_cast<long long>(report.differential.brute_force),
          report.failures.size());
    }
  }
  return report;
}

}  // namespace check
}  // namespace comx
