# Empty compiler generated dependencies file for bench_ablation_pricing.
# This may be replaced when dependencies are built.
