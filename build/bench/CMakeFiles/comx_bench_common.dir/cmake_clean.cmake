file(REMOVE_RECURSE
  "CMakeFiles/comx_bench_common.dir/common.cc.o"
  "CMakeFiles/comx_bench_common.dir/common.cc.o.d"
  "libcomx_bench_common.a"
  "libcomx_bench_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/comx_bench_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
