#include "recovery/crash_injector.h"

#include <algorithm>

#include "util/string_util.h"

namespace comx {
namespace recovery {

std::string CrashPoint::ToString() const {
  switch (kind) {
    case Kind::kNone:
      return "none";
    case Kind::kWalOffset:
      return StrFormat("wal@%lld", static_cast<long long>(wal_offset));
    case Kind::kCheckpoint:
      return StrFormat("ckpt-gen%lld@%lld",
                       static_cast<long long>(checkpoint_gen),
                       static_cast<long long>(checkpoint_offset));
  }
  return "none";
}

CrashPoint DrawCrashPoint(const CrashProfile& profile, Rng* rng) {
  CrashPoint point;
  const bool mid_checkpoint =
      !profile.checkpoints.empty() && rng->Bernoulli(0.25);
  if (mid_checkpoint) {
    const auto& span =
        profile.checkpoints[rng->PickIndex(profile.checkpoints.size())];
    point.kind = CrashPoint::Kind::kCheckpoint;
    point.checkpoint_gen = span.generation;
    // [0, bytes - 1]: always a strict prefix, never the complete file.
    point.checkpoint_offset =
        span.bytes > 0 ? rng->UniformInt(0, span.bytes - 1) : 0;
    return point;
  }
  point.kind = CrashPoint::Kind::kWalOffset;
  // [1, wal_bytes - 1]: strictly inside the stream so the crash always
  // fires, and the torn prefix is never the whole run.
  point.wal_offset =
      profile.wal_bytes > 1 ? rng->UniformInt(1, profile.wal_bytes - 1) : 0;
  return point;
}

int64_t CrashInjector::AllowWalBytes(int64_t want) {
  if (!armed()) return want;
  if (fired_) return 0;
  if (point_.kind != CrashPoint::Kind::kWalOffset) {
    wal_written_ += want;
    return want;
  }
  const int64_t budget = std::max<int64_t>(0, point_.wal_offset - wal_written_);
  const int64_t allowed = std::min(want, budget);
  wal_written_ += allowed;
  if (allowed < want) fired_ = true;
  return allowed;
}

int64_t CrashInjector::AllowCheckpointBytes(int64_t gen, int64_t want) {
  if (!armed()) return want;
  if (fired_) return 0;
  if (point_.kind != CrashPoint::Kind::kCheckpoint ||
      gen != point_.checkpoint_gen) {
    return want;
  }
  const int64_t budget =
      std::max<int64_t>(0, point_.checkpoint_offset - checkpoint_written_);
  const int64_t allowed = std::min(want, budget);
  checkpoint_written_ += allowed;
  if (allowed < want) fired_ = true;
  return allowed;
}

}  // namespace recovery
}  // namespace comx
