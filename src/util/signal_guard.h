// SIGINT/SIGTERM shutdown guard for the CLI tools: on the first signal the
// handler best-effort flushes every registered stdio stream (traces,
// metrics, WAL — so an interrupted run leaves recoverable artifacts, not
// torn files) and exits with the conventional 128 + signo code, which is
// distinct from every tool's own exit codes.
//
// Async-signal-safety: the handler only walks a fixed array of atomic
// FILE* slots, calls fflush/fsync on each, and _exit()s. fflush is not on
// the POSIX async-signal-safe list but is safe here in practice for the
// single-threaded tools that install this guard; a stream being written at
// the moment of the signal may at worst leave one torn final line — which
// the lenient trace/profile readers (obs/trace.h, tools/perf_report) are
// built to tolerate.

#ifndef COMX_UTIL_SIGNAL_GUARD_H_
#define COMX_UTIL_SIGNAL_GUARD_H_

#include <cstdio>

namespace comx {

/// Installs the SIGINT/SIGTERM handler. Idempotent.
void InstallShutdownGuard();

/// True once a shutdown signal was received. With the default handler the
/// process _exit()s inside the handler, so this is observable only in the
/// narrow window before exit (it exists for tests that raise() and for
/// future cooperative-shutdown callers).
bool ShutdownRequested();

/// Registers `f` for best-effort fflush + fsync when a signal arrives.
/// Bounded capacity (see kMaxShutdownFiles); extra registrations are
/// silently dropped. Pass the same pointer to Unregister before closing.
void RegisterShutdownFlushFile(std::FILE* f);
void UnregisterShutdownFlushFile(std::FILE* f);

/// Number of FILE* slots the guard can track.
inline constexpr int kMaxShutdownFiles = 16;

/// The exit code the guard uses for signal `signo` (128 + signo).
int ShutdownExitCode(int signo);

}  // namespace comx

#endif  // COMX_UTIL_SIGNAL_GUARD_H_
