#include "exp/sweep_runner.h"

#include <atomic>
#include <mutex>
#include <set>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "obs/metrics_registry.h"
#include "util/status.h"

namespace comx {
namespace exp {
namespace {

TEST(JobSeedTest, DeterministicAndCollisionFreePerBase) {
  std::set<uint64_t> seen;
  for (uint64_t i = 0; i < 1000; ++i) {
    const uint64_t seed = JobSeed(42, i);
    EXPECT_EQ(seed, JobSeed(42, i)) << "unstable at " << i;
    EXPECT_TRUE(seen.insert(seed).second) << "collision at " << i;
  }
  // Different bases give different streams for the same index.
  EXPECT_NE(JobSeed(42, 7), JobSeed(43, 7));
}

TEST(JobSeedTest, JobRngStreamsAreIndependent) {
  Rng a = JobRng(1, 0);
  Rng b = JobRng(1, 1);
  int differing = 0;
  for (int i = 0; i < 16; ++i) {
    if (a.NextUint64() != b.NextUint64()) ++differing;
  }
  EXPECT_GT(differing, 0);
}

TEST(SweepRunnerTest, SerialRunsJobsInOrderWithGridCoordinates) {
  std::vector<SweepJob> seen;
  SweepRunner runner;  // default: jobs = 1, inline
  ASSERT_TRUE(runner.Run(3, 2, [&](const SweepJob& job) {
                seen.push_back(job);
                return Status::OK();
              }).ok());
  ASSERT_EQ(seen.size(), 6u);
  EXPECT_FALSE(runner.report().parallel);
  EXPECT_EQ(runner.report().job_count, 6u);
  for (size_t i = 0; i < seen.size(); ++i) {
    EXPECT_EQ(seen[i].job_index, i);
    EXPECT_EQ(seen[i].config_index, i / 2);
    EXPECT_EQ(seen[i].seed_index, i % 2);
  }
}

TEST(SweepRunnerTest, ParallelResultsMatchSerialBitForBit) {
  auto run = [](int jobs) {
    std::vector<uint64_t> slots(24, 0);
    SweepOptions options;
    options.jobs = jobs;
    SweepRunner runner(options);
    EXPECT_TRUE(runner.Run(4, 6, [&](const SweepJob& job) {
                  // Derived only from the job's grid coordinates — what a
                  // well-behaved simulation job does with its seed.
                  slots[job.job_index] =
                      JobSeed(99, job.job_index) ^ job.config_index;
                  return Status::OK();
                }).ok());
    return slots;
  };
  const auto serial = run(1);
  const auto parallel = run(8);
  EXPECT_EQ(serial, parallel);
}

TEST(SweepRunnerTest, EveryJobRunsExactlyOnceInParallel) {
  std::atomic<int> calls{0};
  std::mutex mu;
  std::set<size_t> indices;
  SweepOptions options;
  options.jobs = 8;
  SweepRunner runner(options);
  ASSERT_TRUE(runner.Run(5, 5, [&](const SweepJob& job) {
                calls.fetch_add(1);
                std::lock_guard<std::mutex> lock(mu);
                indices.insert(job.job_index);
                return Status::OK();
              }).ok());
  EXPECT_EQ(calls.load(), 25);
  EXPECT_EQ(indices.size(), 25u);
  EXPECT_TRUE(runner.report().parallel);
}

TEST(SweepRunnerTest, RecordsPerJobWallTimeAndLatency) {
  for (int jobs : {1, 4}) {
    SweepOptions options;
    options.jobs = jobs;
    SweepRunner runner(options);
    ASSERT_TRUE(
        runner.Run(3, 2, [](const SweepJob&) { return Status::OK(); }).ok());
    const SweepReport& report = runner.report();
    // One wall-clock slot per job, every one filled (non-negative; zero is
    // possible only if the clock doesn't tick inside the job).
    ASSERT_EQ(report.job_wall_seconds.size(), 6u);
    for (double secs : report.job_wall_seconds) {
      EXPECT_GE(secs, 0.0);
    }
    // The pooled latency snapshot counts exactly one entry per job,
    // regardless of parallelism.
    EXPECT_EQ(report.job_latency.count, 6);
    EXPECT_GE(report.job_latency.max_nanos, 0);
  }
}

TEST(SweepRunnerTest, ReportsFirstErrorInJobOrderAtAnyJobCount) {
  for (int jobs : {1, 8}) {
    SweepOptions options;
    options.jobs = jobs;
    SweepRunner runner(options);
    std::atomic<int> calls{0};
    const Status status = runner.Run(1, 10, [&](const SweepJob& job) {
      calls.fetch_add(1);
      if (job.job_index == 3 || job.job_index == 7) {
        return Status::InvalidArgument("job " +
                                       std::to_string(job.job_index));
      }
      return Status::OK();
    });
    ASSERT_FALSE(status.ok()) << "jobs=" << jobs;
    // The earliest failing job wins regardless of completion order, and
    // the sweep still ran everything.
    EXPECT_NE(status.message().find("job 3"), std::string::npos)
        << "jobs=" << jobs << ": " << status.ToString();
    EXPECT_EQ(calls.load(), 10) << "jobs=" << jobs;
  }
}

TEST(SweepRunnerTest, ReusesCallerOwnedPoolAcrossRuns) {
  ThreadPool pool(3);
  SweepOptions options;
  options.pool = &pool;
  SweepRunner runner(options);
  for (int round = 0; round < 3; ++round) {
    std::atomic<int> calls{0};
    ASSERT_TRUE(runner.Run(2, 4, [&](const SweepJob&) {
                  calls.fetch_add(1);
                  return Status::OK();
                }).ok());
    EXPECT_EQ(calls.load(), 8);
    EXPECT_TRUE(runner.report().parallel);
  }
}

int64_t CounterValue(const obs::MetricsSnapshot& snap, const char* name) {
  for (const auto& counter : snap.counters) {
    if (counter.name == name) return counter.value;
  }
  return -1;
}

TEST(SweepRunnerTest, SerialCaptureAttributesMetricsPerJob) {
  obs::SetCollectionEnabled(true);
  obs::Counter* counter = obs::MetricsRegistry::Global().GetCounter(
      "comx_test_sweep_serial_total");
  SweepOptions options;
  options.capture_metrics = true;
  SweepRunner runner(options);
  ASSERT_TRUE(runner.Run(1, 4, [&](const SweepJob& job) {
                counter->Inc(static_cast<int64_t>(job.job_index) + 1);
                return Status::OK();
              }).ok());
  obs::SetCollectionEnabled(false);
  const SweepReport& report = runner.report();
  ASSERT_EQ(report.per_job_metrics.size(), 4u);
  for (size_t i = 0; i < 4; ++i) {
    EXPECT_EQ(CounterValue(report.per_job_metrics[i],
                           "comx_test_sweep_serial_total"),
              static_cast<int64_t>(i) + 1);
  }
  EXPECT_EQ(CounterValue(report.sweep_metrics,
                         "comx_test_sweep_serial_total"),
            1 + 2 + 3 + 4);
}

TEST(SweepRunnerTest, ParallelCaptureFallsBackToSweepWideDiff) {
  obs::SetCollectionEnabled(true);
  obs::Counter* counter = obs::MetricsRegistry::Global().GetCounter(
      "comx_test_sweep_parallel_total");
  SweepOptions options;
  options.jobs = 4;
  options.capture_metrics = true;
  SweepRunner runner(options);
  ASSERT_TRUE(runner.Run(2, 4, [&](const SweepJob&) {
                counter->Inc();
                return Status::OK();
              }).ok());
  obs::SetCollectionEnabled(false);
  const SweepReport& report = runner.report();
  // Per-job attribution is impossible when jobs share the global registry
  // concurrently — the engine must not fabricate it.
  EXPECT_TRUE(report.per_job_metrics.empty());
  EXPECT_EQ(CounterValue(report.sweep_metrics,
                         "comx_test_sweep_parallel_total"),
            8);
}

TEST(DiffSnapshotsTest, SubtractsCountersAndHistogramsKeepsGauges) {
  obs::MetricsSnapshot before, after;
  before.counters.push_back({"a", "", 5});
  after.counters.push_back({"a", "", 9});
  after.counters.push_back({"b", "", 3});  // registered mid-window
  before.gauges.push_back({"g", "", 1.0});
  after.gauges.push_back({"g", "", 2.5});
  before.histograms.push_back({"h", "", {1.0}, {2, 1}, 3, 4.0});
  after.histograms.push_back({"h", "", {1.0}, {5, 2}, 7, 10.0});
  const obs::MetricsSnapshot diff = obs::DiffSnapshots(before, after);
  ASSERT_EQ(diff.counters.size(), 2u);
  EXPECT_EQ(diff.counters[0].value, 4);
  EXPECT_EQ(diff.counters[1].value, 3);
  ASSERT_EQ(diff.gauges.size(), 1u);
  EXPECT_DOUBLE_EQ(diff.gauges[0].value, 2.5);
  ASSERT_EQ(diff.histograms.size(), 1u);
  EXPECT_EQ(diff.histograms[0].counts, (std::vector<int64_t>{3, 1}));
  EXPECT_EQ(diff.histograms[0].count, 4);
  EXPECT_DOUBLE_EQ(diff.histograms[0].sum, 6.0);
}

}  // namespace
}  // namespace exp
}  // namespace comx
