# Empty compiler generated dependencies file for comx_sim_test.
# This may be replaced when dependencies are built.
