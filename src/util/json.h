// Minimal JSON support for the observability layer and machine-readable
// result output: a streaming writer (objects, arrays, scalars, escaping)
// and a strict parser for *flat* objects of scalars — exactly the shape of
// our JSONL trace records and metric snapshots. Not a general JSON library.

#ifndef COMX_UTIL_JSON_H_
#define COMX_UTIL_JSON_H_

#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "util/result.h"

namespace comx {

/// Escapes `s` for embedding inside a JSON string literal (no quotes added).
std::string JsonEscape(std::string_view s);

/// Formats a double so it round-trips exactly through ParseDouble
/// (shortest-exact via %.17g, with inf/nan mapped to null).
std::string JsonDouble(double v);

/// Append-only JSON builder. The caller drives structure via Begin/End
/// calls; commas are inserted automatically. No validation beyond balanced
/// nesting is attempted — this is a formatting helper, not a DOM.
class JsonWriter {
 public:
  JsonWriter& BeginObject();
  JsonWriter& EndObject();
  JsonWriter& BeginArray();
  JsonWriter& EndArray();

  /// Starts a "key": inside an object; follow with a value or Begin*.
  JsonWriter& Key(std::string_view key);

  JsonWriter& Value(std::string_view v);
  JsonWriter& Value(const char* v) { return Value(std::string_view(v)); }
  JsonWriter& Value(double v);
  JsonWriter& Value(int64_t v);
  JsonWriter& Value(int32_t v) { return Value(static_cast<int64_t>(v)); }
  JsonWriter& Value(bool v);
  JsonWriter& Null();

  /// Splices pre-rendered JSON in as one value (no quoting or escaping).
  /// The caller is responsible for `json` being well-formed.
  JsonWriter& Raw(std::string_view json);

  /// Key + scalar in one call.
  template <typename T>
  JsonWriter& KV(std::string_view key, const T& v) {
    Key(key);
    return Value(v);
  }

  const std::string& str() const { return out_; }
  std::string TakeString() { return std::move(out_); }

 private:
  void MaybeComma();

  std::string out_;
  // Whether the current nesting level already holds an element.
  std::vector<bool> has_element_{false};
  bool pending_key_ = false;
};

/// One scalar field of a flat JSON object.
struct JsonScalar {
  enum class Kind { kString, kNumber, kBool, kNull };
  Kind kind = Kind::kNull;
  std::string string_value;
  double number_value = 0.0;
  bool bool_value = false;
};

/// Parses a single-line, non-nested JSON object such as
/// {"a": 1, "b": "x", "c": true}. Errors on nested objects/arrays,
/// duplicate keys, or malformed syntax.
Result<std::map<std::string, JsonScalar>> ParseJsonFlatObject(
    std::string_view line);

}  // namespace comx

#endif  // COMX_UTIL_JSON_H_
