#include "core/ranking.h"

namespace comx {

void Ranking::Reset(const Instance& instance, PlatformId /*platform*/,
                    uint64_t seed) {
  Rng rng(seed);
  ranks_.resize(instance.workers().size());
  for (double& rank : ranks_) rank = rng.NextDouble();
}

Decision Ranking::OnRequest(const Request& r, const PlatformView& view) {
  const std::vector<WorkerId> inner = view.FeasibleInnerWorkers(r);
  WorkerId best = kInvalidId;
  double best_rank = 2.0;
  for (WorkerId w : inner) {
    const double rank = ranks_[static_cast<size_t>(w)];
    if (rank < best_rank) {
      best_rank = rank;
      best = w;
    }
  }
  if (best == kInvalidId) return Decision::Reject();
  return Decision::Inner(best);
}

Status Ranking::SaveState(ByteWriter* out) const {
  out->U64(static_cast<uint64_t>(ranks_.size()));
  for (double rank : ranks_) out->F64(rank);
  return Status::OK();
}

Status Ranking::RestoreState(ByteReader* in) {
  uint64_t n;
  COMX_RETURN_IF_ERROR(in->U64(&n));
  if (n > in->Remaining() / sizeof(double)) {
    return Status::OutOfRange("RANKING state: rank count past buffer end");
  }
  ranks_.resize(static_cast<size_t>(n));
  for (double& rank : ranks_) COMX_RETURN_IF_ERROR(in->F64(&rank));
  return Status::OK();
}

}  // namespace comx
