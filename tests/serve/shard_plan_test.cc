// Geo-shard plan (src/serve/shard_plan.h): the shards==1 verbatim-copy
// guarantee the bit-identity acceptance test rests on, plus coverage /
// renumbering invariants for real stripe counts.

#include "serve/shard_plan.h"

#include <vector>

#include <gtest/gtest.h>

#include "datagen/synthetic.h"
#include "testing/builders.h"

namespace comx {
namespace serve {
namespace {

Instance SmallSynthetic(uint64_t seed = 7) {
  SyntheticConfig config;
  config.platforms = 2;
  config.requests_per_platform = {40};
  config.workers_per_platform = {20};
  config.seed = seed;
  auto instance = GenerateSynthetic(config);
  EXPECT_TRUE(instance.ok()) << instance.status().ToString();
  return std::move(instance).value();
}

TEST(ShardPlanTest, OneShardIsVerbatimCopy) {
  const Instance ins = testing_fixtures::PaperExample();
  auto plan = PartitionInstance(ins, 1);
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  ASSERT_EQ(plan->shards, 1);
  ASSERT_EQ(plan->instances.size(), 1u);

  const Instance& copy = plan->instances[0];
  ASSERT_EQ(copy.workers().size(), ins.workers().size());
  ASSERT_EQ(copy.requests().size(), ins.requests().size());
  ASSERT_EQ(copy.events().size(), ins.events().size());
  // Same ids, same sequences: not merely equivalent, identical.
  for (size_t i = 0; i < ins.events().size(); ++i) {
    EXPECT_EQ(copy.events()[i], ins.events()[i]);
    EXPECT_EQ(plan->shard_of_event[i], 0);
    EXPECT_EQ(plan->local_index_of_event[i], static_cast<int64_t>(i));
  }
  for (size_t w = 0; w < ins.workers().size(); ++w) {
    EXPECT_EQ(plan->global_worker_of[0][w], static_cast<WorkerId>(w));
  }
  for (size_t r = 0; r < ins.requests().size(); ++r) {
    EXPECT_EQ(plan->global_request_of[0][r], static_cast<RequestId>(r));
  }
}

TEST(ShardPlanTest, StripesCoverEveryEntityAndEventExactlyOnce) {
  const Instance ins = SmallSynthetic();
  const int32_t shards = 4;
  auto plan = PartitionInstance(ins, shards);
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  ASSERT_EQ(plan->instances.size(), static_cast<size_t>(shards));
  ASSERT_EQ(plan->shard_of_event.size(), ins.events().size());

  // Each sub-instance is independently valid.
  for (const Instance& sub : plan->instances) {
    EXPECT_TRUE(sub.Validate().ok());
  }

  // Entity coverage: the inverse maps partition the global id spaces.
  std::vector<int> worker_seen(ins.workers().size(), 0);
  std::vector<int> request_seen(ins.requests().size(), 0);
  size_t total_events = 0;
  for (int32_t k = 0; k < shards; ++k) {
    const Instance& sub = plan->instances[static_cast<size_t>(k)];
    total_events += sub.events().size();
    ASSERT_EQ(plan->global_worker_of[static_cast<size_t>(k)].size(),
              sub.workers().size());
    ASSERT_EQ(plan->global_request_of[static_cast<size_t>(k)].size(),
              sub.requests().size());
    for (const WorkerId g : plan->global_worker_of[static_cast<size_t>(k)]) {
      ASSERT_GE(g, 0);
      ASSERT_LT(static_cast<size_t>(g), worker_seen.size());
      ++worker_seen[static_cast<size_t>(g)];
    }
    for (const RequestId g : plan->global_request_of[static_cast<size_t>(k)]) {
      ASSERT_GE(g, 0);
      ASSERT_LT(static_cast<size_t>(g), request_seen.size());
      ++request_seen[static_cast<size_t>(g)];
    }
  }
  EXPECT_EQ(total_events, ins.events().size());
  for (const int n : worker_seen) EXPECT_EQ(n, 1);
  for (const int n : request_seen) EXPECT_EQ(n, 1);

  // Event routing: walking the global stream and popping each shard's
  // local stream in order must consume both exactly (relative order within
  // a shard is the global relative order; sequences renumbered densely).
  std::vector<int64_t> next_local(static_cast<size_t>(shards), 0);
  for (size_t i = 0; i < ins.events().size(); ++i) {
    const int32_t k = plan->shard_of_event[i];
    ASSERT_GE(k, 0);
    ASSERT_LT(k, shards);
    const int64_t local = plan->local_index_of_event[i];
    EXPECT_EQ(local, next_local[static_cast<size_t>(k)]);
    const Event& ev = plan->instances[static_cast<size_t>(k)]
                          .events()[static_cast<size_t>(local)];
    EXPECT_EQ(ev.time, ins.events()[i].time);
    EXPECT_EQ(ev.kind, ins.events()[i].kind);
    EXPECT_EQ(ev.sequence, local);  // renumbered 0..n_k-1 in stream order
    ++next_local[static_cast<size_t>(k)];
  }
}

TEST(ShardPlanTest, EntityFieldsSurviveRenumbering) {
  const Instance ins = SmallSynthetic(11);
  auto plan = PartitionInstance(ins, 3);
  ASSERT_TRUE(plan.ok());
  for (int32_t k = 0; k < plan->shards; ++k) {
    const Instance& sub = plan->instances[static_cast<size_t>(k)];
    const auto& wmap = plan->global_worker_of[static_cast<size_t>(k)];
    // Local ids are assigned in ascending global-id order, so id-based
    // tie-breaking inside the shard is order-isomorphic to the input.
    for (size_t w = 1; w < wmap.size(); ++w) EXPECT_LT(wmap[w - 1], wmap[w]);
    for (size_t w = 0; w < wmap.size(); ++w) {
      const Worker& local = sub.workers()[w];
      const Worker& global = ins.worker(wmap[w]);
      EXPECT_EQ(local.id, static_cast<WorkerId>(w));
      EXPECT_EQ(local.platform, global.platform);
      EXPECT_EQ(local.time, global.time);
      EXPECT_EQ(local.location.x, global.location.x);
      EXPECT_EQ(local.location.y, global.location.y);
      EXPECT_EQ(local.radius, global.radius);
      EXPECT_EQ(local.history, global.history);
    }
    const auto& rmap = plan->global_request_of[static_cast<size_t>(k)];
    for (size_t r = 0; r < rmap.size(); ++r) {
      const Request& local = sub.requests()[r];
      const Request& global = ins.request(rmap[r]);
      EXPECT_EQ(local.id, static_cast<RequestId>(r));
      EXPECT_EQ(local.platform, global.platform);
      EXPECT_EQ(local.value, global.value);
    }
  }
}

TEST(ShardPlanTest, MoreShardsThanEntitiesYieldsEmptyShards) {
  const Instance ins = testing_fixtures::PaperExample();
  auto plan = PartitionInstance(ins, 64);
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  size_t total_events = 0, empty = 0;
  for (const Instance& sub : plan->instances) {
    total_events += sub.events().size();
    if (sub.events().empty()) ++empty;
  }
  EXPECT_EQ(total_events, ins.events().size());
  EXPECT_GT(empty, 0u);  // 10 entities cannot populate 64 stripes
}

TEST(ShardPlanTest, RejectsNonPositiveShardCount) {
  const Instance ins = testing_fixtures::PaperExample();
  EXPECT_FALSE(PartitionInstance(ins, 0).ok());
  EXPECT_FALSE(PartitionInstance(ins, -3).ok());
}

}  // namespace
}  // namespace serve
}  // namespace comx
