#include "obs/profiler.h"

#include <algorithm>
#include <cstring>
#include <fstream>

#include "obs/metrics_registry.h"
#include "util/atomic_file.h"
#include "util/json.h"
#include "util/string_util.h"

namespace comx {
namespace obs {

namespace internal {
namespace {
thread_local int32_t tl_current_node = kProfilerRootNode;
thread_local int64_t* tl_child_nanos = nullptr;
}  // namespace

int32_t CurrentThreadNode() { return tl_current_node; }
void SetCurrentThreadNode(int32_t node) { tl_current_node = node; }
int64_t** ThreadChildNanosSlot() { return &tl_child_nanos; }

}  // namespace internal

struct SpanProfiler::ChildLink {
  int site;
  int32_t node;
  ChildLink* next;  // immutable after publication
};

struct SpanProfiler::Node {
  int site;
  int32_t parent;
  int32_t depth;
  std::atomic<ChildLink*> children{nullptr};
  struct alignas(64) Cell {
    std::atomic<int64_t> count{0};
    std::atomic<int64_t> total{0};
    std::atomic<int64_t> self{0};
  };
  std::array<Cell, kShardCount> cells;
  LatencyHistogram hist;

  Node(int site_in, int32_t parent_in, int32_t depth_in)
      : site(site_in), parent(parent_in), depth(depth_in) {}
};

SpanProfiler& SpanProfiler::Global() {
  static SpanProfiler* profiler = new SpanProfiler();
  return *profiler;
}

SpanProfiler::SpanProfiler()
    : nodes_(kProfilerMaxNodes), site_names_(kProfilerMaxSites) {
  for (auto& slot : nodes_) slot.store(nullptr, std::memory_order_relaxed);
  for (auto& name : site_names_) {
    name.store(nullptr, std::memory_order_relaxed);
  }
  // Root: synthetic node every thread starts at. Never freed (nor is any
  // other node): lock-free readers may hold a Node* indefinitely and the
  // profiler is a process-lifetime singleton.
  nodes_[kProfilerRootNode].store(
      new Node(/*site=*/-1, kProfilerInvalidNode, /*depth=*/0),
      std::memory_order_release);
  node_count_.store(1, std::memory_order_release);
}

int SpanProfiler::RegisterSite(const char* phase) {
  std::lock_guard<std::mutex> lock(mu_);
  const int n = site_count_.load(std::memory_order_relaxed);
  for (int i = 0; i < n; ++i) {
    const char* existing = site_names_[static_cast<size_t>(i)].load(
        std::memory_order_relaxed);
    if (std::strcmp(existing, phase) == 0) return i;
  }
  if (n >= kProfilerMaxSites) return -1;
  site_names_[static_cast<size_t>(n)].store(phase,
                                            std::memory_order_release);
  site_count_.store(n + 1, std::memory_order_release);
  return n;
}

std::string SpanProfiler::SiteName(int site) const {
  if (site < 0 || site >= site_count_.load(std::memory_order_acquire)) {
    return "";
  }
  const char* name =
      site_names_[static_cast<size_t>(site)].load(std::memory_order_acquire);
  return name == nullptr ? "" : std::string(name);
}

int32_t SpanProfiler::EnterChild(int32_t parent, int site) {
  if (parent == kProfilerInvalidNode || site < 0) {
    return kProfilerInvalidNode;
  }
  Node* parent_node = NodeAt(parent);
  if (parent_node->depth >= kProfilerMaxDepth) return kProfilerInvalidNode;
  for (ChildLink* link =
           parent_node->children.load(std::memory_order_acquire);
       link != nullptr; link = link->next) {
    if (link->site == site) return link->node;
  }
  std::lock_guard<std::mutex> lock(mu_);
  // Re-check under the lock: another thread may have created it.
  ChildLink* head = parent_node->children.load(std::memory_order_acquire);
  for (ChildLink* link = head; link != nullptr; link = link->next) {
    if (link->site == site) return link->node;
  }
  const int32_t id = node_count_.load(std::memory_order_relaxed);
  if (id >= kProfilerMaxNodes) return kProfilerInvalidNode;
  nodes_[static_cast<size_t>(id)].store(
      new Node(site, parent, parent_node->depth + 1),
      std::memory_order_release);
  node_count_.store(id + 1, std::memory_order_release);
  parent_node->children.store(new ChildLink{site, id, head},
                              std::memory_order_release);
  return id;
}

void SpanProfiler::RecordSpan(int32_t node, int64_t total_nanos,
                              int64_t self_nanos) {
  if (node == kProfilerInvalidNode) return;
  Node* n = NodeAt(node);
  Node::Cell& cell = n->cells[internal::ThisThreadShard()];
  cell.count.fetch_add(1, std::memory_order_relaxed);
  cell.total.fetch_add(total_nanos, std::memory_order_relaxed);
  cell.self.fetch_add(self_nanos, std::memory_order_relaxed);
  n->hist.ObserveNanos(total_nanos);
}

std::vector<ProfileNode> SpanProfiler::Snapshot() const {
  const int32_t n = node_count_.load(std::memory_order_acquire);
  std::vector<ProfileNode> out(static_cast<size_t>(n));
  for (int32_t id = 0; id < n; ++id) {
    const Node* node = NodeAt(id);
    ProfileNode& p = out[static_cast<size_t>(id)];
    p.node = id;
    p.parent = node->parent;
    p.depth = node->depth;
    p.phase = SiteName(node->site);
    // parent < id by creation order, so its path is already resolved.
    if (node->parent != kProfilerInvalidNode) {
      const std::string& parent_path =
          out[static_cast<size_t>(node->parent)].path;
      p.path = parent_path.empty() ? p.phase : parent_path + ";" + p.phase;
    }
    for (const Node::Cell& cell : node->cells) {
      p.count += cell.count.load(std::memory_order_relaxed);
      p.total_nanos += cell.total.load(std::memory_order_relaxed);
      p.self_nanos += cell.self.load(std::memory_order_relaxed);
    }
    p.latency = node->hist.Snapshot();
  }
  return out;
}

std::string SpanProfiler::CollapsedStacks() const {
  std::string out;
  for (const ProfileNode& node : Snapshot()) {
    if (node.node == kProfilerRootNode || node.count <= 0) continue;
    out += node.path;
    out += ' ';
    out += std::to_string(std::max<int64_t>(node.self_nanos, 0));
    out += '\n';
  }
  return out;
}

std::string SpanProfiler::ProfileJsonl() const {
  const std::vector<ProfileNode> nodes = Snapshot();
  std::string out;
  {
    JsonWriter header;
    header.BeginObject()
        .KV("schema", kProfileSchema)
        .KV("nodes", static_cast<int64_t>(nodes.size()))
        .EndObject();
    out += header.str();
    out += '\n';
  }
  for (const ProfileNode& node : nodes) {
    if (node.node == kProfilerRootNode || node.count <= 0) continue;
    JsonWriter w;
    w.BeginObject()
        .KV("node", node.node)
        .KV("parent", node.parent)
        .KV("depth", node.depth)
        .KV("phase", node.phase)
        .KV("path", node.path)
        .KV("count", node.count)
        .KV("total_ns", node.total_nanos)
        .KV("self_ns", node.self_nanos)
        .KV("p50_ns", node.latency.ValueAtQuantileNanos(0.50))
        .KV("p90_ns", node.latency.ValueAtQuantileNanos(0.90))
        .KV("p99_ns", node.latency.ValueAtQuantileNanos(0.99))
        .KV("p999_ns", node.latency.ValueAtQuantileNanos(0.999))
        .KV("max_ns", node.latency.max_nanos)
        .EndObject();
    out += w.str();
    out += '\n';
  }
  return out;
}

Status SpanProfiler::WriteProfile(const std::string& path) const {
  return AtomicWriteFile(path, ProfileJsonl());
}

void SpanProfiler::ResetStats() {
  const int32_t n = node_count_.load(std::memory_order_acquire);
  for (int32_t id = 0; id < n; ++id) {
    Node* node = NodeAt(id);
    for (Node::Cell& cell : node->cells) {
      cell.count.store(0, std::memory_order_relaxed);
      cell.total.store(0, std::memory_order_relaxed);
      cell.self.store(0, std::memory_order_relaxed);
    }
    node->hist.Reset();
  }
}

}  // namespace obs
}  // namespace comx
