// Simulator-level tests of reservation-mode acceptance: online revenue can
// never exceed the offline optimum when both share one reservation
// realization — the property the CR harness relies on.

#include <gtest/gtest.h>

#include "core/dem_com.h"
#include "core/offline_opt.h"
#include "core/ram_com.h"
#include "datagen/synthetic.h"
#include "model/arrival_stream.h"
#include "sim/simulator.h"
#include "testing/builders.h"

namespace comx {
namespace {

Instance SmallInstance(uint64_t seed) {
  SyntheticConfig config;
  config.requests_per_platform = {40};
  config.workers_per_platform = {15};
  config.seed = seed;
  return std::move(GenerateSynthetic(config)).value();
}

SimConfig ReservationConfig(uint64_t rho_seed) {
  SimConfig c;
  c.workers_recycle = false;
  c.measure_response_time = false;
  c.acceptance_mode = AcceptanceMode::kReservation;
  c.reservation_seed = rho_seed;
  return c;
}

double OfflineTotal(const Instance& ins, uint64_t rho_seed) {
  double total = 0.0;
  for (PlatformId p = 0; p < ins.PlatformCount(); ++p) {
    OfflineConfig off;
    off.seed = rho_seed;
    auto sol = SolveOffline(ins, p, off);
    EXPECT_TRUE(sol.ok());
    total += sol->matching.total_revenue;
  }
  return total;
}

template <typename Matcher>
double OnlineTotal(const Instance& ins, const SimConfig& config,
                   uint64_t seed) {
  Matcher m0, m1;
  auto r = RunSimulation(ins, {&m0, &m1}, config, seed);
  EXPECT_TRUE(r.ok()) << r.status();
  EXPECT_TRUE(AuditSimResult(ins, config, *r).ok());
  return r->metrics.TotalRevenue();
}

class ReservationDominanceTest : public testing::TestWithParam<uint64_t> {};

TEST_P(ReservationDominanceTest, OnlineNeverExceedsOfflineDemCom) {
  const uint64_t seed = GetParam();
  const Instance ins = SmallInstance(seed);
  const SimConfig config = ReservationConfig(seed + 100);
  const double opt = OfflineTotal(ins, seed + 100);
  for (uint64_t s = 0; s < 5; ++s) {
    EXPECT_LE(OnlineTotal<DemCom>(ins, config, s), opt + 1e-6)
        << "instance seed " << seed << " matcher seed " << s;
  }
}

TEST_P(ReservationDominanceTest, OnlineNeverExceedsOfflineRamCom) {
  const uint64_t seed = GetParam();
  const Instance ins = SmallInstance(seed);
  const SimConfig config = ReservationConfig(seed + 100);
  const double opt = OfflineTotal(ins, seed + 100);
  for (uint64_t s = 0; s < 5; ++s) {
    EXPECT_LE(OnlineTotal<RamCom>(ins, config, s), opt + 1e-6);
  }
}

TEST_P(ReservationDominanceTest, HoldsUnderRandomOrders) {
  const uint64_t seed = GetParam();
  const Instance base = SmallInstance(seed);
  Rng rng(seed);
  const Instance ordered = RandomOrderCopy(base, &rng);
  const SimConfig config = ReservationConfig(seed + 200);
  const double opt = OfflineTotal(ordered, seed + 200);
  EXPECT_LE(OnlineTotal<DemCom>(ordered, config, 1), opt + 1e-6);
  EXPECT_LE(OnlineTotal<RamCom>(ordered, config, 1), opt + 1e-6);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ReservationDominanceTest,
                         testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

TEST(ReservationModeTest, MismatchedSeedsCanExceedOpt) {
  // Sanity of the coupling requirement: with a *different* reservation
  // realization than OFF's, online totals are no longer bounded by that
  // OFF value for every seed (they may be, but the guarantee is gone).
  // We only check that both runs are feasible — the dominance assertions
  // above are what prove the coupled case.
  const Instance ins = SmallInstance(9);
  SimConfig config = ReservationConfig(1234);
  DemCom m0, m1;
  auto r = RunSimulation(ins, {&m0, &m1}, config, 1);
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(AuditSimResult(ins, config, *r).ok());
}

TEST(ReservationModeTest, DeterministicOutcomeForDemCom) {
  // In reservation mode the only randomness left in DemCOM is Algorithm
  // 2's sampling; with a fixed matcher seed, runs are identical.
  const Instance ins = SmallInstance(11);
  const SimConfig config = ReservationConfig(500);
  const double a = OnlineTotal<DemCom>(ins, config, 3);
  const double b = OnlineTotal<DemCom>(ins, config, 3);
  EXPECT_DOUBLE_EQ(a, b);
}

}  // namespace
}  // namespace comx
