# Empty compiler generated dependencies file for comx_bench_common.
# This may be replaced when dependencies are built.
