// Fig. 5(i)-(l): total revenue, response time, memory, and acceptance ratio
// versus the service radius rad (Table IV sweep).

#include "fig5_common.h"

int main(int argc, char** argv) {
  using comx::bench::SweepPoint;
  const int seeds =
      static_cast<int>(comx::bench::ArgInt(argc, argv, "--seeds", 6));
  const int jobs =
      static_cast<int>(comx::bench::ArgInt(argc, argv, "--jobs", 1));
  std::vector<SweepPoint> points;
  for (double rad : {0.5, 1.0, 1.5, 2.0, 2.5}) {
    char label[32];
    std::snprintf(label, sizeof(label), "rad=%.1f", rad);
    points.push_back(SweepPoint{label, 2500, 500, rad});
  }
  comx::bench::RunSweep("Fig. 5(i)-(l)", "rad", points, seeds,
                        "bench_fig5_rad.csv", jobs);
  std::printf("\nexpected shapes (paper): revenue rises slightly with rad "
              "(RamCOM highest, DemCOM just above TOTA); response time "
              "roughly flat (RamCOM creeping up); memory flat; RamCOM "
              "acceptance rises with rad while DemCOM's peaks near 1.5 km "
              "and then falls.\n");
  return 0;
}
