# Empty dependencies file for comx_integration_test.
# This may be replaced when dependencies are built.
