// Cross-solver property sweeps: relationships that must hold between the
// four matchers on arbitrary graphs.

#include <gtest/gtest.h>

#include "matching/brute_force.h"
#include "matching/greedy_offline.h"
#include "matching/hopcroft_karp.h"
#include "matching/hungarian.h"
#include "matching/min_cost_flow.h"
#include "util/rng.h"

namespace comx {
namespace {

using testing_fixtures::RandomGraph;

struct SweepParam {
  int seed;
  int32_t left;
  int32_t right;
  double density;
};

class MatcherPropertyTest : public testing::TestWithParam<SweepParam> {};

TEST_P(MatcherPropertyTest, SolverOrderingsHold) {
  const SweepParam p = GetParam();
  Rng rng(static_cast<uint64_t>(p.seed) * 31 + 1);
  const BipartiteGraph g = RandomGraph(p.left, p.right, p.density, &rng);

  auto hung = HungarianMaxWeight(g);
  auto flow = MinCostFlowMaxWeight(g);
  ASSERT_TRUE(hung.ok());
  ASSERT_TRUE(flow.ok());
  const auto greedy = GreedyMaxWeight(g);
  const auto hk = HopcroftKarpMaxCardinality(g);

  // Exact solvers agree.
  EXPECT_NEAR(hung->total_weight, flow->total_weight, 1e-6);
  // Greedy is sandwiched between half-opt and opt.
  EXPECT_GE(greedy.total_weight + 1e-9, 0.5 * hung->total_weight);
  EXPECT_LE(greedy.total_weight, hung->total_weight + 1e-9);
  // No weight-matching can exceed max-cardinality * max-edge-weight.
  double max_w = 0.0;
  for (const auto& e : g.edges()) max_w = std::max(max_w, e.weight);
  EXPECT_LE(hung->total_weight, hk.size * max_w + 1e-9);
  // Max-cardinality dominates every matcher's cardinality.
  EXPECT_LE(hung->size, hk.size);
  EXPECT_LE(greedy.size, hk.size);
  // All matchings structurally valid.
  EXPECT_TRUE(g.ValidateMatching(hung->match_of_left, nullptr).ok());
  EXPECT_TRUE(g.ValidateMatching(flow->match_of_left, nullptr).ok());
  EXPECT_TRUE(g.ValidateMatching(greedy.match_of_left, nullptr).ok());
  EXPECT_TRUE(g.ValidateMatching(hk.match_of_left, nullptr).ok());
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, MatcherPropertyTest,
    testing::Values(SweepParam{1, 5, 5, 0.3}, SweepParam{2, 10, 3, 0.5},
                    SweepParam{3, 3, 10, 0.5}, SweepParam{4, 12, 12, 0.15},
                    SweepParam{5, 20, 20, 0.10}, SweepParam{6, 1, 1, 1.0},
                    SweepParam{7, 8, 8, 0.9}, SweepParam{8, 15, 4, 0.4},
                    SweepParam{9, 4, 15, 0.4}, SweepParam{10, 25, 25, 0.05}));

TEST(MatcherPropertyTest, DenseDiagonalDominantGraph) {
  // Diagonal weights 10, off-diagonal 1: optimum is the diagonal.
  const int32_t n = 12;
  BipartiteGraph g(n, n);
  for (int32_t i = 0; i < n; ++i) {
    for (int32_t j = 0; j < n; ++j) {
      ASSERT_TRUE(g.AddEdge(i, j, i == j ? 10.0 : 1.0).ok());
    }
  }
  auto hung = HungarianMaxWeight(g);
  ASSERT_TRUE(hung.ok());
  EXPECT_DOUBLE_EQ(hung->total_weight, 120.0);
  for (int32_t i = 0; i < n; ++i) EXPECT_EQ(hung->match_of_left[i], i);
}

TEST(MatcherPropertyTest, WorstCaseGreedyChain) {
  // Chain where greedy loses ~half: l_i -> r_i (w=1+eps) and l_i -> r_{i+1}
  // (w=1). Greedy grabs the 1+eps edges, blocking nothing here, so instead
  // construct the classic conflict: shared right vertices.
  const int32_t n = 6;
  BipartiteGraph g(n, n + 1);
  for (int32_t i = 0; i < n; ++i) {
    ASSERT_TRUE(g.AddEdge(i, i, 1.0 + 0.01 * i).ok());
    ASSERT_TRUE(g.AddEdge(i, i + 1, 1.0).ok());
  }
  auto hung = HungarianMaxWeight(g);
  const auto greedy = GreedyMaxWeight(g);
  ASSERT_TRUE(hung.ok());
  EXPECT_EQ(hung->size, n);  // all left matchable
  EXPECT_GE(greedy.total_weight + 1e-9, 0.5 * hung->total_weight);
}

}  // namespace
}  // namespace comx
