// Instance persistence: save/load as a pair of CSV files so generated
// datasets can be inspected, versioned, and shared between the benchmark
// binaries and external tooling.
//
// Format:
//   <prefix>.workers.csv : id,platform,time,x,y,radius,history
//     (history is ';'-joined decimal values)
//   <prefix>.requests.csv: id,platform,time,x,y,value
// Both carry a header line. The event order is rebuilt from timestamps on
// load (BuildEvents), matching how it was built before save.

#ifndef COMX_DATAGEN_DATASET_H_
#define COMX_DATAGEN_DATASET_H_

#include <string>

#include "model/instance.h"
#include "util/result.h"

namespace comx {

/// Writes `<prefix>.workers.csv` and `<prefix>.requests.csv`.
Status SaveInstance(const Instance& instance, const std::string& prefix);

/// Reads an instance saved by SaveInstance; validates before returning.
Result<Instance> LoadInstance(const std::string& prefix);

}  // namespace comx

#endif  // COMX_DATAGEN_DATASET_H_
