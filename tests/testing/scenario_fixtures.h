// Shared scenario-level fixtures for the matching and harness test suites.
// Hosts the random-graph builder the solver differential tests share and
// the oracle-run helpers (record assembly, violation predicates, tamper
// fixtures) that used to be copy-pasted across tests/matching/ and
// tests/check/.

#ifndef COMX_TESTS_TESTING_SCENARIO_FIXTURES_H_
#define COMX_TESTS_TESTING_SCENARIO_FIXTURES_H_

#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "check/fuzz_driver.h"
#include "check/oracles.h"
#include "check/scenario_gen.h"
#include "matching/bipartite_graph.h"
#include "util/rng.h"

namespace comx {
namespace testing_fixtures {

// Random sparse bipartite graph with weights in (0, 10].
inline BipartiteGraph RandomGraph(int32_t left, int32_t right,
                                  double edge_prob, Rng* rng) {
  BipartiteGraph g(left, right);
  for (int32_t l = 0; l < left; ++l) {
    for (int32_t r = 0; r < right; ++r) {
      if (rng->Bernoulli(edge_prob)) {
        const Status s = g.AddEdge(l, r, rng->Uniform(0.1, 10.0));
        (void)s;
      }
    }
  }
  return g;
}

// Random sparse bipartite graph with integer weights in [1, max_weight],
// for the integer-exact auction differential tests.
inline BipartiteGraph RandomIntegerGraph(int32_t left, int32_t right,
                                         double edge_prob,
                                         int64_t max_weight, Rng* rng) {
  BipartiteGraph g(left, right);
  for (int32_t l = 0; l < left; ++l) {
    for (int32_t r = 0; r < right; ++r) {
      if (rng->Bernoulli(edge_prob)) {
        const Status s = g.AddEdge(
            l, r, static_cast<double>(rng->UniformInt(1, max_weight)));
        (void)s;
      }
    }
  }
  return g;
}

inline bool HasOracle(const std::vector<check::OracleViolation>& violations,
                      const std::string& slug) {
  for (const check::OracleViolation& v : violations) {
    if (v.oracle == slug) return true;
  }
  return false;
}

inline std::string DumpViolations(
    const std::vector<check::OracleViolation>& violations) {
  std::string out;
  for (const check::OracleViolation& v : violations) {
    out += "[" + v.oracle + "] " + v.detail + "\n";
  }
  return out;
}

// Borrows the scenario/instance/run, exactly how the fuzz driver wires a
// record before handing it to the oracles.
inline check::MatcherRunRecord MakeRunRecord(
    check::MatcherKind kind, const check::Scenario& scenario,
    const Instance& instance, const check::MatcherRunOutput& run) {
  check::MatcherRunRecord record;
  record.kind = kind;
  record.instance = &instance;
  record.scenario = &scenario;
  record.result = &run.result;
  record.trace = &run.trace;
  record.trace_summary = run.has_summary ? &run.trace_summary : nullptr;
  record.ram_thresholds = run.ram_thresholds;
  return record;
}

// A (scenario, instance, run) triple with at least one assignment, for
// tamper-detection tests that mutate the output and assert an oracle fires.
struct TamperFixture {
  check::Scenario scenario;
  Instance instance;
  check::MatcherRunOutput run;
};

inline TamperFixture FindRunWithAssignments(check::MatcherKind kind,
                                            bool want_outer,
                                            uint64_t base_seed = 202) {
  for (uint64_t i = 0; i < 400; ++i) {
    check::Scenario s = check::DrawScenario(base_seed, i);
    auto instance = check::BuildScenarioInstance(s);
    if (!instance.ok()) continue;
    auto run = check::RunMatcherOnInstance(kind, s, *instance);
    if (!run.ok()) continue;
    bool has_outer = false;
    for (const Assignment& a : run->result.matching.assignments) {
      has_outer |= a.is_outer;
    }
    if (run->result.matching.assignments.empty()) continue;
    if (want_outer && !has_outer) continue;
    return TamperFixture{s, *std::move(instance), *std::move(run)};
  }
  ADD_FAILURE() << "no suitable run found in 400 scenarios";
  return {};
}

}  // namespace testing_fixtures
}  // namespace comx

#endif  // COMX_TESTS_TESTING_SCENARIO_FIXTURES_H_
