#include "obs/metrics_registry.h"

#include <algorithm>

namespace comx {
namespace obs {

namespace internal {

std::atomic<bool> g_collection_enabled{false};

namespace {
std::atomic<size_t> g_next_shard{0};
}  // namespace

size_t ThisThreadShard() {
  thread_local const size_t shard =
      g_next_shard.fetch_add(1, std::memory_order_relaxed) % kShardCount;
  return shard;
}

}  // namespace internal

void SetCollectionEnabled(bool enabled) {
  internal::g_collection_enabled.store(enabled, std::memory_order_relaxed);
}

namespace {

std::string EscapeLabelValue(std::string_view value) {
  std::string out;
  out.reserve(value.size());
  for (char c : value) {
    if (c == '\\' || c == '"') out += '\\';
    if (c == '\n') {
      out += "\\n";
      continue;
    }
    out += c;
  }
  return out;
}

}  // namespace

std::string MetricName(std::string_view base, std::string_view label,
                       std::string_view value) {
  std::string out(base);
  out += '{';
  out += label;
  out += "=\"";
  out += EscapeLabelValue(value);
  out += "\"}";
  return out;
}

std::string MetricName(std::string_view base, std::string_view label,
                       int64_t value) {
  return MetricName(base, label, std::to_string(value));
}

int64_t Counter::Value() const {
  int64_t total = 0;
  for (const CounterCell& cell : cells_) {
    total += cell.value.load(std::memory_order_relaxed);
  }
  return total;
}

void Counter::Reset() {
  for (CounterCell& cell : cells_) {
    cell.value.store(0, std::memory_order_relaxed);
  }
}

Histogram::Histogram(std::string name, std::string help,
                     std::vector<double> bounds)
    : name_(std::move(name)), help_(std::move(help)),
      bounds_(std::move(bounds)) {
  const size_t buckets = bounds_.size() + 1;
  for (Shard& shard : shards_) {
    shard.counts = std::make_unique<std::atomic<int64_t>[]>(buckets);
    for (size_t i = 0; i < buckets; ++i) {
      shard.counts[i].store(0, std::memory_order_relaxed);
    }
  }
}

void Histogram::Observe(double v) {
  if (!CollectionEnabled()) return;
  const size_t bucket = static_cast<size_t>(
      std::lower_bound(bounds_.begin(), bounds_.end(), v) - bounds_.begin());
  Shard& shard = shards_[internal::ThisThreadShard()];
  shard.counts[bucket].fetch_add(1, std::memory_order_relaxed);
  shard.count.fetch_add(1, std::memory_order_relaxed);
  shard.sum.fetch_add(v, std::memory_order_relaxed);
}

std::vector<int64_t> Histogram::BucketCounts() const {
  std::vector<int64_t> out(bounds_.size() + 1, 0);
  for (const Shard& shard : shards_) {
    for (size_t i = 0; i < out.size(); ++i) {
      out[i] += shard.counts[i].load(std::memory_order_relaxed);
    }
  }
  return out;
}

int64_t Histogram::Count() const {
  int64_t total = 0;
  for (const Shard& shard : shards_) {
    total += shard.count.load(std::memory_order_relaxed);
  }
  return total;
}

double Histogram::Sum() const {
  double total = 0.0;
  for (const Shard& shard : shards_) {
    total += shard.sum.load(std::memory_order_relaxed);
  }
  return total;
}

void Histogram::Reset() {
  for (Shard& shard : shards_) {
    for (size_t i = 0; i < bounds_.size() + 1; ++i) {
      shard.counts[i].store(0, std::memory_order_relaxed);
    }
    shard.count.store(0, std::memory_order_relaxed);
    shard.sum.store(0.0, std::memory_order_relaxed);
  }
}

std::vector<double> DefaultLatencyBoundsSeconds() {
  return {1e-6, 2.5e-6, 5e-6, 1e-5, 2.5e-5, 5e-5, 1e-4, 2.5e-4, 5e-4,
          1e-3, 2.5e-3, 5e-3, 1e-2, 2.5e-2, 5e-2, 0.1,  0.25,   0.5,
          1.0,  2.5,    5.0,  10.0};
}

MetricsRegistry& MetricsRegistry::Global() {
  static MetricsRegistry* registry = new MetricsRegistry();
  return *registry;
}

Counter* MetricsRegistry::GetCounter(std::string_view name,
                                     std::string_view help) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    it = counters_
             .emplace(std::string(name),
                      std::unique_ptr<Counter>(
                          new Counter(std::string(name), std::string(help))))
             .first;
  }
  return it->second.get();
}

Gauge* MetricsRegistry::GetGauge(std::string_view name,
                                 std::string_view help) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = gauges_.find(name);
  if (it == gauges_.end()) {
    it = gauges_
             .emplace(std::string(name),
                      std::unique_ptr<Gauge>(
                          new Gauge(std::string(name), std::string(help))))
             .first;
  }
  return it->second.get();
}

Histogram* MetricsRegistry::GetHistogram(std::string_view name,
                                         std::vector<double> bounds,
                                         std::string_view help) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    it = histograms_
             .emplace(std::string(name),
                      std::unique_ptr<Histogram>(
                          new Histogram(std::string(name), std::string(help),
                                        std::move(bounds))))
             .first;
  }
  return it->second.get();
}

LatencyHistogram* MetricsRegistry::GetLatencyHistogram(
    std::string_view name, std::string_view help) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = latencies_.find(name);
  if (it == latencies_.end()) {
    it = latencies_
             .emplace(std::string(name),
                      std::make_unique<LatencyHistogram>(std::string(name),
                                                         std::string(help)))
             .first;
  }
  return it->second.get();
}

MetricsSnapshot MetricsRegistry::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  MetricsSnapshot snap;
  snap.counters.reserve(counters_.size());
  for (const auto& [name, counter] : counters_) {
    snap.counters.push_back({name, counter->help(), counter->Value()});
  }
  snap.gauges.reserve(gauges_.size());
  for (const auto& [name, gauge] : gauges_) {
    snap.gauges.push_back({name, gauge->help(), gauge->Value()});
  }
  snap.histograms.reserve(histograms_.size());
  for (const auto& [name, hist] : histograms_) {
    snap.histograms.push_back({name, hist->help(), hist->bounds(),
                               hist->BucketCounts(), hist->Count(),
                               hist->Sum()});
  }
  snap.latencies.reserve(latencies_.size());
  for (const auto& [name, hist] : latencies_) {
    snap.latencies.push_back({name, hist->help(), hist->Snapshot()});
  }
  return snap;
}

void MetricsRegistry::ResetValues() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [name, counter] : counters_) counter->Reset();
  for (auto& [name, gauge] : gauges_) gauge->Reset();
  for (auto& [name, hist] : histograms_) hist->Reset();
  for (auto& [name, hist] : latencies_) hist->Reset();
}

MetricsSnapshot DiffSnapshots(const MetricsSnapshot& before,
                              const MetricsSnapshot& after) {
  // Snapshot vectors are sorted by name (std::map iteration order), and
  // names are only ever added, so `before` is a subsequence of `after` —
  // a single merge pass suffices.
  MetricsSnapshot diff;
  diff.counters.reserve(after.counters.size());
  size_t bi = 0;
  for (const CounterSample& a : after.counters) {
    CounterSample d = a;
    if (bi < before.counters.size() && before.counters[bi].name == a.name) {
      d.value -= before.counters[bi].value;
      ++bi;
    }
    diff.counters.push_back(std::move(d));
  }
  // Gauges are last-write-wins: report the after value as-is.
  diff.gauges = after.gauges;
  size_t hi = 0;
  diff.histograms.reserve(after.histograms.size());
  for (const HistogramSample& a : after.histograms) {
    HistogramSample d = a;
    if (hi < before.histograms.size() &&
        before.histograms[hi].name == a.name) {
      const HistogramSample& b = before.histograms[hi];
      for (size_t i = 0; i < d.counts.size() && i < b.counts.size(); ++i) {
        d.counts[i] -= b.counts[i];
      }
      d.count -= b.count;
      d.sum -= b.sum;
      ++hi;
    }
    diff.histograms.push_back(std::move(d));
  }
  // Latency samples subtract like histograms; max is not diffable (only
  // the larger of the two windows is known), so the diff keeps `after`'s
  // max, which upper-bounds the interval's true max.
  size_t li = 0;
  diff.latencies.reserve(after.latencies.size());
  for (const LatencySample& a : after.latencies) {
    LatencySample d = a;
    if (li < before.latencies.size() &&
        before.latencies[li].name == a.name) {
      const LatencySnapshot& b = before.latencies[li].latency;
      for (size_t i = 0;
           i < d.latency.counts.size() && i < b.counts.size(); ++i) {
        d.latency.counts[i] -= b.counts[i];
      }
      d.latency.count -= b.count;
      d.latency.sum_nanos -= b.sum_nanos;
      ++li;
    }
    diff.latencies.push_back(std::move(d));
  }
  return diff;
}

}  // namespace obs
}  // namespace comx
