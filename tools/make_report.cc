// make_report — turns the CSV files the bench binaries append
// (bench_tables.csv, bench_fig5_*.csv) into one Markdown report with
// per-tag tables, suitable for pasting into an issue or a lab notebook.
//
//   ./build/tools/make_report [csv ...] > report.md
// With no arguments, reads the default bench CSV names from the current
// directory (missing files are skipped).

#include <cstdio>
#include <map>
#include <string>
#include <vector>

#include "util/csv.h"
#include "util/string_util.h"

namespace comx {
namespace {

struct ReportRow {
  std::string algo;
  std::vector<std::string> fields;
};

int ProcessFile(const std::string& path) {
  auto rows = ReadCsvFile(path);
  if (!rows.ok()) {
    std::fprintf(stderr, "skipping %s: %s\n", path.c_str(),
                 rows.status().ToString().c_str());
    return 0;
  }
  if (rows->size() < 2) return 0;
  const std::vector<std::string>& header = (*rows)[0];
  if (header.size() < 3 || header[0] != "tag" || header[1] != "algo") {
    std::fprintf(stderr, "skipping %s: unexpected header\n", path.c_str());
    return 0;
  }

  // Group by tag, preserving first-seen order.
  std::vector<std::string> tag_order;
  std::map<std::string, std::vector<ReportRow>> by_tag;
  for (size_t i = 1; i < rows->size(); ++i) {
    const auto& row = (*rows)[i];
    if (row.size() != header.size()) continue;
    if (by_tag.find(row[0]) == by_tag.end()) tag_order.push_back(row[0]);
    ReportRow r;
    r.algo = row[1];
    r.fields.assign(row.begin() + 2, row.end());
    by_tag[row[0]].push_back(std::move(r));
  }

  std::printf("## %s\n\n", path.c_str());
  for (const std::string& tag : tag_order) {
    std::printf("### %s\n\n", tag.c_str());
    std::printf("| algo |");
    for (size_t c = 2; c < header.size(); ++c) {
      std::printf(" %s |", header[c].c_str());
    }
    std::printf("\n|---|");
    for (size_t c = 2; c < header.size(); ++c) std::printf("---|");
    std::printf("\n");
    for (const ReportRow& r : by_tag[tag]) {
      std::printf("| %s |", r.algo.c_str());
      for (const std::string& f : r.fields) std::printf(" %s |", f.c_str());
      std::printf("\n");
    }
    std::printf("\n");
  }
  return 1;
}

int Main(int argc, char** argv) {
  std::vector<std::string> paths;
  for (int i = 1; i < argc; ++i) paths.emplace_back(argv[i]);
  if (paths.empty()) {
    paths = {"bench_tables.csv", "bench_fig5_r.csv", "bench_fig5_w.csv",
             "bench_fig5_rad.csv"};
  }
  std::printf("# comx benchmark report\n\n");
  int emitted = 0;
  for (const std::string& path : paths) emitted += ProcessFile(path);
  if (emitted == 0) {
    std::printf("*(no benchmark CSVs found — run the bench binaries "
                "first)*\n");
  }
  return 0;
}

}  // namespace
}  // namespace comx

int main(int argc, char** argv) { return comx::Main(argc, argv); }
