# Empty dependencies file for cross_platform_study.
# This may be replaced when dependencies are built.
