#include "sim/worker_pool.h"

#include <algorithm>

#include "geo/distance.h"
#include "util/string_util.h"

namespace comx {

WorkerPool::WorkerPool(const Instance& instance, const DistanceMetric* metric)
    : instance_(&instance),
      metric_(metric != nullptr ? metric : &DefaultMetric()),
      index_(/*cell_size_km=*/1.0),
      location_(instance.workers().size()),
      available_since_(instance.workers().size(), 0.0),
      available_(instance.workers().size(), false) {
  for (const Worker& w : instance.workers()) {
    max_radius_ = std::max(max_radius_, w.radius);
    location_[static_cast<size_t>(w.id)] = w.location;
  }
}

Status WorkerPool::OnArrival(WorkerId w, const Point& location, Timestamp t) {
  if (!InRange(w)) {
    return Status::OutOfRange(
        StrFormat("worker id %lld outside [0, %zu)",
                  static_cast<long long>(w), available_.size()));
  }
  if (available_[static_cast<size_t>(w)]) {
    return Status::AlreadyExists("worker already in waiting list");
  }
  COMX_RETURN_IF_ERROR(index_.Insert(w, location));
  location_[static_cast<size_t>(w)] = location;
  available_since_[static_cast<size_t>(w)] = t;
  available_[static_cast<size_t>(w)] = true;
  return Status::OK();
}

Status WorkerPool::MarkOccupied(WorkerId w) {
  if (!InRange(w)) {
    return Status::OutOfRange(
        StrFormat("worker id %lld outside [0, %zu)",
                  static_cast<long long>(w), available_.size()));
  }
  if (!available_[static_cast<size_t>(w)]) {
    return Status::NotFound("worker not in waiting list");
  }
  COMX_RETURN_IF_ERROR(index_.Remove(w));
  available_[static_cast<size_t>(w)] = false;
  return Status::OK();
}

std::vector<WorkerId> WorkerPool::FeasibleWorkers(const Request& r,
                                                  PlatformId platform,
                                                  bool inner) const {
  return FeasibleWorkersAt(r, platform, inner, r.time);
}

std::vector<WorkerId> WorkerPool::FeasibleWorkersAt(const Request& r,
                                                    PlatformId platform,
                                                    bool inner,
                                                    Timestamp as_of) const {
  std::vector<WorkerId> out;
  index_.ForEachInRadius(
      r.location, max_radius_, [&](int64_t id, double d2) {
        const Worker& w = instance_->worker(id);
        const bool same = w.platform == platform;
        if (inner != same) return;
        // Time constraint against the *current* availability episode.
        if (available_since_[static_cast<size_t>(id)] > as_of) return;
        // Range constraint against the worker's own radius: Euclidean
        // lower bound first, then the configured travel metric.
        if (d2 > w.radius * w.radius) return;
        if (!metric_->WithinRange(location_[static_cast<size_t>(id)],
                                  r.location, w.radius)) {
          return;
        }
        out.push_back(id);
      });
  // Deterministic order regardless of hash-map iteration.
  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace comx
