#include "check/shrinker.h"

#include <gtest/gtest.h>

#include "testing/builders.h"

namespace comx {
namespace check {
namespace {

using testing_fixtures::MakeRequest;
using testing_fixtures::MakeWorker;

Instance NoisyInstance(int extra_pairs) {
  Instance ins;
  for (int i = 0; i < extra_pairs; ++i) {
    ins.AddWorker(MakeWorker(0, 1.0 + i, i * 0.1, 0.0, 1.0));
    ins.AddRequest(MakeRequest(0, 2.0 + i, i * 0.1, 0.0, 5.0));
  }
  // The one entity the predicate cares about.
  ins.AddRequest(MakeRequest(0, 50.0, 0.0, 0.0, 999.0));
  ins.BuildEvents();
  return ins;
}

bool HasExpensiveRequest(const Instance& ins) {
  for (const Request& r : ins.requests()) {
    if (r.value > 500.0) return true;
  }
  return false;
}

TEST(ShrinkerTest, ShrinksToTheSingleCulprit) {
  const Instance ins = NoisyInstance(12);
  const ShrinkResult result =
      ShrinkInstance(ins, HasExpensiveRequest, ShrinkOptions{});
  EXPECT_EQ(result.entities_before, 25);
  EXPECT_EQ(result.entities_after, 1);
  EXPECT_FALSE(result.budget_exhausted);
  ASSERT_EQ(result.instance.requests().size(), 1u);
  EXPECT_EQ(result.instance.workers().size(), 0u);
  EXPECT_EQ(result.instance.requests()[0].value, 999.0);
  // Dense renumbering + rebuilt events.
  EXPECT_EQ(result.instance.requests()[0].id, 0);
  EXPECT_EQ(result.instance.events().size(), 1u);
  EXPECT_TRUE(result.instance.Validate().ok());
  EXPECT_GT(result.probes, 1);
}

TEST(ShrinkerTest, NonFailingInputReturnsUnchanged) {
  const Instance ins = NoisyInstance(3);
  const ShrinkResult result = ShrinkInstance(
      ins, [](const Instance&) { return false; }, ShrinkOptions{});
  EXPECT_EQ(result.entities_after, result.entities_before);
  EXPECT_EQ(result.instance.workers().size(), ins.workers().size());
  EXPECT_EQ(result.instance.requests().size(), ins.requests().size());
  EXPECT_EQ(result.probes, 1);  // the verification probe only
}

TEST(ShrinkerTest, ProbeBudgetStopsTheSearch) {
  const Instance ins = NoisyInstance(12);
  ShrinkOptions options;
  options.max_probes = 2;  // verification + one attempt
  const ShrinkResult result =
      ShrinkInstance(ins, HasExpensiveRequest, options);
  EXPECT_TRUE(result.budget_exhausted);
  // Whatever was kept must still fail.
  EXPECT_TRUE(HasExpensiveRequest(result.instance));
}

TEST(ShrinkerTest, ResultAlwaysReproducesTheFailure) {
  for (int pairs : {1, 5, 9}) {
    const Instance ins = NoisyInstance(pairs);
    const ShrinkResult result =
        ShrinkInstance(ins, HasExpensiveRequest, ShrinkOptions{});
    EXPECT_TRUE(HasExpensiveRequest(result.instance)) << pairs;
    EXPECT_TRUE(result.instance.Validate().ok()) << pairs;
  }
}

TEST(ShrinkerTest, RemoveEntitiesRenumbersDensely) {
  const Instance ins = NoisyInstance(3);  // 3 workers, 4 requests
  std::vector<char> keep_w = {1, 0, 1};
  std::vector<char> keep_r = {0, 1, 0, 1};
  const Instance out = RemoveEntities(ins, keep_w, keep_r);
  ASSERT_EQ(out.workers().size(), 2u);
  ASSERT_EQ(out.requests().size(), 2u);
  EXPECT_EQ(out.workers()[0].id, 0);
  EXPECT_EQ(out.workers()[1].id, 1);
  EXPECT_EQ(out.requests()[1].id, 1);
  // Survivors keep their payloads: worker 1 here was worker 2 before.
  EXPECT_EQ(out.workers()[1].time, 3.0);
  EXPECT_EQ(out.requests()[1].value, 999.0);
  EXPECT_EQ(out.events().size(), 4u);
  EXPECT_TRUE(out.Validate().ok());
}

}  // namespace
}  // namespace check
}  // namespace comx
