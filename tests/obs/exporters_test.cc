#include "obs/exporters.h"

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include <gtest/gtest.h>

#include "obs/metrics_registry.h"

namespace comx {
namespace obs {
namespace {

// Builds a private registry with one of everything (the global registry's
// contents depend on which tests ran before).
class ExportersTest : public ::testing::Test {
 protected:
  void SetUp() override {
    SetCollectionEnabled(true);
    registry_.GetCounter("comx_test_ops_total", "operations")->Inc(5);
    registry_.GetCounter(MetricName("comx_test_labeled_total", "platform",
                                    int64_t{0}),
                        "labeled")->Inc(2);
    registry_.GetGauge("comx_test_depth", "queue depth")->Set(3.5);
    Histogram* h =
        registry_.GetHistogram("comx_test_latency", {1.0, 2.0}, "latency");
    h->Observe(0.5);
    h->Observe(1.5);
    h->Observe(9.0);
    LatencyHistogram* lat = registry_.GetLatencyHistogram(
        MetricName("comx_test_span_seconds", "phase", "decide"), "spans");
    lat->ObserveNanos(100);              // exact linear-region bucket
    lat->ObserveNanos(100);
    lat->ObserveNanos(2'000'000'000);    // 2 s
  }
  void TearDown() override { SetCollectionEnabled(false); }

  MetricsRegistry registry_;
};

TEST_F(ExportersTest, PrometheusTextHasHeadersAndSeries) {
  const std::string text = ToPrometheusText(registry_.Snapshot());
  EXPECT_NE(text.find("# HELP comx_test_ops_total operations"),
            std::string::npos);
  EXPECT_NE(text.find("# TYPE comx_test_ops_total counter"),
            std::string::npos);
  EXPECT_NE(text.find("comx_test_ops_total 5\n"), std::string::npos);
  EXPECT_NE(text.find("comx_test_labeled_total{platform=\"0\"} 2\n"),
            std::string::npos);
  EXPECT_NE(text.find("# TYPE comx_test_depth gauge"), std::string::npos);
  EXPECT_NE(text.find("comx_test_depth 3.5\n"), std::string::npos);
}

TEST_F(ExportersTest, PrometheusHistogramBucketsAreCumulative) {
  const std::string text = ToPrometheusText(registry_.Snapshot());
  EXPECT_NE(text.find("# TYPE comx_test_latency histogram"),
            std::string::npos);
  EXPECT_NE(text.find("comx_test_latency_bucket{le=\"1\"} 1\n"),
            std::string::npos);
  EXPECT_NE(text.find("comx_test_latency_bucket{le=\"2\"} 2\n"),
            std::string::npos);
  EXPECT_NE(text.find("comx_test_latency_bucket{le=\"+Inf\"} 3\n"),
            std::string::npos);
  EXPECT_NE(text.find("comx_test_latency_count 3\n"), std::string::npos);
  EXPECT_NE(text.find("comx_test_latency_sum 11\n"), std::string::npos);
}

TEST_F(ExportersTest, PrometheusLatencyExportsAsSummaryInSeconds) {
  const std::string text = ToPrometheusText(registry_.Snapshot());
  EXPECT_NE(text.find("# TYPE comx_test_span_seconds summary"),
            std::string::npos);
  // p50 of {100ns, 100ns, 2s} is the exact 100-ns linear bucket, and
  // nanoseconds convert to the seconds the base name promises (100/1e9,
  // %.17g-rendered). p90 lands on the exact 2-s max.
  EXPECT_NE(text.find("comx_test_span_seconds{phase=\"decide\","
                      "quantile=\"0.5\"} 9.9999999999999995e-08"),
            std::string::npos)
      << text;
  EXPECT_NE(text.find("comx_test_span_seconds{phase=\"decide\","
                      "quantile=\"0.9\"} 2\n"),
            std::string::npos);
  EXPECT_NE(text.find("comx_test_span_seconds_count{phase=\"decide\"} 3\n"),
            std::string::npos);
  // quantile=1 is never emitted; the four fixed quantiles are.
  for (const char* q : {"\"0.5\"", "\"0.9\"", "\"0.99\"", "\"0.999\""}) {
    EXPECT_NE(text.find("quantile=" + std::string(q)), std::string::npos)
        << q;
  }
}

TEST_F(ExportersTest, JsonLatencyBlockHasQuantilesAndSparseBuckets) {
  const std::string json = ToJson(registry_.Snapshot());
  const size_t block = json.find("\"latencies\"");
  ASSERT_NE(block, std::string::npos);
  EXPECT_NE(json.find("\"comx_test_span_seconds{phase=\\\"decide\\\"}\"",
                      block),
            std::string::npos)
      << json;
  EXPECT_NE(json.find("\"sum_ns\":2000000200", block), std::string::npos);
  EXPECT_NE(json.find("\"max_ns\":2000000000", block), std::string::npos);
  EXPECT_NE(json.find("\"p50_ns\":100,", block), std::string::npos);
  // Sparse buckets: the exact-region 100-ns bucket is index 100 with
  // count 2.
  EXPECT_NE(json.find("\"buckets\":[[100,2],", block), std::string::npos);
}

TEST_F(ExportersTest, HelpHeaderEmittedOncePerLabeledFamily) {
  registry_.GetCounter(MetricName("comx_test_labeled_total", "platform",
                                  int64_t{1}),
                      "labeled")->Inc(4);
  const std::string text = ToPrometheusText(registry_.Snapshot());
  size_t first = text.find("# TYPE comx_test_labeled_total counter");
  ASSERT_NE(first, std::string::npos);
  EXPECT_EQ(text.find("# TYPE comx_test_labeled_total counter", first + 1),
            std::string::npos);
  EXPECT_NE(text.find("comx_test_labeled_total{platform=\"1\"} 4\n"),
            std::string::npos);
}

TEST_F(ExportersTest, JsonSnapshotListsEveryMetric) {
  const std::string json = ToJson(registry_.Snapshot());
  EXPECT_NE(json.find("\"comx_test_ops_total\":5"), std::string::npos);
  EXPECT_NE(json.find("\"comx_test_depth\":3.5"), std::string::npos);
  EXPECT_NE(json.find("\"comx_test_latency\""), std::string::npos);
  EXPECT_NE(json.find("\"count\":3"), std::string::npos);
  // Balanced braces as a cheap well-formedness check.
  int depth = 0;
  bool in_string = false;
  for (size_t i = 0; i < json.size(); ++i) {
    const char c = json[i];
    if (c == '"' && (i == 0 || json[i - 1] != '\\')) in_string = !in_string;
    if (in_string) continue;
    if (c == '{' || c == '[') ++depth;
    if (c == '}' || c == ']') --depth;
    ASSERT_GE(depth, 0);
  }
  EXPECT_EQ(depth, 0);
}

TEST_F(ExportersTest, ParseMetricsFormatAcceptsKnownNames) {
  ASSERT_TRUE(ParseMetricsFormat("prom").ok());
  EXPECT_EQ(*ParseMetricsFormat("prom"), MetricsFormat::kPrometheus);
  EXPECT_EQ(*ParseMetricsFormat("prometheus"), MetricsFormat::kPrometheus);
  EXPECT_EQ(*ParseMetricsFormat("json"), MetricsFormat::kJson);
  EXPECT_FALSE(ParseMetricsFormat("xml").ok());
}

TEST_F(ExportersTest, WriteMetricsFileRoundTrips) {
  const std::string path = ::testing::TempDir() + "metrics_export.prom";
  ASSERT_TRUE(
      WriteMetricsFile(registry_, path, MetricsFormat::kPrometheus).ok());
  std::ifstream in(path);
  std::stringstream buffer;
  buffer << in.rdbuf();
  EXPECT_EQ(buffer.str(), ToPrometheusText(registry_.Snapshot()));
  std::remove(path.c_str());
}

}  // namespace
}  // namespace obs
}  // namespace comx
