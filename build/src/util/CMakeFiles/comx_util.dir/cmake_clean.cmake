file(REMOVE_RECURSE
  "CMakeFiles/comx_util.dir/csv.cc.o"
  "CMakeFiles/comx_util.dir/csv.cc.o.d"
  "CMakeFiles/comx_util.dir/logging.cc.o"
  "CMakeFiles/comx_util.dir/logging.cc.o.d"
  "CMakeFiles/comx_util.dir/memory_meter.cc.o"
  "CMakeFiles/comx_util.dir/memory_meter.cc.o.d"
  "CMakeFiles/comx_util.dir/reservoir.cc.o"
  "CMakeFiles/comx_util.dir/reservoir.cc.o.d"
  "CMakeFiles/comx_util.dir/rng.cc.o"
  "CMakeFiles/comx_util.dir/rng.cc.o.d"
  "CMakeFiles/comx_util.dir/stats.cc.o"
  "CMakeFiles/comx_util.dir/stats.cc.o.d"
  "CMakeFiles/comx_util.dir/status.cc.o"
  "CMakeFiles/comx_util.dir/status.cc.o.d"
  "CMakeFiles/comx_util.dir/string_util.cc.o"
  "CMakeFiles/comx_util.dir/string_util.cc.o.d"
  "CMakeFiles/comx_util.dir/thread_pool.cc.o"
  "CMakeFiles/comx_util.dir/thread_pool.cc.o.d"
  "libcomx_util.a"
  "libcomx_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/comx_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
