file(REMOVE_RECURSE
  "CMakeFiles/comx_matching.dir/auction.cc.o"
  "CMakeFiles/comx_matching.dir/auction.cc.o.d"
  "CMakeFiles/comx_matching.dir/bipartite_graph.cc.o"
  "CMakeFiles/comx_matching.dir/bipartite_graph.cc.o.d"
  "CMakeFiles/comx_matching.dir/greedy_offline.cc.o"
  "CMakeFiles/comx_matching.dir/greedy_offline.cc.o.d"
  "CMakeFiles/comx_matching.dir/hopcroft_karp.cc.o"
  "CMakeFiles/comx_matching.dir/hopcroft_karp.cc.o.d"
  "CMakeFiles/comx_matching.dir/hungarian.cc.o"
  "CMakeFiles/comx_matching.dir/hungarian.cc.o.d"
  "CMakeFiles/comx_matching.dir/min_cost_flow.cc.o"
  "CMakeFiles/comx_matching.dir/min_cost_flow.cc.o.d"
  "libcomx_matching.a"
  "libcomx_matching.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/comx_matching.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
