// Decision-level tracing: a bounded JSONL event sink recording, per
// request, what the matcher saw (candidate counts from the spatial-index
// probes), what pricing computed (Algorithm 2 bisection iterations and the
// estimated minimum payment), how the acceptance draw went, and the final
// assignment. One line per decision plus one trailing summary line with
// the run totals, so a trace file is self-checking: ReplayTraceFile()
// re-derives the per-platform revenue from the decision lines and
// CheckTraceReplay() verifies it reproduces the recorded totals exactly
// (doubles are serialized with round-trip precision).
//
// Deliberately decoupled from the simulator: sinks see plain ids, so the
// obs library depends only on util.

#ifndef COMX_OBS_TRACE_H_
#define COMX_OBS_TRACE_H_

#include <cstdint>
#include <cstdio>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "obs/latency_histogram.h"
#include "util/result.h"

namespace comx {
namespace obs {

/// Everything recorded about one request decision. Counts are -1 when the
/// corresponding stage did not run (e.g. outer fields of an inner match).
struct TraceEvent {
  /// Running decision index within the run (0-based, chronological).
  int64_t seq = 0;
  /// Request arrival time (simulation seconds).
  double time = 0.0;
  int32_t platform = 0;
  int64_t request = -1;
  /// Request value v_r.
  double value = 0.0;

  /// Feasible inner / outer candidates the spatial index returned.
  int32_t inner_candidates = -1;
  int32_t outer_candidates = -1;
  /// Outer candidates actually priced (after the nearest-K cap).
  int32_t priced_candidates = -1;
  /// Candidates that accepted the quoted payment in the live draw.
  int32_t accepting = -1;

  /// Algorithm 2 cost: total bisection iterations and Monte-Carlo sampling
  /// instances burned for this request (0 when pricing did not run).
  int64_t bisect_iterations = 0;
  int32_t estimator_samples = 0;
  /// Quoted outer payment estimate (Alg. 2 mean or MER argmax); negative
  /// when no quote was computed.
  double estimated_payment = -1.0;

  /// "inner", "outer", or "reject".
  std::string outcome;
  /// Assigned worker (-1 on reject).
  int64_t worker = -1;
  /// Outer payment actually charged (0 for inner/reject).
  double payment = 0.0;
  /// Revenue booked for this decision (0 on reject).
  double revenue = 0.0;

  /// Fault-injection footprint of the decision (all zero outside fault-plan
  /// runs; see fault/fault_session.h). Older traces without these fields
  /// parse with the defaults, so trace_inspect handles both generations.
  int32_t fault_retries = 0;
  /// Partner platforms invisible for this request (unreachable after
  /// retries, or skipped by an open circuit breaker).
  int32_t fault_failed_partners = 0;
  /// Reserve-step conflicts hit by the two-phase outer commit.
  int32_t fault_reserve_conflicts = 0;
  /// True when the decision was made with degraded (inner-only or reduced)
  /// outer visibility, or after exhausting reserve fallbacks.
  bool degraded = false;

  /// Wall-clock nanoseconds the matcher spent on this decision; -1 when
  /// the run did not measure response time (and in older traces).
  int64_t latency_ns = -1;
};

/// Run totals written as the trace's final line.
struct TraceSummary {
  /// Decision events written to the sink (after any drop).
  int64_t events_written = 0;
  /// Decisions dropped because the sink's bound was hit.
  int64_t events_dropped = 0;
  int64_t assignments = 0;
  /// Revenue per platform, in platform-id order.
  std::vector<double> platform_revenue;
  double total_revenue = 0.0;

  /// Decision-latency histogram of the run (log-linear buckets, see
  /// latency_histogram.h), absent — latency_count == 0 — unless the run
  /// measured response time. Serialized as flat keys (lat_b<index>) so the
  /// summary line stays parseable by the non-nesting JSONL parser, and
  /// bit-exact against the per-event latency_ns values, which
  /// CheckTraceLatency() verifies.
  int64_t latency_count = 0;
  int64_t latency_sum_ns = 0;
  int64_t latency_max_ns = 0;
  /// Sparse (bucket index, count) pairs, ascending by index.
  std::vector<std::pair<int32_t, int64_t>> latency_buckets;
};

/// Where decision events go. Implementations must be safe to call from
/// multiple threads.
class TraceSink {
 public:
  virtual ~TraceSink() = default;
  /// Records one decision. May drop when bounded.
  virtual void Record(const TraceEvent& event) = 0;
  /// Records the run totals; called once at end of run.
  virtual void Summary(const TraceSummary& summary) = 0;
};

/// In-memory sink for tests.
class VectorTraceSink : public TraceSink {
 public:
  void Record(const TraceEvent& event) override {
    std::lock_guard<std::mutex> lock(mu_);
    events_.push_back(event);
  }
  void Summary(const TraceSummary& summary) override {
    std::lock_guard<std::mutex> lock(mu_);
    summary_ = summary;
    has_summary_ = true;
  }
  const std::vector<TraceEvent>& events() const { return events_; }
  bool has_summary() const { return has_summary_; }
  const TraceSummary& summary() const { return summary_; }

 private:
  std::mutex mu_;
  std::vector<TraceEvent> events_;
  TraceSummary summary_;
  bool has_summary_ = false;
};

/// Serializes one event / summary to its JSONL line (no trailing newline).
std::string TraceEventToJson(const TraceEvent& event);
std::string TraceSummaryToJson(const TraceSummary& summary);

/// Parses one JSONL line. Lines are distinguished by their "type" field
/// ("decision" / "summary").
Result<TraceEvent> ParseTraceEvent(const std::string& line);
Result<TraceSummary> ParseTraceSummary(const std::string& line);

/// Bounded JSONL file writer. Thread-safe; keeps at most `max_events`
/// decision lines and counts the overflow, which the summary line reports
/// (the sink folds its own drop count into the summary it writes).
class JsonlTraceWriter : public TraceSink {
 public:
  struct Options {
    /// Maximum decision lines kept; <= 0 means unbounded.
    int64_t max_events = 4'000'000;
  };

  /// Opens (truncates) `path` for writing.
  static Result<std::unique_ptr<JsonlTraceWriter>> Open(
      const std::string& path, const Options& options);
  static Result<std::unique_ptr<JsonlTraceWriter>> Open(
      const std::string& path);

  ~JsonlTraceWriter() override;

  void Record(const TraceEvent& event) override;
  void Summary(const TraceSummary& summary) override;

  /// Flushes and closes the file; further Records are dropped. Called by
  /// the destructor when omitted. Returns the first write error, if any.
  Status Close();

  int64_t written() const;
  int64_t dropped() const;

  /// The underlying stream, for util/signal_guard.h registration — a
  /// shutdown signal can then flush partially written traces. Do not write
  /// through it. Null after Close().
  std::FILE* file() const { return file_; }

 private:
  JsonlTraceWriter(std::FILE* file, const Options& options)
      : file_(file), options_(options) {}
  void WriteLine(const std::string& line);

  mutable std::mutex mu_;
  std::FILE* file_;
  Options options_;
  int64_t written_ = 0;
  int64_t dropped_ = 0;
  bool failed_ = false;
};

/// Outcome of re-reading a trace file.
struct TraceReplay {
  /// Decision events found, in file order.
  int64_t decision_events = 0;
  int64_t assignments = 0;
  /// Revenue per platform re-accumulated from the decision lines in file
  /// order (matching the simulator's own accumulation order, so equal
  /// inputs sum to the bit-identical total).
  std::vector<double> platform_revenue;
  double total_revenue = 0.0;
  /// Aggregate pricing effort seen in the events.
  int64_t bisect_iterations = 0;
  /// Decision-latency histogram rebuilt from events with latency_ns >= 0
  /// (empty when the trace carries no latencies).
  LatencySnapshot latency;
  /// The trailing summary line, when present.
  bool has_summary = false;
  TraceSummary summary;
  /// True when the file ended in an unparseable final line with no
  /// newline — the signature of a writer killed mid-line. Lenient replays
  /// drop that fragment and describe it in `tail_warning`.
  bool truncated_tail = false;
  std::string tail_warning;
};

struct TraceReplayOptions {
  /// Strict mode fails on ANY malformed line. The default tolerates one
  /// unterminated, unparseable final line (a torn write from a crashed
  /// run) by dropping it with a warning; malformed lines followed by more
  /// content are errors either way.
  bool strict = false;
};

/// Reads a JSONL trace file and re-derives the run totals.
Result<TraceReplay> ReplayTraceFile(const std::string& path,
                                    const TraceReplayOptions& options = {});

/// Verifies the replayed totals reproduce the recorded summary exactly
/// (event counts and bit-exact revenue). FailedPrecondition on mismatch,
/// InvalidArgument when the trace has no summary line.
Status CheckTraceReplay(const TraceReplay& replay);

/// Verifies the latency histogram rebuilt from the per-event latency_ns
/// values reproduces the summary's latency block bit-exactly (per-bucket
/// counts, count, sum, max). InvalidArgument when the trace has no
/// summary or the summary carries no latency block.
Status CheckTraceLatency(const TraceReplay& replay);

}  // namespace obs
}  // namespace comx

#endif  // COMX_OBS_TRACE_H_
