file(REMOVE_RECURSE
  "CMakeFiles/food_delivery_surge.dir/food_delivery_surge.cpp.o"
  "CMakeFiles/food_delivery_surge.dir/food_delivery_surge.cpp.o.d"
  "food_delivery_surge"
  "food_delivery_surge.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/food_delivery_surge.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
