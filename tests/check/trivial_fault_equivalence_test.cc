// Satellite property: a FaultInjector driven by a *trivial* plan (nothing
// can ever fire) must be bit-identical to running with no plan at all, for
// every matcher, across 100 fuzz-generated seeds. This pins the
// fault/fault_injector.h contract that trivial specs consume zero RNG
// draws — any accidental draw would desynchronize the matcher RNG streams
// and show up here as a revenue diff.

#include <gtest/gtest.h>

#include "check/fuzz_driver.h"
#include "check/scenario_gen.h"
#include "exp/sweep_runner.h"

namespace comx {
namespace check {
namespace {

void ExpectBitIdentical(const MatcherRunOutput& a, const MatcherRunOutput& b,
                        const std::string& context) {
  ASSERT_EQ(a.result.matching.assignments.size(),
            b.result.matching.assignments.size())
      << context;
  for (size_t i = 0; i < a.result.matching.assignments.size(); ++i) {
    const Assignment& x = a.result.matching.assignments[i];
    const Assignment& y = b.result.matching.assignments[i];
    EXPECT_EQ(x.request, y.request) << context;
    EXPECT_EQ(x.worker, y.worker) << context;
    EXPECT_EQ(x.is_outer, y.is_outer) << context;
    EXPECT_EQ(x.outer_payment, y.outer_payment) << context;
    EXPECT_EQ(x.revenue, y.revenue) << context;
  }
  EXPECT_EQ(a.result.matching.total_revenue,
            b.result.matching.total_revenue)
      << context;
  ASSERT_EQ(a.trace.size(), b.trace.size()) << context;
  for (size_t i = 0; i < a.trace.size(); ++i) {
    EXPECT_EQ(a.trace[i].outcome, b.trace[i].outcome) << context;
    EXPECT_EQ(a.trace[i].payment, b.trace[i].payment) << context;
    EXPECT_EQ(a.trace[i].revenue, b.trace[i].revenue) << context;
  }
}

TEST(TrivialFaultEquivalenceTest, HundredSeedsBitExact) {
  for (uint64_t i = 0; i < 100; ++i) {
    Scenario scenario = DrawScenario(404, i);
    // Force a cooperative setting so outer queries (the only path that
    // even consults the injector) actually happen.
    if (scenario.gen.platforms < 2) scenario.gen.platforms = 2;

    Scenario with_plan = scenario;
    Rng plan_rng = exp::JobRng(505, i);
    with_plan.with_fault_plan = true;
    with_plan.fault_plan =
        DrawTrivialFaultPlan(&plan_rng, scenario.gen.platforms);
    ASSERT_TRUE(with_plan.fault_plan.Trivial());

    Scenario without_plan = scenario;
    without_plan.with_fault_plan = false;

    auto instance = BuildScenarioInstance(scenario);
    ASSERT_TRUE(instance.ok()) << scenario.Describe();

    for (MatcherKind kind : kAllMatcherKinds) {
      auto a = RunMatcherOnInstance(kind, with_plan, *instance);
      auto b = RunMatcherOnInstance(kind, without_plan, *instance);
      ASSERT_TRUE(a.ok() && b.ok()) << scenario.Describe();
      ExpectBitIdentical(*a, *b,
                         std::string(MatcherKindName(kind)) + " seed " +
                             std::to_string(i));
    }
  }
}

}  // namespace
}  // namespace check
}  // namespace comx
