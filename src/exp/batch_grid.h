// Batch-dispatch grid experiment: sweep the micro-batch window length
// crossed with the window-solver algorithm over an instance, and chart each
// point's revenue against the window-greedy online baseline (the same
// engine with window = 0, which dispatches per request). The headline
// output is the batch-vs-online revenue gap: batching trades user wait
// (requests sit until their window closes) for a better assignment, and the
// gap quantifies what the wait buys.
//
// Cells run on the sweep engine (exp/sweep_runner.h): per-cell slots,
// merged in job order, so any `jobs` setting is bit-identical to serial.
// The window = 0 row of any algorithm is bit-identical to the online
// baseline by the engine's window-0 equivalence, so its gap is exactly 0 —
// the property the batch test suite pins.

#ifndef COMX_EXP_BATCH_GRID_H_
#define COMX_EXP_BATCH_GRID_H_

#include <string>
#include <vector>

#include "exp/sweep_runner.h"
#include "matching/batch_matcher.h"
#include "model/instance.h"
#include "sim/simulator.h"
#include "util/result.h"

namespace comx {
namespace exp {

/// One (window, algo) cell of the grid, averaged over the seeds.
struct BatchGridRow {
  double window_seconds = 0.0;
  BatchAlgo algo = BatchAlgo::kAuto;
  /// Mean total revenue across seeds (seed-order accumulation).
  double revenue = 0.0;
  /// Mean total revenue of the online (window = 0) baseline, same seeds.
  double online_revenue = 0.0;
  /// revenue - online_revenue (exactly 0.0 on any window = 0 row).
  double gap = 0.0;
  /// Mean simulated user wait in seconds (window close - arrival time),
  /// pooled over every batched request (served or rejected) of all seeds.
  double mean_wait_seconds = 0.0;
  /// Mean completed requests across seeds.
  double completed = 0.0;
};

struct BatchGridConfig {
  /// Base physics/acceptance knobs; the batch fields are overwritten per
  /// cell (and response-time measurement is forced on: in batch mode it
  /// records the virtual wait, which is deterministic).
  SimConfig sim;
  /// Seeds averaged per cell; seed s runs with simulation seed
  /// s * 7919 + 1 (the algo-grid schedule, so rows are comparable).
  int seeds = 3;
  /// Window lengths to sweep. 0 = per-request dispatch (the baseline).
  std::vector<double> windows = {0.0, 15.0, 30.0, 60.0, 120.0};
  /// Window solvers to cross with the windows.
  std::vector<BatchAlgo> algos = {BatchAlgo::kAuto,
                                  BatchAlgo::kIncrementalKm};
  /// Worker threads (sweep-runner semantics); 0 = hardware concurrency.
  int jobs = 1;
  /// Optional caller-owned pool shared across sweeps (overrides `jobs`).
  ThreadPool* pool = nullptr;
};

/// Runs the window x algo grid plus the shared online baseline; returns
/// one row per (window, algo) in windows-major order.
Result<std::vector<BatchGridRow>> RunBatchGrid(const Instance& instance,
                                               const BatchGridConfig& config);

/// Renders rows as an aligned table (the bench binaries' stdout format).
std::string RenderBatchGridTable(const std::string& title,
                                 const std::vector<BatchGridRow>& rows);

/// CSV header line (with trailing newline) for RenderBatchGridCsvRows.
std::string BatchGridCsvHeader();

/// One CSV line per row, tagged with the sweep-point label.
std::string RenderBatchGridCsvRows(const std::string& tag,
                                   const std::vector<BatchGridRow>& rows);

}  // namespace exp
}  // namespace comx

#endif  // COMX_EXP_BATCH_GRID_H_
