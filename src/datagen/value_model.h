// Request-value distributions. Table IV of the paper sweeps two of them:
// "real" (the empirical fare distribution of the ride-hailing logs, which we
// model as a clamped log-normal — fares are right-skewed with a mode around
// the short-trip price) and "normal".

#ifndef COMX_DATAGEN_VALUE_MODEL_H_
#define COMX_DATAGEN_VALUE_MODEL_H_

#include <string>

#include "util/result.h"
#include "util/rng.h"

namespace comx {

/// Which distribution request values are drawn from.
enum class ValueDistribution : int8_t {
  /// Clamped log-normal — matches the right-skew of real fare data.
  kRealLike = 0,
  /// Clamped normal.
  kNormal = 1,
};

/// Parses "real" / "normal" (case-sensitive, as in Table IV).
Result<ValueDistribution> ParseValueDistribution(const std::string& name);

/// Draws request values from the configured distribution.
class ValueModel {
 public:
  /// Parameters chosen so both distributions share mean ~= 18 (the implied
  /// per-request revenue of the paper's tables) and values stay within
  /// [min_value, max_value]. max_value = 50 keeps RamCOM's threshold count
  /// theta = ceil(ln(max v + 1)) at 4, the regime the paper's tables
  /// reflect (its completed-request counts track TOTA's, which requires
  /// most threshold draws to divert only the low-value tail).
  struct Params {
    ValueDistribution distribution = ValueDistribution::kRealLike;
    /// Log-normal: exp(N(log_mu, log_sigma)); Normal: N(mean, stddev).
    double log_mu = 2.80;     // exp(2.80) ~= 16.4 median
    double log_sigma = 0.45;  // mean ~= 16.4 * exp(0.101) ~= 18.2
    double mean = 18.0;
    double stddev = 6.0;
    double min_value = 2.0;
    double max_value = 50.0;
  };

  ValueModel() : params_(Params{}) {}
  explicit ValueModel(Params params) : params_(params) {}

  /// One request value.
  double Draw(Rng* rng) const;

  /// Median of the configured distribution (before clamping).
  double Median() const;

  const Params& params() const { return params_; }

 private:
  Params params_;
};

}  // namespace comx

#endif  // COMX_DATAGEN_VALUE_MODEL_H_
