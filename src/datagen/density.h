// Supply/demand density analysis: bins an instance's workers and requests
// into a uniform grid per platform — the quantitative form of the paper's
// Fig. 2 (one platform's idle cars sitting where the other's users are).
// Used by the examples' ASCII heatmaps and available for external tooling
// through the CSV writer.

#ifndef COMX_DATAGEN_DENSITY_H_
#define COMX_DATAGEN_DENSITY_H_

#include <cstdint>
#include <string>
#include <vector>

#include "geo/bbox.h"
#include "model/instance.h"
#include "util/result.h"

namespace comx {

/// Per-cell, per-platform counts over a uniform grid.
class DensityGrid {
 public:
  /// Bins every entity of `instance` into `cols` x `rows` cells covering
  /// `bounds` (entities outside are clamped to edge cells).
  DensityGrid(const Instance& instance, const BBox& bounds, int32_t cols,
              int32_t rows);

  int32_t cols() const { return cols_; }
  int32_t rows() const { return rows_; }

  /// Workers of `platform` in cell (col, row).
  int64_t WorkerCount(PlatformId platform, int32_t col, int32_t row) const;

  /// Requests of `platform` in cell (col, row).
  int64_t RequestCount(PlatformId platform, int32_t col, int32_t row) const;

  /// Cross-platform imbalance score in [0, 1]: mean over cells of
  /// |share_of_p0_workers - share_of_p0_requests| weighted by cell mass.
  /// 0 = supply and demand of platform 0 are co-located; higher = the
  /// Fig. 2 situation. Only meaningful for two platforms.
  double ImbalanceScore() const;

  /// Renders one platform's request density as an ASCII heatmap
  /// (' ' . : + * #' by increasing density), one row per line.
  std::string AsciiHeatmap(PlatformId platform, bool workers) const;

  /// Writes "platform,role,col,row,count" rows (role: worker/request).
  Status WriteCsv(const std::string& path) const;

 private:
  size_t CellIndex(int32_t col, int32_t row) const {
    return static_cast<size_t>(row) * static_cast<size_t>(cols_) +
           static_cast<size_t>(col);
  }

  int32_t cols_;
  int32_t rows_;
  int32_t platforms_;
  // [platform][cell]
  std::vector<std::vector<int64_t>> worker_counts_;
  std::vector<std::vector<int64_t>> request_counts_;
};

}  // namespace comx

#endif  // COMX_DATAGEN_DENSITY_H_
