# Empty dependencies file for bench_ablation_roadnet.
# This may be replaced when dependencies are built.
