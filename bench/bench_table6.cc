// Reproduces Table VI: effectiveness/efficiency on the RDC11 + RYC11 clone
// (Chengdu, Nov 2016).

#include "table_main.h"

int main(int argc, char** argv) {
  return comx::bench::TableMain(
      argc, argv, comx::Rdc11Ryc11(), "Table VI (RDC11 + RYC11)",
      "  OFF    Rev 1.914M/1.924M  resp 0.32ms  CpR 100,973/100,448\n"
      "  TOTA   Rev 1.612M/1.594M  resp 0.52ms  CpR 81,912/81,706\n"
      "  DemCOM Rev 1.621M/1.614M  resp 0.52ms  CpR 85,737/85,460  "
      "CoR 6,220   AcpRt 0.17  v'/v 0.70\n"
      "  RamCOM Rev 1.645M/1.646M  resp 0.75ms  CpR 82,385/82,760  "
      "CoR 91,699  AcpRt 0.75  v'/v 0.82");
}
