// Crash-recovery oracles for the correctness harness.
//
// Two slugs extend the oracle family of check/oracles.h:
//
//   `recovery-bit-exact` — a run that crashed and recovered must be
//   indistinguishable from the uninterrupted run: identical metrics and
//   assignment log bit for bit, identical rebuilt decision trace byte for
//   byte, and every replayed WAL record byte-equal to the durable one.
//
//   `no-double-commit-after-crash` — the recovered WAL must witness a safe
//   two-phase commit history: no request decided twice, every outer
//   decision covered by a confirm of its reserve, no successful reserve
//   left dangling, and the closing revenue total equal (bitwise) to the
//   platform-ordered sum of the decision revenues — Eq. 1 is never
//   double-paid across the crash.
//
// RunCrashRecoveryCheck packages the whole experiment: durable baseline,
// seeded crash, recovery, both oracles, trace-rebuild comparison. It is
// shared by the fuzz driver (FuzzOptions::crash_check_every) and
// tools/crash_matrix.

#ifndef COMX_CHECK_RECOVERY_ORACLES_H_
#define COMX_CHECK_RECOVERY_ORACLES_H_

#include <string>
#include <vector>

#include "check/oracles.h"
#include "check/scenario_gen.h"
#include "recovery/durable_sim.h"

namespace comx {
namespace check {

inline constexpr char kRecoveryBitExactOracle[] = "recovery-bit-exact";
inline constexpr char kNoDoubleCommitOracle[] =
    "no-double-commit-after-crash";

/// Scans a final (post-recovery) WAL record stream for two-phase-commit
/// protocol violations (`no-double-commit-after-crash`).
std::vector<OracleViolation> CheckWalCommitProtocol(
    const std::vector<recovery::WalRecord>& records);

/// Field-by-field, bitwise comparison of a recovered run's result against
/// the uninterrupted baseline (`recovery-bit-exact`). Wall-clock and RSS
/// fields are exempt; everything deterministic must match exactly.
std::vector<OracleViolation> CheckRecoveryEquivalence(
    const SimResult& baseline, const SimResult& recovered);

/// One complete crash-recovery experiment for a scenario + matcher kind.
struct CrashCheckOutcome {
  recovery::CrashPoint point;
  std::vector<OracleViolation> violations;
  recovery::DurableRunStats baseline_stats;
  recovery::DurableRunStats recovery_stats;
};

/// Runs the durable baseline in `work_dir`/baseline, draws one crash point
/// from its profile with `crash_seed`, re-runs to the crash in
/// `work_dir`/crashed, recovers, and applies every recovery oracle plus a
/// byte comparison of the two WALs' rebuilt traces. `work_dir` is created
/// if missing and left behind for post-mortems. Errors are harness-level
/// (unwritable directory, crash point that never fired); divergence lands
/// in `violations`.
Result<CrashCheckOutcome> RunCrashRecoveryCheck(
    MatcherKind kind, const Scenario& scenario, const Instance& instance,
    const std::string& work_dir, uint64_t crash_seed,
    int64_t checkpoint_every_steps);

/// Same experiment, but the crash fires exactly at an interior group-commit
/// boundary of the baseline WAL (`boundary_index` modulo the usable
/// boundaries) instead of a random byte. This is the "killed between batch
/// fill and fsync" window: the writer's buffer has accepted a full batch of
/// records but not one byte of it is durable, so recovery must re-execute
/// the ENTIRE lost batch — the scenario that catches a group commit whose
/// shutdown path forgets to flush the buffered tail. Internal error when
/// the baseline commits fewer than two batches.
Result<CrashCheckOutcome> RunBoundaryCrashRecoveryCheck(
    MatcherKind kind, const Scenario& scenario, const Instance& instance,
    const std::string& work_dir, uint64_t boundary_index,
    int64_t checkpoint_every_steps);

}  // namespace check
}  // namespace comx

#endif  // COMX_CHECK_RECOVERY_ORACLES_H_
