// Internal: the per-element expression trees shared by every backend.
//
// Bit-identity across backends hinges on both evaluating exactly these
// operations in exactly this order. The AVX2 translation unit mirrors each
// helper with one intrinsic per arithmetic node (mul/add/sub only — never
// FMA) and runs these same scalar helpers on its tail elements, so there is
// a single source of truth for the math.

#ifndef COMX_KERNELS_KERNEL_TABLE_INL_H_
#define COMX_KERNELS_KERNEL_TABLE_INL_H_

#include <algorithm>
#include <cmath>

namespace comx {
namespace kernels {
namespace internal {

inline constexpr double kEarthRadiusKm = 6371.0088;  // = geo/distance.cc
inline constexpr double kDegToRad = 3.14159265358979323846 / 180.0;

/// (x - cx)^2 + (y - cy)^2 — the exact expression GridIndex and
/// geo::SquaredDistance evaluate, node for node.
inline double SquaredDistanceExpr(double x, double y, double cx, double cy) {
  const double dx = x - cx;
  const double dy = y - cy;
  return dx * dx + dy * dy;
}

/// The haversine "a" term from precomputed trig:
///   cos(dphi) = clat*q_clat + slat*q_slat
///   cos(dlam) = clon*q_clon + slon*q_slon
///   a = 0.5*(1 - cos(dphi)) + (clat*q_clat) * (0.5*(1 - cos(dlam)))
/// using sin^2(t/2) = (1 - cos t)/2; no per-element libm calls.
inline double HaversineAExpr(double slat, double clat, double slon,
                             double clon, double q_slat, double q_clat,
                             double q_slon, double q_clon) {
  const double cos_dphi = clat * q_clat + slat * q_slat;
  const double cos_dlam = clon * q_clon + slon * q_slon;
  const double cc = clat * q_clat;
  return 0.5 * (1.0 - cos_dphi) + cc * (0.5 * (1.0 - cos_dlam));
}

/// Shared scalar epilogue: a -> km. Rounding can push `a` a few ulp outside
/// [0, 1]; clamp before sqrt/asin. Runs scalar in *both* backends so the
/// libm asin is the only transcendental and is shared.
inline double HaversineFinishKm(double a) {
  const double clamped = std::min(1.0, std::max(0.0, a));
  return 2.0 * kEarthRadiusKm * std::asin(std::sqrt(clamped));
}

}  // namespace internal
}  // namespace kernels
}  // namespace comx

#endif  // COMX_KERNELS_KERNEL_TABLE_INL_H_
