// Metric snapshot exporters: Prometheus text exposition (v0.0.4) and a
// JSON snapshot, plus a file writer the CLI's --metrics-out flag uses.
// Both render a merged MetricsSnapshot — scrape once, export either way.

#ifndef COMX_OBS_EXPORTERS_H_
#define COMX_OBS_EXPORTERS_H_

#include <string>

#include "obs/metrics_registry.h"
#include "util/result.h"

namespace comx {
namespace obs {

/// Output format of WriteMetricsFile.
enum class MetricsFormat { kPrometheus, kJson };

/// Parses "prom"/"prometheus" or "json".
Result<MetricsFormat> ParseMetricsFormat(std::string_view name);

/// Prometheus text exposition: # HELP / # TYPE comments, cumulative
/// histogram buckets with the synthetic le label, _sum and _count series.
/// Latency histograms export as summaries (quantile label, seconds).
/// Labeled metric names registered via MetricName() are merged with the
/// synthetic labels correctly.
std::string ToPrometheusText(const MetricsSnapshot& snapshot);

/// JSON snapshot: {"counters": {name: value, ...}, "gauges": {...},
/// "histograms": {name: {"count": n, "sum": s, "buckets": [...]}},
/// "latencies": {name: {"count": n, ..., "p50_ns": v, "buckets":
/// [[index, count], ...]}}}.
std::string ToJson(const MetricsSnapshot& snapshot);

/// Scrapes `registry` and writes it to `path` in `format`.
Status WriteMetricsFile(const MetricsRegistry& registry,
                        const std::string& path, MetricsFormat format);

}  // namespace obs
}  // namespace comx

#endif  // COMX_OBS_EXPORTERS_H_
