// Parameterized invariant sweeps: every algorithm on random workloads of
// varying shape must produce audited-feasible matchings with consistent
// accounting, whatever the seed.

#include <memory>

#include <gtest/gtest.h>

#include "core/dem_com.h"
#include "core/greedy_rt.h"
#include "core/offline_opt.h"
#include "core/ram_com.h"
#include "core/tota_greedy.h"
#include "datagen/synthetic.h"
#include "sim/simulator.h"

namespace comx {
namespace {

struct SweepCase {
  const char* name;
  int64_t requests;
  int64_t workers;
  double radius;
  double imbalance;
  bool recycle;
};

void PrintTo(const SweepCase& c, std::ostream* os) { *os << c.name; }

class InvariantSweep : public testing::TestWithParam<SweepCase> {
 protected:
  Instance MakeInstance(uint64_t seed) {
    const SweepCase& c = GetParam();
    SyntheticConfig config;
    config.requests_per_platform = {c.requests};
    config.workers_per_platform = {c.workers};
    config.radius_km = c.radius;
    config.imbalance = c.imbalance;
    config.seed = seed;
    auto ins = GenerateSynthetic(config);
    EXPECT_TRUE(ins.ok());
    return std::move(ins).value();
  }

  SimConfig Config() const {
    SimConfig s;
    s.workers_recycle = GetParam().recycle;
    s.measure_response_time = false;
    return s;
  }

  template <typename Matcher>
  void CheckMatcher(const Instance& ins, uint64_t seed) {
    Matcher m0, m1;
    auto r = RunSimulation(ins, {&m0, &m1}, Config(), seed);
    ASSERT_TRUE(r.ok()) << r.status();
    ASSERT_TRUE(AuditSimResult(ins, Config(), *r).ok());
    // Metrics identities.
    const PlatformMetrics agg = r->metrics.Aggregate();
    EXPECT_EQ(agg.completed, agg.completed_inner + agg.completed_outer);
    EXPECT_EQ(agg.completed + agg.rejected,
              static_cast<int64_t>(ins.requests().size()));
    EXPECT_GE(agg.completed_outer, 0);
    EXPECT_LE(agg.completed_outer, agg.outer_offers);
    EXPECT_GE(agg.revenue, 0.0);
    EXPECT_EQ(r->matching.assignments.size(),
              static_cast<size_t>(agg.completed));
    // Each payment rate term is in (0, 1].
    if (agg.completed_outer > 0) {
      EXPECT_GT(agg.payment_rate_sum, 0.0);
      EXPECT_LE(agg.payment_rate_sum,
                static_cast<double>(agg.completed_outer) + 1e-9);
    }
  }
};

TEST_P(InvariantSweep, Tota) {
  const Instance ins = MakeInstance(100);
  CheckMatcher<TotaGreedy>(ins, 1);
}

TEST_P(InvariantSweep, GreedyRt) {
  const Instance ins = MakeInstance(101);
  CheckMatcher<GreedyRt>(ins, 2);
}

TEST_P(InvariantSweep, DemCom) {
  const Instance ins = MakeInstance(102);
  CheckMatcher<DemCom>(ins, 3);
}

TEST_P(InvariantSweep, RamCom) {
  const Instance ins = MakeInstance(103);
  CheckMatcher<RamCom>(ins, 4);
}

TEST_P(InvariantSweep, OfflineSolversAgreeOnSmallInstances) {
  const SweepCase& c = GetParam();
  if (c.requests > 200) GTEST_SKIP() << "exact solvers only on small cases";
  const Instance ins = MakeInstance(104);
  OfflineConfig dense;
  dense.dense_cell_limit = 1'000'000'000;  // force Hungarian
  OfflineConfig sparse;
  sparse.dense_cell_limit = 0;  // force the sparse incremental KM
  for (PlatformId p = 0; p < 2; ++p) {
    auto a = SolveOffline(ins, p, dense);
    auto b = SolveOffline(ins, p, sparse);
    ASSERT_TRUE(a.ok());
    ASSERT_TRUE(b.ok());
    EXPECT_EQ(a->solver, "hungarian");
    EXPECT_EQ(b->solver, "incremental_km");
    EXPECT_NEAR(a->matching.total_revenue, b->matching.total_revenue, 1e-6);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, InvariantSweep,
    testing::Values(
        SweepCase{"tiny_sparse", 50, 10, 1.0, 0.7, false},
        SweepCase{"tiny_recycle", 50, 10, 1.0, 0.7, true},
        SweepCase{"supply_rich", 100, 200, 1.0, 0.5, false},
        SweepCase{"supply_starved", 300, 10, 1.0, 0.8, true},
        SweepCase{"wide_radius", 150, 30, 2.5, 0.7, true},
        SweepCase{"narrow_radius", 150, 30, 0.5, 0.7, true},
        SweepCase{"balanced_city", 150, 30, 1.0, 0.0, true},
        SweepCase{"full_imbalance", 150, 30, 1.0, 1.0, true},
        SweepCase{"mid_size", 600, 120, 1.0, 0.7, true}),
    [](const testing::TestParamInfo<SweepCase>& info) {
      return info.param.name;
    });

TEST(InvariantExtraTest, ThreePlatformCooperation) {
  SyntheticConfig config;
  config.platforms = 3;
  config.requests_per_platform = {120};
  config.workers_per_platform = {25};
  config.seed = 55;
  auto ins = GenerateSynthetic(config);
  ASSERT_TRUE(ins.ok());
  DemCom m0, m1, m2;
  SimConfig sim;
  sim.measure_response_time = false;
  auto r = RunSimulation(*ins, {&m0, &m1, &m2}, sim, 5);
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(AuditSimResult(*ins, sim, *r).ok());
  EXPECT_EQ(r->metrics.per_platform.size(), 3u);
}

TEST(InvariantExtraTest, NoWorkersMeansAllRejected) {
  SyntheticConfig config;
  config.requests_per_platform = {50};
  config.workers_per_platform = {0};
  config.seed = 56;
  auto ins = GenerateSynthetic(config);
  ASSERT_TRUE(ins.ok());
  RamCom m0, m1;
  SimConfig sim;
  sim.measure_response_time = false;
  auto r = RunSimulation(*ins, {&m0, &m1}, sim, 5);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->metrics.Aggregate().completed, 0);
  EXPECT_EQ(r->metrics.Aggregate().rejected, 100);
}

TEST(InvariantExtraTest, NoRequestsMeansNoRevenue) {
  SyntheticConfig config;
  config.requests_per_platform = {0};
  config.workers_per_platform = {20};
  config.seed = 57;
  auto ins = GenerateSynthetic(config);
  ASSERT_TRUE(ins.ok());
  DemCom m0, m1;
  SimConfig sim;
  auto r = RunSimulation(*ins, {&m0, &m1}, sim, 5);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->metrics.TotalRevenue(), 0.0);
}

}  // namespace
}  // namespace comx
