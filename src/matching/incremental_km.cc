#include "matching/incremental_km.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <queue>
#include <utility>

#include "util/string_util.h"

namespace comx {
namespace {

// Min-heap entry: (tentative distance, column). Lazy deletion — stale
// entries are skipped when popped. Ties break toward the smaller column so
// every run is deterministic.
using HeapEntry = std::pair<double, int32_t>;

}  // namespace

IncrementalKuhnMunkres::IncrementalKuhnMunkres(int32_t column_count,
                                               Config config)
    : config_(config) {
  const size_t m = column_count > 0 ? static_cast<size_t>(column_count) : 0;
  v_.assign(m, 0.0);
  match_col_.assign(m, -1);
  d_.assign(m, 0.0);
  pred_col_.assign(m, -1);
  d_gen_.assign(m, 0);
  done_gen_.assign(m, 0);
  row_start_.push_back(0);
}

Status IncrementalKuhnMunkres::WarmStart(
    const std::vector<double>& column_potentials) {
  if (!u_.empty()) {
    return Status::FailedPrecondition(
        "WarmStart must precede the first AddRow");
  }
  if (column_potentials.size() != v_.size()) {
    return Status::InvalidArgument(
        StrFormat("warm-start size %zu != column count %zu",
                  column_potentials.size(), v_.size()));
  }
  for (size_t j = 0; j < v_.size(); ++j) {
    const double vj = column_potentials[j];
    if (!std::isfinite(vj)) {
      return Status::InvalidArgument("warm-start potential not finite");
    }
    // The fresh matching leaves every column unmatched, and unmatched
    // columns need v >= 0 (their arc to the null sink has reduced cost v).
    v_[j] = std::max(vj, 0.0);
  }
  return Status::OK();
}

Result<int32_t> IncrementalKuhnMunkres::AddRow(
    const std::vector<RowEdge>& edges) {
  const int32_t row = row_count();
  const int32_t m = column_count();

  // Collapse the row's edges to max weight per column, dropping weights
  // <= 0 (free disposal makes them worthless, matching the dense solver's
  // extraction filter).
  const size_t first = edge_col_.size();
  for (const RowEdge& e : edges) {
    if (!std::isfinite(e.weight)) {
      return Status::InvalidArgument("edge weight not finite");
    }
    if (e.column < 0 || e.column >= m) {
      return Status::OutOfRange(
          StrFormat("edge column %d outside [0, %d)", e.column, m));
    }
    if (!(e.weight > 0.0)) continue;
    bool merged = false;
    for (size_t k = first; k < edge_col_.size(); ++k) {
      if (edge_col_[k] == e.column) {
        edge_w_[k] = std::max(edge_w_[k], e.weight);
        merged = true;
        break;
      }
    }
    if (!merged) {
      edge_col_.push_back(e.column);
      edge_w_.push_back(e.weight);
    }
  }
  row_start_.push_back(edge_col_.size());
  u_.push_back(0.0);
  match_row_.push_back(-1);
  if (edge_col_.size() == first) return row;  // no useful edge; stays null

  // Dijkstra over reduced costs from the new row. d(j) is the cheapest
  // alternating-path cost from the row to column j; the path may exit to
  // the null sink T (at p(T) = 0) three ways, tracked in best_T:
  //   * the new row itself stays unmatched (cost 0, the initial value),
  //   * an unmatched column j exits via its j->T arc (d(j) + v[j]),
  //   * a matched row i' gives up its column and exits (d(j) + u[i']).
  ++gen_;
  std::priority_queue<HeapEntry, std::vector<HeapEntry>,
                      std::greater<HeapEntry>>
      heap;
  for (size_t k = first; k < edge_col_.size(); ++k) {
    const int32_t j = edge_col_[k];
    const double dj = -edge_w_[k] - v_[j];
    if (d_gen_[j] != gen_ || dj < d_[j]) {
      d_[j] = dj;
      d_gen_[j] = gen_;
      pred_col_[j] = -1;  // reached directly from the new row
      heap.emplace(dj, j);
    }
    ++relax_ops_;
  }

  double best_T = 0.0;
  enum class Exit { kSource, kColumn, kNull };
  Exit exit_kind = Exit::kSource;
  int32_t exit_col = -1;   // kColumn: the unmatched column; kNull: the
  int32_t exit_row = -1;   // column entered / the row giving up its column
  std::vector<int32_t> finalized;

  while (!heap.empty()) {
    const auto [dj, j] = heap.top();
    heap.pop();
    if (done_gen_[j] == gen_) continue;
    if (d_gen_[j] != gen_ || dj > d_[j]) continue;  // stale entry
    if (dj >= best_T) break;  // no exit can improve on best_T
    done_gen_[j] = gen_;
    finalized.push_back(j);

    const int32_t owner = match_col_[j];
    if (owner < 0) {
      const double tj = dj + v_[j];  // reduced cost of the j->T arc
      if (tj < best_T) {
        best_T = tj;
        exit_kind = Exit::kColumn;
        exit_col = j;
      }
      continue;  // unmatched columns have no matched-row arc to relax
    }
    const double null_exit = dj + u_[owner];
    if (null_exit < best_T) {
      best_T = null_exit;
      exit_kind = Exit::kNull;
      exit_col = j;
      exit_row = owner;
    }
    for (size_t k = row_start_[owner]; k < row_start_[owner + 1]; ++k) {
      if (++relax_ops_ > config_.max_relaxations) {
        return Status::OutOfRange(StrFormat(
            "incremental KM relaxation budget exhausted (%lld)",
            static_cast<long long>(config_.max_relaxations)));
      }
      const int32_t j2 = edge_col_[k];
      if (done_gen_[j2] == gen_) continue;
      const double rc = -edge_w_[k] + u_[owner] - v_[j2];
      const double nd = dj + rc;
      if (d_gen_[j2] != gen_ || nd < d_[j2]) {
        d_[j2] = nd;
        d_gen_[j2] = gen_;
        pred_col_[j2] = j;
        heap.emplace(nd, j2);
      }
    }
  }

  const double D = best_T;  // <= 0: augmenting never loses revenue
  if (exit_kind == Exit::kSource) return row;  // D == 0, row stays null

  // Dual update before touching the matching: shift every finalized label
  // by -D so the sink keeps potential 0. Rows are updated through their
  // (pre-augment) matched columns.
  for (const int32_t j : finalized) {
    const double delta = d_[j] - D;
    v_[j] += delta;
    const int32_t owner = match_col_[j];
    if (owner >= 0) u_[owner] += delta;
  }
  u_[row] = -D;

  // Augment along the predecessor chain. A null exit first releases the
  // row that gives up its column.
  int32_t jcur = exit_col;
  if (exit_kind == Exit::kNull) match_row_[exit_row] = -1;
  while (true) {
    const int32_t jprev = pred_col_[jcur];
    const int32_t chain_row = jprev < 0 ? row : match_col_[jprev];
    match_col_[jcur] = chain_row;
    match_row_[chain_row] = jcur;
    if (jprev < 0) break;
    jcur = jprev;
  }
  return row;
}

int32_t IncrementalKuhnMunkres::MatchOfRow(int32_t row) const {
  if (row < 0 || row >= row_count()) return -1;
  return match_row_[static_cast<size_t>(row)];
}

int32_t IncrementalKuhnMunkres::MatchOfColumn(int32_t column) const {
  if (column < 0 || column >= column_count()) return -1;
  return match_col_[static_cast<size_t>(column)];
}

double IncrementalKuhnMunkres::DualFeasibilityGap() const {
  double gap = 0.0;
  for (int32_t i = 0; i < row_count(); ++i) {
    // Disposed rows carry no dual claim (header invariant list): their
    // edges' slack is certified by the exit costs at insertion time.
    if (match_row_[static_cast<size_t>(i)] < 0) continue;
    for (size_t k = row_start_[i]; k < row_start_[i + 1]; ++k) {
      gap = std::max(gap, edge_w_[k] - u_[i] + v_[edge_col_[k]]);
    }
  }
  return gap;
}

double IncrementalKuhnMunkres::EdgeWeight(int32_t row, int32_t column) const {
  double best = 0.0;
  for (size_t k = row_start_[row]; k < row_start_[row + 1]; ++k) {
    if (edge_col_[k] == column) best = std::max(best, edge_w_[k]);
  }
  return best;
}

BipartiteMatching IncrementalKuhnMunkres::Extract() const {
  BipartiteMatching result;
  result.match_of_left.assign(static_cast<size_t>(row_count()), -1);
  for (int32_t j = 0; j < column_count(); ++j) {
    const int32_t i = match_col_[static_cast<size_t>(j)];
    if (i < 0) continue;
    result.match_of_left[static_cast<size_t>(i)] = j;
    result.total_weight += EdgeWeight(i, j);
    ++result.size;
  }
  return result;
}

Result<BipartiteMatching> IncrementalKmMaxWeight(
    const BipartiteGraph& graph, IncrementalKmConfig config) {
  for (const BipartiteEdge& e : graph.edges()) {
    if (e.weight < 0.0) {
      return Status::InvalidArgument(
          StrFormat("negative edge weight %g", e.weight));
    }
  }
  IncrementalKuhnMunkres km(graph.right_count(), config);
  const auto& adj = graph.LeftAdjacency();
  std::vector<IncrementalKuhnMunkres::RowEdge> row_edges;
  for (int32_t l = 0; l < graph.left_count(); ++l) {
    row_edges.clear();
    for (const int32_t ei : adj[static_cast<size_t>(l)]) {
      const BipartiteEdge& e = graph.edges()[static_cast<size_t>(ei)];
      row_edges.push_back({e.right, e.weight});
    }
    COMX_ASSIGN_OR_RETURN(const int32_t row, km.AddRow(row_edges));
    (void)row;
  }
  return km.Extract();
}

}  // namespace comx
