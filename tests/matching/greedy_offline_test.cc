#include "matching/greedy_offline.h"

#include <gtest/gtest.h>

#include "matching/brute_force.h"
#include "matching/hungarian.h"
#include "util/rng.h"

namespace comx {
namespace {

using testing_fixtures::RandomGraph;

TEST(GreedyOfflineTest, EmptyGraph) {
  BipartiteGraph g(0, 0);
  EXPECT_EQ(GreedyMaxWeight(g).size, 0);
}

TEST(GreedyOfflineTest, PicksHeaviestEdgesFirst) {
  BipartiteGraph g(2, 2);
  ASSERT_TRUE(g.AddEdge(0, 0, 10.0).ok());
  ASSERT_TRUE(g.AddEdge(0, 1, 9.0).ok());
  ASSERT_TRUE(g.AddEdge(1, 0, 9.0).ok());
  const auto m = GreedyMaxWeight(g);
  // Greedy takes (0,0)=10, then l1 has no free neighbour: total 10 (the
  // optimum is 18 — this documents the 1/2-approximation gap).
  EXPECT_DOUBLE_EQ(m.total_weight, 10.0);
  EXPECT_EQ(m.size, 1);
}

TEST(GreedyOfflineTest, SkipsNonPositiveWeights) {
  BipartiteGraph g(2, 2);
  ASSERT_TRUE(g.AddEdge(0, 0, 0.0).ok());
  ASSERT_TRUE(g.AddEdge(1, 1, 5.0).ok());
  const auto m = GreedyMaxWeight(g);
  EXPECT_EQ(m.size, 1);
  EXPECT_EQ(m.match_of_left[0], -1);
}

TEST(GreedyOfflineTest, RespectsRightCapacity) {
  BipartiteGraph g(3, 1);
  ASSERT_TRUE(g.AddEdge(0, 0, 3.0).ok());
  ASSERT_TRUE(g.AddEdge(1, 0, 2.0).ok());
  ASSERT_TRUE(g.AddEdge(2, 0, 1.0).ok());
  const auto m1 = GreedyMaxWeight(g, {1});
  EXPECT_EQ(m1.size, 1);
  EXPECT_DOUBLE_EQ(m1.total_weight, 3.0);
  const auto m2 = GreedyMaxWeight(g, {2});
  EXPECT_EQ(m2.size, 2);
  EXPECT_DOUBLE_EQ(m2.total_weight, 5.0);
  const auto m99 = GreedyMaxWeight(g, {99});
  EXPECT_EQ(m99.size, 3);
  EXPECT_DOUBLE_EQ(m99.total_weight, 6.0);
}

TEST(GreedyOfflineTest, ZeroCapacityBlocksVertex) {
  BipartiteGraph g(1, 2);
  ASSERT_TRUE(g.AddEdge(0, 0, 9.0).ok());
  ASSERT_TRUE(g.AddEdge(0, 1, 1.0).ok());
  const auto m = GreedyMaxWeight(g, {0, 1});
  EXPECT_EQ(m.match_of_left[0], 1);
}

class GreedyHalfApproxTest : public testing::TestWithParam<int> {};

TEST_P(GreedyHalfApproxTest, AtLeastHalfOfOptimal) {
  Rng rng(static_cast<uint64_t>(GetParam()) * 65537 + 3);
  for (int iter = 0; iter < 20; ++iter) {
    const BipartiteGraph g = RandomGraph(
        static_cast<int32_t>(rng.UniformInt(1, 10)),
        static_cast<int32_t>(rng.UniformInt(1, 10)), 0.4, &rng);
    auto opt = HungarianMaxWeight(g);
    ASSERT_TRUE(opt.ok());
    const auto greedy = GreedyMaxWeight(g);
    EXPECT_GE(greedy.total_weight + 1e-9, 0.5 * opt->total_weight);
    EXPECT_LE(greedy.total_weight, opt->total_weight + 1e-9);
    EXPECT_TRUE(g.ValidateMatching(greedy.match_of_left, nullptr).ok());
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, GreedyHalfApproxTest, testing::Range(0, 8));

TEST(GreedyOfflineTest, StableTieBreakIsDeterministic) {
  BipartiteGraph g(2, 2);
  ASSERT_TRUE(g.AddEdge(0, 0, 5.0).ok());
  ASSERT_TRUE(g.AddEdge(1, 1, 5.0).ok());
  const auto a = GreedyMaxWeight(g);
  const auto b = GreedyMaxWeight(g);
  EXPECT_EQ(a.match_of_left, b.match_of_left);
  EXPECT_EQ(a.size, 2);
}

}  // namespace
}  // namespace comx
