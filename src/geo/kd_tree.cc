#include "geo/kd_tree.h"

#include <algorithm>

#include "geo/distance.h"

namespace comx {

namespace internal {

void RecordKdProbe(size_t hits) {
  static obs::Counter* const queries =
      obs::MetricsRegistry::Global().GetCounter(
          "comx_geo_kdtree_queries_total",
          "Radius probes answered by the kd-tree");
  static obs::Counter* const hit_count =
      obs::MetricsRegistry::Global().GetCounter(
          "comx_geo_kdtree_hits_total",
          "Points returned by kd-tree radius probes");
  queries->Inc();
  hit_count->Inc(static_cast<int64_t>(hits));
}

}  // namespace internal

KdTree::KdTree(std::vector<Item> items) : items_(std::move(items)) {
  if (!items_.empty()) Build(0, items_.size(), 0);
}

void KdTree::Build(size_t lo, size_t hi, int axis) {
  if (hi - lo <= 1) return;
  const size_t mid = lo + (hi - lo) / 2;
  std::nth_element(items_.begin() + static_cast<ptrdiff_t>(lo),
                   items_.begin() + static_cast<ptrdiff_t>(mid),
                   items_.begin() + static_cast<ptrdiff_t>(hi),
                   [axis](const Item& a, const Item& b) {
                     return axis == 0 ? a.location.x < b.location.x
                                      : a.location.y < b.location.y;
                   });
  Build(lo, mid, axis ^ 1);
  Build(mid + 1, hi, axis ^ 1);
}

std::vector<int64_t> KdTree::QueryRadius(const Point& center,
                                         double radius) const {
  std::vector<int64_t> out;
  ForEachInRadius(center, radius,
                  [&out](const Item& item, double /*d2*/) {
                    out.push_back(item.id);
                  });
  return out;
}

Result<KdTree::Item> KdTree::Nearest(const Point& p) const {
  if (items_.empty()) return Status::FailedPrecondition("empty kd-tree");
  size_t best = 0;
  double best_d2 = SquaredDistance(p, items_[0].location);
  NearestVisit(0, items_.size(), 0, p, &best, &best_d2);
  return items_[best];
}

void KdTree::NearestVisit(size_t lo, size_t hi, int axis, const Point& p,
                          size_t* best, double* best_d2) const {
  if (lo >= hi) return;
  const size_t mid = lo + (hi - lo) / 2;
  const double d2 = SquaredDistance(p, items_[mid].location);
  if (d2 < *best_d2) {
    *best_d2 = d2;
    *best = mid;
  }
  const double split =
      axis == 0 ? items_[mid].location.x : items_[mid].location.y;
  const double delta = (axis == 0 ? p.x : p.y) - split;
  const int next = axis ^ 1;
  if (delta <= 0.0) {
    NearestVisit(lo, mid, next, p, best, best_d2);
    if (delta * delta < *best_d2) {
      NearestVisit(mid + 1, hi, next, p, best, best_d2);
    }
  } else {
    NearestVisit(mid + 1, hi, next, p, best, best_d2);
    if (delta * delta < *best_d2) {
      NearestVisit(lo, mid, next, p, best, best_d2);
    }
  }
}

}  // namespace comx
