#include "kernels/ecdf_batch.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <limits>
#include <vector>

#include "pricing/history.h"
#include "util/rng.h"

namespace comx {
namespace kernels {
namespace {

// Randomized histories including empty and single-value ones; returns the
// reference ValueHistory objects next to the flat index built from them.
struct Fixture {
  std::vector<ValueHistory> histories;
  EcdfIndex index;
};

Fixture MakeFixture(uint64_t seed, size_t workers) {
  Rng rng(seed);
  Fixture f;
  f.histories.reserve(workers);
  for (size_t w = 0; w < workers; ++w) {
    const int64_t len = w == 0 ? 0 : rng.UniformInt(0, 64);
    std::vector<double> values;
    values.reserve(static_cast<size_t>(len));
    for (int64_t i = 0; i < len; ++i) {
      values.push_back(rng.Uniform(5.0, 60.0));
    }
    f.histories.emplace_back(std::move(values));
  }
  for (const ValueHistory& h : f.histories) {
    f.index.AddWorker(h.values().data(), h.values().size());
  }
  return f;
}

TEST(EcdfBatchTest, EvaluateBitIdenticalToValueHistory) {
  const Fixture f = MakeFixture(2020, 128);
  Rng rng(1);
  for (size_t w = 0; w < f.histories.size(); ++w) {
    const auto& values = f.histories[w].values();
    std::vector<double> probes = {0.0, 4.999, 60.001, 27.5,
                                  std::numeric_limits<double>::infinity()};
    // Exact history values hit the upper_bound boundary; probe them all.
    probes.insert(probes.end(), values.begin(), values.end());
    for (int i = 0; i < 16; ++i) probes.push_back(rng.Uniform(0.0, 70.0));
    for (double p : probes) {
      const double expect = f.histories[w].Ecdf(p);
      const double got = f.index.Evaluate(static_cast<int64_t>(w), p);
      EXPECT_EQ(expect, got) << "worker " << w << " payment " << p;
    }
  }
}

TEST(EcdfBatchTest, BatchEvaluateMatchesEvaluate) {
  const Fixture f = MakeFixture(7, 64);
  std::vector<int64_t> ids;
  for (size_t w = 0; w < 64; ++w) ids.push_back(static_cast<int64_t>(w));
  std::vector<double> probs(ids.size());
  f.index.BatchEvaluate(ids.data(), ids.size(), 27.5, probs.data());
  for (size_t i = 0; i < ids.size(); ++i) {
    EXPECT_EQ(probs[i], f.index.Evaluate(ids[i], 27.5));
  }
}

TEST(EcdfBatchTest, EvaluateAscendingMatchesEvaluate) {
  const Fixture f = MakeFixture(99, 64);
  Rng rng(3);
  for (size_t w = 0; w < f.histories.size(); ++w) {
    // Ascending payment grid mixing random points with exact history
    // values (the MER grid contains both).
    std::vector<double> grid = {0.0};
    for (int i = 0; i < 40; ++i) grid.push_back(rng.Uniform(0.0, 70.0));
    const auto& values = f.histories[w].values();
    grid.insert(grid.end(), values.begin(), values.end());
    std::sort(grid.begin(), grid.end());
    grid.erase(std::unique(grid.begin(), grid.end()), grid.end());
    std::vector<double> probs(grid.size());
    f.index.EvaluateAscending(static_cast<int64_t>(w), grid.data(),
                              grid.size(), probs.data());
    for (size_t g = 0; g < grid.size(); ++g) {
      EXPECT_EQ(probs[g],
                f.index.Evaluate(static_cast<int64_t>(w), grid[g]))
          << "worker " << w << " grid point " << grid[g];
    }
  }
}

TEST(EcdfBatchTest, EmptyHistoryIsZeroEverywhere) {
  const Fixture f = MakeFixture(5, 4);  // worker 0 has an empty history
  EXPECT_EQ(f.index.Evaluate(0, 0.0), 0.0);
  EXPECT_EQ(f.index.Evaluate(0, std::numeric_limits<double>::infinity()),
            0.0);
  const double grid[3] = {1.0, 2.0, 3.0};
  double probs[3] = {-1.0, -1.0, -1.0};
  f.index.EvaluateAscending(0, grid, 3, probs);
  EXPECT_EQ(probs[0], 0.0);
  EXPECT_EQ(probs[1], 0.0);
  EXPECT_EQ(probs[2], 0.0);
}

}  // namespace
}  // namespace kernels
}  // namespace comx
