#include "sim/sim_engine.h"

#include <algorithm>
#include <cmath>
#include <unordered_map>
#include <utility>

#include "core/window_greedy.h"
#include "geo/distance.h"
#include "obs/span.h"
#include "pricing/mer_pricer.h"
#include "obs/trace.h"
#include "util/crc32c.h"
#include "util/string_util.h"

namespace comx {
namespace {

// Deterministic logical footprint of the static instance data.
int64_t InstanceLogicalBytes(const Instance& instance) {
  int64_t bytes = 0;
  bytes += static_cast<int64_t>(instance.workers().size() * sizeof(Worker));
  bytes += static_cast<int64_t>(instance.requests().size() * sizeof(Request));
  bytes += static_cast<int64_t>(instance.events().size() * sizeof(Event));
  for (const Worker& w : instance.workers()) {
    bytes += static_cast<int64_t>(w.history.size() * sizeof(double));
  }
  return bytes;
}

// Per-available-worker footprint: grid bucket slot + location + flags.
constexpr int64_t kPoolEntryBytes = static_cast<int64_t>(
    sizeof(int64_t) + sizeof(Point) + sizeof(Timestamp) + 1);

// Min-heap comparator for the dynamic re-arrival events.
struct EventGreater {
  bool operator()(const Event& a, const Event& b) const { return b < a; }
};

// Stamps the request-side and matcher-stats fields of a trace event.
obs::TraceEvent MakeTraceEvent(int64_t seq, const Request& r,
                               const Decision& decision) {
  obs::TraceEvent ev;
  ev.seq = seq;
  ev.time = r.time;
  ev.platform = r.platform;
  ev.request = r.id;
  ev.value = r.value;
  ev.inner_candidates = decision.stats.inner_candidates;
  ev.outer_candidates = decision.stats.outer_candidates;
  ev.priced_candidates = decision.stats.priced_candidates;
  ev.accepting = decision.stats.accepting;
  ev.bisect_iterations = decision.stats.bisect_iterations;
  ev.estimator_samples = decision.stats.estimator_samples;
  ev.estimated_payment = decision.stats.estimated_payment;
  return ev;
}

void WriteStats(const RunningStats& s, ByteWriter* out) {
  out->I64(s.count());
  out->F64(s.mean());
  out->F64(s.m2());
  out->F64(s.min());
  out->F64(s.max());
}

Status ReadStats(ByteReader* in, RunningStats* s) {
  int64_t count;
  double mean, m2, min, max;
  COMX_RETURN_IF_ERROR(in->I64(&count));
  COMX_RETURN_IF_ERROR(in->F64(&mean));
  COMX_RETURN_IF_ERROR(in->F64(&m2));
  COMX_RETURN_IF_ERROR(in->F64(&min));
  COMX_RETURN_IF_ERROR(in->F64(&max));
  *s = RunningStats::FromRaw(count, mean, m2, min, max);
  return Status::OK();
}

// v2: CircuitBreaker::Snapshot gained probe_in_flight (single half-open
// probe admission), serialized inside the fault-session block.
constexpr uint32_t kEngineStateVersion = 2;

}  // namespace

Status SimEngine::Init(const Instance& instance,
                       const std::vector<OnlineMatcher*>& matchers,
                       const SimConfig& config, uint64_t seed) {
  const int32_t platform_count = instance.PlatformCount();
  if (static_cast<int32_t>(matchers.size()) != platform_count) {
    return Status::InvalidArgument(StrFormat(
        "need %d matchers, got %zu", platform_count, matchers.size()));
  }
  for (OnlineMatcher* m : matchers) {
    if (m == nullptr) return Status::InvalidArgument("null matcher");
  }
  if (config.batch_mode) {
    if (config.fault_plan != nullptr) {
      return Status::InvalidArgument(
          "batch mode does not support fault injection: a window dispatch "
          "has no per-request two-phase commit to degrade");
    }
    if (!(config.batch_window_seconds >= 0.0) ||
        !std::isfinite(config.batch_window_seconds)) {
      return Status::InvalidArgument(
          StrFormat("batch_window_seconds must be finite and >= 0, got %g",
                    config.batch_window_seconds));
    }
  }

  instance_ = &instance;
  matchers_ = matchers;
  config_ = config;
  seed_ = seed;
  wall_.Reset();
  metric_ = config.metric != nullptr ? config.metric : &DefaultMetric();
  // A prebuilt shared model (seed grids) skips the per-run history
  // sort/flatten; both paths yield the identical immutable model.
  if (config.acceptance != nullptr) {
    acceptance_ = config.acceptance;
  } else {
    acceptance_ = &local_acceptance_.emplace(instance, config.acceptance_mode,
                                             config.reservation_seed);
  }
  pool_.emplace(instance, metric_);
  pool_meter_.Reset();

  // Fault injection: one session per run owns the injector RNG, the
  // per-(platform, partner) circuit breakers, and all fault accounting.
  // Matchers then see FaultyPlatformView decorators instead of the bare
  // pool views; their own RNG streams are untouched either way.
  fault_session_.reset();
  if (config.fault_plan != nullptr) {
    COMX_RETURN_IF_ERROR(config.fault_plan->Validate());
    fault_session_.emplace(*config.fault_plan, seed);
  }

  BuildViews();
  for (PlatformId p = 0; p < platform_count; ++p) {
    matchers_[static_cast<size_t>(p)]->Reset(instance, p,
                                             seed + static_cast<uint64_t>(p));
  }

  result_ = SimResult{};
  result_.metrics.per_platform.assign(static_cast<size_t>(platform_count),
                                      PlatformMetrics{});

  // Observability: counters/gauges are resolved once per run (registration
  // takes a mutex); tracing is independent of the metrics switch. Neither
  // consumes RNG draws, so results are bit-identical either way.
  collect_ = obs::CollectionEnabled();
  counters_.clear();
  pool_gauge_ = nullptr;
  if (collect_) {
    auto& registry = obs::MetricsRegistry::Global();
    counters_.reserve(static_cast<size_t>(platform_count));
    for (int32_t p = 0; p < platform_count; ++p) {
      counters_.push_back(PlatformCounters{
          registry.GetCounter(
              obs::MetricName("comx_sim_requests_total", "platform", p),
              "Requests fed to the platform's matcher"),
          registry.GetCounter(
              obs::MetricName("comx_sim_inner_assignments_total", "platform",
                              p),
              "Requests served by inner workers"),
          registry.GetCounter(
              obs::MetricName("comx_sim_outer_assignments_total", "platform",
                              p),
              "Requests served by borrowed outer workers"),
          registry.GetCounter(
              obs::MetricName("comx_sim_rejections_total", "platform", p),
              "Requests the matcher rejected")});
    }
    pool_gauge_ = registry.GetGauge(
        "comx_sim_pool_available",
        "Workers currently available in the shared pool");
  }
  decision_latency_.Reset();
  available_workers_ = 0;
  decision_seq_ = 0;
  step_index_ = 0;

  static_events_.assign(instance.events().begin(), instance.events().end());
  std::sort(static_events_.begin(), static_events_.end());
  cursor_ = 0;
  dynamic_events_.clear();
  static_event_count_ = static_cast<int64_t>(instance.events().size());
  dynamic_sequence_ = static_event_count_;
  // Drop-off point of each worker's last completed service; re-arrival
  // events place the worker there instead of at its static start location.
  drop_off_.assign(instance.workers().size(), Point{});

  pending_windows_.clear();
  pending_count_ = 0;
  batch_window_seq_ = 0;
  batch_matcher_.reset();
  batch_rngs_.clear();
  if (config.batch_mode) {
    batch_matcher_.emplace(config.batch);
    batch_rngs_.reserve(static_cast<size_t>(platform_count));
    for (PlatformId p = 0; p < platform_count; ++p) {
      batch_rngs_.emplace_back(seed + static_cast<uint64_t>(p));
    }
  }
  return Status::OK();
}

void SimEngine::BuildViews() {
  const int32_t platform_count = instance_->PlatformCount();
  views_.clear();
  faulty_views_.clear();
  views_.reserve(static_cast<size_t>(platform_count));
  faulty_views_.reserve(static_cast<size_t>(platform_count));
  for (PlatformId p = 0; p < platform_count; ++p) {
    views_.emplace_back(*instance_, *acceptance_, *pool_, p);
    if (fault_session_.has_value()) {
      faulty_views_.emplace_back(views_.back(), p, *fault_session_,
                                 platform_count);
    }
  }
}

Status SimEngine::Step(StepRecord* record) {
  if (config_.batch_mode && BatchFlushDue()) {
    if (record != nullptr) {
      *record = StepRecord{};
      record->step = step_index_;
    }
    ++step_index_;
    return StepBatchFlush(record);
  }
  const bool take_static =
      cursor_ < static_events_.size() &&
      (dynamic_events_.empty() ||
       static_events_[cursor_] < dynamic_events_.front());
  Event e;
  if (take_static) {
    e = static_events_[cursor_++];
  } else if (!dynamic_events_.empty()) {
    std::pop_heap(dynamic_events_.begin(), dynamic_events_.end(),
                  EventGreater{});
    e = dynamic_events_.back();
    dynamic_events_.pop_back();
  } else {
    return Status::FailedPrecondition("Step() past the end of the stream");
  }
  if (record != nullptr) {
    *record = StepRecord{};
    record->step = step_index_;
  }
  ++step_index_;
  if (e.kind == EventKind::kWorkerArrival) {
    return StepArrival(e, record);
  }
  if (config_.batch_mode) {
    return StepBatchEnqueue(e, record);
  }
  return StepRequest(e, record);
}

bool SimEngine::BatchFlushDue() const {
  if (pending_windows_.empty()) return false;
  // Window 0s: flush the held request before consuming any further event —
  // the decision point is then exactly the request's own arrival, which is
  // what makes window=0 equal the online WindowGreedy run bit for bit.
  if (config_.batch_window_seconds <= 0.0) return true;
  const Event* next = nullptr;
  if (cursor_ < static_events_.size()) next = &static_events_[cursor_];
  if (!dynamic_events_.empty() &&
      (next == nullptr || dynamic_events_.front() < *next)) {
    next = &dynamic_events_.front();
  }
  if (next == nullptr) return true;
  // Events exactly at the close are consumed first (a worker arriving at
  // the close is not eligible anyway: every held request arrived earlier).
  return next->time > pending_windows_.front().close;
}

Status SimEngine::StepBatchEnqueue(const Event& e, StepRecord* record) {
  const Request& r = instance_->request(e.entity_id);
  const double window_s = config_.batch_window_seconds;
  int64_t index;
  Timestamp close;
  if (window_s > 0.0) {
    index = static_cast<int64_t>(std::floor(r.time / window_s));
    close = (static_cast<double>(index) + 1.0) * window_s;
  } else {
    index = batch_window_seq_++;
    close = r.time;
  }
  // Requests arrive in time order, so window indices are non-decreasing;
  // at most the current and the next window are ever open at once (an
  // event exactly at the close enqueues before the front flushes).
  if (pending_windows_.empty() || pending_windows_.back().index < index) {
    PendingWindow w;
    w.index = index;
    w.close = close;
    w.per_platform.assign(
        static_cast<size_t>(instance_->PlatformCount()), {});
    pending_windows_.push_back(std::move(w));
  }
  pending_windows_.back()
      .per_platform[static_cast<size_t>(r.platform)]
      .push_back(r.id);
  ++pending_count_;
  if (record != nullptr) {
    record->kind = StepRecord::Kind::kBatchEnqueue;
    record->request = r.id;
    record->platform = r.platform;
    record->time = r.time;
    record->value = r.value;
  }
  return Status::OK();
}

Status SimEngine::StepBatchFlush(StepRecord* record) {
  PendingWindow window = std::move(pending_windows_.front());
  pending_windows_.pop_front();
  if (record != nullptr) {
    record->kind = StepRecord::Kind::kBatchFlush;
    record->time = window.close;
  }
  const int32_t platforms = instance_->PlatformCount();
  for (PlatformId p = 0; p < platforms; ++p) {
    const std::vector<RequestId>& ids =
        window.per_platform[static_cast<size_t>(p)];
    if (ids.empty()) continue;
    pending_count_ -= static_cast<int64_t>(ids.size());
    StepRecord::BatchPlatformDelta delta;
    delta.platform = p;
    delta.requests = static_cast<int64_t>(ids.size());
    COMX_RETURN_IF_ERROR(
        FlushPlatformWindow(p, window.close, ids, &delta));
    if (record != nullptr) record->batch_deltas.push_back(delta);
  }
  return Status::OK();
}

Status SimEngine::FlushPlatformWindow(PlatformId platform, Timestamp close,
                                      const std::vector<RequestId>& ids,
                                      StepRecord::BatchPlatformDelta* delta) {
  const PlatformView& view = views_[static_cast<size_t>(platform)];
  Rng* rng = &batch_rngs_[static_cast<size_t>(platform)];
  if (collect_) {
    counters_[static_cast<size_t>(platform)].requests->Inc(
        static_cast<int64_t>(ids.size()));
  }

  // Single-request windows take the WindowGreedy argmax directly: same
  // candidate enumeration, same tie-breaking, same RNG stream — the
  // window=0 differential suite holds bit for bit because of this path.
  if (ids.size() == 1) {
    const Request& r = instance_->request(ids.front());
    const Decision decision = DecideWindowGreedy(r, view, rng);
    return ApplyBatchDecision(r, close, decision, delta);
  }

  // Window assignment problem: left = the window's requests in arrival
  // order, right = the idle workers that can serve any of them
  // (dense-reindexed in first-seen order). Inner edges are worth the full
  // value, outer edges the MER expected revenue; money-losing borrows are
  // dropped up front, exactly as WindowGreedy prices single requests.
  struct Candidate {
    int32_t left;
    WorkerId worker;
    bool is_outer;
    double weight;
    double payment;
  };
  std::vector<Candidate> candidates;
  std::vector<DecisionStats> stats(ids.size());
  std::vector<WorkerId> worker_of_column;
  std::unordered_map<WorkerId, int32_t> column_of_worker;
  const auto column_of = [&](WorkerId w) {
    auto [it, inserted] = column_of_worker.try_emplace(
        w, static_cast<int32_t>(worker_of_column.size()));
    if (inserted) worker_of_column.push_back(w);
    return it->second;
  };
  for (size_t i = 0; i < ids.size(); ++i) {
    const Request& r = instance_->request(ids[i]);
    std::vector<WorkerId> inner, outer;
    {
      COMX_SPAN("candidate_lookup");
      inner = view.FeasibleInnerWorkers(r);
      outer = view.FeasibleOuterWorkers(r);
    }
    stats[i].inner_candidates = static_cast<int32_t>(inner.size());
    stats[i].outer_candidates = static_cast<int32_t>(outer.size());
    for (const WorkerId w : inner) {
      candidates.push_back(
          {static_cast<int32_t>(i), w, false, r.value, 0.0});
      column_of(w);
    }
    int32_t priced = 0;
    for (const WorkerId w : outer) {
      const MerQuote quote =
          ComputeMerQuote(view.acceptance(), {w}, r.value);
      ++priced;
      if (!(r.value - quote.payment > 0.0)) continue;
      candidates.push_back({static_cast<int32_t>(i), w, true,
                            quote.expected_revenue, quote.payment});
      column_of(w);
    }
    stats[i].priced_candidates = priced;
  }

  BipartiteGraph graph(static_cast<int32_t>(ids.size()),
                       static_cast<int32_t>(worker_of_column.size()));
  for (const Candidate& c : candidates) {
    COMX_RETURN_IF_ERROR(graph.AddEdge(
        c.left, column_of_worker.at(c.worker), c.weight));
  }
  BipartiteMatching matched;
  {
    COMX_SPAN("batch_solve");
    COMX_ASSIGN_OR_RETURN(matched,
                          batch_matcher_->SolveWindow(graph,
                                                      worker_of_column));
  }

  // Recover the chosen candidate per matched (request, worker) pair: the
  // best-weight edge, matching what every backend credits.
  std::unordered_map<int64_t, size_t> best;
  best.reserve(candidates.size());
  for (size_t ci = 0; ci < candidates.size(); ++ci) {
    const Candidate& c = candidates[ci];
    const int64_t key = (static_cast<int64_t>(c.left) << 32) |
                        column_of_worker.at(c.worker);
    auto [it, inserted] = best.try_emplace(key, ci);
    if (!inserted && c.weight > candidates[it->second].weight) {
      it->second = ci;
    }
  }

  for (size_t i = 0; i < ids.size(); ++i) {
    const Request& r = instance_->request(ids[i]);
    const int32_t column = matched.match_of_left[i];
    Decision decision = Decision::Reject();
    if (column >= 0) {
      const int64_t key = (static_cast<int64_t>(i) << 32) | column;
      const Candidate& c = candidates[best.at(key)];
      if (c.is_outer) {
        decision = Decision::Outer(c.worker, c.payment);
        decision.stats = stats[i];
        decision.stats.estimated_payment = c.payment;
      } else {
        decision = Decision::Inner(c.worker);
        decision.stats = stats[i];
      }
    } else {
      decision.stats = stats[i];
    }
    COMX_RETURN_IF_ERROR(ApplyBatchDecision(r, close, decision, delta));
  }
  return Status::OK();
}

Status SimEngine::ApplyBatchDecision(const Request& r, Timestamp close,
                                     const Decision& decision_in,
                                     StepRecord::BatchPlatformDelta* delta) {
  Decision decision = decision_in;
  PlatformMetrics& pm =
      result_.metrics.per_platform[static_cast<size_t>(r.platform)];
  const PlatformView& view = views_[static_cast<size_t>(r.platform)];
  Rng* rng = &batch_rngs_[static_cast<size_t>(r.platform)];

  // Outer plans survive only if the borrowed worker accepts; the draw
  // comes from the platform's batch RNG, request by request in arrival
  // order (kReservation consumes no draw, kBernoulli exactly one — the
  // same per-decision discipline as the online matchers).
  if (decision.kind == Decision::Kind::kOuter &&
      decision.stats.accepting == -1) {
    if (view.acceptance().Accepts(decision.worker, decision.outer_payment,
                                  rng)) {
      decision.stats.accepting = 1;
    } else {
      decision.stats.accepting = 0;
      Decision rejected = Decision::Reject();
      rejected.attempted_outer = true;
      rejected.stats = decision.stats;
      decision = std::move(rejected);
    }
  }

  if (decision.attempted_outer) ++pm.outer_offers;
  if (config_.measure_response_time) {
    pm.response_time_us.Add((close - r.time) * 1e6);
  }

  if (decision.kind == Decision::Kind::kReject) {
    ++pm.rejected;
    if (delta != nullptr) ++delta->rejected;
    if (collect_) {
      counters_[static_cast<size_t>(r.platform)].rejects->Inc();
    }
    if (config_.trace != nullptr) {
      obs::TraceEvent ev = MakeTraceEvent(decision_seq_++, r, decision);
      ev.outcome = "reject";
      config_.trace->Record(ev);
    }
    return Status::OK();
  }

  // The same runtime guards as the online path: the window solver is
  // internal, but a buggy backend must surface as an Internal error, not
  // as a silently infeasible booking.
  const WorkerId wid = decision.worker;
  if (wid < 0 || wid >= static_cast<WorkerId>(instance_->workers().size())) {
    return Status::Internal("batch solver returned invalid worker id");
  }
  if (!pool_->IsAvailable(wid)) {
    return Status::Internal("batch solver assigned an occupied worker");
  }
  const Worker& w = instance_->worker(wid);
  const bool is_outer = w.platform != r.platform;
  if ((decision.kind == Decision::Kind::kOuter) != is_outer) {
    return Status::Internal(
        StrFormat("batch solver mislabelled inner/outer for worker %lld",
                  static_cast<long long>(wid)));
  }
  const double pickup_km =
      metric_->Distance(pool_->CurrentLocation(wid), r.location);
  if (pickup_km > w.radius + 1e-9) {
    return Status::Internal(
        StrFormat("batch solver violated the range constraint (%.3f > %.3f)",
                  pickup_km, w.radius));
  }
  if (pool_->AvailableSince(wid) > r.time) {
    return Status::Internal("batch solver violated the time constraint");
  }

  Assignment a;
  a.request = r.id;
  a.worker = wid;
  a.is_outer = is_outer;
  if (is_outer) {
    const double payment = decision.outer_payment;
    if (!(payment > 0.0) || payment > r.value + 1e-9) {
      return Status::Internal(
          StrFormat("batch solver quoted outer payment %.4f outside "
                    "(0, v=%.4f]",
                    payment, r.value));
    }
    a.outer_payment = payment;
    a.revenue = r.value - payment;
    ++pm.completed_outer;
    pm.outer_payment_sum += payment;
    pm.payment_rate_sum += payment / r.value;
  } else {
    a.outer_payment = 0.0;
    a.revenue = r.value;
    ++pm.completed_inner;
  }
  ++pm.completed;
  pm.revenue += a.revenue;
  pm.total_pickup_km += pickup_km;
  result_.matching.Add(a);
  if (delta != nullptr) {
    ++(is_outer ? delta->outer : delta->inner);
    delta->revenue += a.revenue;
  }

  if (collect_) {
    const PlatformCounters& pc = counters_[static_cast<size_t>(r.platform)];
    (is_outer ? pc.outer : pc.inner)->Inc();
  }
  if (config_.trace != nullptr) {
    obs::TraceEvent ev = MakeTraceEvent(decision_seq_++, r, decision);
    ev.outcome = is_outer ? "outer" : "inner";
    ev.worker = wid;
    ev.payment = a.outer_payment;
    ev.revenue = a.revenue;
    config_.trace->Record(ev);
  }

  {
    COMX_SPAN("pool_commit");
    COMX_RETURN_IF_ERROR(pool_->MarkOccupied(wid));
    pool_meter_.Release(kPoolEntryBytes);
    --available_workers_;
    if (pool_gauge_ != nullptr) {
      pool_gauge_->Set(static_cast<double>(available_workers_));
    }
    if (config_.workers_recycle) {
      const double duration =
          ServiceDurationSeconds(config_, pickup_km, r.value);
      Event rearrival;
      rearrival.time = close + duration;
      rearrival.kind = EventKind::kWorkerArrival;
      rearrival.entity_id = wid;
      rearrival.sequence = dynamic_sequence_++;
      drop_off_[static_cast<size_t>(wid)] = r.location;
      dynamic_events_.push_back(rearrival);
      std::push_heap(dynamic_events_.begin(), dynamic_events_.end(),
                     EventGreater{});
    }
  }
  return Status::OK();
}

Status SimEngine::StepArrival(const Event& e, StepRecord* record) {
  const Worker& w = instance_->worker(e.entity_id);
  // Initial arrivals start at the static location; re-arrivals at the
  // drop-off point of the service that just finished.
  const bool rearrival = e.sequence >= static_event_count_;
  const Point where =
      rearrival ? drop_off_[static_cast<size_t>(e.entity_id)] : w.location;
  COMX_RETURN_IF_ERROR(pool_->OnArrival(e.entity_id, where, e.time));
  pool_meter_.Allocate(kPoolEntryBytes);
  ++available_workers_;
  if (pool_gauge_ != nullptr) {
    pool_gauge_->Set(static_cast<double>(available_workers_));
  }
  if (record != nullptr) {
    record->kind = StepRecord::Kind::kArrival;
    record->worker = e.entity_id;
    record->x = where.x;
    record->y = where.y;
    record->time = e.time;
    record->rearrival = rearrival;
  }
  return Status::OK();
}

Status SimEngine::StepRequest(const Event& e, StepRecord* record) {
  const Request& r = instance_->request(e.entity_id);
  PlatformMetrics& pm =
      result_.metrics.per_platform[static_cast<size_t>(r.platform)];
  OnlineMatcher* matcher = matchers_[static_cast<size_t>(r.platform)];
  const PlatformView& view =
      fault_session_.has_value()
          ? static_cast<const PlatformView&>(
                faulty_views_[static_cast<size_t>(r.platform)])
          : views_[static_cast<size_t>(r.platform)];

  if (collect_) {
    counters_[static_cast<size_t>(r.platform)].requests->Inc();
  }
  if (config_.measure_response_time) request_clock_.Reset();
  Decision decision;
  {
    COMX_SPAN("decide");
    decision = matcher->OnRequest(r, view);
  }
  int64_t decide_nanos = -1;
  if (config_.measure_response_time) {
    decide_nanos = request_clock_.ElapsedNanos();
    pm.response_time_us.Add(static_cast<double>(decide_nanos) / 1e3);
    decision_latency_.ObserveNanos(decide_nanos);
  }

  if (record != nullptr) {
    record->kind = StepRecord::Kind::kDecision;
    record->request = r.id;
    record->platform = r.platform;
    record->time = r.time;
    record->value = r.value;
    record->stats = decision.stats;
  }

  // Two-phase outer commit under fault injection: reserve the chosen
  // worker with its partner before booking. A stale-view conflict (the
  // worker was assigned elsewhere between query and commit) falls back
  // to the matcher's next accepting candidate; exhausting all of them
  // degrades the request to a reject — never a violated invariable
  // constraint, never a failed run.
  if (fault_session_.has_value() && decision.kind == Decision::Kind::kOuter) {
    WorkerId reserved = kInvalidId;
    const PlatformId first_partner =
        instance_->worker(decision.worker).platform;
    const bool first_ok =
        fault_session_->TryReserve(r.platform, first_partner, r.time);
    if (record != nullptr) {
      record->reserves.push_back(
          StepReserveEvent{first_partner, decision.worker, first_ok});
    }
    if (first_ok) {
      reserved = decision.worker;
    } else {
      for (WorkerId c : decision.fallback_workers) {
        const PlatformId partner = instance_->worker(c).platform;
        const bool ok = fault_session_->TryReserve(r.platform, partner, r.time);
        if (record != nullptr) {
          record->reserves.push_back(StepReserveEvent{partner, c, ok});
        }
        if (ok) {
          reserved = c;
          break;
        }
      }
    }
    if (reserved == kInvalidId) {
      fault_session_->NoteDegraded();
      Decision rejected = Decision::Reject();
      rejected.attempted_outer = decision.attempted_outer;
      rejected.stats = decision.stats;
      decision = std::move(rejected);
    } else {
      decision.worker = reserved;
    }
  }

  if (decision.attempted_outer) ++pm.outer_offers;

  if (decision.kind == Decision::Kind::kReject) {
    ++pm.rejected;
    if (collect_) {
      counters_[static_cast<size_t>(r.platform)].rejects->Inc();
    }
    const fault::RequestFaultInfo finfo =
        fault_session_.has_value() ? fault_session_->TakeRequestInfo()
                                   : fault::RequestFaultInfo{};
    if (record != nullptr) {
      record->outcome = static_cast<int8_t>(Decision::Kind::kReject);
      record->worker = kInvalidId;
      record->fault = finfo;
    }
    if (config_.trace != nullptr) {
      obs::TraceEvent ev = MakeTraceEvent(decision_seq_++, r, decision);
      ev.outcome = "reject";
      ev.latency_ns = decide_nanos;
      ev.fault_retries = finfo.retries;
      ev.fault_failed_partners = finfo.failed_partners;
      ev.fault_reserve_conflicts = finfo.reserve_conflicts;
      ev.degraded = finfo.degraded;
      config_.trace->Record(ev);
    }
    return Status::OK();
  }

  // Validate and apply the decision.
  const WorkerId wid = decision.worker;
  if (wid < 0 || wid >= static_cast<WorkerId>(instance_->workers().size())) {
    return Status::Internal(
        StrFormat("%s returned invalid worker id", matcher->name().c_str()));
  }
  if (!pool_->IsAvailable(wid)) {
    return Status::Internal(StrFormat("%s assigned an occupied worker",
                                      matcher->name().c_str()));
  }
  const Worker& w = instance_->worker(wid);
  const bool is_outer = w.platform != r.platform;
  if ((decision.kind == Decision::Kind::kOuter) != is_outer) {
    return Status::Internal(
        StrFormat("%s mislabelled inner/outer for worker %lld",
                  matcher->name().c_str(), static_cast<long long>(wid)));
  }
  const double pickup_km =
      metric_->Distance(pool_->CurrentLocation(wid), r.location);
  if (pickup_km > w.radius + 1e-9) {
    return Status::Internal(
        StrFormat("%s violated the range constraint (%.3f > %.3f)",
                  matcher->name().c_str(), pickup_km, w.radius));
  }
  if (pool_->AvailableSince(wid) > r.time) {
    return Status::Internal(
        StrFormat("%s violated the time constraint", matcher->name().c_str()));
  }

  Assignment a;
  a.request = r.id;
  a.worker = wid;
  a.is_outer = is_outer;
  if (is_outer) {
    const double payment = decision.outer_payment;
    if (!(payment > 0.0) || payment > r.value + 1e-9) {
      return Status::Internal(
          StrFormat("%s quoted outer payment %.4f outside (0, v=%.4f]",
                    matcher->name().c_str(), payment, r.value));
    }
    a.outer_payment = payment;
    a.revenue = r.value - payment;
    ++pm.completed_outer;
    pm.outer_payment_sum += payment;
    pm.payment_rate_sum += payment / r.value;
  } else {
    a.outer_payment = 0.0;
    a.revenue = r.value;
    ++pm.completed_inner;
  }
  ++pm.completed;
  pm.revenue += a.revenue;
  pm.total_pickup_km += pickup_km;
  result_.matching.Add(a);

  if (collect_) {
    const PlatformCounters& pc = counters_[static_cast<size_t>(r.platform)];
    (is_outer ? pc.outer : pc.inner)->Inc();
  }
  const fault::RequestFaultInfo finfo =
      fault_session_.has_value() ? fault_session_->TakeRequestInfo()
                                 : fault::RequestFaultInfo{};
  if (record != nullptr) {
    record->outcome = static_cast<int8_t>(decision.kind);
    record->worker = wid;
    record->payment = a.outer_payment;
    record->revenue = a.revenue;
    record->pickup_km = pickup_km;
    record->fault = finfo;
  }
  if (config_.trace != nullptr) {
    obs::TraceEvent ev = MakeTraceEvent(decision_seq_++, r, decision);
    ev.outcome = is_outer ? "outer" : "inner";
    ev.worker = wid;
    ev.payment = a.outer_payment;
    ev.revenue = a.revenue;
    ev.latency_ns = decide_nanos;
    ev.fault_retries = finfo.retries;
    ev.fault_failed_partners = finfo.failed_partners;
    ev.fault_reserve_conflicts = finfo.reserve_conflicts;
    ev.degraded = finfo.degraded;
    config_.trace->Record(ev);
  }

  {
    COMX_SPAN("pool_commit");
    COMX_RETURN_IF_ERROR(pool_->MarkOccupied(wid));
    pool_meter_.Release(kPoolEntryBytes);
    --available_workers_;
    if (pool_gauge_ != nullptr) {
      pool_gauge_->Set(static_cast<double>(available_workers_));
    }

    if (config_.workers_recycle) {
      const double duration =
          ServiceDurationSeconds(config_, pickup_km, r.value);
      Event rearrival;
      rearrival.time = r.time + duration;
      rearrival.kind = EventKind::kWorkerArrival;
      rearrival.entity_id = wid;
      rearrival.sequence = dynamic_sequence_++;
      drop_off_[static_cast<size_t>(wid)] = r.location;
      dynamic_events_.push_back(rearrival);
      std::push_heap(dynamic_events_.begin(), dynamic_events_.end(),
                     EventGreater{});
    }
  }
  return Status::OK();
}

SimResult SimEngine::Finish() {
  if (fault_session_.has_value()) {
    result_.fault_stats = fault_session_->stats();
    fault_session_->PublishMetrics();
  }

  result_.metrics.logical_bytes =
      InstanceLogicalBytes(*instance_) + pool_meter_.peak_bytes();
  result_.metrics.rss_bytes = CurrentRssBytes();
  result_.metrics.wall_seconds = wall_.ElapsedNanos() / 1e9;
  if (config_.measure_response_time) {
    result_.metrics.decision_latency = decision_latency_.Snapshot();
  }

  if (config_.trace != nullptr) {
    obs::TraceSummary summary;
    summary.events_written = decision_seq_;
    summary.assignments =
        static_cast<int64_t>(result_.matching.assignments.size());
    summary.platform_revenue.reserve(result_.metrics.per_platform.size());
    // Accumulate the grand total in platform order, matching both
    // SimMetrics::TotalRevenue() and the replay in obs/trace.cc, so the
    // recorded and re-derived totals are bit-identical.
    double total = 0.0;
    for (const PlatformMetrics& p : result_.metrics.per_platform) {
      summary.platform_revenue.push_back(p.revenue);
      total += p.revenue;
    }
    summary.total_revenue = total;
    // Latency block: mirrors the per-event latency_ns values exactly (same
    // observations, same bucketing), which CheckTraceLatency() verifies.
    const obs::LatencySnapshot& lat = result_.metrics.decision_latency;
    if (lat.count > 0) {
      summary.latency_count = lat.count;
      summary.latency_sum_ns = lat.sum_nanos;
      summary.latency_max_ns = lat.max_nanos;
      summary.latency_buckets = lat.NonZeroBuckets();
    }
    config_.trace->Summary(summary);
  }
  return std::move(result_);
}

double SimEngine::TotalRevenueSoFar() const {
  double total = 0.0;
  for (const PlatformMetrics& p : result_.metrics.per_platform) {
    total += p.revenue;
  }
  return total;
}

Status SimEngine::SaveState(ByteWriter* out) const {
  if (config_.batch_mode) {
    return Status::FailedPrecondition(
        "SaveState is not supported in batch mode: open windows and the "
        "warm-started window solver are not serialized");
  }
  if (config_.measure_response_time) {
    return Status::FailedPrecondition(
        "SaveState requires measure_response_time off: the latency "
        "histogram is wall-clock noise, not durable state");
  }
  out->U32(kEngineStateVersion);
  out->I64(step_index_);
  out->U64(static_cast<uint64_t>(cursor_));
  out->I64(dynamic_sequence_);
  out->I64(decision_seq_);
  out->I64(available_workers_);
  out->I64(pool_meter_.live_bytes());
  out->I64(pool_meter_.peak_bytes());

  out->U64(static_cast<uint64_t>(dynamic_events_.size()));
  for (const Event& e : dynamic_events_) {
    out->F64(e.time);
    out->I64(e.entity_id);
    out->I64(e.sequence);
  }
  out->U64(static_cast<uint64_t>(drop_off_.size()));
  for (const Point& p : drop_off_) {
    out->F64(p.x);
    out->F64(p.y);
  }

  // Pool availability: id, current location, available-since for every
  // available worker. Occupied workers carry no live state the simulation
  // ever reads again (their next OnArrival overwrites everything), so
  // replaying these arrivals into a fresh pool rebuilds the grid index and
  // SoA mirror exactly.
  const kernels::WorkerSoA& soa = pool_->soa();
  uint64_t avail = 0;
  for (size_t w = 0; w < soa.size(); ++w) {
    if (soa.available()[w] != 0) ++avail;
  }
  out->U64(avail);
  for (size_t w = 0; w < soa.size(); ++w) {
    if (soa.available()[w] == 0) continue;
    out->I64(static_cast<int64_t>(w));
    out->F64(soa.x()[w]);
    out->F64(soa.y()[w]);
    out->F64(soa.available_since()[w]);
  }

  out->U64(static_cast<uint64_t>(result_.metrics.per_platform.size()));
  for (const PlatformMetrics& pm : result_.metrics.per_platform) {
    out->F64(pm.revenue);
    out->I64(pm.completed);
    out->I64(pm.completed_inner);
    out->I64(pm.completed_outer);
    out->I64(pm.rejected);
    out->I64(pm.outer_offers);
    out->F64(pm.outer_payment_sum);
    out->F64(pm.payment_rate_sum);
    out->F64(pm.total_pickup_km);
    WriteStats(pm.response_time_us, out);
  }

  out->U64(static_cast<uint64_t>(result_.matching.assignments.size()));
  for (const Assignment& a : result_.matching.assignments) {
    out->I64(a.request);
    out->I64(a.worker);
    out->Bool(a.is_outer);
    out->F64(a.outer_payment);
    out->F64(a.revenue);
  }
  out->F64(result_.matching.total_revenue);

  for (OnlineMatcher* m : matchers_) {
    ByteWriter blob;
    COMX_RETURN_IF_ERROR(m->SaveState(&blob));
    out->Str(blob.str());
  }

  out->Bool(fault_session_.has_value());
  if (fault_session_.has_value()) {
    fault_session_->SaveState(out);
  }
  return Status::OK();
}

Status SimEngine::RestoreState(ByteReader* in) {
  uint32_t version;
  COMX_RETURN_IF_ERROR(in->U32(&version));
  if (version != kEngineStateVersion) {
    return Status::DataLoss(
        StrFormat("engine state version %u, expected %u", version,
                  kEngineStateVersion));
  }
  COMX_RETURN_IF_ERROR(in->I64(&step_index_));
  uint64_t cursor;
  COMX_RETURN_IF_ERROR(in->U64(&cursor));
  if (cursor > static_events_.size()) {
    return Status::DataLoss("engine state: cursor past the static stream");
  }
  cursor_ = static_cast<size_t>(cursor);
  COMX_RETURN_IF_ERROR(in->I64(&dynamic_sequence_));
  COMX_RETURN_IF_ERROR(in->I64(&decision_seq_));
  COMX_RETURN_IF_ERROR(in->I64(&available_workers_));
  int64_t live_bytes, peak_bytes;
  COMX_RETURN_IF_ERROR(in->I64(&live_bytes));
  COMX_RETURN_IF_ERROR(in->I64(&peak_bytes));
  pool_meter_.Reset();
  pool_meter_.Allocate(peak_bytes);
  pool_meter_.Release(peak_bytes - live_bytes);

  uint64_t n;
  COMX_RETURN_IF_ERROR(in->U64(&n));
  dynamic_events_.clear();
  dynamic_events_.reserve(static_cast<size_t>(n));
  for (uint64_t i = 0; i < n; ++i) {
    Event e;
    e.kind = EventKind::kWorkerArrival;
    COMX_RETURN_IF_ERROR(in->F64(&e.time));
    COMX_RETURN_IF_ERROR(in->I64(&e.entity_id));
    COMX_RETURN_IF_ERROR(in->I64(&e.sequence));
    dynamic_events_.push_back(e);
  }

  COMX_RETURN_IF_ERROR(in->U64(&n));
  if (n != drop_off_.size()) {
    return Status::DataLoss("engine state: drop-off table size mismatch");
  }
  for (Point& p : drop_off_) {
    COMX_RETURN_IF_ERROR(in->F64(&p.x));
    COMX_RETURN_IF_ERROR(in->F64(&p.y));
  }

  // Rebuild the pool from scratch by replaying the availability set, then
  // re-point the platform views at the fresh pool.
  pool_.emplace(*instance_, metric_);
  COMX_RETURN_IF_ERROR(in->U64(&n));
  for (uint64_t i = 0; i < n; ++i) {
    int64_t w;
    double x, y, since;
    COMX_RETURN_IF_ERROR(in->I64(&w));
    COMX_RETURN_IF_ERROR(in->F64(&x));
    COMX_RETURN_IF_ERROR(in->F64(&y));
    COMX_RETURN_IF_ERROR(in->F64(&since));
    COMX_RETURN_IF_ERROR(pool_->OnArrival(w, Point(x, y), since));
  }

  COMX_RETURN_IF_ERROR(in->U64(&n));
  if (n != result_.metrics.per_platform.size()) {
    return Status::DataLoss("engine state: platform count mismatch");
  }
  for (PlatformMetrics& pm : result_.metrics.per_platform) {
    COMX_RETURN_IF_ERROR(in->F64(&pm.revenue));
    COMX_RETURN_IF_ERROR(in->I64(&pm.completed));
    COMX_RETURN_IF_ERROR(in->I64(&pm.completed_inner));
    COMX_RETURN_IF_ERROR(in->I64(&pm.completed_outer));
    COMX_RETURN_IF_ERROR(in->I64(&pm.rejected));
    COMX_RETURN_IF_ERROR(in->I64(&pm.outer_offers));
    COMX_RETURN_IF_ERROR(in->F64(&pm.outer_payment_sum));
    COMX_RETURN_IF_ERROR(in->F64(&pm.payment_rate_sum));
    COMX_RETURN_IF_ERROR(in->F64(&pm.total_pickup_km));
    COMX_RETURN_IF_ERROR(ReadStats(in, &pm.response_time_us));
  }

  COMX_RETURN_IF_ERROR(in->U64(&n));
  result_.matching = Matching{};
  result_.matching.assignments.reserve(static_cast<size_t>(n));
  for (uint64_t i = 0; i < n; ++i) {
    Assignment a;
    COMX_RETURN_IF_ERROR(in->I64(&a.request));
    COMX_RETURN_IF_ERROR(in->I64(&a.worker));
    COMX_RETURN_IF_ERROR(in->Bool(&a.is_outer));
    COMX_RETURN_IF_ERROR(in->F64(&a.outer_payment));
    COMX_RETURN_IF_ERROR(in->F64(&a.revenue));
    result_.matching.assignments.push_back(a);
  }
  COMX_RETURN_IF_ERROR(in->F64(&result_.matching.total_revenue));

  for (OnlineMatcher* m : matchers_) {
    std::string blob;
    COMX_RETURN_IF_ERROR(in->Str(&blob));
    ByteReader blob_reader(blob);
    COMX_RETURN_IF_ERROR(m->RestoreState(&blob_reader));
    if (!blob_reader.AtEnd()) {
      return Status::DataLoss(
          StrFormat("%s state blob has %zu trailing bytes",
                    m->name().c_str(), blob_reader.Remaining()));
    }
  }

  bool has_fault;
  COMX_RETURN_IF_ERROR(in->Bool(&has_fault));
  if (has_fault != fault_session_.has_value()) {
    return Status::DataLoss("engine state: fault-session presence mismatch");
  }
  if (has_fault) {
    COMX_RETURN_IF_ERROR(fault_session_->RestoreState(in));
  }
  BuildViews();
  return Status::OK();
}

uint64_t SimEngine::StateDigest() const {
  ByteWriter w;
  w.I64(step_index_);
  w.I64(decision_seq_);
  w.I64(dynamic_sequence_);
  w.I64(available_workers_);
  w.F64(result_.matching.total_revenue);
  for (const PlatformMetrics& pm : result_.metrics.per_platform) {
    w.F64(pm.revenue);
    w.I64(pm.completed);
    w.I64(pm.rejected);
  }
  for (OnlineMatcher* m : matchers_) {
    ByteWriter blob;
    if (m->SaveState(&blob).ok()) w.Str(blob.str());
  }
  if (fault_session_.has_value()) {
    fault_session_->SaveState(&w);
  }
  return Crc32c(w.str());
}

}  // namespace comx
