#include "fault/fault_injector.h"

#include <gtest/gtest.h>

#include "fault/fault_plan.h"

namespace comx {
namespace fault {
namespace {

FaultPlan PlanWith(PartnerFaultSpec spec) {
  FaultPlan plan;
  plan.partners.push_back(spec);
  return plan;
}

TEST(FaultInjectorTest, UnmentionedPartnerIsNotFaulty) {
  const FaultPlan plan;
  FaultInjector injector(plan, 1);
  EXPECT_FALSE(injector.PartnerFaulty(0));
  EXPECT_TRUE(injector.QueryAttempt(0, 0.0).ok());
  EXPECT_FALSE(injector.ReserveConflict(0));
}

TEST(FaultInjectorTest, TrivialSpecConsumesNoDraws) {
  PartnerFaultSpec spec;
  spec.partner = 0;  // all defaults: can never fail
  const FaultPlan plan = PlanWith(spec);
  // Two injectors with identical seeds; one hammers the trivial partner
  // first. If trivial queries consumed RNG draws the jitter streams below
  // would diverge.
  FaultInjector busy(plan, 42);
  FaultInjector idle(plan, 42);
  for (int i = 0; i < 100; ++i) {
    EXPECT_TRUE(busy.QueryAttempt(0, static_cast<Timestamp>(i)).ok());
    EXPECT_FALSE(busy.ReserveConflict(0));
  }
  for (int i = 0; i < 8; ++i) {
    EXPECT_DOUBLE_EQ(busy.JitterUnit(), idle.JitterUnit());
  }
}

TEST(FaultInjectorTest, ZeroAvailabilityAlwaysFails) {
  PartnerFaultSpec spec;
  spec.partner = 0;
  spec.availability = 0.0;
  const FaultPlan plan = PlanWith(spec);
  FaultInjector injector(plan, 3);
  for (int i = 0; i < 50; ++i) {
    EXPECT_EQ(injector.QueryAttempt(0, 0.0).outcome,
              AttemptOutcome::kUnavailable);
  }
}

TEST(FaultInjectorTest, OutageWindowBeatsEverythingAndConsumesNoDraw) {
  PartnerFaultSpec spec;
  spec.partner = 0;
  spec.availability = 0.5;
  spec.outages.push_back({100.0, 200.0});
  const FaultPlan plan = PlanWith(spec);
  FaultInjector a(plan, 9);
  FaultInjector b(plan, 9);
  // `a` queries inside the outage (deterministic, no draw), then outside;
  // `b` only queries outside. The outside streams must be identical.
  for (int i = 0; i < 20; ++i) {
    EXPECT_EQ(a.QueryAttempt(0, 150.0).outcome, AttemptOutcome::kOutage);
  }
  for (int i = 0; i < 20; ++i) {
    EXPECT_EQ(a.QueryAttempt(0, 250.0).outcome,
              b.QueryAttempt(0, 250.0).outcome);
  }
}

TEST(FaultInjectorTest, LatencyOverBudgetTimesOut) {
  PartnerFaultSpec spec;
  spec.partner = 0;
  spec.latency_ms_mean = 1000.0;
  spec.timeout_ms = 1.0;  // nearly every exponential draw exceeds this
  const FaultPlan plan = PlanWith(spec);
  FaultInjector injector(plan, 5);
  int timeouts = 0;
  for (int i = 0; i < 200; ++i) {
    const AttemptResult result = injector.QueryAttempt(0, 0.0);
    if (result.outcome == AttemptOutcome::kTimeout) {
      ++timeouts;
      EXPECT_GT(result.latency_ms, 1.0);
    }
  }
  EXPECT_GT(timeouts, 150);
}

TEST(FaultInjectorTest, StaleProbabilityOneAlwaysConflicts) {
  PartnerFaultSpec spec;
  spec.partner = 0;
  spec.stale_probability = 1.0;
  const FaultPlan plan = PlanWith(spec);
  FaultInjector injector(plan, 11);
  for (int i = 0; i < 20; ++i) EXPECT_TRUE(injector.ReserveConflict(0));
}

TEST(FaultInjectorTest, SameSeedsSameOutcomeSequence) {
  PartnerFaultSpec spec;
  spec.partner = 1;
  spec.availability = 0.7;
  spec.latency_ms_mean = 10.0;
  spec.timeout_ms = 25.0;
  spec.stale_probability = 0.3;
  FaultPlan plan = PlanWith(spec);
  plan.seed = 123;
  FaultInjector a(plan, 77);
  FaultInjector b(plan, 77);
  for (int i = 0; i < 200; ++i) {
    const AttemptResult ra = a.QueryAttempt(1, static_cast<Timestamp>(i));
    const AttemptResult rb = b.QueryAttempt(1, static_cast<Timestamp>(i));
    EXPECT_EQ(ra.outcome, rb.outcome);
    EXPECT_DOUBLE_EQ(ra.latency_ms, rb.latency_ms);
    EXPECT_EQ(a.ReserveConflict(1), b.ReserveConflict(1));
  }
}

TEST(FaultInjectorTest, DifferentPlanSeedsDiverge) {
  PartnerFaultSpec spec;
  spec.partner = 0;
  spec.availability = 0.5;
  FaultPlan plan_a = PlanWith(spec);
  FaultPlan plan_b = PlanWith(spec);
  plan_a.seed = 1;
  plan_b.seed = 2;
  FaultInjector a(plan_a, 7);
  FaultInjector b(plan_b, 7);
  bool diverged = false;
  for (int i = 0; i < 64 && !diverged; ++i) {
    diverged = a.QueryAttempt(0, 0.0).outcome != b.QueryAttempt(0, 0.0).outcome;
  }
  EXPECT_TRUE(diverged);
}

}  // namespace
}  // namespace fault
}  // namespace comx
