#include "matching/batch_matcher.h"

#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "matching/brute_force.h"
#include "matching/hungarian.h"
#include "util/rng.h"

namespace comx {
namespace {

using testing_fixtures::RandomGraph;
using testing_fixtures::RandomIntegerGraph;

std::vector<WorkerId> IdentityColumns(int32_t right, WorkerId base = 0) {
  std::vector<WorkerId> ids;
  for (int32_t j = 0; j < right; ++j) ids.push_back(base + j);
  return ids;
}

TEST(BatchAlgoTest, NameParseRoundTrip) {
  for (BatchAlgo algo :
       {BatchAlgo::kAuto, BatchAlgo::kGreedy, BatchAlgo::kHungarian,
        BatchAlgo::kAuction, BatchAlgo::kIncrementalKm}) {
    auto parsed = ParseBatchAlgo(BatchAlgoName(algo));
    ASSERT_TRUE(parsed.ok()) << BatchAlgoName(algo);
    EXPECT_EQ(*parsed, algo);
  }
  EXPECT_EQ(ParseBatchAlgo("hungry").status().code(),
            StatusCode::kInvalidArgument);
}

TEST(BatchMatcherTest, RejectsColumnMapSizeMismatch) {
  BatchMatcher matcher;
  BipartiteGraph g(1, 2);
  ASSERT_TRUE(g.AddEdge(0, 0, 1.0).ok());
  EXPECT_EQ(matcher.SolveWindow(g, IdentityColumns(1)).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(BatchMatcherTest, AutoRoutesLikeTheLegacyBatchSimulator) {
  Rng rng(11);
  const BipartiteGraph g = RandomGraph(6, 6, 0.6, &rng);
  BatchMatchConfig small;
  BatchMatcher dense(small);
  ASSERT_TRUE(dense.SolveWindow(g, IdentityColumns(6)).ok());
  EXPECT_STREQ(dense.last_solver(), "hungarian");

  BatchMatchConfig tiny_limit;
  tiny_limit.auto_dense_cell_limit = 0;
  BatchMatcher greedy(tiny_limit);
  ASSERT_TRUE(greedy.SolveWindow(g, IdentityColumns(6)).ok());
  EXPECT_STREQ(greedy.last_solver(), "greedy");
}

TEST(BatchMatcherTest, ExactBackendsAgreeWithHungarianPerWindow) {
  Rng rng(2020);
  for (int trial = 0; trial < 40; ++trial) {
    const int32_t left = static_cast<int32_t>(rng.UniformInt(0, 16));
    const int32_t right = static_cast<int32_t>(rng.UniformInt(1, 16));
    const BipartiteGraph g = RandomGraph(left, right, 0.5, &rng);
    auto reference = HungarianMaxWeight(g);
    ASSERT_TRUE(reference.ok());
    for (BatchAlgo algo :
         {BatchAlgo::kAuto, BatchAlgo::kHungarian,
          BatchAlgo::kIncrementalKm}) {
      BatchMatchConfig config;
      config.algo = algo;
      BatchMatcher matcher(config);
      auto got = matcher.SolveWindow(g, IdentityColumns(right));
      ASSERT_TRUE(got.ok()) << BatchAlgoName(algo);
      EXPECT_NEAR(got->total_weight, reference->total_weight, 1e-9)
          << "trial " << trial << " algo " << BatchAlgoName(algo);
    }
  }
}

// Satellite: epsilon-scaling termination makes the auction *exactly* equal
// to Hungarian on integer-scaled costs — no tolerance.
TEST(BatchMatcherTest, AuctionEqualsHungarianOnIntegerCosts) {
  Rng rng(606);
  for (int trial = 0; trial < 60; ++trial) {
    const int32_t left = static_cast<int32_t>(rng.UniformInt(0, 12));
    const int32_t right = static_cast<int32_t>(rng.UniformInt(1, 12));
    const BipartiteGraph g =
        RandomIntegerGraph(left, right, 0.6, /*max_weight=*/50, &rng);
    auto reference = HungarianMaxWeight(g);
    ASSERT_TRUE(reference.ok());
    BatchMatchConfig config;
    config.algo = BatchAlgo::kAuction;
    config.auction.integer_exact = true;
    BatchMatcher matcher(config);
    auto got = matcher.SolveWindow(g, IdentityColumns(right));
    ASSERT_TRUE(got.ok());
    EXPECT_EQ(got->total_weight, reference->total_weight)
        << "trial " << trial;
  }
}

TEST(BatchMatcherTest, IntegerExactAuctionRejectsFractionalWeights) {
  BipartiteGraph g(1, 1);
  ASSERT_TRUE(g.AddEdge(0, 0, 1.5).ok());
  BatchMatchConfig config;
  config.algo = BatchAlgo::kAuction;
  config.auction.integer_exact = true;
  BatchMatcher matcher(config);
  EXPECT_EQ(matcher.SolveWindow(g, IdentityColumns(1)).status().code(),
            StatusCode::kInvalidArgument);
}

// Satellite: the dual-feasibility invariant (u_i + v_j <= c_ij) must hold
// after every warm-started window, and warm starting must never change the
// per-window optimum.
TEST(BatchMatcherTest, WarmStartedWindowsStayOptimalAndDualFeasible) {
  Rng rng(31337);
  BatchMatchConfig config;
  config.algo = BatchAlgo::kIncrementalKm;
  config.warm_start = true;
  BatchMatcher matcher(config);
  // A rolling fleet: consecutive windows share most of their workers, so
  // the carried duals actually hit.
  for (int window = 0; window < 30; ++window) {
    const int32_t left = static_cast<int32_t>(rng.UniformInt(1, 10));
    const int32_t right = static_cast<int32_t>(rng.UniformInt(1, 10));
    const BipartiteGraph g = RandomGraph(left, right, 0.6, &rng);
    std::vector<WorkerId> workers;
    for (int32_t j = 0; j < right; ++j) {
      // Ids drawn from a small pool to force heavy reuse across windows.
      workers.push_back(rng.UniformInt(0, 14));
    }
    auto got = matcher.SolveWindow(g, workers);
    ASSERT_TRUE(got.ok()) << "window " << window;
    EXPECT_STREQ(matcher.last_solver(), "incremental_km");
    EXPECT_LE(matcher.last_dual_gap(), 1e-9) << "window " << window;
    auto reference = HungarianMaxWeight(g);
    ASSERT_TRUE(reference.ok());
    EXPECT_NEAR(got->total_weight, reference->total_weight, 1e-9)
        << "window " << window;
  }
  matcher.ResetWarmState();
  const BipartiteGraph g = RandomGraph(4, 4, 0.8, &rng);
  auto after_reset = matcher.SolveWindow(g, IdentityColumns(4));
  ASSERT_TRUE(after_reset.ok());
  auto reference = HungarianMaxWeight(g);
  ASSERT_TRUE(reference.ok());
  EXPECT_NEAR(after_reset->total_weight, reference->total_weight, 1e-9);
}

TEST(BatchMatcherTest, ColdIncrementalMatchesWarmIncremental) {
  // Warm starting is a performance lever, not a semantic one: the same
  // window sequence solved cold must produce the same totals.
  Rng rng_a(55), rng_b(55);
  BatchMatchConfig warm_config;
  warm_config.algo = BatchAlgo::kIncrementalKm;
  warm_config.warm_start = true;
  BatchMatchConfig cold_config = warm_config;
  cold_config.warm_start = false;
  BatchMatcher warm(warm_config), cold(cold_config);
  for (int window = 0; window < 20; ++window) {
    const BipartiteGraph g = RandomGraph(6, 6, 0.5, &rng_a);
    const BipartiteGraph h = RandomGraph(6, 6, 0.5, &rng_b);
    auto a = warm.SolveWindow(g, IdentityColumns(6));
    auto b = cold.SolveWindow(h, IdentityColumns(6));
    ASSERT_TRUE(a.ok());
    ASSERT_TRUE(b.ok());
    EXPECT_NEAR(a->total_weight, b->total_weight, 1e-9)
        << "window " << window;
  }
}

}  // namespace
}  // namespace comx
