// Road network: an undirected weighted graph embedded in the plane.
// Section II of the paper notes COM generalizes from Euclidean ranges to
// shortest-path distances over road networks ("changing the service range
// from circulars to irregular shapes"); this substrate provides that
// backend (see road_metric.h for the sim integration).

#ifndef COMX_ROADNET_ROAD_GRAPH_H_
#define COMX_ROADNET_ROAD_GRAPH_H_

#include <cstdint>
#include <string>
#include <vector>

#include "geo/grid_index.h"
#include "geo/point.h"
#include "util/result.h"
#include "util/status.h"

namespace comx {

/// Node id within a RoadGraph (dense, 0-based).
using NodeId = int32_t;

/// One directed half-edge in the adjacency list.
struct RoadArc {
  NodeId to = 0;
  /// Travel distance in km (>= the Euclidean distance between endpoints,
  /// enforced at AddEdge, which keeps the A* Euclidean heuristic
  /// admissible).
  double length_km = 0.0;
};

/// Undirected, planar-embedded road network.
class RoadGraph {
 public:
  RoadGraph() = default;

  /// Adds an intersection at `location`; returns its dense id.
  NodeId AddNode(const Point& location);

  /// Adds an undirected road segment. `length_km` <= 0 means "use the
  /// Euclidean distance". Errors when ids are out of range, the endpoints
  /// coincide with themselves (self-loop), or the length is below the
  /// Euclidean distance between the endpoints.
  Status AddEdge(NodeId a, NodeId b, double length_km = 0.0);

  /// Number of nodes.
  int32_t node_count() const { return static_cast<int32_t>(nodes_.size()); }

  /// Number of undirected edges.
  int64_t edge_count() const { return edge_count_; }

  /// Location of a node.
  const Point& NodeLocation(NodeId id) const {
    return nodes_[static_cast<size_t>(id)];
  }

  /// Outgoing arcs of a node.
  const std::vector<RoadArc>& ArcsFrom(NodeId id) const {
    return adjacency_[static_cast<size_t>(id)];
  }

  /// Nearest node to an arbitrary point (Euclidean snap). Errors with
  /// FailedPrecondition on an empty graph.
  Result<NodeId> NearestNode(const Point& p) const;

  /// True when every node can reach every other (BFS from node 0).
  bool IsConnected() const;

  /// Sum of all edge lengths (km of road).
  double TotalRoadKm() const;

  /// Compact description for logs.
  std::string Summary() const;

 private:
  void EnsureSnapIndex() const;

  std::vector<Point> nodes_;
  std::vector<std::vector<RoadArc>> adjacency_;
  int64_t edge_count_ = 0;
  // Lazy nearest-node index; rebuilt when nodes were added since last use.
  mutable GridIndex snap_index_{0.5};
  mutable size_t snap_indexed_count_ = 0;
};

}  // namespace comx

#endif  // COMX_ROADNET_ROAD_GRAPH_H_
