// trace_inspect — replays a decision trace written by `comx_cli run
// --trace-out` (or any obs::JsonlTraceWriter) and cross-checks it against
// its own summary line: event counts must match and the per-platform /
// total revenue re-accumulated from the decision lines must reproduce the
// recorded totals bit-exactly. Exit 0 when the trace checks out, 1 on any
// mismatch or parse error.
//
// Usage:
//   trace_inspect TRACE.jsonl [--quiet]

#include <cstdio>
#include <cstring>
#include <string>

#include "obs/trace.h"

namespace comx {
namespace {

int Main(int argc, char** argv) {
  const char* path = nullptr;
  bool quiet = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quiet") == 0) {
      quiet = true;
    } else if (path == nullptr) {
      path = argv[i];
    } else {
      std::fprintf(stderr, "usage: trace_inspect TRACE.jsonl [--quiet]\n");
      return 2;
    }
  }
  if (path == nullptr) {
    std::fprintf(stderr, "usage: trace_inspect TRACE.jsonl [--quiet]\n");
    return 2;
  }

  auto replay = obs::ReplayTraceFile(path);
  if (!replay.ok()) {
    std::fprintf(stderr, "error: %s\n", replay.status().ToString().c_str());
    return 1;
  }

  if (!quiet) {
    std::printf("%s: %lld decision events, %lld assignments, %lld rejects\n",
                path, static_cast<long long>(replay->decision_events),
                static_cast<long long>(replay->assignments),
                static_cast<long long>(replay->decision_events -
                                       replay->assignments));
    for (size_t p = 0; p < replay->platform_revenue.size(); ++p) {
      std::printf("  platform %zu revenue: %.2f\n", p,
                  replay->platform_revenue[p]);
    }
    std::printf("  total revenue: %.2f\n", replay->total_revenue);
    std::printf("  Alg. 2 bisection iterations: %lld\n",
                static_cast<long long>(replay->bisect_iterations));
  }

  if (Status st = obs::CheckTraceReplay(*replay); !st.ok()) {
    std::fprintf(stderr, "trace check FAILED: %s\n", st.ToString().c_str());
    return 1;
  }
  if (!quiet) {
    std::printf("summary check OK: replayed totals reproduce the recorded "
                "revenue exactly\n");
  }
  return 0;
}

}  // namespace
}  // namespace comx

int main(int argc, char** argv) { return comx::Main(argc, argv); }
