#include "fault/circuit_breaker.h"

namespace comx {
namespace fault {

bool CircuitBreaker::AllowRequest(Timestamp now) {
  switch (state_) {
    case State::kClosed:
      return true;
    case State::kOpen:
      if (now - opened_at_ >= config_.open_seconds) {
        // The call that ends the cooldown IS the first half-open probe.
        MoveTo(State::kHalfOpen);
        probe_in_flight_ = true;
        return true;
      }
      return false;
    case State::kHalfOpen:
      // One probe at a time: concurrent callers are rejected until the
      // admitted probe reports back — a recovering partner sees a trickle,
      // never a storm.
      if (probe_in_flight_) return false;
      probe_in_flight_ = true;
      return true;
  }
  return true;
}

void CircuitBreaker::RecordSuccess(Timestamp /*now*/) {
  switch (state_) {
    case State::kClosed:
      consecutive_failures_ = 0;
      break;
    case State::kOpen:
      // A success can only follow an AllowRequest, which would have moved
      // us to half-open first; tolerate the call anyway.
      break;
    case State::kHalfOpen:
      probe_in_flight_ = false;
      if (++half_open_successes_ >= config_.half_open_successes) {
        MoveTo(State::kClosed);
      }
      break;
  }
}

void CircuitBreaker::RecordFailure(Timestamp now) {
  switch (state_) {
    case State::kClosed:
      if (++consecutive_failures_ >= config_.failure_threshold) {
        opened_at_ = now;
        MoveTo(State::kOpen);
      }
      break;
    case State::kOpen:
      break;
    case State::kHalfOpen:
      // One failed probe reopens and restarts the cooldown.
      probe_in_flight_ = false;
      opened_at_ = now;
      MoveTo(State::kOpen);
      break;
  }
}

void CircuitBreaker::MoveTo(State next) {
  if (state_ == next) return;
  state_ = next;
  // Every transition starts the new state clean: failure/success streaks
  // do not carry across (the half-open -> open re-open edge in particular
  // must zero half_open_successes_), and no probe can be in flight in a
  // state it was not admitted in.
  consecutive_failures_ = 0;
  half_open_successes_ = 0;
  probe_in_flight_ = false;
  ++transitions_;
}

const char* CircuitBreakerStateName(CircuitBreaker::State state) {
  switch (state) {
    case CircuitBreaker::State::kClosed:
      return "closed";
    case CircuitBreaker::State::kOpen:
      return "open";
    case CircuitBreaker::State::kHalfOpen:
      return "half_open";
  }
  return "unknown";
}

}  // namespace fault
}  // namespace comx
