#include "util/string_util.h"

#include <gtest/gtest.h>

namespace comx {
namespace {

TEST(SplitTest, Basic) {
  const auto parts = Split("a:b:c", ':');
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[1], "b");
  EXPECT_EQ(parts[2], "c");
}

TEST(SplitTest, KeepsEmptyFields) {
  const auto parts = Split("::", ':');
  ASSERT_EQ(parts.size(), 3u);
  for (const auto& p : parts) EXPECT_TRUE(p.empty());
}

TEST(SplitTest, NoDelimiter) {
  const auto parts = Split("abc", ',');
  ASSERT_EQ(parts.size(), 1u);
  EXPECT_EQ(parts[0], "abc");
}

TEST(TrimTest, StripsBothEnds) {
  EXPECT_EQ(Trim("  hi  "), "hi");
  EXPECT_EQ(Trim("\t\nx\r "), "x");
  EXPECT_EQ(Trim(""), "");
  EXPECT_EQ(Trim("   "), "");
  EXPECT_EQ(Trim("nowhitespace"), "nowhitespace");
}

TEST(JoinTest, Basic) {
  EXPECT_EQ(Join({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(Join({}, ","), "");
  EXPECT_EQ(Join({"solo"}, ","), "solo");
}

TEST(StrFormatTest, FormatsLikePrintf) {
  EXPECT_EQ(StrFormat("%d + %d = %d", 1, 2, 3), "1 + 2 = 3");
  EXPECT_EQ(StrFormat("%.2f", 3.14159), "3.14");
  EXPECT_EQ(StrFormat("%s!", "hey"), "hey!");
  EXPECT_EQ(StrFormat("empty"), "empty");
}

TEST(ParseDoubleTest, Valid) {
  auto r = ParseDouble("3.25");
  ASSERT_TRUE(r.ok());
  EXPECT_DOUBLE_EQ(r.value(), 3.25);
}

TEST(ParseDoubleTest, TrimsWhitespace) {
  auto r = ParseDouble("  -1e3 ");
  ASSERT_TRUE(r.ok());
  EXPECT_DOUBLE_EQ(r.value(), -1000.0);
}

TEST(ParseDoubleTest, RejectsGarbage) {
  EXPECT_FALSE(ParseDouble("3.5x").ok());
  EXPECT_FALSE(ParseDouble("").ok());
  EXPECT_FALSE(ParseDouble("abc").ok());
}

TEST(ParseInt64Test, Valid) {
  auto r = ParseInt64("-42");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), -42);
}

TEST(ParseInt64Test, RejectsFloatAndGarbage) {
  EXPECT_FALSE(ParseInt64("3.5").ok());
  EXPECT_FALSE(ParseInt64("").ok());
  EXPECT_FALSE(ParseInt64("12ab").ok());
}

TEST(ParseInt64Test, LargeValues) {
  auto r = ParseInt64("9007199254740993");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 9007199254740993ll);
}

}  // namespace
}  // namespace comx
