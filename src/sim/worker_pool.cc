#include "sim/worker_pool.h"

#include <algorithm>
#include <cmath>

#include "geo/distance.h"
#include "kernels/geo_kernels.h"
#include "util/string_util.h"

namespace comx {

WorkerPool::WorkerPool(const Instance& instance, const DistanceMetric* metric)
    : instance_(&instance),
      metric_(metric != nullptr ? metric : &DefaultMetric()),
      index_(/*cell_size_km=*/1.0),
      euclidean_(false) {
  soa_.Reset(instance.workers().size());
  for (const Worker& w : instance.workers()) {
    max_radius_ = std::max(max_radius_, w.radius);
    const size_t i = static_cast<size_t>(w.id);
    soa_.SetStatic(i, w.radius, static_cast<int32_t>(w.platform));
    soa_.SetPosition(i, w.location.x, w.location.y);
  }
  euclidean_ = metric_->name() == "euclidean";
}

Status WorkerPool::OnArrival(WorkerId w, const Point& location, Timestamp t) {
  if (!InRange(w)) {
    return Status::OutOfRange(
        StrFormat("worker id %lld outside [0, %zu)",
                  static_cast<long long>(w), soa_.size()));
  }
  if (soa_.available()[static_cast<size_t>(w)] != 0) {
    return Status::AlreadyExists("worker already in waiting list");
  }
  COMX_RETURN_IF_ERROR(index_.Insert(w, location));
  soa_.OnArrival(static_cast<size_t>(w), location.x, location.y, t);
  return Status::OK();
}

Status WorkerPool::MarkOccupied(WorkerId w) {
  if (!InRange(w)) {
    return Status::OutOfRange(
        StrFormat("worker id %lld outside [0, %zu)",
                  static_cast<long long>(w), soa_.size()));
  }
  if (soa_.available()[static_cast<size_t>(w)] == 0) {
    return Status::NotFound("worker not in waiting list");
  }
  COMX_RETURN_IF_ERROR(index_.Remove(w));
  soa_.OnOccupied(static_cast<size_t>(w));
  return Status::OK();
}

std::vector<WorkerId> WorkerPool::FeasibleWorkers(const Request& r,
                                                  PlatformId platform,
                                                  bool inner) const {
  return FeasibleWorkersAt(r, platform, inner, r.time);
}

std::vector<WorkerId> WorkerPool::FeasibleWorkersAt(const Request& r,
                                                    PlatformId platform,
                                                    bool inner,
                                                    Timestamp as_of) const {
  std::vector<WorkerId> out;
  const int32_t* platforms = soa_.platform();
  const double* since = soa_.available_since();
  const double* radius2 = soa_.radius2();
  index_.ForEachInRadius(
      r.location, max_radius_, [&](int64_t id, double d2) {
        const size_t i = static_cast<size_t>(id);
        const bool same = platforms[i] == static_cast<int32_t>(platform);
        if (inner != same) return;
        // Time constraint against the *current* availability episode.
        if (since[i] > as_of) return;
        // Range constraint against the worker's own radius: the cached
        // radius² compare *is* the Euclidean WithinRange test (same d2,
        // same radius*radius product), so under the Euclidean metric no
        // further check is needed; non-Euclidean metrics still confirm
        // against true travel distance.
        if (d2 > radius2[i]) return;
        if (!euclidean_ &&
            !metric_->WithinRange(CurrentLocation(id), r.location,
                                  instance_->worker(id).radius)) {
          return;
        }
        out.push_back(id);
      });
  // Deterministic order regardless of hash-map iteration.
  std::sort(out.begin(), out.end());
  return out;
}

void WorkerPool::BatchDistances(const std::vector<WorkerId>& ids,
                                const Point& target,
                                std::vector<double>* out) const {
  const size_t n = ids.size();
  out->resize(n);
  if (!euclidean_) {
    for (size_t i = 0; i < n; ++i) {
      (*out)[i] = metric_->Distance(CurrentLocation(ids[i]), target);
    }
    return;
  }
  constexpr size_t kChunk = 256;
  double xs[kChunk];
  double ys[kChunk];
  for (size_t base = 0; base < n; base += kChunk) {
    const size_t m = std::min(kChunk, n - base);
    soa_.GatherXY(ids.data() + base, m, xs, ys);
    kernels::BatchSquaredDistance(xs, ys, m, target.x, target.y,
                                  out->data() + base);
    for (size_t j = 0; j < m; ++j) {
      (*out)[base + j] = std::sqrt((*out)[base + j]);
    }
  }
}

}  // namespace comx
