#include "serve/match_service.h"

#include <sys/stat.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <thread>
#include <utility>

#include "util/string_util.h"

namespace comx {
namespace serve {

namespace {

Status EnsureDir(const std::string& path) {
  if (::mkdir(path.c_str(), 0755) != 0 && errno != EEXIST) {
    return Status::IoError(StrFormat("cannot create %s: %s", path.c_str(),
                                     std::strerror(errno)));
  }
  return Status::OK();
}

}  // namespace

Result<std::unique_ptr<MatchService>> MatchService::Create(
    const Instance& instance,
    const std::function<std::unique_ptr<OnlineMatcher>()>& factory,
    const ServiceOptions& options) {
  if (factory == nullptr) {
    return Status::InvalidArgument("null matcher factory");
  }
  std::unique_ptr<MatchService> service(new MatchService());
  COMX_ASSIGN_OR_RETURN(service->plan_,
                        PartitionInstance(instance, options.shards));
  service->platform_count_ = instance.PlatformCount();

  size_t threads = options.threads;
  if (threads == 0) {
    const size_t hw = std::max(1u, std::thread::hardware_concurrency());
    threads = std::min(static_cast<size_t>(options.shards), hw);
  }
  service->pool_ = std::make_unique<ThreadPool>(threads);

  service->owned_matchers_.resize(static_cast<size_t>(options.shards));
  service->shards_.reserve(static_cast<size_t>(options.shards));
  for (int32_t k = 0; k < options.shards; ++k) {
    const Instance& sub = service->plan_.instances[static_cast<size_t>(k)];
    auto& owned = service->owned_matchers_[static_cast<size_t>(k)];
    std::vector<OnlineMatcher*> matchers;
    for (int32_t p = 0; p < sub.PlatformCount(); ++p) {
      owned.push_back(factory());
      if (owned.back() == nullptr) {
        return Status::InvalidArgument("matcher factory returned null");
      }
      matchers.push_back(owned.back().get());
    }
    Shard::Options shard_options;
    shard_options.shard_id = k;
    shard_options.seed = options.seed;
    shard_options.sim = options.sim;
    shard_options.wal = options.wal;
    if (!options.wal_dir.empty()) {
      COMX_RETURN_IF_ERROR(EnsureDir(options.wal_dir));
      const std::string shard_dir =
          StrFormat("%s/shard-%d", options.wal_dir.c_str(), k);
      COMX_RETURN_IF_ERROR(EnsureDir(shard_dir));
      shard_options.wal_path = shard_dir + "/wal.log";
    }
    auto shard = std::make_unique<Shard>();
    COMX_RETURN_IF_ERROR(
        shard->Init(sub, matchers, shard_options, service->pool_.get()));
    service->shards_.push_back(std::move(shard));
  }
  return service;
}

MatchService::~MatchService() {
  // Shards' destructors wait for their drainers; destroy them before the
  // pool so no drainer task outlives its shard.
  shards_.clear();
  pool_.reset();
}

Status MatchService::SubmitEvent(int64_t index, Shard::Callback cb) {
  if (index < 0 || index >= event_count()) {
    return Status::OutOfRange(
        StrFormat("event %lld out of range [0, %lld)",
                  static_cast<long long>(index),
                  static_cast<long long>(event_count())));
  }
  const int32_t k = plan_.shard_of_event[static_cast<size_t>(index)];
  const int64_t local = plan_.local_index_of_event[static_cast<size_t>(index)];
  return shards_[static_cast<size_t>(k)]->Submit(local, index, std::move(cb));
}

Status MatchService::SubmitAll() {
  for (int64_t i = 0; i < event_count(); ++i) {
    COMX_RETURN_IF_ERROR(SubmitEvent(i, nullptr));
  }
  return Status::OK();
}

Result<ServiceTotals> MatchService::Drain() {
  if (drained_) {
    return Status::FailedPrecondition("service already drained");
  }
  drained_ = true;
  ServiceTotals totals;
  totals.shard_results.reserve(shards_.size());
  for (auto& shard : shards_) {
    COMX_ASSIGN_OR_RETURN(SimResult result, shard->Drain());
    totals.shard_results.push_back(std::move(result));
  }
  totals.merged.per_platform.assign(static_cast<size_t>(platform_count_),
                                    PlatformMetrics{});
  for (const SimResult& r : totals.shard_results) {
    for (size_t p = 0; p < r.metrics.per_platform.size(); ++p) {
      totals.merged.per_platform[p].Merge(r.metrics.per_platform[p]);
    }
    totals.merged.logical_bytes += r.metrics.logical_bytes;
    totals.merged.wall_seconds =
        std::max(totals.merged.wall_seconds, r.metrics.wall_seconds);
    totals.merged.rss_bytes = std::max(totals.merged.rss_bytes, r.metrics.rss_bytes);
  }
  totals.total_revenue = totals.merged.TotalRevenue();
  for (const PlatformMetrics& m : totals.merged.per_platform) {
    totals.completed_inner += m.completed_inner;
    totals.completed_outer += m.completed_outer;
    totals.rejected += m.rejected;
  }
  totals.assignments = totals.completed_inner + totals.completed_outer;
  return totals;
}

Status MatchService::FlushJournals() {
  Status first;
  for (auto& shard : shards_) {
    if (Status st = shard->FlushJournal(); !st.ok() && first.ok()) {
      first = st;
    }
  }
  return first;
}

std::vector<ShardSnapshot> MatchService::ShardStats() const {
  std::vector<ShardSnapshot> stats;
  stats.reserve(shards_.size());
  for (const auto& shard : shards_) stats.push_back(shard->Stats());
  return stats;
}

obs::LatencySnapshot MatchService::DecisionLatency() const {
  obs::LatencySnapshot merged;
  for (const auto& shard : shards_) {
    merged.Merge(shard->latency_histogram().Snapshot());
  }
  return merged;
}

}  // namespace serve
}  // namespace comx
