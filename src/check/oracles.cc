#include "check/oracles.h"

#include <cmath>
#include <limits>
#include <vector>

#include "core/brute_force.h"
#include "core/offline_opt.h"
#include "core/ram_com.h"
#include "geo/distance_metric.h"
#include "matching/hungarian.h"
#include "matching/incremental_km.h"
#include "util/string_util.h"

namespace comx {
namespace check {

namespace {

void Add(std::vector<OracleViolation>* out, const char* oracle,
         std::string detail) {
  out->push_back(OracleViolation{oracle, std::move(detail)});
}

// The paper's four hard constraints plus Definition 2.5 / Eq. 1 revenue
// accounting, re-derived from the assignment log alone. Independent of
// sim/simulator.cc's AuditSimResult on purpose: this replay recomputes
// every revenue from (v_r, payment) and demands bitwise equality with the
// recorded SimResult, so even a one-ulp accounting drift is a violation.
void CheckAssignmentLog(const MatcherRunRecord& run, const SimConfig& sim,
                        std::vector<OracleViolation>* out) {
  const Instance& ins = *run.instance;
  const SimResult& result = *run.result;
  const DistanceMetric& metric =
      sim.metric != nullptr ? *sim.metric : DefaultMetric();
  // Batch mode books at the window close, not the arrival: the log is
  // ordered by dispatch time, and a recycled worker is busy until
  // dispatch + service. The request-side time/range checks stay at r.time
  // (the engine builds window edges with arrival-time eligibility).
  const bool batch = sim.batch_mode;
  const auto dispatch_of = [&sim, batch](Timestamp t) {
    if (!batch || sim.batch_window_seconds <= 0.0) return t;
    const double w = sim.batch_window_seconds;
    return (std::floor(t / w) + 1.0) * w;
  };

  const size_t worker_count = ins.workers().size();
  const size_t request_count = ins.requests().size();
  std::vector<Timestamp> available_since(worker_count);
  std::vector<Point> location(worker_count);
  std::vector<char> busy(worker_count, 0);
  std::vector<Timestamp> busy_until(worker_count, 0.0);
  std::vector<char> served(request_count, 0);
  for (const Worker& w : ins.workers()) {
    available_since[static_cast<size_t>(w.id)] = w.time;
    location[static_cast<size_t>(w.id)] = w.location;
  }

  const int32_t platforms = ins.PlatformCount();
  std::vector<double> platform_revenue(static_cast<size_t>(platforms), 0.0);
  std::vector<int64_t> platform_completed(static_cast<size_t>(platforms), 0);
  std::vector<int64_t> platform_inner(static_cast<size_t>(platforms), 0);
  std::vector<int64_t> platform_outer(static_cast<size_t>(platforms), 0);
  double log_total = 0.0;
  Timestamp last_time = -std::numeric_limits<double>::infinity();

  for (size_t i = 0; i < result.matching.assignments.size(); ++i) {
    const Assignment& a = result.matching.assignments[i];
    if (a.request < 0 || a.request >= static_cast<RequestId>(request_count)) {
      Add(out, "log-well-formed",
          StrFormat("assignment %zu references unknown request %lld", i,
                    static_cast<long long>(a.request)));
      return;
    }
    if (a.worker < 0 || a.worker >= static_cast<WorkerId>(worker_count)) {
      Add(out, "log-well-formed",
          StrFormat("assignment %zu references unknown worker %lld", i,
                    static_cast<long long>(a.worker)));
      return;
    }
    const Request& r = ins.request(a.request);
    const Worker& w = ins.worker(a.worker);

    const Timestamp dispatch = dispatch_of(r.time);
    if (dispatch < last_time) {
      Add(out, "log-well-formed",
          StrFormat("assignment %zu (request %lld) out of dispatch order", i,
                    static_cast<long long>(a.request)));
    }
    last_time = dispatch;

    // Invariable constraint: assignments are final — a request can never
    // be served twice.
    if (served[static_cast<size_t>(a.request)]) {
      Add(out, "invariable-constraint",
          StrFormat("request %lld served twice",
                    static_cast<long long>(a.request)));
    }
    served[static_cast<size_t>(a.request)] = 1;

    // 1-by-1 constraint, per availability episode under recycling.
    auto& since = available_since[static_cast<size_t>(a.worker)];
    auto& loc = location[static_cast<size_t>(a.worker)];
    auto& is_busy = busy[static_cast<size_t>(a.worker)];
    auto& until = busy_until[static_cast<size_t>(a.worker)];
    if (is_busy) {
      if (!sim.workers_recycle) {
        Add(out, "one-by-one-constraint",
            StrFormat("worker %lld used twice without recycling",
                      static_cast<long long>(a.worker)));
      } else if (until > r.time + 1e-9) {
        // In batch mode a busy overlap means a window dispatch handed out a
        // worker whose previous service (running until `until`, past this
        // request's arrival) had not finished — the window solve violated
        // the deadline a one-by-one dispatch enforces by construction.
        Add(out,
            batch ? "batch-window-never-violates-deadline"
                  : "one-by-one-constraint",
            StrFormat("worker %lld reassigned at t=%.6f while serving "
                      "until t=%.6f",
                      static_cast<long long>(a.worker), r.time, until));
      }
      since = until;
      is_busy = false;
    }
    // Time constraint: the worker must have arrived (or re-arrived).
    if (since > r.time + 1e-9) {
      Add(out, "time-constraint",
          StrFormat("worker %lld (available %.6f) serves request %lld "
                    "arriving %.6f",
                    static_cast<long long>(a.worker), since,
                    static_cast<long long>(a.request), r.time));
    }
    // Range constraint against the worker's *current* location.
    const double pickup = metric.Distance(loc, r.location);
    if (pickup > w.radius + 1e-9) {
      Add(out, "range-constraint",
          StrFormat("worker %lld at %.3f km from request %lld, radius %.3f",
                    static_cast<long long>(a.worker), pickup,
                    static_cast<long long>(a.request), w.radius));
    }

    // Inner/outer labelling and the outer payment interval (0, v_r].
    const bool is_outer = w.platform != r.platform;
    if (is_outer != a.is_outer) {
      Add(out, "inner-outer-label",
          StrFormat("assignment %zu mislabels worker %lld", i,
                    static_cast<long long>(a.worker)));
    }
    double expected_revenue;
    if (is_outer) {
      if (!(a.outer_payment > 0.0) || a.outer_payment > r.value + 1e-9) {
        Add(out, "outer-payment-range",
            StrFormat("payment %.9g outside (0, v=%.9g] for request %lld",
                      a.outer_payment, r.value,
                      static_cast<long long>(a.request)));
      }
      expected_revenue = r.value - a.outer_payment;
    } else {
      if (a.outer_payment != 0.0) {
        Add(out, "outer-payment-range",
            StrFormat("inner assignment %zu carries payment %.9g", i,
                      a.outer_payment));
      }
      expected_revenue = r.value;
    }
    // Eq. 1, bit-exact: same operands, same operation as the simulator.
    if (a.revenue != expected_revenue) {
      Add(out, "revenue-eq1",
          StrFormat("assignment %zu revenue %.17g != recomputed %.17g", i,
                    a.revenue, expected_revenue));
    }

    platform_revenue[static_cast<size_t>(r.platform)] += a.revenue;
    ++platform_completed[static_cast<size_t>(r.platform)];
    ++(is_outer ? platform_outer : platform_inner)[
        static_cast<size_t>(r.platform)];
    log_total += a.revenue;

    is_busy = true;
    until = dispatch + (sim.workers_recycle
                            ? ServiceDurationSeconds(sim, pickup, r.value)
                            : std::numeric_limits<double>::infinity());
    loc = r.location;
  }

  // Accounting identities, bit-exact where the accumulation order matches
  // the simulator's (per-platform in decision order; the matching total in
  // log order).
  if (log_total != result.matching.total_revenue) {
    Add(out, "revenue-eq1",
        StrFormat("matching.total_revenue %.17g != log re-sum %.17g",
                  result.matching.total_revenue, log_total));
  }
  if (result.metrics.per_platform.size() !=
      static_cast<size_t>(platforms)) {
    Add(out, "metrics-identities",
        StrFormat("metrics cover %zu platforms, instance has %d",
                  result.metrics.per_platform.size(), platforms));
    return;
  }
  for (int32_t p = 0; p < platforms; ++p) {
    const PlatformMetrics& pm =
        result.metrics.per_platform[static_cast<size_t>(p)];
    if (platform_revenue[static_cast<size_t>(p)] != pm.revenue) {
      Add(out, "revenue-eq1",
          StrFormat("platform %d metrics revenue %.17g != log re-sum %.17g",
                    p, pm.revenue, platform_revenue[static_cast<size_t>(p)]));
    }
    if (platform_completed[static_cast<size_t>(p)] != pm.completed ||
        platform_inner[static_cast<size_t>(p)] != pm.completed_inner ||
        platform_outer[static_cast<size_t>(p)] != pm.completed_outer) {
      Add(out, "metrics-identities",
          StrFormat("platform %d completion counters disagree with log", p));
    }
    if (pm.completed + pm.rejected != ins.RequestCountOf(p)) {
      Add(out, "metrics-identities",
          StrFormat("platform %d: completed %lld + rejected %lld != "
                    "requests %lld",
                    p, static_cast<long long>(pm.completed),
                    static_cast<long long>(pm.rejected),
                    static_cast<long long>(ins.RequestCountOf(p))));
    }
    if (pm.completed_outer > pm.outer_offers) {
      Add(out, "metrics-identities",
          StrFormat("platform %d: %lld outer completions exceed %lld offers",
                    p, static_cast<long long>(pm.completed_outer),
                    static_cast<long long>(pm.outer_offers)));
    }
  }
}

// Decision-trace oracles: the trace is the harness's view into what the
// matcher saw while deciding, so the per-policy contracts live here.
void CheckTrace(const MatcherRunRecord& run,
                std::vector<OracleViolation>* out) {
  const Instance& ins = *run.instance;
  const int32_t platforms = ins.PlatformCount();
  const std::vector<obs::TraceEvent>& events = *run.trace;

  if (static_cast<int64_t>(events.size()) !=
      static_cast<int64_t>(ins.requests().size())) {
    Add(out, "trace-complete",
        StrFormat("trace has %zu decisions for %zu requests", events.size(),
                  ins.requests().size()));
  }

  // RamCOM threshold set: every platform's drawn threshold must be e^k for
  // an integer arm k in {0, ..., theta-1}, theta = ceil(ln(max v + 1))
  // (the repo draws {e^0..e^(theta-1)}; see the Reset() comment in
  // core/ram_com.cc for why Algorithm 3's literal {e^1..e^theta} is not
  // used).
  if (run.kind == MatcherKind::kRamCom) {
    const int64_t theta = RamCom::ThetaFor(ins.MaxRequestValue());
    for (size_t p = 0; p < run.ram_thresholds.size(); ++p) {
      const double threshold = run.ram_thresholds[p];
      const double k = std::log(threshold);
      const double k_round = std::round(k);
      if (!(threshold > 0.0) || std::abs(k - k_round) > 1e-9 ||
          k_round < 0.0 || k_round > static_cast<double>(theta - 1)) {
        Add(out, "ram-threshold-set",
            StrFormat("platform %zu threshold %.9g is not e^k with "
                      "0 <= k <= theta-1 = %lld",
                      p, threshold, static_cast<long long>(theta - 1)));
      }
    }
  }

  std::vector<double> platform_revenue(static_cast<size_t>(platforms), 0.0);
  int64_t last_seq = -1;
  for (const obs::TraceEvent& ev : events) {
    if (ev.seq != last_seq + 1) {
      Add(out, "trace-complete",
          StrFormat("decision seq jumps from %lld to %lld",
                    static_cast<long long>(last_seq),
                    static_cast<long long>(ev.seq)));
    }
    last_seq = ev.seq;
    if (ev.platform < 0 || ev.platform >= platforms) {
      Add(out, "trace-complete",
          StrFormat("decision %lld names unknown platform %d",
                    static_cast<long long>(ev.seq), ev.platform));
      continue;
    }
    if (ev.outcome != "reject") {
      platform_revenue[static_cast<size_t>(ev.platform)] += ev.revenue;
    }
    if (ev.outcome == "outer") {
      // The payment charged must be exactly the payment the pricer quoted
      // (Algorithm 2 estimate / MER argmax) — fault fallbacks may swap the
      // worker but never the price.
      if (ev.payment != ev.estimated_payment) {
        Add(out, "quoted-payment-consistent",
            StrFormat("decision %lld charged %.17g but quoted %.17g",
                      static_cast<long long>(ev.seq), ev.payment,
                      ev.estimated_payment));
      }
    }

    switch (run.kind) {
      case MatcherKind::kTota:
        if (ev.outcome == "outer") {
          Add(out, "tota-no-outer",
              StrFormat("TOTA decision %lld borrowed a worker",
                        static_cast<long long>(ev.seq)));
        }
        break;
      case MatcherKind::kDemCom:
        // Algorithm 1 lines 3-6: inner workers take absolute priority, so
        // any non-inner outcome implies the inner probe came back empty.
        if (ev.outcome != "inner" && ev.inner_candidates != 0) {
          Add(out, "dem-inner-first",
              StrFormat("decision %lld went '%s' with %d feasible inner "
                        "workers",
                        static_cast<long long>(ev.seq), ev.outcome.c_str(),
                        ev.inner_candidates));
        }
        break;
      case MatcherKind::kRamCom: {
        if (static_cast<size_t>(ev.platform) >= run.ram_thresholds.size()) {
          break;
        }
        const double threshold =
            run.ram_thresholds[static_cast<size_t>(ev.platform)];
        if (ev.outcome == "inner") {
          // Algorithm 3 serves inner workers only on the high-value arm.
          if (!(ev.value > threshold)) {
            Add(out, "ram-threshold-respected",
                StrFormat("decision %lld served inner at value %.9g <= "
                          "threshold %.9g",
                          static_cast<long long>(ev.seq), ev.value,
                          threshold));
          }
        } else if (ev.value > threshold && ev.inner_candidates != 0) {
          // A high-value request may only fall through to the cooperative
          // path when no inner worker was free (Example 3).
          Add(out, "ram-threshold-respected",
              StrFormat("decision %lld (value %.9g > threshold %.9g) went "
                        "'%s' with %d inner candidates",
                        static_cast<long long>(ev.seq), ev.value, threshold,
                        ev.outcome.c_str(), ev.inner_candidates));
        } else if (ev.value <= threshold && ev.inner_candidates != -1) {
          // Low-value requests must never probe the inner fleet at all.
          Add(out, "ram-threshold-respected",
              StrFormat("decision %lld (value %.9g <= threshold %.9g) "
                        "probed inner workers",
                        static_cast<long long>(ev.seq), ev.value,
                        threshold));
        }
        break;
      }
      case MatcherKind::kBatch:
        // Batch dispatch has no per-policy trace contract: windows may
        // freely mix inner and outer service. The shared checks above
        // (completeness, quoted payments, revenue replay) still apply.
        break;
    }
  }

  // The trace is self-checking: revenue re-derived from the decision lines
  // must equal the recorded SimResult bit-exactly (the accumulation order
  // matches the simulator's).
  for (int32_t p = 0; p < platforms; ++p) {
    const double recorded =
        run.result->metrics.per_platform[static_cast<size_t>(p)].revenue;
    if (platform_revenue[static_cast<size_t>(p)] != recorded) {
      Add(out, "trace-revenue-replay",
          StrFormat("platform %d trace re-sum %.17g != recorded %.17g", p,
                    platform_revenue[static_cast<size_t>(p)], recorded));
    }
  }
  if (run.trace_summary != nullptr) {
    double total = 0.0;
    for (double r : platform_revenue) total += r;
    if (run.trace_summary->total_revenue != total) {
      Add(out, "trace-revenue-replay",
          StrFormat("summary total %.17g != trace re-sum %.17g",
                    run.trace_summary->total_revenue, total));
    }
    if (run.trace_summary->assignments !=
        static_cast<int64_t>(run.result->matching.assignments.size())) {
      Add(out, "trace-complete", "summary assignment count disagrees");
    }
  }

  // TOTA must also never *offer* outward, which the trace cannot show for
  // rejects — the metrics can.
  if (run.kind == MatcherKind::kTota) {
    for (size_t p = 0; p < run.result->metrics.per_platform.size(); ++p) {
      const PlatformMetrics& pm = run.result->metrics.per_platform[p];
      if (pm.outer_offers != 0 || pm.completed_outer != 0) {
        Add(out, "tota-no-outer",
            StrFormat("platform %zu recorded %lld outer offers", p,
                      static_cast<long long>(pm.outer_offers)));
      }
    }
  }
}

}  // namespace

std::vector<OracleViolation> CheckConstraintOracles(
    const MatcherRunRecord& run, const OracleOptions& /*options*/) {
  std::vector<OracleViolation> out;
  if (run.instance == nullptr || run.result == nullptr ||
      run.scenario == nullptr) {
    Add(&out, "harness", "MatcherRunRecord missing instance/result/scenario");
    return out;
  }
  const SimConfig sim = run.scenario->MakeSimConfig(
      nullptr, run.kind == MatcherKind::kBatch);
  CheckAssignmentLog(run, sim, &out);
  if (run.trace != nullptr) CheckTrace(run, &out);
  return out;
}

std::vector<OracleViolation> CheckDifferentialOracles(
    const MatcherRunRecord& run, const OracleOptions& options,
    DifferentialCounts* counted) {
  std::vector<OracleViolation> out;
  if (run.instance == nullptr || run.result == nullptr ||
      run.scenario == nullptr) {
    return out;
  }
  const Instance& ins = *run.instance;
  if (!run.scenario->DifferentialEligible()) return out;
  const int64_t entities = static_cast<int64_t>(ins.workers().size()) +
                           static_cast<int64_t>(ins.requests().size());
  if (entities == 0 || entities > options.differential_max_entities) {
    return out;
  }

  OfflineConfig off;
  // OFF must see exactly the reservation realization the simulator used —
  // that is what makes online <= OFF a theorem rather than a tendency.
  off.seed = run.scenario->reservation_seed;
  const int32_t platforms = ins.PlatformCount();
  for (PlatformId p = 0; p < platforms; ++p) {
    auto solution = SolveOffline(ins, p, off);
    if (!solution.ok()) {
      Add(&out, "off-upper-bound",
          StrFormat("SolveOffline failed for platform %d: %s", p,
                    solution.status().ToString().c_str()));
      continue;
    }
    if (counted != nullptr) ++counted->off_bounds;
    const double online =
        run.result->metrics.per_platform[static_cast<size_t>(p)].revenue;
    if (online > solution->matching.total_revenue + options.tolerance) {
      Add(&out, "off-upper-bound",
          StrFormat("platform %d online revenue %.9g exceeds OFF %.9g", p,
                    online, solution->matching.total_revenue));
    }

    // Sparse-vs-dense solver differential on the same offline graph: the
    // incremental Kuhn-Munkres (the engine behind 100k-scale OFF rows)
    // must reproduce the dense Hungarian optimum on every instance small
    // enough for the dense solver.
    {
      OfflineConfig graph_config = off;
      std::vector<RequestId> request_ids;
      std::vector<double> payments;
      auto graph = BuildOfflineGraph(ins, p, graph_config, &request_ids,
                                     &payments);
      if (graph.ok() && graph->left_count() <= 64 &&
          graph->right_count() <= 64) {
        auto dense = HungarianMaxWeight(*graph);
        auto sparse = IncrementalKmMaxWeight(*graph);
        if (!dense.ok() || !sparse.ok()) {
          Add(&out, "incremental-off-equals-dense-off",
              StrFormat("platform %d: solver failed (%s / %s)", p,
                        dense.status().ToString().c_str(),
                        sparse.status().ToString().c_str()));
        } else {
          if (counted != nullptr) ++counted->incremental_km;
          const double gap =
              std::abs(sparse->total_weight - dense->total_weight);
          const double scale = std::max(1.0, std::abs(dense->total_weight));
          if (gap > 1e-12 * scale) {
            Add(&out, "incremental-off-equals-dense-off",
                StrFormat("platform %d: incremental KM %.17g != dense "
                          "Hungarian %.17g",
                          p, sparse->total_weight, dense->total_weight));
          }
        }
      }
    }

    // Exhaustive cross-check of the production OFF solvers on instances
    // small enough to enumerate.
    if (ins.RequestCountOf(p) <= options.brute_force_max_requests &&
        static_cast<int64_t>(ins.workers().size()) <=
            options.brute_force_max_workers) {
      BruteForceLimits limits;
      limits.max_left = options.brute_force_max_requests;
      limits.max_right = options.brute_force_max_workers;
      auto brute = SolveOfflineBruteForce(ins, p, off, limits);
      if (!brute.ok()) {
        Add(&out, "off-brute-force",
            StrFormat("brute force failed for platform %d: %s", p,
                      brute.status().ToString().c_str()));
        continue;
      }
      if (counted != nullptr) ++counted->brute_force;
      const double gap = std::abs(brute->matching.total_revenue -
                                  solution->matching.total_revenue);
      const double scale =
          std::max(1.0, std::abs(brute->matching.total_revenue));
      if (gap > 1e-9 * scale) {
        Add(&out, "off-brute-force",
            StrFormat("platform %d: %s OFF revenue %.12g != exhaustive "
                      "%.12g",
                      p, solution->solver.c_str(),
                      solution->matching.total_revenue,
                      brute->matching.total_revenue));
      }
    }
  }
  return out;
}

std::vector<OracleViolation> CheckAllOracles(const MatcherRunRecord& run,
                                             const OracleOptions& options,
                                             DifferentialCounts* counted) {
  std::vector<OracleViolation> out = CheckConstraintOracles(run, options);
  std::vector<OracleViolation> diff =
      CheckDifferentialOracles(run, options, counted);
  out.insert(out.end(), diff.begin(), diff.end());
  return out;
}

}  // namespace check
}  // namespace comx
