# Empty dependencies file for comx_sim.
# This may be replaced when dependencies are built.
