file(REMOVE_RECURSE
  "CMakeFiles/comx_geo_test.dir/geo/bbox_test.cc.o"
  "CMakeFiles/comx_geo_test.dir/geo/bbox_test.cc.o.d"
  "CMakeFiles/comx_geo_test.dir/geo/distance_test.cc.o"
  "CMakeFiles/comx_geo_test.dir/geo/distance_test.cc.o.d"
  "CMakeFiles/comx_geo_test.dir/geo/grid_index_test.cc.o"
  "CMakeFiles/comx_geo_test.dir/geo/grid_index_test.cc.o.d"
  "CMakeFiles/comx_geo_test.dir/geo/kd_tree_test.cc.o"
  "CMakeFiles/comx_geo_test.dir/geo/kd_tree_test.cc.o.d"
  "CMakeFiles/comx_geo_test.dir/geo/point_test.cc.o"
  "CMakeFiles/comx_geo_test.dir/geo/point_test.cc.o.d"
  "comx_geo_test"
  "comx_geo_test.pdb"
  "comx_geo_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/comx_geo_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
