#include "pricing/acceptance_model.h"

#include <limits>

namespace comx {

std::vector<double> DrawWorkerReservations(const Instance& instance,
                                           uint64_t seed) {
  Rng rng(seed);
  std::vector<double> rho;
  rho.reserve(instance.workers().size());
  for (const Worker& w : instance.workers()) {
    if (w.history.empty()) {
      rho.push_back(std::numeric_limits<double>::infinity());
    } else {
      rho.push_back(w.history[rng.PickIndex(w.history.size())]);
    }
  }
  return rho;
}

AcceptanceModel::AcceptanceModel(const Instance& instance, AcceptanceMode mode,
                                 uint64_t reservation_seed)
    : mode_(mode) {
  histories_.reserve(instance.workers().size());
  for (const Worker& w : instance.workers()) {
    histories_.emplace_back(w.history);
  }
  if (mode_ == AcceptanceMode::kReservation) {
    reservations_ = DrawWorkerReservations(instance, reservation_seed);
  }
}

double AcceptanceModel::AcceptProbability(WorkerId w, double payment) const {
  return histories_[static_cast<size_t>(w)].Ecdf(payment);
}

double AcceptanceModel::GroupAcceptProbability(
    const std::vector<WorkerId>& workers, double payment) const {
  double none = 1.0;
  for (WorkerId w : workers) {
    none *= 1.0 - AcceptProbability(w, payment);
    if (none == 0.0) return 1.0;
  }
  return 1.0 - none;
}

bool AcceptanceModel::DrawAcceptance(WorkerId w, double payment,
                                     Rng* rng) const {
  return rng->Bernoulli(AcceptProbability(w, payment));
}

bool AcceptanceModel::Accepts(WorkerId w, double payment, Rng* rng) const {
  if (mode_ == AcceptanceMode::kReservation) {
    return payment >= reservations_[static_cast<size_t>(w)];
  }
  return DrawAcceptance(w, payment, rng);
}

}  // namespace comx
