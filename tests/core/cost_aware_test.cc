#include "core/cost_aware.h"

#include <gtest/gtest.h>

#include "core/dem_com.h"
#include "datagen/synthetic.h"
#include "sim/simulator.h"
#include "testing/builders.h"
#include "testing/fake_view.h"

namespace comx {
namespace {

using testing_fixtures::FakeView;
using testing_fixtures::MakeRequest;
using testing_fixtures::MakeWorker;

TEST(CostAwareTest, PrefersNetOverNearest) {
  // Nearest worker is cheap to reach; with zero cost both candidates net
  // the same revenue and nearest-by-net picks either — make the far worker
  // *irrelevant*: with cost, nearest also maximizes net, so instead test
  // the opposite: a high cost must NOT change the inner pick when one
  // candidate dominates, but must refuse when all nets are negative.
  Instance ins;
  ins.AddWorker(MakeWorker(0, 1, 0.2, 0, 2.0));  // pickup 0.2 km
  ins.AddWorker(MakeWorker(0, 1, 1.5, 0, 2.0));  // pickup 1.5 km
  ins.BuildEvents();
  FakeView view(ins, 0);
  CostAwareConfig config;
  config.cost_per_km = 2.0;
  CostAwareDemCom matcher(config);
  matcher.Reset(ins, 0, 1);
  const Decision d = matcher.OnRequest(MakeRequest(0, 2, 0, 0, 5.0), view);
  ASSERT_EQ(d.kind, Decision::Kind::kInner);
  EXPECT_EQ(d.worker, 0);  // net 4.6 vs 2.0
}

TEST(CostAwareTest, RefusesUnprofitablePickup) {
  Instance ins;
  ins.AddWorker(MakeWorker(0, 1, 1.9, 0, 2.0));  // pickup 1.9 km
  ins.BuildEvents();
  FakeView view(ins, 0);
  CostAwareConfig config;
  config.cost_per_km = 3.0;  // cost 5.7 > value 5.0
  CostAwareDemCom matcher(config);
  matcher.Reset(ins, 0, 1);
  const Decision d = matcher.OnRequest(MakeRequest(0, 2, 0, 0, 5.0), view);
  EXPECT_EQ(d.kind, Decision::Kind::kReject);
}

TEST(CostAwareTest, ZeroCostBehavesLikeValueMaximizer) {
  Instance ins;
  ins.AddWorker(MakeWorker(0, 1, 0.2, 0, 2.0));
  ins.AddWorker(MakeWorker(0, 1, 1.5, 0, 2.0));
  ins.BuildEvents();
  FakeView view(ins, 0);
  CostAwareConfig config;
  config.cost_per_km = 0.0;
  CostAwareDemCom matcher(config);
  matcher.Reset(ins, 0, 1);
  // Equal nets: the first strictly-positive candidate wins (id order).
  const Decision d = matcher.OnRequest(MakeRequest(0, 2, 0, 0, 5.0), view);
  EXPECT_EQ(d.kind, Decision::Kind::kInner);
}

TEST(CostAwareTest, BorrowsOnlyWhenNetPositive) {
  Instance ins;
  // Outer worker accepts anything; pickup 1.8 km.
  ins.AddWorker(MakeWorker(1, 1, 1.8, 0, 2.0, {0.01}));
  ins.BuildEvents();
  FakeView view(ins, 0);
  {
    CostAwareConfig cheap;
    cheap.cost_per_km = 0.1;
    CostAwareDemCom matcher(cheap);
    matcher.Reset(ins, 0, 3);
    const Decision d = matcher.OnRequest(MakeRequest(0, 2, 0, 0, 10.0), view);
    EXPECT_EQ(d.kind, Decision::Kind::kOuter);
  }
  {
    CostAwareConfig pricey;
    pricey.cost_per_km = 6.0;  // 10.8 travel cost > any net
    CostAwareDemCom matcher(pricey);
    matcher.Reset(ins, 0, 3);
    const Decision d = matcher.OnRequest(MakeRequest(0, 2, 0, 0, 10.0), view);
    EXPECT_EQ(d.kind, Decision::Kind::kReject);
    EXPECT_TRUE(d.attempted_outer);
  }
}

TEST(CostAwareTest, NetRevenueBeatsDemComUnderTravelCost) {
  // End-to-end: on a city workload with a real per-km cost, the
  // cost-aware variant earns at least as much *net* revenue as DemCOM.
  SyntheticConfig config;
  config.requests_per_platform = {400};
  config.workers_per_platform = {80};
  config.radius_km = 2.5;  // long pickups possible: travel cost bites
  config.seed = 21;
  auto ins = GenerateSynthetic(config);
  ASSERT_TRUE(ins.ok());
  SimConfig sim;
  sim.measure_response_time = false;
  const double kCost = 6.0;
  double dem_net = 0.0, cost_net = 0.0, dem_km = 0.0, cost_km = 0.0;
  for (uint64_t s = 1; s <= 3; ++s) {
    {
      DemCom m0, m1;
      auto r = RunSimulation(*ins, {&m0, &m1}, sim, s);
      ASSERT_TRUE(r.ok());
      dem_net += r->metrics.Aggregate().NetRevenue(kCost);
      dem_km += r->metrics.Aggregate().total_pickup_km;
    }
    {
      CostAwareConfig cc;
      cc.cost_per_km = kCost;
      CostAwareDemCom m0(cc), m1(cc);
      auto r = RunSimulation(*ins, {&m0, &m1}, sim, s);
      ASSERT_TRUE(r.ok());
      EXPECT_TRUE(AuditSimResult(*ins, sim, *r).ok());
      cost_net += r->metrics.Aggregate().NetRevenue(kCost);
      cost_km += r->metrics.Aggregate().total_pickup_km;
    }
  }
  EXPECT_GE(cost_net, dem_net);
  EXPECT_LT(cost_km, dem_km);  // the extension's whole point: less travel
}

TEST(CostAwareTest, PickupKmTracked) {
  SyntheticConfig config;
  config.requests_per_platform = {100};
  config.workers_per_platform = {30};
  config.seed = 22;
  auto ins = GenerateSynthetic(config);
  ASSERT_TRUE(ins.ok());
  SimConfig sim;
  sim.measure_response_time = false;
  DemCom m0, m1;
  auto r = RunSimulation(*ins, {&m0, &m1}, sim, 1);
  ASSERT_TRUE(r.ok());
  const auto agg = r->metrics.Aggregate();
  if (agg.completed > 0) {
    EXPECT_GT(agg.total_pickup_km, 0.0);
    // Every pickup is within some worker's radius (1 km default).
    EXPECT_LE(agg.total_pickup_km,
              static_cast<double>(agg.completed) * 1.0 + 1e-9);
    EXPECT_LT(agg.NetRevenue(1.0), agg.revenue);
  }
}

TEST(CostAwareTest, NameIsStable) {
  EXPECT_EQ(CostAwareDemCom().name(), "CostDemCOM");
}

}  // namespace
}  // namespace comx
