// Per-run step journaling, factored out of the durable driver
// (durable_sim.cc) so every consumer of the WAL writes byte-identical
// record streams: the batch durable run, the recovery replay, and each
// comx_serve shard journaling live traffic into its own wal.log.
//
// The exported helpers are the single source of truth for how an executed
// SimEngine step becomes WAL records — breaker transitions (sorted-map
// diff), two-phase reserve/conflict records, the outer confirm, then the
// terminal arrival/decision record with its state digest. Recovery
// re-executes steps and byte-compares regenerated records against durable
// ones, so any second implementation of this ordering would break the
// `recovery-bit-exact` oracle by construction.

#ifndef COMX_RECOVERY_STEP_JOURNAL_H_
#define COMX_RECOVERY_STEP_JOURNAL_H_

#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "recovery/crash_injector.h"
#include "recovery/wal.h"
#include "sim/sim_engine.h"
#include "sim/simulator.h"
#include "util/result.h"

namespace comx {
namespace recovery {

/// Last journaled (state, transitions) per breaker — the diff base that
/// turns the per-step breaker map into change records only.
struct BreakerSeen {
  uint8_t state = 0;
  int64_t transitions = 0;
};
using BreakerSeenMap = std::map<std::pair<PlatformId, PlatformId>, BreakerSeen>;

/// Precomputed run identity, stamped into kRunBegin and every checkpoint.
struct RunIdentity {
  uint64_t seed = 0;
  uint64_t instance_digest = 0;
  uint64_t config_digest = 0;
};

WalRecord MakeRunBegin(const RunIdentity& ident, const Instance& instance,
                       const SimConfig& config);
WalRecord MakeRunEnd(const SimEngine& engine);

/// Journal records for one executed step, in deterministic order: breaker
/// transitions (sorted-map diff), reserve attempts, outer confirm, then the
/// terminal arrival/decision record. Shared verbatim by the live run, the
/// recovery replay, and the serve shards, so regenerated records compare
/// byte-for-byte.
void BuildStepRecords(const SimEngine& engine, const Instance& instance,
                      const StepRecord& step, BreakerSeenMap* breaker_seen,
                      std::vector<WalRecord>* out);

/// WAL writer + breaker diff state for one engine's run: Create() writes
/// the header and kRunBegin, JournalStep() appends one executed step's
/// records, Finish() seals the log with kRunEnd. Shutdown paths that skip
/// Finish() (a signal tearing down comx_serve) MUST call Flush() or the
/// buffered group-commit tail is lost with the process.
class StepJournal {
 public:
  static Result<std::unique_ptr<StepJournal>> Create(
      const std::string& path, const WalWriterOptions& options,
      const Instance& instance, const SimConfig& config, uint64_t seed,
      CrashInjector* crash);

  /// Appends the records of one executed step (engine already stepped).
  Status JournalStep(const SimEngine& engine, const StepRecord& step);

  /// Commits the buffered tail without sealing the log (shutdown path).
  Status Flush();

  /// Appends kRunEnd and closes the log. Call once, after engine.Done().
  Status Finish(const SimEngine& engine);

  const WalWriter& wal() const { return *wal_; }

 private:
  StepJournal(std::unique_ptr<WalWriter> wal, const Instance& instance)
      : wal_(std::move(wal)), instance_(&instance) {}

  std::unique_ptr<WalWriter> wal_;
  const Instance* instance_;
  BreakerSeenMap breaker_seen_;
  std::vector<WalRecord> scratch_;
};

}  // namespace recovery
}  // namespace comx

#endif  // COMX_RECOVERY_STEP_JOURNAL_H_
