// Static 2-d tree over (id, point) pairs: bulk-built once, then queried.
// Complements the dynamic GridIndex — the offline graph builder and the
// data generators query fixed point sets, where a balanced kd-tree gives
// radius and nearest-neighbour queries without tuning a cell size. The
// micro-benchmarks compare the two.

#ifndef COMX_GEO_KD_TREE_H_
#define COMX_GEO_KD_TREE_H_

#include <cstdint>
#include <utility>
#include <vector>

#include "geo/point.h"
#include "obs/metrics_registry.h"
#include "util/result.h"

namespace comx {

namespace internal {
/// Books one kd-tree radius probe into the metrics registry
/// (comx_geo_kdtree_queries_total / comx_geo_kdtree_hits_total).
void RecordKdProbe(size_t hits);
}  // namespace internal

/// Immutable balanced kd-tree.
class KdTree {
 public:
  /// One indexed entry.
  struct Item {
    int64_t id = 0;
    Point location;
  };

  /// Bulk-builds in O(n log n). Duplicated ids/points are allowed.
  explicit KdTree(std::vector<Item> items);

  /// All ids within `radius` of `center` (inclusive). Order unspecified.
  std::vector<int64_t> QueryRadius(const Point& center, double radius) const;

  /// Visits every hit without allocating; returns the hit count.
  template <typename Fn>
  size_t ForEachInRadius(const Point& center, double radius, Fn&& fn) const;

  /// Nearest item to `p` (ties arbitrary). Errors on an empty tree.
  Result<Item> Nearest(const Point& p) const;

  /// Number of indexed items.
  size_t size() const { return items_.size(); }
  bool empty() const { return items_.empty(); }

 private:
  void Build(size_t lo, size_t hi, int axis);
  template <typename Fn>
  void RadiusVisit(size_t lo, size_t hi, int axis, const Point& center,
                   double r2, Fn&& fn) const;
  void NearestVisit(size_t lo, size_t hi, int axis, const Point& p,
                    size_t* best, double* best_d2) const;

  // Items stored in kd-order: the median of [lo, hi) sits at mid.
  std::vector<Item> items_;
};

template <typename Fn>
size_t KdTree::ForEachInRadius(const Point& center, double radius,
                               Fn&& fn) const {
  if (radius < 0.0 || items_.empty()) {
    if (obs::CollectionEnabled()) [[unlikely]] internal::RecordKdProbe(0);
    return 0;
  }
  size_t hits = 0;
  RadiusVisit(0, items_.size(), 0, center, radius * radius,
              [&](const Item& item, double d2) {
                ++hits;
                fn(item, d2);
              });
  if (obs::CollectionEnabled()) [[unlikely]] internal::RecordKdProbe(hits);
  return hits;
}

template <typename Fn>
void KdTree::RadiusVisit(size_t lo, size_t hi, int axis, const Point& center,
                         double r2, Fn&& fn) const {
  if (lo >= hi) return;
  const size_t mid = lo + (hi - lo) / 2;
  const Item& item = items_[mid];
  const double dx = item.location.x - center.x;
  const double dy = item.location.y - center.y;
  const double d2 = dx * dx + dy * dy;
  if (d2 <= r2) fn(item, d2);
  const double split = axis == 0 ? item.location.x : item.location.y;
  const double delta = (axis == 0 ? center.x : center.y) - split;
  const int next = axis ^ 1;
  // Visit the side containing the query first; prune the far side when the
  // splitting plane is beyond the radius.
  if (delta <= 0.0) {
    RadiusVisit(lo, mid, next, center, r2, fn);
    if (delta * delta <= r2) RadiusVisit(mid + 1, hi, next, center, r2, fn);
  } else {
    RadiusVisit(mid + 1, hi, next, center, r2, fn);
    if (delta * delta <= r2) RadiusVisit(lo, mid, next, center, r2, fn);
  }
}

}  // namespace comx

#endif  // COMX_GEO_KD_TREE_H_
