// End-to-end resilience tests: fault injection wired through the simulator.
// Covers the determinism guard (same seed + plan => bit-identical results),
// the zero-fault equivalence (availability 1.0 == no plan at all), and
// graceful degradation (partner fully down => run completes, revenue no
// worse than inner-only TOTA).

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "core/dem_com.h"
#include "core/ram_com.h"
#include "core/tota_greedy.h"
#include "datagen/synthetic.h"
#include "fault/fault_plan.h"
#include "sim/simulator.h"

namespace comx {
namespace {

Instance MediumInstance() {
  SyntheticConfig config;
  config.platforms = 2;
  config.requests_per_platform = {120};
  config.workers_per_platform = {40};
  config.radius_km = 1.0;
  config.imbalance = 0.7;
  config.seed = 2020;
  auto instance = GenerateSynthetic(config);
  EXPECT_TRUE(instance.ok());
  return *std::move(instance);
}

fault::FaultPlan AllPartnersAt(double availability, int32_t platforms) {
  fault::FaultPlan plan;
  for (int32_t p = 0; p < platforms; ++p) {
    fault::PartnerFaultSpec spec;
    spec.partner = p;
    spec.availability = availability;
    plan.partners.push_back(spec);
  }
  return plan;
}

Result<SimResult> RunAlgo(const Instance& instance, const char* algo,
                          const fault::FaultPlan* plan, uint64_t seed) {
  std::vector<std::unique_ptr<OnlineMatcher>> owned;
  std::vector<OnlineMatcher*> matchers;
  for (PlatformId p = 0; p < instance.PlatformCount(); ++p) {
    if (std::string(algo) == "tota") {
      owned.push_back(std::make_unique<TotaGreedy>());
    } else if (std::string(algo) == "ramcom") {
      owned.push_back(std::make_unique<RamCom>());
    } else {
      owned.push_back(std::make_unique<DemCom>());
    }
    matchers.push_back(owned.back().get());
  }
  SimConfig sim;
  sim.measure_response_time = false;
  sim.fault_plan = plan;
  return RunSimulation(instance, matchers, sim, seed);
}

TEST(FaultSimTest, SameSeedAndPlanBitIdentical) {
  const Instance instance = MediumInstance();
  fault::FaultPlan plan = AllPartnersAt(0.6, 2);
  plan.partners[1].stale_probability = 0.2;
  plan.partners[1].latency_ms_mean = 20.0;
  plan.partners[1].timeout_ms = 40.0;
  auto a = RunAlgo(instance, "demcom", &plan, 99);
  auto b = RunAlgo(instance, "demcom", &plan, 99);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a->matching.assignments, b->matching.assignments);
  EXPECT_DOUBLE_EQ(a->matching.total_revenue, b->matching.total_revenue);
  EXPECT_EQ(a->fault_stats, b->fault_stats);
  // The plan actually fired — this is not a vacuous comparison.
  EXPECT_GT(a->fault_stats.attempts, 0);
}

TEST(FaultSimTest, AvailabilityOnePlanIsBitExactBaseline) {
  const Instance instance = MediumInstance();
  const fault::FaultPlan trivial = AllPartnersAt(1.0, 2);
  ASSERT_TRUE(trivial.Trivial());
  for (const char* algo : {"demcom", "ramcom"}) {
    auto baseline = RunAlgo(instance, algo, nullptr, 7);
    auto faulted = RunAlgo(instance, algo, &trivial, 7);
    ASSERT_TRUE(baseline.ok());
    ASSERT_TRUE(faulted.ok());
    EXPECT_EQ(baseline->matching.assignments, faulted->matching.assignments)
        << algo;
    EXPECT_DOUBLE_EQ(baseline->matching.total_revenue,
                     faulted->matching.total_revenue)
        << algo;
    // No attempts, no retries, no degradation: the whole subsystem idled.
    EXPECT_EQ(faulted->fault_stats, fault::FaultSessionStats{}) << algo;
  }
}

TEST(FaultSimTest, NoPlanLeavesFaultStatsZero) {
  const Instance instance = MediumInstance();
  auto result = RunAlgo(instance, "demcom", nullptr, 1);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->fault_stats, fault::FaultSessionStats{});
}

TEST(FaultSimTest, PartnerFullyDownDegradesToInnerOnly) {
  const Instance instance = MediumInstance();
  const fault::FaultPlan down = AllPartnersAt(0.0, 2);
  auto degraded = RunAlgo(instance, "demcom", &down, 5);
  auto tota = RunAlgo(instance, "tota", nullptr, 5);
  ASSERT_TRUE(degraded.ok());
  ASSERT_TRUE(tota.ok());
  // The run completes, every assignment is inner, and revenue is no worse
  // than never cooperating at all.
  for (const Assignment& a : degraded->matching.assignments) {
    EXPECT_FALSE(a.is_outer);
  }
  EXPECT_GE(degraded->matching.total_revenue,
            tota->matching.total_revenue - 1e-9);
  EXPECT_GT(degraded->fault_stats.degraded_requests, 0);
  EXPECT_GT(degraded->fault_stats.partner_unreachable, 0);
  EXPECT_GT(degraded->fault_stats.retries, 0);
}

TEST(FaultSimTest, BreakerOpensUnderSustainedFailure) {
  const Instance instance = MediumInstance();
  fault::FaultPlan down = AllPartnersAt(0.0, 2);
  down.breaker.failure_threshold = 3;
  down.breaker.open_seconds = 1e9;  // never probes again within the run
  auto result = RunAlgo(instance, "demcom", &down, 5);
  ASSERT_TRUE(result.ok());
  EXPECT_GT(result->fault_stats.breaker_open_skips, 0);
  EXPECT_GT(result->fault_stats.breaker_transitions, 0);
}

TEST(FaultSimTest, RevenueRecoversMonotonicallyAtTheEndpoints) {
  const Instance instance = MediumInstance();
  const fault::FaultPlan down = AllPartnersAt(0.0, 2);
  const fault::FaultPlan half = AllPartnersAt(0.5, 2);
  double down_rev = 0.0, half_rev = 0.0, full_rev = 0.0;
  for (uint64_t seed = 1; seed <= 3; ++seed) {
    auto a = RunAlgo(instance, "demcom", &down, seed);
    auto b = RunAlgo(instance, "demcom", &half, seed);
    auto c = RunAlgo(instance, "demcom", nullptr, seed);
    ASSERT_TRUE(a.ok() && b.ok() && c.ok());
    down_rev += a->matching.total_revenue;
    half_rev += b->matching.total_revenue;
    full_rev += c->matching.total_revenue;
  }
  EXPECT_LE(down_rev, half_rev + 1e-9);
  EXPECT_LE(half_rev, full_rev + 1e-9);
}

TEST(FaultSimTest, StaleReservesFallBackOrRejectWithoutFailing) {
  const Instance instance = MediumInstance();
  fault::FaultPlan stale = AllPartnersAt(1.0, 2);
  for (auto& spec : stale.partners) spec.stale_probability = 1.0;
  ASSERT_FALSE(stale.Trivial());
  auto result = RunAlgo(instance, "demcom", &stale, 5);
  ASSERT_TRUE(result.ok());
  // Every reserve conflicts, so every outer commit exhausts its fallbacks
  // and converts to an inner-only decision — never an error.
  EXPECT_GT(result->fault_stats.reserve_conflicts, 0);
  for (const Assignment& a : result->matching.assignments) {
    EXPECT_FALSE(a.is_outer);
  }
}

TEST(FaultSimTest, InvalidPlanFailsTheRunUpFront) {
  const Instance instance = MediumInstance();
  fault::FaultPlan bad = AllPartnersAt(0.5, 1);
  bad.partners[0].availability = -0.5;
  auto result = RunAlgo(instance, "demcom", &bad, 1);
  EXPECT_FALSE(result.ok());
}

TEST(FaultSimTest, OutageWindowOnlyAffectsItsSpan) {
  const Instance instance = MediumInstance();
  fault::FaultPlan plan;
  fault::PartnerFaultSpec spec;
  spec.partner = 1;
  // Cover the whole run: every query to partner 1 lands in the outage.
  spec.outages.push_back({0.0, 1e9});
  plan.partners.push_back(spec);
  auto result = RunAlgo(instance, "demcom", &plan, 5);
  ASSERT_TRUE(result.ok());
  EXPECT_GT(result->fault_stats.attempt_outages, 0);
  // Outages are deterministic: no retries are spent on them.
  EXPECT_EQ(result->fault_stats.retries, 0);
  // Partner 0 was never mentioned, so platform 1 can still borrow from it.
  EXPECT_EQ(result->fault_stats.reserve_conflicts, 0);
}

}  // namespace
}  // namespace comx
