// Pluggable distance metric: the range constraint of Definition 2.6 is
// "within rad of the worker" under *some* travel metric. Euclidean is the
// paper's default; roadnet/road_metric.h provides the shortest-path
// variant the paper sketches in Section II ("irregular shapes").

#ifndef COMX_GEO_DISTANCE_METRIC_H_
#define COMX_GEO_DISTANCE_METRIC_H_

#include <string>

#include "geo/distance.h"
#include "geo/point.h"

namespace comx {

/// Travel-distance metric between planar points.
///
/// Contract: Distance(a, b) >= EuclideanDistance(a, b) (travel is never
/// shorter than the straight line), which lets spatial indexes use
/// Euclidean pre-filters as sound lower bounds.
class DistanceMetric {
 public:
  virtual ~DistanceMetric() = default;

  /// Travel distance in km.
  virtual double Distance(const Point& a, const Point& b) const = 0;

  /// True when Distance(a, b) <= radius. Overridable for cheap rejections.
  virtual bool WithinRange(const Point& a, const Point& b,
                           double radius) const {
    if (!WithinRadius(a, b, radius)) return false;  // Euclidean lower bound
    return Distance(a, b) <= radius;
  }

  /// Display name ("euclidean", "roadnet", ...).
  virtual std::string name() const = 0;
};

/// Straight-line metric (the paper's default).
class EuclideanMetric : public DistanceMetric {
 public:
  double Distance(const Point& a, const Point& b) const override {
    return EuclideanDistance(a, b);
  }
  bool WithinRange(const Point& a, const Point& b,
                   double radius) const override {
    return WithinRadius(a, b, radius);
  }
  std::string name() const override { return "euclidean"; }
};

/// Process-wide Euclidean instance used whenever no metric is supplied.
inline const DistanceMetric& DefaultMetric() {
  static const EuclideanMetric metric;
  return metric;
}

}  // namespace comx

#endif  // COMX_GEO_DISTANCE_METRIC_H_
