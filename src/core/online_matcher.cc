#include "core/online_matcher.h"

#include <algorithm>

namespace comx {

WorkerId NearestWorker(const std::vector<WorkerId>& candidates,
                       const Request& r, const PlatformView& view) {
  WorkerId best = kInvalidId;
  double best_dist = 0.0;
  for (WorkerId w : candidates) {
    const double d = view.DistanceTo(w, r);
    if (best == kInvalidId || d < best_dist ||
        (d == best_dist && w < best)) {
      best = w;
      best_dist = d;
    }
  }
  return best;
}

std::vector<WorkerId> RankByDistance(std::vector<WorkerId> candidates,
                                     const Request& r,
                                     const PlatformView& view) {
  std::vector<std::pair<double, WorkerId>> ranked;
  ranked.reserve(candidates.size());
  for (WorkerId w : candidates) {
    ranked.emplace_back(view.DistanceTo(w, r), w);
  }
  std::sort(ranked.begin(), ranked.end());
  for (size_t i = 0; i < ranked.size(); ++i) candidates[i] = ranked[i].second;
  return candidates;
}

void KeepNearest(std::vector<WorkerId>* candidates, const Request& r,
                 const PlatformView& view, int cap) {
  if (cap <= 0 || static_cast<int>(candidates->size()) <= cap) return;
  std::vector<std::pair<double, WorkerId>> ranked;
  ranked.reserve(candidates->size());
  for (WorkerId w : *candidates) {
    ranked.emplace_back(view.DistanceTo(w, r), w);
  }
  std::nth_element(ranked.begin(), ranked.begin() + cap, ranked.end());
  ranked.resize(static_cast<size_t>(cap));
  std::sort(ranked.begin(), ranked.end(),
            [](const auto& a, const auto& b) { return a.second < b.second; });
  candidates->clear();
  for (const auto& [dist, w] : ranked) candidates->push_back(w);
}

}  // namespace comx
