# Empty compiler generated dependencies file for comx_roadnet.
# This may be replaced when dependencies are built.
