file(REMOVE_RECURSE
  "CMakeFiles/comx_matching_test.dir/matching/auction_test.cc.o"
  "CMakeFiles/comx_matching_test.dir/matching/auction_test.cc.o.d"
  "CMakeFiles/comx_matching_test.dir/matching/bipartite_graph_test.cc.o"
  "CMakeFiles/comx_matching_test.dir/matching/bipartite_graph_test.cc.o.d"
  "CMakeFiles/comx_matching_test.dir/matching/greedy_offline_test.cc.o"
  "CMakeFiles/comx_matching_test.dir/matching/greedy_offline_test.cc.o.d"
  "CMakeFiles/comx_matching_test.dir/matching/hopcroft_karp_test.cc.o"
  "CMakeFiles/comx_matching_test.dir/matching/hopcroft_karp_test.cc.o.d"
  "CMakeFiles/comx_matching_test.dir/matching/hungarian_test.cc.o"
  "CMakeFiles/comx_matching_test.dir/matching/hungarian_test.cc.o.d"
  "CMakeFiles/comx_matching_test.dir/matching/matching_property_test.cc.o"
  "CMakeFiles/comx_matching_test.dir/matching/matching_property_test.cc.o.d"
  "CMakeFiles/comx_matching_test.dir/matching/min_cost_flow_test.cc.o"
  "CMakeFiles/comx_matching_test.dir/matching/min_cost_flow_test.cc.o.d"
  "comx_matching_test"
  "comx_matching_test.pdb"
  "comx_matching_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/comx_matching_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
