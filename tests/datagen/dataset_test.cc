#include "datagen/dataset.h"

#include <cstdio>
#include <fstream>

#include <gtest/gtest.h>

#include "datagen/synthetic.h"
#include "testing/builders.h"

namespace comx {
namespace {

using testing_fixtures::PaperExample;

std::string TempPrefix(const std::string& name) {
  return testing::TempDir() + "/" + name;
}

void Cleanup(const std::string& prefix) {
  std::remove((prefix + ".workers.csv").c_str());
  std::remove((prefix + ".requests.csv").c_str());
}

TEST(DatasetTest, RoundTripPaperExample) {
  const std::string prefix = TempPrefix("paper_example");
  const Instance original = PaperExample();
  ASSERT_TRUE(SaveInstance(original, prefix).ok());
  auto loaded = LoadInstance(prefix);
  ASSERT_TRUE(loaded.ok());
  ASSERT_EQ(loaded->workers().size(), original.workers().size());
  ASSERT_EQ(loaded->requests().size(), original.requests().size());
  for (size_t i = 0; i < original.workers().size(); ++i) {
    const Worker& a = original.workers()[i];
    const Worker& b = loaded->workers()[i];
    EXPECT_EQ(a.platform, b.platform);
    EXPECT_DOUBLE_EQ(a.time, b.time);
    EXPECT_EQ(a.location, b.location);
    EXPECT_DOUBLE_EQ(a.radius, b.radius);
    EXPECT_EQ(a.history, b.history);
  }
  for (size_t i = 0; i < original.requests().size(); ++i) {
    EXPECT_DOUBLE_EQ(original.requests()[i].value,
                     loaded->requests()[i].value);
    EXPECT_EQ(original.requests()[i].location,
              loaded->requests()[i].location);
  }
  EXPECT_EQ(loaded->events().size(), original.events().size());
  Cleanup(prefix);
}

TEST(DatasetTest, RoundTripSyntheticBitExact) {
  const std::string prefix = TempPrefix("synth_roundtrip");
  SyntheticConfig c;
  c.requests_per_platform = {50};
  c.workers_per_platform = {10};
  auto original = GenerateSynthetic(c);
  ASSERT_TRUE(original.ok());
  ASSERT_TRUE(SaveInstance(*original, prefix).ok());
  auto loaded = LoadInstance(prefix);
  ASSERT_TRUE(loaded.ok());
  for (size_t i = 0; i < original->workers().size(); ++i) {
    // %.17g round-trips doubles exactly.
    EXPECT_EQ(original->workers()[i].time, loaded->workers()[i].time);
    EXPECT_EQ(original->workers()[i].history, loaded->workers()[i].history);
  }
  Cleanup(prefix);
}

TEST(DatasetTest, LoadMissingFilesFails) {
  auto loaded = LoadInstance("/nonexistent/prefix");
  EXPECT_FALSE(loaded.ok());
}

TEST(DatasetTest, LoadRejectsBadHeader) {
  const std::string prefix = TempPrefix("bad_header");
  {
    std::ofstream w(prefix + ".workers.csv");
    w << "wrong,header\n";
    std::ofstream r(prefix + ".requests.csv");
    r << "id,platform,time,x,y,value\n";
  }
  EXPECT_FALSE(LoadInstance(prefix).ok());
  Cleanup(prefix);
}

TEST(DatasetTest, LoadRejectsWrongFieldCount) {
  const std::string prefix = TempPrefix("bad_fields");
  {
    std::ofstream w(prefix + ".workers.csv");
    w << "id,platform,time,x,y,radius,history\n0,0,1.0,0,0\n";
    std::ofstream r(prefix + ".requests.csv");
    r << "id,platform,time,x,y,value\n";
  }
  EXPECT_FALSE(LoadInstance(prefix).ok());
  Cleanup(prefix);
}

TEST(DatasetTest, LoadRejectsNonDenseIds) {
  const std::string prefix = TempPrefix("bad_ids");
  {
    std::ofstream w(prefix + ".workers.csv");
    w << "id,platform,time,x,y,radius,history\n5,0,1.0,0,0,1.0,2.0\n";
    std::ofstream r(prefix + ".requests.csv");
    r << "id,platform,time,x,y,value\n";
  }
  EXPECT_FALSE(LoadInstance(prefix).ok());
  Cleanup(prefix);
}

TEST(DatasetTest, LoadRejectsGarbageNumbers) {
  const std::string prefix = TempPrefix("bad_numbers");
  {
    std::ofstream w(prefix + ".workers.csv");
    w << "id,platform,time,x,y,radius,history\n0,0,abc,0,0,1.0,2.0\n";
    std::ofstream r(prefix + ".requests.csv");
    r << "id,platform,time,x,y,value\n";
  }
  EXPECT_FALSE(LoadInstance(prefix).ok());
  Cleanup(prefix);
}

// Writes a one-worker / one-request pair of CSVs with the given data rows
// and returns LoadInstance's status (testing the hardened input path).
Status LoadWith(const std::string& prefix, const std::string& worker_row,
                const std::string& request_row) {
  {
    std::ofstream w(prefix + ".workers.csv");
    w << "id,platform,time,x,y,radius,history\n" << worker_row << "\n";
    std::ofstream r(prefix + ".requests.csv");
    r << "id,platform,time,x,y,value\n" << request_row << "\n";
  }
  const Status status = LoadInstance(prefix).status();
  Cleanup(prefix);
  return status;
}

constexpr char kGoodWorker[] = "0,0,1.0,0,0,1.0,2.0";
constexpr char kGoodRequest[] = "0,0,2.0,0,0,5.0";

TEST(DatasetTest, RejectsNanValueWithRowNumber) {
  const Status s =
      LoadWith(TempPrefix("nan_value"), kGoodWorker, "0,0,2.0,0,0,nan");
  ASSERT_FALSE(s.ok());
  EXPECT_NE(s.message().find("request row 1"), std::string::npos)
      << s.ToString();
}

TEST(DatasetTest, RejectsNegativeValue) {
  EXPECT_FALSE(LoadWith(TempPrefix("neg_value"), kGoodWorker,
                        "0,0,2.0,0,0,-5.0")
                   .ok());
}

TEST(DatasetTest, RejectsNegativeArrivalTime) {
  EXPECT_FALSE(
      LoadWith(TempPrefix("neg_time"), "0,0,-1.0,0,0,1.0,2.0", kGoodRequest)
          .ok());
  EXPECT_FALSE(LoadWith(TempPrefix("neg_time_r"), kGoodWorker,
                        "0,0,-2.0,0,0,5.0")
                   .ok());
}

TEST(DatasetTest, RejectsAbsurdCoordinates) {
  const Status s = LoadWith(TempPrefix("far_away"), "0,0,1.0,1e9,0,1.0,2.0",
                            kGoodRequest);
  ASSERT_FALSE(s.ok());
  EXPECT_NE(s.message().find("worker row 1"), std::string::npos)
      << s.ToString();
}

TEST(DatasetTest, RejectsNonPositiveRadius) {
  EXPECT_FALSE(
      LoadWith(TempPrefix("zero_radius"), "0,0,1.0,0,0,0,2.0", kGoodRequest)
          .ok());
  EXPECT_FALSE(
      LoadWith(TempPrefix("inf_radius"), "0,0,1.0,0,0,inf,2.0", kGoodRequest)
          .ok());
}

TEST(DatasetTest, RejectsNegativePlatform) {
  EXPECT_FALSE(
      LoadWith(TempPrefix("neg_plat_w"), "0,-1,1.0,0,0,1.0,2.0", kGoodRequest)
          .ok());
  EXPECT_FALSE(LoadWith(TempPrefix("neg_plat_r"), kGoodWorker,
                        "0,-2,2.0,0,0,5.0")
                   .ok());
}

TEST(DatasetTest, RejectsNegativeHistoryFare) {
  const Status s = LoadWith(TempPrefix("neg_hist"), "0,0,1.0,0,0,1.0,-2.0",
                            kGoodRequest);
  ASSERT_FALSE(s.ok());
  EXPECT_NE(s.message().find("worker row 1"), std::string::npos)
      << s.ToString();
}

TEST(DatasetTest, RejectsUnterminatedQuoteWithLineNumber) {
  const Status s = LoadWith(TempPrefix("bad_quote"),
                            "0,0,1.0,0,0,1.0,\"2.0", kGoodRequest);
  ASSERT_FALSE(s.ok());
  EXPECT_NE(s.message().find("line 2"), std::string::npos) << s.ToString();
  EXPECT_NE(s.message().find("unterminated"), std::string::npos)
      << s.ToString();
}

// A corpus of malformed rows in the spirit of a fuzzer's crash directory:
// every one must be rejected with an error, never crash or silently load.
// New repro files from comx_fuzz travel through this same loader, so this
// is the safety net for hand-edited repros too.
TEST(DatasetTest, FuzzCorpusOfMalformedWorkerRowsAllRejected) {
  const std::vector<std::string> corpus = {
      "0,0,inf,0,0,1.0,2.0",            // non-finite arrival time
      "0,0,nan,0,0,1.0,2.0",            // NaN arrival time
      "0,0,1.0,nan,0,1.0,2.0",          // NaN coordinate
      "0,0,1.0,0,-inf,1.0,2.0",         // -inf coordinate
      "0,99999999999,1.0,0,0,1.0,2.0",  // platform id overflows int32
      "0,-1,1.0,0,0,1.0,2.0",           // negative platform id
      "0,0,1.0,0,0,-1.0,2.0",           // negative radius
      "0,0,1.0,0,0,nan,2.0",            // NaN radius
      "0,0,1.0,0,0,1.0,0.0",            // non-positive history fare
      "0,0,1.0,0,0,1.0,2.0;nan",        // NaN inside the history list
      "0,0,1.0,0,0,1.0,2.0;",           // trailing empty history entry
      "0,0,1.0,0,0,1.0,2.0,extra",      // eight fields
      "\"0,0,1.0,0,0,1.0,2.0",          // unterminated quote
      ",0,1.0,0,0,1.0,2.0",             // empty id field
      "1,0,1.0,0,0,1.0,2.0",            // non-dense id
  };
  for (size_t i = 0; i < corpus.size(); ++i) {
    const Status s = LoadWith(TempPrefix("worker_corpus_" + std::to_string(i)),
                              corpus[i], kGoodRequest);
    EXPECT_FALSE(s.ok()) << "corpus[" << i << "] = " << corpus[i];
  }
}

TEST(DatasetTest, FuzzCorpusOfMalformedRequestRowsAllRejected) {
  const std::vector<std::string> corpus = {
      "0,0,inf,0,0,5.0",            // non-finite arrival time
      "0,0,2.0,1e300,0,5.0",        // coordinate beyond the sanity bound
      "0,99999999999,2.0,0,0,5.0",  // platform id overflows int32
      "0,0,2.0,0,0,0.0",            // zero value
      "0,0,2.0,0,0,inf",            // infinite value
      "0,0,2.0,0,0",                // five fields
      "0,0,2.0,0,0,5.0,extra",      // seven fields
      "0,0,2.0,0,0,\"5.0",          // unterminated quote
      "2,0,2.0,0,0,5.0",            // non-dense id
  };
  for (size_t i = 0; i < corpus.size(); ++i) {
    const Status s =
        LoadWith(TempPrefix("request_corpus_" + std::to_string(i)),
                 kGoodWorker, corpus[i]);
    EXPECT_FALSE(s.ok()) << "corpus[" << i << "] = " << corpus[i];
  }
}

TEST(DatasetTest, QuotedFieldsAreUnwrappedNotRejected) {
  // RFC-style quoting is legal: a repro edited in a spreadsheet that quotes
  // every cell must still load, with values parsed from inside the quotes.
  const std::string prefix = TempPrefix("quoted_ok");
  {
    std::ofstream w(prefix + ".workers.csv");
    w << "id,platform,time,x,y,radius,history\n"
      << "\"0\",\"0\",\"1.0\",\"0\",\"0\",\"1.5\",\"2.0;3.0\"\n";
    std::ofstream r(prefix + ".requests.csv");
    r << "id,platform,time,x,y,value\n\"0\",\"0\",\"2.0\",\"0\",\"0\",\"5.0\"\n";
  }
  auto loaded = LoadInstance(prefix);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_DOUBLE_EQ(loaded->workers()[0].radius, 1.5);
  ASSERT_EQ(loaded->workers()[0].history.size(), 2u);
  EXPECT_DOUBLE_EQ(loaded->requests()[0].value, 5.0);
  Cleanup(prefix);
}

TEST(DatasetTest, EmptyHistorySurvivesRoundTrip) {
  const std::string prefix = TempPrefix("empty_history");
  Instance ins;
  ins.AddWorker(testing_fixtures::MakeWorker(0, 1, 0, 0, 1, {}));
  ins.AddRequest(testing_fixtures::MakeRequest(0, 2, 0, 0, 5));
  ins.BuildEvents();
  ASSERT_TRUE(SaveInstance(ins, prefix).ok());
  auto loaded = LoadInstance(prefix);
  ASSERT_TRUE(loaded.ok());
  EXPECT_TRUE(loaded->workers()[0].history.empty());
  Cleanup(prefix);
}

}  // namespace
}  // namespace comx
