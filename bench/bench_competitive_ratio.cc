// Empirical competitive-ratio study (Theorems 1-2): estimates CR_A
// (min over sampled arrival orders) and CR_RO (mean) for TOTA, DemCOM and
// RamCOM on small random instances, against the exact offline optimum.
//
// Paper claims reproduced in shape:
//   * DemCOM's adversarial CR is unbounded (its empirical min ratio can be
//     driven towards 0 by bad orders) and its random-order CR matches the
//     plain greedy's;
//   * RamCOM's random-order CR stays above the 1/(8e) ~ 0.046 floor.

#include <cmath>
#include <cstdio>
#include <memory>

#include "common.h"
#include "core/dem_com.h"
#include "core/ram_com.h"
#include "core/tota_greedy.h"
#include "datagen/synthetic.h"
#include "sim/competitive_ratio.h"

namespace {

using comx::CrConfig;
using comx::EstimateCompetitiveRatio;
using comx::MatcherFactoryFn;

void Report(const char* name, const comx::Instance& instance,
            const MatcherFactoryFn& factory, int permutations) {
  CrConfig config;
  config.permutations = permutations;
  auto estimate = EstimateCompetitiveRatio(instance, factory, config);
  if (!estimate.ok()) {
    std::fprintf(stderr, "%s: %s\n", name,
                 estimate.status().ToString().c_str());
    return;
  }
  std::printf("  %-8s CR_A(min) %.4f   CR_RO(mean) %.4f   sd %.4f   "
              "orders %lld\n",
              name, estimate->min_ratio, estimate->mean_ratio,
              estimate->ratios.stddev(),
              static_cast<long long>(estimate->ratios.count()));
}

}  // namespace

int main(int argc, char** argv) {
  const int permutations =
      static_cast<int>(comx::bench::ArgInt(argc, argv, "--perms", 120));
  std::printf("Competitive ratios over %d sampled arrival orders "
              "(1/(8e) = %.4f)\n",
              permutations, 1.0 / (8.0 * std::exp(1.0)));

  for (int64_t size : {10, 20, 40}) {
    comx::SyntheticConfig config;
    config.requests_per_platform = {size};
    config.workers_per_platform = {size / 2};
    config.seed = 7u * static_cast<uint64_t>(size);
    auto instance = comx::GenerateSynthetic(config);
    if (!instance.ok()) return 1;
    std::printf("\ninstance: %s\n", instance->Summary().c_str());
    Report("TOTA", *instance,
           [] { return std::unique_ptr<comx::OnlineMatcher>(
                    new comx::TotaGreedy()); },
           permutations);
    Report("DemCOM", *instance,
           [] { return std::unique_ptr<comx::OnlineMatcher>(
                    new comx::DemCom()); },
           permutations);
    Report("RamCOM", *instance,
           [] { return std::unique_ptr<comx::OnlineMatcher>(
                    new comx::RamCom()); },
           permutations);
  }
  // Theta sweep: RamCOM's threshold count theta = ceil(ln(max v + 1))
  // grows with the value scale; more arms dilute each one's probability,
  // which is where the 1/ln(Umax) factor of the Greedy-RT-style analysis
  // bites. Scale the value distribution and watch the mean ratio.
  std::printf("\nRamCOM CR_RO vs value scale (theta sweep):\n");
  for (double max_value : {7.0, 20.0, 50.0, 120.0}) {
    comx::SyntheticConfig config;
    config.requests_per_platform = {25};
    config.workers_per_platform = {12};
    config.value.max_value = max_value;
    config.value.log_mu = std::log(max_value / 3.0);
    config.seed = 99;
    auto instance = comx::GenerateSynthetic(config);
    if (!instance.ok()) return 1;
    const int theta = static_cast<int>(
        std::ceil(std::log(instance->MaxRequestValue() + 1.0)));
    CrConfig cr;
    cr.permutations = permutations;
    auto est = EstimateCompetitiveRatio(
        *instance,
        [] { return std::unique_ptr<comx::OnlineMatcher>(
                 new comx::RamCom()); },
        cr);
    if (!est.ok()) {
      std::fprintf(stderr, "theta sweep: %s\n",
                   est.status().ToString().c_str());
      continue;
    }
    std::printf("  max v %6.0f  theta %d  CR_RO %.4f  min %.4f\n",
                max_value, theta, est->mean_ratio, est->min_ratio);
  }

  std::printf("\nexpected shape: every mean ratio well above 1/(8e); "
              "min ratios noticeably below means (adversarial orders "
              "hurt); RamCOM's min above the floor; the theta sweep's "
              "mean ratio degrades gently as the value range (and with "
              "it theta) grows.\n");
  return 0;
}
