
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/geo/bbox_test.cc" "tests/CMakeFiles/comx_geo_test.dir/geo/bbox_test.cc.o" "gcc" "tests/CMakeFiles/comx_geo_test.dir/geo/bbox_test.cc.o.d"
  "/root/repo/tests/geo/distance_test.cc" "tests/CMakeFiles/comx_geo_test.dir/geo/distance_test.cc.o" "gcc" "tests/CMakeFiles/comx_geo_test.dir/geo/distance_test.cc.o.d"
  "/root/repo/tests/geo/grid_index_test.cc" "tests/CMakeFiles/comx_geo_test.dir/geo/grid_index_test.cc.o" "gcc" "tests/CMakeFiles/comx_geo_test.dir/geo/grid_index_test.cc.o.d"
  "/root/repo/tests/geo/kd_tree_test.cc" "tests/CMakeFiles/comx_geo_test.dir/geo/kd_tree_test.cc.o" "gcc" "tests/CMakeFiles/comx_geo_test.dir/geo/kd_tree_test.cc.o.d"
  "/root/repo/tests/geo/point_test.cc" "tests/CMakeFiles/comx_geo_test.dir/geo/point_test.cc.o" "gcc" "tests/CMakeFiles/comx_geo_test.dir/geo/point_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/comx_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/comx_core.dir/DependInfo.cmake"
  "/root/repo/build/src/matching/CMakeFiles/comx_matching.dir/DependInfo.cmake"
  "/root/repo/build/src/pricing/CMakeFiles/comx_pricing.dir/DependInfo.cmake"
  "/root/repo/build/src/datagen/CMakeFiles/comx_datagen.dir/DependInfo.cmake"
  "/root/repo/build/src/model/CMakeFiles/comx_model.dir/DependInfo.cmake"
  "/root/repo/build/src/roadnet/CMakeFiles/comx_roadnet.dir/DependInfo.cmake"
  "/root/repo/build/src/geo/CMakeFiles/comx_geo.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/comx_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
