#include "util/atomic_file.h"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>

#include "util/string_util.h"

namespace comx {

std::string AtomicTmpPath(const std::string& path) { return path + ".tmp"; }

void FsyncParentDir(const std::string& path) {
  const size_t slash = path.find_last_of('/');
  const std::string dir = slash == std::string::npos
                              ? std::string(".")
                              : path.substr(0, slash == 0 ? 1 : slash);
  const int fd = ::open(dir.c_str(), O_RDONLY);
  if (fd < 0) return;
  ::fsync(fd);
  ::close(fd);
}

Status AtomicWriteFile(const std::string& path, std::string_view contents) {
  const std::string tmp = AtomicTmpPath(path);
  std::FILE* f = std::fopen(tmp.c_str(), "wb");
  if (f == nullptr) {
    return Status::IoError(
        StrFormat("cannot open %s: %s", tmp.c_str(), std::strerror(errno)));
  }
  if (!contents.empty() &&
      std::fwrite(contents.data(), 1, contents.size(), f) != contents.size()) {
    std::fclose(f);
    std::remove(tmp.c_str());
    return Status::IoError(StrFormat("short write to %s", tmp.c_str()));
  }
  if (std::fflush(f) != 0 || ::fsync(::fileno(f)) != 0) {
    std::fclose(f);
    std::remove(tmp.c_str());
    return Status::IoError(
        StrFormat("cannot flush %s: %s", tmp.c_str(), std::strerror(errno)));
  }
  if (std::fclose(f) != 0) {
    std::remove(tmp.c_str());
    return Status::IoError(
        StrFormat("cannot close %s: %s", tmp.c_str(), std::strerror(errno)));
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    return Status::IoError(StrFormat("cannot rename %s -> %s: %s", tmp.c_str(),
                                     path.c_str(), std::strerror(errno)));
  }
  FsyncParentDir(path);
  return Status::OK();
}

}  // namespace comx
