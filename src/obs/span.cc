#include "obs/span.h"

namespace comx {
namespace obs {

SpanSite::SpanSite(const char* phase)
    : histogram_(MetricsRegistry::Global().GetHistogram(
          MetricName("comx_span_seconds", "phase", phase),
          DefaultLatencyBoundsSeconds(),
          "Wall time of one instrumented phase, seconds")) {}

}  // namespace obs
}  // namespace comx
