#include "core/ram_com.h"

#include <cmath>

namespace comx {

void RamCom::Reset(const Instance& instance, PlatformId /*platform*/,
                   uint64_t seed) {
  rng_ = Rng(seed);
  diag_ = Diagnostics{};
  // Lines 1-2: theta = ceil(ln(max v + 1)) thresholds, drawn uniformly.
  // We draw the exponent from {0, ..., theta-1} (the Greedy-RT convention
  // of [9]) rather than the literal {1, ..., theta} of Algorithm 3: with
  // e^theta >= max v + 1 by construction, the k = theta arm would divert
  // *every* request away from inner workers, which contradicts the paper's
  // own Table V-VII results (RamCOM's completed-request counts track
  // TOTA's). Example 3 (k = 1, threshold e) is unaffected.
  const double max_v = instance.MaxRequestValue();
  const int64_t theta =
      std::max<int64_t>(1, static_cast<int64_t>(std::ceil(
                               std::log(max_v + 1.0))));
  const int64_t k = fixed_exponent_ >= 0 ? fixed_exponent_
                                         : rng_.UniformInt(0, theta - 1);
  threshold_ = std::exp(static_cast<double>(k));
}

Decision RamCom::OnRequest(const Request& r, const PlatformView& view) {
  // Lines 4-7: high-value requests go to a *random* feasible inner worker,
  // keeping the inner fleet available for big-ticket arrivals.
  if (r.value > threshold_) {
    const std::vector<WorkerId> inner = view.FeasibleInnerWorkers(r);
    if (!inner.empty()) {
      const WorkerId w = inner[rng_.PickIndex(inner.size())];
      return Decision::Inner(w);
    }
    // Example 3: a high-value request with no free inner worker falls
    // through to the cooperative path rather than being rejected.
  }

  // Lines 9-11: price with the maximum-expected-revenue rule, then run
  // DemCOM's acceptance step (Algorithm 1 lines 13-26) at payment v_re.
  std::vector<WorkerId> outer = view.FeasibleOuterWorkers(r);
  if (outer.empty()) return Decision::Reject();
  KeepNearest(&outer, r, view, max_outer_candidates_);

  const MerQuote quote =
      ComputeMerQuote(view.acceptance(), outer, r.value, config_);
  const double payment = quote.payment;
  if (payment > r.value) return Decision::Reject();

  ++diag_.outer_offers;
  diag_.payment_sum += payment;
  diag_.payment_rate_sum += payment / r.value;
  diag_.expected_revenue_sum += quote.expected_revenue;

  std::vector<WorkerId> accepting;
  accepting.reserve(outer.size());
  for (WorkerId w : outer) {
    if (view.acceptance().Accepts(w, payment, &rng_)) {
      accepting.push_back(w);
    }
  }
  if (accepting.empty()) {
    Decision d = Decision::Reject();
    d.attempted_outer = true;
    return d;
  }
  ++diag_.outer_accepts;
  const WorkerId w = NearestWorker(accepting, r, view);
  return Decision::Outer(w, payment);
}

}  // namespace comx
