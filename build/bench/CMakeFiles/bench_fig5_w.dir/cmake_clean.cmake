file(REMOVE_RECURSE
  "CMakeFiles/bench_fig5_w.dir/bench_fig5_w.cc.o"
  "CMakeFiles/bench_fig5_w.dir/bench_fig5_w.cc.o.d"
  "bench_fig5_w"
  "bench_fig5_w.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig5_w.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
