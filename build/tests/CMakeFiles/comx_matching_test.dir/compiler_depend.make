# Empty compiler generated dependencies file for comx_matching_test.
# This may be replaced when dependencies are built.
