// Algorithm 2 of the paper: Monte-Carlo + bisection estimate of the minimum
// outer payment v'_r with which some outer worker would plausibly accept a
// cooperative request. Each sampling instance simulates the acceptance of
// every candidate worker and bisects the payment until the bracket is
// narrower than xi * v_r; the estimator is the mean over
// n_s = ceil(4 ln(2/xi) / eta^2) instances (Lemma 1 accuracy bound).

#ifndef COMX_PRICING_MIN_PAYMENT_ESTIMATOR_H_
#define COMX_PRICING_MIN_PAYMENT_ESTIMATOR_H_

#include <vector>

#include "model/ids.h"
#include "pricing/acceptance_model.h"
#include "util/rng.h"

namespace comx {

/// Accuracy knobs of Algorithm 2.
struct MinPaymentConfig {
  /// Relative bisection tolerance and Lemma 1 relative-error bound.
  double xi = 0.1;
  /// Lemma 1 failure-probability bound; drives the sample count.
  double eta = 0.5;
  /// Additive bump returned when no worker accepts even the full value v_r
  /// in a sampling instance (paper: "sets this instance as v_r + epsilon").
  double epsilon = 1e-3;
  /// Hard cap on total bisection iterations per estimate, so pricing can
  /// never stall a request on a pathological tolerance. The default is far
  /// above what the paper's accuracy knobs ever burn (~200 with the
  /// defaults above), so it never binds — and therefore never perturbs —
  /// a normally-configured run. <= 0 disables the cap.
  int64_t max_bisect_iterations = 4096;
  /// Optional wall-clock budget per estimate, seconds. 0 (the default)
  /// disables it. Unlike the iteration cap this consults a real clock, so
  /// enabling it trades bit-reproducibility for a hard latency bound.
  double max_seconds = 0.0;

  /// n_s = ceil(4 ln(2/xi) / eta^2).
  int SampleCount() const;
};

/// Outcome of one estimate.
struct MinPaymentEstimate {
  /// Mean bisected payment over all sampling instances.
  double payment = 0.0;
  /// Fraction of sampling instances in which nobody accepted at v_r — a
  /// diagnostic for "the request is effectively unservable at any price".
  double reject_fraction = 0.0;
  /// Total bisection iterations burned across all sampling instances — the
  /// dominant cost driver (each iteration sweeps every candidate). Fed to
  /// the decision trace and the comx_pricing_* metrics.
  int64_t bisect_iterations = 0;
  /// Monte-Carlo sampling instances run (= config.SampleCount() normally;
  /// fewer when a budget cut the estimate short; 0 for an empty candidate
  /// set).
  int32_t samples = 0;
  /// True when the iteration or wall-clock budget stopped the estimate
  /// early; the payment is then the mean over the instances that ran.
  /// Mirrored by the comx_pricing_budget_exhausted_total counter.
  bool budget_exhausted = false;
};

/// Runs Algorithm 2 for request value `request_value` against the candidate
/// outer workers `candidates` (already filtered for feasibility).
/// An empty candidate set yields payment = request_value + epsilon.
MinPaymentEstimate EstimateMinOuterPayment(
    const AcceptanceModel& model, const std::vector<WorkerId>& candidates,
    double request_value, const MinPaymentConfig& config, Rng* rng);

}  // namespace comx

#endif  // COMX_PRICING_MIN_PAYMENT_ESTIMATOR_H_
