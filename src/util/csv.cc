#include "util/csv.h"

#include <cstdio>
#include <sstream>

namespace comx {
namespace {

bool NeedsQuoting(std::string_view field) {
  return field.find_first_of(",\"\n\r") != std::string_view::npos;
}

std::string QuoteField(std::string_view field) {
  std::string out;
  out.reserve(field.size() + 2);
  out.push_back('"');
  for (char c : field) {
    if (c == '"') out.push_back('"');
    out.push_back(c);
  }
  out.push_back('"');
  return out;
}

}  // namespace

void CsvWriter::WriteRow(const std::vector<std::string>& fields) {
  for (size_t i = 0; i < fields.size(); ++i) {
    if (i) *out_ << ',';
    if (NeedsQuoting(fields[i])) {
      *out_ << QuoteField(fields[i]);
    } else {
      *out_ << fields[i];
    }
  }
  *out_ << '\n';
}

void CsvWriter::WriteNumericRow(const std::vector<double>& values) {
  for (size_t i = 0; i < values.size(); ++i) {
    if (i) *out_ << ',';
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.17g", values[i]);
    *out_ << buf;
  }
  *out_ << '\n';
}

std::vector<std::string> ParseCsvLine(std::string_view line) {
  std::vector<std::string> fields;
  std::string current;
  bool in_quotes = false;
  for (size_t i = 0; i < line.size(); ++i) {
    const char c = line[i];
    if (in_quotes) {
      if (c == '"') {
        if (i + 1 < line.size() && line[i + 1] == '"') {
          current.push_back('"');
          ++i;
        } else {
          in_quotes = false;
        }
      } else {
        current.push_back(c);
      }
    } else if (c == '"') {
      in_quotes = true;
    } else if (c == ',') {
      fields.push_back(std::move(current));
      current.clear();
    } else if (c == '\r') {
      // Ignore CR from CRLF files.
    } else {
      current.push_back(c);
    }
  }
  fields.push_back(std::move(current));
  return fields;
}

Result<std::vector<std::vector<std::string>>> ReadCsvFile(
    const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::IoError("cannot open for read: " + path);
  std::vector<std::vector<std::string>> rows;
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    rows.push_back(ParseCsvLine(line));
  }
  return rows;
}

Status WriteCsvFile(const std::string& path,
                    const std::vector<std::vector<std::string>>& rows) {
  std::ofstream out(path, std::ios::trunc);
  if (!out) return Status::IoError("cannot open for write: " + path);
  CsvWriter writer(&out);
  for (const auto& row : rows) writer.WriteRow(row);
  if (!out) return Status::IoError("write failed: " + path);
  return Status::OK();
}

}  // namespace comx
