// Clones of the paper's six real datasets (Table III). The originals are
// gated (DiDi GAIA program; Yueche link is a private share), so we generate
// synthetic equivalents matched on everything the algorithms consume: the
// per-day request/worker counts, the 1 km service radius, the city layout
// (Chengdu vs Xi'an), and the request:worker imbalance (~10:1 in Chengdu,
// ~25:1 in Xi'an). See DESIGN.md section 2 for the substitution rationale.

#ifndef COMX_DATAGEN_REAL_LIKE_H_
#define COMX_DATAGEN_REAL_LIKE_H_

#include <string>
#include <vector>

#include "datagen/synthetic.h"
#include "model/instance.h"
#include "util/result.h"

namespace comx {

/// One row of Table III, pairing the DiDi-like and Yueche-like platforms
/// that co-exist in a city/month.
struct RealDatasetSpec {
  std::string name;           // e.g. "RDC10+RYC10"
  int64_t didi_requests = 0;  // |R| of the DiDi-like platform (platform 0)
  int64_t didi_workers = 0;
  int64_t yueche_requests = 0;  // platform 1
  int64_t yueche_workers = 0;
  double radius_km = 1.0;
  bool xian = false;  // Chengdu layout when false
};

/// The three Table III pairings.
RealDatasetSpec Rdc10Ryc10();  // Chengdu, Oct 2016
RealDatasetSpec Rdc11Ryc11();  // Chengdu, Nov 2016
RealDatasetSpec Rdx11Ryx11();  // Xi'an,   Nov 2016

/// All three, in Table V/VI/VII order.
std::vector<RealDatasetSpec> AllRealSpecs();

/// Materializes a spec into an Instance. `scale` in (0, 1] shrinks every
/// count proportionally (e.g. 0.1 for a quick run); counts round to >= 1.
Result<Instance> GenerateRealLike(const RealDatasetSpec& spec,
                                  double scale = 1.0, uint64_t seed = 2016);

}  // namespace comx

#endif  // COMX_DATAGEN_REAL_LIKE_H_
