#include "matching/hopcroft_karp.h"

#include <gtest/gtest.h>

#include "matching/brute_force.h"
#include "util/rng.h"

namespace comx {
namespace {

using testing_fixtures::BruteForceMaxCardinality;
using testing_fixtures::RandomGraph;

TEST(HopcroftKarpTest, EmptyGraph) {
  BipartiteGraph g(0, 0);
  EXPECT_EQ(HopcroftKarpMaxCardinality(g).size, 0);
}

TEST(HopcroftKarpTest, PerfectMatchingOnDiagonal) {
  BipartiteGraph g(4, 4);
  for (int32_t i = 0; i < 4; ++i) ASSERT_TRUE(g.AddEdge(i, i, 1.0).ok());
  const auto m = HopcroftKarpMaxCardinality(g);
  EXPECT_EQ(m.size, 4);
  for (int32_t l = 0; l < 4; ++l) EXPECT_EQ(m.match_of_left[l], l);
}

TEST(HopcroftKarpTest, AugmentingPathNeeded) {
  // l0-{r0,r1}, l1-{r0}: greedy l0->r0 forces augmentation for l1.
  BipartiteGraph g(2, 2);
  ASSERT_TRUE(g.AddEdge(0, 0, 1.0).ok());
  ASSERT_TRUE(g.AddEdge(0, 1, 1.0).ok());
  ASSERT_TRUE(g.AddEdge(1, 0, 1.0).ok());
  EXPECT_EQ(HopcroftKarpMaxCardinality(g).size, 2);
}

TEST(HopcroftKarpTest, BottleneckRightVertex) {
  BipartiteGraph g(3, 1);
  for (int32_t l = 0; l < 3; ++l) ASSERT_TRUE(g.AddEdge(l, 0, 1.0).ok());
  EXPECT_EQ(HopcroftKarpMaxCardinality(g).size, 1);
}

TEST(HopcroftKarpTest, DuplicateEdgesHarmless) {
  BipartiteGraph g(1, 1);
  ASSERT_TRUE(g.AddEdge(0, 0, 1.0).ok());
  ASSERT_TRUE(g.AddEdge(0, 0, 2.0).ok());
  const auto m = HopcroftKarpMaxCardinality(g);
  EXPECT_EQ(m.size, 1);
  EXPECT_DOUBLE_EQ(m.total_weight, 2.0);  // reports max parallel weight
}

class HopcroftKarpRandomTest : public testing::TestWithParam<int> {};

TEST_P(HopcroftKarpRandomTest, MatchesBruteForceCardinality) {
  Rng rng(static_cast<uint64_t>(GetParam()) * 104729 + 7);
  for (int iter = 0; iter < 25; ++iter) {
    const int32_t left = static_cast<int32_t>(rng.UniformInt(1, 7));
    const int32_t right = static_cast<int32_t>(rng.UniformInt(1, 7));
    const BipartiteGraph g = RandomGraph(left, right, 0.4, &rng);
    EXPECT_EQ(HopcroftKarpMaxCardinality(g).size,
              BruteForceMaxCardinality(g))
        << "iter " << iter << " " << g.Summary();
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, HopcroftKarpRandomTest, testing::Range(0, 8));

TEST(HopcroftKarpTest, MatchingIsStructurallyValid) {
  Rng rng(31337);
  const BipartiteGraph g = RandomGraph(30, 25, 0.2, &rng);
  const auto m = HopcroftKarpMaxCardinality(g);
  EXPECT_TRUE(g.ValidateMatching(m.match_of_left, nullptr).ok());
}

}  // namespace
}  // namespace comx
