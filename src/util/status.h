// Lightweight status object used for error handling across the comx library.
// The library does not throw exceptions; fallible operations return Status or
// Result<T> (see result.h).

#ifndef COMX_UTIL_STATUS_H_
#define COMX_UTIL_STATUS_H_

#include <ostream>
#include <string>
#include <string_view>
#include <utility>

namespace comx {

/// Machine-readable category of a Status.
enum class StatusCode : int {
  kOk = 0,
  kInvalidArgument = 1,
  kNotFound = 2,
  kOutOfRange = 3,
  kFailedPrecondition = 4,
  kAlreadyExists = 5,
  kIoError = 6,
  kInternal = 7,
  kUnimplemented = 8,
  kDataLoss = 9,
};

/// Human-readable name of a status code ("Ok", "InvalidArgument", ...).
std::string_view StatusCodeToString(StatusCode code);

/// Outcome of a fallible operation: a code plus an optional message.
///
/// A default-constructed Status is OK. Statuses are cheap to copy (the
/// message is only allocated on error paths).
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}

  /// Constructs a status with the given code and message.
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  /// Named constructors, one per error category.
  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status IoError(std::string msg) {
    return Status(StatusCode::kIoError, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }
  static Status DataLoss(std::string msg) {
    return Status(StatusCode::kDataLoss, std::move(msg));
  }

  /// True when the operation succeeded.
  bool ok() const { return code_ == StatusCode::kOk; }

  /// The status category.
  StatusCode code() const { return code_; }

  /// The error message; empty for OK statuses.
  const std::string& message() const { return message_; }

  /// "Ok" or "<Code>: <message>".
  std::string ToString() const;

  bool operator==(const Status& other) const {
    return code_ == other.code_ && message_ == other.message_;
  }
  bool operator!=(const Status& other) const { return !(*this == other); }

 private:
  StatusCode code_;
  std::string message_;
};

inline std::ostream& operator<<(std::ostream& os, const Status& s) {
  return os << s.ToString();
}

}  // namespace comx

/// Propagates an error Status from the current function.
#define COMX_RETURN_IF_ERROR(expr)                \
  do {                                            \
    ::comx::Status _comx_status = (expr);         \
    if (!_comx_status.ok()) return _comx_status;  \
  } while (false)

#endif  // COMX_UTIL_STATUS_H_
