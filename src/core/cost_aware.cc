#include "core/cost_aware.h"

#include <algorithm>
#include <utility>

namespace comx {

void CostAwareDemCom::Reset(const Instance& /*instance*/,
                            PlatformId /*platform*/, uint64_t seed) {
  rng_ = Rng(seed);
}

WorkerId CostAwareDemCom::BestByNet(const std::vector<WorkerId>& candidates,
                                    const Request& r,
                                    const PlatformView& view,
                                    double gross_revenue) const {
  WorkerId best = kInvalidId;
  double best_net = 0.0;  // only accept strictly positive nets
  std::vector<double> dist;
  view.BatchDistanceTo(candidates, r, &dist);
  for (size_t i = 0; i < candidates.size(); ++i) {
    const WorkerId w = candidates[i];
    const double net = gross_revenue - config_.cost_per_km * dist[i];
    if (net > best_net || (net == best_net && best != kInvalidId && w < best)) {
      if (net > 0.0) {
        best = w;
        best_net = net;
      }
    }
  }
  return best;
}

Decision CostAwareDemCom::OnRequest(const Request& r,
                                    const PlatformView& view) {
  // Inner first, like DemCOM, but maximizing net revenue and refusing
  // assignments whose pickup cost eats the whole fare.
  const std::vector<WorkerId> inner = view.FeasibleInnerWorkers(r);
  if (const WorkerId w = BestByNet(inner, r, view, r.value);
      w != kInvalidId) {
    return Decision::Inner(w);
  }

  std::vector<WorkerId> outer = view.FeasibleOuterWorkers(r);
  if (outer.empty()) return Decision::Reject();

  const MinPaymentEstimate estimate = EstimateMinOuterPayment(
      view.acceptance(), outer, r.value, config_.pricing, &rng_);
  const double payment = estimate.payment;
  if (payment > r.value) return Decision::Reject();

  // Acceptance draws as in DemCOM; among accepting workers pick the best
  // net (v - payment - cost * dist), refusing non-positive nets.
  std::vector<WorkerId> accepting;
  accepting.reserve(outer.size());
  for (WorkerId w : outer) {
    if (view.acceptance().Accepts(w, payment, &rng_)) {
      accepting.push_back(w);
    }
  }
  if (accepting.empty()) {
    Decision d = Decision::Reject();
    d.attempted_outer = true;
    return d;
  }
  const WorkerId w = BestByNet(accepting, r, view, r.value - payment);
  if (w == kInvalidId) {
    // Someone accepted, but the travel would make the borrow unprofitable.
    Decision d = Decision::Reject();
    d.attempted_outer = true;
    return d;
  }
  Decision d = Decision::Outer(w, payment);
  // Fallbacks: remaining profitable accepting workers, best net first
  // (ties by lower id), matching BestByNet's preference order.
  std::vector<std::pair<double, WorkerId>> ranked;
  std::vector<double> dist;
  view.BatchDistanceTo(accepting, r, &dist);
  for (size_t i = 0; i < accepting.size(); ++i) {
    const WorkerId c = accepting[i];
    const double net = r.value - payment - config_.cost_per_km * dist[i];
    if (c != w && net > 0.0) ranked.emplace_back(-net, c);
  }
  std::sort(ranked.begin(), ranked.end());
  for (const auto& [neg_net, c] : ranked) d.fallback_workers.push_back(c);
  return d;
}

Status CostAwareDemCom::SaveState(ByteWriter* out) const {
  WriteRng(rng_, out);
  return Status::OK();
}

Status CostAwareDemCom::RestoreState(ByteReader* in) {
  return ReadRng(in, &rng_);
}

}  // namespace comx
