// Flattened empirical-CDF storage + batched evaluation — the vectorized
// Algorithm-2 path. The per-worker sorted value histories are packed into
// one contiguous array with offsets plus summary arrays (min, max, size),
// so one Monte-Carlo/bisection sweep evaluates every candidate's
// acceptance probability in a single cache-friendly pass: the min/max
// summaries short-circuit the common all-below/all-above probes and the
// interior case runs a branchless binary search over the flat slice.
//
// Contract: Evaluate()/BatchEvaluate() return bit-identical doubles to
// ValueHistory::Ecdf (same upper_bound count, same count/size division),
// so swapping the estimator onto this path changes no simulation output.

#ifndef COMX_KERNELS_ECDF_BATCH_H_
#define COMX_KERNELS_ECDF_BATCH_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace comx {
namespace kernels {

/// Immutable flat ECDF table over dense worker ids [0, worker_count).
class EcdfIndex {
 public:
  /// Workers are appended densely in id order; `sorted_values` must be
  /// ascending (ValueHistory guarantees this). Empty histories are legal
  /// (probability 0 everywhere, as in Definition 3.1 with N = 0).
  void AddWorker(const double* sorted_values, size_t n);

  void Reserve(size_t workers, size_t total_values);

  size_t worker_count() const { return offsets_.size() - 1; }

  /// pr(payment, w): fraction of w's history values <= payment.
  double Evaluate(int64_t w, double payment) const;

  /// probs_out[i] = Evaluate(ids[i], payment) for i in [0, n).
  void BatchEvaluate(const int64_t* ids, size_t n, double payment,
                     double* probs_out) const;

  /// probs_out[j] = Evaluate(w, payments[j]) for an ASCENDING payments
  /// array: one merge walk over the worker's sorted history instead of n
  /// independent binary searches (the MER grid scan evaluates every
  /// candidate at dozens of sorted payment points). Results are
  /// bit-identical to Evaluate — same count, same count/size division.
  void EvaluateAscending(int64_t w, const double* payments, size_t n,
                         double* probs_out) const;

  /// Summary arrays (value-history summaries of the SoA worker mirror).
  /// min/max are +inf/-inf for empty histories.
  const double* hist_min() const { return min_.data(); }
  const double* hist_max() const { return max_.data(); }

 private:
  std::vector<double> values_;    // all histories, concatenated ascending
  std::vector<size_t> offsets_;   // worker w owns [offsets_[w], offsets_[w+1])
  std::vector<double> min_;       // first value or +inf
  std::vector<double> max_;       // last value or -inf
  std::vector<double> size_;      // history length as double (exact divisor)
};

}  // namespace kernels
}  // namespace comx

#endif  // COMX_KERNELS_ECDF_BATCH_H_
