#include "geo/grid_index.h"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "util/string_util.h"

namespace comx {

namespace internal {

void RecordGridProbe(size_t hits) {
  static obs::Counter* const queries =
      obs::MetricsRegistry::Global().GetCounter(
          "comx_geo_grid_queries_total",
          "Radius probes answered by the grid index");
  static obs::Counter* const hit_count =
      obs::MetricsRegistry::Global().GetCounter(
          "comx_geo_grid_hits_total",
          "Points returned by grid-index radius probes");
  queries->Inc();
  hit_count->Inc(static_cast<int64_t>(hits));
}

}  // namespace internal

GridIndex::GridIndex(double cell_size_km) : cell_size_(cell_size_km) {
  assert(cell_size_km > 0.0);
}

int32_t GridIndex::CellCoordX(double x) const {
  return static_cast<int32_t>(std::floor(x / cell_size_));
}

int32_t GridIndex::CellCoordY(double y) const {
  return static_cast<int32_t>(std::floor(y / cell_size_));
}

GridIndex::CellKey GridIndex::PackCell(int32_t cx, int32_t cy) {
  return (static_cast<uint64_t>(static_cast<uint32_t>(cx)) << 32) |
         static_cast<uint64_t>(static_cast<uint32_t>(cy));
}

GridIndex::CellKey GridIndex::KeyFor(const Point& p) const {
  return PackCell(CellCoordX(p.x), CellCoordY(p.y));
}

Status GridIndex::Insert(int64_t id, const Point& location) {
  auto [it, inserted] = locations_.try_emplace(id, location);
  if (!inserted) {
    return Status::AlreadyExists(
        StrFormat("grid index already holds id %lld",
                  static_cast<long long>(id)));
  }
  cells_[KeyFor(location)].push_back(id);
  return Status::OK();
}

Status GridIndex::Remove(int64_t id) {
  const auto it = locations_.find(id);
  if (it == locations_.end()) {
    return Status::NotFound(
        StrFormat("grid index has no id %lld", static_cast<long long>(id)));
  }
  // The two lookups below are internal-consistency checks: a located id
  // must sit in exactly the bucket its point hashes to. They used to be
  // assert-only, so an NDEBUG build would dereference end() / pop from the
  // wrong bucket and silently corrupt the index — fail loudly instead.
  const CellKey key = KeyFor(it->second);
  auto cell_it = cells_.find(key);
  if (cell_it == cells_.end()) {
    return Status::Internal(
        StrFormat("grid index corrupt: id %lld located but its cell is "
                  "missing",
                  static_cast<long long>(id)));
  }
  auto& bucket = cell_it->second;
  const auto pos = std::find(bucket.begin(), bucket.end(), id);
  if (pos == bucket.end()) {
    return Status::Internal(
        StrFormat("grid index corrupt: id %lld located but absent from its "
                  "bucket",
                  static_cast<long long>(id)));
  }
  // Swap-and-pop: bucket order is unspecified.
  *pos = bucket.back();
  bucket.pop_back();
  if (bucket.empty()) cells_.erase(cell_it);
  locations_.erase(it);
  return Status::OK();
}

bool GridIndex::Contains(int64_t id) const { return locations_.count(id) > 0; }

Result<Point> GridIndex::LocationOf(int64_t id) const {
  const auto it = locations_.find(id);
  if (it == locations_.end()) {
    return Status::NotFound(
        StrFormat("grid index has no id %lld", static_cast<long long>(id)));
  }
  return it->second;
}

std::vector<int64_t> GridIndex::QueryRadius(const Point& center,
                                            double radius) const {
  std::vector<int64_t> out;
  ForEachInRadius(center, radius,
                  [&out](int64_t id, double /*d2*/) { out.push_back(id); });
  return out;
}

std::vector<int64_t> GridIndex::QueryRect(const BBox& box) const {
  std::vector<int64_t> out;
  if (box.empty()) return out;
  const int32_t cx_lo = CellCoordX(box.min_corner().x);
  const int32_t cx_hi = CellCoordX(box.max_corner().x);
  const int32_t cy_lo = CellCoordY(box.min_corner().y);
  const int32_t cy_hi = CellCoordY(box.max_corner().y);
  for (int32_t cx = cx_lo; cx <= cx_hi; ++cx) {
    for (int32_t cy = cy_lo; cy <= cy_hi; ++cy) {
      const auto it = cells_.find(PackCell(cx, cy));
      if (it == cells_.end()) continue;
      for (int64_t id : it->second) {
        if (box.Contains(locations_.at(id))) out.push_back(id);
      }
    }
  }
  return out;
}

void GridIndex::Clear() {
  cells_.clear();
  locations_.clear();
}

}  // namespace comx
