// Minimal fixed-size thread pool plus a ParallelFor helper. The library's
// simulators are single-threaded by design (determinism), but independent
// runs (seed averaging, sweep points, CR permutations) are embarrassingly
// parallel — the benchmark harness and the sweep engine (exp/sweep_runner.h)
// use this to cut wall-clock time.

#ifndef COMX_UTIL_THREAD_POOL_H_
#define COMX_UTIL_THREAD_POOL_H_

#include <condition_variable>
#include <cstddef>
#include <exception>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace comx {

/// Fixed-size worker pool executing enqueued tasks FIFO.
///
/// Exception safety: a task that throws does not kill its worker thread.
/// The first exception is captured and rethrown from the next Wait() (or
/// swallowed by the destructor when Wait() is never called); later
/// exceptions from the same batch are dropped. Tasks written against the
/// library convention (Status returns, no throwing) never trigger this
/// path, but std::bad_alloc and third-party callbacks must not terminate
/// the process.
class ThreadPool {
 public:
  /// Spawns `threads` workers (>= 1; 0 selects hardware concurrency).
  explicit ThreadPool(size_t threads = 0);

  /// Drains outstanding tasks, then joins the workers. Never throws:
  /// a captured task exception that was not observed via Wait() is
  /// discarded.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues a task. Tasks must not enqueue further tasks into the same
  /// pool and then Wait() on them from within (deadlock).
  ///
  /// Throws std::logic_error once shutdown has begun (Shutdown() or the
  /// destructor): a task enqueued while the workers drain may or may not
  /// ever run depending on who wins the race, so the bug fails loudly at
  /// the submit site instead of surfacing as a lost task or a Wait() that
  /// never returns.
  void Submit(std::function<void()> task);

  /// Drains outstanding tasks and joins the workers, after which Submit()
  /// throws. Idempotent; called implicitly by the destructor. Exposed so
  /// long-running services can stop their pool deterministically and so
  /// tests can exercise the submit-after-shutdown contract.
  void Shutdown();

  /// Blocks until every submitted task has finished. If any task threw
  /// since the last Wait(), rethrows the first captured exception (the
  /// batch still ran to completion — in_flight_ reaches zero on all
  /// paths).
  void Wait();

  /// Number of worker threads.
  size_t thread_count() const { return workers_.size(); }

 private:
  void WorkerLoop();

  std::mutex mutex_;
  std::condition_variable task_ready_;
  std::condition_variable all_done_;
  std::queue<std::function<void()>> tasks_;
  std::vector<std::thread> workers_;
  size_t in_flight_ = 0;
  bool shutdown_ = false;
  std::exception_ptr first_exception_;
};

/// Runs fn(i) for i in [0, count) on a caller-owned pool and waits.
/// fn must be safe to call concurrently for distinct i. Wait() semantics
/// apply, so a pool shared with other concurrently submitted work waits
/// for that work too. Rethrows the first exception any fn(i) threw (every
/// index still runs).
void ParallelFor(ThreadPool& pool, size_t count,
                 const std::function<void(size_t)>& fn);

/// Convenience wrapper constructing a transient pool of `threads` workers
/// (serial fallback when threads <= 1 or count <= 1). Prefer the
/// pool-reusing overload inside loops — constructing and joining a pool
/// per call costs thread spawns.
void ParallelFor(size_t count, size_t threads,
                 const std::function<void(size_t)>& fn);

}  // namespace comx

#endif  // COMX_UTIL_THREAD_POOL_H_
