#include "model/event.h"

#include "util/string_util.h"

namespace comx {

std::string Event::ToString() const {
  return StrFormat("Event{t=%.3f, %s #%lld, seq=%lld}", time,
                   kind == EventKind::kWorkerArrival ? "worker" : "request",
                   static_cast<long long>(entity_id),
                   static_cast<long long>(sequence));
}

}  // namespace comx
