
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/core/candidate_cap_test.cc" "tests/CMakeFiles/comx_core_test.dir/core/candidate_cap_test.cc.o" "gcc" "tests/CMakeFiles/comx_core_test.dir/core/candidate_cap_test.cc.o.d"
  "/root/repo/tests/core/cost_aware_test.cc" "tests/CMakeFiles/comx_core_test.dir/core/cost_aware_test.cc.o" "gcc" "tests/CMakeFiles/comx_core_test.dir/core/cost_aware_test.cc.o.d"
  "/root/repo/tests/core/dem_com_test.cc" "tests/CMakeFiles/comx_core_test.dir/core/dem_com_test.cc.o" "gcc" "tests/CMakeFiles/comx_core_test.dir/core/dem_com_test.cc.o.d"
  "/root/repo/tests/core/greedy_rt_test.cc" "tests/CMakeFiles/comx_core_test.dir/core/greedy_rt_test.cc.o" "gcc" "tests/CMakeFiles/comx_core_test.dir/core/greedy_rt_test.cc.o.d"
  "/root/repo/tests/core/matcher_variants_test.cc" "tests/CMakeFiles/comx_core_test.dir/core/matcher_variants_test.cc.o" "gcc" "tests/CMakeFiles/comx_core_test.dir/core/matcher_variants_test.cc.o.d"
  "/root/repo/tests/core/offline_opt_test.cc" "tests/CMakeFiles/comx_core_test.dir/core/offline_opt_test.cc.o" "gcc" "tests/CMakeFiles/comx_core_test.dir/core/offline_opt_test.cc.o.d"
  "/root/repo/tests/core/paper_example_test.cc" "tests/CMakeFiles/comx_core_test.dir/core/paper_example_test.cc.o" "gcc" "tests/CMakeFiles/comx_core_test.dir/core/paper_example_test.cc.o.d"
  "/root/repo/tests/core/ram_com_test.cc" "tests/CMakeFiles/comx_core_test.dir/core/ram_com_test.cc.o" "gcc" "tests/CMakeFiles/comx_core_test.dir/core/ram_com_test.cc.o.d"
  "/root/repo/tests/core/ranking_test.cc" "tests/CMakeFiles/comx_core_test.dir/core/ranking_test.cc.o" "gcc" "tests/CMakeFiles/comx_core_test.dir/core/ranking_test.cc.o.d"
  "/root/repo/tests/core/tota_greedy_test.cc" "tests/CMakeFiles/comx_core_test.dir/core/tota_greedy_test.cc.o" "gcc" "tests/CMakeFiles/comx_core_test.dir/core/tota_greedy_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/comx_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/comx_core.dir/DependInfo.cmake"
  "/root/repo/build/src/matching/CMakeFiles/comx_matching.dir/DependInfo.cmake"
  "/root/repo/build/src/pricing/CMakeFiles/comx_pricing.dir/DependInfo.cmake"
  "/root/repo/build/src/datagen/CMakeFiles/comx_datagen.dir/DependInfo.cmake"
  "/root/repo/build/src/model/CMakeFiles/comx_model.dir/DependInfo.cmake"
  "/root/repo/build/src/roadnet/CMakeFiles/comx_roadnet.dir/DependInfo.cmake"
  "/root/repo/build/src/geo/CMakeFiles/comx_geo.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/comx_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
