// Future-work extension bench (paper Section VII: "the cooperation can be
// improved if the crowd workers can provide the service after short travel
// distances"): DemCOM vs the travel-cost-aware variant across per-km cost
// levels, reporting gross revenue, total pickup km, and net revenue.

#include <cstdio>

#include "common.h"
#include "core/cost_aware.h"
#include "core/dem_com.h"
#include "datagen/synthetic.h"
#include "sim/simulator.h"

namespace {

using namespace comx;  // NOLINT — leaf benchmark binary

struct Outcome {
  double gross = 0.0;
  double pickup_km = 0.0;
  int64_t completed = 0;
};

template <typename Matcher, typename... Args>
Outcome Run(const Instance& instance, int seeds, Args&&... args) {
  SimConfig sim;
  sim.workers_recycle = true;
  sim.measure_response_time = false;
  Outcome out;
  for (int s = 1; s <= seeds; ++s) {
    Matcher m0(args...), m1(args...);
    auto r = RunSimulation(instance, {&m0, &m1}, sim,
                           static_cast<uint64_t>(s));
    if (!r.ok()) {
      std::fprintf(stderr, "sim: %s\n", r.status().ToString().c_str());
      std::exit(1);
    }
    const auto agg = r->metrics.Aggregate();
    out.gross += agg.revenue;
    out.pickup_km += agg.total_pickup_km;
    out.completed += agg.completed;
  }
  out.gross /= seeds;
  out.pickup_km /= seeds;
  out.completed /= seeds;
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  const int seeds = static_cast<int>(bench::ArgInt(argc, argv, "--seeds", 4));
  SyntheticConfig config;
  config.requests_per_platform = {1250};
  config.workers_per_platform = {250};
  config.radius_km = 2.5;  // long pickups possible
  config.seed = 2020;
  auto instance = GenerateSynthetic(config);
  if (!instance.ok()) return 1;
  std::printf("travel-cost extension on %s, rad 2.5 km, %d seeds\n\n",
              instance->Summary().c_str(), seeds);

  const Outcome dem = Run<DemCom>(*instance, seeds);
  std::printf("%-14s %10s %10s %9s | %12s %12s\n", "cost/km", "gross",
              "pickup km", "served", "net(DemCOM)", "net(CostDem)");
  for (double cost : {0.0, 1.0, 2.0, 4.0, 8.0}) {
    CostAwareConfig cc;
    cc.cost_per_km = cost;
    const Outcome aware = Run<CostAwareDemCom>(*instance, seeds, cc);
    std::printf("%-14.1f %10.1f %10.1f %9lld | %12.1f %12.1f\n", cost,
                aware.gross, aware.pickup_km,
                static_cast<long long>(aware.completed),
                dem.gross - cost * dem.pickup_km,
                aware.gross - cost * aware.pickup_km);
  }
  std::printf("\nDemCOM reference: gross %.1f, pickup %.1f km, served %lld\n",
              dem.gross, dem.pickup_km,
              static_cast<long long>(dem.completed));
  std::printf("expected shape: as cost/km rises, the cost-aware variant "
              "sheds long pickups (fewer km, slightly fewer served) and "
              "its net revenue advantage over DemCOM widens.\n");
  return 0;
}
