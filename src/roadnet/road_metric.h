// Road-network travel metric: snap both endpoints to their nearest
// intersections, run A* between them, and add the straight-line walk-on /
// walk-off segments. Plugs into the simulator via SimConfig::metric to
// realize the paper's road-network range constraint.

#ifndef COMX_ROADNET_ROAD_METRIC_H_
#define COMX_ROADNET_ROAD_METRIC_H_

#include <cstdint>
#include <unordered_map>

#include "geo/distance_metric.h"
#include "roadnet/road_graph.h"

namespace comx {

/// DistanceMetric backed by shortest paths over a RoadGraph.
///
/// Not thread-safe (per-instance memo of node-pair distances). The metric
/// satisfies Distance >= Euclidean because edges are at least as long as
/// their Euclidean span and the snap walks obey the triangle inequality.
class RoadNetworkMetric : public DistanceMetric {
 public:
  /// The graph must outlive the metric and be connected for sensible
  /// results (disconnected pairs report kUnreachable).
  explicit RoadNetworkMetric(const RoadGraph* graph) : graph_(graph) {}

  double Distance(const Point& a, const Point& b) const override;

  std::string name() const override { return "roadnet"; }

  /// Node-pair distances memoized so far (diagnostics).
  size_t cache_size() const { return cache_.size(); }

 private:
  const RoadGraph* graph_;
  mutable std::unordered_map<uint64_t, double> cache_;
};

}  // namespace comx

#endif  // COMX_ROADNET_ROAD_METRIC_H_
