#include "util/string_util.h"

#include <cstdarg>
#include <cstdio>
#include <cstdlib>
#include <cctype>

namespace comx {

std::vector<std::string> Split(std::string_view s, char delim) {
  std::vector<std::string> out;
  size_t start = 0;
  while (true) {
    const size_t pos = s.find(delim, start);
    if (pos == std::string_view::npos) {
      out.emplace_back(s.substr(start));
      break;
    }
    out.emplace_back(s.substr(start, pos - start));
    start = pos + 1;
  }
  return out;
}

std::string_view Trim(std::string_view s) {
  size_t b = 0;
  while (b < s.size() && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  size_t e = s.size();
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return s.substr(b, e - b);
}

std::string Join(const std::vector<std::string>& parts,
                 std::string_view separator) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i) out.append(separator);
    out.append(parts[i]);
  }
  return out;
}

std::string StrFormat(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list copy;
  va_copy(copy, args);
  const int needed = std::vsnprintf(nullptr, 0, fmt, copy);
  va_end(copy);
  std::string out;
  if (needed > 0) {
    out.resize(static_cast<size_t>(needed));
    std::vsnprintf(out.data(), out.size() + 1, fmt, args);
  }
  va_end(args);
  return out;
}

Result<double> ParseDouble(std::string_view s) {
  const std::string trimmed(Trim(s));
  if (trimmed.empty()) return Status::InvalidArgument("empty number");
  char* end = nullptr;
  const double v = std::strtod(trimmed.c_str(), &end);
  if (end != trimmed.c_str() + trimmed.size()) {
    return Status::InvalidArgument("not a double: '" + trimmed + "'");
  }
  return v;
}

Result<int64_t> ParseInt64(std::string_view s) {
  const std::string trimmed(Trim(s));
  if (trimmed.empty()) return Status::InvalidArgument("empty number");
  char* end = nullptr;
  const long long v = std::strtoll(trimmed.c_str(), &end, 10);
  if (end != trimmed.c_str() + trimmed.size()) {
    return Status::InvalidArgument("not an int: '" + trimmed + "'");
  }
  return static_cast<int64_t>(v);
}

}  // namespace comx
