#include "util/status.h"

#include <sstream>

#include <gtest/gtest.h>

namespace comx {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_TRUE(s.message().empty());
}

TEST(StatusTest, OkFactory) {
  EXPECT_TRUE(Status::OK().ok());
  EXPECT_EQ(Status::OK().ToString(), "Ok");
}

TEST(StatusTest, ErrorFactoriesCarryCodeAndMessage) {
  const struct {
    Status status;
    StatusCode code;
  } cases[] = {
      {Status::InvalidArgument("a"), StatusCode::kInvalidArgument},
      {Status::NotFound("b"), StatusCode::kNotFound},
      {Status::OutOfRange("c"), StatusCode::kOutOfRange},
      {Status::FailedPrecondition("d"), StatusCode::kFailedPrecondition},
      {Status::AlreadyExists("e"), StatusCode::kAlreadyExists},
      {Status::IoError("f"), StatusCode::kIoError},
      {Status::Internal("g"), StatusCode::kInternal},
      {Status::Unimplemented("h"), StatusCode::kUnimplemented},
  };
  for (const auto& c : cases) {
    EXPECT_FALSE(c.status.ok());
    EXPECT_EQ(c.status.code(), c.code);
    EXPECT_FALSE(c.status.message().empty());
  }
}

TEST(StatusTest, ToStringIncludesCodeAndMessage) {
  const Status s = Status::NotFound("missing thing");
  EXPECT_EQ(s.ToString(), "NotFound: missing thing");
}

TEST(StatusTest, EqualityComparesCodeAndMessage) {
  EXPECT_EQ(Status::NotFound("x"), Status::NotFound("x"));
  EXPECT_NE(Status::NotFound("x"), Status::NotFound("y"));
  EXPECT_NE(Status::NotFound("x"), Status::Internal("x"));
  EXPECT_EQ(Status::OK(), Status());
}

TEST(StatusTest, StreamOperatorMatchesToString) {
  std::ostringstream os;
  os << Status::Internal("boom");
  EXPECT_EQ(os.str(), "Internal: boom");
}

TEST(StatusTest, CodeNamesAreStable) {
  EXPECT_EQ(StatusCodeToString(StatusCode::kOk), "Ok");
  EXPECT_EQ(StatusCodeToString(StatusCode::kIoError), "IoError");
}

Status FailsThenPropagates() {
  COMX_RETURN_IF_ERROR(Status::InvalidArgument("inner"));
  return Status::Internal("unreachable");
}

TEST(StatusTest, ReturnIfErrorPropagates) {
  const Status s = FailsThenPropagates();
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.message(), "inner");
}

Status SucceedsThrough() {
  COMX_RETURN_IF_ERROR(Status::OK());
  return Status::Internal("reached");
}

TEST(StatusTest, ReturnIfErrorPassesThroughOnOk) {
  EXPECT_EQ(SucceedsThrough().code(), StatusCode::kInternal);
}

}  // namespace
}  // namespace comx
