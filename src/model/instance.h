// Instance: one complete COM problem — the workers and requests of every
// participating platform plus the interleaved arrival order. All algorithms
// (TOTA, DemCOM, RamCOM, OFF) consume an Instance.

#ifndef COMX_MODEL_INSTANCE_H_
#define COMX_MODEL_INSTANCE_H_

#include <string>
#include <vector>

#include "model/event.h"
#include "model/request.h"
#include "model/worker.h"
#include "util/result.h"
#include "util/status.h"

namespace comx {

/// A complete problem instance.
///
/// Entities are stored densely: `workers[i].id == i` and
/// `requests[j].id == j`. The event stream interleaves all arrivals in
/// non-decreasing time order; BuildEvents() derives it from the entity
/// timestamps when the dataset does not carry an explicit order.
class Instance {
 public:
  Instance() = default;

  /// Appends a worker; assigns and returns its dense id.
  WorkerId AddWorker(Worker worker);

  /// Appends a request; assigns and returns its dense id.
  RequestId AddRequest(Request request);

  /// Rebuilds the event stream from entity timestamps, ties broken by
  /// insertion order (workers and requests interleaved by `sequence`).
  void BuildEvents();

  /// Replaces the event stream with an explicit order. The order must cover
  /// each entity exactly once; Validate() checks this.
  void SetEvents(std::vector<Event> events);

  /// Full consistency check: dense ids, per-entity validity, events sorted
  /// and covering each entity exactly once.
  Status Validate() const;

  /// Number of platforms = 1 + max platform id seen (0 when empty).
  int32_t PlatformCount() const;

  /// Largest request value (0 when there are no requests). Used by RamCOM's
  /// threshold theta = ceil(ln(max v + 1)).
  double MaxRequestValue() const;

  /// Count of requests belonging to `platform`.
  int64_t RequestCountOf(PlatformId platform) const;

  /// Count of workers belonging to `platform`.
  int64_t WorkerCountOf(PlatformId platform) const;

  const std::vector<Worker>& workers() const { return workers_; }
  const std::vector<Request>& requests() const { return requests_; }
  const std::vector<Event>& events() const { return events_; }

  const Worker& worker(WorkerId id) const { return workers_[id]; }
  const Request& request(RequestId id) const { return requests_[id]; }

  /// Mutable access used by generators that post-process entities.
  Worker* mutable_worker(WorkerId id) { return &workers_[id]; }
  Request* mutable_request(RequestId id) { return &requests_[id]; }

  /// Summary line for logs: counts per platform.
  std::string Summary() const;

 private:
  std::vector<Worker> workers_;
  std::vector<Request> requests_;
  std::vector<Event> events_;
};

}  // namespace comx

#endif  // COMX_MODEL_INSTANCE_H_
