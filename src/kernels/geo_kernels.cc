// Public kernel entry points (dispatch trampolines), the scalar backend,
// and the GeoTrigBatch container. The scalar loops below are the reference
// semantics: the AVX2 backend mirrors them lane for lane and calls them on
// its tails.

#include "kernels/geo_kernels.h"

#include <cmath>

#include "kernels/backends.h"
#include "kernels/kernel_table_inl.h"

namespace comx {
namespace kernels {
namespace internal {

void ScalarBatchSquaredDistance(const double* xs, const double* ys, size_t n,
                                double cx, double cy, double* d2_out) {
  for (size_t i = 0; i < n; ++i) {
    d2_out[i] = SquaredDistanceExpr(xs[i], ys[i], cx, cy);
  }
}

size_t ScalarFilterInRange(const double* xs, const double* ys,
                           const double* radius2, size_t n, double cx,
                           double cy, double range2, int32_t* idx_out,
                           double* d2_out) {
  size_t out = 0;
  for (size_t i = 0; i < n; ++i) {
    const double d2 = SquaredDistanceExpr(xs[i], ys[i], cx, cy);
    if (d2 <= range2 && (radius2 == nullptr || d2 <= radius2[i])) {
      idx_out[out] = static_cast<int32_t>(i);
      d2_out[out] = d2;
      ++out;
    }
  }
  return out;
}

void ScalarBatchHaversineA(const double* sin_lat, const double* cos_lat,
                           const double* sin_lon, const double* cos_lon,
                           size_t n, double q_sin_lat, double q_cos_lat,
                           double q_sin_lon, double q_cos_lon,
                           double* a_out) {
  for (size_t i = 0; i < n; ++i) {
    a_out[i] = HaversineAExpr(sin_lat[i], cos_lat[i], sin_lon[i], cos_lon[i],
                              q_sin_lat, q_cos_lat, q_sin_lon, q_cos_lon);
  }
}

}  // namespace internal

void BatchSquaredDistance(const double* xs, const double* ys, size_t n,
                          double cx, double cy, double* d2_out) {
  internal::Active().batch_squared_distance(xs, ys, n, cx, cy, d2_out);
}

size_t FilterInRange(const double* xs, const double* ys,
                     const double* radius2, size_t n, double cx, double cy,
                     double range2, int32_t* idx_out, double* d2_out) {
  return internal::Active().filter_in_range(xs, ys, radius2, n, cx, cy,
                                            range2, idx_out, d2_out);
}

void GeoTrigBatch::Add(double lat_deg, double lon_deg) {
  const double phi = lat_deg * internal::kDegToRad;
  const double lam = lon_deg * internal::kDegToRad;
  sin_lat_.push_back(std::sin(phi));
  cos_lat_.push_back(std::cos(phi));
  sin_lon_.push_back(std::sin(lam));
  cos_lon_.push_back(std::cos(lam));
  lat_deg_.push_back(lat_deg);
  lon_deg_.push_back(lon_deg);
}

void GeoTrigBatch::Reserve(size_t n) {
  sin_lat_.reserve(n);
  cos_lat_.reserve(n);
  sin_lon_.reserve(n);
  cos_lon_.reserve(n);
  lat_deg_.reserve(n);
  lon_deg_.reserve(n);
}

void GeoTrigBatch::Clear() {
  sin_lat_.clear();
  cos_lat_.clear();
  sin_lon_.clear();
  cos_lon_.clear();
  lat_deg_.clear();
  lon_deg_.clear();
}

void BatchHaversineKm(const GeoTrigBatch& batch, double query_lat_deg,
                      double query_lon_deg, double* km_out) {
  const double phi = query_lat_deg * internal::kDegToRad;
  const double lam = query_lon_deg * internal::kDegToRad;
  const double q_slat = std::sin(phi);
  const double q_clat = std::cos(phi);
  const double q_slon = std::sin(lam);
  const double q_clon = std::cos(lam);
  const size_t n = batch.size();
  // The dispatched part writes the "a" terms into km_out in place; the
  // shared scalar epilogue then maps them to km. One pass each keeps the
  // vector body branch-free and the transcendental path identical across
  // backends.
  internal::Active().batch_haversine_a(batch.sin_lat(), batch.cos_lat(),
                                       batch.sin_lon(), batch.cos_lon(), n,
                                       q_slat, q_clat, q_slon, q_clon,
                                       km_out);
  for (size_t i = 0; i < n; ++i) {
    km_out[i] = internal::HaversineFinishKm(km_out[i]);
  }
}

double HaversineViaTrigKm(double lat1_deg, double lon1_deg, double lat2_deg,
                          double lon2_deg) {
  const double phi1 = lat1_deg * internal::kDegToRad;
  const double lam1 = lon1_deg * internal::kDegToRad;
  const double phi2 = lat2_deg * internal::kDegToRad;
  const double lam2 = lon2_deg * internal::kDegToRad;
  const double a = internal::HaversineAExpr(
      std::sin(phi2), std::cos(phi2), std::sin(lam2), std::cos(lam2),
      std::sin(phi1), std::cos(phi1), std::sin(lam1), std::cos(lam1));
  return internal::HaversineFinishKm(a);
}

}  // namespace kernels
}  // namespace comx
