#include "pricing/history.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace comx {

ValueHistory::ValueHistory(std::vector<double> values)
    : values_(std::move(values)) {
  std::sort(values_.begin(), values_.end());
}

double ValueHistory::Ecdf(double v) const {
  if (values_.empty()) return 0.0;
  const auto it = std::upper_bound(values_.begin(), values_.end(), v);
  return static_cast<double>(it - values_.begin()) /
         static_cast<double>(values_.size());
}

double ValueHistory::Quantile(double q) const {
  assert(!values_.empty());
  q = std::clamp(q, 0.0, 1.0);
  const double pos = q * static_cast<double>(values_.size() - 1);
  const size_t lo = static_cast<size_t>(pos);
  const size_t hi = std::min(lo + 1, values_.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return values_[lo] * (1.0 - frac) + values_[hi] * frac;
}

}  // namespace comx
